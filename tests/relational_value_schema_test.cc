#include <gtest/gtest.h>

#include "relational/row.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace medsync::relational {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::String("1"));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  // Cross-type ordering is by type index — total and deterministic.
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(999), Value::String(""));
  EXPECT_GE(Value::Int(2), Value::Int(2));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("dose").ToString(), "dose");
}

TEST(ValueTest, JsonRoundTripAllTypes) {
  for (const Value& v :
       {Value::Null(), Value::Bool(true), Value::Int(-17),
        Value::Double(3.25), Value::String("text with \"quotes\"")}) {
    Result<Value> back = Value::FromJson(v.ToJson());
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, v);
  }
}

TEST(ValueTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(Value::FromJson(Json(5)).ok());
  Json bad_type = Json::MakeObject();
  bad_type.Set("t", "ghost");
  EXPECT_FALSE(Value::FromJson(bad_type).ok());
  Json missing_v = Json::MakeObject();
  missing_v.Set("t", "int");
  EXPECT_FALSE(Value::FromJson(missing_v).ok());
  Json wrong_v = Json::MakeObject();
  wrong_v.Set("t", "int");
  wrong_v.Set("v", "not an int");
  EXPECT_FALSE(Value::FromJson(wrong_v).ok());
}

TEST(ValueTest, MatchesType) {
  EXPECT_TRUE(Value::Null().MatchesType(DataType::kInt));
  EXPECT_TRUE(Value::Int(1).MatchesType(DataType::kInt));
  EXPECT_FALSE(Value::Int(1).MatchesType(DataType::kString));
}

TEST(DataTypeTest, NameRoundTrip) {
  for (DataType t : {DataType::kNull, DataType::kBool, DataType::kInt,
                     DataType::kDouble, DataType::kString}) {
    Result<DataType> back = DataTypeFromName(DataTypeName(t));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(DataTypeFromName("varchar").ok());
}

Schema TestSchema() {
  return *Schema::Create(
      {
          {"id", DataType::kInt, false},
          {"name", DataType::kString, true},
          {"dose", DataType::kString, true},
      },
      {"id"});
}

TEST(SchemaTest, CreateValidatesInputs) {
  EXPECT_FALSE(Schema::Create({}, {"id"}).ok());  // no attributes
  EXPECT_FALSE(
      Schema::Create({{"id", DataType::kInt, false}}, {}).ok());  // no key
  EXPECT_FALSE(Schema::Create({{"id", DataType::kInt, false},
                               {"id", DataType::kInt, false}},
                              {"id"})
                   .ok());  // duplicate attribute
  EXPECT_FALSE(Schema::Create({{"id", DataType::kInt, false}}, {"other"})
                   .ok());  // key not in schema
  EXPECT_FALSE(Schema::Create({{"id", DataType::kInt, true}}, {"id"})
                   .ok());  // nullable key
  EXPECT_FALSE(Schema::Create({{"id", DataType::kInt, false},
                               {"b", DataType::kInt, false}},
                              {"id", "id"})
                   .ok());  // duplicate key attr
  EXPECT_FALSE(Schema::Create({{"", DataType::kInt, false}}, {""}).ok());
}

TEST(SchemaTest, LookupHelpers) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.attribute_count(), 3u);
  EXPECT_EQ(*schema.IndexOf("dose"), 2u);
  EXPECT_FALSE(schema.IndexOf("ghost").has_value());
  EXPECT_TRUE(schema.HasAttribute("name"));
  EXPECT_TRUE(schema.IsKeyAttribute("id"));
  EXPECT_FALSE(schema.IsKeyAttribute("name"));
  EXPECT_EQ(schema.key_indices(), std::vector<size_t>{0});
}

TEST(SchemaTest, JsonRoundTrip) {
  Schema schema = TestSchema();
  Result<Schema> back = Schema::FromJson(schema.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, schema);
}

TEST(SchemaTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(Schema::FromJson(Json(1)).ok());
  EXPECT_FALSE(Schema::FromJson(Json::MakeObject()).ok());
}

TEST(SchemaTest, KeyContainedIn) {
  Schema narrow = *Schema::Create({{"id", DataType::kInt, false}}, {"id"});
  Schema wide = TestSchema();
  EXPECT_TRUE(narrow.KeyContainedIn(wide));
  Schema other = *Schema::Create({{"id", DataType::kString, false}}, {"id"});
  EXPECT_FALSE(other.KeyContainedIn(wide));  // type mismatch
  Schema disjoint = *Schema::Create({{"pk", DataType::kInt, false}}, {"pk"});
  EXPECT_FALSE(disjoint.KeyContainedIn(wide));
}

TEST(RowTest, KeyOfExtractsKeyColumns) {
  Schema schema = TestSchema();
  Row row{Value::Int(7), Value::String("x"), Value::String("y")};
  EXPECT_EQ(KeyOf(schema, row), (Key{Value::Int(7)}));
}

TEST(RowTest, ValidateRowChecksArityTypesAndNulls) {
  Schema schema = TestSchema();
  EXPECT_TRUE(ValidateRow(schema, {Value::Int(1), Value::String("a"),
                                   Value::Null()})
                  .ok());
  EXPECT_FALSE(ValidateRow(schema, {Value::Int(1)}).ok());  // arity
  EXPECT_FALSE(ValidateRow(schema, {Value::String("1"), Value::Null(),
                                    Value::Null()})
                   .ok());  // type
  EXPECT_FALSE(ValidateRow(schema, {Value::Null(), Value::Null(),
                                    Value::Null()})
                   .ok());  // NULL key
}

TEST(RowTest, JsonRoundTrip) {
  Row row{Value::Int(1), Value::String("a"), Value::Null()};
  Result<Row> back = RowFromJson(RowToJson(row));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, row);
  EXPECT_FALSE(RowFromJson(Json(3)).ok());
}

TEST(RowTest, RowToStringFormatting) {
  EXPECT_EQ(RowToString({Value::Int(1), Value::String("x")}), "(1, x)");
  EXPECT_EQ(RowToString({}), "()");
}

}  // namespace
}  // namespace medsync::relational
