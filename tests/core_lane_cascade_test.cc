// Cross-lane cascades: shared tables are assigned to chain lanes per
// table (chain::LaneForKey over "<contract-hex>/<table_id>"), so one
// provider's tables can live in DIFFERENT lanes. Updates cascading from
// that provider's source must fan request_update/ack_update rounds into
// several lanes at once, converge while a drop storm is raging, and leave
// a gapless audit trail in every involved lane after the storm calms.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "chain/lanes.h"
#include "common/strings.h"
#include "core/peer.h"
#include "core/scenario_gen.h"
#include "core/workload.h"
#include "relational/table.h"

namespace medsync::core {
namespace {

using relational::Table;
using relational::Value;

constexpr size_t kLanes = 4;

/// Keys of `table` whose integer id lies in [lo, hi], in key order.
std::vector<relational::Key> KeysInRange(const Table& table, int64_t lo,
                                         int64_t hi) {
  std::vector<relational::Key> keys;
  for (const auto& [key, row] : table.scan()) {
    if (key.empty() || key[0].type() != relational::DataType::kInt) continue;
    const int64_t id = key[0].AsInt();
    if (id >= lo && id <= hi) keys.push_back(key);
  }
  return keys;
}

uint32_t LaneOf(const GeneratedScenario& scenario,
                const SharedTableSpec& table) {
  return chain::LaneForKey(
      StrCat(scenario.contract().ToHex(), "/", table.table_id), kLanes);
}

/// Re-materializes any view a denied/overlapping cascade left stale, the
/// same closer WorkloadRunner::Finish runs before the convergence oracles:
/// a fresh provider-side source update cascades through and refreshes both
/// sides. Bounded rounds; settles between rounds.
Status SweepStale(GeneratedScenario& scenario) {
  const NetworkSpec& spec = scenario.spec();
  for (int round = 0; round < 6; ++round) {
    size_t swept = 0;
    for (size_t t = 0; t < spec.tables.size(); ++t) {
      const SharedTableSpec& table = spec.tables[t];
      Peer* provider = scenario.peer(table.provider);
      Peer* consumer = scenario.peer(table.consumer);
      MEDSYNC_ASSIGN_OR_RETURN(Peer::TableSyncState provider_state,
                               provider->GetSyncState(table.table_id));
      MEDSYNC_ASSIGN_OR_RETURN(Peer::TableSyncState consumer_state,
                               consumer->GetSyncState(table.table_id));
      MEDSYNC_ASSIGN_OR_RETURN(Table provider_view,
                               provider->ReadSharedTable(table.table_id));
      MEDSYNC_ASSIGN_OR_RETURN(Table consumer_view,
                               consumer->ReadSharedTable(table.table_id));
      if (!provider_state.needs_refresh && !consumer_state.needs_refresh &&
          provider_view == consumer_view) {
        continue;
      }
      const std::string& source = spec.peers[table.provider].source_table;
      MEDSYNC_ASSIGN_OR_RETURN(Table snapshot,
                               provider->database().Snapshot(source));
      const std::vector<relational::Key> keys =
          KeysInRange(snapshot, table.key_lo, table.key_hi);
      if (keys.empty()) {
        return Status::FailedPrecondition("nothing to sweep with");
      }
      MEDSYNC_RETURN_IF_ERROR(provider->UpdateSourceAndPropagate(
          source, [&](relational::Database* db) {
            return db->UpdateAttribute(source, keys.front(),
                                       table.raw_attributes[0],
                                       Value::String(StrCat("sweep-", round,
                                                            "-", t)));
          }));
      ++swept;
    }
    if (swept == 0) return Status::OK();
    MEDSYNC_RETURN_IF_ERROR(scenario.SettleAll());
  }
  return Status::OK();
}

/// A provider whose shared tables span at least two distinct lanes, plus
/// one table index per distinct lane. The generator spreads table ids
/// widely enough that some provider qualifies at any realistic size; the
/// assert documents the world this test requires.
std::map<uint32_t, size_t> CrossLaneTablesOfSomeProvider(
    const GeneratedScenario& scenario, size_t* provider_out) {
  const NetworkSpec& spec = scenario.spec();
  for (size_t p = 0; p < spec.peers.size(); ++p) {
    if (spec.peers[p].role != PeerRole::kProvider) continue;
    std::map<uint32_t, size_t> by_lane;
    for (size_t t = 0; t < spec.tables.size(); ++t) {
      if (spec.tables[t].provider != p) continue;
      by_lane.emplace(LaneOf(scenario, spec.tables[t]), t);
    }
    if (by_lane.size() >= 2) {
      *provider_out = p;
      return by_lane;
    }
  }
  return {};
}

TEST(LaneCascadeTest, CrossLaneCascadesConvergeGaplesslyUnderDropStorm) {
  GenOptions options;
  options.seed = 11;
  options.peers = 14;
  options.lane_count = kLanes;
  Result<std::unique_ptr<GeneratedScenario>> created =
      GeneratedScenario::Create(options);
  ASSERT_TRUE(created.ok()) << created.status();
  GeneratedScenario& scenario = **created;

  size_t provider = 0;
  const std::map<uint32_t, size_t> by_lane =
      CrossLaneTablesOfSomeProvider(scenario, &provider);
  ASSERT_GE(by_lane.size(), 2u)
      << "no provider's tables span two lanes — enlarge the world";

  // Storm while the cascades are in flight: half of ALL steady-state
  // messages vanish, chain gossip included, in every lane at once.
  scenario.network().set_drop_probability(0.5);

  const NetworkSpec& spec = scenario.spec();
  Peer* peer = scenario.peer(provider);
  ASSERT_NE(peer, nullptr);
  const std::string& source = spec.peers[provider].source_table;
  int round = 0;
  for (const auto& [lane, table_index] : by_lane) {
    const SharedTableSpec& table = spec.tables[table_index];
    Result<Table> snapshot = peer->database().Snapshot(source);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    const std::vector<relational::Key> keys =
        KeysInRange(*snapshot, table.key_lo, table.key_hi);
    ASSERT_FALSE(keys.empty()) << table.table_id;
    const std::string attr = table.raw_attributes.front();
    const std::string token = StrCat("cross-lane-", lane, "-", round++);
    ASSERT_TRUE(peer->UpdateSourceAndPropagate(
                        source,
                        [&](relational::Database* db) {
                          return db->UpdateAttribute(source, keys.front(),
                                                     attr,
                                                     Value::String(token));
                        })
                    .ok())
        << table.table_id;
    scenario.RunFor(2 * kMicrosPerSecond);
  }

  // Converge through the storm (the reliability layer has to work for
  // this), then calm it and settle the tail. Half the retransmissions die
  // too, so grant the storm phase a generous simulated-time budget.
  const Status stormy = scenario.SettleAll(/*timeout=*/3600 * kMicrosPerSecond);
  ASSERT_TRUE(stormy.ok()) << stormy;
  scenario.network().set_drop_probability(0.0);
  const Status calm = scenario.SettleAll();
  ASSERT_TRUE(calm.ok()) << calm;
  // Overlapping tables sharing the updated rows can be left needs_refresh
  // (their projection dropped the updated attribute); sweep them exactly
  // like the workload closer does before applying the oracles.
  const Status swept = SweepStale(scenario);
  ASSERT_TRUE(swept.ok()) << swept;

  // Every touched table bumped its on-chain version, and the involved
  // lanes each sealed real blocks (the cascade genuinely crossed lanes).
  std::set<uint32_t> sealed_lanes;
  for (const auto& [lane, table_index] : by_lane) {
    const SharedTableSpec& table = spec.tables[table_index];
    Result<Json> entry = scenario.Entry(table.table_id);
    ASSERT_TRUE(entry.ok()) << entry.status();
    EXPECT_GE(*entry->GetInt("version"), 2) << table.table_id;
    EXPECT_GT(scenario.node(0).blockchain(lane).height(), 0u)
        << "lane " << lane << " sealed no blocks";
    sealed_lanes.insert(lane);
  }
  EXPECT_GE(sealed_lanes.size(), 2u);
  EXPECT_GT(scenario.network().stats().dropped, 0u) << "storm never dropped";

  const Status converged = scenario.VerifyConverged();
  EXPECT_TRUE(converged.ok()) << converged;
  const Status gapless = scenario.VerifyAuditGapless();
  EXPECT_TRUE(gapless.ok()) << gapless;
}

// Lane assignment must agree between the test's oracle and the node's own
// routing: every committed request_update for a table sits in the lane
// LaneForKey computes, and nowhere else.
TEST(LaneCascadeTest, CommittedUpdatesLandOnlyInTheAssignedLane) {
  GenOptions options;
  options.seed = 11;
  options.peers = 14;
  options.lane_count = kLanes;
  Result<std::unique_ptr<GeneratedScenario>> created =
      GeneratedScenario::Create(options);
  ASSERT_TRUE(created.ok()) << created.status();
  GeneratedScenario& scenario = **created;
  const NetworkSpec& spec = scenario.spec();

  // One source update per table of the first provider, no adversity.
  size_t provider = spec.tables.front().provider;
  Peer* peer = scenario.peer(provider);
  ASSERT_NE(peer, nullptr);
  const std::string& source = spec.peers[provider].source_table;
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    if (spec.tables[t].provider != provider) continue;
    const SharedTableSpec& table = spec.tables[t];
    Result<Table> snapshot = peer->database().Snapshot(source);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    const std::vector<relational::Key> keys =
        KeysInRange(*snapshot, table.key_lo, table.key_hi);
    ASSERT_FALSE(keys.empty());
    ASSERT_TRUE(peer->UpdateSourceAndPropagate(
                        source,
                        [&](relational::Database* db) {
                          return db->UpdateAttribute(
                              source, keys.front(),
                              table.raw_attributes.front(),
                              Value::String(StrCat("pin-", t)));
                        })
                    .ok());
    ASSERT_TRUE(scenario.SettleAll().ok());
  }

  // Scan every lane of node 0 for committed request_update transactions
  // and check each one's table_id hashes to the lane it was sealed in.
  size_t committed_updates = 0;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    const chain::Blockchain& chain = scenario.node(0).blockchain(lane);
    for (uint64_t h = 1; h <= chain.height(); ++h) {
      Result<const chain::Block*> block = chain.BlockByHeight(h);
      ASSERT_TRUE(block.ok()) << block.status();
      for (const chain::Transaction& tx : (*block)->transactions) {
        if (tx.method != "request_update") continue;
        Result<std::string> table_id = tx.params.GetString("table_id");
        ASSERT_TRUE(table_id.ok()) << table_id.status();
        EXPECT_EQ(chain::LaneForKey(
                      StrCat(tx.to.ToHex(), "/", *table_id), kLanes),
                  lane)
            << *table_id << " sealed in lane " << lane;
        ++committed_updates;
      }
    }
  }
  EXPECT_GT(committed_updates, 0u);
}

}  // namespace
}  // namespace medsync::core
