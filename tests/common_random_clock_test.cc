#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "common/random.h"

namespace medsync {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(rng.NextInRange(9, 9), 9);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolRoughlyMatchesProbability) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads, 3000, 300);
}

TEST(RngTest, AlnumStringFormat) {
  Rng rng(23);
  std::string s = rng.NextAlnumString(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << c;
  }
  EXPECT_TRUE(rng.NextAlnumString(0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2(29);
  parent2.NextUint64();  // mirror the fork's draw
  EXPECT_NE(child.NextUint64(), parent2.NextUint64());
}

TEST(SimClockTest, AdvanceMovesForward) {
  SimClock clock(0);
  EXPECT_EQ(clock.Now(), 0);
  clock.Advance(5);
  EXPECT_EQ(clock.Now(), 5);
  clock.AdvanceTo(10);
  EXPECT_EQ(clock.Now(), 10);
  clock.AdvanceTo(10);  // same time is allowed
  EXPECT_EQ(clock.Now(), 10);
}

TEST(SimClockTest, DefaultEpochIs2019) {
  SimClock clock;
  EXPECT_EQ(FormatTimestamp(clock.Now()), "2019-01-01 00:00:00.000");
}

TEST(FormatTimestampTest, KnownTimestamps) {
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00:00.000");
  EXPECT_EQ(FormatTimestamp(1 * kMicrosPerSecond + 250 * kMicrosPerMilli),
            "1970-01-01 00:00:01.250");
  // 2018-12-22, the date in the paper's Fig. 3.
  EXPECT_EQ(FormatTimestamp(1545436800LL * kMicrosPerSecond),
            "2018-12-22 00:00:00.000");
}

}  // namespace
}  // namespace medsync
