#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics/metrics.h"
#include "common/metrics/protocol_tracer.h"

namespace medsync::metrics {
namespace {

TEST(CounterTest, IncrementsAccumulate) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Add(-20);
  EXPECT_EQ(g.value(), -13);  // gauges may go negative
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, BucketBoundsAreExponential) {
  Histogram h(Histogram::Options{.first_bound = 4, .bucket_count = 3});
  EXPECT_EQ(h.BucketBound(0), 4u);
  EXPECT_EQ(h.BucketBound(1), 8u);
  EXPECT_EQ(h.BucketBound(2), 16u);
}

TEST(HistogramTest, RecordTracksCountSumMinMax) {
  Histogram h;
  h.Record(3);
  h.Record(100);
  h.Record(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 100u);
}

TEST(HistogramTest, BucketEdgeIsInclusive) {
  // Bucket i covers (bound(i-1), bound(i)]: a value exactly on a bound
  // lands in that bucket, one past it in the next.
  Histogram h(Histogram::Options{.first_bound = 8, .bucket_count = 4});
  h.Record(8);   // bucket 0
  h.Record(9);   // bucket 1
  h.Record(16);  // bucket 1
  // Quantiles resolve to the containing bucket's upper bound.
  EXPECT_EQ(h.Quantile(0.01), 8u);
  EXPECT_EQ(h.Quantile(1.0), 16u);
}

TEST(HistogramTest, QuantilesWalkCumulativeCounts) {
  Histogram h(Histogram::Options{.first_bound = 1, .bucket_count = 10});
  for (int i = 0; i < 90; ++i) h.Record(2);    // bucket bound 2
  for (int i = 0; i < 10; ++i) h.Record(500);  // bucket bound 512
  EXPECT_EQ(h.Quantile(0.5), 2u);
  EXPECT_EQ(h.Quantile(0.9), 2u);
  // p99 lands among the large values; the bound is clamped to max().
  EXPECT_EQ(h.Quantile(0.99), 500u);
}

TEST(HistogramTest, OverflowBucketReportsExactMax) {
  Histogram h(Histogram::Options{.first_bound = 1, .bucket_count = 2});
  h.Record(1000);  // beyond bound(1)=2 -> overflow
  EXPECT_EQ(h.Quantile(0.5), 1000u);
  Json json = h.ToJson();
  // Overflow bucket is listed with bound -1.
  const Json::Array& buckets = json.At("buckets").AsArray();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].AsArray()[0].AsInt(), -1);
  EXPECT_EQ(buckets[0].AsArray()[1].AsInt(), 1);
}

TEST(HistogramTest, ToJsonListsOnlyNonEmptyBuckets) {
  Histogram h;
  h.Record(1);
  h.Record(1);
  h.Record(64);
  Json json = h.ToJson();
  EXPECT_EQ(json.At("count").AsInt(), 3);
  EXPECT_EQ(json.At("sum").AsInt(), 66);
  EXPECT_EQ(json.At("min").AsInt(), 1);
  EXPECT_EQ(json.At("max").AsInt(), 64);
  const Json::Array& buckets = json.At("buckets").AsArray();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].AsArray()[0].AsInt(), 1);
  EXPECT_EQ(buckets[0].AsArray()[1].AsInt(), 2);
  EXPECT_EQ(buckets[1].AsArray()[0].AsInt(), 64);
  EXPECT_EQ(buckets[1].AsArray()[1].AsInt(), 1);
}

TEST(RegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("y"), a);
  EXPECT_EQ(registry.GetGauge("x"), registry.GetGauge("x"));
  EXPECT_EQ(registry.GetHistogram("x"), registry.GetHistogram("x"));
  EXPECT_EQ(registry.metric_count(), 4u);
}

TEST(RegistryTest, HistogramOptionsApplyOnlyOnFirstCreation) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram(
      "h", Histogram::Options{.first_bound = 16, .bucket_count = 2});
  Histogram* again = registry.GetHistogram(
      "h", Histogram::Options{.first_bound = 1, .bucket_count = 28});
  EXPECT_EQ(h, again);
  EXPECT_EQ(again->BucketBound(0), 16u);
}

TEST(RegistryTest, SnapshotIsCanonical) {
  // Two registries fed the same metrics in DIFFERENT orders serialize to
  // byte-identical JSON — the property the determinism sweep relies on.
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("zulu")->Increment(3);
  a.GetCounter("alpha")->Increment(1);
  a.GetGauge("depth")->Set(-2);
  a.GetHistogram("lat")->Record(7);

  b.GetHistogram("lat")->Record(7);
  b.GetGauge("depth")->Set(-2);
  b.GetCounter("alpha")->Increment(1);
  b.GetCounter("zulu")->Increment(3);

  EXPECT_EQ(a.Snapshot().Dump(), b.Snapshot().Dump());
}

TEST(RegistryTest, SnapshotShape) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(5);
  registry.GetGauge("g")->Set(9);
  registry.GetHistogram("h")->Record(2);
  Json snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.At("counters").At("c").AsInt(), 5);
  EXPECT_EQ(snapshot.At("gauges").At("g").AsInt(), 9);
  EXPECT_EQ(snapshot.At("histograms").At("h").At("count").AsInt(), 1);
}

TEST(RegistryTest, NullTolerantHelpers) {
  Inc(nullptr);
  GaugeAdd(nullptr, 1);
  GaugeSet(nullptr, 1);
  Observe(nullptr, 1);  // must not crash

  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Inc(c, 2);
  EXPECT_EQ(c->value(), 2u);
}

StepEvent Step(int figure, int step) {
  StepEvent event;
  event.figure = figure;
  event.step = step;
  return event;
}

TEST(ProtocolTracerTest, RecordsEventsAndBumpsStepCounters) {
  MetricsRegistry registry;
  ProtocolTracer tracer(&registry);
  StepEvent first = Step(5, 2);
  first.action = "request_update";
  first.peer = "doctor";
  first.table = "D31";
  first.outcome = "submitted";
  first.at = 100;
  first.sim_duration = 40;
  tracer.Record(first);
  StepEvent second = Step(5, 2);
  second.action = "request_update";
  tracer.Record(second);
  StepEvent third = Step(4, 1);
  third.action = "read";
  tracer.Record(third);

  ASSERT_EQ(tracer.event_count(), 3u);
  std::vector<StepEvent> events = tracer.Events();
  EXPECT_EQ(events[0].peer, "doctor");
  EXPECT_EQ(events[0].table, "D31");
  EXPECT_EQ(events[0].at, 100);

  Json snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.At("counters").At("protocol.fig5.step2").AsInt(), 2);
  EXPECT_EQ(snapshot.At("counters").At("protocol.fig4.step1").AsInt(), 1);
  EXPECT_EQ(
      snapshot.At("histograms").At("protocol.fig5.step2.sim_us").At("count")
          .AsInt(),
      2);
}

TEST(ProtocolTracerTest, EventToJson) {
  StepEvent event{.figure = 5,
                  .step = 9,
                  .action = "apply_fetch",
                  .peer = "patient",
                  .table = "D13",
                  .outcome = "applied",
                  .at = 12345,
                  .sim_duration = 678};
  Json json = event.ToJson();
  EXPECT_EQ(json.At("figure").AsInt(), 5);
  EXPECT_EQ(json.At("step").AsInt(), 9);
  EXPECT_EQ(json.At("action").AsString(), "apply_fetch");
  EXPECT_EQ(json.At("peer").AsString(), "patient");
  EXPECT_EQ(json.At("outcome").AsString(), "applied");
  EXPECT_EQ(json.At("sim_duration").AsInt(), 678);
}

TEST(ProtocolTracerTest, SinkSeesEveryEvent) {
  ProtocolTracer tracer;
  std::vector<int> steps;
  tracer.SetSink([&](const StepEvent& e) { steps.push_back(e.step); });
  tracer.Record(Step(5, 1));
  tracer.Record(Step(5, 4));
  EXPECT_EQ(steps, (std::vector<int>{1, 4}));
}

TEST(ProtocolTracerTest, MaxEventsCapCountsDrops) {
  MetricsRegistry registry;
  ProtocolTracer tracer(&registry, /*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    tracer.Record(Step(5, 1));
  }
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  // Dropped events still count toward per-step counters.
  Json snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.At("counters").At("protocol.fig5.step1").AsInt(), 5);
  EXPECT_EQ(snapshot.At("counters").At("protocol.trace_dropped").AsInt(), 3);

  tracer.Clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// Runs under ThreadSanitizer via the tsan ctest label: concurrent
// registration and updates against one registry and tracer.
TEST(RegistryTest, ConcurrentRegistrationAndUpdatesAreSafe) {
  MetricsRegistry registry;
  ProtocolTracer tracer(&registry, /*max_events=*/128);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &tracer, t] {
      // Half the threads share metric names, half use their own, so both
      // the create and the find path race.
      std::string suffix = (t % 2 == 0) ? "shared" : std::to_string(t);
      Counter* counter = registry.GetCounter("stress.counter." + suffix);
      Gauge* gauge = registry.GetGauge("stress.gauge." + suffix);
      Histogram* histogram = registry.GetHistogram("stress.hist." + suffix);
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter->Increment();
        gauge->Add(i % 2 == 0 ? 1 : -1);
        histogram->Record(static_cast<uint64_t>(i));
        if (i % 64 == 0) {
          tracer.Record(Step(5, 1 + t % 11));
          registry.Snapshot();  // snapshot racing updates
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  uint64_t total = 0;
  Json counters = registry.Snapshot().At("counters");
  for (const auto& [name, value] : counters.AsObject()) {
    if (name.rfind("stress.counter.", 0) == 0) {
      total += static_cast<uint64_t>(value.AsInt());
    }
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(tracer.event_count() + tracer.dropped(),
            static_cast<uint64_t>(kThreads) * (kOpsPerThread / 64 + 1));
}

}  // namespace
}  // namespace medsync::metrics
