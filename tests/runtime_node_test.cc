// Multi-node integration tests: gossip convergence, the contract replica
// determinism guarantee, partition catch-up, and reorg re-execution.

#include "runtime/chain_node.h"

#include <gtest/gtest.h>

#include "contracts/metadata_contract.h"

namespace medsync::runtime {
namespace {

class NodeClusterTest : public ::testing::Test {
 protected:
  static constexpr Micros kBlockInterval = 1 * kMicrosPerSecond;

  void BuildCluster(size_t n, bool all_seal = true) {
    network_ = std::make_unique<net::SimNetwork>(&simulator_,
                                              net::LatencyModel{
                                                  10 * kMicrosPerMilli,
                                                  5 * kMicrosPerMilli},
                                              /*seed=*/99);
    std::vector<crypto::Address> authorities;
    std::vector<std::shared_ptr<const crypto::KeyPair>> keys;
    for (size_t i = 0; i < n; ++i) {
      auto key = std::make_shared<crypto::KeyPair>(
          crypto::KeyPair::FromSeed("cluster-authority-" +
                                    std::to_string(i)));
      authorities.push_back(key->address());
      keys.push_back(std::move(key));
    }
    chain::Block genesis = chain::Blockchain::MakeGenesis(simulator_.Now());
    for (size_t i = 0; i < n; ++i) {
      auto sealer = std::make_shared<chain::PoaSealer>(authorities, keys[i]);
      auto host = std::make_unique<contracts::ContractHost>();
      host->RegisterType("metadata", contracts::MetadataContract::Create);
      NodeConfig config;
      config.id = "node-" + std::to_string(i);
      config.block_interval = kBlockInterval;
      config.sealing_enabled = all_seal || i == 0;
      nodes_.push_back(std::make_unique<ChainNode>(
          config, &simulator_, network_.get(), std::move(sealer), genesis,
          contracts::SharedDataConflictKey, std::move(host)));
    }
    for (auto& node : nodes_) node->Start();
  }

  chain::Transaction DeployTx() {
    chain::Transaction tx;
    tx.from = client_.address();
    tx.to = crypto::Address::Zero();
    tx.nonce = nonce_++;
    tx.method = "metadata";
    tx.params = Json::MakeObject();
    tx.timestamp = simulator_.Now();
    tx.Sign(client_);
    return tx;
  }

  net::Simulator simulator_;
  std::unique_ptr<net::SimNetwork> network_;
  std::vector<std::unique_ptr<ChainNode>> nodes_;
  crypto::KeyPair client_ = crypto::KeyPair::FromSeed("cluster-client");
  uint64_t nonce_ = 0;
};

TEST_F(NodeClusterTest, TransactionGossipsAndConfirmsEverywhere) {
  BuildCluster(3);
  chain::Transaction tx = DeployTx();
  crypto::Hash256 id = tx.Id();
  ASSERT_TRUE(nodes_[0]->SubmitTransaction(tx).ok());
  simulator_.RunFor(5 * kBlockInterval);

  for (auto& node : nodes_) {
    EXPECT_TRUE(node->blockchain().FindTransaction(id, nullptr, nullptr))
        << node->config().id;
    const contracts::Receipt* receipt = node->FindReceipt(id.ToHex());
    ASSERT_NE(receipt, nullptr) << node->config().id;
    EXPECT_TRUE(receipt->ok);
  }
}

TEST_F(NodeClusterTest, ReplicasConvergeToIdenticalStateAndHead) {
  BuildCluster(4);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(nodes_[i % 4]->SubmitTransaction(DeployTx()).ok());
  }
  simulator_.RunFor(10 * kBlockInterval);

  const crypto::Hash256 head = nodes_[0]->blockchain().head().header.Hash();
  const std::string fingerprint = nodes_[0]->host().StateFingerprint();
  for (auto& node : nodes_) {
    EXPECT_EQ(node->blockchain().head().header.Hash(), head)
        << node->config().id;
    EXPECT_EQ(node->host().StateFingerprint(), fingerprint)
        << node->config().id;
    EXPECT_TRUE(node->blockchain().VerifyIntegrity().ok());
  }
}

TEST_F(NodeClusterTest, DuplicateSubmissionRejectedLocally) {
  BuildCluster(2);
  chain::Transaction tx = DeployTx();
  ASSERT_TRUE(nodes_[0]->SubmitTransaction(tx).ok());
  EXPECT_TRUE(nodes_[0]->SubmitTransaction(tx).IsAlreadyExists());
}

TEST_F(NodeClusterTest, PartitionedNodeCatchesUpAfterHeal) {
  BuildCluster(3);
  // Cut node-2 off from both peers.
  network_->SetLinkDown("node-0", "node-2", true);
  network_->SetLinkDown("node-1", "node-2", true);

  ASSERT_TRUE(nodes_[0]->SubmitTransaction(DeployTx()).ok());
  simulator_.RunFor(6 * kBlockInterval);
  uint64_t connected_height = nodes_[0]->blockchain().height();
  EXPECT_GT(connected_height, 0u);
  EXPECT_EQ(nodes_[2]->blockchain().height(), 0u);  // stuck at genesis

  // Heal; the next sealed block triggers parent-chasing catch-up on node-2.
  network_->SetLinkDown("node-0", "node-2", false);
  network_->SetLinkDown("node-1", "node-2", false);
  ASSERT_TRUE(nodes_[0]->SubmitTransaction(DeployTx()).ok());
  simulator_.RunFor(8 * kBlockInterval);

  EXPECT_EQ(nodes_[2]->blockchain().head().header.Hash(),
            nodes_[0]->blockchain().head().header.Hash());
  EXPECT_EQ(nodes_[2]->host().StateFingerprint(),
            nodes_[0]->host().StateFingerprint());
}

TEST_F(NodeClusterTest, EventSubscriptionFiresOnExecution) {
  BuildCluster(2);
  std::vector<std::string> event_names;
  nodes_[1]->SubscribeEvents(
      [&](uint64_t, const contracts::Event& event) {
        event_names.push_back(event.name);
      });
  int receipts_seen = 0;
  nodes_[1]->SubscribeReceipts(
      [&](const contracts::Receipt&) { ++receipts_seen; });

  ASSERT_TRUE(nodes_[0]->SubmitTransaction(DeployTx()).ok());
  simulator_.RunFor(5 * kBlockInterval);
  ASSERT_EQ(event_names.size(), 1u);
  EXPECT_EQ(event_names[0], "ContractDeployed");
  EXPECT_EQ(receipts_seen, 1);
}

TEST_F(NodeClusterTest, QueryAgainstExecutedState) {
  BuildCluster(2);
  chain::Transaction deploy = DeployTx();
  crypto::Address contract = contracts::ContractHost::DeploymentAddress(deploy);
  ASSERT_TRUE(nodes_[0]->SubmitTransaction(deploy).ok());
  simulator_.RunFor(4 * kBlockInterval);

  Result<Json> tables = nodes_[1]->Query(contract, "list_tables",
                                         Json::MakeObject(),
                                         client_.address());
  ASSERT_TRUE(tables.ok()) << tables.status();
  EXPECT_EQ(tables->size(), 0u);
}

TEST_F(NodeClusterTest, ReorgReexecutesCanonicalChain) {
  // Two nodes partitioned from each other seal divergent branches; after
  // healing, the loser reorgs onto the winner's branch and its contract
  // state matches exactly.
  BuildCluster(2);
  network_->SetLinkDown("node-0", "node-1", true);

  // node-0 seals at heights where it is the authority (even heights with
  // round-robin over 2 authorities: height 1 -> authority 1, so give each
  // side a deploy and let them advance as far as their turns allow).
  ASSERT_TRUE(nodes_[0]->SubmitTransaction(DeployTx()).ok());
  ASSERT_TRUE(nodes_[1]->SubmitTransaction(DeployTx()).ok());
  simulator_.RunFor(6 * kBlockInterval);

  uint64_t h0 = nodes_[0]->blockchain().height();
  uint64_t h1 = nodes_[1]->blockchain().height();
  // With strict round-robin both sides stall after their own turn; at
  // least one branch must exist.
  EXPECT_GE(h0 + h1, 1u);

  network_->SetLinkDown("node-0", "node-1", false);
  ASSERT_TRUE(nodes_[0]->SubmitTransaction(DeployTx()).ok());
  simulator_.RunFor(10 * kBlockInterval);

  EXPECT_EQ(nodes_[0]->blockchain().head().header.Hash(),
            nodes_[1]->blockchain().head().header.Hash());
  EXPECT_EQ(nodes_[0]->host().StateFingerprint(),
            nodes_[1]->host().StateFingerprint());
}

TEST_F(NodeClusterTest, MalformedMessagesAreIgnoredWithoutCrashing) {
  BuildCluster(2);
  auto send = [&](const std::string& type, Json payload) {
    IgnoreStatusForTest(network_->Send(net::Message{"node-1", "node-0", type,
                                      std::move(payload)}));
  };
  // Garbage of every message type the node handles.
  send("tx", Json("not an object"));
  send("tx", Json::MakeObject());
  send("block", Json(42));
  send("block", Json::MakeObject());
  send("block_request", Json::MakeObject());
  Json bad_hash = Json::MakeObject();
  bad_hash.Set("hash", "zz-not-hex");
  send("block_request", bad_hash);
  Json bad_announce = Json::MakeObject();
  bad_announce.Set("hash", "zz");
  bad_announce.Set("height", 99);
  send("head_announce", bad_announce);
  send("head_announce", Json::MakeObject());
  send("utterly_unknown_type", Json("x"));
  // A block whose JSON parses but whose signature material is junk.
  chain::Block junk;
  junk.header.height = 1;
  junk.header.parent = nodes_[0]->blockchain().genesis().header.Hash();
  junk.header.merkle_root = junk.ComputeMerkleRoot();
  send("block", junk.ToJson());  // unsigned PoA block -> rejected

  simulator_.RunFor(3 * kBlockInterval);
  // The node is alive and still functions normally.
  ASSERT_TRUE(nodes_[0]->SubmitTransaction(DeployTx()).ok());
  simulator_.RunFor(5 * kBlockInterval);
  EXPECT_GE(nodes_[0]->blockchain().height(), 1u);
}

TEST_F(NodeClusterTest, PeersIgnoreForeignProtocolMessages) {
  BuildCluster(2);
  // Chain-node gossip types sent to a node that is mid-catch-up must not
  // corrupt state: replay the SAME valid block twice and interleave stale
  // head announcements.
  ASSERT_TRUE(nodes_[0]->SubmitTransaction(DeployTx()).ok());
  simulator_.RunFor(4 * kBlockInterval);
  const chain::Block& head = nodes_[0]->blockchain().head();
  for (int i = 0; i < 3; ++i) {
    IgnoreStatusForTest(network_->Send(
        net::Message{"node-1", "node-0", "block", head.ToJson()}));
    Json stale = Json::MakeObject();
    stale.Set("hash", head.header.Hash().ToHex());
    stale.Set("height", head.header.height);
    IgnoreStatusForTest(network_->Send(
        net::Message{"node-1", "node-0", "head_announce", stale}));
  }
  simulator_.RunFor(3 * kBlockInterval);
  EXPECT_TRUE(nodes_[0]->blockchain().VerifyIntegrity().ok());
  EXPECT_EQ(nodes_[0]->blockchain().head().header.Hash(),
            nodes_[1]->blockchain().head().header.Hash());
}

TEST_F(NodeClusterTest, SealEmptyBlocksOption) {
  network_ = std::make_unique<net::SimNetwork>(&simulator_, net::LatencyModel{},
                                            7);
  auto key = std::make_shared<crypto::KeyPair>(
      crypto::KeyPair::FromSeed("solo-authority"));
  auto sealer = std::make_shared<chain::PoaSealer>(
      std::vector<crypto::Address>{key->address()}, key);
  auto host = std::make_unique<contracts::ContractHost>();
  NodeConfig config;
  config.id = "solo";
  config.block_interval = kBlockInterval;
  config.sealing_enabled = true;
  config.seal_empty_blocks = true;
  ChainNode node(config, &simulator_, network_.get(), std::move(sealer),
                 chain::Blockchain::MakeGenesis(simulator_.Now()),
                 nullptr, std::move(host));
  node.Start();
  simulator_.RunFor(5 * kBlockInterval);
  EXPECT_GE(node.blockchain().height(), 4u);
  EXPECT_GE(node.blocks_sealed(), 4u);
}

// Regression (found by the ASan preset): SealTick reschedules itself with
// a raw `this`, so destroying a sealing node while its next tick was still
// queued in the shared simulator was a heap-use-after-free once the event
// fired. The liveness token (ChainNode::alive_, same idiom as Peer) must
// turn those queued ticks into no-ops, and the destructor must detach the
// endpoint so queued deliveries count as dropped instead of landing on
// freed memory.
TEST_F(NodeClusterTest, DestroyedNodeLeavesQueuedSealTicksAndTrafficInert) {
  BuildCluster(3);
  ASSERT_TRUE(nodes_[1]->SubmitTransaction(DeployTx()).ok());
  simulator_.RunFor(3 * kBlockInterval);
  ASSERT_GE(nodes_[1]->blockchain().height(), 1u);

  // Destroy node-1 mid-protocol: its next SealTick and in-flight gossip to
  // it are still queued.
  ASSERT_TRUE(network_->IsAttached("node-1"));
  nodes_[1].reset();
  EXPECT_FALSE(network_->IsAttached("node-1"));

  // Drive well past the queued events. Under -DMEDSYNC_SANITIZE=address
  // this is where the dangling tick used to fire. (Liveness is expectedly
  // lost once PoA rotation reaches the dead authority's turn — the
  // survivors just must not touch freed memory and must agree.)
  uint64_t height_at_destroy = nodes_[0]->blockchain().height();
  ASSERT_TRUE(nodes_[0]->SubmitTransaction(DeployTx()).ok());
  simulator_.RunFor(5 * kBlockInterval);
  EXPECT_GE(nodes_[0]->blockchain().height(), height_at_destroy);
  EXPECT_EQ(nodes_[0]->blockchain().head().header.Hash(),
            nodes_[2]->blockchain().head().header.Hash());
}

}  // namespace
}  // namespace medsync::runtime
