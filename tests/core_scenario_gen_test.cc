// Property tests for the seeded hospital-network generator: the same seed
// reproduces the network description and event schedule byte-for-byte,
// different seeds diverge, every generated permission graph satisfies the
// contract invariants before a run starts, small generated worlds actually
// converge with repeatable fingerprints, and the shrinker finds the
// minimal failing prefix of a schedule.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/scenario_gen.h"
#include "core/workload.h"

namespace medsync::core {
namespace {

GenOptions SmallWorld(uint64_t seed) {
  GenOptions options;
  options.seed = seed;
  options.peers = 5;
  options.lens_depth = 3;
  options.rows_per_provider = 4;
  options.slack_per_provider = 3;
  return options;
}

TEST(ScenarioGenTest, SameSeedSameNetworkAndScheduleBytes) {
  for (uint64_t seed : {1ull, 7ull, 999ull}) {
    GenOptions options = SmallWorld(seed);
    NetworkSpec first = DescribeNetwork(options);
    NetworkSpec second = DescribeNetwork(options);
    EXPECT_EQ(first.ToJson().Dump(), second.ToJson().Dump())
        << "network spec not reproducible for seed " << seed;

    WorkloadOptions workload;
    workload.seed = seed * 31 + 1;
    workload.events = 24;
    Schedule schedule_a = GenerateSchedule(first, workload);
    Schedule schedule_b = GenerateSchedule(second, workload);
    EXPECT_EQ(schedule_a.ToJson().Dump(), schedule_b.ToJson().Dump())
        << "schedule not reproducible for seed " << seed;
  }
}

TEST(ScenarioGenTest, RuntimeKnobsDoNotChangeTheSpecBytes) {
  GenOptions a = SmallWorld(11);
  GenOptions b = SmallWorld(11);
  b.worker_threads = 4;
  EXPECT_EQ(DescribeNetwork(a).ToJson().Dump(),
            DescribeNetwork(b).ToJson().Dump());
}

TEST(ScenarioGenTest, DifferentSeedsProduceDistinctSchedules) {
  std::set<std::string> spec_bytes;
  std::set<std::string> schedule_bytes;
  const size_t kSeeds = 8;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    NetworkSpec spec = DescribeNetwork(SmallWorld(seed));
    spec_bytes.insert(spec.ToJson().Dump());
    WorkloadOptions workload;
    workload.seed = seed;
    workload.events = 24;
    schedule_bytes.insert(GenerateSchedule(spec, workload).ToJson().Dump());
  }
  EXPECT_EQ(spec_bytes.size(), kSeeds);
  EXPECT_EQ(schedule_bytes.size(), kSeeds);
}

TEST(ScenarioGenTest, GeneratedSpecsSatisfyContractInvariants) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    GenOptions options;
    options.seed = seed;
    options.peers = 3 + seed % 40;
    options.lens_depth = 2 + seed % 4;
    NetworkSpec spec = DescribeNetwork(options);
    Status valid = ValidateSpec(spec);
    EXPECT_TRUE(valid.ok()) << "seed " << seed << ": " << valid;
  }
}

TEST(ScenarioGenTest, TamperedSpecsAreRejected) {
  const NetworkSpec clean = DescribeNetwork(SmallWorld(3));
  ASSERT_TRUE(ValidateSpec(clean).ok());
  ASSERT_FALSE(clean.tables.empty());

  NetworkSpec no_writable = clean;
  no_writable.tables[0].consumer_writable.clear();
  EXPECT_FALSE(ValidateSpec(no_writable).ok());

  NetworkSpec foreign_writable = clean;
  foreign_writable.tables[0].consumer_writable = {"not_a_view_attribute"};
  EXPECT_FALSE(ValidateSpec(foreign_writable).ok());

  NetworkSpec outside_authority = clean;
  for (size_t i = 0; i < clean.peers.size(); ++i) {
    if (i != clean.tables[0].provider && i != clean.tables[0].consumer) {
      outside_authority.tables[0].authority = i;
      break;
    }
  }
  EXPECT_FALSE(ValidateSpec(outside_authority).ok());

  NetworkSpec escaped_range = clean;
  escaped_range.tables[0].key_hi += 1000000;
  EXPECT_FALSE(ValidateSpec(escaped_range).ok());

  NetworkSpec self_share = clean;
  self_share.tables[0].consumer = self_share.tables[0].provider;
  EXPECT_FALSE(ValidateSpec(self_share).ok());
}

TEST(ScenarioGenTest, EpochIsSeedDerived) {
  NetworkSpec a = DescribeNetwork(SmallWorld(100));
  NetworkSpec b = DescribeNetwork(SmallWorld(101));
  EXPECT_EQ(a.epoch,
            SimClock::kDefaultEpoch + 100 * kMicrosPerSecond);
  EXPECT_NE(a.epoch, b.epoch);
}

TEST(ScenarioGenTest, SchedulesAreSelfClosing) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    GenOptions gen = SmallWorld(seed);
    gen.durable_root = "unused-symbolic-only";  // enables crash events
    NetworkSpec spec = DescribeNetwork(gen);
    WorkloadOptions workload;
    workload.seed = seed;
    workload.events = 40;
    Schedule schedule = GenerateSchedule(spec, workload);
    int crashes = 0, restarts = 0, isolates = 0, heals = 0;
    int storms = 0, calms = 0, revokes = 0, grants = 0;
    for (const WorkloadEvent& event : schedule.events) {
      switch (event.kind) {
        case EventKind::kCrash: ++crashes; break;
        case EventKind::kRestart: ++restarts; break;
        case EventKind::kIsolate: ++isolates; break;
        case EventKind::kHeal: ++heals; break;
        case EventKind::kDropStorm: ++storms; break;
        case EventKind::kDropCalm: ++calms; break;
        case EventKind::kRevoke: ++revokes; break;
        case EventKind::kGrant: ++grants; break;
        default: break;
      }
    }
    EXPECT_EQ(crashes, restarts) << "seed " << seed;
    EXPECT_EQ(isolates, heals) << "seed " << seed;
    EXPECT_EQ(storms, calms) << "seed " << seed;
    EXPECT_EQ(revokes, grants) << "seed " << seed;
  }
}

TEST(ScenarioGenTest, SmallWorldConvergesWithRepeatableFingerprint) {
  GenOptions gen = SmallWorld(42);
  WorkloadOptions workload;
  workload.seed = 43;
  workload.events = 16;

  SoakReport first;
  Status run_a = RunGeneratedSoak(gen, workload, SIZE_MAX, &first);
  ASSERT_TRUE(run_a.ok()) << run_a;
  EXPECT_GT(first.executed, 0u);
  EXPECT_GT(first.chain_height, 0u);

  SoakReport second;
  Status run_b = RunGeneratedSoak(gen, workload, SIZE_MAX, &second);
  ASSERT_TRUE(run_b.ok()) << run_b;
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.executed, second.executed);
  EXPECT_EQ(first.skipped, second.skipped);
  EXPECT_EQ(first.chain_height, second.chain_height);
}

TEST(ScenarioGenTest, GeneratedWorldStartsAtSeedDerivedEpoch) {
  GenOptions gen = SmallWorld(120);
  Result<std::unique_ptr<GeneratedScenario>> scenario =
      GeneratedScenario::Create(gen);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  EXPECT_GE((*scenario)->simulator().Now(),
            SimClock::kDefaultEpoch + 120 * kMicrosPerSecond);
  EXPECT_EQ((*scenario)->spec().epoch,
            SimClock::kDefaultEpoch + 120 * kMicrosPerSecond);
  Status converged = (*scenario)->VerifyConverged();
  EXPECT_TRUE(converged.ok()) << converged;
}

TEST(ScenarioGenTest, ShrinkerFindsTheMinimalFailingPrefix) {
  std::vector<size_t> probed;
  auto run = [&](size_t prefix) -> Status {
    probed.push_back(prefix);
    return prefix >= 7 ? Status::Internal("boom") : Status::OK();
  };
  Status failure;
  const size_t minimal = ShrinkToMinimalFailingPrefix(run, 40, &failure);
  EXPECT_EQ(minimal, 7u);
  EXPECT_FALSE(failure.ok());
  EXPECT_EQ(failure.message(), "boom");
  // Binary search, not a linear scan.
  EXPECT_LT(probed.size(), 12u);

  auto broken_world = [](size_t) -> Status {
    return Status::Internal("bootstrap failed");
  };
  Status at_zero;
  EXPECT_EQ(ShrinkToMinimalFailingPrefix(broken_world, 40, &at_zero), 0u);
  EXPECT_FALSE(at_zero.ok());
}

}  // namespace
}  // namespace medsync::core
