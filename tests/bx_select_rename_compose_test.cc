#include <gtest/gtest.h>

#include "bx/compose_lens.h"
#include "bx/laws.h"
#include "bx/lens_factory.h"
#include "bx/project_lens.h"
#include "bx/rename_lens.h"
#include "bx/select_lens.h"
#include "medical/records.h"

namespace medsync::bx {
namespace {

using medical::kAddress;
using medical::kDosage;
using medical::kMedicationName;
using medical::kPatientId;
using relational::CompareOp;
using relational::Predicate;
using relational::Row;
using relational::Table;
using relational::Value;

Table Fig1() { return medical::MakeFig1FullRecords(); }

Predicate::Ptr OsakaOnly() {
  return Predicate::Compare(kAddress, CompareOp::kEq, Value::String("Osaka"));
}

TEST(SelectLensTest, GetFilters) {
  SelectLens lens(OsakaOnly());
  Result<Table> view = lens.Get(Fig1());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->row_count(), 1u);
  EXPECT_TRUE(view->Contains({Value::Int(189)}));
}

TEST(SelectLensTest, PutKeepsHiddenComplement) {
  SelectLens lens(OsakaOnly());
  Table source = Fig1();
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->UpdateAttribute({Value::Int(189)}, kDosage,
                                    Value::String("changed"))
                  .ok());
  Result<Table> updated = lens.Put(source, *view);
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(updated->row_count(), 2u);  // Sapporo row (188) preserved
  EXPECT_EQ(updated->Get({Value::Int(189)})->at(4).AsString(), "changed");
  EXPECT_EQ(updated->Get({Value::Int(188)})->at(4).AsString(),
            "one tablet every 4h");
}

TEST(SelectLensTest, PutTranslatesInsertAndDelete) {
  SelectLens lens(OsakaOnly());
  Table source = Fig1();
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  Row fresh = *source.Get({Value::Int(189)});
  fresh[0] = Value::Int(300);
  ASSERT_TRUE(view->Insert(fresh).ok());
  ASSERT_TRUE(view->Delete({Value::Int(189)}).ok());

  Result<Table> updated = lens.Put(source, *view);
  ASSERT_TRUE(updated.ok());
  EXPECT_TRUE(updated->Contains({Value::Int(300)}));
  EXPECT_FALSE(updated->Contains({Value::Int(189)}));
  EXPECT_TRUE(updated->Contains({Value::Int(188)}));  // hidden survivor
}

TEST(SelectLensTest, ViewRowViolatingPredicateIsUntranslatable) {
  SelectLens lens(OsakaOnly());
  Table source = Fig1();
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  // Changing the address moves the row OUT of the view's region — a Put
  // that accepted this would violate PutGet.
  ASSERT_TRUE(view->UpdateAttribute({Value::Int(189)}, kAddress,
                                    Value::String("Tokyo"))
                  .ok());
  EXPECT_TRUE(lens.Put(source, *view).status().IsFailedPrecondition());
}

TEST(SelectLensTest, KeyCollisionWithHiddenRowIsConflict) {
  SelectLens lens(OsakaOnly());
  Table source = Fig1();
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  // Insert a view row reusing the key of the HIDDEN Sapporo row.
  Row clash = *source.Get({Value::Int(189)});
  clash[0] = Value::Int(188);
  ASSERT_TRUE(view->Insert(clash).ok());
  EXPECT_TRUE(lens.Put(source, *view).status().IsConflict());
}

TEST(SelectLensTest, LawsHold) {
  SelectLens lens(OsakaOnly());
  EXPECT_TRUE(CheckGetPut(lens, Fig1()).ok());
}

TEST(RenameLensTest, GetRenamesAndPutRenamesBack) {
  RenameLens lens({{kDosage, "dose"}, {kPatientId, "pid"}});
  Table source = Fig1();
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->schema().HasAttribute("dose"));
  EXPECT_TRUE(view->schema().HasAttribute("pid"));
  EXPECT_FALSE(view->schema().HasAttribute(kDosage));

  ASSERT_TRUE(view->UpdateAttribute({Value::Int(188)}, "dose",
                                    Value::String("renamed dose"))
                  .ok());
  Result<Table> updated = lens.Put(source, *view);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->Get({Value::Int(188)})->at(4).AsString(),
            "renamed dose");
  EXPECT_TRUE(CheckGetPut(lens, Fig1()).ok());
}

TEST(RenameLensTest, RejectsUnknownAttribute) {
  RenameLens lens(
      std::vector<std::pair<std::string, std::string>>{{"ghost", "x"}});
  EXPECT_FALSE(lens.ViewSchema(Fig1().schema()).ok());
}

TEST(ComposeLensTest, SelectThenProjectThenRename) {
  auto composed = Compose(
      Compose(MakeSelectLens(OsakaOnly()),
              MakeProjectLens({kPatientId, kMedicationName, kDosage},
                              {kPatientId})),
      MakeRenameLens({{kDosage, "dose"}}));
  Table source = Fig1();
  Result<Table> view = composed->Get(source);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->row_count(), 1u);
  EXPECT_TRUE(view->schema().HasAttribute("dose"));

  ASSERT_TRUE(view->UpdateAttribute({Value::Int(189)}, "dose",
                                    Value::String("via composition"))
                  .ok());
  Result<Table> updated = composed->Put(source, *view);
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(updated->Get({Value::Int(189)})->at(4).AsString(),
            "via composition");
  // Untouched hidden data survives the whole pipeline.
  EXPECT_EQ(updated->Get({Value::Int(188)})->at(3).AsString(), "Sapporo");
  EXPECT_EQ(updated->Get({Value::Int(189)})->at(6).AsString(), "MoA2");

  EXPECT_TRUE(CheckGetPut(*composed, Fig1()).ok());
  bool rejected = false;
  EXPECT_TRUE(CheckPutGet(*composed, source, *view, &rejected).ok());
  EXPECT_FALSE(rejected);
}

TEST(ComposeLensTest, ComposeFlattensNestedCompositions) {
  auto a = MakeIdentityLens();
  auto b = MakeRenameLens({{kDosage, "dose"}});
  auto c = MakeRenameLens({{"dose", "dosage2"}});
  auto nested = Compose(Compose(a, b), c);
  const auto* composed = dynamic_cast<const ComposeLens*>(nested.get());
  ASSERT_NE(composed, nullptr);
  EXPECT_EQ(composed->stages().size(), 3u);
}

TEST(IdentityLensTest, GetAndPutAreIdentity) {
  IdentityLens lens;
  Table source = Fig1();
  EXPECT_EQ(*lens.Get(source), source);
  Table edited = source;
  ASSERT_TRUE(edited.Delete({Value::Int(188)}).ok());
  EXPECT_EQ(*lens.Put(source, edited), edited);
  EXPECT_TRUE(CheckGetPut(lens, source).ok());
  Table wrong(*relational::Schema::Create(
      {{"x", relational::DataType::kInt, false}}, {"x"}));
  EXPECT_FALSE(lens.Put(source, wrong).ok());
}

TEST(LensFactoryTest, JsonRoundTripAllKinds) {
  std::vector<LensPtr> lenses = {
      MakeIdentityLens(),
      MakeProjectLens({kPatientId, kDosage}, {kPatientId}),
      MakeSelectLens(OsakaOnly()),
      MakeRenameLens({{kDosage, "dose"}}),
      Compose(MakeSelectLens(OsakaOnly()),
              MakeProjectLens({kPatientId, kDosage}, {kPatientId})),
  };
  for (const LensPtr& lens : lenses) {
    Result<LensPtr> back = LensFromJson(lens->ToJson());
    ASSERT_TRUE(back.ok()) << back.status() << " for " << lens->ToString();
    EXPECT_TRUE(LensEqual(lens, *back)) << lens->ToString();
    // Behavioural equality too: same view on the Fig. 1 source.
    Result<Table> v1 = lens->Get(Fig1());
    Result<Table> v2 = (*back)->Get(Fig1());
    ASSERT_EQ(v1.ok(), v2.ok());
    if (v1.ok()) {
      EXPECT_EQ(*v1, *v2);
    }
  }
}

TEST(LensFactoryTest, FromSpecTextParses) {
  Result<LensPtr> lens = LensFromSpec(R"({"lens":"identity"})");
  ASSERT_TRUE(lens.ok());
  EXPECT_EQ((*lens)->ToString(), "identity");
  EXPECT_FALSE(LensFromSpec("not json").ok());
  EXPECT_FALSE(LensFromSpec(R"({"lens":"warp"})").ok());
  EXPECT_FALSE(LensFromSpec(R"({"lens":"compose","stages":[]})").ok());
}

TEST(LensFactoryTest, LensEqualDistinguishesDifferentLenses) {
  EXPECT_FALSE(LensEqual(MakeIdentityLens(),
                         MakeProjectLens({kPatientId}, {kPatientId})));
  EXPECT_FALSE(LensEqual(nullptr, MakeIdentityLens()));
  EXPECT_TRUE(LensEqual(nullptr, nullptr));
}

}  // namespace
}  // namespace medsync::bx
