#include "relational/chunk.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "relational/row.h"
#include "relational/schema.h"

namespace medsync::relational {
namespace {

Schema S() {
  return *Schema::Create({{"id", DataType::kInt, false},
                          {"name", DataType::kString, true},
                          {"score", DataType::kDouble, true},
                          {"flag", DataType::kBool, true}},
                         {"id"});
}

Row R(int64_t id, const char* name, double score, bool flag) {
  return {Value::Int(id), Value::String(name), Value::Double(score),
          Value::Bool(flag)};
}

std::map<Key, Row> SampleRows(int64_t n) {
  std::map<Key, Row> rows;
  const char* names[] = {"alice", "bob", "carol", "alice", "dave"};
  for (int64_t i = 0; i < n; ++i) {
    Row row = R(i, names[i % 5], 0.5 * static_cast<double>(i), i % 2 == 0);
    rows.emplace(Key{Value::Int(i)}, std::move(row));
  }
  return rows;
}

TEST(ChunkTest, SealPreservesRowsAndOrder) {
  const Schema schema = S();
  auto rows = SampleRows(100);
  auto chunk = Chunk::Seal(schema, rows);
  ASSERT_EQ(chunk->row_count(), 100u);
  EXPECT_EQ(chunk->min_key(), (Key{Value::Int(0)}));
  EXPECT_EQ(chunk->max_key(), (Key{Value::Int(99)}));
  size_t i = 0;
  for (const auto& [key, row] : rows) {
    EXPECT_EQ(chunk->KeyAt(i), key);
    EXPECT_EQ(chunk->RowAt(i), row);
    ++i;
  }
}

TEST(ChunkTest, FindHitsEveryKeyAndMissesOthers) {
  const Schema schema = S();
  std::map<Key, Row> rows;
  for (int64_t i = 0; i < 64; ++i) {
    // Sparse keys so misses land between, before, and after real rows.
    rows.emplace(Key{Value::Int(i * 3)}, R(i * 3, "x", 0.0, false));
  }
  auto chunk = Chunk::Seal(schema, rows);
  for (int64_t i = 0; i < 64; ++i) {
    auto hit = chunk->Find(Key{Value::Int(i * 3)});
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(chunk->KeyAt(*hit), (Key{Value::Int(i * 3)}));
    EXPECT_FALSE(chunk->Find(Key{Value::Int(i * 3 + 1)}).has_value());
  }
  EXPECT_FALSE(chunk->Find(Key{Value::Int(-5)}).has_value());
  EXPECT_FALSE(chunk->Find(Key{Value::Int(1000)}).has_value());
}

TEST(ChunkTest, DictionaryEncodesRepeatedStrings) {
  const Schema schema = S();
  auto chunk = Chunk::Seal(schema, SampleRows(1000));
  // 1000 rows but only 4 distinct names — the dictionary must not grow
  // with the row count.
  const Chunk::Column& name_col = chunk->column(1);
  ASSERT_EQ(name_col.type, DataType::kString);
  EXPECT_EQ(name_col.dict.size(), 4u);
  EXPECT_EQ(name_col.codes.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(name_col.dict.begin(), name_col.dict.end()));
}

TEST(ChunkTest, NullCellsRoundTrip) {
  const Schema schema = S();
  std::map<Key, Row> rows;
  rows.emplace(Key{Value::Int(1)},
               Row{Value::Int(1), Value::Null(), Value::Double(1.0),
                   Value::Null()});
  rows.emplace(Key{Value::Int(2)}, R(2, "b", 2.0, true));
  auto chunk = Chunk::Seal(schema, rows);
  EXPECT_TRUE(chunk->IsNullAt(0, 1));
  EXPECT_TRUE(chunk->IsNullAt(0, 3));
  EXPECT_FALSE(chunk->IsNullAt(1, 1));
  EXPECT_EQ(chunk->RowAt(0)[1], Value::Null());
  EXPECT_EQ(chunk->RowAt(1)[1], Value::String("b"));
}

TEST(ChunkTest, SerializeFileRoundTripsRawAndCompressed) {
  const Schema schema = S();
  auto chunk = Chunk::Seal(schema, SampleRows(500));
  for (bool compress : {false, true}) {
    SCOPED_TRACE(compress ? "compressed" : "raw");
    std::string bytes = chunk->SerializeFile(compress);
    Result<std::shared_ptr<const Chunk>> back =
        Chunk::Deserialize(schema, bytes);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ((*back)->id(), chunk->id());
    EXPECT_EQ((*back)->row_count(), chunk->row_count());
    EXPECT_EQ((*back)->digest_acc(), chunk->digest_acc());
    for (size_t i = 0; i < chunk->row_count(); ++i) {
      ASSERT_EQ((*back)->RowAt(i), chunk->RowAt(i)) << i;
    }
  }
}

TEST(ChunkTest, ContentAddressIndependentOfCompression) {
  const Schema schema = S();
  auto chunk = Chunk::Seal(schema, SampleRows(200));
  std::string raw = chunk->SerializeFile(false);
  std::string packed = chunk->SerializeFile(true);
  EXPECT_NE(raw, packed);
  Result<std::shared_ptr<const Chunk>> a = Chunk::Deserialize(schema, raw);
  Result<std::shared_ptr<const Chunk>> b = Chunk::Deserialize(schema, packed);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->id(), (*b)->id());
}

TEST(ChunkTest, DeserializeRejectsCorruption) {
  const Schema schema = S();
  auto chunk = Chunk::Seal(schema, SampleRows(50));
  const std::string good = chunk->SerializeFile(true);

  // Truncations at every framing boundary.
  for (size_t len : {size_t{0}, size_t{3}, good.size() / 2, good.size() - 1}) {
    Result<std::shared_ptr<const Chunk>> r =
        Chunk::Deserialize(schema, std::string_view(good).substr(0, len));
    EXPECT_TRUE(r.status().IsCorruption()) << "len=" << len << ": "
                                           << r.status();
  }
  // Single-byte flips anywhere must be caught (magic, header, or CRC).
  for (size_t pos : {size_t{0}, size_t{8}, good.size() / 2, good.size() - 1}) {
    std::string bad = good;
    bad[pos] ^= 0x40;
    Result<std::shared_ptr<const Chunk>> r = Chunk::Deserialize(schema, bad);
    EXPECT_FALSE(r.ok()) << "pos=" << pos;
  }
  // Schema disagreement: right bytes, wrong arity.
  Schema narrow = *Schema::Create({{"id", DataType::kInt, false}}, {"id"});
  EXPECT_FALSE(Chunk::Deserialize(narrow, good).ok());
}

TEST(ChunkTest, DigestAccIsMultisetOfRowHashes) {
  const Schema schema = S();
  auto rows = SampleRows(32);
  auto chunk = Chunk::Seal(schema, rows);
  RowDigestAcc acc{};
  for (const auto& [key, row] : rows) AccAdd(&acc, HashRowForDigest(row));
  EXPECT_EQ(chunk->digest_acc(), acc);
  // Removing every row returns the accumulator to zero.
  for (const auto& [key, row] : rows) AccSub(&acc, HashRowForDigest(row));
  EXPECT_EQ(acc, (RowDigestAcc{0, 0, 0, 0}));
}

TEST(LzTest, RoundTripsStructuredAndRandomPayloads) {
  Rng rng(0xC0FFEE);
  std::vector<std::string> payloads;
  payloads.push_back("");
  payloads.push_back("a");
  payloads.push_back(std::string(100000, 'z'));  // max-compressible
  {
    std::string repeats;
    for (int i = 0; i < 4000; ++i) repeats += "patient-record-";
    payloads.push_back(repeats);
  }
  {
    std::string random(65536, '\0');  // incompressible
    for (char& c : random) c = static_cast<char>(rng.NextBelow(256));
    payloads.push_back(random);
  }
  for (const std::string& payload : payloads) {
    SCOPED_TRACE(payload.size());
    std::string packed = LzCompress(payload);
    Result<std::string> back = LzDecompress(packed, payload.size());
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, payload);
  }
}

TEST(LzTest, CompressesRepetitiveData) {
  std::string repeats;
  for (int i = 0; i < 1000; ++i) repeats += "0123456789abcdef";
  EXPECT_LT(LzCompress(repeats).size(), repeats.size() / 4);
}

TEST(LzTest, DecompressRejectsMalformedStreams) {
  const std::string payload = "hello hello hello hello hello";
  const std::string packed = LzCompress(payload);
  // Wrong expected size in either direction.
  EXPECT_FALSE(LzDecompress(packed, payload.size() + 1).ok());
  EXPECT_FALSE(LzDecompress(packed, payload.size() - 1).ok());
  // Truncated stream.
  EXPECT_FALSE(
      LzDecompress(std::string_view(packed).substr(0, packed.size() / 2),
                   payload.size())
          .ok());
}

}  // namespace
}  // namespace medsync::relational
