#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/strings.h"

namespace medsync {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("row 7").message(), "row 7");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::PermissionDenied("nope");
  EXPECT_EQ(s.ToString(), "permission denied: nope");
}

TEST(StatusTest, WithPrefixPrependsOnErrorOnly) {
  Status err = Status::NotFound("row").WithPrefix("lookup");
  EXPECT_EQ(err.message(), "lookup: row");
  EXPECT_TRUE(err.IsNotFound());
  EXPECT_TRUE(Status::OK().WithPrefix("lookup").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Conflict("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kConflict), "conflict");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "corruption");
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  MEDSYNC_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad = ParsePositive(-5);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.ValueOr(42), 42);
  EXPECT_EQ(good.ValueOr(42), 5);
}

Result<int> DoubleIt(int x) {
  MEDSYNC_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = DoubleIt(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 8);
  EXPECT_TRUE(DoubleIt(0).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

// Status and Result<T> are [[nodiscard]]; IgnoreStatusForTest is the one
// sanctioned way to drop them. This test pins down that it compiles for
// both shapes (a build failure here means the discard idiom regressed).
TEST(NodiscardTest, IgnoreStatusForTestAcceptsStatusAndResult) {
  IgnoreStatusForTest(Status::Unavailable("deliberately dropped"));
  IgnoreStatusForTest(Result<int>(Status::NotFound("also dropped")));
  Result<int> ok_result = 42;
  IgnoreStatusForTest(ok_result);
}

}  // namespace
}  // namespace medsync
