// Extension tests: the sharing-bootstrap handshake (the paper's explicit
// future-work item, "initialization of shared data"), the PoW consensus
// mode, and failure injection — message loss and peer-link partitions in
// the middle of update rounds.

#include <gtest/gtest.h>

#include "core/peer.h"

#include "bx/lens_factory.h"
#include "core/scenario.h"
#include "medical/records.h"

namespace medsync::core {
namespace {

using medical::kDosage;
using medical::kMedicationName;
using medical::kPatientId;
using relational::Table;
using relational::Value;

constexpr char kPD[] = "D13&D31";

class BootstrapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScenarioOptions options;
    Result<std::unique_ptr<ClinicScenario>> scenario =
        ClinicScenario::Create(options);
    ASSERT_TRUE(scenario.ok()) << scenario.status();
    clinic_ = std::move(*scenario);

    // A fourth stakeholder appears: the pharmacist, with an empty local
    // medication-dispensing table, trusted node 0.
    PeerConfig config;
    config.name = "pharmacist";
    pharmacist_ = std::make_unique<Peer>(config, &clinic_->simulator(),
                                         &clinic_->network(),
                                         &clinic_->node(0));
    pharmacist_->Start();
    // Pharmacist's source: patient id -> medication + dosage.
    relational::Schema schema = *relational::Schema::Create(
        {{std::string(kPatientId), relational::DataType::kInt, false},
         {std::string(kMedicationName), relational::DataType::kString, true},
         {std::string(kDosage), relational::DataType::kString, true}},
        {std::string(kPatientId)});
    ASSERT_TRUE(pharmacist_->database().CreateTable("DISPENSE", schema).ok());

    clinic_->doctor().AddKnownPeer("pharmacist", pharmacist_->address());
    pharmacist_->AddKnownPeer("doctor", clinic_->doctor().address());
  }

  /// Doctor's offer: share (a0, a1, a4) of D3 with the pharmacist.
  Peer::OfferParams DoctorOffer() {
    Peer::OfferParams params;
    params.table_id = "D3P";
    params.source_table = "D3";
    params.view_table = "D3P_view";
    params.lens = bx::MakeProjectLens(
        {kPatientId, kMedicationName, kDosage}, {kPatientId});
    params.contract = clinic_->contract();
    params.write_permission = {
        {kMedicationName, {clinic_->doctor().address()}},
        {kDosage, {clinic_->doctor().address()}}};
    params.membership = {clinic_->doctor().address()};
    params.authority = clinic_->doctor().address();
    return params;
  }

  /// Materializes the doctor's side of the offered view.
  void PrepareDoctorView() {
    Table d3 = *clinic_->doctor().database().Snapshot("D3");
    Table view = *bx::MakeProjectLens(
                      {kPatientId, kMedicationName, kDosage}, {kPatientId})
                      ->Get(d3);
    ASSERT_TRUE(clinic_->doctor()
                    .database()
                    .CreateTable("D3P_view", view.schema())
                    .ok());
    ASSERT_TRUE(
        clinic_->doctor().database().ReplaceTable("D3P_view", view).ok());
  }

  std::unique_ptr<ClinicScenario> clinic_;
  std::unique_ptr<Peer> pharmacist_;
};

TEST_F(BootstrapTest, OfferAcceptRegistersAndSyncs) {
  PrepareDoctorView();
  pharmacist_->SetOfferPolicy(
      [](const Peer::ShareOffer& offer) -> Result<Peer::ShareAcceptance> {
        Peer::ShareAcceptance acceptance;
        acceptance.source_table = "DISPENSE";
        acceptance.view_table = "D3P";
        acceptance.lens = bx::MakeProjectLens(
            {kPatientId, kMedicationName, kDosage}, {kPatientId});
        (void)offer;
        return acceptance;
      });

  ASSERT_TRUE(clinic_->doctor()
                  .OfferSharedTable("pharmacist", DoctorOffer())
                  .ok());
  EXPECT_TRUE(clinic_->doctor().HasPendingOffer("D3P"));
  ASSERT_TRUE(clinic_->SettleAll().ok());
  EXPECT_FALSE(clinic_->doctor().HasPendingOffer("D3P"));

  // Both sides adopted; the initial content flowed into the pharmacist's
  // source via the BX put.
  Table pharmacist_view = *pharmacist_->ReadSharedTable("D3P");
  Table doctor_view = *clinic_->doctor().ReadSharedTable("D3P");
  EXPECT_EQ(pharmacist_view, doctor_view);
  EXPECT_EQ(pharmacist_view.row_count(), 2u);
  Table dispense = *pharmacist_->database().Snapshot("DISPENSE");
  EXPECT_TRUE(dispense.Contains({Value::Int(188)}));

  // The table is registered on-chain with both peers.
  Json params = Json::MakeObject();
  params.Set("table_id", "D3P");
  Result<Json> entry = clinic_->node(0).Query(
      clinic_->contract(), "get_entry", params, clinic_->doctor().address());
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_EQ(entry->At("peers").size(), 2u);

  // The new sharing relationship is live: a doctor dosage update reaches
  // the pharmacist through the normal protocol...
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute("D3P", {Value::Int(188)}, kDosage,
                                         Value::String("dispense 400 mg"))
                  .ok());
  ASSERT_TRUE(clinic_->SettleAll().ok());
  // SettleAll only tracks the two built-in tables; give the pharmacist's
  // ack a couple more blocks.
  clinic_->simulator().RunFor(5 * kMicrosPerSecond);
  EXPECT_EQ(pharmacist_->database()
                .Snapshot("DISPENSE")
                ->Get({Value::Int(188)})
                ->at(2)
                .AsString(),
            "dispense 400 mg");
  // ...and the dependency check also refreshed the doctor's OTHER views of
  // D3 where applicable (none here: dosage is outside D32's footprint).
  EXPECT_EQ(clinic_->researcher().stats().fetches_applied, 0u);
}

TEST_F(BootstrapTest, OfferDeclinedWithoutPolicy) {
  PrepareDoctorView();
  // No policy set on the pharmacist.
  ASSERT_TRUE(clinic_->doctor()
                  .OfferSharedTable("pharmacist", DoctorOffer())
                  .ok());
  ASSERT_TRUE(clinic_->SettleAll().ok());
  EXPECT_FALSE(clinic_->doctor().HasPendingOffer("D3P"));  // answered: no
  EXPECT_FALSE(pharmacist_->ReadSharedTable("D3P").ok());
  EXPECT_FALSE(clinic_->doctor().ReadSharedTable("D3P").ok());
}

TEST_F(BootstrapTest, OfferRejectedByPolicy) {
  PrepareDoctorView();
  pharmacist_->SetOfferPolicy(
      [](const Peer::ShareOffer&) -> Result<Peer::ShareAcceptance> {
        return Status::PermissionDenied("compliance says no");
      });
  ASSERT_TRUE(clinic_->doctor()
                  .OfferSharedTable("pharmacist", DoctorOffer())
                  .ok());
  ASSERT_TRUE(clinic_->SettleAll().ok());
  EXPECT_FALSE(pharmacist_->database().HasTable("D3P"));
}

TEST_F(BootstrapTest, OfferWithMismatchedLensFailsCleanly) {
  PrepareDoctorView();
  pharmacist_->SetOfferPolicy(
      [](const Peer::ShareOffer&) -> Result<Peer::ShareAcceptance> {
        Peer::ShareAcceptance acceptance;
        acceptance.source_table = "DISPENSE";
        acceptance.view_table = "D3P";
        // Wrong lens: projects a schema that does not match the offer.
        acceptance.lens =
            bx::MakeProjectLens({kPatientId, kDosage}, {kPatientId});
        return acceptance;
      });
  ASSERT_TRUE(clinic_->doctor()
                  .OfferSharedTable("pharmacist", DoctorOffer())
                  .ok());
  ASSERT_TRUE(clinic_->SettleAll().ok());
  // Adoption failed and rolled back; nothing registered.
  EXPECT_FALSE(clinic_->doctor().ReadSharedTable("D3P").ok());
  Json params = Json::MakeObject();
  params.Set("table_id", "D3P");
  EXPECT_FALSE(clinic_->node(0)
                   .Query(clinic_->contract(), "get_entry", params,
                          clinic_->doctor().address())
                   .ok());
}

TEST_F(BootstrapTest, OfferValidation) {
  PrepareDoctorView();
  // Unknown counterparty.
  EXPECT_TRUE(clinic_->doctor()
                  .OfferSharedTable("nobody", DoctorOffer())
                  .IsNotFound());
  // Already-adopted table id.
  Peer::OfferParams dup = DoctorOffer();
  dup.table_id = kPD;
  EXPECT_TRUE(clinic_->doctor()
                  .OfferSharedTable("pharmacist", dup)
                  .IsAlreadyExists());
  // Double offer.
  ASSERT_TRUE(clinic_->doctor()
                  .OfferSharedTable("pharmacist", DoctorOffer())
                  .ok());
  EXPECT_TRUE(clinic_->doctor()
                  .OfferSharedTable("pharmacist", DoctorOffer())
                  .IsFailedPrecondition());
}

TEST(PowScenarioTest, UpdateRoundCompletesOnProofOfWorkChain) {
  ScenarioOptions options;
  options.consensus = ConsensusMode::kPow;
  options.pow_difficulty_bits = 8;
  Result<std::unique_ptr<ClinicScenario>> scenario =
      ClinicScenario::Create(options);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ClinicScenario& clinic = **scenario;

  ASSERT_TRUE(clinic.doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)}, kDosage,
                                         Value::String("mined dose"))
                  .ok());
  ASSERT_TRUE(clinic.SettleAll().ok());
  EXPECT_EQ(clinic.patient()
                .database()
                .Snapshot("D1")
                ->Get({Value::Int(188)})
                ->at(4)
                .AsString(),
            "mined dose");
  // Every block actually meets the difficulty.
  for (const chain::Block* block :
       clinic.node(1).blockchain().CanonicalChain()) {
    if (block->header.height == 0) continue;
    EXPECT_TRUE(chain::MeetsDifficulty(block->header.Hash(), 8));
  }
}

TEST(FailureInjectionTest, UpdateRoundSurvivesMessageLoss) {
  ScenarioOptions options;
  Result<std::unique_ptr<ClinicScenario>> scenario =
      ClinicScenario::Create(options);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ClinicScenario& clinic = **scenario;

  // 20% of ALL messages (gossip, blocks, fetches, acks) vanish.
  clinic.network().set_drop_probability(0.2);
  ASSERT_TRUE(clinic.doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)}, kDosage,
                                         Value::String("lossy dose"))
                  .ok());
  Status settled = clinic.SettleAll(300 * kMicrosPerSecond);
  ASSERT_TRUE(settled.ok()) << settled;
  clinic.network().set_drop_probability(0.0);

  EXPECT_EQ(clinic.patient()
                .database()
                .Snapshot("D1")
                ->Get({Value::Int(188)})
                ->at(4)
                .AsString(),
            "lossy dose");
  EXPECT_GT(clinic.network().stats().dropped, 0u);
  Json entry = *clinic.Entry(kPD);
  EXPECT_EQ(entry.At("pending_acks").size(), 0u);
}

TEST(FailureInjectionTest, FetchPartitionHealsAndRoundCompletes) {
  ScenarioOptions options;
  Result<std::unique_ptr<ClinicScenario>> scenario =
      ClinicScenario::Create(options);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ClinicScenario& clinic = **scenario;

  // Cut the doctor<->patient peer link (the fetch path) but leave the
  // chain nodes connected: the patient learns about the update from the
  // contract but cannot fetch the data yet.
  clinic.network().SetLinkDown("doctor", "patient", true);
  ASSERT_TRUE(clinic.doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)}, kDosage,
                                         Value::String("partitioned dose"))
                  .ok());
  clinic.simulator().RunFor(4 * kMicrosPerSecond);
  // Committed on-chain, but the patient still owes the ack.
  Json entry = *clinic.Entry(kPD);
  EXPECT_EQ(*entry.GetInt("version"), 2);
  EXPECT_EQ(entry.At("pending_acks").size(), 1u);
  EXPECT_EQ(clinic.patient()
                .database()
                .Snapshot("D1")
                ->Get({Value::Int(188)})
                ->at(4)
                .AsString(),
            "one tablet every 4h");
  // And nobody may update the table while the round is open.
  EXPECT_TRUE(clinic.doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(189)}, kDosage,
                                         Value::String("blocked"))
                  .ok());  // staged locally...
  clinic.simulator().RunFor(3 * kMicrosPerSecond);
  EXPECT_EQ(*clinic.Entry(kPD)->GetInt("version"), 2);  // ...but refused

  // Heal: the patient's fetch retries get through, the ack lands.
  clinic.network().SetLinkDown("doctor", "patient", false);
  ASSERT_TRUE(clinic.SettleAll(300 * kMicrosPerSecond).ok());
  EXPECT_EQ(clinic.patient()
                .database()
                .Snapshot("D1")
                ->Get({Value::Int(188)})
                ->at(4)
                .AsString(),
            "partitioned dose");
  EXPECT_EQ(clinic.Entry(kPD)->At("pending_acks").size(), 0u);
}

}  // namespace
}  // namespace medsync::core
