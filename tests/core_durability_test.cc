// Durable peers: a peer that keeps its database on disk recovers its full
// local state — including its per-shared-table sync position — after a
// restart, and SyncWithChain() fetches anything it missed while offline.

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "bx/lens_factory.h"
#include "common/strings.h"
#include "core/peer.h"
#include "core/scenario.h"
#include "medical/records.h"

namespace medsync::core {
namespace {

namespace fs = std::filesystem;
using medical::kDosage;
using medical::kMedicationName;
using medical::kPatientId;
using relational::Table;
using relational::Value;

class DurablePeerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            StrCat("medsync_durable_", ::getpid(), "_", counter_++))
               .string();
    ScenarioOptions options;
    Result<std::unique_ptr<ClinicScenario>> scenario =
        ClinicScenario::Create(options);
    ASSERT_TRUE(scenario.ok()) << scenario.status();
    clinic_ = std::move(*scenario);
  }

  void TearDown() override {
    archivist_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Starts (or restarts) the durable "archivist" peer against node 2.
  void BootArchivist() {
    PeerConfig config;
    config.name = "archivist";
    archivist_ = std::make_unique<Peer>(config, &clinic_->simulator(),
                                        &clinic_->network(),
                                        &clinic_->node(2));
    ASSERT_TRUE(archivist_->UseDurableStorage(dir_).ok());
    archivist_->Start();
    archivist_->AddKnownPeer("doctor", clinic_->doctor().address());
    clinic_->doctor().AddKnownPeer("archivist", archivist_->address());
  }

  bx::LensPtr ShareLens() {
    return bx::MakeProjectLens({kPatientId, kMedicationName, kDosage},
                               {kPatientId});
  }

  /// Runs the doctor->archivist bootstrap for table "ARCH".
  void EstablishSharing() {
    // Doctor's side of the view.
    if (!clinic_->doctor().database().HasTable("ARCH_view")) {
      Table d3 = *clinic_->doctor().database().Snapshot("D3");
      Table view = *ShareLens()->Get(d3);
      ASSERT_TRUE(clinic_->doctor()
                      .database()
                      .CreateTable("ARCH_view", view.schema())
                      .ok());
      ASSERT_TRUE(
          clinic_->doctor().database().ReplaceTable("ARCH_view", view).ok());
    }
    // Archivist accepts into a fresh local source.
    relational::Schema source_schema = *relational::Schema::Create(
        {{std::string(kPatientId), relational::DataType::kInt, false},
         {std::string(kMedicationName), relational::DataType::kString, true},
         {std::string(kDosage), relational::DataType::kString, true}},
        {std::string(kPatientId)});
    ASSERT_TRUE(
        archivist_->database().CreateTable("ARCHIVE", source_schema).ok());
    archivist_->SetOfferPolicy(
        [this](const Peer::ShareOffer&) -> Result<Peer::ShareAcceptance> {
          Peer::ShareAcceptance acceptance;
          acceptance.source_table = "ARCHIVE";
          acceptance.view_table = "ARCH";
          acceptance.lens = ShareLens();
          return acceptance;
        });

    Peer::OfferParams params;
    params.table_id = "ARCH";
    params.source_table = "D3";
    params.view_table = "ARCH_view";
    params.lens = ShareLens();
    params.contract = clinic_->contract();
    params.write_permission = {
        {kMedicationName, {clinic_->doctor().address()}},
        {kDosage, {clinic_->doctor().address()}}};
    params.membership = {clinic_->doctor().address()};
    params.authority = clinic_->doctor().address();
    ASSERT_TRUE(
        clinic_->doctor().OfferSharedTable("archivist", params).ok());
    ASSERT_TRUE(clinic_->SettleAll().ok());
    clinic_->simulator().RunFor(3 * kMicrosPerSecond);
  }

  /// The archivist's adoption config (needed again after a restart).
  SharedTableConfig ArchivistConfig() {
    return SharedTableConfig{"ARCH", "ARCHIVE", "ARCH", ShareLens(),
                             clinic_->contract()};
  }

  static inline int counter_ = 0;
  std::string dir_;
  std::unique_ptr<ClinicScenario> clinic_;
  std::unique_ptr<Peer> archivist_;
};

TEST_F(DurablePeerTest, StateSurvivesRestart) {
  BootArchivist();
  EstablishSharing();

  // One committed update raises the version to 2.
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute("ARCH", {Value::Int(188)}, kDosage,
                                         Value::String("persisted dose"))
                  .ok());
  ASSERT_TRUE(clinic_->SettleAll().ok());
  clinic_->simulator().RunFor(4 * kMicrosPerSecond);
  ASSERT_EQ(archivist_->GetSyncState("ARCH")->version, 2u);
  Table before = *archivist_->database().Snapshot("ARCHIVE");

  // Restart: destroy, re-create on the same directory, re-adopt.
  archivist_.reset();
  BootArchivist();
  ASSERT_TRUE(archivist_->AdoptSharedTable(ArchivistConfig()).ok());

  // Everything recovered from snapshot+WAL, including the sync position.
  EXPECT_EQ(*archivist_->database().Snapshot("ARCHIVE"), before);
  EXPECT_EQ(archivist_->GetSyncState("ARCH")->version, 2u);
  EXPECT_EQ(archivist_->ReadSharedTable("ARCH")
                ->Get({Value::Int(188)})
                ->at(2)
                .AsString(),
            "persisted dose");

  // Nothing was missed, so catch-up finds zero tables behind.
  Result<size_t> behind = archivist_->SyncWithChain();
  ASSERT_TRUE(behind.ok()) << behind.status();
  EXPECT_EQ(*behind, 0u);
}

TEST_F(DurablePeerTest, SyncWithChainFetchesUpdatesMissedWhileOffline) {
  BootArchivist();
  EstablishSharing();

  // The archivist goes offline (destroyed). The doctor keeps updating.
  archivist_.reset();
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute("ARCH", {Value::Int(188)}, kDosage,
                                         Value::String("offline dose"))
                  .ok());
  // The round cannot complete (the archivist owes the ack)...
  clinic_->simulator().RunFor(8 * kMicrosPerSecond);
  Json params = Json::MakeObject();
  params.Set("table_id", "ARCH");
  Json entry = *clinic_->node(0).Query(clinic_->contract(), "get_entry",
                                       params, clinic_->doctor().address());
  EXPECT_EQ(*entry.GetInt("version"), 2);
  EXPECT_EQ(entry.At("pending_acks").size(), 1u);

  // ...until the archivist restarts, re-adopts, and reconciles.
  BootArchivist();
  ASSERT_TRUE(archivist_->AdoptSharedTable(ArchivistConfig()).ok());
  EXPECT_EQ(archivist_->GetSyncState("ARCH")->version, 1u);  // stale

  Result<size_t> behind = archivist_->SyncWithChain();
  ASSERT_TRUE(behind.ok()) << behind.status();
  EXPECT_EQ(*behind, 1u);
  clinic_->simulator().RunFor(6 * kMicrosPerSecond);

  // Caught up, acked, and the round closed.
  EXPECT_EQ(archivist_->GetSyncState("ARCH")->version, 2u);
  EXPECT_EQ(archivist_->database()
                .Snapshot("ARCHIVE")
                ->Get({Value::Int(188)})
                ->at(2)
                .AsString(),
            "offline dose");
  entry = *clinic_->node(0).Query(clinic_->contract(), "get_entry", params,
                                  clinic_->doctor().address());
  EXPECT_EQ(entry.At("pending_acks").size(), 0u);

  // A fresh update round now works normally again.
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute("ARCH", {Value::Int(189)}, kDosage,
                                         Value::String("post-restart"))
                  .ok());
  ASSERT_TRUE(clinic_->SettleAll().ok());
  clinic_->simulator().RunFor(4 * kMicrosPerSecond);
  EXPECT_EQ(archivist_->GetSyncState("ARCH")->version, 3u);
}

TEST_F(DurablePeerTest, UseDurableStorageRequiresEmptyDatabase) {
  BootArchivist();
  ASSERT_TRUE(archivist_->database()
                  .CreateTable("t", *relational::Schema::Create(
                                        {{"id", relational::DataType::kInt,
                                          false}},
                                        {"id"}))
                  .ok());
  EXPECT_TRUE(
      archivist_->UseDurableStorage(dir_ + "_other").IsFailedPrecondition());
}

}  // namespace
}  // namespace medsync::core
