#include <gtest/gtest.h>

#include "bx/lens.h"
#include "bx/lens_factory.h"
#include "core/sync_manager.h"
#include "medical/records.h"
#include "relational/query.h"

// The online BX law oracle (SyncManager::set_check_bx_laws, default from
// -DMEDSYNC_CHECK_BX_LAWS): deliberately law-breaking lenses must be caught
// at the first put/rederivation, and law-abiding lenses must pass with the
// oracle on. See bx/laws.h for the checkers the oracle reuses.

namespace medsync::core {
namespace {

using medical::kClinicalData;
using medical::kDosage;
using medical::kMedicationName;
using medical::kPatientId;
using relational::Table;
using relational::Value;

/// Breaks PutGet: Get is the identity, but Put RETURNS THE SOURCE
/// UNCHANGED, silently dropping every view edit — so Get(Put(S, V)) == S
/// instead of V. This is the classic lens bug the oracle exists for: the
/// put "succeeds" and the peer's edit evaporates.
class EditDroppingLens : public bx::Lens {
 public:
  Result<relational::Schema> ViewSchema(
      const relational::Schema& source_schema) const override {
    return source_schema;
  }
  Result<Table> Get(const Table& source) const override { return source; }
  Result<Table> Put(const Table& source, const Table&) const override {
    return source;  // the law violation: the view is ignored
  }
  Result<bx::SourceFootprint> Footprint(
      const relational::Schema& source_schema) const override {
    bx::SourceFootprint footprint;
    for (const auto& attribute : source_schema.attributes()) {
      footprint.read.insert(attribute.name);
      footprint.written.insert(attribute.name);
    }
    footprint.affects_membership = true;
    return footprint;
  }
  Json ToJson() const override {
    Json out = Json::MakeObject();
    out.Set("type", "test-edit-dropping");
    return out;
  }
  std::string ToString() const override { return "test-edit-dropping"; }
};

/// Breaks GetPut: Get drops every row (the view is always empty) while Put
/// replaces the source with the view verbatim — so Put(S, Get(S)) is an
/// EMPTY table instead of S, and one round trip wipes the source.
class RowDroppingLens : public bx::Lens {
 public:
  Result<relational::Schema> ViewSchema(
      const relational::Schema& source_schema) const override {
    return source_schema;
  }
  Result<Table> Get(const Table& source) const override {
    return Table(source.schema());
  }
  Result<Table> Put(const Table&, const Table& view) const override {
    return view;
  }
  Result<bx::SourceFootprint> Footprint(
      const relational::Schema& source_schema) const override {
    bx::SourceFootprint footprint;
    for (const auto& attribute : source_schema.attributes()) {
      footprint.read.insert(attribute.name);
      footprint.written.insert(attribute.name);
    }
    footprint.affects_membership = true;
    return footprint;
  }
  Json ToJson() const override {
    Json out = Json::MakeObject();
    out.Set("type", "test-row-dropping");
    return out;
  }
  std::string ToString() const override { return "test-row-dropping"; }
};

class BxOracleTest : public ::testing::Test {
 protected:
  BxOracleTest() : sync_(&db_, DependencyStrategy::kAlwaysRederive) {
    Table full = medical::MakeFig1FullRecords();
    source_ = *relational::Project(
        full, {kPatientId, kMedicationName, kClinicalData, kDosage},
        {kPatientId});
    EXPECT_TRUE(db_.CreateTable("S", source_.schema()).ok());
    EXPECT_TRUE(db_.ReplaceTable("S", source_).ok());
    // Identity-schema view table (both broken lenses present the source
    // schema as the view schema).
    EXPECT_TRUE(db_.CreateTable("V", source_.schema()).ok());
    EXPECT_TRUE(db_.ReplaceTable("V", source_).ok());
  }

  relational::Database db_;
  SyncManager sync_;
  Table source_{relational::Schema()};
};

TEST_F(BxOracleTest, DefaultTracksCompileOption) {
  EXPECT_EQ(sync_.check_bx_laws(), SyncManager::kCheckBxLawsDefault);
}

TEST_F(BxOracleTest, PutGetViolationCaughtOnPut) {
  ASSERT_TRUE(
      sync_.RegisterView("bad", "S", "V", std::make_shared<EditDroppingLens>())
          .ok());
  // Edit the view; the broken Put will silently drop this edit.
  ASSERT_TRUE(db_.UpdateAttribute("V", {Value::Int(188)}, kDosage,
                                  Value::String("edited"))
                  .ok());

  // Without the oracle the put "succeeds" — the edit just evaporates.
  sync_.set_check_bx_laws(false);
  EXPECT_TRUE(sync_.PutViewIntoSource("bad").ok());
  EXPECT_EQ(db_.Snapshot("S")->Get({Value::Int(188)})->at(3).AsString(),
            source_.Get({Value::Int(188)})->at(3).AsString());

  // With the oracle the same put is rejected, naming the broken law.
  sync_.set_check_bx_laws(true);
  Result<bx::SourceChange> put = sync_.PutViewIntoSource("bad");
  ASSERT_FALSE(put.ok());
  EXPECT_TRUE(put.status().IsFailedPrecondition()) << put.status();
  EXPECT_NE(put.status().message().find("BX law oracle"), std::string::npos)
      << put.status();
  EXPECT_NE(put.status().message().find("PutGet"), std::string::npos)
      << put.status();
}

TEST_F(BxOracleTest, GetPutViolationCaughtOnDerive) {
  ASSERT_TRUE(
      sync_.RegisterView("bad", "S", "V", std::make_shared<RowDroppingLens>())
          .ok());
  sync_.set_check_bx_laws(true);
  Result<Table> derived = sync_.DeriveView("bad");
  ASSERT_FALSE(derived.ok());
  EXPECT_TRUE(derived.status().IsFailedPrecondition()) << derived.status();
  EXPECT_NE(derived.status().message().find("GetPut"), std::string::npos)
      << derived.status();

  // Oracle off: the derivation silently yields the row-dropping view.
  sync_.set_check_bx_laws(false);
  derived = sync_.DeriveView("bad");
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived->row_count(), 0u);
}

TEST_F(BxOracleTest, GetPutViolationCaughtOnCascadeRederivation) {
  // A law-abiding updater view plus a law-breaking sibling of the same
  // source: the Fig. 5 step-6 dependency check must catch the sibling when
  // it falls back to a full rederivation.
  bx::LensPtr good = bx::MakeProjectLens({kPatientId, kDosage}, {kPatientId});
  Table good_view = *good->Get(*db_.Snapshot("S"));
  ASSERT_TRUE(db_.CreateTable("GV", good_view.schema()).ok());
  ASSERT_TRUE(db_.ReplaceTable("GV", good_view).ok());
  ASSERT_TRUE(sync_.RegisterView("good", "S", "GV", good).ok());
  ASSERT_TRUE(
      sync_.RegisterView("bad", "S", "V", std::make_shared<RowDroppingLens>())
          .ok());
  sync_.set_check_bx_laws(true);

  Table before = *db_.Snapshot("S");
  ASSERT_TRUE(db_.UpdateAttribute("S", {Value::Int(188)}, kDosage,
                                  Value::String("changed"))
                  .ok());
  Result<std::vector<ViewRefresh>> affected =
      sync_.FindAffectedViews("S", before, "good");
  ASSERT_FALSE(affected.ok());
  EXPECT_NE(affected.status().message().find("GetPut"), std::string::npos)
      << affected.status();
}

TEST_F(BxOracleTest, LawAbidingLensPassesWithOracleOn) {
  bx::LensPtr lens = bx::MakeProjectLens({kPatientId, kDosage}, {kPatientId});
  Table view = *lens->Get(*db_.Snapshot("S"));
  ASSERT_TRUE(db_.CreateTable("PV", view.schema()).ok());
  ASSERT_TRUE(db_.ReplaceTable("PV", view).ok());
  ASSERT_TRUE(sync_.RegisterView("ok", "S", "PV", lens).ok());
  sync_.set_check_bx_laws(true);

  EXPECT_TRUE(sync_.DeriveView("ok").ok());
  ASSERT_TRUE(db_.UpdateAttribute("PV", {Value::Int(188)}, kDosage,
                                  Value::String("new dose"))
                  .ok());
  Result<bx::SourceChange> put = sync_.PutViewIntoSource("ok");
  ASSERT_TRUE(put.ok()) << put.status();
  EXPECT_EQ(db_.Snapshot("S")->Get({Value::Int(188)})->at(3).AsString(),
            "new dose");
}

}  // namespace
}  // namespace medsync::core
