// End-to-end crash recovery of a durable sharing peer under injected
// faults: the process dies at a named kill-point mid-protocol (between WAL
// append and in-memory apply, or mid-checkpoint), reboots from its
// directory, and the periodic catch-up reconciliation — not any manual
// intervention — completes the interrupted Fig. 4/5 round.

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "bx/lens_factory.h"
#include "common/fault_injector.h"
#include "common/strings.h"
#include "core/peer.h"
#include "core/scenario.h"
#include "medical/records.h"

namespace medsync::core {
namespace {

namespace fs = std::filesystem;
using medical::kDosage;
using medical::kMedicationName;
using medical::kPatientId;
using relational::Table;
using relational::Value;

class PeerFaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            StrCat("medsync_peerfault_", ::getpid(), "_", counter_++))
               .string();
    ScenarioOptions options;
    Result<std::unique_ptr<ClinicScenario>> scenario =
        ClinicScenario::Create(options);
    ASSERT_TRUE(scenario.ok()) << scenario.status();
    clinic_ = std::move(*scenario);
    FaultInjector::Install(&injector_);
  }

  void TearDown() override {
    FaultInjector::Install(nullptr);
    archivist_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Starts (or restarts) the durable "archivist" peer against node 2. The
  /// periodic catch-up (PeerConfig::catch_up_interval) is what heals the
  /// post-crash gap, so it stays at its default.
  void BootArchivist() {
    PeerConfig config;
    config.name = "archivist";
    archivist_ = std::make_unique<Peer>(config, &clinic_->simulator(),
                                        &clinic_->network(),
                                        &clinic_->node(2));
    ASSERT_TRUE(archivist_->UseDurableStorage(dir_).ok());
    archivist_->Start();
    archivist_->AddKnownPeer("doctor", clinic_->doctor().address());
    clinic_->doctor().AddKnownPeer("archivist", archivist_->address());
  }

  bx::LensPtr ShareLens() {
    return bx::MakeProjectLens({kPatientId, kMedicationName, kDosage},
                               {kPatientId});
  }

  /// Doctor->archivist bootstrap for shared table "ARCH".
  void EstablishSharing() {
    if (!clinic_->doctor().database().HasTable("ARCH_view")) {
      Table d3 = *clinic_->doctor().database().Snapshot("D3");
      Table view = *ShareLens()->Get(d3);
      ASSERT_TRUE(clinic_->doctor()
                      .database()
                      .CreateTable("ARCH_view", view.schema())
                      .ok());
      ASSERT_TRUE(
          clinic_->doctor().database().ReplaceTable("ARCH_view", view).ok());
    }
    relational::Schema source_schema = *relational::Schema::Create(
        {{std::string(kPatientId), relational::DataType::kInt, false},
         {std::string(kMedicationName), relational::DataType::kString, true},
         {std::string(kDosage), relational::DataType::kString, true}},
        {std::string(kPatientId)});
    ASSERT_TRUE(
        archivist_->database().CreateTable("ARCHIVE", source_schema).ok());
    archivist_->SetOfferPolicy(
        [this](const Peer::ShareOffer&) -> Result<Peer::ShareAcceptance> {
          Peer::ShareAcceptance acceptance;
          acceptance.source_table = "ARCHIVE";
          acceptance.view_table = "ARCH";
          acceptance.lens = ShareLens();
          return acceptance;
        });

    Peer::OfferParams params;
    params.table_id = "ARCH";
    params.source_table = "D3";
    params.view_table = "ARCH_view";
    params.lens = ShareLens();
    params.contract = clinic_->contract();
    params.write_permission = {
        {kMedicationName, {clinic_->doctor().address()}},
        {kDosage, {clinic_->doctor().address()}}};
    params.membership = {clinic_->doctor().address()};
    params.authority = clinic_->doctor().address();
    ASSERT_TRUE(
        clinic_->doctor().OfferSharedTable("archivist", params).ok());
    ASSERT_TRUE(clinic_->SettleAll().ok());
    clinic_->simulator().RunFor(3 * kMicrosPerSecond);
    ASSERT_EQ(archivist_->GetSyncState("ARCH")->version, 1u);
  }

  SharedTableConfig ArchivistConfig() {
    return SharedTableConfig{"ARCH", "ARCHIVE", "ARCH", ShareLens(),
                             clinic_->contract()};
  }

  Json ArchEntry() {
    Json params = Json::MakeObject();
    params.Set("table_id", "ARCH");
    return *clinic_->node(0).Query(clinic_->contract(), "get_entry", params,
                                   clinic_->doctor().address());
  }

  static inline int counter_ = 0;
  std::string dir_;
  std::unique_ptr<ClinicScenario> clinic_;
  std::unique_ptr<Peer> archivist_;
  FaultInjector injector_;
};

TEST_F(PeerFaultInjectionTest, CrashDuringFetchedUpdateApplyHealsViaCatchUp) {
  BootArchivist();
  EstablishSharing();

  // The archivist's NEXT durable write dies after the WAL append but
  // before the in-memory apply — i.e. the process is killed in the middle
  // of applying the doctor's fetched update.
  injector_.Kill("wal.append.after_write");
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute("ARCH", {Value::Int(188)}, kDosage,
                                         Value::String("crashed apply"))
                  .ok());
  // Run only until the kill-point fires, then destroy the peer — the
  // process died right there. (Left alive, its own catch-up timer would
  // self-heal without any restart; that path is covered above.)
  for (int i = 0; i < 100 && injector_.faults_fired() == 0; ++i) {
    clinic_->simulator().RunFor(100 * kMicrosPerMilli);
  }
  ASSERT_EQ(injector_.faults_fired(), 1u);
  archivist_.reset();
  clinic_->simulator().RunFor(2 * kMicrosPerSecond);
  // The round is stuck: the archivist never acked.
  EXPECT_EQ(ArchEntry().At("pending_acks").size(), 1u);
  BootArchivist();
  ASSERT_TRUE(archivist_->AdoptSharedTable(ArchivistConfig()).ok());

  // No manual SyncWithChain: the periodic catch-up finds the stale table,
  // refetches, applies, and acks — closing the round.
  clinic_->simulator().RunFor(15 * kMicrosPerSecond);
  EXPECT_EQ(archivist_->GetSyncState("ARCH")->version, 2u);
  EXPECT_EQ(archivist_->ReadSharedTable("ARCH")
                ->Get({Value::Int(188)})
                ->at(2)
                .AsString(),
            "crashed apply");
  EXPECT_EQ(ArchEntry().At("pending_acks").size(), 0u);
}

TEST_F(PeerFaultInjectionTest, CrashMidCheckpointRecoversAndResumesProtocol) {
  BootArchivist();
  EstablishSharing();

  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute("ARCH", {Value::Int(188)}, kDosage,
                                         Value::String("pre-checkpoint"))
                  .ok());
  ASSERT_TRUE(clinic_->SettleAll().ok());
  clinic_->simulator().RunFor(4 * kMicrosPerSecond);
  ASSERT_EQ(archivist_->GetSyncState("ARCH")->version, 2u);
  Table before = *archivist_->database().Snapshot("ARCHIVE");

  // Killed in the checkpoint crash window: the new snapshot is published
  // but the WAL was never truncated.
  injector_.Kill("db.checkpoint.before_wal_reset");
  EXPECT_TRUE(archivist_->database().Checkpoint().IsUnavailable());
  archivist_.reset();

  // Reboot: recovery must NOT double-apply the WAL onto the new snapshot.
  BootArchivist();
  ASSERT_TRUE(archivist_->AdoptSharedTable(ArchivistConfig()).ok());
  EXPECT_EQ(*archivist_->database().Snapshot("ARCHIVE"), before);
  EXPECT_EQ(archivist_->GetSyncState("ARCH")->version, 2u);

  // And the peer is fully back in the protocol: a fresh round completes.
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute("ARCH", {Value::Int(188)}, kDosage,
                                         Value::String("post-recovery"))
                  .ok());
  ASSERT_TRUE(clinic_->SettleAll().ok());
  clinic_->simulator().RunFor(6 * kMicrosPerSecond);
  EXPECT_EQ(archivist_->GetSyncState("ARCH")->version, 3u);
  EXPECT_EQ(ArchEntry().At("pending_acks").size(), 0u);
}

TEST_F(PeerFaultInjectionTest, RepeatedCrashesConvergeToTheSameBytes) {
  // Two crashes in one lifetime — one mid-apply, one mid-checkpoint — and
  // the peer still converges to exactly the doctor's view of the shared
  // data. Fault tolerance composes.
  BootArchivist();
  EstablishSharing();

  injector_.Kill("wal.append.after_write");
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute("ARCH", {Value::Int(189)},
                                         kMedicationName,
                                         Value::String("Renamed-A"))
                  .ok());
  for (int i = 0; i < 100 && injector_.faults_fired() == 0; ++i) {
    clinic_->simulator().RunFor(100 * kMicrosPerMilli);
  }
  ASSERT_EQ(injector_.faults_fired(), 1u);
  archivist_.reset();  // crash 1

  BootArchivist();
  ASSERT_TRUE(archivist_->AdoptSharedTable(ArchivistConfig()).ok());
  clinic_->simulator().RunFor(15 * kMicrosPerSecond);
  ASSERT_EQ(archivist_->GetSyncState("ARCH")->version, 2u);

  injector_.Kill("db.checkpoint.before_wal_reset");
  EXPECT_TRUE(archivist_->database().Checkpoint().IsUnavailable());
  archivist_.reset();  // crash 2

  BootArchivist();
  ASSERT_TRUE(archivist_->AdoptSharedTable(ArchivistConfig()).ok());
  clinic_->simulator().RunFor(6 * kMicrosPerSecond);

  // Byte-identical convergence with the authoritative copy.
  EXPECT_EQ(*archivist_->ReadSharedTable("ARCH"),
            *clinic_->doctor().database().Snapshot("ARCH_view"));
  EXPECT_EQ(ArchEntry().At("pending_acks").size(), 0u);
}

}  // namespace
}  // namespace medsync::core
