// Frame codec: round trips, the every-split-point partial-read property,
// and the corruption latch (a TCP stream that fails CRC/framing cannot be
// resynchronized, so the decoder must refuse everything after the first bad
// byte and the transport must drop the connection).

#include "net/frame.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace medsync::net {
namespace {

Frame MakeFrame(std::string type, std::string payload) {
  Frame frame;
  frame.type = std::move(type);
  frame.payload = std::move(payload);
  return frame;
}

/// Feeds `wire` into a fresh decoder in two pieces split at `split`, and
/// returns every decoded frame, failing the test on any decode error.
std::vector<Frame> DecodeSplit(const std::string& wire, size_t split) {
  FrameDecoder decoder;
  decoder.Feed(std::string_view(wire).substr(0, split));
  std::vector<Frame> out;
  auto drain = [&] {
    while (true) {
      Result<std::optional<Frame>> next = decoder.Next();
      ASSERT_TRUE(next.ok()) << "split=" << split << ": "
                             << next.status().ToString();
      if (!next->has_value()) break;
      out.push_back(std::move(**next));
    }
  };
  drain();
  decoder.Feed(std::string_view(wire).substr(split));
  drain();
  return out;
}

TEST(FrameTest, RoundTripsTypeAndPayload) {
  Frame in = MakeFrame("chain.block", "{\"height\":7}");
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(in));
  Result<std::optional<Frame>> out = decoder.Next();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ((*out)->type, in.type);
  EXPECT_EQ((*out)->payload, in.payload);
  // Stream exhausted: no frame, no error.
  Result<std::optional<Frame>> empty = decoder.Next();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
  EXPECT_FALSE(decoder.corrupt());
}

TEST(FrameTest, RoundTripsEmptyPayloadAndBinaryBytes) {
  for (const Frame& in :
       {MakeFrame("ping", ""),
        MakeFrame("blob", std::string("\x00\xff\x01\xfe\n\r", 6))}) {
    FrameDecoder decoder;
    decoder.Feed(EncodeFrame(in));
    Result<std::optional<Frame>> out = decoder.Next();
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out->has_value());
    EXPECT_EQ((*out)->type, in.type);
    EXPECT_EQ((*out)->payload, in.payload);
  }
}

// The partial-read property: a back-to-back stream of frames decodes to the
// same sequence no matter where the kernel happens to split the reads.
TEST(FrameTest, DecodesIdenticallyAtEverySplitPoint) {
  const std::vector<Frame> frames = {
      MakeFrame("rel.data", "{\"seq\":1,\"payload\":{\"k\":\"v\"}}"),
      MakeFrame("ping", ""),
      MakeFrame("chain.tx", std::string(300, 'x'))};
  std::string wire;
  for (const Frame& frame : frames) wire += EncodeFrame(frame);

  for (size_t split = 0; split <= wire.size(); ++split) {
    std::vector<Frame> out = DecodeSplit(wire, split);
    ASSERT_EQ(out.size(), frames.size()) << "split=" << split;
    for (size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(out[i].type, frames[i].type) << "split=" << split;
      EXPECT_EQ(out[i].payload, frames[i].payload) << "split=" << split;
    }
  }
}

TEST(FrameTest, ByteAtATimeFeedDecodesAllFrames) {
  std::string wire =
      EncodeFrame(MakeFrame("a", "111")) + EncodeFrame(MakeFrame("b", "222"));
  FrameDecoder decoder;
  std::vector<Frame> out;
  for (char c : wire) {
    decoder.Feed(std::string_view(&c, 1));
    Result<std::optional<Frame>> next = decoder.Next();
    ASSERT_TRUE(next.ok());
    if (next->has_value()) out.push_back(std::move(**next));
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, "111");
  EXPECT_EQ(out[1].payload, "222");
}

// Flipping ANY single byte of a frame must be rejected — either as a CRC
// mismatch (body/CRC bytes) or as a header violation — and never decode to
// a wrong frame.
TEST(FrameTest, AnySingleByteFlipIsRejectedOrDetected) {
  const Frame in = MakeFrame("rel.data", "{\"seq\":42}");
  const std::string wire = EncodeFrame(in);
  for (size_t i = 0; i < wire.size(); ++i) {
    std::string bad = wire;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    FrameDecoder decoder;
    decoder.Feed(bad);
    Result<std::optional<Frame>> out = decoder.Next();
    if (out.ok()) {
      // A flip in a length field may leave the frame merely incomplete
      // (waiting for more bytes) — acceptable, since the CRC still guards
      // the final decode — but it must never yield a different frame.
      EXPECT_FALSE(out->has_value()) << "byte " << i << " decoded anyway";
    } else {
      EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
      EXPECT_TRUE(decoder.corrupt());
    }
  }
}

TEST(FrameTest, CorruptionLatches) {
  std::string wire = EncodeFrame(MakeFrame("t", "good"));
  std::string bad = wire;
  bad[kFrameHeaderSize] ^= 0x01;  // flip first body byte -> CRC mismatch
  FrameDecoder decoder;
  decoder.Feed(bad);
  Result<std::optional<Frame>> first = decoder.Next();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kCorruption);
  EXPECT_TRUE(decoder.corrupt());
  // Even pristine frames after the corruption point must be refused: a
  // byte stream has no frame boundary to resynchronize on.
  decoder.Feed(wire);
  Result<std::optional<Frame>> second = decoder.Next();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kCorruption);
}

TEST(FrameTest, RejectsBadMagicVersionFlagsAndCaps) {
  struct Case {
    size_t offset;
    char value;
  };
  // magic byte, version byte, flags byte.
  for (const Case& c : {Case{0, 'X'}, Case{4, 7}, Case{6, 1}}) {
    std::string wire = EncodeFrame(MakeFrame("t", "p"));
    wire[c.offset] = c.value;
    FrameDecoder decoder;
    decoder.Feed(wire);
    Result<std::optional<Frame>> out = decoder.Next();
    ASSERT_FALSE(out.ok()) << "offset " << c.offset;
    EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
  }

  // Oversized length fields are rejected from the header alone — no
  // attacker can make the decoder buffer gigabytes by promising them.
  std::string wire = EncodeFrame(MakeFrame("t", "p"));
  wire[8] = '\xff';  // type_len low byte
  wire[9] = '\xff';
  wire[10] = '\xff';
  wire[11] = '\x7f';
  FrameDecoder decoder;
  decoder.Feed(wire);
  Result<std::optional<Frame>> out = decoder.Next();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(FrameTest, BufferCompactionKeepsLongStreamsBounded) {
  FrameDecoder decoder;
  const std::string one = EncodeFrame(MakeFrame("t", std::string(1000, 'z')));
  for (int i = 0; i < 200; ++i) {
    decoder.Feed(one);
    Result<std::optional<Frame>> out = decoder.Next();
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out->has_value());
  }
  // The consumed prefix must not accumulate across 200 frames.
  EXPECT_LT(decoder.buffered(), 3 * one.size());
}

}  // namespace
}  // namespace medsync::net
