// Crash/fault-injection regressions for the durability layer: the
// checkpoint write path (fsync-before-rename ordering, torn snapshot
// writes, the crash window between snapshot rename and WAL reset), the
// WAL append path (torn tails, kill between append and apply), and the
// block log (every accepted block is synced). Each test models a process
// killed at a named point and then exercises the REAL recovery path by
// reopening the same directory.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <unistd.h>

#include "chain/blockchain.h"
#include "common/fault_injector.h"
#include "common/strings.h"
#include "relational/database.h"
#include "runtime/block_store.h"

namespace medsync::relational {
namespace {

namespace fs = std::filesystem;

Schema S() {
  return *Schema::Create(
      {{"id", DataType::kInt, false}, {"v", DataType::kString, true}},
      {"id"});
}

Row R(int64_t id, const char* v) {
  return {Value::Int(id), Value::String(v)};
}

class DurabilityFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            StrCat("medsync_fault_", ::getpid(), "_", counter_++))
               .string();
    FaultInjector::Install(&injector_);
  }

  void TearDown() override {
    FaultInjector::Install(nullptr);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Index of `point`'s first occurrence in the visit log (requires it).
  size_t VisitIndex(const std::string& point) {
    std::vector<std::string> visits = injector_.visits();
    auto it = std::find(visits.begin(), visits.end(), point);
    EXPECT_NE(it, visits.end()) << point << " never visited";
    return static_cast<size_t>(it - visits.begin());
  }

  static inline int counter_ = 0;
  std::string dir_;
  FaultInjector injector_;
};

TEST_F(DurabilityFaultTest, CheckpointSyncsFileBeforeRenameAndDirAfter) {
  // Regression for the snapshot-write ordering bug: the data must be
  // fsync'd BEFORE the rename publishes it (else the directory entry can
  // point at unwritten bytes after a power cut), and the directory fsync'd
  // AFTER (else the rename itself may not survive).
  Result<Database> db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->CreateTable("t", S()).ok());
  ASSERT_TRUE(db->Insert("t", R(1, "a")).ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  size_t write = VisitIndex("db.snapshot.write");
  size_t file_sync = VisitIndex("db.snapshot.file_sync");
  size_t rename = VisitIndex("db.snapshot.rename");
  size_t dir_sync = VisitIndex("db.snapshot.dir_sync");
  size_t wal_reset = VisitIndex("wal.reset.before");
  EXPECT_LT(write, file_sync);
  EXPECT_LT(file_sync, rename);
  EXPECT_LT(rename, dir_sync);
  // The WAL is truncated only after the snapshot is fully published.
  EXPECT_LT(dir_sync, wal_reset);
  EXPECT_EQ(injector_.faults_fired(), 0u);
}

TEST_F(DurabilityFaultTest, TornSnapshotWriteLeavesOldSnapshotUsable) {
  {
    Result<Database> db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Insert("t", R(1, "snapshotted")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Insert("t", R(2, "in wal")).ok());

    // The next checkpoint's snapshot write is torn after 10 bytes — the
    // crash happens while writing snapshot.json.tmp, so the OLD snapshot
    // must stay untouched.
    injector_.TornWrite("db.snapshot.write", /*keep_bytes=*/10);
    EXPECT_TRUE(db->Checkpoint().IsUnavailable());
    EXPECT_EQ(injector_.faults_fired(), 1u);
  }
  Result<Database> db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db->GetTable("t"))->Get({Value::Int(1)})->at(1).AsString(),
            "snapshotted");
  EXPECT_EQ((*db->GetTable("t"))->Get({Value::Int(2)})->at(1).AsString(),
            "in wal");
}

TEST_F(DurabilityFaultTest, CrashBeforeSnapshotRenameKeepsOldState) {
  {
    Result<Database> db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Insert("t", R(1, "old")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Insert("t", R(2, "new")).ok());

    // Killed after the tmp file is written and synced but before the
    // rename publishes it.
    injector_.Kill("db.snapshot.rename");
    EXPECT_TRUE(db->Checkpoint().IsUnavailable());
  }
  Result<Database> db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db->GetTable("t"))->Contains({Value::Int(1)}));
  EXPECT_TRUE((*db->GetTable("t"))->Contains({Value::Int(2)}));
}

TEST_F(DurabilityFaultTest, CrashBetweenSnapshotRenameAndWalResetIsIdempotent) {
  // THE checkpoint crash-window regression: the process dies after the new
  // snapshot is published but before the WAL is truncated. Recovery then
  // sees a snapshot that already contains every WAL record. Before the
  // LSN-tagged snapshot fix, reopening replayed those records a second
  // time into the snapshot state and failed (or corrupted the tables);
  // now the snapshot's wal_through high-water mark skips them.
  Table expected(S());
  {
    Result<Database> db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Insert("t", R(1, "first")).ok());
    ASSERT_TRUE(db->Insert("t", R(2, "second")).ok());
    ASSERT_TRUE(db->Delete("t", {Value::Int(1)}).ok());

    injector_.Kill("db.checkpoint.before_wal_reset");
    EXPECT_TRUE(db->Checkpoint().IsUnavailable());
    expected = *db->Snapshot("t");
  }
  // The snapshot IS the new one and the WAL is NOT empty — the exact
  // half-checkpointed state.
  ASSERT_TRUE(fs::exists(dir_ + "/snapshot.json"));
  ASSERT_GT(fs::file_size(dir_ + "/wal.log"), 0u);

  {
    Result<Database> db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status();
    // Byte-identical convergence: replay was skipped, not duplicated.
    EXPECT_EQ(*db->Snapshot("t"), expected);

    // LSN continuity: fresh appends never reuse checkpoint-covered
    // numbers, so a SECOND crash-free reopen still converges.
    ASSERT_TRUE(db->Insert("t", R(3, "after crash")).ok());
    expected = *db->Snapshot("t");
  }
  Result<Database> db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(*db->Snapshot("t"), expected);
}

TEST_F(DurabilityFaultTest, KillBetweenWalAppendAndApplyReplaysOnReopen) {
  // The record reached the durable log but the process died before the
  // in-memory apply: redo-log semantics say the reopened database HAS the
  // row even though the caller saw an error.
  {
    Result<Database> db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    injector_.Kill("wal.append.after_write");
    EXPECT_TRUE(db->Insert("t", R(1, "logged not applied")).IsUnavailable());
    EXPECT_FALSE((*db->GetTable("t"))->Contains({Value::Int(1)}));
  }
  Result<Database> db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db->GetTable("t"))->Get({Value::Int(1)})->at(1).AsString(),
            "logged not applied");
}

TEST_F(DurabilityFaultTest, TornWalAppendIsTruncatedOnReopen) {
  {
    Result<Database> db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Insert("t", R(1, "intact")).ok());
    injector_.TornWrite("wal.append.write", /*keep_bytes=*/6);
    EXPECT_TRUE(db->Insert("t", R(2, "torn")).IsUnavailable());
  }
  Result<Database> db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db->GetTable("t"))->Contains({Value::Int(1)}));
  EXPECT_FALSE((*db->GetTable("t"))->Contains({Value::Int(2)}));
  EXPECT_EQ(db->wal_stats().truncations, 1u);
  // The log is healthy again after the cut: new writes commit and survive.
  ASSERT_TRUE(db->Insert("t", R(3, "healed")).ok());
  Result<Database> again = Database::Open(dir_);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE((*again->GetTable("t"))->Contains({Value::Int(3)}));
}

TEST_F(DurabilityFaultTest, BlockStoreSyncsEveryAcceptedBlockByDefault) {
  // Regression for the block-log durability bug: acceptance implies
  // durability, so Append must fdatasync by default.
  fs::create_directories(dir_);
  chain::Block genesis = chain::Blockchain::MakeGenesis(0);
  chain::Block child;
  child.header.height = 1;
  child.header.parent = genesis.header.Hash();
  child.header.merkle_root = child.ComputeMerkleRoot();

  std::vector<chain::Block> recovered;
  Result<runtime::BlockStore> store =
      runtime::BlockStore::Open(dir_ + "/sync.blocks", &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->Append(genesis).ok());
  ASSERT_TRUE(store->Append(child).ok());
  EXPECT_EQ(store->wal_stats().appends, 2u);
  EXPECT_GE(store->wal_stats().syncs, 2u);

  // The opt-out exists for bulk import tooling — and is genuinely off.
  std::vector<chain::Block> recovered2;
  Result<runtime::BlockStore> lazy = runtime::BlockStore::Open(
      dir_ + "/lazy.blocks", &recovered2,
      runtime::BlockStore::Options{.sync_every_append = false});
  ASSERT_TRUE(lazy.ok());
  ASSERT_TRUE(lazy->Append(genesis).ok());
  EXPECT_EQ(lazy->wal_stats().syncs, 0u);
}

TEST_F(DurabilityFaultTest, BlockStoreAppendFaultLosesNothingAlreadyStored) {
  fs::create_directories(dir_);
  std::string path = dir_ + "/faulted.blocks";
  chain::Block genesis = chain::Blockchain::MakeGenesis(0);
  chain::Block child;
  child.header.height = 1;
  child.header.parent = genesis.header.Hash();
  child.header.merkle_root = child.ComputeMerkleRoot();
  {
    std::vector<chain::Block> recovered;
    Result<runtime::BlockStore> store =
        runtime::BlockStore::Open(path, &recovered);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Append(genesis).ok());
    injector_.Kill("blockstore.append.before_write");
    EXPECT_TRUE(store->Append(child).IsUnavailable());
    EXPECT_EQ(store->blocks_written(), 1u);
  }
  std::vector<chain::Block> recovered;
  Result<runtime::BlockStore> store =
      runtime::BlockStore::Open(path, &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].header.Hash(), genesis.header.Hash());
}

}  // namespace
}  // namespace medsync::relational
