#include "common/strings.h"

#include <gtest/gtest.h>

namespace medsync {
namespace {

TEST(SplitTest, BasicSplitting) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, JoinInvertsSplit) {
  std::vector<std::string> pieces{"x", "y", "z"};
  EXPECT_EQ(Join(pieces, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("medsync", "med"));
  EXPECT_FALSE(StartsWith("med", "medsync"));
  EXPECT_TRUE(EndsWith("table.json", ".json"));
  EXPECT_FALSE(EndsWith("json", "table.json"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ToLowerAsciiTest, LowersOnlyAscii) {
  EXPECT_EQ(ToLowerAscii("AbC123"), "abc123");
}

TEST(HexTest, EncodeKnownBytes) {
  std::vector<uint8_t> bytes{0x00, 0x0f, 0xff, 0xa5};
  EXPECT_EQ(HexEncode(bytes), "000fffa5");
}

TEST(HexTest, DecodeRoundTrip) {
  std::vector<uint8_t> bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<uint8_t>(i));
  std::string hex = HexEncode(bytes);
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(HexDecode(hex, &decoded));
  EXPECT_EQ(decoded, bytes);
}

TEST(HexTest, DecodeAcceptsUppercase) {
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(HexDecode("DEADBEEF", &decoded));
  EXPECT_EQ(decoded, (std::vector<uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

TEST(HexTest, DecodeRejectsMalformedInput) {
  std::vector<uint8_t> out;
  EXPECT_FALSE(HexDecode("abc", &out));   // odd length
  EXPECT_FALSE(HexDecode("zz", &out));    // non-hex
  EXPECT_FALSE(HexDecode("0g", &out));
  EXPECT_TRUE(HexDecode("", &out));       // empty is valid
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace medsync
