#include <gtest/gtest.h>

#include "relational/predicate.h"
#include "relational/query.h"
#include "relational/table.h"

namespace medsync::relational {
namespace {

Schema PatientsSchema() {
  return *Schema::Create({{"id", DataType::kInt, false},
                          {"med", DataType::kString, true},
                          {"city", DataType::kString, true},
                          {"age", DataType::kInt, true}},
                         {"id"});
}

Table Patients() {
  Table t(PatientsSchema());
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::String("Ibuprofen"),
                        Value::String("Osaka"), Value::Int(40)})
                  .ok());
  EXPECT_TRUE(t.Insert({Value::Int(2), Value::String("Metformin"),
                        Value::String("Kyoto"), Value::Int(61)})
                  .ok());
  EXPECT_TRUE(t.Insert({Value::Int(3), Value::String("Ibuprofen"),
                        Value::String("Osaka"), Value::Null()})
                  .ok());
  return t;
}

TEST(PredicateTest, CompareOperators) {
  Table t = Patients();
  Row row = *t.Get({Value::Int(2)});
  auto eval = [&](Predicate::Ptr p) {
    return *p->Evaluate(t.schema(), row);
  };
  EXPECT_TRUE(eval(Predicate::Compare("age", CompareOp::kEq, Value::Int(61))));
  EXPECT_TRUE(eval(Predicate::Compare("age", CompareOp::kNe, Value::Int(60))));
  EXPECT_TRUE(eval(Predicate::Compare("age", CompareOp::kLt, Value::Int(70))));
  EXPECT_TRUE(eval(Predicate::Compare("age", CompareOp::kLe, Value::Int(61))));
  EXPECT_TRUE(eval(Predicate::Compare("age", CompareOp::kGt, Value::Int(1))));
  EXPECT_TRUE(eval(Predicate::Compare("age", CompareOp::kGe, Value::Int(61))));
  EXPECT_FALSE(eval(Predicate::Compare("age", CompareOp::kLt, Value::Int(5))));
}

TEST(PredicateTest, NullComparisonsAreFalse) {
  Table t = Patients();
  Row row = *t.Get({Value::Int(3)});  // age NULL
  EXPECT_FALSE(*Predicate::Compare("age", CompareOp::kEq, Value::Int(0))
                    ->Evaluate(t.schema(), row));
  EXPECT_FALSE(*Predicate::Compare("age", CompareOp::kNe, Value::Int(0))
                    ->Evaluate(t.schema(), row));
  EXPECT_TRUE(*Predicate::IsNull("age")->Evaluate(t.schema(), row));
}

TEST(PredicateTest, BooleanConnectives) {
  Table t = Patients();
  Row row = *t.Get({Value::Int(1)});
  auto osaka = Predicate::Compare("city", CompareOp::kEq,
                                  Value::String("Osaka"));
  auto young = Predicate::Compare("age", CompareOp::kLt, Value::Int(50));
  auto old = Predicate::Compare("age", CompareOp::kGt, Value::Int(50));
  EXPECT_TRUE(*Predicate::And(osaka, young)->Evaluate(t.schema(), row));
  EXPECT_FALSE(*Predicate::And(osaka, old)->Evaluate(t.schema(), row));
  EXPECT_TRUE(*Predicate::Or(old, young)->Evaluate(t.schema(), row));
  EXPECT_FALSE(*Predicate::Not(osaka)->Evaluate(t.schema(), row));
  EXPECT_TRUE(*Predicate::True()->Evaluate(t.schema(), row));
}

TEST(PredicateTest, UnknownAttributeIsError) {
  Table t = Patients();
  auto p = Predicate::Compare("ghost", CompareOp::kEq, Value::Int(1));
  EXPECT_FALSE(p->Evaluate(t.schema(), *t.Get({Value::Int(1)})).ok());
  EXPECT_TRUE(p->Validate(t.schema()).IsNotFound());
  EXPECT_TRUE(Predicate::True()->Validate(t.schema()).ok());
}

TEST(PredicateTest, JsonRoundTrip) {
  auto p = Predicate::And(
      Predicate::Or(
          Predicate::Compare("city", CompareOp::kEq, Value::String("Osaka")),
          Predicate::IsNull("age")),
      Predicate::Not(
          Predicate::Compare("age", CompareOp::kGe, Value::Int(90))));
  Result<Predicate::Ptr> back = Predicate::FromJson(p->ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(Predicate::Equal(p, *back));
  EXPECT_FALSE(Predicate::Equal(p, Predicate::True()));
}

TEST(PredicateTest, ReferencedAttributes) {
  auto p = Predicate::And(
      Predicate::Compare("a", CompareOp::kEq, Value::Int(1)),
      Predicate::Or(Predicate::IsNull("b"),
                    Predicate::Compare("a", CompareOp::kLt, Value::Int(9))));
  EXPECT_EQ(p->ReferencedAttributes(), (std::vector<std::string>{"a", "b"}));
}

TEST(ProjectTest, KeepsRequestedColumnsInOrder) {
  Result<Table> view = Project(Patients(), {"id", "city"}, {"id"});
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->schema().attribute_count(), 2u);
  EXPECT_EQ(view->schema().attributes()[1].name, "city");
  EXPECT_EQ(view->row_count(), 3u);
  EXPECT_EQ(view->Get({Value::Int(2)})->at(1).AsString(), "Kyoto");
}

TEST(ProjectTest, CollapsesIdenticalDuplicateRows) {
  Result<Table> view = Project(Patients(), {"med", "city"}, {"med"});
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->row_count(), 2u);  // two Ibuprofen rows collapse
}

TEST(ProjectTest, RejectsNonKeyFunctionalProjection) {
  Table t = Patients();
  ASSERT_TRUE(t.UpdateAttribute({Value::Int(3)}, "city",
                                Value::String("Nara"))
                  .ok());
  // Now med=Ibuprofen maps to two distinct cities.
  EXPECT_TRUE(Project(t, {"med", "city"}, {"med"}).status().IsConflict());
}

TEST(ProjectTest, RejectsUnknownAttributes) {
  EXPECT_TRUE(Project(Patients(), {"ghost"}, {"ghost"}).status().IsNotFound());
  EXPECT_FALSE(Project(Patients(), {"city"}, {"id"}).ok());  // key not kept
}

TEST(ProjectTest, KeyBecomesNonNullable) {
  Result<Table> view = Project(Patients(), {"med", "city"}, {"med"});
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->schema().attributes()[0].nullable);
}

TEST(SelectTest, FiltersRows) {
  auto osaka =
      Predicate::Compare("city", CompareOp::kEq, Value::String("Osaka"));
  Result<Table> view = Select(Patients(), osaka);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->row_count(), 2u);
  EXPECT_EQ(view->schema(), Patients().schema());
  EXPECT_FALSE(Select(Patients(), nullptr).ok());
  EXPECT_TRUE(Select(Patients(), Predicate::IsNull("ghost"))
                  .status()
                  .IsNotFound());
}

TEST(RenameTest, RenamesAttributesAndKeys) {
  Result<Table> view =
      Rename(Patients(), {{"id", "patient_id"}, {"med", "drug"}});
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_TRUE(view->schema().HasAttribute("patient_id"));
  EXPECT_TRUE(view->schema().HasAttribute("drug"));
  EXPECT_FALSE(view->schema().HasAttribute("id"));
  EXPECT_EQ(view->schema().key_attributes(),
            (std::vector<std::string>{"patient_id"}));
  EXPECT_EQ(view->row_count(), 3u);
}

TEST(RenameTest, RejectsBadRenames) {
  EXPECT_TRUE(Rename(Patients(), {{"ghost", "x"}}).status().IsNotFound());
  EXPECT_FALSE(Rename(Patients(), {{"id", "x"}, {"id", "y"}}).ok());
  EXPECT_FALSE(Rename(Patients(), {{"id", "med"}}).ok());  // collision
}

TEST(NaturalJoinTest, JoinsOnSharedColumns) {
  Table meds(*Schema::Create({{"med", DataType::kString, false},
                              {"moa", DataType::kString, true}},
                             {"med"}));
  ASSERT_TRUE(
      meds.Insert({Value::String("Ibuprofen"), Value::String("cox")}).ok());
  ASSERT_TRUE(
      meds.Insert({Value::String("Metformin"), Value::String("ampk")}).ok());

  Result<Table> joined = NaturalJoin(Patients(), meds);
  ASSERT_TRUE(joined.ok()) << joined.status();
  EXPECT_EQ(joined->row_count(), 3u);
  EXPECT_TRUE(joined->schema().HasAttribute("moa"));
  auto row = joined->Get({Value::Int(2), Value::String("Metformin")});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->back().AsString(), "ampk");
}

TEST(NaturalJoinTest, RejectsDisjointOrMistyped) {
  Table other(*Schema::Create({{"x", DataType::kInt, false}}, {"x"}));
  EXPECT_FALSE(NaturalJoin(Patients(), other).ok());
  Table mistyped(*Schema::Create({{"med", DataType::kInt, false}}, {"med"}));
  EXPECT_FALSE(NaturalJoin(Patients(), mistyped).ok());
}

TEST(UnionTest, MergesAndDetectsConflicts) {
  Table a = Patients();
  Table b(PatientsSchema());
  ASSERT_TRUE(b.Insert({Value::Int(9), Value::Null(), Value::Null(),
                        Value::Null()})
                  .ok());
  Result<Table> u = Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->row_count(), 4u);

  Table conflicting(PatientsSchema());
  ASSERT_TRUE(conflicting
                  .Insert({Value::Int(1), Value::String("Other"),
                           Value::Null(), Value::Null()})
                  .ok());
  EXPECT_TRUE(Union(a, conflicting).status().IsConflict());

  Table wrong_schema(*Schema::Create({{"x", DataType::kInt, false}}, {"x"}));
  EXPECT_FALSE(Union(a, wrong_schema).ok());
}

TEST(DifferenceTest, RemovesMatchingKeys) {
  Table a = Patients();
  Table b(PatientsSchema());
  ASSERT_TRUE(b.Insert(*a.Get({Value::Int(1)})).ok());
  Result<Table> d = Difference(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->row_count(), 2u);
  EXPECT_FALSE(d->Contains({Value::Int(1)}));
}

}  // namespace
}  // namespace medsync::relational
