#include "chain/mempool.h"

#include <gtest/gtest.h>

#include "common/metrics/metrics.h"
#include "contracts/metadata_contract.h"

namespace medsync::chain {
namespace {

Transaction MakeTx(const std::string& seed, uint64_t nonce,
                   const std::string& table_id = "") {
  crypto::KeyPair key = crypto::KeyPair::FromSeed(seed);
  Transaction tx;
  tx.from = key.address();
  tx.to = crypto::KeyPair::FromSeed("target").address();
  tx.nonce = nonce;
  tx.method = table_id.empty() ? "ping" : "request_update";
  Json params = Json::MakeObject();
  if (!table_id.empty()) params.Set("table_id", table_id);
  tx.params = std::move(params);
  tx.timestamp = 0;
  tx.Sign(key);
  return tx;
}

TEST(MempoolTest, AddAndContains) {
  Mempool pool;
  Transaction tx = MakeTx("alice", 1);
  ASSERT_TRUE(pool.Add(tx).ok());
  EXPECT_TRUE(pool.Contains(tx.Id()));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.Add(tx).IsAlreadyExists());
}

TEST(MempoolTest, RejectsBadSignature) {
  Mempool pool;
  Transaction tx = MakeTx("alice", 1);
  tx.params.Set("tamper", 1);
  EXPECT_TRUE(pool.Add(tx).IsPermissionDenied());
  EXPECT_TRUE(pool.empty());
}

TEST(MempoolTest, CapacityBound) {
  Mempool pool(nullptr, /*capacity=*/2);
  ASSERT_TRUE(pool.Add(MakeTx("a", 1)).ok());
  ASSERT_TRUE(pool.Add(MakeTx("a", 2)).ok());
  EXPECT_TRUE(pool.Add(MakeTx("a", 3)).IsResourceExhausted());
}

TEST(MempoolTest, FullPoolStillReportsDuplicates) {
  // Regression: the dedup check must run BEFORE the capacity check, so a
  // re-gossiped transaction that is already pooled gets AlreadyExists (a
  // benign no-op for the sender) rather than ResourceExhausted (which
  // would make peers treat an accepted transaction as rejected).
  Mempool pool(nullptr, /*capacity=*/2);
  Transaction pooled = MakeTx("a", 1);
  ASSERT_TRUE(pool.Add(pooled).ok());
  ASSERT_TRUE(pool.Add(MakeTx("a", 2)).ok());

  // Both orderings at capacity: known tx -> duplicate, new tx -> full.
  EXPECT_TRUE(pool.Add(pooled).IsAlreadyExists());
  EXPECT_TRUE(pool.Add(MakeTx("b", 1)).IsResourceExhausted());
  EXPECT_TRUE(pool.Add(pooled).IsAlreadyExists());  // still duplicate after
  EXPECT_EQ(pool.size(), 2u);
}

TEST(MempoolTest, MetricsCountAddsAndRejectsByReason) {
  metrics::MetricsRegistry registry;
  Mempool pool(nullptr, /*capacity=*/2);
  pool.set_metrics(&registry);

  Transaction good = MakeTx("a", 1);
  ASSERT_TRUE(pool.Add(good).ok());
  EXPECT_TRUE(pool.Add(good).IsAlreadyExists());
  Transaction bad = MakeTx("a", 2);
  bad.params.Set("tamper", 1);
  EXPECT_TRUE(pool.Add(bad).IsPermissionDenied());
  ASSERT_TRUE(pool.Add(MakeTx("a", 3)).ok());
  EXPECT_TRUE(pool.Add(MakeTx("b", 1)).IsResourceExhausted());

  Json counters = registry.Snapshot().At("counters");
  EXPECT_EQ(counters.At("mempool.adds").AsInt(), 2);
  EXPECT_EQ(counters.At("mempool.reject.duplicate").AsInt(), 1);
  EXPECT_EQ(counters.At("mempool.reject.bad_signature").AsInt(), 1);
  EXPECT_EQ(counters.At("mempool.reject.full").AsInt(), 1);
  EXPECT_EQ(registry.Snapshot().At("gauges").At("mempool.occupancy").AsInt(),
            2);

  pool.RemoveIncluded({good.Id().ToHex()});
  EXPECT_EQ(registry.Snapshot().At("gauges").At("mempool.occupancy").AsInt(),
            1);
}

TEST(MempoolTest, CandidatePreservesArrivalOrder) {
  Mempool pool;
  ASSERT_TRUE(pool.Add(MakeTx("alice", 1)).ok());
  ASSERT_TRUE(pool.Add(MakeTx("bob", 1)).ok());
  ASSERT_TRUE(pool.Add(MakeTx("carol", 1)).ok());
  std::vector<Transaction> batch = pool.BuildBlockCandidate(10);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].from, crypto::KeyPair::FromSeed("alice").address());
  EXPECT_EQ(batch[2].from, crypto::KeyPair::FromSeed("carol").address());
}

TEST(MempoolTest, CandidateRestoresPerSenderNonceOrder) {
  Mempool pool;
  // Jittered gossip: nonce 2 arrives before nonce 1.
  ASSERT_TRUE(pool.Add(MakeTx("alice", 2)).ok());
  ASSERT_TRUE(pool.Add(MakeTx("alice", 1)).ok());
  std::vector<Transaction> batch = pool.BuildBlockCandidate(10);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].nonce, 1u);
  EXPECT_EQ(batch[1].nonce, 2u);
}

TEST(MempoolTest, MaxCountLimitsBatch) {
  Mempool pool;
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(pool.Add(MakeTx("alice", i)).ok());
  }
  EXPECT_EQ(pool.BuildBlockCandidate(3).size(), 3u);
  EXPECT_EQ(pool.size(), 10u);  // selection does not remove
}

TEST(MempoolTest, ConflictingUpdatesDeferredNotDropped) {
  Mempool pool(contracts::SharedDataConflictKey);
  Transaction first = MakeTx("alice", 1, "D13&D31");
  Transaction second = MakeTx("bob", 1, "D13&D31");   // same table!
  Transaction other = MakeTx("carol", 1, "D23&D32");  // different table
  ASSERT_TRUE(pool.Add(first).ok());
  ASSERT_TRUE(pool.Add(second).ok());
  ASSERT_TRUE(pool.Add(other).ok());

  std::vector<Transaction> batch = pool.BuildBlockCandidate(10);
  ASSERT_EQ(batch.size(), 2u);  // second stays pooled for the next block
  EXPECT_EQ(batch[0].Id(), first.Id());
  EXPECT_EQ(batch[1].Id(), other.Id());

  // After the first block's transactions confirm, the deferred one flows.
  pool.RemoveIncluded({first.Id().ToHex(), other.Id().ToHex()});
  std::vector<Transaction> next = pool.BuildBlockCandidate(10);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].Id(), second.Id());
}

TEST(MempoolTest, RemoveIncludedAndRemove) {
  Mempool pool;
  Transaction a = MakeTx("alice", 1);
  Transaction b = MakeTx("bob", 1);
  ASSERT_TRUE(pool.Add(a).ok());
  ASSERT_TRUE(pool.Add(b).ok());
  pool.RemoveIncluded({a.Id().ToHex()});
  EXPECT_FALSE(pool.Contains(a.Id()));
  EXPECT_TRUE(pool.Contains(b.Id()));
  pool.Remove(b.Id());
  EXPECT_TRUE(pool.empty());
  // A removed transaction can be re-added (e.g. after a reorg).
  EXPECT_TRUE(pool.Add(a).ok());
}

}  // namespace
}  // namespace medsync::chain
