#include "chain/mempool.h"

#include <gtest/gtest.h>

#include "common/metrics/metrics.h"
#include "contracts/metadata_contract.h"

namespace medsync::chain {
namespace {

Transaction MakeTx(const std::string& seed, uint64_t nonce,
                   const std::string& table_id = "") {
  crypto::KeyPair key = crypto::KeyPair::FromSeed(seed);
  Transaction tx;
  tx.from = key.address();
  tx.to = crypto::KeyPair::FromSeed("target").address();
  tx.nonce = nonce;
  tx.method = table_id.empty() ? "ping" : "request_update";
  Json params = Json::MakeObject();
  if (!table_id.empty()) params.Set("table_id", table_id);
  tx.params = std::move(params);
  tx.timestamp = 0;
  tx.Sign(key);
  return tx;
}

TEST(MempoolTest, AddAndContains) {
  Mempool pool;
  Transaction tx = MakeTx("alice", 1);
  ASSERT_TRUE(pool.Add(tx).ok());
  EXPECT_TRUE(pool.Contains(tx.Id()));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.Add(tx).IsAlreadyExists());
}

TEST(MempoolTest, RejectsBadSignature) {
  Mempool pool;
  Transaction tx = MakeTx("alice", 1);
  tx.params.Set("tamper", 1);
  EXPECT_TRUE(pool.Add(tx).IsPermissionDenied());
  EXPECT_TRUE(pool.empty());
}

TEST(MempoolTest, CapacityBound) {
  Mempool pool(nullptr, /*capacity=*/2);
  ASSERT_TRUE(pool.Add(MakeTx("a", 1)).ok());
  ASSERT_TRUE(pool.Add(MakeTx("a", 2)).ok());
  EXPECT_TRUE(pool.Add(MakeTx("a", 3)).IsResourceExhausted());
}

TEST(MempoolTest, FullPoolStillReportsDuplicates) {
  // Regression: the dedup check must run BEFORE the capacity check, so a
  // re-gossiped transaction that is already pooled gets AlreadyExists (a
  // benign no-op for the sender) rather than ResourceExhausted (which
  // would make peers treat an accepted transaction as rejected).
  Mempool pool(nullptr, /*capacity=*/2);
  Transaction pooled = MakeTx("a", 1);
  ASSERT_TRUE(pool.Add(pooled).ok());
  ASSERT_TRUE(pool.Add(MakeTx("a", 2)).ok());

  // Both orderings at capacity: known tx -> duplicate, new tx -> full.
  EXPECT_TRUE(pool.Add(pooled).IsAlreadyExists());
  EXPECT_TRUE(pool.Add(MakeTx("b", 1)).IsResourceExhausted());
  EXPECT_TRUE(pool.Add(pooled).IsAlreadyExists());  // still duplicate after
  EXPECT_EQ(pool.size(), 2u);
}

TEST(MempoolTest, FullPoolStillReportsBadSignatures) {
  // Regression: the signature check must run BEFORE the capacity check.
  // ResourceExhausted is retryable backpressure (ReliableChannel
  // retransmits on it), so a full pool that reported garbage as
  // ResourceExhausted would have peers retransmit unacceptable
  // transactions forever — and mempool.reject.bad_signature undercounted.
  metrics::MetricsRegistry registry;
  Mempool pool(nullptr, /*capacity=*/2);
  pool.set_metrics(&registry);
  ASSERT_TRUE(pool.Add(MakeTx("a", 1)).ok());
  ASSERT_TRUE(pool.Add(MakeTx("a", 2)).ok());

  Transaction bad = MakeTx("b", 1);
  bad.params.Set("tamper", 1);
  EXPECT_TRUE(pool.Add(bad).IsPermissionDenied());  // NOT ResourceExhausted

  Json counters = registry.Snapshot().At("counters");
  EXPECT_EQ(counters.At("mempool.reject.bad_signature").AsInt(), 1);
  EXPECT_EQ(counters.At("mempool.reject.full").AsInt(), 0);
  // Valid transactions at capacity still report backpressure.
  EXPECT_TRUE(pool.Add(MakeTx("b", 2)).IsResourceExhausted());
  EXPECT_EQ(registry.Snapshot()
                .At("counters")
                .At("mempool.reject.full")
                .AsInt(),
            1);
}

TEST(MempoolTest, MetricsCountAddsAndRejectsByReason) {
  metrics::MetricsRegistry registry;
  Mempool pool(nullptr, /*capacity=*/2);
  pool.set_metrics(&registry);

  Transaction good = MakeTx("a", 1);
  ASSERT_TRUE(pool.Add(good).ok());
  EXPECT_TRUE(pool.Add(good).IsAlreadyExists());
  Transaction bad = MakeTx("a", 2);
  bad.params.Set("tamper", 1);
  EXPECT_TRUE(pool.Add(bad).IsPermissionDenied());
  ASSERT_TRUE(pool.Add(MakeTx("a", 3)).ok());
  EXPECT_TRUE(pool.Add(MakeTx("b", 1)).IsResourceExhausted());

  Json counters = registry.Snapshot().At("counters");
  EXPECT_EQ(counters.At("mempool.adds").AsInt(), 2);
  EXPECT_EQ(counters.At("mempool.reject.duplicate").AsInt(), 1);
  EXPECT_EQ(counters.At("mempool.reject.bad_signature").AsInt(), 1);
  EXPECT_EQ(counters.At("mempool.reject.full").AsInt(), 1);
  EXPECT_EQ(registry.Snapshot().At("gauges").At("mempool.occupancy").AsInt(),
            2);

  pool.RemoveIncluded({good.Id().ToHex()});
  EXPECT_EQ(registry.Snapshot().At("gauges").At("mempool.occupancy").AsInt(),
            1);
}

TEST(MempoolTest, CandidatePreservesArrivalOrder) {
  Mempool pool;
  ASSERT_TRUE(pool.Add(MakeTx("alice", 1)).ok());
  ASSERT_TRUE(pool.Add(MakeTx("bob", 1)).ok());
  ASSERT_TRUE(pool.Add(MakeTx("carol", 1)).ok());
  std::vector<Transaction> batch = pool.BuildBlockCandidate(10);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].from, crypto::KeyPair::FromSeed("alice").address());
  EXPECT_EQ(batch[2].from, crypto::KeyPair::FromSeed("carol").address());
}

TEST(MempoolTest, CandidateRestoresPerSenderNonceOrder) {
  Mempool pool;
  // Jittered gossip: nonce 2 arrives before nonce 1.
  ASSERT_TRUE(pool.Add(MakeTx("alice", 2)).ok());
  ASSERT_TRUE(pool.Add(MakeTx("alice", 1)).ok());
  std::vector<Transaction> batch = pool.BuildBlockCandidate(10);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].nonce, 1u);
  EXPECT_EQ(batch[1].nonce, 2u);
}

TEST(MempoolTest, DuplicateNonceKeepsArrivalOrder) {
  // Regression: the per-sender nonce sort must be a stable_sort. A sender
  // that re-keys after a crash (or a buggy client) can reuse a nonce;
  // std::sort leaves equal-nonce order unspecified, so candidate ordering
  // could diverge across standard libraries and break byte-identical
  // blocks. Arrival order is the tiebreak.
  Mempool pool;
  std::vector<Transaction> sent;
  for (int i = 0; i < 6; ++i) {
    Transaction tx = MakeTx("alice", /*nonce=*/7,
                            "DUP&TABLE-" + std::to_string(i));
    sent.push_back(tx);
    ASSERT_TRUE(pool.Add(tx).ok());
  }
  std::vector<Transaction> batch = pool.BuildBlockCandidate(10);
  ASSERT_EQ(batch.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(batch[i].Id(), sent[i].Id()) << "position " << i;
  }
}

TEST(MempoolTest, MaxCountLimitsBatch) {
  Mempool pool;
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(pool.Add(MakeTx("alice", i)).ok());
  }
  EXPECT_EQ(pool.BuildBlockCandidate(3).size(), 3u);
  EXPECT_EQ(pool.size(), 10u);  // selection does not remove
}

TEST(MempoolTest, ConflictingUpdatesDeferredNotDropped) {
  Mempool pool(contracts::SharedDataConflictKey);
  Transaction first = MakeTx("alice", 1, "D13&D31");
  Transaction second = MakeTx("bob", 1, "D13&D31");   // same table!
  Transaction other = MakeTx("carol", 1, "D23&D32");  // different table
  ASSERT_TRUE(pool.Add(first).ok());
  ASSERT_TRUE(pool.Add(second).ok());
  ASSERT_TRUE(pool.Add(other).ok());

  std::vector<Transaction> batch = pool.BuildBlockCandidate(10);
  ASSERT_EQ(batch.size(), 2u);  // second stays pooled for the next block
  EXPECT_EQ(batch[0].Id(), first.Id());
  EXPECT_EQ(batch[1].Id(), other.Id());

  // After the first block's transactions confirm, the deferred one flows.
  pool.RemoveIncluded({first.Id().ToHex(), other.Id().ToHex()});
  std::vector<Transaction> next = pool.BuildBlockCandidate(10);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].Id(), second.Id());
}

TEST(MempoolTest, ReportsDeferredCount) {
  // The conflict-partitioning pass reports how many pooled transactions
  // were held back (conflict-key collision or batch full).
  Mempool pool(contracts::SharedDataConflictKey);
  ASSERT_TRUE(pool.Add(MakeTx("alice", 1, "D13&D31")).ok());
  ASSERT_TRUE(pool.Add(MakeTx("bob", 1, "D13&D31")).ok());    // conflicts
  ASSERT_TRUE(pool.Add(MakeTx("carol", 1, "D23&D32")).ok());  // batches
  ASSERT_TRUE(pool.Add(MakeTx("dave", 1, "D12&D21")).ok());   // over budget

  size_t deferred = 0;
  std::vector<Transaction> batch = pool.BuildBlockCandidate(2, &deferred);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(deferred, 2u);  // bob (conflict) + dave (batch full)

  deferred = 0;
  EXPECT_EQ(pool.BuildBlockCandidate(10, &deferred).size(), 3u);
  EXPECT_EQ(deferred, 1u);  // only the conflict defers with room to spare
}

TEST(MempoolTest, RemoveIncludedAndRemove) {
  Mempool pool;
  Transaction a = MakeTx("alice", 1);
  Transaction b = MakeTx("bob", 1);
  ASSERT_TRUE(pool.Add(a).ok());
  ASSERT_TRUE(pool.Add(b).ok());
  pool.RemoveIncluded({a.Id().ToHex()});
  EXPECT_FALSE(pool.Contains(a.Id()));
  EXPECT_TRUE(pool.Contains(b.Id()));
  pool.Remove(b.Id());
  EXPECT_TRUE(pool.empty());
  // A removed transaction can be re-added (e.g. after a reorg).
  EXPECT_TRUE(pool.Add(a).ok());
}

}  // namespace
}  // namespace medsync::chain
