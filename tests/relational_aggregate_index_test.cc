#include <gtest/gtest.h>

#include "medical/generator.h"
#include "medical/records.h"
#include "relational/aggregate.h"
#include "relational/index.h"
#include "relational/query.h"

namespace medsync::relational {
namespace {

using medical::kAddress;
using medical::kDosage;
using medical::kMedicationName;
using medical::kPatientId;

Table Records(size_t n = 100, uint64_t seed = 3) {
  return medical::GenerateFullRecords({.seed = seed, .record_count = n});
}

TEST(GroupByTest, CountPerGroup) {
  Table t = Records(200);
  Result<Table> counts =
      GroupBy(t, {kAddress}, {{AggregateFn::kCount, "", "patients"}});
  ASSERT_TRUE(counts.ok()) << counts.status();
  EXPECT_TRUE(counts->schema().HasAttribute("patients"));
  int64_t total = 0;
  for (const auto& [key, row] : counts->scan()) {
    total += row[1].AsInt();
    EXPECT_GT(row[1].AsInt(), 0);
  }
  EXPECT_EQ(total, 200);
}

TEST(GroupByTest, MinMaxSumAvgOverInts) {
  Schema schema = *Schema::Create({{"g", DataType::kString, false},
                                   {"id", DataType::kInt, false},
                                   {"v", DataType::kInt, true}},
                                  {"id"});
  Table t(schema);
  auto add = [&](int64_t id, const char* g, std::optional<int64_t> v) {
    ASSERT_TRUE(t.Insert({Value::String(g), Value::Int(id),
                          v ? Value::Int(*v) : Value::Null()})
                    .ok());
  };
  add(1, "a", 10);
  add(2, "a", 20);
  add(3, "a", std::nullopt);  // NULL skipped by min/max/sum/avg
  add(4, "b", 5);

  Result<Table> out = GroupBy(
      t, {"g"},
      {{AggregateFn::kCount, "", "n"},
       {AggregateFn::kMin, "v", "lo"},
       {AggregateFn::kMax, "v", "hi"},
       {AggregateFn::kSum, "v", "total"},
       {AggregateFn::kAvg, "v", "mean"}});
  ASSERT_TRUE(out.ok()) << out.status();
  Row a = *out->Get({Value::String("a")});
  EXPECT_EQ(a[1].AsInt(), 3);                  // count counts rows
  EXPECT_EQ(a[2].AsInt(), 10);
  EXPECT_EQ(a[3].AsInt(), 20);
  EXPECT_DOUBLE_EQ(a[4].AsDouble(), 30.0);
  EXPECT_DOUBLE_EQ(a[5].AsDouble(), 15.0);     // NULL excluded from avg
  Row b = *out->Get({Value::String("b")});
  EXPECT_EQ(b[1].AsInt(), 1);
  EXPECT_DOUBLE_EQ(b[4].AsDouble(), 5.0);
}

TEST(GroupByTest, MinMaxWorkOnStrings) {
  Table t = Records(50);
  Result<Table> out = GroupBy(t, {kAddress},
                              {{AggregateFn::kMin, kMedicationName, "first"},
                               {AggregateFn::kMax, kMedicationName, "last"}});
  ASSERT_TRUE(out.ok()) << out.status();
  for (const auto& [key, row] : out->scan()) {
    EXPECT_LE(row[1], row[2]);
  }
}

TEST(GroupByTest, Validation) {
  Table t = Records(10);
  EXPECT_FALSE(GroupBy(t, {}, {{AggregateFn::kCount, "", ""}}).ok());
  EXPECT_FALSE(GroupBy(t, {kAddress}, {}).ok());
  EXPECT_TRUE(GroupBy(t, {"ghost"}, {{AggregateFn::kCount, "", ""}})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(GroupBy(t, {kAddress}, {{AggregateFn::kSum, "ghost", ""}})
                  .status()
                  .IsNotFound());
  // Sum over a string column is rejected.
  EXPECT_TRUE(GroupBy(t, {kAddress}, {{AggregateFn::kSum, kDosage, ""}})
                  .status()
                  .IsInvalidArgument());
  // NULL group keys are rejected.
  Table with_null = t;
  Key first = with_null.NthKey(0);
  ASSERT_TRUE(with_null.UpdateAttribute(first, kAddress, Value::Null()).ok());
  EXPECT_TRUE(GroupBy(with_null, {kAddress}, {{AggregateFn::kCount, "", ""}})
                  .status()
                  .IsInvalidArgument());
}

TEST(GroupByTest, DefaultOutputNames) {
  Table t = Records(10);
  Result<Table> out =
      GroupBy(t, {kAddress}, {{AggregateFn::kCount, "", ""},
                              {AggregateFn::kMin, kPatientId, ""}});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->schema().HasAttribute("count"));
  EXPECT_TRUE(out->schema().HasAttribute(
      std::string("min_") + kPatientId));
}

TEST(AggregateTest, WholeTableRollup) {
  Table t = Records(64);
  Result<Table> out = Aggregate(t, {{AggregateFn::kCount, "", "n"},
                                    {AggregateFn::kMin, kPatientId, "lo"},
                                    {AggregateFn::kMax, kPatientId, "hi"}});
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->row_count(), 1u);
  Row row = out->RowsInKeyOrder()[0];
  EXPECT_EQ(row[1].AsInt(), 64);
  EXPECT_EQ(row[2].AsInt(), 1000);
  EXPECT_EQ(row[3].AsInt(), 1063);
}

TEST(AggregateTest, EmptyTable) {
  Table empty(medical::FullRecordSchema());
  Result<Table> out = Aggregate(empty, {{AggregateFn::kCount, "", "n"},
                                        {AggregateFn::kMin, kPatientId,
                                         "lo"}});
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->row_count(), 1u);
  Row row = out->RowsInKeyOrder()[0];
  EXPECT_EQ(row[1].AsInt(), 0);
  EXPECT_TRUE(row[2].is_null());
}

TEST(SecondaryIndexTest, LookupMatchesScan) {
  Table t = Records(300, 9);
  Result<SecondaryIndex> index = SecondaryIndex::Build(t, kAddress);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_GT(index->distinct_values(), 3u);

  for (const char* city : {"Osaka", "Kyoto", "Sapporo", "Nowhere"}) {
    Result<Table> scan = Select(
        t, Predicate::Compare(kAddress, CompareOp::kEq, Value::String(city)));
    ASSERT_TRUE(scan.ok());
    Result<Table> probed = IndexedSelectEquals(t, *index, Value::String(city));
    ASSERT_TRUE(probed.ok()) << probed.status();
    EXPECT_EQ(*probed, *scan) << city;
  }
}

TEST(SecondaryIndexTest, RangeLookup) {
  Table t = Records(100);
  Result<SecondaryIndex> index = SecondaryIndex::Build(t, kPatientId);
  ASSERT_TRUE(index.ok());
  std::vector<Key> keys =
      index->LookupRange(Value::Int(1010), Value::Int(1019));
  EXPECT_EQ(keys.size(), 10u);
  for (const Key& key : keys) {
    EXPECT_GE(key[0].AsInt(), 1010);
    EXPECT_LE(key[0].AsInt(), 1019);
  }
  EXPECT_TRUE(index->LookupRange(Value::Int(5000), Value::Int(6000)).empty());
}

TEST(SecondaryIndexTest, NullValuesAreIndexed) {
  Table t = Records(20);
  Key first = t.NthKey(0);
  Key second = t.NthKey(1);
  ASSERT_TRUE(t.UpdateAttribute(first, kAddress, Value::Null()).ok());
  ASSERT_TRUE(t.UpdateAttribute(second, kAddress, Value::Null()).ok());
  Result<SecondaryIndex> index = SecondaryIndex::Build(t, kAddress);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->LookupNull().size(), 2u);
}

TEST(SecondaryIndexTest, RangeScansNeverMatchNull) {
  // NULL entries are reachable only via Lookup/LookupNull: a NULL cell is
  // not "between" any two values, and a NULL bound makes the range itself
  // undefined (empty result, not "everything").
  Table t = Records(30);
  Key first = t.NthKey(0);
  ASSERT_TRUE(t.UpdateAttribute(first, kAddress, Value::Null()).ok());
  Result<SecondaryIndex> index = SecondaryIndex::Build(t, kAddress);
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->LookupNull().size(), 1u);

  std::vector<Key> all =
      index->LookupRange(Value::String(""), Value::String("zzzz"));
  EXPECT_EQ(all.size(), 29u);  // every row except the NULL one
  EXPECT_TRUE(index->LookupRange(Value::Null(), Value::String("z")).empty());
  EXPECT_TRUE(index->LookupRange(Value::String(""), Value::Null()).empty());
  EXPECT_TRUE(index->LookupRange(Value::Null(), Value::Null()).empty());
}

TEST(SecondaryIndexTest, LookupMissReturnsEmptyWithoutAllocation) {
  Table t = Records(10);
  Result<SecondaryIndex> index = SecondaryIndex::Build(t, kAddress);
  ASSERT_TRUE(index.ok());
  const std::vector<Key>& a = index->Lookup(Value::String("Nowhere"));
  const std::vector<Key>& b = index->Lookup(Value::String("Elsewhere"));
  EXPECT_TRUE(a.empty());
  // Misses share one static empty vector — the const-ref API never copies.
  EXPECT_EQ(&a, &b);
}

TEST(SecondaryIndexTest, ApplyDeltaMatchesRebuild) {
  Table before = Records(120, 11);
  Result<SecondaryIndex> index = SecondaryIndex::Build(before, kAddress);
  ASSERT_TRUE(index.ok());

  // A mixed delta: update an indexed value, update a row WITHOUT touching
  // the indexed attribute, delete a row, insert rows (one NULL-valued,
  // one key reassignment).
  TableDelta delta;
  std::vector<Row> rows = before.RowsInKeyOrder();
  Row moved = rows[0];
  moved[3] = Value::String("Relocated");
  delta.updates.push_back(moved);
  Row same_city = rows[1];
  same_city[4] = Value::String("changed dosage");
  delta.updates.push_back(same_city);
  delta.deletes.push_back(KeyOf(before.schema(), rows[2]));
  delta.deletes.push_back(KeyOf(before.schema(), rows[3]));
  Row reassigned = rows[3];
  reassigned[3] = Value::String("Reassigned");
  delta.inserts.push_back(reassigned);
  Row fresh = rows[4];
  fresh[0] = Value::Int(9001);
  fresh[3] = Value::Null();
  delta.inserts.push_back(fresh);

  Table after = before;
  ASSERT_TRUE(ApplyDelta(delta, &after).ok());
  ASSERT_TRUE(index->ApplyDelta(before, delta).ok());

  Result<SecondaryIndex> rebuilt = SecondaryIndex::Build(after, kAddress);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(index->distinct_values(), rebuilt->distinct_values());
  for (const auto& [key, row] : after.scan()) {
    const Value& v = row[3];
    EXPECT_EQ(index->Lookup(v), rebuilt->Lookup(v));
  }
  EXPECT_EQ(index->LookupNull(), rebuilt->LookupNull());
  EXPECT_EQ(index->Lookup(Value::String("Relocated")).size(), 1u);
}

TEST(SecondaryIndexTest, ApplyDeltaFailsClosedOnDesync) {
  // A delta touching a row the covered snapshot does not contain means the
  // index is out of sync; the call must fail WITHOUT mutating the index.
  Table before = Records(10);
  Result<SecondaryIndex> index = SecondaryIndex::Build(before, kAddress);
  ASSERT_TRUE(index.ok());
  size_t distinct = index->distinct_values();

  TableDelta bad;
  bad.deletes.push_back({Value::Int(424242)});
  Row phantom = before.RowsInKeyOrder()[0];
  phantom[3] = Value::String("Phantom");
  bad.updates.push_back(phantom);
  bad.updates[0][0] = Value::Int(424242);
  EXPECT_FALSE(index->ApplyDelta(before, bad).ok());
  EXPECT_EQ(index->distinct_values(), distinct);
  EXPECT_TRUE(index->Lookup(Value::String("Phantom")).empty());
}

TEST(SecondaryIndexTest, Validation) {
  Table t = Records(5);
  EXPECT_TRUE(SecondaryIndex::Build(t, "ghost").status().IsNotFound());
  Result<SecondaryIndex> index = SecondaryIndex::Build(t, kAddress);
  ASSERT_TRUE(index.ok());
  Table other(*Schema::Create({{"x", DataType::kInt, false}}, {"x"}));
  EXPECT_FALSE(IndexedSelectEquals(other, *index, Value::Int(1)).ok());
}

}  // namespace
}  // namespace medsync::relational
