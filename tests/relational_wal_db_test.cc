#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/metrics/metrics.h"
#include "common/strings.h"
#include "relational/database.h"
#include "relational/wal.h"

namespace medsync::relational {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("medsync_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string path() const { return path_.string(); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

Json Op(const std::string& tag) {
  Json j = Json::MakeObject();
  j.Set("tag", tag);
  return j;
}

TEST(Crc32Test, KnownValues) {
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);  // standard check value
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(WalTest, AppendAndRecover) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok()) << wal.status();
    EXPECT_TRUE(recovered.empty());
    EXPECT_EQ(*wal->Append(Op("one")), 1u);
    EXPECT_EQ(*wal->Append(Op("two")), 2u);
  }
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].lsn, 1u);
  EXPECT_EQ(*recovered[0].payload.GetString("tag"), "one");
  EXPECT_EQ(*recovered[1].payload.GetString("tag"), "two");
  EXPECT_EQ(wal->next_lsn(), 3u);
}

TEST(WalTest, TornTailIsTruncated) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Op("good")).ok());
    ASSERT_TRUE(wal->Append(Op("tail")).ok());
  }
  // Chop off the final newline and a few bytes — a torn write.
  auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);

  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(*recovered[0].payload.GetString("tag"), "good");

  // The torn region was truncated, so appending works and re-recovery
  // sees exactly two clean records.
  ASSERT_TRUE(wal->Append(Op("after-crash")).ok());
  std::vector<WalRecord> again;
  ASSERT_TRUE(Wal::Open(path, &again).ok());
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(*again[1].payload.GetString("tag"), "after-crash");
}

TEST(WalTest, CorruptChecksumStopsRecovery) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Op("first")).ok());
    ASSERT_TRUE(wal->Append(Op("second")).ok());
    ASSERT_TRUE(wal->Append(Op("third")).ok());
  }
  // Flip a byte inside the SECOND record's payload.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  // Find the second line start.
  std::string content;
  int c;
  while ((c = std::fgetc(f)) != EOF) content.push_back((char)c);
  size_t second_line = content.find('\n') + 1;
  size_t flip = content.find("second", second_line);
  ASSERT_NE(flip, std::string::npos);
  std::fseek(f, (long)flip, SEEK_SET);
  std::fputc('X', f);
  std::fclose(f);

  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  // Recovery keeps the first record and discards the corrupt tail
  // (including the third record, which followed the corruption).
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(*recovered[0].payload.GetString("tag"), "first");
}

TEST(WalTest, ResetTruncatesButPreservesLsnContinuity) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(Op("x")).ok());
  ASSERT_TRUE(wal->Reset().ok());
  // LSNs are a history position, not a file offset: they keep growing
  // across Reset so a checkpoint's "covers through LSN K" claim stays
  // valid for post-reset appends (see Database::Checkpoint).
  EXPECT_EQ(wal->next_lsn(), 2u);
  EXPECT_EQ(fs::file_size(path), 0u);
  Result<uint64_t> lsn = wal->Append(Op("y"));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);

  // A reopened log recovers the stored LSN, not a renumbered one.
  wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].lsn, 2u);
  EXPECT_EQ(wal->next_lsn(), 3u);
}

TEST(WalTest, LegacyRecordsWithoutLsnStillRecover) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  // Hand-write two pre-LSN-format records: <crc> <len> <json>.
  std::string a = Op("first").Dump();
  std::string b = Op("second").Dump();
  char header[32];
  std::string content;
  std::snprintf(header, sizeof(header), "%08x %zu ", Crc32(a), a.size());
  content += StrCat(header, a, "\n");
  std::snprintf(header, sizeof(header), "%08x %zu ", Crc32(b), b.size());
  content += StrCat(header, b, "\n");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);

  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].lsn, 1u);  // assigned sequentially
  EXPECT_EQ(recovered[1].lsn, 2u);
  EXPECT_EQ(*recovered[1].payload.GetString("tag"), "second");
  // New appends continue the numbering in the current (stored-LSN) format.
  Result<uint64_t> lsn = wal->Append(Op("third"));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 3u);
  EXPECT_EQ(recovered[2].lsn, 3u);
}

TEST(WalTest, SyncIsCallableAndCounted) {
  TempDir dir;
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(dir.file("wal.log"), &recovered);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE(wal->options().sync_every_append);
  ASSERT_TRUE(wal->Append(Op("x")).ok());
  EXPECT_EQ(wal->stats().syncs, 0u);  // default mode never syncs implicitly
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(wal->Sync().ok());  // idempotent at a durability point
  EXPECT_EQ(wal->stats().syncs, 2u);
}

TEST(WalTest, SyncEveryAppendSyncsEachRecordAndReset) {
  TempDir dir;
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(dir.file("wal.log"), &recovered,
                              Wal::Options{.sync_every_append = true});
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->options().sync_every_append);
  ASSERT_TRUE(wal->Append(Op("a")).ok());
  ASSERT_TRUE(wal->Append(Op("b")).ok());
  ASSERT_TRUE(wal->Append(Op("c")).ok());
  EXPECT_EQ(wal->stats().appends, 3u);
  EXPECT_EQ(wal->stats().syncs, 3u);  // one fdatasync per acknowledged append
  EXPECT_GT(wal->stats().append_bytes, 0u);

  // Reset is a durability point too: the truncation itself is synced.
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->stats().resets, 1u);
  EXPECT_EQ(wal->stats().syncs, 4u);
}

TEST(WalTest, RecoveryAndTruncationStats) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal->stats().recovered_records, 0u);
    ASSERT_TRUE(wal->Append(Op("one")).ok());
    ASSERT_TRUE(wal->Append(Op("two")).ok());
  }
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal->stats().recovered_records, 2u);
    EXPECT_EQ(wal->stats().truncations, 0u);
  }
  // A torn tail bumps the truncation count.
  fs::resize_file(path, fs::file_size(path) - 3);
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->stats().recovered_records, 1u);
  EXPECT_EQ(wal->stats().truncations, 1u);
}

TEST(WalTest, MetricsMirrorAppendsAndRecovery) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Op("persisted")).ok());
  }
  metrics::MetricsRegistry registry;
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered,
                              Wal::Options{.sync_every_append = true});
  ASSERT_TRUE(wal.ok());
  wal->set_metrics(&registry);  // flushes the recovery counts at attach
  ASSERT_TRUE(wal->Append(Op("x")).ok());
  ASSERT_TRUE(wal->Append(Op("y")).ok());

  Json counters = registry.Snapshot().At("counters");
  EXPECT_EQ(counters.At("wal.appends").AsInt(), 2);
  EXPECT_EQ(counters.At("wal.syncs").AsInt(), 2);
  EXPECT_EQ(counters.At("wal.recoveries").AsInt(), 1);
  EXPECT_EQ(counters.At("wal.recovered_records").AsInt(), 1);
  EXPECT_EQ(counters.At("wal.append_bytes").AsInt(),
            static_cast<int64_t>(wal->stats().append_bytes));
}

Schema S() {
  return *Schema::Create(
      {{"id", DataType::kInt, false}, {"v", DataType::kString, true}},
      {"id"});
}

Row R(int64_t id, const char* v) { return {Value::Int(id), Value::String(v)}; }

TEST(DatabaseTest, InMemoryCatalogAndMutations) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  EXPECT_TRUE(db.CreateTable("t", S()).IsAlreadyExists());
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"t"});

  ASSERT_TRUE(db.Insert("t", R(1, "a")).ok());
  EXPECT_TRUE(db.Insert("t", R(1, "a")).IsAlreadyExists());
  ASSERT_TRUE(db.Update("t", R(1, "b")).ok());
  ASSERT_TRUE(
      db.UpdateAttribute("t", {Value::Int(1)}, "v", Value::String("c")).ok());
  EXPECT_EQ((*db.GetTable("t"))->Get({Value::Int(1)})->at(1).AsString(), "c");
  ASSERT_TRUE(db.Delete("t", {Value::Int(1)}).ok());
  EXPECT_TRUE(db.Delete("t", {Value::Int(1)}).IsNotFound());
  EXPECT_TRUE(db.Insert("ghost", R(1, "a")).IsNotFound());
  ASSERT_TRUE(db.DropTable("t").ok());
  EXPECT_FALSE(db.HasTable("t"));
  EXPECT_TRUE(db.DropTable("t").IsNotFound());
}

TEST(DatabaseTest, UpsertInsertsOrOverwrites) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  ASSERT_TRUE(db.Upsert("t", R(1, "first")).ok());
  ASSERT_TRUE(db.Upsert("t", R(1, "second")).ok());
  EXPECT_EQ((*db.GetTable("t"))->row_count(), 1u);
  EXPECT_EQ((*db.GetTable("t"))->Get({Value::Int(1)})->at(1).AsString(),
            "second");
  EXPECT_TRUE(db.Upsert("ghost", R(1, "x")).IsNotFound());
}

TEST(DatabaseTest, UpsertSurvivesReopen) {
  TempDir dir;
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Upsert("t", R(1, "v1")).ok());
    ASSERT_TRUE(db->Upsert("t", R(1, "v2")).ok());
  }
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db->GetTable("t"))->Get({Value::Int(1)})->at(1).AsString(),
            "v2");
}

TEST(DatabaseTest, FailedOpLeavesStateUntouched) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  ASSERT_TRUE(db.Insert("t", R(1, "a")).ok());
  Table before = *db.Snapshot("t");
  EXPECT_FALSE(db.Update("t", R(9, "zz")).ok());
  EXPECT_EQ(*db.Snapshot("t"), before);
}

TEST(DatabaseTest, ReplaceTableChecksSchema) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  Table replacement(S());
  ASSERT_TRUE(replacement.Insert(R(7, "r")).ok());
  ASSERT_TRUE(db.ReplaceTable("t", replacement).ok());
  EXPECT_EQ(*db.Snapshot("t"), replacement);

  Table wrong(*Schema::Create({{"x", DataType::kInt, false}}, {"x"}));
  EXPECT_TRUE(db.ReplaceTable("t", wrong).IsInvalidArgument());
}

TEST(DatabaseTest, ApplyTableDelta) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  ASSERT_TRUE(db.Insert("t", R(1, "a")).ok());
  TableDelta delta;
  delta.inserts.push_back(R(2, "b"));
  delta.updates.push_back(R(1, "A"));
  ASSERT_TRUE(db.ApplyTableDelta("t", delta).ok());
  EXPECT_EQ((*db.GetTable("t"))->row_count(), 2u);
}

TEST(DatabaseTest, DurableReopenReplaysWal) {
  TempDir dir;
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Insert("t", R(1, "persisted")).ok());
    ASSERT_TRUE(db->Insert("t", R(2, "also")).ok());
    ASSERT_TRUE(db->Delete("t", {Value::Int(2)}).ok());
    // No checkpoint — recovery must come purely from the WAL.
  }
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->HasTable("t"));
  EXPECT_EQ((*db->GetTable("t"))->row_count(), 1u);
  EXPECT_EQ((*db->GetTable("t"))->Get({Value::Int(1)})->at(1).AsString(),
            "persisted");
}

TEST(DatabaseTest, CheckpointThenReopen) {
  TempDir dir;
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Insert("t", R(1, "snap")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    // Post-checkpoint mutation lands in the fresh WAL.
    ASSERT_TRUE(db->Insert("t", R(2, "wal")).ok());
  }
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db->GetTable("t"))->row_count(), 2u);
}

TEST(DatabaseTest, TransactionCommitIsAtomic) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  ASSERT_TRUE(db.Insert("t", R(1, "a")).ok());

  Database::Transaction txn = db.Begin();
  txn.Insert("t", R(2, "b"));
  txn.UpdateAttribute("t", {Value::Int(1)}, "v", Value::String("A"));
  txn.Delete("t", {Value::Int(1)});
  EXPECT_EQ(txn.op_count(), 3u);
  ASSERT_TRUE(db.Commit(std::move(txn)).ok());
  EXPECT_EQ((*db.GetTable("t"))->row_count(), 1u);
  EXPECT_TRUE((*db.GetTable("t"))->Contains({Value::Int(2)}));
}

TEST(DatabaseTest, TransactionFailureRollsBackEverything) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  ASSERT_TRUE(db.Insert("t", R(1, "a")).ok());
  Table before = *db.Snapshot("t");

  Database::Transaction txn = db.Begin();
  txn.Insert("t", R(2, "b"));          // valid
  txn.Delete("t", {Value::Int(99)});   // invalid — whole txn must abort
  Status committed = db.Commit(std::move(txn));
  EXPECT_FALSE(committed.ok());
  EXPECT_EQ(*db.Snapshot("t"), before);
}

TEST(DatabaseTest, DroppedTransactionHasNoEffect) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  {
    Database::Transaction txn = db.Begin();
    txn.Insert("t", R(1, "discarded"));
  }
  EXPECT_EQ((*db.GetTable("t"))->row_count(), 0u);
}

TEST(DatabaseTest, CommitPathSyncsEveryAppend) {
  // The database's durability promise: every acknowledged mutation was
  // fdatasync'd, not just buffered — so wal.syncs tracks wal.appends 1:1.
  TempDir dir;
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->CreateTable("t", S()).ok());
  ASSERT_TRUE(db->Insert("t", R(1, "a")).ok());
  ASSERT_TRUE(db->Insert("t", R(2, "b")).ok());

  Wal::Stats stats = db->wal_stats();
  EXPECT_EQ(stats.appends, 3u);  // create + 2 inserts
  EXPECT_EQ(stats.syncs, stats.appends);

  metrics::MetricsRegistry registry;
  db->set_metrics(&registry);
  ASSERT_TRUE(db->Delete("t", {Value::Int(2)}).ok());
  Json counters = registry.Snapshot().At("counters");
  EXPECT_EQ(counters.At("wal.appends").AsInt(), 1);
  EXPECT_EQ(counters.At("wal.syncs").AsInt(), 1);
}

TEST(DatabaseTest, DurableTransactionSurvivesReopen) {
  TempDir dir;
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    Database::Transaction txn = db->Begin();
    txn.Insert("t", R(1, "x"));
    txn.Insert("t", R(2, "y"));
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db->GetTable("t"))->row_count(), 2u);
}

}  // namespace
}  // namespace medsync::relational
