#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/metrics/metrics.h"
#include "common/strings.h"
#include "relational/database.h"
#include "relational/wal.h"

namespace medsync::relational {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("medsync_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string path() const { return path_.string(); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

Json Op(const std::string& tag) {
  Json j = Json::MakeObject();
  j.Set("tag", tag);
  return j;
}

TEST(Crc32Test, KnownValues) {
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);  // standard check value
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(WalTest, AppendAndRecover) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok()) << wal.status();
    EXPECT_TRUE(recovered.empty());
    EXPECT_EQ(*wal->Append(Op("one")), 1u);
    EXPECT_EQ(*wal->Append(Op("two")), 2u);
  }
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].lsn, 1u);
  EXPECT_EQ(*recovered[0].payload.GetString("tag"), "one");
  EXPECT_EQ(*recovered[1].payload.GetString("tag"), "two");
  EXPECT_EQ(wal->next_lsn(), 3u);
}

TEST(WalTest, TornTailIsTruncated) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Op("good")).ok());
    ASSERT_TRUE(wal->Append(Op("tail")).ok());
  }
  // Chop off the final newline and a few bytes — a torn write.
  auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);

  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(*recovered[0].payload.GetString("tag"), "good");

  // The torn region was truncated, so appending works and re-recovery
  // sees exactly two clean records.
  ASSERT_TRUE(wal->Append(Op("after-crash")).ok());
  std::vector<WalRecord> again;
  ASSERT_TRUE(Wal::Open(path, &again).ok());
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(*again[1].payload.GetString("tag"), "after-crash");
}

TEST(WalTest, CorruptRecordMidFileIsCorruptionNotTruncation) {
  // Regression test: recovery used to treat ANY invalid line as a torn
  // tail and silently truncate — a single flipped bit in the middle of
  // the log would throw away every valid record after it. A complete
  // line (it has its '\n') that fails the checksum is bit rot, and Open
  // must refuse rather than destroy data.
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Op("first")).ok());
    ASSERT_TRUE(wal->Append(Op("second")).ok());
    ASSERT_TRUE(wal->Append(Op("third")).ok());
  }
  // Flip a byte inside the SECOND record's payload — valid records exist
  // both before and after the damage.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::string content;
  int c;
  while ((c = std::fgetc(f)) != EOF) content.push_back((char)c);
  size_t second_line = content.find('\n') + 1;
  size_t flip = content.find("second", second_line);
  ASSERT_NE(flip, std::string::npos);
  std::fseek(f, (long)flip, SEEK_SET);
  std::fputc('X', f);
  std::fclose(f);

  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_FALSE(wal.ok());
  EXPECT_TRUE(wal.status().IsCorruption()) << wal.status();
  EXPECT_NE(wal.status().message().find("checksum"), std::string::npos)
      << wal.status();
  // The file was NOT rewritten: damage is preserved for forensics.
  EXPECT_EQ(fs::file_size(path), content.size());
}

TEST(WalTest, CorruptFinalCompleteRecordIsCorruptionToo) {
  // Only a record missing its terminator is a torn append; the LAST line
  // of the file gets no special leniency once it is newline-complete.
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Op("keep")).ok());
    ASSERT_TRUE(wal->Append(Op("tail")).ok());
  }
  std::string content;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    int c;
    while ((c = std::fgetc(f)) != EOF) content.push_back((char)c);
    std::fclose(f);
  }
  ASSERT_EQ(content.back(), '\n');
  size_t flip = content.find("tail");
  ASSERT_NE(flip, std::string::npos);
  {
    FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, (long)flip, SEEK_SET);
    std::fputc('Z', f);
    std::fclose(f);
  }
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_FALSE(wal.ok());
  EXPECT_TRUE(wal.status().IsCorruption()) << wal.status();
}

TEST(WalTest, ResetTruncatesButPreservesLsnContinuity) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(Op("x")).ok());
  ASSERT_TRUE(wal->Reset().ok());
  // LSNs are a history position, not a file offset: they keep growing
  // across Reset so a checkpoint's "covers through LSN K" claim stays
  // valid for post-reset appends (see Database::Checkpoint).
  EXPECT_EQ(wal->next_lsn(), 2u);
  EXPECT_EQ(fs::file_size(path), 0u);
  Result<uint64_t> lsn = wal->Append(Op("y"));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);

  // A reopened log recovers the stored LSN, not a renumbered one.
  wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].lsn, 2u);
  EXPECT_EQ(wal->next_lsn(), 3u);
}

TEST(WalTest, LegacyRecordsWithoutLsnStillRecover) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  // Hand-write two pre-LSN-format records: <crc> <len> <json>.
  std::string a = Op("first").Dump();
  std::string b = Op("second").Dump();
  char header[32];
  std::string content;
  std::snprintf(header, sizeof(header), "%08x %zu ", Crc32(a), a.size());
  content += StrCat(header, a, "\n");
  std::snprintf(header, sizeof(header), "%08x %zu ", Crc32(b), b.size());
  content += StrCat(header, b, "\n");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);

  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].lsn, 1u);  // assigned sequentially
  EXPECT_EQ(recovered[1].lsn, 2u);
  EXPECT_EQ(*recovered[1].payload.GetString("tag"), "second");
  // New appends continue the numbering in the current (stored-LSN) format.
  Result<uint64_t> lsn = wal->Append(Op("third"));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(recovered.size(), 3u);
  EXPECT_EQ(recovered[2].lsn, 3u);
}

TEST(WalTest, SyncIsCallableAndCounted) {
  TempDir dir;
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(dir.file("wal.log"), &recovered);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE(wal->options().sync_every_append);
  ASSERT_TRUE(wal->Append(Op("x")).ok());
  EXPECT_EQ(wal->stats().syncs, 0u);  // default mode never syncs implicitly
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(wal->Sync().ok());  // idempotent at a durability point
  EXPECT_EQ(wal->stats().syncs, 2u);
}

TEST(WalTest, SyncEveryAppendSyncsEachRecordAndReset) {
  TempDir dir;
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(dir.file("wal.log"), &recovered,
                              Wal::Options{.sync_every_append = true});
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->options().sync_every_append);
  ASSERT_TRUE(wal->Append(Op("a")).ok());
  ASSERT_TRUE(wal->Append(Op("b")).ok());
  ASSERT_TRUE(wal->Append(Op("c")).ok());
  EXPECT_EQ(wal->stats().appends, 3u);
  EXPECT_EQ(wal->stats().syncs, 3u);  // one fdatasync per acknowledged append
  EXPECT_GT(wal->stats().append_bytes, 0u);

  // Reset is a durability point too: the truncation itself is synced.
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->stats().resets, 1u);
  EXPECT_EQ(wal->stats().syncs, 4u);
}

TEST(WalTest, RecoveryAndTruncationStats) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal->stats().recovered_records, 0u);
    ASSERT_TRUE(wal->Append(Op("one")).ok());
    ASSERT_TRUE(wal->Append(Op("two")).ok());
  }
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal->stats().recovered_records, 2u);
    EXPECT_EQ(wal->stats().truncations, 0u);
  }
  // A torn tail bumps the truncation count.
  fs::resize_file(path, fs::file_size(path) - 3);
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->stats().recovered_records, 1u);
  EXPECT_EQ(wal->stats().truncations, 1u);
}

TEST(WalTest, MetricsMirrorAppendsAndRecovery) {
  TempDir dir;
  std::string path = dir.file("wal.log");
  {
    std::vector<WalRecord> recovered;
    Result<Wal> wal = Wal::Open(path, &recovered);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Op("persisted")).ok());
  }
  metrics::MetricsRegistry registry;
  std::vector<WalRecord> recovered;
  Result<Wal> wal = Wal::Open(path, &recovered,
                              Wal::Options{.sync_every_append = true});
  ASSERT_TRUE(wal.ok());
  wal->set_metrics(&registry);  // flushes the recovery counts at attach
  ASSERT_TRUE(wal->Append(Op("x")).ok());
  ASSERT_TRUE(wal->Append(Op("y")).ok());

  Json counters = registry.Snapshot().At("counters");
  EXPECT_EQ(counters.At("wal.appends").AsInt(), 2);
  EXPECT_EQ(counters.At("wal.syncs").AsInt(), 2);
  EXPECT_EQ(counters.At("wal.recoveries").AsInt(), 1);
  EXPECT_EQ(counters.At("wal.recovered_records").AsInt(), 1);
  EXPECT_EQ(counters.At("wal.append_bytes").AsInt(),
            static_cast<int64_t>(wal->stats().append_bytes));
}

Schema S() {
  return *Schema::Create(
      {{"id", DataType::kInt, false}, {"v", DataType::kString, true}},
      {"id"});
}

Row R(int64_t id, const char* v) { return {Value::Int(id), Value::String(v)}; }

TEST(DatabaseTest, InMemoryCatalogAndMutations) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  EXPECT_TRUE(db.CreateTable("t", S()).IsAlreadyExists());
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"t"});

  ASSERT_TRUE(db.Insert("t", R(1, "a")).ok());
  EXPECT_TRUE(db.Insert("t", R(1, "a")).IsAlreadyExists());
  ASSERT_TRUE(db.Update("t", R(1, "b")).ok());
  ASSERT_TRUE(
      db.UpdateAttribute("t", {Value::Int(1)}, "v", Value::String("c")).ok());
  EXPECT_EQ((*db.GetTable("t"))->Get({Value::Int(1)})->at(1).AsString(), "c");
  ASSERT_TRUE(db.Delete("t", {Value::Int(1)}).ok());
  EXPECT_TRUE(db.Delete("t", {Value::Int(1)}).IsNotFound());
  EXPECT_TRUE(db.Insert("ghost", R(1, "a")).IsNotFound());
  ASSERT_TRUE(db.DropTable("t").ok());
  EXPECT_FALSE(db.HasTable("t"));
  EXPECT_TRUE(db.DropTable("t").IsNotFound());
}

TEST(DatabaseTest, UpsertInsertsOrOverwrites) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  ASSERT_TRUE(db.Upsert("t", R(1, "first")).ok());
  ASSERT_TRUE(db.Upsert("t", R(1, "second")).ok());
  EXPECT_EQ((*db.GetTable("t"))->row_count(), 1u);
  EXPECT_EQ((*db.GetTable("t"))->Get({Value::Int(1)})->at(1).AsString(),
            "second");
  EXPECT_TRUE(db.Upsert("ghost", R(1, "x")).IsNotFound());
}

TEST(DatabaseTest, UpsertSurvivesReopen) {
  TempDir dir;
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Upsert("t", R(1, "v1")).ok());
    ASSERT_TRUE(db->Upsert("t", R(1, "v2")).ok());
  }
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db->GetTable("t"))->Get({Value::Int(1)})->at(1).AsString(),
            "v2");
}

TEST(DatabaseTest, FailedOpLeavesStateUntouched) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  ASSERT_TRUE(db.Insert("t", R(1, "a")).ok());
  Table before = *db.Snapshot("t");
  EXPECT_FALSE(db.Update("t", R(9, "zz")).ok());
  EXPECT_EQ(*db.Snapshot("t"), before);
}

TEST(DatabaseTest, ReplaceTableChecksSchema) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  Table replacement(S());
  ASSERT_TRUE(replacement.Insert(R(7, "r")).ok());
  ASSERT_TRUE(db.ReplaceTable("t", replacement).ok());
  EXPECT_EQ(*db.Snapshot("t"), replacement);

  Table wrong(*Schema::Create({{"x", DataType::kInt, false}}, {"x"}));
  EXPECT_TRUE(db.ReplaceTable("t", wrong).IsInvalidArgument());
}

TEST(DatabaseTest, ApplyTableDelta) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  ASSERT_TRUE(db.Insert("t", R(1, "a")).ok());
  TableDelta delta;
  delta.inserts.push_back(R(2, "b"));
  delta.updates.push_back(R(1, "A"));
  ASSERT_TRUE(db.ApplyTableDelta("t", delta).ok());
  EXPECT_EQ((*db.GetTable("t"))->row_count(), 2u);
}

TEST(DatabaseTest, DurableReopenReplaysWal) {
  TempDir dir;
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Insert("t", R(1, "persisted")).ok());
    ASSERT_TRUE(db->Insert("t", R(2, "also")).ok());
    ASSERT_TRUE(db->Delete("t", {Value::Int(2)}).ok());
    // No checkpoint — recovery must come purely from the WAL.
  }
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->HasTable("t"));
  EXPECT_EQ((*db->GetTable("t"))->row_count(), 1u);
  EXPECT_EQ((*db->GetTable("t"))->Get({Value::Int(1)})->at(1).AsString(),
            "persisted");
}

TEST(DatabaseTest, CheckpointThenReopen) {
  TempDir dir;
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Insert("t", R(1, "snap")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    // Post-checkpoint mutation lands in the fresh WAL.
    ASSERT_TRUE(db->Insert("t", R(2, "wal")).ok());
  }
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db->GetTable("t"))->row_count(), 2u);
}

TEST(DatabaseTest, TransactionCommitIsAtomic) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  ASSERT_TRUE(db.Insert("t", R(1, "a")).ok());

  Database::Transaction txn = db.Begin();
  txn.Insert("t", R(2, "b"));
  txn.UpdateAttribute("t", {Value::Int(1)}, "v", Value::String("A"));
  txn.Delete("t", {Value::Int(1)});
  EXPECT_EQ(txn.op_count(), 3u);
  ASSERT_TRUE(db.Commit(std::move(txn)).ok());
  EXPECT_EQ((*db.GetTable("t"))->row_count(), 1u);
  EXPECT_TRUE((*db.GetTable("t"))->Contains({Value::Int(2)}));
}

TEST(DatabaseTest, TransactionFailureRollsBackEverything) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  ASSERT_TRUE(db.Insert("t", R(1, "a")).ok());
  Table before = *db.Snapshot("t");

  Database::Transaction txn = db.Begin();
  txn.Insert("t", R(2, "b"));          // valid
  txn.Delete("t", {Value::Int(99)});   // invalid — whole txn must abort
  Status committed = db.Commit(std::move(txn));
  EXPECT_FALSE(committed.ok());
  EXPECT_EQ(*db.Snapshot("t"), before);
}

TEST(DatabaseTest, DroppedTransactionHasNoEffect) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", S()).ok());
  {
    Database::Transaction txn = db.Begin();
    txn.Insert("t", R(1, "discarded"));
  }
  EXPECT_EQ((*db.GetTable("t"))->row_count(), 0u);
}

TEST(DatabaseTest, CommitPathSyncsEveryAppend) {
  // The database's durability promise: every acknowledged mutation was
  // fdatasync'd, not just buffered — so wal.syncs tracks wal.appends 1:1.
  TempDir dir;
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->CreateTable("t", S()).ok());
  ASSERT_TRUE(db->Insert("t", R(1, "a")).ok());
  ASSERT_TRUE(db->Insert("t", R(2, "b")).ok());

  Wal::Stats stats = db->wal_stats();
  EXPECT_EQ(stats.appends, 3u);  // create + 2 inserts
  EXPECT_EQ(stats.syncs, stats.appends);

  metrics::MetricsRegistry registry;
  db->set_metrics(&registry);
  ASSERT_TRUE(db->Delete("t", {Value::Int(2)}).ok());
  Json counters = registry.Snapshot().At("counters");
  EXPECT_EQ(counters.At("wal.appends").AsInt(), 1);
  EXPECT_EQ(counters.At("wal.syncs").AsInt(), 1);
}

TEST(DatabaseTest, UnknownSnapshotFormatIsCorruption) {
  // Regression test: Open used to accept ANY parseable "format" integer
  // and read the snapshot as the current layout — a database written by a
  // future version (or with a corrupted format field) would be silently
  // misparsed instead of refused.
  TempDir dir;
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    ASSERT_TRUE(db->Insert("t", R(1, "x")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  // Rewrite the manifest's format int to a number this build never wrote.
  std::string snap_path = dir.file("snapshot.json");
  std::string text;
  {
    FILE* f = std::fopen(snap_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    int c;
    while ((c = std::fgetc(f)) != EOF) text.push_back((char)c);
    std::fclose(f);
  }
  size_t pos = text.find("\"format\"");
  ASSERT_NE(pos, std::string::npos);
  size_t colon = text.find(':', pos);
  size_t digit = text.find_first_of("0123456789", colon);
  ASSERT_NE(digit, std::string::npos);
  text = text.substr(0, digit) + "99" + text.substr(digit + 1);
  {
    FILE* f = std::fopen(snap_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  Result<Database> reopened = Database::Open(dir.path());
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption()) << reopened.status();
  EXPECT_NE(reopened.status().message().find("format 99"), std::string::npos)
      << reopened.status();
}

TEST(DatabaseTest, LegacyFormat2SnapshotStillOpens) {
  // A monolithic format-2 snapshot (what earlier builds wrote) must keep
  // loading; the next Checkpoint migrates the directory to format 3.
  TempDir dir;
  Table t(S());
  ASSERT_TRUE(t.Insert(R(1, "legacy")).ok());
  ASSERT_TRUE(t.Insert(R(2, "rows")).ok());
  Json tables = Json::MakeObject();
  tables.Set("t", t.ToJson());
  Json snapshot = Json::MakeObject();
  snapshot.Set("format", static_cast<int64_t>(2));
  snapshot.Set("wal_through", static_cast<int64_t>(0));
  snapshot.Set("tables", std::move(tables));
  std::string dump = snapshot.Dump();
  FILE* f = std::fopen(dir.file("snapshot.json").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(dump.data(), 1, dump.size(), f);
  std::fclose(f);

  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(*db->Snapshot("t"), t);
  ASSERT_TRUE(db->Checkpoint().ok());
  Result<Database> again = Database::Open(dir.path());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*again->Snapshot("t"), t);
}

TEST(DatabaseTest, ChunkedCheckpointRoundTripsSealedHistory) {
  // Force chunks with a tiny seal threshold, checkpoint, and verify the
  // manifest + content-addressed chunk files reload to the same table.
  TempDir dir;
  Table expected(S());
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    for (int64_t i = 0; i < 50; ++i) {
      Row row = R(i, "v");
      ASSERT_TRUE(db->Insert("t", row).ok());
      ASSERT_TRUE(expected.Insert(std::move(row)).ok());
    }
    // Seal explicitly — the database path itself seals automatically only
    // at the real threshold.
    ASSERT_TRUE(db->SealTable("t").ok());
    ASSERT_GE((*db->GetTable("t"))->chunks().size(), 1u);
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_TRUE(fs::exists(dir.file("chunks")));
    size_t chunk_files = 0;
    for (const auto& e : fs::directory_iterator(dir.file("chunks"))) {
      (void)e;
      ++chunk_files;
    }
    EXPECT_GE(chunk_files, 1u);
  }
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(*db->Snapshot("t"), expected);
  EXPECT_EQ(db->Snapshot("t")->ContentDigest(), expected.ContentDigest());
}

TEST(DatabaseTest, CheckpointSkipsAndCollectsChunkFiles) {
  // Content-addressing: an unchanged chunk is written once and survives
  // later checkpoints untouched; a compaction that supersedes it gets the
  // old file garbage-collected.
  TempDir dir;
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->CreateTable("t", S()).ok());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Insert("t", R(i, "a")).ok());
  }
  ASSERT_TRUE(db->SealTable("t").ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  auto chunk_mtimes = [&] {
    std::map<std::string, fs::file_time_type> out;
    for (const auto& e : fs::directory_iterator(dir.file("chunks"))) {
      out[e.path().filename().string()] = fs::last_write_time(e.path());
    }
    return out;
  };
  auto before = chunk_mtimes();
  ASSERT_EQ(before.size(), 1u);

  // Head-only growth: re-checkpoint must not rewrite the sealed file.
  ASSERT_TRUE(db->Insert("t", R(100, "head")).ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_EQ(chunk_mtimes(), before);

  // Compaction replaces history: the superseded file is collected.
  ASSERT_TRUE(db->Delete("t", {Value::Int(0)}).ok());
  ASSERT_TRUE(db->SealTable("t").ok());
  ASSERT_EQ((*db->GetTable("t"))->chunks().size(), 1u);
  ASSERT_TRUE(db->Checkpoint().ok());
  auto after = chunk_mtimes();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(before.count(after.begin()->first), 0u);
}

TEST(DatabaseTest, MissingChunkFileFailsOpenWithCorruption) {
  TempDir dir;
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->Insert("t", R(i, "x")).ok());
    }
    ASSERT_TRUE(db->SealTable("t").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  for (const auto& e : fs::directory_iterator(dir.file("chunks"))) {
    fs::remove(e.path());
  }
  Result<Database> db = Database::Open(dir.path());
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption()) << db.status();
}

TEST(DatabaseTest, BulkLoadOptionSkipsPerAppendSync) {
  TempDir dir;
  {
    Result<Database> db = Database::Open(
        dir.path(), Database::OpenOptions{.sync_every_append = false});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db->Insert("t", R(i, "bulk")).ok());
    }
    EXPECT_EQ(db->wal_stats().syncs, 0u);  // no fdatasync per append
    EXPECT_EQ(db->wal_stats().appends, 101u);
  }
  // Records still reached the OS: a clean reopen (process exit, no machine
  // crash) replays everything.
  Result<Database> reopened = Database::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened->GetTable("t"))->row_count(), 100u);
}

TEST(DatabaseTest, DurableTransactionSurvivesReopen) {
  TempDir dir;
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->CreateTable("t", S()).ok());
    Database::Transaction txn = db->Begin();
    txn.Insert("t", R(1, "x"));
    txn.Insert("t", R(2, "y"));
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
  Result<Database> db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db->GetTable("t"))->row_count(), 2u);
}

}  // namespace
}  // namespace medsync::relational
