// A permission revocation racing an in-flight cascade. The doctor updates
// the medication name in the patient-doctor table while the researcher —
// the authority over "D23&D32" — submits a revocation of the doctor's
// row permission on that table before the cascade can reach it (the
// medication name is D32's key, so the cascade arrives as a kind=replace
// checked against row membership). The revocation seals first, so the
// contract denies the cascade's request_update; the audit trail must then
// show the researcher table's committed history ending at the revocation
// block, with only the DENIED attempt after it. A re-grant plus a fresh
// update heals the lag.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "contracts/metadata_contract.h"
#include "core/audit.h"
#include "core/scenario.h"
#include "medical/records.h"

namespace medsync::core {
namespace {

using medical::kMedicationName;
using relational::Value;

constexpr char kPD[] = "D13&D31";
constexpr char kDR[] = "D23&D32";

TEST(RevocationRaceTest, RevocationMidCascadeDeniesAndPinsTheAuditTrail) {
  ScenarioOptions options;
  auto created = ClinicScenario::Create(options);
  ASSERT_TRUE(created.ok()) << created.status();
  ClinicScenario& clinic = **created;

  // Fire the update and the revocation back to back — no settling in
  // between, so both race toward the same sealing window. The doctor's
  // cascade into D23&D32 only starts after its D13&D31 update commits,
  // which guarantees the revocation executes first.
  ASSERT_TRUE(clinic.doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)},
                                         kMedicationName,
                                         Value::String("Naproxen"))
                  .ok());
  auto revoke_tx = clinic.researcher().SubmitChangePermission(
      kDR, contracts::MetadataContract::kRowsPermission,
      clinic.doctor().address(), /*grant=*/false);
  ASSERT_TRUE(revoke_tx.ok()) << revoke_tx.status();
  ASSERT_TRUE(clinic.SettleAll().ok());

  // The patient-doctor table converged on the new name...
  EXPECT_EQ(clinic.patient()
                .database()
                .Snapshot("D1")
                ->Get({Value::Int(188)})
                ->at(1)
                .AsString(),
            "Naproxen");
  // ...but the cascade into the researcher's table was denied: the old
  // medication row survives on the researcher side and the doctor knows
  // its D32 replica lags D3.
  EXPECT_TRUE(clinic.researcher().database().Snapshot("D2")->Contains(
      {Value::String("Ibuprofen")}));
  ASSERT_TRUE(clinic.doctor().GetSyncState(kDR).ok());
  EXPECT_TRUE(clinic.doctor().GetSyncState(kDR)->needs_refresh);

  // Audit trail of the researcher table: find the revocation block, then
  // check no COMMITTED update traffic exists after it and that the denied
  // request_update is recorded behind it with a permission denial.
  const std::vector<AuditRecord> trail = BuildAuditTrail(
      clinic.node(0).blockchain(), clinic.node(0).host(), kDR);
  uint64_t revoke_height = 0;
  for (const AuditRecord& record : trail) {
    if (record.tx_id == *revoke_tx) {
      EXPECT_EQ(record.method, "change_permission");
      EXPECT_TRUE(record.committed) << record.denial_reason;
      revoke_height = record.block_height;
    }
  }
  ASSERT_GT(revoke_height, 0u) << "revocation transaction not on chain";

  bool saw_denied_request_after_revoke = false;
  for (const AuditRecord& record : trail) {
    if (record.block_height <= revoke_height) continue;
    // Committed history of the researcher table ends at the revocation
    // block — everything after it must be the denied attempt(s).
    EXPECT_FALSE(record.committed)
        << record.method << " committed at height " << record.block_height
        << " after the revocation at " << revoke_height;
    if (record.method == "request_update" && !record.committed) {
      saw_denied_request_after_revoke = true;
      EXPECT_NE(record.denial_reason.find("may not"), std::string::npos)
          << record.denial_reason;
    }
  }
  EXPECT_TRUE(saw_denied_request_after_revoke);

  // Re-grant and push a fresh update: the next cascade re-derives the
  // whole view, so the researcher catches up on the missed change too.
  ASSERT_TRUE(clinic.researcher()
                  .SubmitChangePermission(
                      kDR, contracts::MetadataContract::kRowsPermission,
                      clinic.doctor().address(), /*grant=*/true)
                  .ok());
  ASSERT_TRUE(clinic.SettleAll().ok());
  ASSERT_TRUE(clinic.doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)},
                                         kMedicationName,
                                         Value::String("Naproxen-XR"))
                  .ok());
  ASSERT_TRUE(clinic.SettleAll().ok());

  EXPECT_TRUE(clinic.researcher().database().Snapshot("D2")->Contains(
      {Value::String("Naproxen-XR")}));
  EXPECT_FALSE(clinic.researcher().database().Snapshot("D2")->Contains(
      {Value::String("Ibuprofen")}));
  ASSERT_TRUE(clinic.doctor().GetSyncState(kDR).ok());
  EXPECT_FALSE(clinic.doctor().GetSyncState(kDR)->needs_refresh);
}

}  // namespace
}  // namespace medsync::core
