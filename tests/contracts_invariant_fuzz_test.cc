// Section IV-2 of the paper worries about "correctness of smart contracts"
// and suggests formal verification. The executable analogue here: drive
// the MetadataContract through long random operation sequences (valid and
// invalid, from peers and outsiders) and check, after every block, a set
// of machine-checkable state invariants plus snapshot/restore fidelity.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "contracts/host.h"
#include "contracts/metadata_contract.h"

namespace medsync::contracts {
namespace {

class InvariantFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  InvariantFuzzTest() {
    host_.RegisterType("metadata", MetadataContract::Create);
    for (int i = 0; i < 4; ++i) {
      actors_.push_back(crypto::KeyPair::FromSeed(StrCat("fuzz-actor-", i)));
    }
    chain::Transaction deploy = Tx(0, crypto::Address::Zero(), "metadata",
                                   Json::MakeObject());
    contract_ = ContractHost::DeploymentAddress(deploy);
    Execute(std::move(deploy));
  }

  chain::Transaction Tx(size_t actor, const crypto::Address& to,
                        const std::string& method, Json params) {
    chain::Transaction tx;
    tx.from = actors_[actor].address();
    tx.to = to;
    tx.nonce = nonce_++;
    tx.method = method;
    tx.params = std::move(params);
    tx.timestamp = static_cast<Micros>(nonce_);
    tx.Sign(actors_[actor]);
    return tx;
  }

  Receipt Execute(chain::Transaction tx) {
    chain::Block block;
    block.header.height = height_++;
    block.header.timestamp = static_cast<Micros>(height_) * 1000;
    block.transactions = {std::move(tx)};
    block.header.merkle_root = block.ComputeMerkleRoot();
    return host_.ExecuteBlock(block)[0];
  }

  Json RandomUpdateParams(Rng* rng, const std::string& table_id) {
    Json params = Json::MakeObject();
    params.Set("table_id", table_id);
    const char* kinds[] = {"update", "insert", "delete", "replace", "bogus"};
    params.Set("kind", kinds[rng->NextBelow(5)]);
    Json attrs = Json::MakeArray();
    size_t n = rng->NextBelow(3);
    for (size_t i = 0; i < n; ++i) {
      attrs.Append(StrCat("attr", rng->NextBelow(4)));
    }
    params.Set("attributes", std::move(attrs));
    params.Set("digest", StrCat("d", rng->NextBelow(1000)));
    return params;
  }

  /// Checks every entry's structural invariants against the snapshot.
  void CheckInvariants() {
    Json snapshot;
    {
      // Reach the state through a read-only call per table.
      Result<Json> tables = host_.StaticCall(contract_, "list_tables",
                                             Json::MakeObject(),
                                             actors_[0].address());
      ASSERT_TRUE(tables.ok());
      snapshot = Json::MakeObject();
      for (const Json& id : tables->AsArray()) {
        Json params = Json::MakeObject();
        params.Set("table_id", id.AsString());
        Result<Json> entry = host_.StaticCall(contract_, "get_entry", params,
                                              actors_[0].address());
        ASSERT_TRUE(entry.ok());
        snapshot.Set(id.AsString(), *entry);
      }
    }

    for (const auto& [table_id, entry] : snapshot.AsObject()) {
      std::set<std::string> peers;
      for (const Json& p : entry.At("peers").AsArray()) {
        peers.insert(p.AsString());
      }
      // At least two distinct peers.
      ASSERT_GE(peers.size(), 2u) << table_id;
      // Provider and authority are peers.
      EXPECT_TRUE(peers.count(*entry.GetString("provider"))) << table_id;
      EXPECT_TRUE(peers.count(*entry.GetString("authority"))) << table_id;
      // Pending acks are a subset of peers and never include the updater.
      std::string last_updater;
      if (entry.At("last_updater").is_string()) {
        last_updater = entry.At("last_updater").AsString();
      }
      for (const Json& p : entry.At("pending_acks").AsArray()) {
        EXPECT_TRUE(peers.count(p.AsString())) << table_id;
        if (!last_updater.empty()) {
          EXPECT_NE(p.AsString(), last_updater) << table_id;
        }
      }
      // Every permission holder is a peer.
      for (const auto& [attr, allowed] :
           entry.At("write_permission").AsObject()) {
        for (const Json& p : allowed.AsArray()) {
          EXPECT_TRUE(peers.count(p.AsString())) << table_id << "/" << attr;
        }
      }
      for (const Json& p : entry.At("membership_permission").AsArray()) {
        EXPECT_TRUE(peers.count(p.AsString())) << table_id;
      }
      // Version starts at 1 and counts registrations+updates.
      EXPECT_GE(*entry.GetInt("version"), 1) << table_id;
      EXPECT_EQ(*entry.GetInt("version"),
                1 + *entry.GetInt("updates_committed"))
          << table_id;
    }

    // Snapshot/restore fidelity: a contract rebuilt from the snapshot has
    // identical state.
    MetadataContract rebuilt;
    ASSERT_TRUE(rebuilt.RestoreState(snapshot).ok());
    EXPECT_EQ(rebuilt.StateSnapshot(), snapshot);
  }

  ContractHost host_;
  std::vector<crypto::KeyPair> actors_;
  crypto::Address contract_;
  uint64_t nonce_ = 0;
  uint64_t height_ = 1;
};

TEST_P(InvariantFuzzTest, InvariantsHoldUnderRandomOperationSequences) {
  Rng rng(GetParam());
  std::vector<std::string> tables;
  // Versions the fuzzer has seen committed, for plausible acks.
  std::map<std::string, std::pair<int64_t, std::string>> last_commit;

  for (int step = 0; step < 120; ++step) {
    size_t actor = rng.NextBelow(actors_.size());
    switch (rng.NextBelow(6)) {
      case 0: {  // register (sometimes duplicate id, sometimes non-peer)
        std::string id = StrCat("T", rng.NextBelow(6));
        Json peers = Json::MakeArray();
        size_t peer_count = 2 + rng.NextBelow(2);
        for (size_t i = 0; i < peer_count; ++i) {
          peers.Append(actors_[(actor + i) % actors_.size()]
                           .address()
                           .ToHex());
        }
        Json perm = Json::MakeObject();
        for (size_t a = 0; a < rng.NextBelow(4); ++a) {
          Json allowed = Json::MakeArray();
          allowed.Append(
              actors_[(actor + rng.NextBelow(peer_count)) %
                      actors_.size()]
                  .address()
                  .ToHex());
          perm.Set(StrCat("attr", a), std::move(allowed));
        }
        Json params = Json::MakeObject();
        params.Set("table_id", id);
        params.Set("peers", std::move(peers));
        params.Set("view_schema", Json::MakeObject());
        params.Set("write_permission", std::move(perm));
        params.Set("digest", "d0");
        Receipt receipt =
            Execute(Tx(actor, contract_, "register_table", params));
        if (receipt.ok) tables.push_back(id);
        break;
      }
      case 1:
      case 2: {  // request_update (random kind/attrs/caller)
        if (tables.empty()) break;
        std::string id = tables[rng.NextIndex(tables.size())];
        Json params = RandomUpdateParams(&rng, id);
        Receipt receipt =
            Execute(Tx(actor, contract_, "request_update", params));
        if (receipt.ok) {
          last_commit[id] = {0, *params.GetString("digest")};
          // Record the committed version from the event.
          for (const Event& event : receipt.events) {
            if (event.name == "UpdateCommitted") {
              last_commit[id].first = *event.payload.GetInt("version");
            }
          }
        }
        break;
      }
      case 3: {  // ack (sometimes right, sometimes garbage)
        if (tables.empty()) break;
        std::string id = tables[rng.NextIndex(tables.size())];
        Json params = Json::MakeObject();
        params.Set("table_id", id);
        if (last_commit.count(id) && rng.NextBool(0.7)) {
          params.Set("version", last_commit[id].first);
          params.Set("digest", last_commit[id].second);
        } else {
          params.Set("version", static_cast<int64_t>(rng.NextBelow(5)));
          params.Set("digest", "junk");
        }
        Execute(Tx(actor, contract_, "ack_update", params));
        break;
      }
      case 4: {  // change_permission (random authority claims)
        if (tables.empty()) break;
        std::string id = tables[rng.NextIndex(tables.size())];
        Json params = Json::MakeObject();
        params.Set("table_id", id);
        params.Set("attribute", rng.NextBool(0.2)
                                    ? MetadataContract::kRowsPermission
                                    : StrCat("attr", rng.NextBelow(4)));
        params.Set("peer",
                   actors_[rng.NextBelow(actors_.size())].address().ToHex());
        params.Set("grant", rng.NextBool());
        Execute(Tx(actor, contract_, "change_permission", params));
        break;
      }
      default: {  // set_authority
        if (tables.empty()) break;
        std::string id = tables[rng.NextIndex(tables.size())];
        Json params = Json::MakeObject();
        params.Set("table_id", id);
        params.Set("new_authority",
                   actors_[rng.NextBelow(actors_.size())].address().ToHex());
        Execute(Tx(actor, contract_, "set_authority", params));
        break;
      }
    }
    if (step % 10 == 9) CheckInvariants();
  }
  CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantFuzzTest,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

}  // namespace
}  // namespace medsync::contracts
