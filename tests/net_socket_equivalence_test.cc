// The simulator/socket seam, proven end to end: the SAME four-role clinic
// deployment (Fig. 5 cascade) is driven once over Simulator+SimNetwork and
// once over a real EventLoop with four SocketTransports on loopback TCP,
// and every role's transport-invariant report ("compare": contract entries,
// audit-trail projection, shared-view content digests) must be
// byte-identical between the two worlds. Plus the hostile-stream contract:
// bytes that fail CRC/framing condemn the connection, counted in
// net.frame_corrupt, without disturbing attached endpoints.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/daemon.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/network.h"
#include "net/simulator.h"
#include "net/socket_transport.h"

namespace medsync::net {
namespace {

using core::ClinicDaemon;
using core::ClinicDaemonOptions;
using core::ClinicRole;

constexpr std::array<ClinicRole, 4> kRoles = {
    ClinicRole::kDoctor, ClinicRole::kPatient, ClinicRole::kResearcher,
    ClinicRole::kObserver};

ClinicDaemonOptions OptionsFor(ClinicRole role) {
  ClinicDaemonOptions options;
  options.role = role;
  options.block_interval = 50 * kMicrosPerMilli;
  options.tick_interval = 10 * kMicrosPerMilli;
  options.timeout = 60 * kMicrosPerSecond;
  return options;
}

/// Per-role "compare" blocks, canonically dumped for byte comparison.
using CompareBlocks = std::map<std::string, std::string>;

void CollectCompare(std::vector<std::unique_ptr<ClinicDaemon>>& daemons,
                    CompareBlocks* out) {
  for (size_t i = 0; i < daemons.size(); ++i) {
    Json report = daemons[i]->Report();
    (*out)[core::ClinicRoleName(kRoles[i])] = report.At("compare").Dump();
  }
  // Replicated chain state (entries + audit) must already agree between
  // the roles of ONE world; view_digests legitimately differ (each role
  // reports only the shared views it hosts).
  for (size_t i = 1; i < daemons.size(); ++i) {
    for (const char* key : {"entries", "audit"}) {
      EXPECT_EQ(daemons[i]->Report().At("compare").At(key).Dump(),
                daemons[0]->Report().At("compare").At(key).Dump())
          << core::ClinicRoleName(kRoles[i]) << " " << key;
    }
  }
}

/// The whole deployment in one simulated world (the tests' home turf).
CompareBlocks RunSimulated() {
  Simulator simulator;
  SimNetwork network(&simulator, LatencyModel{}, /*seed=*/17);
  std::vector<std::unique_ptr<ClinicDaemon>> daemons;
  for (ClinicRole role : kRoles) {
    auto daemon = ClinicDaemon::Create(OptionsFor(role), &simulator, &network);
    EXPECT_TRUE(daemon.ok()) << daemon.status().ToString();
    if (!daemon.ok()) return {};
    daemons.push_back(std::move(*daemon));
  }
  for (auto& daemon : daemons) daemon->Start();

  for (int rounds = 0; rounds < 120; ++rounds) {
    simulator.RunFor(1 * kMicrosPerSecond);
    bool all = true;
    for (auto& daemon : daemons) {
      EXPECT_FALSE(daemon->failed()) << daemon->failure().ToString();
      all = all && daemon->converged();
    }
    if (all) break;
  }
  CompareBlocks out;
  for (auto& daemon : daemons) EXPECT_TRUE(daemon->converged());
  CollectCompare(daemons, &out);
  return out;
}

/// The same deployment over four real socket transports (one per role, as
/// a daemon process would own) sharing one event loop and loopback TCP.
CompareBlocks RunOverSockets() {
  EventLoop loop;
  std::vector<std::unique_ptr<SocketTransport>> transports;
  for (size_t i = 0; i < kRoles.size(); ++i) {
    SocketTransportOptions options;  // ephemeral port
    transports.push_back(
        std::make_unique<SocketTransport>(&loop, std::move(options)));
    Status listening = transports.back()->Listen();
    EXPECT_TRUE(listening.ok()) << listening.ToString();
    if (!listening.ok()) return {};
  }
  // Every transport learns where every REMOTE role's ids live — the
  // ephemeral-port version of the daemon's static route map.
  for (size_t i = 0; i < kRoles.size(); ++i) {
    for (size_t j = 0; j < kRoles.size(); ++j) {
      if (i == j) continue;
      std::string address =
          "127.0.0.1:" + std::to_string(transports[j]->port());
      for (const std::string& id : ClinicDaemon::LocalIds(kRoles[j])) {
        transports[i]->AddRoute(id, address);
      }
    }
  }

  std::vector<std::unique_ptr<ClinicDaemon>> daemons;
  for (size_t i = 0; i < kRoles.size(); ++i) {
    auto daemon =
        ClinicDaemon::Create(OptionsFor(kRoles[i]), &loop, transports[i].get());
    EXPECT_TRUE(daemon.ok()) << daemon.status().ToString();
    if (!daemon.ok()) return {};
    daemons.push_back(std::move(*daemon));
  }
  for (auto& daemon : daemons) daemon->Start();

  const Micros deadline = loop.Now() + 60 * kMicrosPerSecond;
  while (loop.Now() < deadline) {
    loop.RunOnce(20 * kMicrosPerMilli);
    bool all = true;
    for (auto& daemon : daemons) {
      EXPECT_FALSE(daemon->failed()) << daemon->failure().ToString();
      if (daemon->failed()) return {};
      all = all && daemon->converged();
    }
    if (all) break;
  }
  CompareBlocks out;
  for (size_t i = 0; i < daemons.size(); ++i) {
    EXPECT_TRUE(daemons[i]->converged())
        << core::ClinicRoleName(kRoles[i]) << " did not converge over TCP";
  }
  CollectCompare(daemons, &out);
  return out;
}

TEST(SocketEquivalenceTest, SimulatedAndSocketCascadesAgreeByteForByte) {
  CompareBlocks simulated = RunSimulated();
  ASSERT_EQ(simulated.size(), kRoles.size());
  CompareBlocks socketed = RunOverSockets();
  ASSERT_EQ(socketed.size(), kRoles.size());

  for (const auto& [role, block] : simulated) {
    EXPECT_EQ(socketed.at(role), block)
        << role << "'s protocol outcome differs between simulator and TCP";
    // Non-vacuous: the cascade actually ran (both tables at version 2).
    EXPECT_NE(block.find("\"version\":2"), std::string::npos) << role;
  }
}

/// A raw loopback client for attacking the transport from outside the
/// net layer (which is why this lives in tests/ — MS009 keeps raw sockets
/// out of src/ itself).
class RawClient {
 public:
  explicit RawClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  void SendBytes(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
  /// True once the server has closed its side (recv sees EOF).
  bool SawEof() {
    char buffer[64];
    ssize_t got = ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT);
    return got == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class CapturingEndpoint : public Endpoint {
 public:
  void OnMessage(const Message& message) override {
    messages.push_back(message);
  }
  std::vector<Message> messages;
};

std::string ValidWireFrame(const std::string& to, const std::string& text) {
  Json envelope = Json::MakeObject();
  envelope.Set("from", Json(std::string("attacker")));
  envelope.Set("to", Json(to));
  Json body = Json::MakeObject();
  body.Set("text", text);
  envelope.Set("body", body);
  Frame frame;
  frame.type = "probe";
  frame.payload = envelope.Dump();
  return EncodeFrame(frame);
}

TEST(SocketEquivalenceTest, CorruptStreamIsCountedAndConnectionDropped) {
  EventLoop loop;
  SocketTransportOptions options;
  SocketTransport transport(&loop, std::move(options));
  ASSERT_TRUE(transport.Listen().ok());
  CapturingEndpoint endpoint;
  transport.Attach("victim", &endpoint);

  RawClient client(transport.port());
  ASSERT_TRUE(client.connected());

  // A valid frame first: the stream is healthy and delivers.
  client.SendBytes(ValidWireFrame("victim", "before"));
  for (int i = 0; i < 50 && endpoint.messages.empty(); ++i) {
    loop.RunOnce(10 * kMicrosPerMilli);
  }
  ASSERT_EQ(endpoint.messages.size(), 1u);
  EXPECT_EQ(*endpoint.messages[0].payload.GetString("text"), "before");
  EXPECT_EQ(transport.frame_corrupt_count(), 0u);
  EXPECT_EQ(transport.connection_count(), 1u);

  // Garbage mid-stream: framing fails, the connection is condemned, and a
  // frame that would have been valid never reaches the endpoint — there is
  // no resynchronizing a byte stream past corruption.
  std::string garbage = "XXXX-not-a-frame";
  garbage += ValidWireFrame("victim", "after");
  client.SendBytes(garbage);
  for (int i = 0; i < 50 && transport.connection_count() > 0; ++i) {
    loop.RunOnce(10 * kMicrosPerMilli);
  }
  EXPECT_EQ(transport.frame_corrupt_count(), 1u);
  EXPECT_EQ(transport.connection_count(), 0u);
  EXPECT_EQ(endpoint.messages.size(), 1u);
  bool eof = false;
  for (int i = 0; i < 50 && !eof; ++i) {
    loop.RunOnce(10 * kMicrosPerMilli);
    eof = client.SawEof();
  }
  EXPECT_TRUE(eof) << "server kept a condemned connection open";

  // The transport survives to serve a fresh, healthy connection.
  RawClient second(transport.port());
  ASSERT_TRUE(second.connected());
  second.SendBytes(ValidWireFrame("victim", "recovered"));
  for (int i = 0; i < 50 && endpoint.messages.size() < 2; ++i) {
    loop.RunOnce(10 * kMicrosPerMilli);
  }
  ASSERT_EQ(endpoint.messages.size(), 2u);
  EXPECT_EQ(*endpoint.messages[1].payload.GetString("text"), "recovered");
}

}  // namespace
}  // namespace medsync::net
