// ReliableChannel: ack/retransmit with seeded exponential backoff on top
// of the lossy datagram Network. At-least-once on the wire, exactly-once
// to the wrapped endpoint (receiver-side dedup), restart-safe via epochs,
// and byte-identically deterministic under the sim clock.

#include "net/reliable_channel.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/metrics/metrics.h"
#include "net/network.h"
#include "net/simulator.h"

namespace medsync::net {
namespace {

/// Records every message forwarded by the channel (or delivered raw).
class CapturingEndpoint : public Endpoint {
 public:
  void OnMessage(const Message& message) override {
    messages.push_back(message);
  }
  std::vector<Message> messages;
};

Json Body(const std::string& text) {
  Json payload = Json::MakeObject();
  payload.Set("text", text);
  return payload;
}

class ReliableChannelTest : public ::testing::Test {
 protected:
  ReliableChannelTest() : network_(&simulator_, LatencyModel{}, /*seed=*/7) {}

  Simulator simulator_;
  SimNetwork network_;
};

TEST_F(ReliableChannelTest, DeliversAndCompletesViaAck) {
  CapturingEndpoint inner_a, inner_b;
  ReliableChannel a("a", &simulator_, &network_, &inner_a);
  ReliableChannel b("b", &simulator_, &network_, &inner_b);
  a.Attach();
  b.Attach();

  Message m;
  m.to = "b";
  m.type = "greeting";
  m.payload = Body("hello");
  ASSERT_TRUE(a.Send(std::move(m)).ok());
  EXPECT_EQ(a.pending(), 1u);

  simulator_.RunFor(1 * kMicrosPerSecond);

  ASSERT_EQ(inner_b.messages.size(), 1u);
  EXPECT_EQ(inner_b.messages[0].from, "a");
  EXPECT_EQ(inner_b.messages[0].to, "b");
  EXPECT_EQ(inner_b.messages[0].type, "greeting");
  EXPECT_EQ(*inner_b.messages[0].payload.GetString("text"), "hello");

  // The ack drained the pending send; no retransmit ever fired.
  EXPECT_EQ(a.pending(), 0u);
  EXPECT_EQ(a.stats().sends, 1u);
  EXPECT_EQ(a.stats().retries, 0u);
  EXPECT_EQ(a.stats().acks_received, 1u);
  EXPECT_EQ(b.stats().acks_sent, 1u);
  EXPECT_EQ(b.stats().delivered, 1u);
  EXPECT_EQ(b.stats().duplicates_dropped, 0u);
}

TEST_F(ReliableChannelTest, RetransmitsThroughTotalLossWindow) {
  CapturingEndpoint inner_a, inner_b;
  ReliableChannel a("a", &simulator_, &network_, &inner_a);
  ReliableChannel b("b", &simulator_, &network_, &inner_b);
  a.Attach();
  b.Attach();

  // Nothing gets through for the first two seconds.
  network_.set_drop_probability(1.0);
  Message m;
  m.to = "b";
  m.type = "persistent";
  m.payload = Body("eventually");
  ASSERT_TRUE(a.Send(std::move(m)).ok());
  simulator_.RunFor(2 * kMicrosPerSecond);
  EXPECT_TRUE(inner_b.messages.empty());
  EXPECT_GE(a.stats().retries, 2u);
  EXPECT_EQ(a.pending(), 1u);

  // The loss window ends; the next retransmit lands and is acked.
  network_.set_drop_probability(0.0);
  simulator_.RunFor(10 * kMicrosPerSecond);
  ASSERT_EQ(inner_b.messages.size(), 1u);
  EXPECT_EQ(*inner_b.messages[0].payload.GetString("text"), "eventually");
  EXPECT_EQ(a.pending(), 0u);
  EXPECT_EQ(b.stats().delivered, 1u);
}

TEST_F(ReliableChannelTest, SurvivesHeavyRandomLossWithoutDuplicates) {
  CapturingEndpoint inner_a, inner_b;
  ReliableChannel a("a", &simulator_, &network_, &inner_a);
  ReliableChannel b("b", &simulator_, &network_, &inner_b);
  a.Attach();
  b.Attach();

  network_.set_drop_probability(0.5);
  constexpr int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    m.to = "b";
    m.type = "burst";
    m.payload = Body(std::to_string(i));
    ASSERT_TRUE(a.Send(std::move(m)).ok());
  }
  simulator_.RunFor(120 * kMicrosPerSecond);

  // Every message arrived exactly once (dedup ate the ack-loss replays).
  EXPECT_EQ(a.pending(), 0u);
  ASSERT_EQ(b.stats().delivered, static_cast<uint64_t>(kMessages));
  std::set<std::string> seen;
  for (const Message& m : inner_b.messages) {
    EXPECT_TRUE(seen.insert(*m.payload.GetString("text")).second)
        << "duplicate delivered to the inner endpoint";
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kMessages));
  // At 50% loss some retransmits and (almost surely) some dup-drops fired.
  EXPECT_GT(a.stats().retries, 0u);
}

TEST_F(ReliableChannelTest, DedupsReplayedEnvelope) {
  CapturingEndpoint inner_b, raw;
  ReliableChannel b("b", &simulator_, &network_, &inner_b);
  b.Attach();
  network_.Attach("raw", &raw);

  // A hand-rolled rel.data envelope delivered twice — the model of a data
  // message whose ack was lost and which the sender therefore resent.
  Json envelope = Json::MakeObject();
  envelope.Set("seq", static_cast<int64_t>(1));
  envelope.Set("epoch", static_cast<int64_t>(0));
  envelope.Set("type", "once");
  envelope.Set("payload", Body("only one"));
  ASSERT_TRUE(network_.Send({"raw", "b", "rel.data", envelope}).ok());
  ASSERT_TRUE(network_.Send({"raw", "b", "rel.data", envelope}).ok());
  simulator_.RunFor(1 * kMicrosPerSecond);

  // Delivered once; acked BOTH times (the replay means our ack was lost).
  ASSERT_EQ(inner_b.messages.size(), 1u);
  EXPECT_EQ(b.stats().delivered, 1u);
  EXPECT_EQ(b.stats().duplicates_dropped, 1u);
  EXPECT_EQ(b.stats().acks_sent, 2u);
  size_t acks = 0;
  for (const Message& m : raw.messages) acks += (m.type == "rel.ack");
  EXPECT_EQ(acks, 2u);
}

TEST_F(ReliableChannelTest, OutOfOrderDeliveryIsAbsorbed) {
  CapturingEndpoint inner_b, raw;
  ReliableChannel b("b", &simulator_, &network_, &inner_b);
  b.Attach();
  network_.Attach("raw", &raw);

  auto envelope = [](int64_t seq, const std::string& text) {
    Json e = Json::MakeObject();
    e.Set("seq", seq);
    e.Set("epoch", static_cast<int64_t>(0));
    e.Set("type", "ooo");
    e.Set("payload", Body(text));
    return e;
  };
  // seq 2 arrives before seq 1 (retransmit reordering); then 1, then a
  // replay of 2 which must be recognized even after absorption.
  ASSERT_TRUE(network_.Send({"raw", "b", "rel.data", envelope(2, "two")}).ok());
  simulator_.RunFor(1 * kMicrosPerSecond);
  ASSERT_TRUE(network_.Send({"raw", "b", "rel.data", envelope(1, "one")}).ok());
  simulator_.RunFor(1 * kMicrosPerSecond);
  ASSERT_TRUE(network_.Send({"raw", "b", "rel.data", envelope(2, "two")}).ok());
  simulator_.RunFor(1 * kMicrosPerSecond);

  ASSERT_EQ(inner_b.messages.size(), 2u);
  EXPECT_EQ(*inner_b.messages[0].payload.GetString("text"), "two");
  EXPECT_EQ(*inner_b.messages[1].payload.GetString("text"), "one");
  EXPECT_EQ(b.stats().duplicates_dropped, 1u);
}

TEST_F(ReliableChannelTest, GivesUpAfterRetryBudgetAndReportsOriginal) {
  CapturingEndpoint inner_a;
  ReliableChannel::Options options;
  options.initial_backoff = 100 * kMicrosPerMilli;
  options.max_retries = 3;
  ReliableChannel a("a", &simulator_, &network_, &inner_a, options);
  a.Attach();

  std::vector<Message> given_up;
  a.set_give_up_callback(
      [&](const Message& m) { given_up.push_back(m); });

  // "ghost" never attaches: every send fails fast, every retry too.
  Message m;
  m.to = "ghost";
  m.type = "doomed";
  m.payload = Body("never lands");
  ASSERT_TRUE(a.Send(std::move(m)).ok());
  simulator_.RunFor(60 * kMicrosPerSecond);

  EXPECT_EQ(a.pending(), 0u);
  EXPECT_EQ(a.stats().retries, 3u);
  EXPECT_EQ(a.stats().gave_up, 1u);
  // The callback sees the caller's original message, unwrapped.
  ASSERT_EQ(given_up.size(), 1u);
  EXPECT_EQ(given_up[0].to, "ghost");
  EXPECT_EQ(given_up[0].type, "doomed");
  EXPECT_EQ(*given_up[0].payload.GetString("text"), "never lands");
}

TEST_F(ReliableChannelTest, LateAttachmentIsReachedByRetries) {
  // The destination is down at send time (detached == restarting peer);
  // a retry after it re-attaches completes the delivery.
  CapturingEndpoint inner_a, inner_b;
  ReliableChannel a("a", &simulator_, &network_, &inner_a);
  a.Attach();

  Message m;
  m.to = "b";
  m.type = "patience";
  m.payload = Body("worth the wait");
  ASSERT_TRUE(a.Send(std::move(m)).ok());
  simulator_.RunFor(1 * kMicrosPerSecond);
  EXPECT_EQ(a.pending(), 1u);

  ReliableChannel b("b", &simulator_, &network_, &inner_b);
  b.Attach();
  simulator_.RunFor(10 * kMicrosPerSecond);
  ASSERT_EQ(inner_b.messages.size(), 1u);
  EXPECT_EQ(*inner_b.messages[0].payload.GetString("text"), "worth the wait");
  EXPECT_EQ(a.pending(), 0u);
}

TEST_F(ReliableChannelTest, PlainMessagesPassThroughUntouched) {
  CapturingEndpoint inner_b, raw;
  ReliableChannel b("b", &simulator_, &network_, &inner_b);
  b.Attach();
  network_.Attach("raw", &raw);

  ASSERT_TRUE(network_.Send({"raw", "b", "legacy", Body("no envelope")}).ok());
  simulator_.RunFor(1 * kMicrosPerSecond);

  ASSERT_EQ(inner_b.messages.size(), 1u);
  EXPECT_EQ(inner_b.messages[0].type, "legacy");
  EXPECT_EQ(*inner_b.messages[0].payload.GetString("text"), "no envelope");
  // Pass-through is not reliable delivery: no ack, no dedup bookkeeping.
  EXPECT_EQ(b.stats().delivered, 0u);
  EXPECT_EQ(b.stats().acks_sent, 0u);
  EXPECT_TRUE(raw.messages.empty());
}

TEST_F(ReliableChannelTest, SenderRestartResetsReceiverDedupState) {
  CapturingEndpoint inner_b, raw;
  ReliableChannel b("b", &simulator_, &network_, &inner_b);
  b.Attach();
  network_.Attach("raw", &raw);

  auto envelope = [](int64_t seq, int64_t epoch, const std::string& text) {
    Json e = Json::MakeObject();
    e.Set("seq", seq);
    e.Set("epoch", epoch);
    e.Set("type", "life");
    e.Set("payload", Body(text));
    return e;
  };
  // First incarnation delivers seq 1.
  ASSERT_TRUE(
      network_.Send({"raw", "b", "rel.data", envelope(1, 100, "first life")})
          .ok());
  simulator_.RunFor(1 * kMicrosPerSecond);
  // The restarted sender (newer epoch) reuses seq 1 — NOT a duplicate.
  ASSERT_TRUE(
      network_.Send({"raw", "b", "rel.data", envelope(1, 200, "second life")})
          .ok());
  simulator_.RunFor(1 * kMicrosPerSecond);
  // A straggler from the dead incarnation: dropped without an ack.
  ASSERT_TRUE(
      network_.Send({"raw", "b", "rel.data", envelope(2, 100, "ghost")})
          .ok());
  simulator_.RunFor(1 * kMicrosPerSecond);

  ASSERT_EQ(inner_b.messages.size(), 2u);
  EXPECT_EQ(*inner_b.messages[0].payload.GetString("text"), "first life");
  EXPECT_EQ(*inner_b.messages[1].payload.GetString("text"), "second life");
  EXPECT_EQ(b.stats().stale_epoch_dropped, 1u);
  EXPECT_EQ(b.stats().acks_sent, 2u);  // none for the straggler
}

TEST_F(ReliableChannelTest, ExtremeBackoffGrowthClampsInsteadOfHotLooping) {
  // Regression: `initial_backoff * multiplier^n` overflows a Micros once
  // the double exceeds int64 range, and casting that double is UB — in
  // practice it landed on INT64_MIN, a negative delay the scheduler clamps
  // to zero. A "capped" backoff then became a hot retransmit loop that
  // burned the whole retry budget in one sim instant and gave up on a
  // message the policy said to keep retrying for seconds.
  CapturingEndpoint inner_a;
  ReliableChannel::Options options;
  options.initial_backoff = 1 * kMicrosPerMilli;
  options.multiplier = 1e18;  // second delay overflows int64 as a double
  options.max_backoff = 1 * kMicrosPerSecond;
  options.jitter = 0;
  options.max_retries = 5;
  ReliableChannel a("a", &simulator_, &network_, &inner_a, options);
  a.Attach();

  Message m;
  m.to = "ghost";  // never attaches: every (re)send is lost
  m.type = "slow-burn";
  m.payload = Body("clamped");
  ASSERT_TRUE(a.Send(std::move(m)).ok());
  simulator_.RunFor(3 * kMicrosPerSecond);

  // Clamped pace: one retry at 1ms, then one per max_backoff second. The
  // hot loop would have burned all 5 retries and given up instantly.
  EXPECT_EQ(a.stats().gave_up, 0u);
  EXPECT_EQ(a.pending(), 1u);
  EXPECT_GE(a.stats().retries, 2u);
  EXPECT_LE(a.stats().retries, 4u);

  // The retry budget still runs out eventually — at the capped pace.
  simulator_.RunFor(10 * kMicrosPerSecond);
  EXPECT_EQ(a.stats().gave_up, 1u);
  EXPECT_EQ(a.pending(), 0u);
}

TEST_F(ReliableChannelTest, DetachedChannelKeepsPendingSendsAlive) {
  // Regression: a detached channel (mid-restart) kept retransmitting into
  // a network that could never route the ack back, so the retry budget
  // burned against a wall and the message was spuriously given up even
  // though the peer would have acked moments later.
  CapturingEndpoint inner_a, inner_b;
  ReliableChannel::Options options;
  options.initial_backoff = 100 * kMicrosPerMilli;
  options.max_backoff = 500 * kMicrosPerMilli;
  options.jitter = 0;
  options.max_retries = 3;
  ReliableChannel a("a", &simulator_, &network_, &inner_a, options);
  a.Attach();

  Message m;
  m.to = "b";
  m.type = "survives-restart";
  m.payload = Body("still here");
  ASSERT_TRUE(a.Send(std::move(m)).ok());
  a.Detach();

  // Far past the attached-case give-up horizon (~1.3s at these options).
  simulator_.RunFor(30 * kMicrosPerSecond);
  EXPECT_EQ(a.pending(), 1u);
  EXPECT_EQ(a.stats().gave_up, 0u);
  EXPECT_EQ(a.stats().retries, 0u);  // parked, not burning budget

  // Both sides come up; the parked send completes normally.
  ReliableChannel b("b", &simulator_, &network_, &inner_b);
  b.Attach();
  a.Attach();
  simulator_.RunFor(10 * kMicrosPerSecond);
  ASSERT_EQ(inner_b.messages.size(), 1u);
  EXPECT_EQ(*inner_b.messages[0].payload.GetString("text"), "still here");
  EXPECT_EQ(a.pending(), 0u);
  EXPECT_EQ(a.stats().gave_up, 0u);
}

TEST_F(ReliableChannelTest, DeterministicUnderLoss) {
  // Two identically seeded worlds driven identically end with identical
  // stats and identical sim clocks — loss, jitter, backoff and all.
  auto run = [] {
    Simulator simulator;
    SimNetwork network(&simulator, LatencyModel{}, /*seed=*/99);
    network.set_drop_probability(0.4);
    CapturingEndpoint inner_a, inner_b;
    ReliableChannel a("a", &simulator, &network, &inner_a);
    ReliableChannel b("b", &simulator, &network, &inner_b);
    a.Attach();
    b.Attach();
    for (int i = 0; i < 12; ++i) {
      Message m;
      m.to = (i % 2 == 0) ? std::string("b") : std::string("a");
      m.from = "";
      m.type = "ping";
      m.payload = Body(std::to_string(i));
      IgnoreStatusForTest(i % 2 == 0 ? a.Send(std::move(m))
                                     : b.Send(std::move(m)));
    }
    simulator.RunFor(60 * kMicrosPerSecond);
    return std::make_tuple(a.stats().sends, a.stats().retries,
                           a.stats().acks_received, b.stats().delivered,
                           b.stats().duplicates_dropped, b.stats().acks_sent,
                           network.stats().sent, network.stats().dropped,
                           simulator.Now());
  };
  EXPECT_EQ(run(), run());
}

TEST_F(ReliableChannelTest, MirrorsStatsIntoMetricsRegistry) {
  metrics::MetricsRegistry registry;
  CapturingEndpoint inner_a, inner_b;
  ReliableChannel a("a", &simulator_, &network_, &inner_a);
  ReliableChannel b("b", &simulator_, &network_, &inner_b);
  a.set_metrics(&registry);
  b.set_metrics(&registry);
  a.Attach();
  b.Attach();

  network_.set_drop_probability(0.5);
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.to = "b";
    m.type = "counted";
    m.payload = Body(std::to_string(i));
    ASSERT_TRUE(a.Send(std::move(m)).ok());
  }
  simulator_.RunFor(120 * kMicrosPerSecond);

  Json snapshot = registry.Snapshot();
  Json counters = snapshot.At("counters");
  EXPECT_EQ(*counters.GetInt("net.retries"),
            static_cast<int64_t>(a.stats().retries + b.stats().retries));
  EXPECT_EQ(*counters.GetInt("net.acks"),
            static_cast<int64_t>(a.stats().acks_received));
  EXPECT_EQ(*counters.GetInt("net.acks_sent"),
            static_cast<int64_t>(b.stats().acks_sent));
  EXPECT_GT(*counters.GetInt("net.retries"), 0);
}

}  // namespace
}  // namespace medsync::net
