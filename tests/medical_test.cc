#include <gtest/gtest.h>

#include "medical/deident.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/query.h"

namespace medsync::medical {
namespace {

using relational::Table;
using relational::Value;

TEST(RecordsTest, FullSchemaHasSevenAttributes) {
  relational::Schema schema = FullRecordSchema();
  EXPECT_EQ(schema.attribute_count(), 7u);
  EXPECT_EQ(schema.key_attributes(), std::vector<std::string>{kPatientId});
  EXPECT_TRUE(schema.HasAttribute(kModeOfAction));
  EXPECT_FALSE(schema.attributes()[0].nullable);
}

TEST(RecordsTest, Fig1DataMatchesPaper) {
  Table full = MakeFig1FullRecords();
  ASSERT_EQ(full.row_count(), 2u);
  relational::Row r188 = *full.Get({Value::Int(188)});
  EXPECT_EQ(r188[1].AsString(), "Ibuprofen");
  EXPECT_EQ(r188[2].AsString(), "CliD1");
  EXPECT_EQ(r188[3].AsString(), "Sapporo");
  EXPECT_EQ(r188[4].AsString(), "one tablet every 4h");
  EXPECT_EQ(r188[5].AsString(), "MeA1");
  EXPECT_EQ(r188[6].AsString(), "MoA1");
  relational::Row r189 = *full.Get({Value::Int(189)});
  EXPECT_EQ(r189[1].AsString(), "Wellbutrin");
  EXPECT_EQ(r189[3].AsString(), "Osaka");
}

TEST(RecordsTest, StakeholderSchemasMatchFig1Subsets) {
  EXPECT_EQ(PatientSchema().attribute_count(), 5u);     // a0-a4
  EXPECT_TRUE(PatientSchema().HasAttribute(kAddress));
  EXPECT_FALSE(PatientSchema().HasAttribute(kMechanismOfAction));

  EXPECT_EQ(ResearcherSchema().attribute_count(), 3u);  // a1,a5,a6
  EXPECT_EQ(ResearcherSchema().key_attributes(),
            std::vector<std::string>{kMedicationName});

  EXPECT_EQ(DoctorSchema().attribute_count(), 5u);      // a0,a1,a2,a5,a4
  EXPECT_TRUE(DoctorSchema().HasAttribute(kMechanismOfAction));
  EXPECT_FALSE(DoctorSchema().HasAttribute(kAddress));
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  GeneratorConfig config{.seed = 7, .record_count = 50};
  EXPECT_EQ(GenerateFullRecords(config), GenerateFullRecords(config));
  GeneratorConfig other{.seed = 8, .record_count = 50};
  EXPECT_NE(GenerateFullRecords(config), GenerateFullRecords(other));
}

TEST(GeneratorTest, ProducesRequestedCountWithDenseIds) {
  GeneratorConfig config{.seed = 1, .record_count = 120,
                         .first_patient_id = 500};
  Table records = GenerateFullRecords(config);
  EXPECT_EQ(records.row_count(), 120u);
  EXPECT_TRUE(records.Contains({Value::Int(500)}));
  EXPECT_TRUE(records.Contains({Value::Int(619)}));
  EXPECT_FALSE(records.Contains({Value::Int(620)}));
}

TEST(GeneratorTest, AllRowsValidAgainstSchema) {
  Table records = GenerateFullRecords({.seed = 3, .record_count = 40});
  for (const auto& [key, row] : records.scan()) {
    EXPECT_TRUE(relational::ValidateRow(records.schema(), row).ok());
    for (const Value& cell : row) EXPECT_FALSE(cell.is_null());
  }
}

TEST(GeneratorTest, MedicationAttributesAreKeyFunctional) {
  // Both researcher-style projections (a1 -> a5, a1 -> a5,a6) must be
  // derivable, i.e. medication name determines mechanism and mode.
  Table records = GenerateFullRecords({.seed = 11, .record_count = 300});
  EXPECT_TRUE(relational::Project(
                  records, {kMedicationName, kMechanismOfAction},
                  {kMedicationName})
                  .ok());
  EXPECT_TRUE(relational::Project(
                  records,
                  {kMedicationName, kMechanismOfAction, kModeOfAction},
                  {kMedicationName})
                  .ok());
}

TEST(GeneratorTest, CatalogEntriesAreInternallyUnique) {
  std::set<std::string> names, mechanisms;
  for (const Medication& med : MedicationCatalog()) {
    EXPECT_TRUE(names.insert(med.name).second) << med.name;
    mechanisms.insert(med.mechanism_of_action);
    EXPECT_FALSE(med.dosages.empty()) << med.name;
  }
  EXPECT_GE(names.size(), 25u);
}

TEST(DeidentTest, SuppressNullsOutAttributes) {
  Table records = GenerateFullRecords({.seed = 5, .record_count = 20});
  Result<Table> scrubbed =
      SuppressAttributes(records, {kAddress, kClinicalData});
  ASSERT_TRUE(scrubbed.ok()) << scrubbed.status();
  for (const auto& [key, row] : scrubbed->scan()) {
    EXPECT_TRUE(row[3].is_null());  // address
    EXPECT_TRUE(row[2].is_null());  // clinical data
    EXPECT_FALSE(row[1].is_null());
  }
  EXPECT_TRUE(SuppressAttributes(records, {"ghost"}).status().IsNotFound());
  EXPECT_TRUE(SuppressAttributes(records, {kPatientId})
                  .status()
                  .IsInvalidArgument());  // key
}

TEST(DeidentTest, GeneralizeCityToRegion) {
  EXPECT_EQ(GeneralizeCityToRegion(Value::String("Sapporo")).AsString(),
            "Hokkaido");
  EXPECT_EQ(GeneralizeCityToRegion(Value::String("Osaka")).AsString(),
            "Kansai");
  EXPECT_EQ(GeneralizeCityToRegion(Value::String("Atlantis")).AsString(),
            "Japan");
  EXPECT_TRUE(GeneralizeCityToRegion(Value::Null()).is_null());
}

TEST(DeidentTest, GeneralizeAttributeRewritesColumn) {
  Table records = GenerateFullRecords({.seed = 9, .record_count = 30});
  Result<Table> generalized =
      GeneralizeAttribute(records, kAddress, GeneralizeCityToRegion);
  ASSERT_TRUE(generalized.ok());
  std::set<std::string> regions;
  for (const auto& [key, row] : generalized->scan()) {
    regions.insert(row[3].AsString());
  }
  // Far fewer distinct values than cities — that is the point.
  EXPECT_LE(regions.size(), 8u);
  EXPECT_TRUE(
      GeneralizeAttribute(records, kPatientId, GeneralizeCityToRegion)
          .status()
          .IsInvalidArgument());
}

TEST(DeidentTest, KAnonymityImprovesWithGeneralization) {
  Table records = GenerateFullRecords({.seed = 13, .record_count = 200});
  Result<size_t> city_class =
      SmallestEquivalenceClass(records, {kAddress});
  ASSERT_TRUE(city_class.ok());

  Result<Table> generalized =
      GeneralizeAttribute(records, kAddress, GeneralizeCityToRegion);
  ASSERT_TRUE(generalized.ok());
  Result<size_t> region_class =
      SmallestEquivalenceClass(*generalized, {kAddress});
  ASSERT_TRUE(region_class.ok());
  EXPECT_GE(*region_class, *city_class);

  // Suppression gives the degenerate single class.
  Result<Table> suppressed = SuppressAttributes(records, {kAddress});
  ASSERT_TRUE(suppressed.ok());
  EXPECT_TRUE(*IsKAnonymous(*suppressed, {kAddress}, records.row_count()));
}

TEST(DeidentTest, IsKAnonymousEdgeCases) {
  Table records = GenerateFullRecords({.seed = 17, .record_count = 50});
  EXPECT_TRUE(*IsKAnonymous(records, {}, 50));  // no QIs -> one class
  EXPECT_TRUE(*IsKAnonymous(records, {kAddress}, 1));
  EXPECT_FALSE(*IsKAnonymous(records, {kPatientId}, 2));  // key is unique
  EXPECT_FALSE(IsKAnonymous(records, {"ghost"}, 2).ok());

  Table empty(FullRecordSchema());
  EXPECT_EQ(*SmallestEquivalenceClass(empty, {kAddress}), 0u);
  EXPECT_FALSE(*IsKAnonymous(empty, {kAddress}, 1));
}

TEST(DeidentTest, LDiversityDetectsHomogeneousClasses) {
  // Build a table where one city's patients ALL take the same medication:
  // k-anonymous on the city, but 1-diverse (an attacker who knows the city
  // learns the medication).
  relational::Table t(FullRecordSchema());
  auto insert = [&](int64_t id, const char* med, const char* city) {
    ASSERT_TRUE(t.Insert({Value::Int(id), Value::String(med),
                          Value::String("n"), Value::String(city),
                          Value::String("d"), Value::String("m"),
                          Value::String("mo")})
                    .ok());
  };
  insert(1, "Ibuprofen", "Osaka");
  insert(2, "Ibuprofen", "Osaka");
  insert(3, "Ibuprofen", "Osaka");
  insert(4, "Metformin", "Kyoto");
  insert(5, "Sertraline", "Kyoto");
  insert(6, "Warfarin", "Kyoto");

  EXPECT_TRUE(*IsKAnonymous(t, {kAddress}, 3));
  EXPECT_EQ(*SmallestSensitiveDiversity(t, {kAddress}, kMedicationName), 1u);
  EXPECT_FALSE(*IsLDiverse(t, {kAddress}, kMedicationName, 2));

  // Drop the homogeneous class: the remainder is 3-diverse.
  ASSERT_TRUE(t.Delete({Value::Int(1)}).ok());
  ASSERT_TRUE(t.Delete({Value::Int(2)}).ok());
  ASSERT_TRUE(t.Delete({Value::Int(3)}).ok());
  EXPECT_TRUE(*IsLDiverse(t, {kAddress}, kMedicationName, 3));

  // Errors and edge cases.
  EXPECT_FALSE(IsLDiverse(t, {"ghost"}, kMedicationName, 2).ok());
  EXPECT_FALSE(IsLDiverse(t, {kAddress}, "ghost", 2).ok());
  relational::Table empty(FullRecordSchema());
  EXPECT_EQ(*SmallestSensitiveDiversity(empty, {kAddress}, kMedicationName),
            0u);
  EXPECT_FALSE(*IsLDiverse(empty, {kAddress}, kMedicationName, 1));
}

TEST(GeneratorHelpersTest, ClinicalNotesAndCities) {
  Rng rng(21);
  std::string note = GenerateClinicalNote(&rng);
  EXPECT_NE(note.find("Presents with"), std::string::npos);
  EXPECT_NE(note.find("follow-up"), std::string::npos);
  std::set<std::string> cities;
  for (int i = 0; i < 200; ++i) cities.insert(RandomCity(&rng));
  EXPECT_GE(cities.size(), 10u);
}

}  // namespace
}  // namespace medsync::medical
