#include "contracts/host.h"

#include <gtest/gtest.h>

#include "common/strings.h"

namespace medsync::contracts {
namespace {

/// A tiny test contract: a counter with methods add / get / fail_midway /
/// burn_gas, used to exercise the host's execution machinery in isolation.
class CounterContract : public Contract {
 public:
  static Result<std::unique_ptr<Contract>> Create(const Json& params) {
    auto contract = std::make_unique<CounterContract>();
    if (params.Has("start")) {
      MEDSYNC_ASSIGN_OR_RETURN(contract->value_, params.GetInt("start"));
    }
    return std::unique_ptr<Contract>(std::move(contract));
  }

  std::string_view TypeName() const override { return "counter"; }

  Result<Json> Call(CallContext& ctx, const std::string& method,
                    const Json& params) override {
    MEDSYNC_RETURN_IF_ERROR(ctx.Charge(10));
    if (method == "get") return Json(value_);
    if (ctx.read_only) {
      return Status::PermissionDenied("mutating method in read-only call");
    }
    if (method == "add") {
      MEDSYNC_ASSIGN_OR_RETURN(int64_t amount, params.GetInt("amount"));
      value_ += amount;
      Json event = Json::MakeObject();
      event.Set("value", value_);
      ctx.Emit("Added", std::move(event));
      return Json(value_);
    }
    if (method == "fail_midway") {
      value_ += 1000;  // mutation that MUST be rolled back
      ctx.Emit("ShouldNotSurvive", Json::MakeObject());
      return Status::FailedPrecondition("deliberate failure after mutation");
    }
    if (method == "burn_gas") {
      while (true) {
        MEDSYNC_RETURN_IF_ERROR(ctx.Charge(1000));
      }
    }
    return Status::NotFound(StrCat("no method '", method, "'"));
  }

  Json StateSnapshot() const override {
    Json out = Json::MakeObject();
    out.Set("value", value_);
    return out;
  }

  Status RestoreState(const Json& snapshot) override {
    MEDSYNC_ASSIGN_OR_RETURN(value_, snapshot.GetInt("value"));
    return Status::OK();
  }

 private:
  int64_t value_ = 0;
};

class HostTest : public ::testing::Test {
 protected:
  HostTest() : key_(crypto::KeyPair::FromSeed("caller")) {
    host_.RegisterType("counter", CounterContract::Create);
  }

  chain::Transaction MakeTx(const crypto::Address& to,
                            const std::string& method, Json params) {
    chain::Transaction tx;
    tx.from = key_.address();
    tx.to = to;
    tx.nonce = nonce_++;
    tx.method = method;
    tx.params = std::move(params);
    tx.timestamp = 42;
    tx.Sign(key_);
    return tx;
  }

  chain::Block BlockOf(std::vector<chain::Transaction> txs) {
    chain::Block block;
    block.header.height = next_height_++;
    block.header.timestamp = 42;
    block.transactions = std::move(txs);
    block.header.merkle_root = block.ComputeMerkleRoot();
    return block;
  }

  crypto::Address Deploy() {
    Json params = Json::MakeObject();
    params.Set("start", 5);
    chain::Transaction tx =
        MakeTx(crypto::Address::Zero(), "counter", std::move(params));
    crypto::Address address = ContractHost::DeploymentAddress(tx);
    std::vector<Receipt> receipts = host_.ExecuteBlock(BlockOf({tx}));
    EXPECT_TRUE(receipts[0].ok) << receipts[0].error;
    return address;
  }

  crypto::KeyPair key_;
  ContractHost host_;
  uint64_t nonce_ = 0;
  uint64_t next_height_ = 1;
};

TEST_F(HostTest, DeploymentCreatesContractAtDeterministicAddress) {
  crypto::Address address = Deploy();
  EXPECT_TRUE(host_.HasContract(address));
  EXPECT_EQ(host_.DeployedContracts().size(), 1u);
  Result<Json> value = host_.StaticCall(address, "get", Json::MakeObject(),
                                        key_.address());
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsInt(), 5);
}

TEST_F(HostTest, DeploymentOfUnknownTypeFails) {
  chain::Transaction tx =
      MakeTx(crypto::Address::Zero(), "ghost-type", Json::MakeObject());
  std::vector<Receipt> receipts = host_.ExecuteBlock(BlockOf({tx}));
  EXPECT_FALSE(receipts[0].ok);
  EXPECT_NE(receipts[0].error.find("unknown contract type"),
            std::string::npos);
}

TEST_F(HostTest, SuccessfulCallMutatesAndEmits) {
  crypto::Address address = Deploy();
  Json params = Json::MakeObject();
  params.Set("amount", 7);
  chain::Transaction tx = MakeTx(address, "add", std::move(params));
  std::vector<Receipt> receipts = host_.ExecuteBlock(BlockOf({tx}));
  ASSERT_TRUE(receipts[0].ok) << receipts[0].error;
  EXPECT_EQ(receipts[0].return_value.AsInt(), 12);
  ASSERT_EQ(receipts[0].events.size(), 1u);
  EXPECT_EQ(receipts[0].events[0].name, "Added");
  EXPECT_GT(receipts[0].gas_used, 0u);
  // The event also landed in the host's global log with its height.
  ASSERT_EQ(host_.event_log().size(), 2u);  // ContractDeployed + Added
  EXPECT_EQ(host_.event_log()[1].event.name, "Added");
}

TEST_F(HostTest, FailedCallRollsBackStateAndEvents) {
  crypto::Address address = Deploy();
  chain::Transaction tx = MakeTx(address, "fail_midway", Json::MakeObject());
  std::vector<Receipt> receipts = host_.ExecuteBlock(BlockOf({tx}));
  ASSERT_FALSE(receipts[0].ok);
  EXPECT_NE(receipts[0].error.find("deliberate failure"), std::string::npos);
  EXPECT_TRUE(receipts[0].events.empty());

  // The +1000 mutation did not survive.
  Result<Json> value = host_.StaticCall(address, "get", Json::MakeObject(),
                                        key_.address());
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsInt(), 5);
  // And no ShouldNotSurvive event leaked into the log.
  for (const auto& logged : host_.event_log()) {
    EXPECT_NE(logged.event.name, "ShouldNotSurvive");
  }
}

TEST_F(HostTest, OutOfGasFailsTransaction) {
  crypto::Address address = Deploy();
  chain::Transaction tx = MakeTx(address, "burn_gas", Json::MakeObject());
  std::vector<Receipt> receipts = host_.ExecuteBlock(BlockOf({tx}));
  ASSERT_FALSE(receipts[0].ok);
  EXPECT_NE(receipts[0].error.find("out of gas"), std::string::npos);
  // Gas used is capped at the limit.
  EXPECT_EQ(receipts[0].gas_used, 1'000'000u);
}

TEST_F(HostTest, CallToMissingContractFails) {
  chain::Transaction tx = MakeTx(crypto::KeyPair::FromSeed("nowhere").address(),
                                 "get", Json::MakeObject());
  std::vector<Receipt> receipts = host_.ExecuteBlock(BlockOf({tx}));
  EXPECT_FALSE(receipts[0].ok);
}

TEST_F(HostTest, StaticCallCannotMutate) {
  crypto::Address address = Deploy();
  Json params = Json::MakeObject();
  params.Set("amount", 1);
  Result<Json> result =
      host_.StaticCall(address, "add", params, key_.address());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(host_.StaticCall(address, "get", Json::MakeObject(),
                             key_.address())
                ->AsInt(),
            5);
}

TEST_F(HostTest, ReceiptLookup) {
  crypto::Address address = Deploy();
  Json params = Json::MakeObject();
  params.Set("amount", 1);
  chain::Transaction tx = MakeTx(address, "add", std::move(params));
  std::string id = tx.Id().ToHex();
  host_.ExecuteBlock(BlockOf({tx}));
  const Receipt* receipt = host_.FindReceipt(id);
  ASSERT_NE(receipt, nullptr);
  EXPECT_TRUE(receipt->ok);
  EXPECT_EQ(host_.FindReceipt("unknown"), nullptr);
  // Receipts serialize.
  EXPECT_TRUE(receipt->ToJson().is_object());
}

TEST_F(HostTest, ReplicasConvergeToSameFingerprint) {
  ContractHost replica;
  replica.RegisterType("counter", CounterContract::Create);

  Json params = Json::MakeObject();
  params.Set("start", 5);
  chain::Transaction deploy =
      MakeTx(crypto::Address::Zero(), "counter", std::move(params));
  crypto::Address address = ContractHost::DeploymentAddress(deploy);
  Json add_params = Json::MakeObject();
  add_params.Set("amount", 3);
  chain::Transaction add = MakeTx(address, "add", std::move(add_params));

  chain::Block b1 = BlockOf({deploy});
  chain::Block b2 = BlockOf({add});
  host_.ExecuteBlock(b1);
  host_.ExecuteBlock(b2);
  replica.ExecuteBlock(b1);
  replica.ExecuteBlock(b2);
  EXPECT_EQ(host_.StateFingerprint(), replica.StateFingerprint());
  EXPECT_EQ(host_.executed_blocks(), 2u);
}

TEST_F(HostTest, ResetClearsEverything) {
  crypto::Address address = Deploy();
  host_.Reset();
  EXPECT_FALSE(host_.HasContract(address));
  EXPECT_TRUE(host_.event_log().empty());
  EXPECT_EQ(host_.executed_blocks(), 0u);
}

}  // namespace
}  // namespace medsync::contracts
