#include "bx/project_lens.h"

#include <gtest/gtest.h>

#include "bx/laws.h"
#include "medical/records.h"

namespace medsync::bx {
namespace {

using medical::kClinicalData;
using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using medical::kPatientId;
using relational::Row;
using relational::Table;
using relational::Value;

Table Fig1() { return medical::MakeFig1FullRecords(); }

TEST(ProjectLensTest, ViewSchemaSelectsAttributes) {
  ProjectLens lens({kPatientId, kDosage}, {kPatientId});
  Result<relational::Schema> vs = lens.ViewSchema(Fig1().schema());
  ASSERT_TRUE(vs.ok()) << vs.status();
  EXPECT_EQ(vs->attribute_count(), 2u);
  EXPECT_EQ(vs->attributes()[1].name, kDosage);
  EXPECT_EQ(vs->key_attributes(), std::vector<std::string>{kPatientId});
}

TEST(ProjectLensTest, ViewSchemaRejectsUnknownAttribute) {
  ProjectLens lens({"ghost"}, {"ghost"});
  EXPECT_TRUE(lens.ViewSchema(Fig1().schema()).status().IsNotFound());
}

TEST(ProjectLensTest, GetProducesFig1PatientDoctorView) {
  // D31 = π(a0,a1,a2,a4) of the full record — the paper's D13/D31 table.
  ProjectLens lens({kPatientId, kMedicationName, kClinicalData, kDosage},
                   {kPatientId});
  Result<Table> view = lens.Get(Fig1());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->row_count(), 2u);
  Row row188 = *view->Get({Value::Int(188)});
  EXPECT_EQ(row188[1].AsString(), "Ibuprofen");
  EXPECT_EQ(row188[3].AsString(), "one tablet every 4h");
}

TEST(ProjectLensTest, RowAlignedPutUpdatesVisibleKeepsHidden) {
  ProjectLens lens({kPatientId, kDosage}, {kPatientId});
  Table source = Fig1();
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->UpdateAttribute({Value::Int(188)}, kDosage,
                                    Value::String("new dose"))
                  .ok());

  Result<Table> updated = lens.Put(source, *view);
  ASSERT_TRUE(updated.ok()) << updated.status();
  Row row = *updated->Get({Value::Int(188)});
  EXPECT_EQ(row[4].AsString(), "new dose");       // visible updated
  EXPECT_EQ(row[3].AsString(), "Sapporo");        // hidden a3 preserved
  EXPECT_EQ(row[5].AsString(), "MeA1");           // hidden a5 preserved
}

TEST(ProjectLensTest, RowAlignedPutTranslatesViewDeleteToSourceDelete) {
  ProjectLens lens({kPatientId, kDosage}, {kPatientId});
  Table source = Fig1();
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->Delete({Value::Int(189)}).ok());
  Result<Table> updated = lens.Put(source, *view);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->row_count(), 1u);
  EXPECT_FALSE(updated->Contains({Value::Int(189)}));
}

TEST(ProjectLensTest, RowAlignedPutSynthesizesInsertWithNullComplement) {
  ProjectLens lens({kPatientId, kDosage}, {kPatientId});
  Table source = Fig1();
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(
      view->Insert({Value::Int(200), Value::String("5 mg daily")}).ok());
  Result<Table> updated = lens.Put(source, *view);
  ASSERT_TRUE(updated.ok()) << updated.status();
  Row fresh = *updated->Get({Value::Int(200)});
  EXPECT_EQ(fresh[4].AsString(), "5 mg daily");
  EXPECT_TRUE(fresh[1].is_null());  // hidden medication name defaults NULL
}

TEST(ProjectLensTest, InsertFailsWhenHiddenAttributeNonNullable) {
  // Make a source whose hidden column cannot be defaulted.
  relational::Schema schema = *relational::Schema::Create(
      {{"id", relational::DataType::kInt, false},
       {"required", relational::DataType::kString, false},
       {"visible", relational::DataType::kString, true}},
      {"id"});
  Table source(schema);
  ASSERT_TRUE(source
                  .Insert({Value::Int(1), Value::String("must"),
                           Value::String("v")})
                  .ok());
  ProjectLens lens({"id", "visible"}, {"id"});
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->Insert({Value::Int(2), Value::String("new")}).ok());
  Result<Table> updated = lens.Put(source, *view);
  EXPECT_TRUE(updated.status().IsFailedPrecondition());
}

TEST(ProjectLensTest, GroupedPutWritesEveryRowOfGroup) {
  // Doctor's D3 keyed by patient id; researcher view keyed by medication.
  relational::Schema schema = *relational::Schema::Create(
      {{"id", relational::DataType::kInt, false},
       {"med", relational::DataType::kString, true},
       {"moa", relational::DataType::kString, true}},
      {"id"});
  Table source(schema);
  ASSERT_TRUE(source
                  .Insert({Value::Int(1), Value::String("Ibuprofen"),
                           Value::String("old")})
                  .ok());
  ASSERT_TRUE(source
                  .Insert({Value::Int(2), Value::String("Ibuprofen"),
                           Value::String("old")})
                  .ok());
  ASSERT_TRUE(source
                  .Insert({Value::Int(3), Value::String("Metformin"),
                           Value::String("ampk")})
                  .ok());
  ProjectLens lens({"med", "moa"}, {"med"});
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->row_count(), 2u);

  ASSERT_TRUE(view->UpdateAttribute({Value::String("Ibuprofen")}, "moa",
                                    Value::String("new mechanism"))
                  .ok());
  Result<Table> updated = lens.Put(source, *view);
  ASSERT_TRUE(updated.ok()) << updated.status();
  // BOTH patient rows with Ibuprofen picked up the new mechanism.
  EXPECT_EQ(updated->Get({Value::Int(1)})->at(2).AsString(), "new mechanism");
  EXPECT_EQ(updated->Get({Value::Int(2)})->at(2).AsString(), "new mechanism");
  EXPECT_EQ(updated->Get({Value::Int(3)})->at(2).AsString(), "ampk");
}

TEST(ProjectLensTest, GroupedPutDeletesWholeGroup) {
  relational::Schema schema = *relational::Schema::Create(
      {{"id", relational::DataType::kInt, false},
       {"med", relational::DataType::kString, true}},
      {"id"});
  Table source(schema);
  ASSERT_TRUE(source.Insert({Value::Int(1), Value::String("A")}).ok());
  ASSERT_TRUE(source.Insert({Value::Int(2), Value::String("A")}).ok());
  ASSERT_TRUE(source.Insert({Value::Int(3), Value::String("B")}).ok());
  ProjectLens lens({"med"}, {"med"});
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->Delete({Value::String("A")}).ok());
  Result<Table> updated = lens.Put(source, *view);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->row_count(), 1u);
  EXPECT_TRUE(updated->Contains({Value::Int(3)}));
}

TEST(ProjectLensTest, GroupedInsertWithoutSourceKeyIsUntranslatable) {
  relational::Schema schema = *relational::Schema::Create(
      {{"id", relational::DataType::kInt, false},
       {"med", relational::DataType::kString, true}},
      {"id"});
  Table source(schema);
  ASSERT_TRUE(source.Insert({Value::Int(1), Value::String("A")}).ok());
  ProjectLens lens({"med"}, {"med"});
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->Insert({Value::String("NewMed")}).ok());
  // The view cannot say which patient id the new row should get.
  EXPECT_TRUE(lens.Put(source, *view).status().IsFailedPrecondition());
}

TEST(ProjectLensTest, PutRejectsWrongViewSchema) {
  ProjectLens lens({kPatientId, kDosage}, {kPatientId});
  Table source = Fig1();
  Table wrong(source.schema());
  EXPECT_TRUE(lens.Put(source, wrong).status().IsInvalidArgument());
}

TEST(ProjectLensTest, LawsHoldOnFig1Data) {
  for (const auto& attrs : std::vector<std::vector<std::string>>{
           {kPatientId, kMedicationName, kClinicalData, kDosage},
           {kPatientId, kDosage},
           {kPatientId, kMedicationName, kMechanismOfAction}}) {
    ProjectLens lens(attrs, {kPatientId});
    EXPECT_TRUE(CheckGetPut(lens, Fig1()).ok());
  }
  // Grouped lens over the researcher attributes.
  ProjectLens grouped({kMedicationName, kMechanismOfAction},
                      {kMedicationName});
  EXPECT_TRUE(CheckGetPut(grouped, Fig1()).ok());
}

TEST(ProjectLensTest, FootprintListsAttributes) {
  ProjectLens lens({kPatientId, kDosage}, {kPatientId});
  Result<SourceFootprint> fp = lens.Footprint(Fig1().schema());
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->read.count(kDosage), 1u);
  EXPECT_EQ(fp->read.count(kMechanismOfAction), 0u);
  EXPECT_TRUE(fp->affects_membership);
}

TEST(ProjectLensTest, ToStringAndJson) {
  ProjectLens lens({kPatientId, kDosage}, {kPatientId});
  EXPECT_NE(lens.ToString().find("project"), std::string::npos);
  EXPECT_EQ(*lens.ToJson().GetString("lens"), "project");
}

}  // namespace
}  // namespace medsync::bx
