// Whole-system determinism: two scenarios built from the same seed and
// driven through the same operations must be bit-identical — chain head,
// contract fingerprints, local databases, and network statistics. This is
// the property every benchmark number and every replayed audit depends on.

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "medical/records.h"

namespace medsync::core {
namespace {

using relational::Value;

constexpr char kPD[] = "D13&D31";

void DriveWorkload(ClinicScenario& clinic) {
  // Generated ids start at 1000; pick concrete keys from the data itself.
  relational::Table d3 = *clinic.doctor().database().Snapshot("D3");
  relational::Key first_patient = d3.NthKey(0);
  relational::Key second_patient = d3.NthKey(1);
  relational::Table d2 = *clinic.researcher().database().Snapshot("D2");
  relational::Key first_med = d2.NthKey(0);

  ASSERT_TRUE(clinic.doctor()
                  .UpdateSharedAttribute(kPD, first_patient, medical::kDosage,
                                         Value::String("deterministic"))
                  .ok());
  ASSERT_TRUE(clinic.SettleAll().ok());
  ASSERT_TRUE(clinic.patient()
                  .UpdateSharedAttribute(kPD, second_patient,
                                         medical::kClinicalData,
                                         Value::String("same everywhere"))
                  .ok());
  ASSERT_TRUE(clinic.SettleAll().ok());
  ASSERT_TRUE(clinic.researcher()
                  .UpdateSourceAndPropagate(
                      "D2",
                      [&](relational::Database* db) {
                        return db->UpdateAttribute(
                            "D2", first_med, medical::kMechanismOfAction,
                            Value::String("replayed"));
                      })
                  .ok());
  ASSERT_TRUE(clinic.SettleAll().ok());
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalWorlds) {
  ScenarioOptions options;
  options.seed = 1234;
  options.record_count = 32;

  auto a = ClinicScenario::Create(options);
  auto b = ClinicScenario::Create(options);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  DriveWorkload(**a);
  DriveWorkload(**b);

  // Chain-level identity.
  EXPECT_EQ((*a)->node(0).blockchain().head().header.Hash(),
            (*b)->node(0).blockchain().head().header.Hash());
  EXPECT_EQ((*a)->node(0).host().StateFingerprint(),
            (*b)->node(0).host().StateFingerprint());

  // Local-database identity for every peer.
  auto compare_peer = [](Peer& pa, Peer& pb) {
    ASSERT_EQ(pa.database().TableNames(), pb.database().TableNames());
    for (const std::string& table : pa.database().TableNames()) {
      EXPECT_EQ(*pa.database().Snapshot(table), *pb.database().Snapshot(table))
          << table;
    }
  };
  compare_peer((*a)->doctor(), (*b)->doctor());
  compare_peer((*a)->patient(), (*b)->patient());
  compare_peer((*a)->researcher(), (*b)->researcher());

  // Even the network behaved identically (same latencies, same order).
  EXPECT_EQ((*a)->network().stats().sent, (*b)->network().stats().sent);
  EXPECT_EQ((*a)->network().stats().bytes, (*b)->network().stats().bytes);
  EXPECT_EQ((*a)->simulator().Now(), (*b)->simulator().Now());
}

TEST(DeterminismTest, ThreadedPoolsProduceByteIdenticalWorlds) {
  // The same seed driven through the same workload must yield bit-identical
  // chains and databases whether the scenario runs serially or on worker
  // pools of size 1, 2, or 8 — i.e. the parallel seal/validate/cascade
  // paths are all deterministic. PoW consensus exercises the parallel
  // nonce search on top of validation and cascade rederivation.
  auto build = [](size_t worker_threads) {
    ScenarioOptions options;
    options.seed = 977;
    options.record_count = 24;
    options.consensus = ConsensusMode::kPow;
    options.pow_difficulty_bits = 8;
    options.worker_threads = worker_threads;
    auto scenario = ClinicScenario::Create(options);
    EXPECT_TRUE(scenario.ok()) << scenario.status();
    DriveWorkload(**scenario);
    return std::move(*scenario);
  };

  auto baseline = build(/*worker_threads=*/0);  // serial reference
  for (size_t workers : {1ul, 2ul, 8ul}) {
    auto threaded = build(workers);
    SCOPED_TRACE(testing::Message() << workers << " workers");

    // Chain-level identity: same head block, same executed contract state.
    EXPECT_EQ(baseline->node(0).blockchain().head().header.Hash(),
              threaded->node(0).blockchain().head().header.Hash());
    EXPECT_EQ(baseline->node(0).host().StateFingerprint(),
              threaded->node(0).host().StateFingerprint());

    // Final databases, byte-identical for every peer and table.
    auto compare_peer = [](Peer& pa, Peer& pb) {
      ASSERT_EQ(pa.database().TableNames(), pb.database().TableNames());
      for (const std::string& table : pa.database().TableNames()) {
        EXPECT_EQ(*pa.database().Snapshot(table),
                  *pb.database().Snapshot(table))
            << table;
      }
    };
    compare_peer(baseline->doctor(), threaded->doctor());
    compare_peer(baseline->patient(), threaded->patient());
    compare_peer(baseline->researcher(), threaded->researcher());
    EXPECT_EQ(baseline->simulator().Now(), threaded->simulator().Now());

    // Every metric — counters, gauges, histograms, down to PoW nonce
    // accounting and per-step protocol timings — must also be
    // byte-identical: observability is part of the deterministic surface.
    EXPECT_EQ(baseline->MetricsSnapshot().Dump(),
              threaded->MetricsSnapshot().Dump());
    EXPECT_EQ(baseline->tracer().ToJson().Dump(),
              threaded->tracer().ToJson().Dump());
  }
}

TEST(DeterminismTest, IncrementalAndFullMaintenanceConverge) {
  // The delta-push path and the full-get path are two implementations of
  // the same cascade semantics: the same seed and workload must end in
  // byte-identical chains and databases under either maintenance mode,
  // across pool sizes. (Metrics are NOT compared across modes — the
  // modes legitimately differ in gets_executed/delta_pushes — but within
  // a mode they stay byte-identical across worker counts.)
  auto build = [](ViewMaintenance maintenance, size_t worker_threads) {
    ScenarioOptions options;
    options.seed = 977;
    options.record_count = 24;
    options.maintenance = maintenance;
    options.worker_threads = worker_threads;
    auto scenario = ClinicScenario::Create(options);
    EXPECT_TRUE(scenario.ok()) << scenario.status();
    DriveWorkload(**scenario);
    return std::move(*scenario);
  };

  auto compare_peer = [](Peer& pa, Peer& pb) {
    ASSERT_EQ(pa.database().TableNames(), pb.database().TableNames());
    for (const std::string& table : pa.database().TableNames()) {
      EXPECT_EQ(*pa.database().Snapshot(table), *pb.database().Snapshot(table))
          << table;
    }
  };

  auto incremental = build(ViewMaintenance::kIncremental, 0);
  auto full = build(ViewMaintenance::kFullGet, 0);
  EXPECT_EQ(incremental->node(0).blockchain().head().header.Hash(),
            full->node(0).blockchain().head().header.Hash());
  EXPECT_EQ(incremental->node(0).host().StateFingerprint(),
            full->node(0).host().StateFingerprint());
  compare_peer(incremental->doctor(), full->doctor());
  compare_peer(incremental->patient(), full->patient());
  compare_peer(incremental->researcher(), full->researcher());
  EXPECT_EQ(incremental->simulator().Now(), full->simulator().Now());

  // Pool-size sweep within the incremental mode: counters and histograms
  // (including sync.delta_pushes / sync.full_fallbacks) must be
  // byte-identical across worker counts.
  for (size_t workers : {2ul, 8ul}) {
    SCOPED_TRACE(testing::Message() << workers << " workers");
    auto threaded = build(ViewMaintenance::kIncremental, workers);
    EXPECT_EQ(incremental->node(0).blockchain().head().header.Hash(),
              threaded->node(0).blockchain().head().header.Hash());
    compare_peer(incremental->doctor(), threaded->doctor());
    compare_peer(incremental->patient(), threaded->patient());
    compare_peer(incremental->researcher(), threaded->researcher());
    EXPECT_EQ(incremental->MetricsSnapshot().Dump(),
              threaded->MetricsSnapshot().Dump());
  }
}

TEST(DeterminismTest, FaultToleranceLayerStaysDeterministicAcrossPoolSizes) {
  // The reliability machinery — drop lottery, retransmit backoff jitter,
  // dedup, periodic catch-up — must be part of the deterministic surface
  // too: the same seed at 25% loss yields byte-identical databases AND
  // byte-identical metrics (every retry and dup-drop included) whether the
  // scenario runs serially or on pools of 2 or 8 workers.
  auto build = [](size_t worker_threads) {
    ScenarioOptions options;
    options.seed = 431;
    options.record_count = 24;
    options.drop_probability = 0.25;
    options.worker_threads = worker_threads;
    auto scenario = ClinicScenario::Create(options);
    EXPECT_TRUE(scenario.ok()) << scenario.status();
    DriveWorkload(**scenario);
    return std::move(*scenario);
  };

  auto baseline = build(/*worker_threads=*/0);
  // The loss was real and the channel worked through it.
  Json counters = baseline->MetricsSnapshot().At("counters");
  EXPECT_GT(counters.At("net.retries").AsInt(), 0);
  EXPECT_GT(baseline->network().stats().dropped, 0u);

  auto compare_peer = [](Peer& pa, Peer& pb) {
    ASSERT_EQ(pa.database().TableNames(), pb.database().TableNames());
    for (const std::string& table : pa.database().TableNames()) {
      EXPECT_EQ(*pa.database().Snapshot(table), *pb.database().Snapshot(table))
          << table;
    }
  };
  for (size_t workers : {2ul, 8ul}) {
    SCOPED_TRACE(testing::Message() << workers << " workers");
    auto threaded = build(workers);
    EXPECT_EQ(baseline->node(0).blockchain().head().header.Hash(),
              threaded->node(0).blockchain().head().header.Hash());
    EXPECT_EQ(baseline->node(0).host().StateFingerprint(),
              threaded->node(0).host().StateFingerprint());
    compare_peer(baseline->doctor(), threaded->doctor());
    compare_peer(baseline->patient(), threaded->patient());
    compare_peer(baseline->researcher(), threaded->researcher());
    EXPECT_EQ(baseline->simulator().Now(), threaded->simulator().Now());
    EXPECT_EQ(baseline->MetricsSnapshot().Dump(),
              threaded->MetricsSnapshot().Dump());
    EXPECT_EQ(baseline->tracer().ToJson().Dump(),
              threaded->tracer().ToJson().Dump());
  }
}

TEST(DeterminismTest, DifferentSeedsDivergeInNetworkTiming) {
  ScenarioOptions options;
  options.seed = 1;
  auto a = ClinicScenario::Create(options);
  options.seed = 2;
  auto b = ClinicScenario::Create(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Different seeds change message jitter, but the PROTOCOL result — the
  // contract state — converges to the same content-independent facts.
  Json ea = *(*a)->Entry(kPD);
  Json eb = *(*b)->Entry(kPD);
  EXPECT_EQ(*ea.GetInt("version"), *eb.GetInt("version"));
  EXPECT_EQ(*ea.GetString("content_digest"), *eb.GetString("content_digest"));
}

}  // namespace
}  // namespace medsync::core
