#include "common/json.h"

#include <gtest/gtest.h>

namespace medsync {
namespace {

TEST(JsonTest, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.Dump(), "null");
}

TEST(JsonTest, ScalarConstructionAndDump) {
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).Dump(), "1.5");
}

TEST(JsonTest, ObjectKeysAreSortedCanonically) {
  Json j = Json::MakeObject();
  j.Set("zebra", 1);
  j.Set("alpha", 2);
  j.Set("mid", 3);
  EXPECT_EQ(j.Dump(), "{\"alpha\":2,\"mid\":3,\"zebra\":1}");
}

TEST(JsonTest, CanonicalDumpIsStableAcrossInsertionOrder) {
  Json a = Json::MakeObject();
  a.Set("x", 1);
  a.Set("y", Json::Array{Json(1), Json("two")});
  Json b = Json::MakeObject();
  b.Set("y", Json::Array{Json(1), Json("two")});
  b.Set("x", 1);
  EXPECT_EQ(a.Dump(), b.Dump());
  EXPECT_EQ(a, b);
}

TEST(JsonTest, StringEscaping) {
  Json j(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(j.Dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  auto parsed = Json::Parse(j.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\nd\te");
}

TEST(JsonTest, ParseBasicDocument) {
  auto parsed = Json::Parse(
      R"({"name":"doctor","age":52,"tags":["a","b"],"ok":true,"x":null})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->At("name").AsString(), "doctor");
  EXPECT_EQ(parsed->At("age").AsInt(), 52);
  EXPECT_EQ(parsed->At("tags").size(), 2u);
  EXPECT_TRUE(parsed->At("ok").AsBool());
  EXPECT_TRUE(parsed->At("x").is_null());
  EXPECT_TRUE(parsed->At("missing").is_null());
}

TEST(JsonTest, ParseNumbers) {
  EXPECT_EQ(Json::Parse("0")->AsInt(), 0);
  EXPECT_EQ(Json::Parse("-123")->AsInt(), -123);
  EXPECT_DOUBLE_EQ(Json::Parse("1.25")->AsDouble(), 1.25);
  EXPECT_DOUBLE_EQ(Json::Parse("-2e3")->AsDouble(), -2000.0);
  EXPECT_EQ(Json::Parse("9223372036854775807")->AsInt(), INT64_MAX);
}

TEST(JsonTest, ParseWhitespaceTolerant) {
  auto parsed = Json::Parse("  {  \"a\" :\n[ 1 , 2 ]\t}  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->At("a").size(), 2u);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());  // trailing content
  EXPECT_FALSE(Json::Parse("{'a':1}").ok());
  EXPECT_FALSE(Json::Parse("-").ok());
}

TEST(JsonTest, ParseRejectsExcessiveNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, UnicodeEscapeDecodesToUtf8) {
  auto parsed = Json::Parse("\"\\u00e9\\u0041\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "\xc3\xa9"
                                "A");
}

TEST(JsonTest, RoundTripComplexDocument) {
  Json doc = Json::MakeObject();
  doc.Set("list", Json::Array{Json(1), Json(2.5), Json("three"),
                              Json(nullptr), Json(true)});
  Json nested = Json::MakeObject();
  nested.Set("inner", Json::Array{});
  doc.Set("nested", std::move(nested));
  auto reparsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, doc);
  // Pretty form parses back to the same value too.
  auto repretty = Json::Parse(doc.DumpPretty());
  ASSERT_TRUE(repretty.ok());
  EXPECT_EQ(*repretty, doc);
}

TEST(JsonTest, TypedGettersReportMissingFields) {
  Json j = Json::MakeObject();
  j.Set("n", 5);
  j.Set("s", "text");
  j.Set("b", true);
  EXPECT_EQ(*j.GetInt("n"), 5);
  EXPECT_EQ(*j.GetString("s"), "text");
  EXPECT_TRUE(*j.GetBool("b"));
  EXPECT_DOUBLE_EQ(*j.GetDouble("n"), 5.0);  // int promotes
  EXPECT_FALSE(j.GetInt("s").ok());
  EXPECT_FALSE(j.GetString("missing").ok());
  EXPECT_FALSE(j.GetBool("n").ok());
}

TEST(JsonTest, AppendBuildsArraysFromNull) {
  Json j;
  j.Append(1).Append("two");
  EXPECT_TRUE(j.is_array());
  EXPECT_EQ(j.size(), 2u);
}

TEST(JsonTest, SetBuildsObjectsFromNull) {
  Json j;
  j.Set("k", "v");
  EXPECT_TRUE(j.is_object());
  EXPECT_TRUE(j.Has("k"));
  EXPECT_FALSE(j.Has("other"));
}

TEST(JsonTest, NumericEqualityAcrossIntAndDouble) {
  EXPECT_EQ(Json(2), Json(2.0));
  EXPECT_NE(Json(2), Json(2.5));
}

// --- Hostile wire input. The socket transport feeds frame payloads through
// ParseWire, so every rejection below is a connection a remote peer cannot
// wedge or confuse, not a style preference.

TEST(JsonTest, ParseRejectsNonStrictNumbers) {
  // The permissive scan these used to slip through would hand strtod a
  // token the sender never wrote.
  for (const char* bad : {"+5", ".5", "1.", "01", "0x1f", "1e", "1e+",
                          "-.5", "--1", "1.2.3", "NaN", "Infinity"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << bad;
  }
  // Strict grammar still admits every shape our own Dump emits.
  for (const char* good : {"0", "-0", "0.5", "10", "1e9", "1E-9", "2.5e+4"}) {
    EXPECT_TRUE(Json::Parse(good).ok()) << good;
  }
}

TEST(JsonTest, ParseRejectsUnpairedSurrogates) {
  // Lone high, lone low, high followed by a non-surrogate, and high at
  // end-of-escape-sequence: all malformed UTF-16, none may produce bytes.
  for (const char* bad :
       {"\"\\ud800\"", "\"\\udc00\"", "\"\\ud800x\"", "\"\\ud800\\u0041\"",
        "\"\\ud800\\ud800\"", "\"\\udfff tail\""}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << bad;
  }
  // A proper pair decodes to one astral code point (U+1F600, 4 UTF-8 bytes).
  auto paired = Json::Parse("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(paired.ok());
  EXPECT_EQ(paired->AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ParseWireReportsCorruptionNotInvalidArgument) {
  // On the wire path the malformed bytes indict the STREAM: the transport
  // keys its drop-the-connection logic off kCorruption.
  for (const char* bad : {"{", "+5", "\"\\ud800\"", "nul", "[1,]"}) {
    Result<Json> parsed = Json::ParseWire(bad);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption) << bad;
  }
  // The same bytes through the trusted path stay InvalidArgument (caller
  // bug, not stream corruption).
  EXPECT_EQ(Json::Parse("{").status().code(), StatusCode::kInvalidArgument);
}

TEST(JsonTest, ParseWireEnforcesTighterDepthThanTrustedParse) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  // 100 levels: fine for our own checkpoints (limit 256), refused from the
  // socket (limit 64) — a remote peer cannot make the parser recurse deep.
  EXPECT_TRUE(Json::Parse(deep).ok());
  Result<Json> wire = Json::ParseWire(deep);
  ASSERT_FALSE(wire.ok());
  EXPECT_EQ(wire.status().code(), StatusCode::kCorruption);

  // An explicit caller-chosen limit still wins on the wire path.
  std::string shallow = "[[[[1]]]]";
  EXPECT_TRUE(Json::ParseWire(shallow).ok());
  EXPECT_FALSE(Json::ParseWire(shallow, {.max_depth = 2}).ok());
}

TEST(JsonTest, ParseSurvivesPathologicalInputsWithoutValue) {
  // Truncations and garbage that historically crash sloppy parsers.
  for (const char* bad :
       {"\"\\", "\"\\u", "\"\\u00", "\"\\ud83d\\u", "[", "[[", "{\"",
        "{\"a\"", "{\"a\":", "[}", "{]", "\x00", "\xff\xfe", "e", "-e"}) {
    EXPECT_FALSE(Json::Parse(bad).ok());
  }
}

}  // namespace
}  // namespace medsync
