#include "common/json.h"

#include <gtest/gtest.h>

namespace medsync {
namespace {

TEST(JsonTest, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.Dump(), "null");
}

TEST(JsonTest, ScalarConstructionAndDump) {
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).Dump(), "1.5");
}

TEST(JsonTest, ObjectKeysAreSortedCanonically) {
  Json j = Json::MakeObject();
  j.Set("zebra", 1);
  j.Set("alpha", 2);
  j.Set("mid", 3);
  EXPECT_EQ(j.Dump(), "{\"alpha\":2,\"mid\":3,\"zebra\":1}");
}

TEST(JsonTest, CanonicalDumpIsStableAcrossInsertionOrder) {
  Json a = Json::MakeObject();
  a.Set("x", 1);
  a.Set("y", Json::Array{Json(1), Json("two")});
  Json b = Json::MakeObject();
  b.Set("y", Json::Array{Json(1), Json("two")});
  b.Set("x", 1);
  EXPECT_EQ(a.Dump(), b.Dump());
  EXPECT_EQ(a, b);
}

TEST(JsonTest, StringEscaping) {
  Json j(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(j.Dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  auto parsed = Json::Parse(j.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\nd\te");
}

TEST(JsonTest, ParseBasicDocument) {
  auto parsed = Json::Parse(
      R"({"name":"doctor","age":52,"tags":["a","b"],"ok":true,"x":null})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->At("name").AsString(), "doctor");
  EXPECT_EQ(parsed->At("age").AsInt(), 52);
  EXPECT_EQ(parsed->At("tags").size(), 2u);
  EXPECT_TRUE(parsed->At("ok").AsBool());
  EXPECT_TRUE(parsed->At("x").is_null());
  EXPECT_TRUE(parsed->At("missing").is_null());
}

TEST(JsonTest, ParseNumbers) {
  EXPECT_EQ(Json::Parse("0")->AsInt(), 0);
  EXPECT_EQ(Json::Parse("-123")->AsInt(), -123);
  EXPECT_DOUBLE_EQ(Json::Parse("1.25")->AsDouble(), 1.25);
  EXPECT_DOUBLE_EQ(Json::Parse("-2e3")->AsDouble(), -2000.0);
  EXPECT_EQ(Json::Parse("9223372036854775807")->AsInt(), INT64_MAX);
}

TEST(JsonTest, ParseWhitespaceTolerant) {
  auto parsed = Json::Parse("  {  \"a\" :\n[ 1 , 2 ]\t}  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->At("a").size(), 2u);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());  // trailing content
  EXPECT_FALSE(Json::Parse("{'a':1}").ok());
  EXPECT_FALSE(Json::Parse("-").ok());
}

TEST(JsonTest, ParseRejectsExcessiveNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, UnicodeEscapeDecodesToUtf8) {
  auto parsed = Json::Parse("\"\\u00e9\\u0041\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "\xc3\xa9"
                                "A");
}

TEST(JsonTest, RoundTripComplexDocument) {
  Json doc = Json::MakeObject();
  doc.Set("list", Json::Array{Json(1), Json(2.5), Json("three"),
                              Json(nullptr), Json(true)});
  Json nested = Json::MakeObject();
  nested.Set("inner", Json::Array{});
  doc.Set("nested", std::move(nested));
  auto reparsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, doc);
  // Pretty form parses back to the same value too.
  auto repretty = Json::Parse(doc.DumpPretty());
  ASSERT_TRUE(repretty.ok());
  EXPECT_EQ(*repretty, doc);
}

TEST(JsonTest, TypedGettersReportMissingFields) {
  Json j = Json::MakeObject();
  j.Set("n", 5);
  j.Set("s", "text");
  j.Set("b", true);
  EXPECT_EQ(*j.GetInt("n"), 5);
  EXPECT_EQ(*j.GetString("s"), "text");
  EXPECT_TRUE(*j.GetBool("b"));
  EXPECT_DOUBLE_EQ(*j.GetDouble("n"), 5.0);  // int promotes
  EXPECT_FALSE(j.GetInt("s").ok());
  EXPECT_FALSE(j.GetString("missing").ok());
  EXPECT_FALSE(j.GetBool("n").ok());
}

TEST(JsonTest, AppendBuildsArraysFromNull) {
  Json j;
  j.Append(1).Append("two");
  EXPECT_TRUE(j.is_array());
  EXPECT_EQ(j.size(), 2u);
}

TEST(JsonTest, SetBuildsObjectsFromNull) {
  Json j;
  j.Set("k", "v");
  EXPECT_TRUE(j.is_object());
  EXPECT_TRUE(j.Has("k"));
  EXPECT_FALSE(j.Has("other"));
}

TEST(JsonTest, NumericEqualityAcrossIntAndDouble) {
  EXPECT_EQ(Json(2), Json(2.0));
  EXPECT_NE(Json(2), Json(2.5));
}

}  // namespace
}  // namespace medsync
