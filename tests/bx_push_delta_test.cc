// Property-based verification of the incremental-get exactness law: for
// every lens that implements PushDelta,
//
//   ApplyDelta(PushDelta(S, d), Get(S)) == Get(ApplyDelta(d, S))
//
// across randomized sources, random row-level deltas (updates, deletes,
// inserts, key reassignments) and the lens shapes the clinic scenario
// actually deploys. Lenses with no exact translation (grouped projections)
// must refuse with Unimplemented rather than guess.

#include <gtest/gtest.h>

#include "bx/compose_lens.h"
#include "bx/lens.h"
#include "bx/lens_factory.h"
#include "bx/project_lens.h"
#include "bx/rename_lens.h"
#include "bx/select_lens.h"
#include "common/random.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/delta.h"

namespace medsync::bx {
namespace {

using medical::kAddress;
using medical::kClinicalData;
using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using medical::kModeOfAction;
using medical::kPatientId;
using relational::CompareOp;
using relational::Key;
using relational::Predicate;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::TableDelta;
using relational::Value;

/// A random but always-valid delta over `source`: non-key updates, deletes
/// of existing rows, inserts under fresh keys, and (sometimes) a key
/// reassignment — delete key K and insert a different row at K.
TableDelta RandomSourceDelta(const Table& source, Rng* rng) {
  TableDelta delta;
  const Schema& schema = source.schema();
  std::vector<Row> rows = source.RowsInKeyOrder();
  if (rows.empty()) return delta;

  std::set<size_t> touched;  // row indices already used (one op per key)
  auto pick_untouched = [&]() -> int {
    for (int attempt = 0; attempt < 8; ++attempt) {
      size_t i = rng->NextIndex(rows.size());
      if (touched.insert(i).second) return static_cast<int>(i);
    }
    return -1;
  };

  int updates = static_cast<int>(rng->NextBelow(3));
  for (int u = 0; u < updates; ++u) {
    int i = pick_untouched();
    if (i < 0) break;
    Row updated = rows[i];
    // Mutate 1-2 random non-key attributes.
    for (int m = 0; m < 2; ++m) {
      size_t a = rng->NextIndex(schema.attribute_count());
      if (schema.IsKeyAttribute(schema.attributes()[a].name)) continue;
      updated[a] = Value::String(rng->NextAlnumString(6));
    }
    delta.updates.push_back(std::move(updated));
  }

  int deletes = static_cast<int>(rng->NextBelow(3));
  for (int d = 0; d < deletes; ++d) {
    int i = pick_untouched();
    if (i < 0) break;
    delta.deletes.push_back(relational::KeyOf(schema, rows[i]));
    if (rng->NextBool(0.3)) {
      // Key reassignment: re-insert different content under the same key.
      Row fresh = rows[i];
      fresh[1] = Value::String(rng->NextAlnumString(8));
      delta.inserts.push_back(std::move(fresh));
    }
  }

  int inserts = static_cast<int>(rng->NextBelow(3));
  for (int n = 0; n < inserts; ++n) {
    Row fresh = rows[rng->NextIndex(rows.size())];
    fresh[0] = Value::Int(9000 + static_cast<int64_t>(rng->NextBelow(2000)));
    bool duplicate = false;
    for (const Row& prior : delta.inserts) {
      if (prior[0] == fresh[0]) duplicate = true;
    }
    if (duplicate || source.Contains({fresh[0]})) continue;
    if (rng->NextBool(0.3)) fresh[3] = Value::Null();  // nullable attribute
    delta.inserts.push_back(std::move(fresh));
  }
  return delta;
}

/// The lens shapes under test; every one must translate deltas exactly.
std::vector<LensPtr> ExactLenses() {
  std::vector<LensPtr> lenses;
  lenses.push_back(MakeIdentityLens());
  // Row-aligned projection (the patient-doctor D13/D31 lens).
  lenses.push_back(MakeProjectLens(
      {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId}));
  // Selections, including predicates the delta can move rows across.
  lenses.push_back(MakeSelectLens(
      Predicate::Compare(kPatientId, CompareOp::kLt, Value::Int(1100))));
  lenses.push_back(MakeSelectLens(
      Predicate::Compare(kMedicationName, CompareOp::kGe,
                         Value::String("M"))));
  lenses.push_back(MakeRenameLens({{kDosage, "dose"}}));
  // Compositions: select then project, rename then project.
  lenses.push_back(std::make_shared<ComposeLens>(std::vector<LensPtr>{
      MakeSelectLens(
          Predicate::Compare(kPatientId, CompareOp::kGe, Value::Int(1050))),
      MakeProjectLens({kPatientId, kMedicationName, kDosage},
                      {kPatientId})}));
  lenses.push_back(std::make_shared<ComposeLens>(std::vector<LensPtr>{
      MakeRenameLens({{kClinicalData, "notes"}}),
      MakeProjectLens({kPatientId, "notes", kAddress}, {kPatientId})}));
  return lenses;
}

class PushDeltaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PushDeltaPropertyTest, PushDeltaAgreesWithFullGet) {
  Rng rng(GetParam());
  medical::GeneratorConfig config;
  config.seed = GetParam() * 131 + 29;
  config.record_count = 5 + rng.NextBelow(30);
  Table source = medical::GenerateFullRecords(config);
  std::vector<LensPtr> lenses = ExactLenses();

  for (int trial = 0; trial < 6; ++trial) {
    TableDelta delta = RandomSourceDelta(source, &rng);
    Table after = source;
    ASSERT_TRUE(relational::ApplyDelta(delta, &after).ok());

    for (const LensPtr& lens : lenses) {
      Result<Table> view_before = lens->Get(source);
      Result<Table> view_after = lens->Get(after);
      ASSERT_TRUE(view_before.ok()) << lens->ToString();
      ASSERT_TRUE(view_after.ok()) << lens->ToString();

      Result<TableDelta> pushed = lens->PushDelta(source, delta);
      ASSERT_TRUE(pushed.ok())
          << lens->ToString() << ": " << pushed.status().ToString();

      // Exactness: applying the pushed delta to the old view reproduces
      // the full re-derivation byte for byte.
      Table incremental = *view_before;
      Status applied = relational::ApplyDelta(*pushed, &incremental);
      ASSERT_TRUE(applied.ok())
          << lens->ToString() << ": " << applied.ToString();
      EXPECT_EQ(incremental, *view_after) << lens->ToString();

      // Minimality: an empty pushed delta must mean "view unchanged".
      if (pushed->empty()) {
        EXPECT_EQ(*view_before, *view_after) << lens->ToString();
      }
    }

    // Advance so successive trials chain deltas over evolving sources.
    source = std::move(after);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PushDeltaPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{30}));

TEST(PushDeltaTest, GroupedProjectionRefusesWithUnimplemented) {
  // D3 -> D32: keyed by medication name, grouped over patients. A one-row
  // source change can merge or split whole groups, so there is no exact
  // row-local translation; the lens must refuse, not guess.
  Table source = medical::MakeFig1FullRecords();
  auto lens = MakeProjectLens({kMedicationName, kMechanismOfAction},
                              {kMedicationName});
  TableDelta delta;
  Row updated = source.RowsInKeyOrder()[0];
  updated[4] = Value::String("changed");
  delta.updates.push_back(std::move(updated));
  Result<TableDelta> pushed = lens->PushDelta(source, delta);
  EXPECT_TRUE(pushed.status().IsUnimplemented()) << pushed.status();
}

TEST(PushDeltaTest, SelectReclassifiesBoundaryCrossings) {
  // A source UPDATE that moves a row across the selection predicate must
  // surface as a view INSERT or DELETE, not a view update.
  Table source = medical::MakeFig1FullRecords();  // patient ids 188, 189
  auto lens = MakeSelectLens(Predicate::Compare(
      kDosage, CompareOp::kEq, Value::String("one tablet every 4h")));
  Result<Table> view = lens->Get(source);
  ASSERT_TRUE(view.ok());

  // Row 188 is inside the selection. Update its dosage to leave it.
  TableDelta delta;
  Row updated = *source.Get({Value::Int(188)});
  updated[4] = Value::String("99mg");
  delta.updates.push_back(updated);
  Result<TableDelta> pushed = lens->PushDelta(source, delta);
  ASSERT_TRUE(pushed.ok()) << pushed.status();
  EXPECT_TRUE(pushed->updates.empty());
  EXPECT_TRUE(pushed->inserts.empty());
  ASSERT_EQ(pushed->deletes.size(), 1u);
  EXPECT_EQ(pushed->deletes[0], (Key{Value::Int(188)}));
}

TEST(PushDeltaTest, MissingPreImageIsInvalidArgument) {
  Table source = medical::MakeFig1FullRecords();
  auto lens = MakeIdentityLens();
  TableDelta delta;
  delta.deletes.push_back({Value::Int(424242)});
  EXPECT_TRUE(lens->PushDelta(source, delta).status().IsInvalidArgument());
}

}  // namespace
}  // namespace medsync::bx
