#include "bx/overlap.h"

#include <gtest/gtest.h>

#include "bx/lens_factory.h"
#include "medical/records.h"

namespace medsync::bx {
namespace {

using medical::kClinicalData;
using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using medical::kPatientId;
using relational::Table;
using relational::Value;

Table Fig1() { return medical::MakeFig1FullRecords(); }

TEST(SourceChangeTest, DetectsAttributeChanges) {
  Table before = Fig1();
  Table after = before;
  ASSERT_TRUE(after
                  .UpdateAttribute({Value::Int(188)}, kDosage,
                                   Value::String("x"))
                  .ok());
  Result<SourceChange> change = AnalyzeSourceChange(before, after);
  ASSERT_TRUE(change.ok());
  EXPECT_FALSE(change->membership_changed);
  EXPECT_EQ(change->changed_attributes,
            (std::set<std::string>{kDosage}));
  EXPECT_FALSE(change->empty());
}

TEST(SourceChangeTest, DetectsMembershipChanges) {
  Table before = Fig1();
  Table after = before;
  ASSERT_TRUE(after.Delete({Value::Int(189)}).ok());
  Result<SourceChange> change = AnalyzeSourceChange(before, after);
  ASSERT_TRUE(change.ok());
  EXPECT_TRUE(change->membership_changed);

  // Insertion-only change also flags membership.
  Table with_insert = before;
  relational::Row extra = *before.Get({Value::Int(188)});
  extra[0] = Value::Int(500);
  ASSERT_TRUE(with_insert.Insert(extra).ok());
  change = AnalyzeSourceChange(before, with_insert);
  ASSERT_TRUE(change.ok());
  EXPECT_TRUE(change->membership_changed);
}

TEST(SourceChangeTest, InsertOnlyChangeReportsNonNullAttributes) {
  // An insert-only change must not report an empty attribute set — the
  // inserted row wrote every non-null attribute it carries. Null-valued
  // attributes of the new row are NOT reported.
  Table before = Fig1();
  Table after = before;
  relational::Row extra = *before.Get({Value::Int(188)});
  extra[0] = Value::Int(500);
  extra[3] = Value::Null();  // a3_address left unset
  ASSERT_TRUE(after.Insert(extra).ok());
  Result<SourceChange> change = AnalyzeSourceChange(before, after);
  ASSERT_TRUE(change.ok());
  EXPECT_TRUE(change->membership_changed);
  EXPECT_EQ(change->changed_attributes,
            (std::set<std::string>{kPatientId, kMedicationName, kClinicalData,
                                   kDosage, kMechanismOfAction,
                                   medical::kModeOfAction}));
}

TEST(SourceChangeTest, DeleteOnlyChangeReportsDeletedRowAttributes) {
  Table before = Fig1();
  Table after = before;
  ASSERT_TRUE(after.Delete({Value::Int(189)}).ok());
  Result<SourceChange> change = AnalyzeSourceChange(before, after);
  ASSERT_TRUE(change.ok());
  EXPECT_TRUE(change->membership_changed);
  // Row 189 has every attribute non-null.
  EXPECT_EQ(change->changed_attributes.size(), 7u);
}

TEST(SourceChangeTest, FromDeltaMatchesAnalyze) {
  // SourceChangeFromDelta(before, ComputeDelta(before, after)) must agree
  // with AnalyzeSourceChange(before, after) for a mixed change.
  Table before = Fig1();
  Table after = before;
  ASSERT_TRUE(after
                  .UpdateAttribute({Value::Int(188)}, kDosage,
                                   Value::String("x"))
                  .ok());
  ASSERT_TRUE(after.Delete({Value::Int(189)}).ok());
  relational::Row extra = *before.Get({Value::Int(188)});
  extra[0] = Value::Int(500);
  ASSERT_TRUE(after.Insert(extra).ok());

  Result<SourceChange> analyzed = AnalyzeSourceChange(before, after);
  ASSERT_TRUE(analyzed.ok());
  Result<relational::TableDelta> delta =
      relational::ComputeDelta(before, after);
  ASSERT_TRUE(delta.ok());
  Result<SourceChange> from_delta = SourceChangeFromDelta(before, *delta);
  ASSERT_TRUE(from_delta.ok());
  EXPECT_EQ(from_delta->changed_attributes, analyzed->changed_attributes);
  EXPECT_EQ(from_delta->membership_changed, analyzed->membership_changed);
}

TEST(SourceChangeTest, FromDeltaRejectsMissingTargets) {
  Table before = Fig1();
  relational::TableDelta bad_delete;
  bad_delete.deletes.push_back({Value::Int(777)});
  EXPECT_TRUE(
      SourceChangeFromDelta(before, bad_delete).status().IsInvalidArgument());
  relational::TableDelta bad_update;
  relational::Row ghost = *before.Get({Value::Int(188)});
  ghost[0] = Value::Int(777);
  bad_update.updates.push_back(ghost);
  EXPECT_TRUE(
      SourceChangeFromDelta(before, bad_update).status().IsInvalidArgument());
}

TEST(WrittenAttributesTest, OnlyUpdateChangedAttributesCount) {
  // The contract-facing set: updates contribute their changed attributes;
  // inserted and deleted rows contribute NOTHING (membership permission
  // governs row addition/removal, not per-attribute write permission).
  Table before = Fig1();
  relational::TableDelta delta;
  relational::Row updated = *before.Get({Value::Int(188)});
  updated[4] = Value::String("new dosage");
  delta.updates.push_back(updated);
  delta.deletes.push_back({Value::Int(189)});
  relational::Row extra = *before.Get({Value::Int(188)});
  extra[0] = Value::Int(500);
  delta.inserts.push_back(extra);

  Result<std::set<std::string>> written = WrittenAttributes(before, delta);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, (std::set<std::string>{kDosage}));

  // Insert/delete-only delta writes no attribute values at all.
  relational::TableDelta membership_only;
  membership_only.deletes.push_back({Value::Int(189)});
  membership_only.inserts.push_back(extra);
  written = WrittenAttributes(before, membership_only);
  ASSERT_TRUE(written.ok());
  EXPECT_TRUE(written->empty());
}

TEST(SourceChangeTest, IdenticalTablesAreEmptyChange) {
  Result<SourceChange> change = AnalyzeSourceChange(Fig1(), Fig1());
  ASSERT_TRUE(change.ok());
  EXPECT_TRUE(change->empty());
}

TEST(SourceChangeTest, SchemaMismatchRejected) {
  Table other(*relational::Schema::Create(
      {{"x", relational::DataType::kInt, false}}, {"x"}));
  EXPECT_FALSE(AnalyzeSourceChange(Fig1(), other).ok());
}

TEST(OverlapTest, DisjointProjectionsDoNotInteract) {
  // The paper's D31 (a0,a1,a2,a4) vs a hypothetical view reading only a5:
  // the mechanism-of-action update (Fig. 5 step 5) must NOT force a D31
  // refresh.
  auto d31 = MakeProjectLens(
      {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId});
  auto d32 = MakeProjectLens({kMedicationName, kMechanismOfAction},
                             {kMedicationName});

  SourceChange mechanism_only;
  mechanism_only.changed_attributes.insert(kMechanismOfAction);

  Result<bool> d31_affected =
      ChangeMayAffectView(*d31, Fig1().schema(), mechanism_only);
  ASSERT_TRUE(d31_affected.ok());
  EXPECT_FALSE(*d31_affected);

  Result<bool> d32_affected =
      ChangeMayAffectView(*d32, Fig1().schema(), mechanism_only);
  ASSERT_TRUE(d32_affected.ok());
  EXPECT_TRUE(*d32_affected);
}

TEST(OverlapTest, SharedAttributeForcesInteraction) {
  // Both D31 and D32 read a1 (medication name): a change to it must reach
  // both views.
  auto d31 = MakeProjectLens(
      {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId});
  SourceChange med_change;
  med_change.changed_attributes.insert(kMedicationName);
  EXPECT_TRUE(*ChangeMayAffectView(*d31, Fig1().schema(), med_change));
}

TEST(OverlapTest, MembershipChangeAffectsEveryView) {
  auto narrow = MakeProjectLens({kPatientId}, {kPatientId});
  SourceChange membership;
  membership.membership_changed = true;
  EXPECT_TRUE(*ChangeMayAffectView(*narrow, Fig1().schema(), membership));
}

TEST(OverlapTest, EmptyChangeAffectsNothing) {
  auto lens = MakeIdentityLens();
  EXPECT_FALSE(*ChangeMayAffectView(*lens, Fig1().schema(), SourceChange{}));
}

TEST(OverlapTest, StaticLensInteraction) {
  auto d31 = MakeProjectLens(
      {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId});
  auto d32 = MakeProjectLens({kMedicationName, kMechanismOfAction},
                             {kMedicationName});
  // Conservative static analysis: both lens Puts can change membership, so
  // they may interact.
  EXPECT_TRUE(*LensesMayInteract(*d31, *d32, Fig1().schema()));
}

TEST(FootprintOverlapTest, DisjointNonMembershipFootprints) {
  SourceFootprint a;
  a.read = {"x"};
  a.written = {"x"};
  SourceFootprint b;
  b.read = {"y"};
  b.written = {"y"};
  EXPECT_FALSE(FootprintsMayOverlap(a, b));
  b.read.insert("x");
  EXPECT_TRUE(FootprintsMayOverlap(a, b));
  SourceFootprint membership;
  membership.affects_membership = true;
  EXPECT_TRUE(FootprintsMayOverlap(a, membership));
}

}  // namespace
}  // namespace medsync::bx
