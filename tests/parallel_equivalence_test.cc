// Property-style equivalence tests for every pooled hot path: on randomized
// inputs (seeded via common/random), the parallel implementations of PoW
// sealing, Merkle-root construction, block validation, and cascade
// rederivation must produce results IDENTICAL to their serial counterparts
// — same values, same statuses, same counters. This is the contract that
// lets the simulator and the determinism suite run with any pool size.

#include <gtest/gtest.h>

#include "bx/compose_lens.h"
#include "bx/lens_factory.h"
#include "chain/blockchain.h"
#include "chain/sealer.h"
#include "common/random.h"
#include "common/strings.h"
#include "common/threading/thread_pool.h"
#include "core/sync_manager.h"
#include "crypto/merkle.h"
#include "medical/generator.h"
#include "medical/records.h"

namespace medsync {
namespace {

using namespace medsync::chain;
using relational::CompareOp;
using relational::Predicate;
using relational::Table;
using relational::Value;

std::vector<crypto::Hash256> RandomLeaves(Rng* rng, size_t count) {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    leaves.push_back(crypto::Sha256::Hash(rng->NextAlnumString(24)));
  }
  return leaves;
}

TEST(ParallelEquivalenceTest, MerkleRootMatchesSerial) {
  Rng rng(7001);
  threading::ThreadPool pool(4);
  // Cover empty, single, odd tails, the parallel threshold boundary, and a
  // size big enough for several parallel levels.
  for (size_t count : {0ul, 1ul, 2ul, 3ul, 17ul, 255ul, 256ul, 257ul,
                       1024ul, 4096ul}) {
    std::vector<crypto::Hash256> leaves = RandomLeaves(&rng, count);
    crypto::Hash256 serial = crypto::MerkleTree::ComputeRoot(leaves);
    crypto::Hash256 parallel = crypto::MerkleTree::ComputeRoot(leaves, &pool);
    EXPECT_EQ(serial, parallel) << count << " leaves";

    crypto::MerkleTree serial_tree(leaves);
    crypto::MerkleTree parallel_tree(leaves, &pool);
    EXPECT_EQ(serial_tree.root(), parallel_tree.root()) << count << " leaves";
    if (count > 0) {
      // Proofs read the materialized levels: they must agree too.
      uint64_t index = rng.NextBelow(count);
      crypto::MerkleProof proof = parallel_tree.BuildProof(index);
      EXPECT_TRUE(crypto::MerkleTree::VerifyProof(leaves[index], proof,
                                                  serial_tree.root()));
    }
  }
}

TEST(ParallelEquivalenceTest, PowSealFindsTheSerialNonce) {
  // The parallel search must return the LOWEST satisfying nonce — exactly
  // the serial result — so the sealed header (and thus the block hash) is
  // byte-identical.
  Rng rng(7002);
  threading::ThreadPool pool(4);
  PowSealer serial(/*difficulty_bits=*/11);
  PowSealer parallel(/*difficulty_bits=*/11, &pool);
  for (int round = 0; round < 8; ++round) {
    Block a;
    a.header.height = 1;
    a.header.timestamp = static_cast<Micros>(round + 1);
    a.header.merkle_root = crypto::Sha256::Hash(rng.NextAlnumString(32));
    Block b = a;
    ASSERT_TRUE(serial.Seal(&a).ok());
    ASSERT_TRUE(parallel.Seal(&b).ok());
    EXPECT_EQ(a.header.pow_nonce, b.header.pow_nonce) << "round " << round;
    EXPECT_EQ(a.header.Hash(), b.header.Hash()) << "round " << round;
  }
}

class BlockValidationEquivalence : public ::testing::Test {
 protected:
  BlockValidationEquivalence()
      : pool_(4),
        signer_(std::make_shared<crypto::KeyPair>(
            crypto::KeyPair::FromSeed("equiv-authority"))),
        sealer_({signer_->address()}, signer_),
        genesis_(Blockchain::MakeGenesis(0)),
        serial_chain_(genesis_, &sealer_, ConflictKey),
        parallel_chain_(genesis_, &sealer_, ConflictKey, &pool_) {}

  /// The one-update-per-table rule keyed on params.table_id.
  static std::optional<std::string> ConflictKey(const Transaction& tx) {
    Result<std::string> table_id = tx.params.GetString("table_id");
    if (!table_id.ok()) return std::nullopt;
    return *table_id;
  }

  Transaction MakeTx(Rng* rng, const std::string& table_id) {
    crypto::KeyPair key =
        crypto::KeyPair::FromSeed(rng->NextAlnumString(12));
    Transaction tx;
    tx.from = key.address();
    tx.to = crypto::KeyPair::FromSeed("equiv-target").address();
    tx.nonce = rng->NextUint64();
    tx.method = "request_update";
    Json params = Json::MakeObject();
    params.Set("table_id", table_id);
    tx.params = std::move(params);
    tx.Sign(key);
    return tx;
  }

  Block MakeBlock(Rng* rng, size_t tx_count) {
    Block block;
    block.header.height = 1;
    block.header.parent = genesis_.header.Hash();
    block.header.timestamp = 1;
    for (size_t i = 0; i < tx_count; ++i) {
      block.transactions.push_back(MakeTx(rng, StrCat("T", i)));
    }
    block.header.merkle_root = block.ComputeMerkleRoot();
    EXPECT_TRUE(sealer_.Seal(&block).ok());
    return block;
  }

  void ExpectSameVerdict(const Block& block) {
    Status serial = serial_chain_.ValidateStructure(block);
    Status parallel = parallel_chain_.ValidateStructure(block);
    EXPECT_EQ(serial, parallel)
        << "serial: " << serial << " vs parallel: " << parallel;
  }

  threading::ThreadPool pool_;
  std::shared_ptr<crypto::KeyPair> signer_;
  PoaSealer sealer_;
  Block genesis_;
  Blockchain serial_chain_;
  Blockchain parallel_chain_;
};

TEST_F(BlockValidationEquivalence, ValidAndCorruptBlocksAgree) {
  Rng rng(7003);
  for (size_t tx_count : {1ul, 4ul, 16ul, 64ul}) {
    Block good = MakeBlock(&rng, tx_count);
    ExpectSameVerdict(good);

    // Flip one signature: both paths must report the SAME transaction.
    Block bad_sig = good;
    size_t victim = rng.NextBelow(tx_count);
    bad_sig.transactions[victim].nonce ^= 1;  // Invalidates the signature.
    bad_sig.header.merkle_root = bad_sig.ComputeMerkleRoot();
    EXPECT_TRUE(sealer_.Seal(&bad_sig).ok());
    ExpectSameVerdict(bad_sig);

    if (tx_count < 2) continue;
    // Duplicate transaction.
    Block dup = good;
    dup.transactions[tx_count - 1] = dup.transactions[0];
    dup.header.merkle_root = dup.ComputeMerkleRoot();
    EXPECT_TRUE(sealer_.Seal(&dup).ok());
    ExpectSameVerdict(dup);

    // Two updates to one shared table (conflict-rule violation).
    Block conflict = good;
    conflict.transactions[tx_count - 1] = MakeTx(&rng, "T0");
    conflict.header.merkle_root = conflict.ComputeMerkleRoot();
    EXPECT_TRUE(sealer_.Seal(&conflict).ok());
    ExpectSameVerdict(conflict);

    // Wrong Merkle commitment.
    Block bad_root = good;
    bad_root.header.merkle_root = crypto::Sha256::Hash("not the root");
    EXPECT_TRUE(sealer_.Seal(&bad_root).ok());
    ExpectSameVerdict(bad_root);
  }
}

TEST_F(BlockValidationEquivalence, MixedViolationsReportTheSameFirstOffender) {
  // A block with a bad signature at one position AND a duplicate at another:
  // the parallel path must report whichever violation the serial in-order
  // scan hits first, not whichever check finished first.
  Rng rng(7004);
  Block block = MakeBlock(&rng, 16);
  block.transactions[3] = block.transactions[2];   // duplicate at 3
  block.transactions[9].nonce ^= 1;                // bad signature at 9
  block.header.merkle_root = block.ComputeMerkleRoot();
  ASSERT_TRUE(sealer_.Seal(&block).ok());
  Status serial = serial_chain_.ValidateStructure(block);
  ASSERT_TRUE(serial.IsInvalidArgument()) << serial;  // duplicate wins
  ExpectSameVerdict(block);
}

/// Builds a database with one generated source table and `sibling_count`
/// registered sibling views of varied shapes, applies a randomized batch of
/// source edits, and returns the FindAffectedViews output plus counters.
struct CascadeRun {
  std::vector<core::ViewRefresh> refreshes;
  uint64_t gets_skipped = 0;
  uint64_t gets_executed = 0;

  static CascadeRun Execute(uint64_t seed, size_t sibling_count,
                            core::DependencyStrategy strategy,
                            threading::ThreadPool* pool) {
    using namespace medsync::medical;
    CascadeRun out;
    relational::Database db;
    Table source = GenerateFullRecords(
        {.seed = seed, .record_count = 48, .first_patient_id = 1});
    EXPECT_TRUE(db.CreateTable("SRC", source.schema()).ok());
    EXPECT_TRUE(db.ReplaceTable("SRC", source).ok());

    core::SyncManager sync(&db, strategy);
    sync.set_thread_pool(pool);
    const std::vector<std::string> projections[] = {
        {kPatientId, kMedicationName, kDosage},
        {kPatientId, kClinicalData},
        {kPatientId, kMedicationName, kMechanismOfAction},
        {kPatientId, kAddress},
    };
    for (size_t i = 0; i < sibling_count; ++i) {
      bx::LensPtr lens = bx::MakeProjectLens(
          projections[i % std::size(projections)], {kPatientId});
      if (i % 2 == 1) {
        // Half the views also select a patient-id range.
        lens = bx::Compose(
            bx::MakeSelectLens(Predicate::Compare(
                kPatientId, CompareOp::kLe,
                Value::Int(static_cast<int64_t>(8 + 5 * i)))),
            lens);
      }
      std::string view_name = StrCat("VIEW", i);
      Table derived = *lens->Get(source);
      EXPECT_TRUE(db.CreateTable(view_name, derived.schema()).ok());
      EXPECT_TRUE(db.ReplaceTable(view_name, derived).ok());
      EXPECT_TRUE(
          sync.RegisterView(StrCat("table-", i), "SRC", view_name, lens)
              .ok());
    }

    // Randomized source edits: attribute updates plus one row deletion, so
    // both value changes and membership changes flow through the check.
    Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
    Table before = *db.Snapshot("SRC");
    std::vector<relational::Key> keys;
    for (const auto& [key, row] : before.scan()) keys.push_back(key);
    const char* editable[] = {kMedicationName, kDosage, kClinicalData,
                              kMechanismOfAction};
    for (int edit = 0; edit < 6; ++edit) {
      const relational::Key& key = keys[rng.NextIndex(keys.size())];
      const char* attribute = editable[rng.NextIndex(std::size(editable))];
      EXPECT_TRUE(db.UpdateAttribute(
                        "SRC", key, attribute,
                        Value::String(StrCat("edit-", edit, "-",
                                             rng.NextAlnumString(6))))
                      .ok());
    }
    EXPECT_TRUE(db.Delete("SRC", keys[rng.NextIndex(keys.size())]).ok());

    Result<std::vector<core::ViewRefresh>> refreshes =
        sync.FindAffectedViews("SRC", before, /*exclude_table_id=*/"table-0");
    EXPECT_TRUE(refreshes.ok()) << refreshes.status();
    out.refreshes = std::move(*refreshes);
    out.gets_skipped = sync.gets_skipped();
    out.gets_executed = sync.gets_executed();
    return out;
  }
};

TEST(ParallelEquivalenceTest, CascadeRederivationMatchesSerial) {
  threading::ThreadPool pool(4);
  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    for (core::DependencyStrategy strategy :
         {core::DependencyStrategy::kAlwaysRederive,
          core::DependencyStrategy::kAnalyzeChange}) {
      CascadeRun serial =
          CascadeRun::Execute(seed, /*sibling_count=*/8, strategy, nullptr);
      CascadeRun parallel =
          CascadeRun::Execute(seed, /*sibling_count=*/8, strategy, &pool);

      EXPECT_EQ(serial.gets_skipped, parallel.gets_skipped);
      EXPECT_EQ(serial.gets_executed, parallel.gets_executed);
      ASSERT_EQ(serial.refreshes.size(), parallel.refreshes.size());
      for (size_t i = 0; i < serial.refreshes.size(); ++i) {
        const core::ViewRefresh& a = serial.refreshes[i];
        const core::ViewRefresh& b = parallel.refreshes[i];
        EXPECT_EQ(a.table_id, b.table_id) << "slot " << i;
        EXPECT_EQ(a.new_view, b.new_view) << a.table_id;
        EXPECT_EQ(a.changed_attributes, b.changed_attributes) << a.table_id;
        EXPECT_EQ(a.membership_changed, b.membership_changed) << a.table_id;
      }
    }
  }
}

}  // namespace
}  // namespace medsync
