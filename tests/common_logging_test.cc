#include "common/logging.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/status.h"

namespace medsync {
namespace {

struct CapturedLine {
  LogLevel level;
  std::string component;
  std::string message;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logging::set_sink([this](LogLevel level, std::string_view component,
                             std::string_view message) {
      lines_.push_back(CapturedLine{level, std::string(component),
                                    std::string(message)});
    });
    Logging::set_threshold(LogLevel::kInfo);
  }
  void TearDown() override {
    Logging::set_sink(nullptr);
    Logging::set_threshold(LogLevel::kWarning);
  }
  std::vector<CapturedLine> lines_;
};

TEST_F(LoggingTest, MessagesAboveThresholdReachSink) {
  MEDSYNC_LOG(kInfo, "chain") << "sealed block " << 7;
  MEDSYNC_LOG(kError, "peer") << "bad";
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(lines_[0].component, "chain");
  EXPECT_EQ(lines_[0].message, "sealed block 7");
  EXPECT_EQ(lines_[0].level, LogLevel::kInfo);
  EXPECT_EQ(lines_[1].level, LogLevel::kError);
}

TEST_F(LoggingTest, MessagesBelowThresholdAreDroppedWithoutFormatting) {
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 42;
  };
  MEDSYNC_LOG(kDebug, "x") << expensive();  // below kInfo: not even built
  EXPECT_TRUE(lines_.empty());
  EXPECT_EQ(evaluations, 0);

  Logging::set_threshold(LogLevel::kDebug);
  MEDSYNC_LOG(kDebug, "x") << expensive();
  EXPECT_EQ(lines_.size(), 1u);
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, OffThresholdSilencesEverything) {
  Logging::set_threshold(LogLevel::kOff);
  MEDSYNC_LOG(kError, "x") << "nope";
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, LogIfErrorEmitsNonOkAtDebug) {
  Logging::set_threshold(LogLevel::kDebug);
  LogIfError(Status::OK(), "net", "best-effort send");
  EXPECT_TRUE(lines_.empty());
  LogIfError(Status::Unavailable("link down"), "net", "best-effort send");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].level, LogLevel::kDebug);
  EXPECT_EQ(lines_[0].component, "net");
  EXPECT_EQ(lines_[0].message, "best-effort send: unavailable: link down");
}

TEST_F(LoggingTest, LogIfErrorRespectsThreshold) {
  Logging::set_threshold(LogLevel::kInfo);
  LogIfError(Status::Unavailable("link down"), "net", "best-effort send");
  EXPECT_TRUE(lines_.empty());
}

}  // namespace
}  // namespace medsync
