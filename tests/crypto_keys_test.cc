#include "crypto/keys.h"

#include <gtest/gtest.h>

namespace medsync::crypto {
namespace {

TEST(KeyPairTest, DeterministicDerivationFromSeed) {
  KeyPair a = KeyPair::FromSeed("doctor");
  KeyPair b = KeyPair::FromSeed("doctor");
  EXPECT_EQ(a.public_key(), b.public_key());
  EXPECT_EQ(a.address(), b.address());
}

TEST(KeyPairTest, DifferentSeedsDifferentIdentities) {
  KeyPair a = KeyPair::FromSeed("doctor");
  KeyPair b = KeyPair::FromSeed("patient");
  EXPECT_NE(a.public_key(), b.public_key());
  EXPECT_NE(a.address(), b.address());
}

TEST(KeyPairTest, SignVerifyRoundTrip) {
  KeyPair key = KeyPair::FromSeed("signer");
  Signature sig = key.Sign("message");
  EXPECT_TRUE(KeyPair::Verify(key.public_key(), "message", sig));
}

TEST(KeyPairTest, VerifyRejectsWrongMessage) {
  KeyPair key = KeyPair::FromSeed("signer");
  Signature sig = key.Sign("message");
  EXPECT_FALSE(KeyPair::Verify(key.public_key(), "other message", sig));
}

TEST(KeyPairTest, VerifyRejectsWrongSigner) {
  KeyPair alice = KeyPair::FromSeed("alice");
  KeyPair bob = KeyPair::FromSeed("bob");
  Signature sig = alice.Sign("message");
  EXPECT_FALSE(KeyPair::Verify(bob.public_key(), "message", sig));
}

TEST(KeyPairTest, VerifyRejectsTamperedMac) {
  KeyPair key = KeyPair::FromSeed("signer");
  Signature sig = key.Sign("message");
  sig.mac.bytes[0] ^= 0x01;
  EXPECT_FALSE(KeyPair::Verify(key.public_key(), "message", sig));
}

TEST(KeyPairTest, ForgedPubHintFails) {
  KeyPair alice = KeyPair::FromSeed("alice");
  KeyPair mallory = KeyPair::FromSeed("mallory");
  // Mallory signs with her own key but claims Alice's public key.
  Signature forged = mallory.Sign("pay mallory");
  forged.pub_hint = alice.public_key();
  EXPECT_FALSE(KeyPair::Verify(alice.public_key(), "pay mallory", forged));
}

TEST(AddressTest, HexRoundTrip) {
  Address addr = KeyPair::FromSeed("someone").address();
  std::string hex = addr.ToHex();
  EXPECT_EQ(hex.size(), 42u);
  EXPECT_EQ(hex.substr(0, 2), "0x");
  bool ok = false;
  EXPECT_EQ(Address::FromHex(hex, &ok), addr);
  EXPECT_TRUE(ok);
}

TEST(AddressTest, FromHexRejectsBadInput) {
  bool ok = true;
  Address::FromHex("0x1234", &ok);
  EXPECT_FALSE(ok);
  ok = true;
  Address::FromHex(std::string(40, 'g'), &ok);
  EXPECT_FALSE(ok);
}

TEST(AddressTest, ZeroAddress) {
  EXPECT_TRUE(Address::Zero().IsZero());
  EXPECT_FALSE(KeyPair::FromSeed("x").address().IsZero());
}

TEST(AddressTest, DerivedFromPublicKey) {
  KeyPair key = KeyPair::FromSeed("derive");
  EXPECT_EQ(Address::FromPublicKey(key.public_key()), key.address());
}

}  // namespace
}  // namespace medsync::crypto
