// Soak suite over the seeded hospital-network generator: eight seeds at
// 100-peer scale, each replayed under worker pools of size 1 and 4 with
// the BX-law oracle on, asserting byte-identical state fingerprints,
// convergence after every partition heals, and gapless audit trails. On
// failure the schedule is bisected to its minimal failing prefix and the
// assertion message carries a medsync_cli replay handle.
//
// Registered with ctest under the `soak` label (one entry per seed, see
// tests/CMakeLists.txt); tools/check.sh skips the label by default and
// includes it with --full.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <system_error>

#include "common/strings.h"
#include "core/scenario_gen.h"
#include "core/workload.h"

namespace medsync::core {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeedCount = 8;
constexpr uint64_t kCanarySeed = 3;

// The soak world must stay expressible as a medsync_cli replay handle, so
// only knobs the `gen` subcommand exposes (seed, peers, depth, events,
// durable) may deviate from GenOptions/WorkloadOptions defaults.
GenOptions SoakWorld(uint64_t seed, size_t worker_threads,
                     const std::string& durable_root) {
  GenOptions gen;
  gen.seed = seed;
  gen.peers = 100;
  gen.lens_depth = 2 + seed % 3;
  gen.worker_threads = worker_threads;
  gen.durable_root = durable_root;
  return gen;
}

WorkloadOptions SoakWorkload(uint64_t seed) {
  WorkloadOptions workload;
  workload.seed = seed * 31 + 1;  // same derivation as `medsync_cli gen`
  return workload;
}

std::string FreshRoot(uint64_t seed) {
  static int counter = 0;
  const std::string root =
      (fs::temp_directory_path() /
       StrCat("medsync_soak_", ::getpid(), "_", seed, "_", counter++))
          .string();
  fs::create_directories(root);
  return root;
}

void RemoveRoot(const std::string& root) {
  std::error_code ignored;
  fs::remove_all(root, ignored);
}

// Runs one seed under both pool sizes; on a failing run, shrinks the
// schedule to the minimal failing prefix and fails with a replay handle.
void RunSeed(uint64_t seed) {
  std::string fingerprints[2];
  const size_t pool_sizes[2] = {1, 4};
  for (int p = 0; p < 2; ++p) {
    const std::string root = FreshRoot(seed);
    const GenOptions gen = SoakWorld(seed, pool_sizes[p], root);
    const WorkloadOptions workload = SoakWorkload(seed);
    SoakReport report;
    const Status run = RunGeneratedSoak(gen, workload, SIZE_MAX, &report);
    RemoveRoot(root);
    if (!run.ok()) {
      const size_t total =
          GenerateSchedule(DescribeNetwork(gen), workload).events.size();
      Status minimal_failure;
      const size_t minimal = ShrinkToMinimalFailingPrefix(
          [&](size_t prefix) {
            const std::string probe_root = FreshRoot(seed);
            const GenOptions probe = SoakWorld(seed, pool_sizes[p], probe_root);
            const Status status =
                RunGeneratedSoak(probe, workload, prefix, nullptr);
            RemoveRoot(probe_root);
            return status;
          },
          total, &minimal_failure);
      FAIL() << "soak seed " << seed << " (pool " << pool_sizes[p]
             << ") failed: " << run << "\nminimal failing prefix: " << minimal
             << " of " << total << " events (" << minimal_failure << ")"
             << "\nreplay: ./build/examples/medsync_cli gen --seed " << seed
             << " --peers 100 --depth " << gen.lens_depth
             << " --durable 1 --prefix " << minimal;
    }
    EXPECT_GT(report.executed, 0u) << "seed " << seed;
    EXPECT_GT(report.chain_height, 0u) << "seed " << seed;
    ASSERT_FALSE(report.fingerprint.empty()) << "seed " << seed;
    fingerprints[p] = report.fingerprint;
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1])
      << "state fingerprint diverges across worker pools {1,4} for seed "
      << seed;
}

TEST(SoakGeneratedTest, Seed1) { RunSeed(1); }
TEST(SoakGeneratedTest, Seed2) { RunSeed(2); }
TEST(SoakGeneratedTest, Seed3) { RunSeed(3); }
TEST(SoakGeneratedTest, Seed4) { RunSeed(4); }
TEST(SoakGeneratedTest, Seed5) { RunSeed(5); }
TEST(SoakGeneratedTest, Seed6) { RunSeed(6); }
TEST(SoakGeneratedTest, Seed7) { RunSeed(7); }
TEST(SoakGeneratedTest, Seed8) { RunSeed(8); }

// The same seed twice on the same pool size must be byte-identical — the
// cheap canary that the whole pipeline (generation, replay, fingerprint)
// is free of hidden nondeterminism before blaming a pool-size divergence.
TEST(SoakGeneratedTest, CanarySeedRepeatsByteIdentically) {
  SoakReport first;
  SoakReport second;
  for (SoakReport* report : {&first, &second}) {
    const std::string root = FreshRoot(kCanarySeed);
    const Status run = RunGeneratedSoak(SoakWorld(kCanarySeed, 1, root),
                                        SoakWorkload(kCanarySeed), SIZE_MAX,
                                        report);
    RemoveRoot(root);
    ASSERT_TRUE(run.ok()) << run;
  }
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.executed, second.executed);
  EXPECT_EQ(first.skipped, second.skipped);
  EXPECT_EQ(first.chain_height, second.chain_height);
}

// Lanes determinism leg: the same seed at lane counts {1,4} must compute
// the same network state. Compares the lane-invariant fingerprint — the
// full fingerprint legitimately differs because block hashes carry the
// lane id. The leg pins the shared network RNG stream untouched (zero
// latency jitter, no drop storms): lane counts change how many block
// broadcasts hit the wire, which would otherwise interleave differently
// with the jitter/drop draws and fork the stream. This leg never uses the
// medsync_cli replay handle (no shrink), so the replay-handle knob
// constraint on SoakWorld does not bind here.
TEST(SoakGeneratedTest, LaneCountsAgreeOnLaneInvariantFingerprint) {
  SoakReport reports[2];
  const size_t lane_counts[2] = {1, 4};
  for (int l = 0; l < 2; ++l) {
    const std::string root = FreshRoot(kCanarySeed);
    GenOptions gen = SoakWorld(kCanarySeed, /*worker_threads=*/4, root);
    gen.lane_count = lane_counts[l];
    gen.latency.jitter = 0;
    WorkloadOptions workload = SoakWorkload(kCanarySeed);
    workload.storm_weight = 0;
    const Status run = RunGeneratedSoak(gen, workload, SIZE_MAX, &reports[l]);
    RemoveRoot(root);
    ASSERT_TRUE(run.ok()) << "lanes " << lane_counts[l] << ": " << run;
    ASSERT_FALSE(reports[l].lane_invariant_fingerprint.empty());
  }
  EXPECT_EQ(reports[0].lane_invariant_fingerprint,
            reports[1].lane_invariant_fingerprint)
      << "network state diverges across lane counts {1,4} for seed "
      << kCanarySeed;
  EXPECT_EQ(reports[0].executed, reports[1].executed);
  EXPECT_EQ(reports[0].skipped, reports[1].skipped);
}

// The eight soak schedules must collectively exercise the whole adversity
// menu — otherwise a weight regression could silently turn the soak into
// a fair-weather test. Pure generation, no live network.
TEST(SoakGeneratedTest, AdversityMenuIsCovered) {
  size_t isolates = 0, crashes = 0, storms = 0, revokes = 0;
  for (uint64_t seed = 1; seed <= kSeedCount; ++seed) {
    const GenOptions gen = SoakWorld(seed, 1, "symbolic-only");
    const Schedule schedule =
        GenerateSchedule(DescribeNetwork(gen), SoakWorkload(seed));
    for (const WorkloadEvent& event : schedule.events) {
      switch (event.kind) {
        case EventKind::kIsolate: ++isolates; break;
        case EventKind::kCrash: ++crashes; break;
        case EventKind::kDropStorm: ++storms; break;
        case EventKind::kRevoke: ++revokes; break;
        default: break;
      }
    }
  }
  EXPECT_GT(isolates, 0u);
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(storms, 0u);
  EXPECT_GT(revokes, 0u);
}

}  // namespace
}  // namespace medsync::core
