// Unit tests for the paper's Fig. 3 metadata contract, driven directly
// through a ContractHost (no chain or network): the permission matrix,
// the update/ack protocol, and the all-peers-synced gate of Section III-B.

#include "contracts/metadata_contract.h"

#include <gtest/gtest.h>

#include "contracts/host.h"

namespace medsync::contracts {
namespace {

class MetadataContractTest : public ::testing::Test {
 protected:
  MetadataContractTest()
      : doctor_(crypto::KeyPair::FromSeed("doctor")),
        patient_(crypto::KeyPair::FromSeed("patient")),
        researcher_(crypto::KeyPair::FromSeed("researcher")) {
    host_.RegisterType("metadata", MetadataContract::Create);
    chain::Transaction deploy =
        MakeTx(doctor_, crypto::Address::Zero(), "metadata",
               Json::MakeObject());
    contract_ = ContractHost::DeploymentAddress(deploy);
    Receipt receipt = Execute(deploy);
    EXPECT_TRUE(receipt.ok) << receipt.error;
  }

  chain::Transaction MakeTx(const crypto::KeyPair& key,
                            const crypto::Address& to,
                            const std::string& method, Json params) {
    chain::Transaction tx;
    tx.from = key.address();
    tx.to = to;
    tx.nonce = nonce_++;
    tx.method = method;
    tx.params = std::move(params);
    tx.timestamp = static_cast<Micros>(nonce_) * 1000;
    tx.Sign(key);
    return tx;
  }

  Receipt Execute(chain::Transaction tx) {
    chain::Block block;
    block.header.height = next_height_++;
    block.header.timestamp = 1545436800LL * kMicrosPerSecond +
                             static_cast<Micros>(next_height_) * 1000;
    block.transactions = {std::move(tx)};
    block.header.merkle_root = block.ComputeMerkleRoot();
    return host_.ExecuteBlock(block)[0];
  }

  Receipt Call(const crypto::KeyPair& key, const std::string& method,
               Json params) {
    return Execute(MakeTx(key, contract_, method, std::move(params)));
  }

  /// Registers the paper's D13&D31 table: peers {patient, doctor};
  /// medication name + dosage writable by doctor; clinical data by both;
  /// membership + authority doctor.
  Receipt RegisterPatientDoctorTable() {
    Json perm = Json::MakeObject();
    perm.Set("a1", Json::Array{Json(doctor_.address().ToHex())});
    perm.Set("a4", Json::Array{Json(doctor_.address().ToHex())});
    perm.Set("a2", Json::Array{Json(patient_.address().ToHex()),
                               Json(doctor_.address().ToHex())});
    Json params = Json::MakeObject();
    params.Set("table_id", "D13&D31");
    params.Set("peers", Json::Array{Json(patient_.address().ToHex()),
                                    Json(doctor_.address().ToHex())});
    params.Set("view_schema", Json::MakeObject());
    params.Set("write_permission", std::move(perm));
    params.Set("membership_permission",
               Json::Array{Json(doctor_.address().ToHex())});
    params.Set("authority", doctor_.address().ToHex());
    params.Set("digest", "d0");
    return Call(doctor_, "register_table", std::move(params));
  }

  Json UpdateParams(const std::string& kind,
                    std::vector<std::string> attributes,
                    const std::string& digest) {
    Json attrs = Json::MakeArray();
    for (const std::string& a : attributes) attrs.Append(a);
    Json params = Json::MakeObject();
    params.Set("table_id", "D13&D31");
    params.Set("kind", kind);
    params.Set("attributes", std::move(attrs));
    params.Set("digest", digest);
    return params;
  }

  Json AckParams(int64_t version, const std::string& digest) {
    Json params = Json::MakeObject();
    params.Set("table_id", "D13&D31");
    params.Set("version", version);
    params.Set("digest", digest);
    return params;
  }

  Json Entry() {
    Json params = Json::MakeObject();
    params.Set("table_id", "D13&D31");
    Result<Json> entry =
        host_.StaticCall(contract_, "get_entry", params, doctor_.address());
    EXPECT_TRUE(entry.ok()) << entry.status();
    return entry.ok() ? *entry : Json();
  }

  ContractHost host_;
  crypto::KeyPair doctor_, patient_, researcher_;
  crypto::Address contract_;
  uint64_t nonce_ = 0;
  uint64_t next_height_ = 1;
};

TEST_F(MetadataContractTest, RegisterCreatesEntryWithFig3Fields) {
  Receipt receipt = RegisterPatientDoctorTable();
  ASSERT_TRUE(receipt.ok) << receipt.error;
  ASSERT_EQ(receipt.events.size(), 1u);
  EXPECT_EQ(receipt.events[0].name, "TableRegistered");

  Json entry = Entry();
  EXPECT_EQ(*entry.GetString("provider"), doctor_.address().ToHex());
  EXPECT_EQ(*entry.GetString("authority"), doctor_.address().ToHex());
  EXPECT_EQ(*entry.GetInt("version"), 1);
  EXPECT_EQ(*entry.GetString("content_digest"), "d0");
  EXPECT_EQ(entry.At("peers").size(), 2u);
  EXPECT_EQ(entry.At("write_permission").At("a4").size(), 1u);
  EXPECT_EQ(entry.At("write_permission").At("a2").size(), 2u);
  EXPECT_GT(*entry.GetInt("last_update_time"), 0);
}

TEST_F(MetadataContractTest, RegisterValidation) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  // Duplicate id.
  EXPECT_FALSE(RegisterPatientDoctorTable().ok);

  // Caller must be a peer.
  Json params = Json::MakeObject();
  params.Set("table_id", "X");
  params.Set("peers", Json::Array{Json(patient_.address().ToHex()),
                                  Json(doctor_.address().ToHex())});
  params.Set("view_schema", Json::MakeObject());
  params.Set("write_permission", Json::MakeObject());
  Receipt not_peer = Call(researcher_, "register_table", params);
  EXPECT_FALSE(not_peer.ok);
  EXPECT_NE(not_peer.error.find("must be one of the sharing peers"),
            std::string::npos);

  // Fewer than two peers.
  Json solo = params;
  solo.Set("table_id", "Y");
  solo.Set("peers", Json::Array{Json(doctor_.address().ToHex())});
  EXPECT_FALSE(Call(doctor_, "register_table", solo).ok);

  // Permission granted to a non-peer.
  Json bad_perm = params;
  bad_perm.Set("table_id", "Z");
  Json perms = Json::MakeObject();
  perms.Set("a1", Json::Array{Json(researcher_.address().ToHex())});
  bad_perm.Set("write_permission", std::move(perms));
  EXPECT_FALSE(Call(doctor_, "register_table", bad_perm).ok);
}

TEST_F(MetadataContractTest, PermittedUpdateCommitsAndNotifies) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  Receipt receipt =
      Call(doctor_, "request_update", UpdateParams("update", {"a4"}, "d1"));
  ASSERT_TRUE(receipt.ok) << receipt.error;
  ASSERT_EQ(receipt.events.size(), 1u);
  EXPECT_EQ(receipt.events[0].name, "UpdateCommitted");
  EXPECT_EQ(*receipt.events[0].payload.GetInt("version"), 2);
  EXPECT_EQ(*receipt.events[0].payload.GetString("updater"),
            doctor_.address().ToHex());

  Json entry = Entry();
  EXPECT_EQ(*entry.GetInt("version"), 2);
  EXPECT_EQ(*entry.GetString("content_digest"), "d1");
  // The patient owes an ack.
  EXPECT_EQ(entry.At("pending_acks").size(), 1u);
}

TEST_F(MetadataContractTest, Fig3PermissionMatrixEnforced) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  // Patient may update clinical data (a2)...
  EXPECT_TRUE(
      Call(patient_, "request_update", UpdateParams("update", {"a2"}, "d1"))
          .ok);
  Receipt ack = Call(doctor_, "ack_update", AckParams(2, "d1"));
  ASSERT_TRUE(ack.ok) << ack.error;

  // ...but NOT the dosage (a4) — Fig. 3 grants that to the doctor only.
  Receipt denied =
      Call(patient_, "request_update", UpdateParams("update", {"a4"}, "d2"));
  EXPECT_FALSE(denied.ok);
  EXPECT_NE(denied.error.find("may not write attribute 'a4'"),
            std::string::npos);

  // A multi-attribute update needs permission on EVERY attribute.
  Receipt mixed = Call(patient_, "request_update",
                       UpdateParams("update", {"a2", "a4"}, "d2"));
  EXPECT_FALSE(mixed.ok);

  // A non-peer (researcher) is rejected outright.
  Receipt outsider = Call(researcher_, "request_update",
                          UpdateParams("update", {"a2"}, "d2"));
  EXPECT_FALSE(outsider.ok);
  EXPECT_NE(outsider.error.find("not a sharing peer"), std::string::npos);

  // An attribute with no permission entry at all is not writable.
  Receipt unknown_attr = Call(doctor_, "request_update",
                              UpdateParams("update", {"a9"}, "d2"));
  EXPECT_FALSE(unknown_attr.ok);
}

TEST_F(MetadataContractTest, AllPeersSyncedGateBlocksConcurrentUpdates) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  ASSERT_TRUE(
      Call(doctor_, "request_update", UpdateParams("update", {"a4"}, "d1"))
          .ok);

  // Until the patient acks, NOBODY may update again — not even the doctor.
  Receipt blocked =
      Call(doctor_, "request_update", UpdateParams("update", {"a1"}, "d2"));
  EXPECT_FALSE(blocked.ok);
  EXPECT_NE(blocked.error.find("not yet fetched by all peers"),
            std::string::npos);

  // The ack clears the gate and emits AllPeersSynced.
  Receipt ack = Call(patient_, "ack_update", AckParams(2, "d1"));
  ASSERT_TRUE(ack.ok) << ack.error;
  ASSERT_EQ(ack.events.size(), 2u);
  EXPECT_EQ(ack.events[0].name, "PeerSynced");
  EXPECT_EQ(ack.events[1].name, "AllPeersSynced");

  EXPECT_TRUE(
      Call(doctor_, "request_update", UpdateParams("update", {"a1"}, "d2"))
          .ok);
}

TEST_F(MetadataContractTest, AckValidation) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  ASSERT_TRUE(
      Call(doctor_, "request_update", UpdateParams("update", {"a4"}, "d1"))
          .ok);

  // Wrong version.
  EXPECT_FALSE(Call(patient_, "ack_update", AckParams(9, "d1")).ok);
  // Wrong digest (stale or tampered fetch).
  Receipt bad_digest = Call(patient_, "ack_update", AckParams(2, "wrong"));
  EXPECT_FALSE(bad_digest.ok);
  EXPECT_NE(bad_digest.error.find("digest mismatch"), std::string::npos);
  // The updater has no outstanding ack.
  EXPECT_FALSE(Call(doctor_, "ack_update", AckParams(2, "d1")).ok);
  // Correct ack succeeds exactly once.
  EXPECT_TRUE(Call(patient_, "ack_update", AckParams(2, "d1")).ok);
  EXPECT_FALSE(Call(patient_, "ack_update", AckParams(2, "d1")).ok);
}

TEST_F(MetadataContractTest, MembershipPermissionGatesInsertDelete) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  // Doctor holds membership permission.
  ASSERT_TRUE(
      Call(doctor_, "request_update", UpdateParams("insert", {}, "d1")).ok);
  ASSERT_TRUE(Call(patient_, "ack_update", AckParams(2, "d1")).ok);
  // Patient does not.
  Receipt denied =
      Call(patient_, "request_update", UpdateParams("delete", {}, "d2"));
  EXPECT_FALSE(denied.ok);
  EXPECT_NE(denied.error.find("may not delete rows"), std::string::npos);
}

TEST_F(MetadataContractTest, ReplaceKindNeedsMembershipAndAttributes) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  // Doctor: membership + write on a4 -> allowed.
  ASSERT_TRUE(
      Call(doctor_, "request_update", UpdateParams("replace", {"a4"}, "d1"))
          .ok);
  ASSERT_TRUE(Call(patient_, "ack_update", AckParams(2, "d1")).ok);
  // Doctor with an attribute he cannot write -> denied.
  EXPECT_FALSE(
      Call(doctor_, "request_update", UpdateParams("replace", {"a9"}, "d2"))
          .ok);
  // Patient lacks membership permission entirely.
  EXPECT_FALSE(
      Call(patient_, "request_update", UpdateParams("replace", {"a2"}, "d2"))
          .ok);
}

TEST_F(MetadataContractTest, UnknownKindAndTableRejected) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  EXPECT_FALSE(
      Call(doctor_, "request_update", UpdateParams("mutate", {}, "d")).ok);
  Json params = UpdateParams("update", {"a4"}, "d");
  params.Set("table_id", "GHOST");
  EXPECT_FALSE(Call(doctor_, "request_update", params).ok);
}

TEST_F(MetadataContractTest, ChangePermissionByAuthorityOnly) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);

  // The paper's example: Doctor grants Patient write on Dosage (a4).
  Json grant = Json::MakeObject();
  grant.Set("table_id", "D13&D31");
  grant.Set("attribute", "a4");
  grant.Set("peer", patient_.address().ToHex());
  grant.Set("grant", true);
  Receipt granted = Call(doctor_, "change_permission", grant);
  ASSERT_TRUE(granted.ok) << granted.error;
  EXPECT_EQ(granted.events[0].name, "PermissionChanged");

  // Now the patient CAN update the dosage.
  EXPECT_TRUE(
      Call(patient_, "request_update", UpdateParams("update", {"a4"}, "d1"))
          .ok);
  ASSERT_TRUE(Call(doctor_, "ack_update", AckParams(2, "d1")).ok);

  // The patient (not authority) cannot change permissions.
  Json self_serve = grant;
  self_serve.Set("attribute", "a1");
  EXPECT_FALSE(Call(patient_, "change_permission", self_serve).ok);

  // Revocation works.
  Json revoke = grant;
  revoke.Set("grant", false);
  ASSERT_TRUE(Call(doctor_, "change_permission", revoke).ok);
  EXPECT_FALSE(
      Call(patient_, "request_update", UpdateParams("update", {"a4"}, "d2"))
          .ok);

  // Granting to a non-peer fails.
  Json non_peer = grant;
  non_peer.Set("peer", researcher_.address().ToHex());
  EXPECT_FALSE(Call(doctor_, "change_permission", non_peer).ok);
}

TEST_F(MetadataContractTest, MembershipPermissionViaRowsKey) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  Json grant = Json::MakeObject();
  grant.Set("table_id", "D13&D31");
  grant.Set("attribute", MetadataContract::kRowsPermission);
  grant.Set("peer", patient_.address().ToHex());
  grant.Set("grant", true);
  ASSERT_TRUE(Call(doctor_, "change_permission", grant).ok);
  EXPECT_TRUE(
      Call(patient_, "request_update", UpdateParams("insert", {}, "d1")).ok);
}

TEST_F(MetadataContractTest, SetAuthorityTransfersControl) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  Json params = Json::MakeObject();
  params.Set("table_id", "D13&D31");
  params.Set("new_authority", patient_.address().ToHex());
  ASSERT_TRUE(Call(doctor_, "set_authority", params).ok);

  // The doctor lost the authority...
  Json grant = Json::MakeObject();
  grant.Set("table_id", "D13&D31");
  grant.Set("attribute", "a4");
  grant.Set("peer", patient_.address().ToHex());
  grant.Set("grant", true);
  EXPECT_FALSE(Call(doctor_, "change_permission", grant).ok);
  // ...and the patient gained it.
  EXPECT_TRUE(Call(patient_, "change_permission", grant).ok);

  // Authority must be a peer.
  Json bad = Json::MakeObject();
  bad.Set("table_id", "D13&D31");
  bad.Set("new_authority", researcher_.address().ToHex());
  EXPECT_FALSE(Call(patient_, "set_authority", bad).ok);
}

TEST_F(MetadataContractTest, LastUpdateTimeTracksBlockTimestamp) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  int64_t t0 = *Entry().GetInt("last_update_time");
  ASSERT_TRUE(
      Call(doctor_, "request_update", UpdateParams("update", {"a4"}, "d1"))
          .ok);
  int64_t t1 = *Entry().GetInt("last_update_time");
  EXPECT_GT(t1, t0);
}

TEST_F(MetadataContractTest, ListTablesAndGetEntry) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  Result<Json> tables = host_.StaticCall(contract_, "list_tables",
                                         Json::MakeObject(),
                                         doctor_.address());
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 1u);
  EXPECT_EQ(tables->AsArray()[0].AsString(), "D13&D31");

  Json missing = Json::MakeObject();
  missing.Set("table_id", "GHOST");
  EXPECT_FALSE(host_.StaticCall(contract_, "get_entry", missing,
                                doctor_.address())
                   .ok());
  // Unknown method.
  EXPECT_FALSE(host_.StaticCall(contract_, "frobnicate", Json::MakeObject(),
                                doctor_.address())
                   .ok());
}

TEST_F(MetadataContractTest, StateSnapshotRoundTrip) {
  ASSERT_TRUE(RegisterPatientDoctorTable().ok);
  ASSERT_TRUE(
      Call(doctor_, "request_update", UpdateParams("update", {"a4"}, "d1"))
          .ok);
  MetadataContract original;
  MetadataContract restored;
  Json snapshot = *host_.StaticCall(contract_, "get_entry", [] {
    Json p = Json::MakeObject();
    p.Set("table_id", "D13&D31");
    return p;
  }(), doctor_.address());
  // Round-trip the full contract state through snapshot/restore.
  // (Exercised on a fresh instance so the host's rollback path is covered
  // structurally by contracts_host_test.)
  Json full = Json::MakeObject();
  full.Set("D13&D31", snapshot);
  ASSERT_TRUE(restored.RestoreState(full).ok());
  EXPECT_EQ(restored.StateSnapshot(), full);
  EXPECT_FALSE(restored.RestoreState(Json(1)).ok());
}

TEST(ConflictKeyTest, ExtractsTableIdFromUpdates) {
  crypto::KeyPair key = crypto::KeyPair::FromSeed("someone");
  chain::Transaction tx;
  tx.from = key.address();
  tx.to = crypto::KeyPair::FromSeed("contract").address();
  tx.method = "request_update";
  Json params = Json::MakeObject();
  params.Set("table_id", "D23&D32");
  tx.params = params;
  std::optional<std::string> conflict_key = SharedDataConflictKey(tx);
  ASSERT_TRUE(conflict_key.has_value());
  EXPECT_NE(conflict_key->find("D23&D32"), std::string::npos);

  tx.method = "ack_update";
  EXPECT_FALSE(SharedDataConflictKey(tx).has_value());
  tx.method = "request_update";
  tx.params = Json::MakeObject();  // no table_id
  EXPECT_FALSE(SharedDataConflictKey(tx).has_value());
}

}  // namespace
}  // namespace medsync::contracts
