// Fig. 5 under adversity: the full medication-rename cascade must converge
// byte-identically while half of all messages are dropped, while the
// researcher is partitioned away mid-cascade (healing only after several
// block rounds), and across repeated partition/heal cycles. Convergence is
// carried by the fault-tolerance layer — reliable channels, peer-level
// fetch retries, and the periodic catch-up reconciliation — and the chain
// keeps a gapless, fully acked audit trail of every round.

#include <gtest/gtest.h>

#include "core/audit.h"
#include "core/peer.h"
#include "core/scenario.h"
#include "medical/records.h"

namespace medsync::core {
namespace {

using medical::kClinicalData;
using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using relational::Table;
using relational::Value;

constexpr char kPD[] = "D13&D31";  // patient <-> doctor
constexpr char kDR[] = "D23&D32";  // doctor <-> researcher

std::unique_ptr<ClinicScenario> MakeClinic(double drop_probability) {
  ScenarioOptions options;
  options.drop_probability = drop_probability;
  Result<std::unique_ptr<ClinicScenario>> scenario =
      ClinicScenario::Create(options);
  EXPECT_TRUE(scenario.ok()) << scenario.status();
  return std::move(*scenario);
}

/// Both copies of both shared tables agree, pairwise and byte-identically.
void ExpectConverged(ClinicScenario& clinic) {
  EXPECT_EQ(*clinic.patient().ReadSharedTable(kPD),
            *clinic.doctor().ReadSharedTable(kPD));
  EXPECT_EQ(*clinic.doctor().ReadSharedTable(kDR),
            *clinic.researcher().ReadSharedTable(kDR));
  for (const char* table : {kPD, kDR}) {
    EXPECT_EQ(clinic.Entry(table)->At("pending_acks").size(), 0u) << table;
  }
}

/// The chain's history of `table_id` has no gaps: every version bump from
/// 1 to `version` is a committed request_update, each answered by at least
/// one committed ack_update.
void ExpectGaplessAudit(ClinicScenario& clinic, const std::string& table_id,
                        uint64_t version) {
  std::vector<AuditRecord> trail = BuildAuditTrail(
      clinic.node(0).blockchain(), clinic.node(0).host(), table_id);
  size_t updates = 0, acks = 0;
  for (const AuditRecord& record : trail) {
    if (!record.committed) continue;
    if (record.method == "request_update") ++updates;
    if (record.method == "ack_update") ++acks;
  }
  EXPECT_EQ(updates, version - 1) << "audit gap in " << table_id;
  EXPECT_GE(acks, updates) << "unacked round in " << table_id;
}

TEST(PartitionHealTest, Fig5CascadeConvergesUnderHeavyLoss) {
  // 50% of ALL steady-state messages are dropped — peer traffic and chain
  // gossip alike. The rename cascade (doctor's a1 touches BOTH shared
  // views) still converges in bounded simulated time.
  auto clinic = MakeClinic(/*drop_probability=*/0.5);

  ASSERT_TRUE(clinic->doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)},
                                         kMedicationName,
                                         Value::String("Naproxen"))
                  .ok());
  ASSERT_TRUE(clinic->SettleAll().ok());

  EXPECT_EQ(*clinic->Entry(kPD)->GetInt("version"), 2);
  EXPECT_EQ(*clinic->Entry(kDR)->GetInt("version"), 2);
  ExpectConverged(*clinic);
  // The rename reached the researcher's own source through the cascade.
  EXPECT_TRUE(clinic->researcher().database().Snapshot("D2")->Contains(
      {Value::String("Naproxen")}));

  // It was genuinely lossy: the reliability layer had to work for this.
  Json counters = clinic->MetricsSnapshot().At("counters");
  EXPECT_GT(counters.At("net.retries").AsInt(), 0);
  EXPECT_GT(counters.At("net.acks").AsInt(), 0);
  EXPECT_GT(clinic->network().stats().dropped, 0u);
}

TEST(PartitionHealTest, ResearcherPartitionedMidFig5CatchesUpAfterHeal) {
  // The acceptance scenario: 50% drop AND the researcher cut off from both
  // other peers the moment the cascade starts, healing only after the
  // partition has outlived several block rounds and the reliable channel's
  // entire retry budget — so catch-up, not retransmission, must close the
  // gap.
  auto clinic = MakeClinic(/*drop_probability=*/0.5);

  clinic->network().SetLinkDown("researcher", "doctor", true);
  clinic->network().SetLinkDown("researcher", "patient", true);
  ASSERT_TRUE(clinic->doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)},
                                         kMedicationName,
                                         Value::String("Healed-1"))
                  .ok());
  // While the researcher is dark, the patient<->doctor half of the world
  // keeps making progress. (Wait for the lossy first round to close on
  // the patient's side before it starts its own.)
  for (int i = 0;
       i < 60 && clinic->patient().GetSyncState(kPD)->version < 2; ++i) {
    clinic->simulator().RunFor(1 * kMicrosPerSecond);
  }
  ASSERT_EQ(clinic->patient().GetSyncState(kPD)->version, 2u);
  ASSERT_TRUE(clinic->patient()
                  .UpdateSharedAttribute(kPD, {Value::Int(189)},
                                         kClinicalData,
                                         Value::String("during partition"))
                  .ok());
  clinic->simulator().RunFor(30 * kMicrosPerSecond);

  // The doctor<->researcher table is stuck mid-round: proposed on-chain,
  // never acked by the partitioned researcher.
  EXPECT_EQ(*clinic->Entry(kDR)->GetInt("version"), 2);
  EXPECT_EQ(clinic->Entry(kDR)->At("pending_acks").size(), 1u);

  clinic->network().SetLinkDown("researcher", "doctor", false);
  clinic->network().SetLinkDown("researcher", "patient", false);
  ASSERT_TRUE(clinic->SettleAll().ok());

  EXPECT_EQ(*clinic->Entry(kPD)->GetInt("version"), 3);
  EXPECT_EQ(*clinic->Entry(kDR)->GetInt("version"), 2);
  ExpectConverged(*clinic);
  EXPECT_TRUE(clinic->researcher().database().Snapshot("D2")->Contains(
      {Value::String("Healed-1")}));
  ExpectGaplessAudit(*clinic, kPD, 3);
  ExpectGaplessAudit(*clinic, kDR, 2);

  // The partition outlasted the channel's retry budget, so at least one
  // reliable send was abandoned — and catch-up still reconciled.
  Json counters = clinic->MetricsSnapshot().At("counters");
  EXPECT_GE(counters.At("net.gave_up").AsInt(), 1);
}

TEST(PartitionHealTest, RepeatedPartitionRoundsAllConverge) {
  // Three cascade rounds, each with the researcher partitioned for part of
  // the round; every heal must fully reconcile before the next cut.
  auto clinic = MakeClinic(/*drop_probability=*/0.25);

  const char* renames[] = {"Round-1", "Round-2", "Round-3"};
  uint64_t version = 1;
  for (const char* rename : renames) {
    clinic->network().SetLinkDown("researcher", "doctor", true);
    ASSERT_TRUE(clinic->doctor()
                    .UpdateSharedAttribute(kPD, {Value::Int(188)},
                                           kMedicationName,
                                           Value::String(rename))
                    .ok());
    // The partition spans several block intervals mid-cascade.
    clinic->simulator().RunFor(4 * kMicrosPerSecond);
    clinic->network().SetLinkDown("researcher", "doctor", false);
    ASSERT_TRUE(clinic->SettleAll().ok());
    ++version;

    EXPECT_EQ(*clinic->Entry(kDR)->GetInt("version"),
              static_cast<int64_t>(version));
    ExpectConverged(*clinic);
    EXPECT_TRUE(clinic->researcher().database().Snapshot("D2")->Contains(
        {Value::String(rename)}))
        << rename;
  }
  ExpectGaplessAudit(*clinic, kPD, version);
  ExpectGaplessAudit(*clinic, kDR, version);
}

}  // namespace
}  // namespace medsync::core
