#include "chain/blockchain.h"

#include <gtest/gtest.h>

#include "common/threading/thread_pool.h"
#include "contracts/metadata_contract.h"

namespace medsync::chain {
namespace {

class BlockchainTest : public ::testing::Test {
 protected:
  BlockchainTest()
      : signer_(std::make_shared<crypto::KeyPair>(
            crypto::KeyPair::FromSeed("authority"))),
        sealer_({signer_->address()}, signer_),
        genesis_(Blockchain::MakeGenesis(1000)),
        chain_(genesis_, &sealer_, contracts::SharedDataConflictKey) {}

  Transaction MakeTx(const std::string& seed, uint64_t nonce,
                     const std::string& table_id = "") {
    crypto::KeyPair key = crypto::KeyPair::FromSeed(seed);
    Transaction tx;
    tx.from = key.address();
    tx.to = crypto::KeyPair::FromSeed("target").address();
    tx.nonce = nonce;
    tx.method = table_id.empty() ? "ack_update" : "request_update";
    Json params = Json::MakeObject();
    if (!table_id.empty()) params.Set("table_id", table_id);
    tx.params = std::move(params);
    tx.timestamp = 2000;
    tx.Sign(key);
    return tx;
  }

  Block MakeBlock(const Block& parent, std::vector<Transaction> txs,
                  Micros timestamp = 0) {
    Block block;
    block.header.height = parent.header.height + 1;
    block.header.parent = parent.header.Hash();
    block.header.timestamp =
        timestamp ? timestamp : parent.header.timestamp + 1;
    block.transactions = std::move(txs);
    block.header.merkle_root = block.ComputeMerkleRoot();
    EXPECT_TRUE(sealer_.Seal(&block).ok());
    return block;
  }

  std::shared_ptr<crypto::KeyPair> signer_;
  PoaSealer sealer_;
  Block genesis_;
  Blockchain chain_;
};

TEST_F(BlockchainTest, GenesisIsHead) {
  EXPECT_EQ(chain_.height(), 0u);
  EXPECT_EQ(chain_.head().header.Hash(), genesis_.header.Hash());
  EXPECT_EQ(chain_.block_count(), 1u);
}

TEST_F(BlockchainTest, AddValidBlockAdvancesHead) {
  Block b1 = MakeBlock(genesis_, {MakeTx("alice", 1)});
  ASSERT_TRUE(chain_.AddBlock(b1).ok());
  EXPECT_EQ(chain_.height(), 1u);
  EXPECT_EQ(chain_.head().header.Hash(), b1.header.Hash());
}

TEST_F(BlockchainTest, DuplicateBlockRejected) {
  Block b1 = MakeBlock(genesis_, {});
  ASSERT_TRUE(chain_.AddBlock(b1).ok());
  EXPECT_TRUE(chain_.AddBlock(b1).IsAlreadyExists());
}

TEST_F(BlockchainTest, OrphanBlockReportsNotFound) {
  Block b1 = MakeBlock(genesis_, {});
  Block b2 = MakeBlock(b1, {});
  EXPECT_TRUE(chain_.AddBlock(b2).IsNotFound());
  ASSERT_TRUE(chain_.AddBlock(b1).ok());
  EXPECT_TRUE(chain_.AddBlock(b2).ok());
  EXPECT_EQ(chain_.height(), 2u);
}

TEST_F(BlockchainTest, WrongHeightRejected) {
  Block bad = MakeBlock(genesis_, {});
  bad.header.height = 5;
  bad.header.merkle_root = bad.ComputeMerkleRoot();
  ASSERT_TRUE(sealer_.Seal(&bad).ok());
  EXPECT_TRUE(chain_.AddBlock(bad).IsInvalidArgument());
}

TEST_F(BlockchainTest, BadMerkleRootRejected) {
  Block bad = MakeBlock(genesis_, {MakeTx("alice", 1)});
  bad.transactions.push_back(MakeTx("bob", 1));  // root now stale
  EXPECT_TRUE(chain_.AddBlock(bad).IsCorruption());
}

TEST_F(BlockchainTest, BadSealRejected) {
  Block bad = MakeBlock(genesis_, {});
  bad.header.seal = crypto::KeyPair::FromSeed("impostor").Sign("x");
  Status s = chain_.AddBlock(bad);
  EXPECT_TRUE(s.IsPermissionDenied() || s.IsCorruption()) << s;
}

TEST_F(BlockchainTest, BadTransactionSignatureRejected) {
  Transaction tx = MakeTx("alice", 1);
  tx.params.Set("tampered", true);  // invalidates the signature
  Block bad = MakeBlock(genesis_, {tx});
  EXPECT_TRUE(chain_.AddBlock(bad).IsPermissionDenied());
}

TEST_F(BlockchainTest, TimestampBeforeParentRejected) {
  Block bad = MakeBlock(genesis_, {}, /*timestamp=*/500);  // < genesis 1000
  EXPECT_TRUE(chain_.AddBlock(bad).IsInvalidArgument());
}

TEST_F(BlockchainTest, ConflictRuleOneUpdatePerTablePerBlock) {
  // Two request_update transactions for the SAME shared table in one block
  // violate the paper's Section III-B rule.
  Block bad = MakeBlock(genesis_, {MakeTx("alice", 1, "D13&D31"),
                                   MakeTx("bob", 1, "D13&D31")});
  EXPECT_TRUE(chain_.AddBlock(bad).IsConflict());

  // Different tables in one block are fine.
  Block good = MakeBlock(genesis_, {MakeTx("alice", 2, "D13&D31"),
                                    MakeTx("bob", 2, "D23&D32")});
  EXPECT_TRUE(chain_.AddBlock(good).ok());

  // Non-update transactions are exempt from the rule.
  Block acks = MakeBlock(good, {MakeTx("alice", 3), MakeTx("bob", 3)});
  EXPECT_TRUE(chain_.AddBlock(acks).ok());
}

TEST_F(BlockchainTest, DuplicateTransactionInBlockRejected) {
  Transaction tx = MakeTx("alice", 1);
  Block bad = MakeBlock(genesis_, {tx, tx});
  EXPECT_TRUE(chain_.AddBlock(bad).IsInvalidArgument());
}

TEST_F(BlockchainTest, TransactionReplayAcrossBlocksRejected) {
  Transaction tx = MakeTx("alice", 1);
  Block b1 = MakeBlock(genesis_, {tx});
  ASSERT_TRUE(chain_.AddBlock(b1).ok());
  Block b2 = MakeBlock(b1, {tx});
  EXPECT_TRUE(chain_.AddBlock(b2).IsAlreadyExists());
}

TEST_F(BlockchainTest, LongestChainForkChoice) {
  Block a1 = MakeBlock(genesis_, {MakeTx("alice", 1)});
  Block b1 = MakeBlock(genesis_, {MakeTx("bob", 1)});
  ASSERT_TRUE(chain_.AddBlock(a1).ok());
  ASSERT_TRUE(chain_.AddBlock(b1).ok());
  // Tie at height 1: head is the smaller hash (deterministic).
  std::string expected_head =
      std::min(a1.header.Hash().ToHex(), b1.header.Hash().ToHex());
  EXPECT_EQ(chain_.head().header.Hash().ToHex(), expected_head);

  // Extend the branch that lost the tie — it must now win by height.
  const Block& loser =
      (expected_head == a1.header.Hash().ToHex()) ? b1 : a1;
  Block b2 = MakeBlock(loser, {MakeTx("carol", 1)});
  ASSERT_TRUE(chain_.AddBlock(b2).ok());
  EXPECT_EQ(chain_.height(), 2u);
  EXPECT_EQ(chain_.head().header.Hash(), b2.header.Hash());
}

TEST_F(BlockchainTest, CanonicalChainAndLookups) {
  Block b1 = MakeBlock(genesis_, {MakeTx("alice", 1)});
  Block b2 = MakeBlock(b1, {MakeTx("bob", 1)});
  ASSERT_TRUE(chain_.AddBlock(b1).ok());
  ASSERT_TRUE(chain_.AddBlock(b2).ok());

  std::vector<const Block*> canonical = chain_.CanonicalChain();
  ASSERT_EQ(canonical.size(), 3u);
  EXPECT_EQ(canonical[0]->header.height, 0u);
  EXPECT_EQ(canonical[2]->header.Hash(), b2.header.Hash());

  EXPECT_EQ((*chain_.BlockByHeight(1))->header.Hash(), b1.header.Hash());
  EXPECT_FALSE(chain_.BlockByHeight(9).ok());
  EXPECT_TRUE(chain_.BlockByHash(b1.header.Hash()).ok());
  EXPECT_FALSE(chain_.BlockByHash(crypto::Sha256::Hash("ghost")).ok());

  const Transaction* found = nullptr;
  uint64_t height = 0;
  EXPECT_TRUE(
      chain_.FindTransaction(b2.transactions[0].Id(), &found, &height));
  EXPECT_EQ(height, 2u);
  EXPECT_FALSE(
      chain_.FindTransaction(crypto::Sha256::Hash("none"), nullptr, nullptr));
}

TEST_F(BlockchainTest, VerifyIntegrityPassesOnHonestChain) {
  Block b1 = MakeBlock(genesis_, {MakeTx("alice", 1)});
  ASSERT_TRUE(chain_.AddBlock(b1).ok());
  EXPECT_TRUE(chain_.VerifyIntegrity().ok());
}

TEST(PowSealerTest, SealsAndValidates) {
  PowSealer sealer(/*difficulty_bits=*/8);
  Block genesis = Blockchain::MakeGenesis(0);
  Blockchain chain(genesis, &sealer);

  Block block;
  block.header.height = 1;
  block.header.parent = genesis.header.Hash();
  block.header.timestamp = 1;
  block.header.merkle_root = block.ComputeMerkleRoot();
  ASSERT_TRUE(sealer.Seal(&block).ok());
  EXPECT_TRUE(MeetsDifficulty(block.header.Hash(), 8));
  EXPECT_TRUE(sealer.ValidateSeal(block.header).ok());
  EXPECT_TRUE(chain.AddBlock(block).ok());

  // A claimed-but-unmet difficulty fails.
  block.header.pow_nonce += 1;
  Status s = sealer.ValidateSeal(block.header);
  EXPECT_TRUE(s.IsCorruption()) << s;

  // Difficulty below the network minimum fails.
  BlockHeader weak = block.header;
  weak.difficulty = 4;
  EXPECT_TRUE(sealer.ValidateSeal(weak).IsInvalidArgument());
}

TEST(PowSealerTest, NonceExhaustionIsAnError) {
  // At 256 required zero bits no nonce can ever satisfy the target, so a
  // bounded search must come back with ResourceExhausted instead of
  // spinning through the 64-bit space forever.
  Block block;
  block.header.height = 1;
  block.header.timestamp = 1;
  block.header.merkle_root = block.ComputeMerkleRoot();

  PowSealer serial(/*difficulty_bits=*/256, /*pool=*/nullptr,
                   /*max_nonce=*/5000);
  Status s = serial.Seal(&block);
  EXPECT_TRUE(s.IsResourceExhausted()) << s;

  threading::ThreadPool pool(4);
  PowSealer parallel(/*difficulty_bits=*/256, &pool, /*max_nonce=*/5000);
  s = parallel.Seal(&block);
  EXPECT_TRUE(s.IsResourceExhausted()) << s;
}

TEST(PowSealerTest, BoundedSealStillFindsReachableNonces) {
  // The bound only fails the search when NO nonce within it works: an easy
  // difficulty whose first hit lies inside the bound still seals.
  PowSealer easy(/*difficulty_bits=*/4, /*pool=*/nullptr,
                 /*max_nonce=*/100000);
  Block block;
  block.header.height = 1;
  block.header.timestamp = 1;
  block.header.merkle_root = block.ComputeMerkleRoot();
  ASSERT_TRUE(easy.Seal(&block).ok());
  EXPECT_LE(block.header.pow_nonce, 100000u);
  EXPECT_TRUE(easy.ValidateSeal(block.header).ok());
}

TEST(PoaSealerTest, RoundRobinTurns) {
  auto k0 = std::make_shared<crypto::KeyPair>(crypto::KeyPair::FromSeed("a0"));
  auto k1 = std::make_shared<crypto::KeyPair>(crypto::KeyPair::FromSeed("a1"));
  std::vector<crypto::Address> authorities{k0->address(), k1->address()};
  PoaSealer sealer0(authorities, k0);
  PoaSealer sealer1(authorities, k1);

  Block block;
  block.header.height = 1;  // 1 % 2 == authority index 1
  block.header.merkle_root = block.ComputeMerkleRoot();
  EXPECT_TRUE(sealer0.Seal(&block).IsPermissionDenied());
  EXPECT_TRUE(sealer1.Seal(&block).ok());
  EXPECT_TRUE(sealer0.ValidateSeal(block.header).ok());  // anyone validates

  PoaSealer observer(authorities, nullptr);
  EXPECT_TRUE(observer.ValidateSeal(block.header).ok());
  EXPECT_TRUE(observer.Seal(&block).IsFailedPrecondition());
}

}  // namespace
}  // namespace medsync::chain
