#include "core/sync_manager.h"

#include <gtest/gtest.h>

#include "bx/lens_factory.h"
#include "medical/records.h"
#include "relational/query.h"

namespace medsync::core {
namespace {

using medical::kClinicalData;
using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using medical::kPatientId;
using relational::Table;
using relational::Value;

class SyncManagerTest : public ::testing::Test {
 protected:
  SyncManagerTest() : sync_(&db_, DependencyStrategy::kAnalyzeChange) {
    // Doctor-style source D3 plus two views: D31 (patient-facing) and D32
    // (researcher-facing), the Fig. 1 layout.
    Table full = medical::MakeFig1FullRecords();
    Table d3 = *relational::Project(
        full,
        {kPatientId, kMedicationName, kClinicalData, kMechanismOfAction,
         kDosage},
        {kPatientId});
    EXPECT_TRUE(db_.CreateTable("D3", d3.schema()).ok());
    EXPECT_TRUE(db_.ReplaceTable("D3", d3).ok());

    lens31_ = bx::MakeProjectLens(
        {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId});
    lens32_ = bx::MakeProjectLens({kMedicationName, kMechanismOfAction},
                                  {kMedicationName});

    Table d31 = *lens31_->Get(d3);
    Table d32 = *lens32_->Get(d3);
    EXPECT_TRUE(db_.CreateTable("D31", d31.schema()).ok());
    EXPECT_TRUE(db_.ReplaceTable("D31", d31).ok());
    EXPECT_TRUE(db_.CreateTable("D32", d32.schema()).ok());
    EXPECT_TRUE(db_.ReplaceTable("D32", d32).ok());
  }

  relational::Database db_;
  SyncManager sync_;
  bx::LensPtr lens31_, lens32_;
};

TEST_F(SyncManagerTest, RegisterValidatesBindings) {
  EXPECT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  EXPECT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_)
                  .IsAlreadyExists());
  EXPECT_TRUE(sync_.RegisterView("x", "GHOST", "D31", lens31_).IsNotFound());
  EXPECT_TRUE(sync_.RegisterView("y", "D3", "GHOST", lens31_).IsNotFound());
  EXPECT_TRUE(
      sync_.RegisterView("z", "D3", "D31", nullptr).IsInvalidArgument());
  // Mismatched view table schema.
  EXPECT_TRUE(sync_.RegisterView("w", "D3", "D32", lens31_)
                  .IsInvalidArgument());
  EXPECT_TRUE(sync_.HasView("D13&D31"));
  EXPECT_FALSE(sync_.HasView("nope"));
  EXPECT_EQ(sync_.ViewIds(), std::vector<std::string>{"D13&D31"});
}

TEST_F(SyncManagerTest, DeriveAndMaterialize) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  Result<Table> derived = sync_.DeriveView("D13&D31");
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(*derived, *db_.Snapshot("D31"));
  EXPECT_FALSE(sync_.DeriveView("nope").ok());

  // Change the source; materialize refreshes the view table.
  ASSERT_TRUE(db_.UpdateAttribute("D3", {Value::Int(188)}, kDosage,
                                  Value::String("changed"))
                  .ok());
  ASSERT_TRUE(sync_.MaterializeView("D13&D31").ok());
  EXPECT_EQ(db_.Snapshot("D31")->Get({Value::Int(188)})->at(3).AsString(),
            "changed");
}

TEST_F(SyncManagerTest, PutViewIntoSourceReportsChange) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(db_.UpdateAttribute("D31", {Value::Int(188)}, kDosage,
                                  Value::String("put me"))
                  .ok());
  Result<bx::SourceChange> change = sync_.PutViewIntoSource("D13&D31");
  ASSERT_TRUE(change.ok()) << change.status();
  EXPECT_EQ(change->changed_attributes, std::set<std::string>{kDosage});
  EXPECT_FALSE(change->membership_changed);
  EXPECT_EQ(db_.Snapshot("D3")->Get({Value::Int(188)})->at(4).AsString(),
            "put me");
}

TEST_F(SyncManagerTest, FindAffectedViewsDisjointChangeSkips) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(sync_.RegisterView("D23&D32", "D3", "D32", lens32_).ok());

  // A mechanism-of-action change (from researcher side) does not touch
  // D31's attributes.
  Table before = *db_.Snapshot("D3");
  ASSERT_TRUE(db_.UpdateAttribute("D3", {Value::Int(188)},
                                  kMechanismOfAction,
                                  Value::String("new mechanism"))
                  .ok());
  Result<std::vector<ViewRefresh>> refreshes =
      sync_.FindAffectedViews("D3", before, /*exclude=*/"D23&D32");
  ASSERT_TRUE(refreshes.ok()) << refreshes.status();
  EXPECT_TRUE(refreshes->empty());
  // The analyze strategy never even ran D31's get.
  EXPECT_EQ(sync_.gets_skipped(), 1u);
}

TEST_F(SyncManagerTest, FindAffectedViewsDetectsOverlap) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(sync_.RegisterView("D23&D32", "D3", "D32", lens32_).ok());

  // A medication-name change reaches BOTH views; excluding the initiating
  // one must report exactly the other.
  Table before = *db_.Snapshot("D3");
  ASSERT_TRUE(db_.UpdateAttribute("D3", {Value::Int(188)}, kMedicationName,
                                  Value::String("Naproxen"))
                  .ok());
  Result<std::vector<ViewRefresh>> refreshes =
      sync_.FindAffectedViews("D3", before, /*exclude=*/"D13&D31");
  ASSERT_TRUE(refreshes.ok());
  ASSERT_EQ(refreshes->size(), 1u);
  EXPECT_EQ((*refreshes)[0].table_id, "D23&D32");
  // Key change in D32 (keyed by medication name) = membership change.
  EXPECT_TRUE((*refreshes)[0].membership_changed);
}

TEST_F(SyncManagerTest, AlwaysStrategyRederivesButAgreesWithAnalyze) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(sync_.RegisterView("D23&D32", "D3", "D32", lens32_).ok());
  sync_.set_strategy(DependencyStrategy::kAlwaysRederive);

  Table before = *db_.Snapshot("D3");
  ASSERT_TRUE(db_.UpdateAttribute("D3", {Value::Int(188)},
                                  kMechanismOfAction,
                                  Value::String("other mechanism"))
                  .ok());
  Result<std::vector<ViewRefresh>> refreshes =
      sync_.FindAffectedViews("D3", before, "");
  ASSERT_TRUE(refreshes.ok());
  // D32 changed; D31 did not — same conclusion as analyze. Under the default
  // incremental maintenance D31 (row-aligned project) is handled by a delta
  // push that produces no view rows, while D32 (grouped project) has no
  // incremental translation and falls back to a full get.
  ASSERT_EQ(refreshes->size(), 1u);
  EXPECT_EQ((*refreshes)[0].table_id, "D23&D32");
  EXPECT_EQ(sync_.gets_skipped(), 0u);
  EXPECT_EQ(sync_.gets_executed(), 1u);
  EXPECT_EQ(sync_.delta_pushes(), 1u);
  EXPECT_EQ(sync_.full_fallbacks(), 1u);
}

TEST_F(SyncManagerTest, FullGetModeExecutesEveryGet) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(sync_.RegisterView("D23&D32", "D3", "D32", lens32_).ok());
  sync_.set_strategy(DependencyStrategy::kAlwaysRederive);
  sync_.set_maintenance(ViewMaintenance::kFullGet);

  Table before = *db_.Snapshot("D3");
  ASSERT_TRUE(db_.UpdateAttribute("D3", {Value::Int(188)},
                                  kMechanismOfAction,
                                  Value::String("other mechanism"))
                  .ok());
  Result<std::vector<ViewRefresh>> refreshes =
      sync_.FindAffectedViews("D3", before, "");
  ASSERT_TRUE(refreshes.ok());
  ASSERT_EQ(refreshes->size(), 1u);
  EXPECT_EQ((*refreshes)[0].table_id, "D23&D32");
  EXPECT_EQ(sync_.gets_executed(), 2u);
  EXPECT_EQ(sync_.delta_pushes(), 0u);
  EXPECT_EQ(sync_.full_fallbacks(), 0u);
}

TEST_F(SyncManagerTest, IncrementalAndFullGetAgreeOnViewState) {
  // The same source change, maintained incrementally and via full gets,
  // must leave byte-identical view tables and report identical refreshes.
  auto run = [&](ViewMaintenance mode, relational::Database* db,
                 std::vector<ViewRefresh>* out) {
    SyncManager sync(db, DependencyStrategy::kAlwaysRederive);
    sync.set_maintenance(mode);
    ASSERT_TRUE(sync.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
    ASSERT_TRUE(sync.RegisterView("D23&D32", "D3", "D32", lens32_).ok());
    Table before = *db->Snapshot("D3");
    ASSERT_TRUE(db->UpdateAttribute("D3", {Value::Int(188)}, kMedicationName,
                                    Value::String("Naproxen"))
                    .ok());
    ASSERT_TRUE(db->UpdateAttribute("D3", {Value::Int(189)}, kDosage,
                                    Value::String("20mg"))
                    .ok());
    Result<std::vector<ViewRefresh>> refreshes =
        sync.FindAffectedViews("D3", before, "");
    ASSERT_TRUE(refreshes.ok()) << refreshes.status();
    for (const ViewRefresh& refresh : *refreshes) {
      ASSERT_TRUE(sync.ApplyRefresh(refresh).ok());
    }
    *out = std::move(*refreshes);
  };

  relational::Database full_db;
  {
    SCOPED_TRACE("seed full db");
    for (const char* name : {"D3", "D31", "D32"}) {
      Table t = *db_.Snapshot(name);
      ASSERT_TRUE(full_db.CreateTable(name, t.schema()).ok());
      ASSERT_TRUE(full_db.ReplaceTable(name, t).ok());
    }
  }
  std::vector<ViewRefresh> inc_refreshes, full_refreshes;
  run(ViewMaintenance::kIncremental, &db_, &inc_refreshes);
  run(ViewMaintenance::kFullGet, &full_db, &full_refreshes);

  for (const char* name : {"D3", "D31", "D32"}) {
    EXPECT_EQ(*db_.Snapshot(name), *full_db.Snapshot(name)) << name;
  }
  ASSERT_EQ(inc_refreshes.size(), full_refreshes.size());
  for (size_t i = 0; i < inc_refreshes.size(); ++i) {
    EXPECT_EQ(inc_refreshes[i].table_id, full_refreshes[i].table_id);
    EXPECT_EQ(inc_refreshes[i].new_view, full_refreshes[i].new_view);
    EXPECT_EQ(inc_refreshes[i].changed_attributes,
              full_refreshes[i].changed_attributes);
    EXPECT_EQ(inc_refreshes[i].written_attributes,
              full_refreshes[i].written_attributes);
    EXPECT_EQ(inc_refreshes[i].membership_changed,
              full_refreshes[i].membership_changed);
  }
}

TEST_F(SyncManagerTest, InsertOnlyChangeReportsInsertedAttributes) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  Table before = *db_.Snapshot("D3");
  ASSERT_TRUE(db_.Insert("D3", {Value::Int(200), Value::String("Aspirin"),
                                Value::String("headache"),
                                Value::String("MeA9"), Value::String("5mg")})
                  .ok());
  Result<std::vector<ViewRefresh>> refreshes =
      sync_.FindAffectedViews("D3", before, "");
  ASSERT_TRUE(refreshes.ok()) << refreshes.status();
  ASSERT_EQ(refreshes->size(), 1u);
  const ViewRefresh& refresh = (*refreshes)[0];
  EXPECT_TRUE(refresh.membership_changed);
  // The analysis-facing attribute set names the inserted row's non-null
  // attributes (satellite: an insert-only change must not look empty)...
  EXPECT_EQ(refresh.changed_attributes,
            (std::vector<std::string>{kPatientId, kMedicationName,
                                      kClinicalData, kDosage}));
  // ...while the contract-facing set stays empty: inserts are governed by
  // the membership permission, not per-attribute write permissions.
  EXPECT_TRUE(refresh.written_attributes.empty());
  ASSERT_TRUE(sync_.ApplyRefresh(refresh).ok());
  EXPECT_TRUE(db_.Snapshot("D31")->Contains({Value::Int(200)}));
}

TEST_F(SyncManagerTest, StaleViewFallsBackToFullGet) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  // Simulate a view that missed a cascade (e.g. a denied update elsewhere):
  // a pushed delta would preserve the stale rows, so the manager must heal
  // it with a full get instead.
  ASSERT_TRUE(sync_.SetViewStale("D13&D31", true).ok());
  Table before = *db_.Snapshot("D3");
  ASSERT_TRUE(db_.UpdateAttribute("D3", {Value::Int(188)}, kDosage,
                                  Value::String("30mg"))
                  .ok());
  Result<std::vector<ViewRefresh>> refreshes =
      sync_.FindAffectedViews("D3", before, "");
  ASSERT_TRUE(refreshes.ok()) << refreshes.status();
  ASSERT_EQ(refreshes->size(), 1u);
  EXPECT_EQ(sync_.full_fallbacks(), 1u);
  EXPECT_EQ(sync_.delta_pushes(), 0u);
  ASSERT_TRUE(sync_.ApplyRefresh((*refreshes)[0]).ok());
  ASSERT_TRUE(sync_.SetViewStale("D13&D31", false).ok());
  EXPECT_EQ(db_.Snapshot("D31")->Get({Value::Int(188)})->at(3).AsString(),
            "30mg");
}

TEST_F(SyncManagerTest, ApplyViewContent) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  Table replacement = *db_.Snapshot("D31");
  ASSERT_TRUE(replacement
                  .UpdateAttribute({Value::Int(189)}, kClinicalData,
                                   Value::String("fetched content"))
                  .ok());
  ASSERT_TRUE(sync_.ApplyViewContent("D13&D31", replacement).ok());
  EXPECT_EQ(*db_.Snapshot("D31"), replacement);
  EXPECT_FALSE(sync_.ApplyViewContent("nope", replacement).ok());
}

TEST_F(SyncManagerTest, RoundTripPutThenDeriveIsConsistent) {
  // PutGet at the manager level: put a view edit into the source, then
  // re-derive — must reproduce the edited view exactly.
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(db_.UpdateAttribute("D31", {Value::Int(188)}, kClinicalData,
                                  Value::String("edited"))
                  .ok());
  Table edited_view = *db_.Snapshot("D31");
  ASSERT_TRUE(sync_.PutViewIntoSource("D13&D31").ok());
  Result<Table> rederived = sync_.DeriveView("D13&D31");
  ASSERT_TRUE(rederived.ok());
  EXPECT_EQ(*rederived, edited_view);
}

}  // namespace
}  // namespace medsync::core
