#include "core/sync_manager.h"

#include <gtest/gtest.h>

#include "bx/lens_factory.h"
#include "medical/records.h"
#include "relational/query.h"

namespace medsync::core {
namespace {

using medical::kClinicalData;
using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using medical::kPatientId;
using relational::Table;
using relational::Value;

class SyncManagerTest : public ::testing::Test {
 protected:
  SyncManagerTest() : sync_(&db_, DependencyStrategy::kAnalyzeChange) {
    // Doctor-style source D3 plus two views: D31 (patient-facing) and D32
    // (researcher-facing), the Fig. 1 layout.
    Table full = medical::MakeFig1FullRecords();
    Table d3 = *relational::Project(
        full,
        {kPatientId, kMedicationName, kClinicalData, kMechanismOfAction,
         kDosage},
        {kPatientId});
    EXPECT_TRUE(db_.CreateTable("D3", d3.schema()).ok());
    EXPECT_TRUE(db_.ReplaceTable("D3", d3).ok());

    lens31_ = bx::MakeProjectLens(
        {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId});
    lens32_ = bx::MakeProjectLens({kMedicationName, kMechanismOfAction},
                                  {kMedicationName});

    Table d31 = *lens31_->Get(d3);
    Table d32 = *lens32_->Get(d3);
    EXPECT_TRUE(db_.CreateTable("D31", d31.schema()).ok());
    EXPECT_TRUE(db_.ReplaceTable("D31", d31).ok());
    EXPECT_TRUE(db_.CreateTable("D32", d32.schema()).ok());
    EXPECT_TRUE(db_.ReplaceTable("D32", d32).ok());
  }

  relational::Database db_;
  SyncManager sync_;
  bx::LensPtr lens31_, lens32_;
};

TEST_F(SyncManagerTest, RegisterValidatesBindings) {
  EXPECT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  EXPECT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_)
                  .IsAlreadyExists());
  EXPECT_TRUE(sync_.RegisterView("x", "GHOST", "D31", lens31_).IsNotFound());
  EXPECT_TRUE(sync_.RegisterView("y", "D3", "GHOST", lens31_).IsNotFound());
  EXPECT_TRUE(
      sync_.RegisterView("z", "D3", "D31", nullptr).IsInvalidArgument());
  // Mismatched view table schema.
  EXPECT_TRUE(sync_.RegisterView("w", "D3", "D32", lens31_)
                  .IsInvalidArgument());
  EXPECT_TRUE(sync_.HasView("D13&D31"));
  EXPECT_FALSE(sync_.HasView("nope"));
  EXPECT_EQ(sync_.ViewIds(), std::vector<std::string>{"D13&D31"});
}

TEST_F(SyncManagerTest, DeriveAndMaterialize) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  Result<Table> derived = sync_.DeriveView("D13&D31");
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(*derived, *db_.Snapshot("D31"));
  EXPECT_FALSE(sync_.DeriveView("nope").ok());

  // Change the source; materialize refreshes the view table.
  ASSERT_TRUE(db_.UpdateAttribute("D3", {Value::Int(188)}, kDosage,
                                  Value::String("changed"))
                  .ok());
  ASSERT_TRUE(sync_.MaterializeView("D13&D31").ok());
  EXPECT_EQ(db_.Snapshot("D31")->Get({Value::Int(188)})->at(3).AsString(),
            "changed");
}

TEST_F(SyncManagerTest, PutViewIntoSourceReportsChange) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(db_.UpdateAttribute("D31", {Value::Int(188)}, kDosage,
                                  Value::String("put me"))
                  .ok());
  Result<bx::SourceChange> change = sync_.PutViewIntoSource("D13&D31");
  ASSERT_TRUE(change.ok()) << change.status();
  EXPECT_EQ(change->changed_attributes, std::set<std::string>{kDosage});
  EXPECT_FALSE(change->membership_changed);
  EXPECT_EQ(db_.Snapshot("D3")->Get({Value::Int(188)})->at(4).AsString(),
            "put me");
}

TEST_F(SyncManagerTest, FindAffectedViewsDisjointChangeSkips) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(sync_.RegisterView("D23&D32", "D3", "D32", lens32_).ok());

  // A mechanism-of-action change (from researcher side) does not touch
  // D31's attributes.
  Table before = *db_.Snapshot("D3");
  ASSERT_TRUE(db_.UpdateAttribute("D3", {Value::Int(188)},
                                  kMechanismOfAction,
                                  Value::String("new mechanism"))
                  .ok());
  Result<std::vector<ViewRefresh>> refreshes =
      sync_.FindAffectedViews("D3", before, /*exclude=*/"D23&D32");
  ASSERT_TRUE(refreshes.ok()) << refreshes.status();
  EXPECT_TRUE(refreshes->empty());
  // The analyze strategy never even ran D31's get.
  EXPECT_EQ(sync_.gets_skipped(), 1u);
}

TEST_F(SyncManagerTest, FindAffectedViewsDetectsOverlap) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(sync_.RegisterView("D23&D32", "D3", "D32", lens32_).ok());

  // A medication-name change reaches BOTH views; excluding the initiating
  // one must report exactly the other.
  Table before = *db_.Snapshot("D3");
  ASSERT_TRUE(db_.UpdateAttribute("D3", {Value::Int(188)}, kMedicationName,
                                  Value::String("Naproxen"))
                  .ok());
  Result<std::vector<ViewRefresh>> refreshes =
      sync_.FindAffectedViews("D3", before, /*exclude=*/"D13&D31");
  ASSERT_TRUE(refreshes.ok());
  ASSERT_EQ(refreshes->size(), 1u);
  EXPECT_EQ((*refreshes)[0].table_id, "D23&D32");
  // Key change in D32 (keyed by medication name) = membership change.
  EXPECT_TRUE((*refreshes)[0].membership_changed);
}

TEST_F(SyncManagerTest, AlwaysStrategyRederivesButAgreesWithAnalyze) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(sync_.RegisterView("D23&D32", "D3", "D32", lens32_).ok());
  sync_.set_strategy(DependencyStrategy::kAlwaysRederive);

  Table before = *db_.Snapshot("D3");
  ASSERT_TRUE(db_.UpdateAttribute("D3", {Value::Int(188)},
                                  kMechanismOfAction,
                                  Value::String("other mechanism"))
                  .ok());
  Result<std::vector<ViewRefresh>> refreshes =
      sync_.FindAffectedViews("D3", before, "");
  ASSERT_TRUE(refreshes.ok());
  // D32 changed; D31 did not — same conclusion as analyze, but both gets
  // executed.
  ASSERT_EQ(refreshes->size(), 1u);
  EXPECT_EQ((*refreshes)[0].table_id, "D23&D32");
  EXPECT_EQ(sync_.gets_skipped(), 0u);
  EXPECT_EQ(sync_.gets_executed(), 2u);
}

TEST_F(SyncManagerTest, ApplyViewContent) {
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  Table replacement = *db_.Snapshot("D31");
  ASSERT_TRUE(replacement
                  .UpdateAttribute({Value::Int(189)}, kClinicalData,
                                   Value::String("fetched content"))
                  .ok());
  ASSERT_TRUE(sync_.ApplyViewContent("D13&D31", replacement).ok());
  EXPECT_EQ(*db_.Snapshot("D31"), replacement);
  EXPECT_FALSE(sync_.ApplyViewContent("nope", replacement).ok());
}

TEST_F(SyncManagerTest, RoundTripPutThenDeriveIsConsistent) {
  // PutGet at the manager level: put a view edit into the source, then
  // re-derive — must reproduce the edited view exactly.
  ASSERT_TRUE(sync_.RegisterView("D13&D31", "D3", "D31", lens31_).ok());
  ASSERT_TRUE(db_.UpdateAttribute("D31", {Value::Int(188)}, kClinicalData,
                                  Value::String("edited"))
                  .ok());
  Table edited_view = *db_.Snapshot("D31");
  ASSERT_TRUE(sync_.PutViewIntoSource("D13&D31").ok());
  Result<Table> rederived = sync_.DeriveView("D13&D31");
  ASSERT_TRUE(rederived.ok());
  EXPECT_EQ(*rederived, edited_view);
}

}  // namespace
}  // namespace medsync::core
