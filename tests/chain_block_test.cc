#include "chain/block.h"

#include <gtest/gtest.h>

#include "chain/transaction.h"

namespace medsync::chain {
namespace {

Transaction MakeTx(const std::string& seed, uint64_t nonce) {
  crypto::KeyPair key = crypto::KeyPair::FromSeed(seed);
  Transaction tx;
  tx.from = key.address();
  tx.to = crypto::KeyPair::FromSeed("contract-holder").address();
  tx.nonce = nonce;
  tx.method = "request_update";
  Json params = Json::MakeObject();
  params.Set("table_id", "D13&D31");
  tx.params = std::move(params);
  tx.timestamp = 1234;
  tx.Sign(key);
  return tx;
}

TEST(TransactionTest, DigestIsStableAndSignatureIndependent) {
  Transaction tx = MakeTx("alice", 1);
  crypto::Hash256 digest = tx.Digest();
  EXPECT_EQ(digest, tx.Digest());
  Transaction unsigned_copy = tx;
  unsigned_copy.signature = crypto::Signature{};
  EXPECT_EQ(unsigned_copy.Digest(), digest);
}

TEST(TransactionTest, DigestChangesWithAnyField) {
  Transaction base = MakeTx("alice", 1);
  Transaction different_nonce = MakeTx("alice", 2);
  EXPECT_NE(base.Digest(), different_nonce.Digest());
  Transaction different_sender = MakeTx("bob", 1);
  EXPECT_NE(base.Digest(), different_sender.Digest());
}

TEST(TransactionTest, SignatureVerifies) {
  Transaction tx = MakeTx("alice", 1);
  EXPECT_TRUE(tx.VerifySignature());
}

TEST(TransactionTest, TamperedParamsFailVerification) {
  Transaction tx = MakeTx("alice", 1);
  tx.params.Set("table_id", "SOMETHING-ELSE");
  EXPECT_FALSE(tx.VerifySignature());
}

TEST(TransactionTest, SpoofedSenderFailsVerification) {
  Transaction tx = MakeTx("alice", 1);
  tx.from = crypto::KeyPair::FromSeed("bob").address();
  EXPECT_FALSE(tx.VerifySignature());
}

TEST(TransactionTest, JsonRoundTrip) {
  Transaction tx = MakeTx("alice", 7);
  Result<Transaction> back = Transaction::FromJson(tx.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->Id(), tx.Id());
  EXPECT_TRUE(back->VerifySignature());
  EXPECT_EQ(back->method, "request_update");
  EXPECT_FALSE(Transaction::FromJson(Json(1)).ok());
  Json missing = Json::MakeObject();
  EXPECT_FALSE(Transaction::FromJson(missing).ok());
}

TEST(BlockTest, MerkleRootCommitsToTransactions) {
  Block block;
  block.transactions.push_back(MakeTx("alice", 1));
  block.transactions.push_back(MakeTx("bob", 1));
  crypto::Hash256 root = block.ComputeMerkleRoot();
  std::swap(block.transactions[0], block.transactions[1]);
  EXPECT_NE(block.ComputeMerkleRoot(), root);  // order matters
  Block empty;
  EXPECT_TRUE(empty.ComputeMerkleRoot().IsZero());
}

TEST(BlockTest, HeaderHashChangesWithFields) {
  BlockHeader h;
  h.height = 1;
  h.timestamp = 99;
  crypto::Hash256 base = h.Hash();
  BlockHeader h2 = h;
  h2.pow_nonce = 1;
  EXPECT_NE(h2.Hash(), base);
  BlockHeader h3 = h;
  h3.timestamp = 100;
  EXPECT_NE(h3.Hash(), base);
}

TEST(BlockTest, SealDigestExcludesSeal) {
  BlockHeader h;
  h.height = 5;
  crypto::Hash256 digest = h.SealDigest();
  h.seal = crypto::KeyPair::FromSeed("sealer").Sign("anything");
  EXPECT_EQ(h.SealDigest(), digest);  // seal not part of pre-image
  EXPECT_NE(h.Hash(), digest);        // but part of the block hash
}

TEST(BlockTest, JsonRoundTrip) {
  Block block;
  block.header.height = 3;
  block.header.parent = crypto::Sha256::Hash("parent");
  block.header.timestamp = 777;
  block.transactions.push_back(MakeTx("alice", 1));
  block.transactions.push_back(MakeTx("alice", 2));
  block.header.merkle_root = block.ComputeMerkleRoot();

  Result<Block> back = Block::FromJson(block.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->header.Hash(), block.header.Hash());
  EXPECT_EQ(back->transactions.size(), 2u);
  EXPECT_EQ(back->ComputeMerkleRoot(), block.header.merkle_root);
}

TEST(DifficultyTest, LeadingZeroBits) {
  crypto::Hash256 h;  // all zero
  EXPECT_TRUE(MeetsDifficulty(h, 0));
  EXPECT_TRUE(MeetsDifficulty(h, 256));
  h.bytes[0] = 0x01;  // 7 leading zero bits
  EXPECT_TRUE(MeetsDifficulty(h, 7));
  EXPECT_FALSE(MeetsDifficulty(h, 8));
  h.bytes[0] = 0x00;
  h.bytes[1] = 0x80;  // exactly 8 leading zero bits
  EXPECT_TRUE(MeetsDifficulty(h, 8));
  EXPECT_FALSE(MeetsDifficulty(h, 9));
  h.bytes[1] = 0x00;
  h.bytes[2] = 0xff;  // 16 leading zero bits
  EXPECT_TRUE(MeetsDifficulty(h, 16));
  EXPECT_FALSE(MeetsDifficulty(h, 17));
}

}  // namespace
}  // namespace medsync::chain
