// End-to-end integration tests of the sharing protocol over the full stack
// (peers + BX + metadata contract + PoA chain + simulated network), built
// on the canonical Fig. 1 deployment.

#include "core/peer.h"

#include <gtest/gtest.h>

#include "core/audit.h"
#include "contracts/metadata_contract.h"
#include "core/scenario.h"
#include "medical/records.h"

namespace medsync::core {
namespace {

using medical::kClinicalData;
using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using relational::Table;
using relational::Value;

constexpr char kPD[] = "D13&D31";  // patient <-> doctor
constexpr char kDR[] = "D23&D32";  // doctor <-> researcher

class PeerScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScenarioOptions options;
    options.block_interval = 1 * kMicrosPerSecond;
    Result<std::unique_ptr<ClinicScenario>> scenario =
        ClinicScenario::Create(options);
    ASSERT_TRUE(scenario.ok()) << scenario.status();
    clinic_ = std::move(*scenario);
  }

  void Settle() {
    Status settled = clinic_->SettleAll();
    ASSERT_TRUE(settled.ok()) << settled;
  }

  std::unique_ptr<ClinicScenario> clinic_;
};

TEST_F(PeerScenarioTest, SetupMatchesFig1Distribution) {
  // Shared views agree across both holders.
  EXPECT_EQ(*clinic_->patient().ReadSharedTable(kPD),
            *clinic_->doctor().ReadSharedTable(kPD));
  EXPECT_EQ(*clinic_->doctor().ReadSharedTable(kDR),
            *clinic_->researcher().ReadSharedTable(kDR));

  // Both shared tables are registered on-chain with version 1 and matching
  // digests.
  Json entry = *clinic_->Entry(kPD);
  EXPECT_EQ(*entry.GetInt("version"), 1);
  EXPECT_EQ(*entry.GetString("content_digest"),
            clinic_->patient().ReadSharedTable(kPD)->ContentDigest());
  EXPECT_EQ(entry.At("pending_acks").size(), 0u);

  // Peers' sources contain only their Fig. 1 attribute subsets.
  EXPECT_EQ(clinic_->patient().database().Snapshot("D1")->schema()
                .attribute_count(),
            5u);
  EXPECT_EQ(clinic_->researcher().database().Snapshot("D2")->schema()
                .attribute_count(),
            3u);
  EXPECT_EQ(clinic_->doctor().database().Snapshot("D3")->schema()
                .attribute_count(),
            5u);
}

TEST_F(PeerScenarioTest, DoctorUpdatePropagatesToPatient) {
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)}, kDosage,
                                         Value::String("two tablets"))
                  .ok());
  Settle();

  // Both copies of the shared table and the patient's source updated.
  EXPECT_EQ(clinic_->patient()
                .ReadSharedTable(kPD)
                ->Get({Value::Int(188)})
                ->at(3)
                .AsString(),
            "two tablets");
  EXPECT_EQ(clinic_->patient()
                .database()
                .Snapshot("D1")
                ->Get({Value::Int(188)})
                ->at(4)
                .AsString(),
            "two tablets");
  // The patient's address column survived the BX put untouched.
  EXPECT_EQ(clinic_->patient()
                .database()
                .Snapshot("D1")
                ->Get({Value::Int(188)})
                ->at(3)
                .AsString(),
            "Sapporo");

  // On-chain metadata advanced and is fully acked.
  Json entry = *clinic_->Entry(kPD);
  EXPECT_EQ(*entry.GetInt("version"), 2);
  EXPECT_EQ(entry.At("pending_acks").size(), 0u);
  EXPECT_EQ(clinic_->patient().GetSyncState(kPD)->version, 2u);
  EXPECT_EQ(clinic_->doctor().GetSyncState(kPD)->version, 2u);

  EXPECT_EQ(clinic_->doctor().stats().updates_committed, 1u);
  EXPECT_EQ(clinic_->patient().stats().fetches_applied, 1u);
  EXPECT_EQ(clinic_->patient().stats().acks_sent, 1u);
}

TEST_F(PeerScenarioTest, PatientMayUpdateClinicalDataOnly) {
  // Permitted by Fig. 3: clinical data writable by patient.
  ASSERT_TRUE(clinic_->patient()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)},
                                         kClinicalData,
                                         Value::String("self-reported"))
                  .ok());
  Settle();
  EXPECT_EQ(clinic_->doctor()
                .database()
                .Snapshot("D3")
                ->Get({Value::Int(188)})
                ->at(2)
                .AsString(),
            "self-reported");

  // NOT permitted: dosage. The contract denies; nothing changes anywhere.
  Table doctor_view_before = *clinic_->doctor().ReadSharedTable(kPD);
  ASSERT_TRUE(clinic_->patient()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)}, kDosage,
                                         Value::String("patient hacks"))
                  .ok());  // local staging succeeds; the contract decides
  Settle();
  EXPECT_EQ(clinic_->patient().stats().updates_denied, 1u);
  EXPECT_EQ(*clinic_->doctor().ReadSharedTable(kPD), doctor_view_before);
  EXPECT_EQ(clinic_->patient()
                .ReadSharedTable(kPD)
                ->Get({Value::Int(188)})
                ->at(3)
                .AsString(),
            "one tablet every 4h");  // staged edit discarded
  Json entry = *clinic_->Entry(kPD);
  EXPECT_EQ(*entry.GetInt("version"), 2);  // only the clinical-data update
}

TEST_F(PeerScenarioTest, PermissionGrantEnablesPreviouslyDeniedUpdate) {
  // The paper's Section III-C example: Doctor changes the dosage
  // permission from "Doctor" to "Doctor, Patient".
  ASSERT_TRUE(clinic_->doctor()
                  .SubmitChangePermission(kPD, kDosage,
                                          clinic_->patient().address(),
                                          /*grant=*/true)
                  .ok());
  Settle();

  ASSERT_TRUE(clinic_->patient()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)}, kDosage,
                                         Value::String("patient-adjusted"))
                  .ok());
  Settle();
  EXPECT_EQ(clinic_->patient().stats().updates_denied, 0u);
  EXPECT_EQ(clinic_->doctor()
                .database()
                .Snapshot("D3")
                ->Get({Value::Int(188)})
                ->at(4)
                .AsString(),
            "patient-adjusted");
}

TEST_F(PeerScenarioTest, NonAuthorityCannotChangePermissions) {
  ASSERT_TRUE(clinic_->patient()
                  .SubmitChangePermission(kPD, kDosage,
                                          clinic_->patient().address(), true)
                  .ok());
  Settle();
  // The transaction executed but failed; dosage stays doctor-only.
  Json entry = *clinic_->Entry(kPD);
  EXPECT_EQ(entry.At("write_permission").At(kDosage).size(), 1u);
}

TEST_F(PeerScenarioTest, ResearcherMechanismUpdateDoesNotDisturbPatient) {
  // The literal Fig. 5 storyline, first half: the researcher updates MeA1
  // in their own source D2 and propagates; the doctor merges it into D3;
  // the dependency check finds D31 unaffected, so the patient sees NO
  // traffic for D13&D31 (steps 6-11 skipped).
  ASSERT_TRUE(clinic_->researcher()
                  .UpdateSourceAndPropagate(
                      "D2",
                      [](relational::Database* db) {
                        return db->UpdateAttribute(
                            "D2", {Value::String("Ibuprofen")},
                            kMechanismOfAction,
                            Value::String("MeA1-revised"));
                      })
                  .ok());
  Settle();

  // Doctor's D3 picked up the new mechanism for Ibuprofen.
  EXPECT_EQ(clinic_->doctor()
                .database()
                .Snapshot("D3")
                ->Get({Value::Int(188)})
                ->at(3)
                .AsString(),
            "MeA1-revised");
  // The patient<->doctor table never moved past version 1.
  EXPECT_EQ(*clinic_->Entry(kPD)->GetInt("version"), 1);
  EXPECT_EQ(clinic_->patient().stats().fetches_applied, 0u);
  // And the dependency check on the doctor ran without proposing anything.
  EXPECT_EQ(clinic_->doctor().stats().cascades_proposed, 0u);
}

TEST_F(PeerScenarioTest, MedicationRenameCascadesToBothNeighbours) {
  // A doctor-initiated medication rename touches a1, which BOTH views
  // share: the full multi-hop propagation of Fig. 5 in one shot.
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)},
                                         kMedicationName,
                                         Value::String("Naproxen"))
                  .ok());
  Settle();

  // Patient: D13 and D1 renamed.
  EXPECT_EQ(clinic_->patient()
                .database()
                .Snapshot("D1")
                ->Get({Value::Int(188)})
                ->at(1)
                .AsString(),
            "Naproxen");
  // Researcher: D23 and D2 now carry Naproxen instead of Ibuprofen (a
  // membership change in the a1-keyed table).
  Table d2 = *clinic_->researcher().database().Snapshot("D2");
  EXPECT_TRUE(d2.Contains({Value::String("Naproxen")}));
  EXPECT_FALSE(d2.Contains({Value::String("Ibuprofen")}));
  // The researcher's a6 (mode of action) for the new row is NULL — the
  // lens cannot invent it (documented untranslatable-complement default).
  EXPECT_TRUE(d2.Get({Value::String("Naproxen")})->at(2).is_null());

  // Both shared tables advanced.
  EXPECT_EQ(*clinic_->Entry(kPD)->GetInt("version"), 2);
  EXPECT_EQ(*clinic_->Entry(kDR)->GetInt("version"), 2);
  EXPECT_GE(clinic_->doctor().stats().cascades_proposed, 1u);
}

TEST_F(PeerScenarioTest, RowInsertAndDeletePropagate) {
  // Entry-level Create (Fig. 4): the doctor adds patient 300 to the shared
  // table.
  ASSERT_TRUE(clinic_->doctor()
                  .InsertSharedRow(
                      kPD, {Value::Int(300), Value::String("Metformin"),
                            Value::String("CliD3"),
                            Value::String("500 mg twice daily")})
                  .ok());
  Settle();
  Table d1 = *clinic_->patient().database().Snapshot("D1");
  ASSERT_TRUE(d1.Contains({Value::Int(300)}));
  // Hidden patient-only attribute (address) defaults to NULL.
  EXPECT_TRUE(d1.Get({Value::Int(300)})->at(3).is_null());

  // Entry-level Delete.
  ASSERT_TRUE(clinic_->doctor().DeleteSharedRow(kPD, {Value::Int(300)}).ok());
  Settle();
  EXPECT_FALSE(clinic_->patient().database().Snapshot("D1")->Contains(
      {Value::Int(300)}));
  EXPECT_EQ(*clinic_->Entry(kPD)->GetInt("version"), 3);

  // The patient lacks membership permission: a delete is denied.
  ASSERT_TRUE(
      clinic_->patient().DeleteSharedRow(kPD, {Value::Int(188)}).ok());
  Settle();
  EXPECT_EQ(clinic_->patient().stats().updates_denied, 1u);
  EXPECT_TRUE(clinic_->doctor().database().Snapshot("D3")->Contains(
      {Value::Int(188)}));
}

TEST_F(PeerScenarioTest, ConcurrentUpdateSerializedByInFlightGuard) {
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)}, kDosage,
                                         Value::String("first"))
                  .ok());
  // A second update to the SAME table before the first lands is refused
  // locally (one in-flight update per shared table).
  EXPECT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(189)}, kDosage,
                                         Value::String("second"))
                  .IsFailedPrecondition());
  Settle();
  // After settling, the second can go.
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(189)}, kDosage,
                                         Value::String("second"))
                  .ok());
  Settle();
  EXPECT_EQ(*clinic_->Entry(kPD)->GetInt("version"), 3);
}

TEST_F(PeerScenarioTest, BlockedCascadeFlagsViewAsNeedingRefresh) {
  // The doctor's authority on D23&D32 is the researcher (Fig. 3). A
  // medication rename cascading from D31 into D32 changes the a1-keyed
  // view's MEMBERSHIP, so it needs the doctor's row permission on D23&D32.
  // Revoking it makes the cascade's request_update fail on-chain, leaving
  // the doctor's D32 flagged as needing refresh.
  ASSERT_TRUE(clinic_->researcher()
                  .SubmitChangePermission(
                      kDR, contracts::MetadataContract::kRowsPermission,
                      clinic_->doctor().address(),
                      /*grant=*/false)
                  .ok());
  Settle();

  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)},
                                         kMedicationName,
                                         Value::String("Naproxen"))
                  .ok());
  Settle();

  // Patient side propagated fine.
  EXPECT_EQ(clinic_->patient()
                .database()
                .Snapshot("D1")
                ->Get({Value::Int(188)})
                ->at(1)
                .AsString(),
            "Naproxen");
  // Researcher side did NOT (denied), and the doctor knows D32 lags D3.
  EXPECT_TRUE(clinic_->researcher().database().Snapshot("D2")->Contains(
      {Value::String("Ibuprofen")}));
  EXPECT_TRUE(clinic_->doctor().GetSyncState(kDR)->needs_refresh);
  EXPECT_EQ(*clinic_->Entry(kDR)->GetInt("version"), 1);
}

TEST_F(PeerScenarioTest, AuditTrailRecordsCommitsAndDenials) {
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)}, kDosage,
                                         Value::String("audited"))
                  .ok());
  Settle();
  ASSERT_TRUE(clinic_->patient()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)}, kDosage,
                                         Value::String("forbidden"))
                  .ok());
  Settle();

  std::vector<AuditRecord> trail =
      BuildAuditTrail(clinic_->node(0).blockchain(), clinic_->node(0).host(),
                      kPD);
  // register + doctor's update + patient's ack + patient's denied attempt.
  ASSERT_GE(trail.size(), 4u);
  int commits = 0, denials = 0, acks = 0;
  for (const AuditRecord& record : trail) {
    if (record.method == "request_update" && record.committed) ++commits;
    if (record.method == "request_update" && !record.committed) ++denials;
    if (record.method == "ack_update") ++acks;
  }
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(denials, 1);
  EXPECT_EQ(acks, 1);

  std::string rendered = RenderAuditTrail(trail);
  EXPECT_NE(rendered.find("COMMITTED"), std::string::npos);
  EXPECT_NE(rendered.find("DENIED"), std::string::npos);
  EXPECT_TRUE(RenderAuditTrail({}).find("no on-chain history") !=
              std::string::npos);
}

TEST_F(PeerScenarioTest, AllChainReplicasAgreeAfterActivity) {
  ASSERT_TRUE(clinic_->doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)}, kDosage,
                                         Value::String("replicated"))
                  .ok());
  Settle();
  for (size_t i = 1; i < clinic_->node_count(); ++i) {
    EXPECT_EQ(clinic_->node(i).blockchain().head().header.Hash(),
              clinic_->node(0).blockchain().head().header.Hash());
    EXPECT_EQ(clinic_->node(i).host().StateFingerprint(),
              clinic_->node(0).host().StateFingerprint());
    EXPECT_TRUE(clinic_->node(i).blockchain().VerifyIntegrity().ok());
  }
}

TEST_F(PeerScenarioTest, ReadIsLocalAndChainFree) {
  uint64_t height_before = clinic_->node(0).blockchain().height();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(clinic_->patient().ReadSharedTable(kPD).ok());
  }
  clinic_->simulator().RunFor(100 * kMicrosPerMilli);
  // Reads produced no transactions and no blocks.
  EXPECT_EQ(clinic_->node(0).blockchain().height(), height_before);
}

}  // namespace
}  // namespace medsync::core
