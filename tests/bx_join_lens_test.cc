#include "bx/join_lens.h"

#include <gtest/gtest.h>

#include "bx/compose_lens.h"
#include "bx/laws.h"
#include "bx/lens_factory.h"
#include "common/random.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/query.h"

namespace medsync::bx {
namespace {

using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using medical::kPatientId;
using relational::DataType;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

/// Medication catalog reference: a1 -> a5 (the enrichment table).
Table Catalog() {
  Schema schema = *Schema::Create(
      {{std::string(kMedicationName), DataType::kString, false},
       {std::string(kMechanismOfAction), DataType::kString, true}},
      {std::string(kMedicationName)});
  Table t(schema);
  EXPECT_TRUE(
      t.Insert({Value::String("Ibuprofen"), Value::String("MeA1")}).ok());
  EXPECT_TRUE(
      t.Insert({Value::String("Wellbutrin"), Value::String("MeA2")}).ok());
  EXPECT_TRUE(
      t.Insert({Value::String("Metformin"), Value::String("MeA3")}).ok());
  return t;
}

/// Prescriptions source: a0 -> a1, a4 (no mechanism column).
Table Prescriptions() {
  Schema schema = *Schema::Create(
      {{std::string(kPatientId), DataType::kInt, false},
       {std::string(kMedicationName), DataType::kString, true},
       {std::string(kDosage), DataType::kString, true}},
      {std::string(kPatientId)});
  Table t(schema);
  EXPECT_TRUE(t.Insert({Value::Int(188), Value::String("Ibuprofen"),
                        Value::String("200 mg")})
                  .ok());
  EXPECT_TRUE(t.Insert({Value::Int(189), Value::String("Wellbutrin"),
                        Value::String("100 mg")})
                  .ok());
  return t;
}

TEST(LookupJoinLensTest, GetEnrichesEveryRow) {
  LookupJoinLens lens(Catalog());
  Table source = Prescriptions();
  Result<Table> view = lens.Get(source);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->schema().attribute_count(), 4u);
  EXPECT_EQ(view->row_count(), 2u);
  Row r188 = *view->Get({Value::Int(188)});
  EXPECT_EQ(r188[3].AsString(), "MeA1");
}

TEST(LookupJoinLensTest, GetFailsOnDanglingLookup) {
  LookupJoinLens lens(Catalog());
  Table source = Prescriptions();
  ASSERT_TRUE(source
                  .Insert({Value::Int(190), Value::String("UnknownDrug"),
                           Value::String("x")})
                  .ok());
  EXPECT_TRUE(lens.Get(source).status().IsFailedPrecondition());
}

TEST(LookupJoinLensTest, ViewSchemaValidation) {
  LookupJoinLens lens(Catalog());
  // Source missing the join key.
  Schema no_key = *Schema::Create(
      {{"id", DataType::kInt, false}}, {"id"});
  EXPECT_FALSE(lens.ViewSchema(no_key).ok());
  // Source already has the enrichment column.
  Schema collision = *Schema::Create(
      {{std::string(kPatientId), DataType::kInt, false},
       {std::string(kMedicationName), DataType::kString, true},
       {std::string(kMechanismOfAction), DataType::kString, true}},
      {std::string(kPatientId)});
  EXPECT_FALSE(lens.ViewSchema(collision).ok());
  // Join key type mismatch.
  Schema mistyped = *Schema::Create(
      {{std::string(kPatientId), DataType::kInt, false},
       {std::string(kMedicationName), DataType::kInt, true}},
      {std::string(kPatientId)});
  EXPECT_FALSE(lens.ViewSchema(mistyped).ok());
}

TEST(LookupJoinLensTest, PutProjectsSourceAttributesBack) {
  LookupJoinLens lens(Catalog());
  Table source = Prescriptions();
  Table view = *lens.Get(source);
  // Edit a plain source attribute through the view.
  ASSERT_TRUE(view.UpdateAttribute({Value::Int(188)}, kDosage,
                                   Value::String("400 mg"))
                  .ok());
  Result<Table> updated = lens.Put(source, view);
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(updated->Get({Value::Int(188)})->at(2).AsString(), "400 mg");
  EXPECT_EQ(updated->schema().attribute_count(), 3u);
}

TEST(LookupJoinLensTest, JoinKeyEditMustUpdateEnrichmentConsistently) {
  LookupJoinLens lens(Catalog());
  Table source = Prescriptions();
  Table view = *lens.Get(source);

  // Changing the medication WITHOUT fixing the mechanism is rejected...
  Table bad = view;
  ASSERT_TRUE(bad.UpdateAttribute({Value::Int(188)}, kMedicationName,
                                  Value::String("Metformin"))
                  .ok());
  EXPECT_TRUE(lens.Put(source, bad).status().IsFailedPrecondition());

  // ...but a consistent re-key (mechanism updated to the new entry) works.
  Table good = bad;
  ASSERT_TRUE(good.UpdateAttribute({Value::Int(188)}, kMechanismOfAction,
                                   Value::String("MeA3"))
                  .ok());
  Result<Table> updated = lens.Put(source, good);
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(updated->Get({Value::Int(188)})->at(1).AsString(), "Metformin");
}

TEST(LookupJoinLensTest, EnrichmentAttributesAreReadOnly) {
  LookupJoinLens lens(Catalog());
  Table source = Prescriptions();
  Table view = *lens.Get(source);
  ASSERT_TRUE(view.UpdateAttribute({Value::Int(188)}, kMechanismOfAction,
                                   Value::String("hand-edited"))
                  .ok());
  EXPECT_TRUE(lens.Put(source, view).status().IsFailedPrecondition());
}

TEST(LookupJoinLensTest, InsertAndDeleteThroughView) {
  LookupJoinLens lens(Catalog());
  Table source = Prescriptions();
  Table view = *lens.Get(source);
  ASSERT_TRUE(view.Insert({Value::Int(300), Value::String("Metformin"),
                           Value::String("850 mg"), Value::String("MeA3")})
                  .ok());
  ASSERT_TRUE(view.Delete({Value::Int(189)}).ok());
  Result<Table> updated = lens.Put(source, view);
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_TRUE(updated->Contains({Value::Int(300)}));
  EXPECT_FALSE(updated->Contains({Value::Int(189)}));
}

TEST(LookupJoinLensTest, LawsHold) {
  LookupJoinLens lens(Catalog());
  Table source = Prescriptions();
  EXPECT_TRUE(CheckGetPut(lens, source).ok());
  Table view = *lens.Get(source);
  ASSERT_TRUE(view.UpdateAttribute({Value::Int(189)}, kDosage,
                                   Value::String("150 mg"))
                  .ok());
  bool rejected = false;
  EXPECT_TRUE(CheckPutGet(lens, source, view, &rejected).ok());
  EXPECT_FALSE(rejected);
}

TEST(LookupJoinLensTest, ComposesWithProjection) {
  // Enrich, then share only (a0, mechanism): the canonical "researcher
  // sees mechanisms per patient without dosage" pipeline.
  auto composed =
      Compose(*MakeLookupJoinLens(Catalog()),
              MakeProjectLens({kPatientId, kMechanismOfAction},
                              {kPatientId}));
  Table source = Prescriptions();
  Result<Table> view = composed->Get(source);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->schema().attribute_count(), 2u);
  EXPECT_TRUE(CheckGetPut(*composed, source).ok());
}

TEST(LookupJoinLensTest, JsonRoundTrip) {
  auto lens = *MakeLookupJoinLens(Catalog());
  Result<LensPtr> back = LensFromJson(lens->ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(LensEqual(lens, *back));
  Table source = Prescriptions();
  EXPECT_EQ(*lens->Get(source), *(*back)->Get(source));
}

class LookupJoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LookupJoinPropertyTest, LawsOverGeneratedData) {
  // Source: (patient, medication, dosage) projected from generated
  // records; reference: the (medication -> mechanism) view of the same
  // data, so the lookup is total by construction.
  medical::GeneratorConfig config;
  config.seed = GetParam() * 131 + 5;
  config.record_count = 20 + (GetParam() % 40);
  Table full = medical::GenerateFullRecords(config);
  Table source = *relational::Project(
      full, {kPatientId, kMedicationName, kDosage}, {kPatientId});
  Table reference = *relational::Project(
      full, {kMedicationName, kMechanismOfAction}, {kMedicationName});

  LookupJoinLens lens(reference);
  ASSERT_TRUE(CheckGetPut(lens, source).ok());

  // Random translatable edit: change a dosage.
  Rng rng(GetParam());
  Table view = *lens.Get(source);
  std::vector<Row> rows = view.RowsInKeyOrder();
  const Row& victim = rows[rng.NextIndex(rows.size())];
  Table edited = view;
  ASSERT_TRUE(edited
                  .UpdateAttribute({victim[0]}, kDosage,
                                   Value::String(rng.NextAlnumString(6)))
                  .ok());
  bool rejected = false;
  ASSERT_TRUE(CheckPutGet(lens, source, edited, &rejected).ok());
  EXPECT_FALSE(rejected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookupJoinPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{15}));

}  // namespace
}  // namespace medsync::bx
