// Property-based verification of the BX round-tripping laws (Section II-B
// of the paper): random synthetic medical sources x random lens
// compositions x random view edits, checked with the mechanical law
// verifiers. A lens may legally REJECT an untranslatable edit (that
// preserves the laws by changing nothing); what it must never do is accept
// an edit and produce a source that violates PutGet.

#include <gtest/gtest.h>

#include "bx/compose_lens.h"
#include "bx/laws.h"
#include "bx/lens_factory.h"
#include "bx/project_lens.h"
#include "bx/rename_lens.h"
#include "bx/select_lens.h"
#include "common/random.h"
#include "medical/generator.h"
#include "medical/records.h"

namespace medsync::bx {
namespace {

using medical::kAddress;
using medical::kClinicalData;
using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using medical::kModeOfAction;
using medical::kPatientId;
using relational::CompareOp;
using relational::Predicate;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

/// Picks a random subset of attributes that always contains the key.
std::vector<std::string> RandomProjection(Rng* rng) {
  std::vector<std::string> attrs{kPatientId};
  for (const char* attr : {kMedicationName, kClinicalData, kAddress, kDosage,
                           kMechanismOfAction, kModeOfAction}) {
    if (rng->NextBool(0.6)) attrs.push_back(attr);
  }
  return attrs;
}

Predicate::Ptr RandomPredicate(Rng* rng) {
  switch (rng->NextBelow(4)) {
    case 0:
      return Predicate::Compare(kPatientId, CompareOp::kLt,
                                Value::Int(1000 + rng->NextInRange(0, 200)));
    case 1:
      return Predicate::Compare(kPatientId, CompareOp::kGe,
                                Value::Int(1000 + rng->NextInRange(0, 200)));
    case 2:
      return Predicate::Compare(kAddress, CompareOp::kEq,
                                Value::String(medical::RandomCity(rng)));
    default:
      return Predicate::True();
  }
}

/// Builds a random, schema-valid lens stack over the full-record schema.
/// Selections and renames come first; the projection (if any) is last so
/// predicates and rename maps stay valid.
LensPtr RandomLens(Rng* rng) {
  std::vector<LensPtr> stages;
  if (rng->NextBool(0.5)) {
    stages.push_back(MakeSelectLens(RandomPredicate(rng)));
  }
  bool renamed_dosage = false;
  if (rng->NextBool(0.3)) {
    stages.push_back(MakeRenameLens({{kDosage, "dose"}}));
    renamed_dosage = true;
  }
  if (rng->NextBool(0.8)) {
    std::vector<std::string> attrs = RandomProjection(rng);
    if (renamed_dosage) {
      for (std::string& attr : attrs) {
        if (attr == kDosage) attr = "dose";
      }
    }
    stages.push_back(MakeProjectLens(attrs, {kPatientId}));
  }
  if (stages.empty()) stages.push_back(MakeIdentityLens());
  if (stages.size() == 1) return stages[0];
  return std::make_shared<ComposeLens>(std::move(stages));
}

/// Applies 1-4 random edits to the view: attribute updates, deletions, and
/// (sometimes) insertions.
Table RandomViewEdit(const Table& view, Rng* rng) {
  Table edited = view;
  const Schema& schema = edited.schema();
  int edits = 1 + static_cast<int>(rng->NextBelow(4));
  for (int e = 0; e < edits && !edited.empty(); ++e) {
    std::vector<Row> rows = edited.RowsInKeyOrder();
    const Row& victim = rows[rng->NextIndex(rows.size())];
    relational::Key key = relational::KeyOf(schema, victim);
    switch (rng->NextBelow(3)) {
      case 0: {  // update a random non-key attribute
        std::vector<size_t> candidates;
        for (size_t i = 0; i < schema.attribute_count(); ++i) {
          if (!schema.IsKeyAttribute(schema.attributes()[i].name)) {
            candidates.push_back(i);
          }
        }
        if (candidates.empty()) break;
        size_t idx = candidates[rng->NextIndex(candidates.size())];
        IgnoreStatusForTest(edited.UpdateAttribute(
            key, schema.attributes()[idx].name,
            Value::String(rng->NextAlnumString(6))));
        break;
      }
      case 1:  // delete
        IgnoreStatusForTest(edited.Delete(key));
        break;
      default: {  // insert: clone the victim with a fresh key
        Row fresh = victim;
        for (size_t ki : schema.key_indices()) {
          if (fresh[ki].type() == relational::DataType::kInt) {
            fresh[ki] = Value::Int(5000 + rng->NextInRange(0, 999));
          } else {
            fresh[ki] = Value::String(rng->NextAlnumString(8));
          }
        }
        IgnoreStatusForTest(edited.Insert(fresh));
        break;
      }
    }
  }
  return edited;
}

class LensLawPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LensLawPropertyTest, RandomLensStacksAreWellBehaved) {
  Rng rng(GetParam());
  medical::GeneratorConfig config;
  config.seed = GetParam() * 977 + 13;
  config.record_count = 5 + rng.NextBelow(30);
  Table source = medical::GenerateFullRecords(config);

  for (int trial = 0; trial < 8; ++trial) {
    LensPtr lens = RandomLens(&rng);

    // GetPut must hold unconditionally.
    Status get_put = CheckGetPut(*lens, source);
    ASSERT_TRUE(get_put.ok())
        << lens->ToString() << ": " << get_put.ToString();

    // PutGet must hold for every edit the lens ACCEPTS.
    Result<Table> view = lens->Get(source);
    ASSERT_TRUE(view.ok()) << lens->ToString() << ": " << view.status();
    Table edited = RandomViewEdit(*view, &rng);
    bool rejected = false;
    Status put_get = CheckPutGet(*lens, source, edited, &rejected);
    ASSERT_TRUE(put_get.ok())
        << lens->ToString() << ": " << put_get.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LensLawPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

class GroupedLensLawTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupedLensLawTest, GroupedProjectionIsWellBehaved) {
  // The researcher-style lens: keyed by medication name, grouped over
  // patients (the paper's D3 -> D32).
  Rng rng(GetParam());
  medical::GeneratorConfig config;
  config.seed = GetParam() * 31 + 7;
  config.record_count = 10 + rng.NextBelow(40);
  Table source = medical::GenerateFullRecords(config);

  auto lens = MakeProjectLens({kMedicationName, kMechanismOfAction},
                              {kMedicationName});
  ASSERT_TRUE(CheckGetPut(*lens, source).ok());

  Result<Table> view = lens->Get(source);
  ASSERT_TRUE(view.ok());
  // Edit a mechanism (translatable: writes through to the whole group).
  if (!view->empty()) {
    Table edited = *view;
    std::vector<Row> rows = edited.RowsInKeyOrder();
    const Row& victim = rows[rng.NextIndex(rows.size())];
    ASSERT_TRUE(edited
                    .UpdateAttribute({victim[0]}, kMechanismOfAction,
                                     Value::String("edited mechanism"))
                    .ok());
    bool rejected = false;
    Status put_get = CheckPutGet(*lens, source, edited, &rejected);
    ASSERT_TRUE(put_get.ok()) << put_get.ToString();
    EXPECT_FALSE(rejected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedLensLawTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

TEST(LensLawTest, LawCheckersDetectABrokenLens) {
  /// A deliberately ill-behaved lens: Put ignores the view entirely.
  class BrokenLens : public Lens {
   public:
    Result<Schema> ViewSchema(const Schema& s) const override { return s; }
    Result<Table> Get(const Table& source) const override { return source; }
    Result<Table> Put(const Table& source, const Table&) const override {
      return source;  // drops the view's updates — violates PutGet
    }
    Result<SourceFootprint> Footprint(const Schema&) const override {
      return SourceFootprint{};
    }
    Json ToJson() const override { return Json::MakeObject(); }
    std::string ToString() const override { return "broken"; }
  };

  BrokenLens broken;
  Table source = medical::MakeFig1FullRecords();
  EXPECT_TRUE(CheckGetPut(broken, source).ok());  // GetPut happens to hold
  Table edited = source;
  ASSERT_TRUE(edited
                  .UpdateAttribute({Value::Int(188)}, kDosage,
                                   Value::String("edited"))
                  .ok());
  bool rejected = false;
  Status put_get = CheckPutGet(broken, source, edited, &rejected);
  EXPECT_TRUE(put_get.IsFailedPrecondition());
  EXPECT_FALSE(rejected);
}

}  // namespace
}  // namespace medsync::bx
