#include "crypto/merkle.h"

#include <gtest/gtest.h>

#include "common/strings.h"

namespace medsync::crypto {
namespace {

std::vector<Hash256> MakeLeaves(size_t n) {
  std::vector<Hash256> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::Hash(StrCat("leaf-", i)));
  }
  return leaves;
}

TEST(MerkleTest, EmptyTreeHasZeroRoot) {
  MerkleTree tree({});
  EXPECT_TRUE(tree.root().IsZero());
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(MerkleTest, SingleLeafRootIsLeaf) {
  auto leaves = MakeLeaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
}

TEST(MerkleTest, TwoLeavesRootIsPairHash) {
  auto leaves = MakeLeaves(2);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), Sha256::HashPair(leaves[0], leaves[1]));
}

TEST(MerkleTest, OddLeafIsSelfPaired) {
  auto leaves = MakeLeaves(3);
  MerkleTree tree(leaves);
  Hash256 left = Sha256::HashPair(leaves[0], leaves[1]);
  Hash256 right = Sha256::HashPair(leaves[2], leaves[2]);
  EXPECT_EQ(tree.root(), Sha256::HashPair(left, right));
}

TEST(MerkleTest, ComputeRootMatchesTree) {
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 8u, 13u, 64u, 100u}) {
    auto leaves = MakeLeaves(n);
    EXPECT_EQ(MerkleTree(leaves).root(), MerkleTree::ComputeRoot(leaves))
        << "n=" << n;
  }
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  auto leaves = MakeLeaves(8);
  Hash256 original = MerkleTree::ComputeRoot(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto tampered = leaves;
    tampered[i] = Sha256::Hash("tampered");
    EXPECT_NE(MerkleTree::ComputeRoot(tampered), original) << "leaf " << i;
  }
}

class MerkleProofTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleProofTest, EveryLeafProofVerifies) {
  size_t n = GetParam();
  auto leaves = MakeLeaves(n);
  MerkleTree tree(leaves);
  for (size_t i = 0; i < n; ++i) {
    MerkleProof proof = tree.BuildProof(i);
    EXPECT_TRUE(MerkleTree::VerifyProof(leaves[i], proof, tree.root()))
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleProofTest, WrongLeafFailsProof) {
  size_t n = GetParam();
  auto leaves = MakeLeaves(n);
  MerkleTree tree(leaves);
  Hash256 wrong = Sha256::Hash("not-a-leaf");
  for (size_t i = 0; i < n; ++i) {
    MerkleProof proof = tree.BuildProof(i);
    if (n == 1) continue;  // single-leaf proof is empty; any leaf "verifies"
    EXPECT_FALSE(MerkleTree::VerifyProof(wrong, proof, tree.root()));
  }
}

TEST_P(MerkleProofTest, TamperedProofStepFails) {
  size_t n = GetParam();
  if (n < 2) return;
  auto leaves = MakeLeaves(n);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.BuildProof(0);
  ASSERT_FALSE(proof.steps.empty());
  proof.steps[0].sibling = Sha256::Hash("evil");
  EXPECT_FALSE(MerkleTree::VerifyProof(leaves[0], proof, tree.root()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 31,
                                           64, 100));

TEST(MerkleTest, ProofAgainstWrongRootFails) {
  auto leaves = MakeLeaves(8);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.BuildProof(3);
  EXPECT_FALSE(
      MerkleTree::VerifyProof(leaves[3], proof, Sha256::Hash("other root")));
}

}  // namespace
}  // namespace medsync::crypto
