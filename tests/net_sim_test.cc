#include <gtest/gtest.h>

#include "common/metrics/metrics.h"
#include "net/network.h"
#include "net/simulator.h"

namespace medsync::net {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim(0);
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, EqualTimestampsAreFifo) {
  Simulator sim(0);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(10, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim(0);
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.Schedule(10, chain);
  };
  sim.Schedule(10, chain);
  sim.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.Now(), 50);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim(0);
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);  // clock advances to the deadline when idle
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunFor(60);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim(100);
  bool fired = false;
  sim.Schedule(-50, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim(0);
  int fired = 0;
  sim.Schedule(1, [&] { ++fired; });
  sim.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_executed(), 2u);
}

class Recorder : public Endpoint {
 public:
  void OnMessage(const Message& message) override {
    messages.push_back(message);
  }
  std::vector<Message> messages;
};

TEST(NetworkTest, DeliversWithLatency) {
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{100, 0});
  Recorder alice, bob;
  net.Attach("alice", &alice);
  net.Attach("bob", &bob);

  ASSERT_TRUE(net.Send({"alice", "bob", "ping", Json("hi")}).ok());
  EXPECT_TRUE(bob.messages.empty());  // not yet delivered
  sim.Run();
  ASSERT_EQ(bob.messages.size(), 1u);
  EXPECT_EQ(bob.messages[0].type, "ping");
  EXPECT_EQ(bob.messages[0].from, "alice");
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(NetworkTest, UnknownDestinationFailsFast) {
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{0, 0});
  Recorder alice;
  net.Attach("alice", &alice);
  EXPECT_TRUE(net.Send({"alice", "nobody", "x", Json()}).IsNotFound());
}

TEST(NetworkTest, BroadcastReachesAllButSender) {
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{1, 0});
  Recorder a, b, c;
  net.Attach("a", &a);
  net.Attach("b", &b);
  net.Attach("c", &c);
  net.Broadcast("a", "hello", Json(1));
  sim.Run();
  EXPECT_TRUE(a.messages.empty());
  EXPECT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(c.messages.size(), 1u);
}

TEST(NetworkTest, PartitionedLinkDropsSilently) {
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{1, 0});
  Recorder a, b;
  net.Attach("a", &a);
  net.Attach("b", &b);
  net.SetLinkDown("a", "b", true);
  ASSERT_TRUE(net.Send({"a", "b", "x", Json()}).ok());
  sim.Run();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(net.stats().dropped, 1u);

  net.SetLinkDown("b", "a", false);  // normalization: either order heals
  ASSERT_TRUE(net.Send({"a", "b", "x", Json()}).ok());
  sim.Run();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST(NetworkTest, DropProbabilityLosesRoughlyThatFraction) {
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{1, 0}, /*seed=*/7);
  Recorder a, b;
  net.Attach("a", &a);
  net.Attach("b", &b);
  net.set_drop_probability(0.5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(net.Send({"a", "b", "x", Json(i)}).ok());
  }
  sim.Run();
  EXPECT_NEAR(static_cast<double>(b.messages.size()), 500.0, 100.0);
  EXPECT_EQ(net.stats().dropped + net.stats().delivered, 1000u);
}

TEST(NetworkTest, DetachedMidFlightCountsAsDropped) {
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{100, 0});
  Recorder a, b;
  net.Attach("a", &a);
  net.Attach("b", &b);
  ASSERT_TRUE(net.Send({"a", "b", "x", Json()}).ok());
  net.Detach("b");
  sim.Run();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(NetworkTest, JitterVariesDeliveryTimes) {
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{10, 1000}, /*seed=*/3);
  Recorder a, b;
  net.Attach("a", &a);
  net.Attach("b", &b);
  std::vector<Micros> arrival_times;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(net.Send({"a", "b", "x", Json(i)}).ok());
  }
  // Record arrival times via a wrapper endpoint is complex; instead check
  // the messages arrived possibly out of send order — jitter reorders.
  sim.Run();
  EXPECT_EQ(b.messages.size(), 20u);
  bool reordered = false;
  for (size_t i = 0; i + 1 < b.messages.size(); ++i) {
    if (b.messages[i].payload.AsInt() > b.messages[i + 1].payload.AsInt()) {
      reordered = true;
      break;
    }
  }
  EXPECT_TRUE(reordered);
}

TEST(NetworkTest, UnknownDestinationIsNotAccounted) {
  // Regression: a Send that fails fast (NotFound) never reached the
  // network, so it must not inflate sent/bytes — previously the payload
  // was serialized and counted before the endpoint lookup.
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{0, 0});
  Recorder alice;
  net.Attach("alice", &alice);

  EXPECT_TRUE(net.Send({"alice", "nobody", "x", Json("payload")}).IsNotFound());
  EXPECT_EQ(net.stats().sent, 0u);
  EXPECT_EQ(net.stats().bytes, 0u);
  EXPECT_EQ(net.stats().dropped, 0u);
}

TEST(NetworkTest, BytesCountPayloadSerializationOnce) {
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{1, 0});
  Recorder a, b, c;
  net.Attach("a", &a);
  net.Attach("b", &b);
  net.Attach("c", &c);

  Json payload = Json::MakeObject();
  payload.Set("tag", "measured");
  const uint64_t size = payload.Dump().size();

  ASSERT_TRUE(net.Send({"a", "b", "x", payload}).ok());
  EXPECT_EQ(net.stats().bytes, size);

  // Broadcast measures the payload once but accounts one copy per
  // receiver (two here: everyone but the sender).
  net.Broadcast("a", "x", payload);
  EXPECT_EQ(net.stats().sent, 3u);
  EXPECT_EQ(net.stats().bytes, 3 * size);
}

TEST(NetworkTest, MetricsMirrorStatsAndSplitPerType) {
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{1, 0});
  metrics::MetricsRegistry registry;
  net.set_metrics(&registry);
  Recorder a, b;
  net.Attach("a", &a);
  net.Attach("b", &b);

  ASSERT_TRUE(net.Send({"a", "b", "tx", Json(1)}).ok());
  ASSERT_TRUE(net.Send({"a", "b", "block", Json(2)}).ok());
  net.SetLinkDown("a", "b", true);
  ASSERT_TRUE(net.Send({"a", "b", "tx", Json(3)}).ok());  // down link: dropped
  sim.Run();

  Json counters = registry.Snapshot().At("counters");
  EXPECT_EQ(counters.At("net.sent").AsInt(), 3);
  EXPECT_EQ(counters.At("net.delivered").AsInt(), 2);
  EXPECT_EQ(counters.At("net.dropped").AsInt(), 1);
  EXPECT_EQ(counters.At("net.bytes").AsInt(),
            static_cast<int64_t>(net.stats().bytes));
  // Per-type split: both tx sends counted, only the down-link one dropped.
  EXPECT_EQ(counters.At("net.sent.tx").AsInt(), 2);
  EXPECT_EQ(counters.At("net.sent.block").AsInt(), 1);
  EXPECT_EQ(counters.At("net.dropped.tx").AsInt(), 1);
  // Delivered messages sampled their delay into the latency histogram.
  EXPECT_EQ(
      registry.Snapshot().At("histograms").At("net.latency_us").At("count")
          .AsInt(),
      2);
}

TEST(NetworkTest, AttachedNodesListing) {
  Simulator sim(0);
  SimNetwork net(&sim, LatencyModel{});
  Recorder a;
  net.Attach("z", &a);
  net.Attach("a", &a);
  EXPECT_TRUE(net.IsAttached("z"));
  EXPECT_FALSE(net.IsAttached("q"));
  EXPECT_EQ(net.AttachedNodes(), (std::vector<NodeId>{"a", "z"}));
}

}  // namespace
}  // namespace medsync::net
