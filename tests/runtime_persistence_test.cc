// Durable chain nodes: a node restarted on its block log recovers its
// ledger and contract state from disk and rejoins the network.

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "common/strings.h"
#include "contracts/metadata_contract.h"
#include "runtime/block_store.h"
#include "runtime/chain_node.h"

namespace medsync::runtime {
namespace {

namespace fs = std::filesystem;

class NodePersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            StrCat("medsync_nodestore_", ::getpid(), "_", counter_++))
               .string();
    fs::create_directories(dir_);
    network_ = std::make_unique<net::SimNetwork>(&simulator_,
                                              net::LatencyModel{}, 3);
    key_ = std::make_shared<crypto::KeyPair>(
        crypto::KeyPair::FromSeed("persist-authority"));
    genesis_ = chain::Blockchain::MakeGenesis(0);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::unique_ptr<ChainNode> MakeNode(const std::string& id, bool seals,
                                      bool durable) {
    auto sealer = std::make_shared<chain::PoaSealer>(
        std::vector<crypto::Address>{key_->address()},
        seals ? key_ : nullptr);
    auto host = std::make_unique<contracts::ContractHost>();
    host->RegisterType("metadata", contracts::MetadataContract::Create);
    NodeConfig config;
    config.id = id;
    config.block_interval = 1 * kMicrosPerSecond;
    config.sealing_enabled = seals;
    auto node = std::make_unique<ChainNode>(
        config, &simulator_, network_.get(), std::move(sealer), genesis_,
        contracts::SharedDataConflictKey, std::move(host));
    if (durable) {
      Status enabled = node->EnablePersistence(dir_ + "/" + id + ".blocks");
      EXPECT_TRUE(enabled.ok()) << enabled;
    }
    node->Start();
    return node;
  }

  chain::Transaction DeployTx() {
    chain::Transaction tx;
    tx.from = client_.address();
    tx.to = crypto::Address::Zero();
    tx.nonce = nonce_++;
    tx.method = "metadata";
    tx.params = Json::MakeObject();
    tx.timestamp = simulator_.Now();
    tx.Sign(client_);
    return tx;
  }

  static inline int counter_ = 0;
  std::string dir_;
  net::Simulator simulator_;
  std::unique_ptr<net::SimNetwork> network_;
  std::shared_ptr<crypto::KeyPair> key_;
  chain::Block genesis_;
  crypto::KeyPair client_ = crypto::KeyPair::FromSeed("persist-client");
  uint64_t nonce_ = 0;
};

TEST_F(NodePersistenceTest, BlockStoreRoundTrip) {
  std::string path = dir_ + "/store.blocks";
  chain::Block block;
  block.header.height = 1;
  block.header.parent = genesis_.header.Hash();
  block.header.merkle_root = block.ComputeMerkleRoot();
  {
    std::vector<chain::Block> recovered;
    Result<BlockStore> store = BlockStore::Open(path, &recovered);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_TRUE(recovered.empty());
    ASSERT_TRUE(store->Append(genesis_).ok());
    ASSERT_TRUE(store->Append(block).ok());
    EXPECT_EQ(store->blocks_written(), 2u);
  }
  std::vector<chain::Block> recovered;
  Result<BlockStore> store = BlockStore::Open(path, &recovered);
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].header.Hash(), genesis_.header.Hash());
  EXPECT_EQ(recovered[1].header.Hash(), block.header.Hash());
  EXPECT_EQ(store->blocks_written(), 2u);
}

TEST_F(NodePersistenceTest, NodeRecoversLedgerAndStateAfterRestart) {
  uint64_t height_before = 0;
  std::string fingerprint_before;
  crypto::Hash256 head_before;
  {
    auto node = MakeNode("durable-node", /*seals=*/true, /*durable=*/true);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(node->SubmitTransaction(DeployTx()).ok());
      simulator_.RunFor(2 * kMicrosPerSecond);
    }
    height_before = node->blockchain().height();
    ASSERT_GE(height_before, 3u);
    fingerprint_before = node->host().StateFingerprint();
    head_before = node->blockchain().head().header.Hash();
    network_->Detach("durable-node");
  }

  // Restart on the same block log: everything is back without a network.
  auto node = MakeNode("durable-node", /*seals=*/true, /*durable=*/true);
  EXPECT_EQ(node->blockchain().height(), height_before);
  EXPECT_EQ(node->blockchain().head().header.Hash(), head_before);
  EXPECT_EQ(node->host().StateFingerprint(), fingerprint_before);
  EXPECT_TRUE(node->blockchain().VerifyIntegrity().ok());

  // And it keeps working: a new transaction confirms on the restarted node.
  chain::Transaction tx = DeployTx();
  ASSERT_TRUE(node->SubmitTransaction(tx).ok());
  simulator_.RunFor(3 * kMicrosPerSecond);
  EXPECT_TRUE(node->blockchain().FindTransaction(tx.Id(), nullptr, nullptr));
}

TEST_F(NodePersistenceTest, RestartedNodeCatchesUpWithPeersFromDisk) {
  // A durable observer follows a sealing node, restarts, and resumes from
  // disk + network catch-up.
  auto sealer_node = MakeNode("sealer", /*seals=*/true, /*durable=*/false);
  uint64_t observed_height = 0;
  {
    auto observer = MakeNode("observer", /*seals=*/false, /*durable=*/true);
    ASSERT_TRUE(sealer_node->SubmitTransaction(DeployTx()).ok());
    simulator_.RunFor(3 * kMicrosPerSecond);
    observed_height = observer->blockchain().height();
    ASSERT_GE(observed_height, 1u);
    network_->Detach("observer");
  }
  // While the observer is down, the chain advances.
  ASSERT_TRUE(sealer_node->SubmitTransaction(DeployTx()).ok());
  simulator_.RunFor(3 * kMicrosPerSecond);
  ASSERT_GT(sealer_node->blockchain().height(), observed_height);

  // Restart: disk gives the old prefix instantly; head announcements from
  // the sealer close the gap.
  auto observer = MakeNode("observer", /*seals=*/false, /*durable=*/true);
  EXPECT_EQ(observer->blockchain().height(), observed_height);
  simulator_.RunFor(3 * kMicrosPerSecond);
  EXPECT_EQ(observer->blockchain().head().header.Hash(),
            sealer_node->blockchain().head().header.Hash());
  EXPECT_EQ(observer->host().StateFingerprint(),
            sealer_node->host().StateFingerprint());
}

TEST_F(NodePersistenceTest, DoubleEnableRejected) {
  auto node = MakeNode("n", true, true);
  EXPECT_TRUE(
      node->EnablePersistence(dir_ + "/other.blocks").IsFailedPrecondition());
}

TEST_F(NodePersistenceTest, CorruptTailIsTruncatedOnRecovery) {
  std::string path = dir_ + "/torn.blocks";
  {
    std::vector<chain::Block> recovered;
    Result<BlockStore> store = BlockStore::Open(path, &recovered);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Append(genesis_).ok());
    chain::Block block;
    block.header.height = 1;
    block.header.parent = genesis_.header.Hash();
    block.header.merkle_root = block.ComputeMerkleRoot();
    ASSERT_TRUE(store->Append(block).ok());
  }
  fs::resize_file(path, fs::file_size(path) - 7);  // torn write
  std::vector<chain::Block> recovered;
  Result<BlockStore> store = BlockStore::Open(path, &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].header.Hash(), genesis_.header.Hash());
}

}  // namespace
}  // namespace medsync::runtime
