#include "relational/table.h"

#include <gtest/gtest.h>

namespace medsync::relational {
namespace {

Schema TwoColSchema() {
  return *Schema::Create(
      {{"id", DataType::kInt, false}, {"name", DataType::kString, true}},
      {"id"});
}

Row R(int64_t id, const char* name) {
  return Row{Value::Int(id), Value::String(name)};
}

TEST(TableTest, InsertGetDelete) {
  Table t(TwoColSchema());
  EXPECT_TRUE(t.empty());
  ASSERT_TRUE(t.Insert(R(1, "a")).ok());
  ASSERT_TRUE(t.Insert(R(2, "b")).ok());
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_TRUE(t.Contains({Value::Int(1)}));
  EXPECT_EQ(*t.Get({Value::Int(2)}), R(2, "b"));
  EXPECT_FALSE(t.Get({Value::Int(3)}).has_value());
  EXPECT_TRUE(t.Delete({Value::Int(1)}).ok());
  EXPECT_FALSE(t.Contains({Value::Int(1)}));
  EXPECT_TRUE(t.Delete({Value::Int(1)}).IsNotFound());
}

TEST(TableTest, InsertRejectsDuplicateKey) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.Insert(R(1, "a")).ok());
  EXPECT_TRUE(t.Insert(R(1, "other")).IsAlreadyExists());
  EXPECT_EQ(t.Get({Value::Int(1)})->at(1).AsString(), "a");
}

TEST(TableTest, InsertValidatesRow) {
  Table t(TwoColSchema());
  EXPECT_TRUE(t.Insert({Value::Int(1)}).IsInvalidArgument());  // arity
  EXPECT_TRUE(t.Insert({Value::String("x"), Value::Null()})
                  .IsInvalidArgument());  // key type
  EXPECT_TRUE(t.Insert({Value::Null(), Value::Null()})
                  .IsInvalidArgument());  // NULL key
}

TEST(TableTest, UpsertInsertsOrOverwrites) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.Upsert(R(1, "a")).ok());
  ASSERT_TRUE(t.Upsert(R(1, "b")).ok());
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.Get({Value::Int(1)})->at(1).AsString(), "b");
}

TEST(TableTest, UpdateRequiresExistingRow) {
  Table t(TwoColSchema());
  EXPECT_TRUE(t.Update(R(1, "a")).IsNotFound());
  ASSERT_TRUE(t.Insert(R(1, "a")).ok());
  ASSERT_TRUE(t.Update(R(1, "z")).ok());
  EXPECT_EQ(t.Get({Value::Int(1)})->at(1).AsString(), "z");
}

TEST(TableTest, UpdateAttribute) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.Insert(R(5, "before")).ok());
  ASSERT_TRUE(
      t.UpdateAttribute({Value::Int(5)}, "name", Value::String("after")).ok());
  EXPECT_EQ(t.Get({Value::Int(5)})->at(1).AsString(), "after");

  EXPECT_TRUE(t.UpdateAttribute({Value::Int(5)}, "ghost", Value::Null())
                  .IsNotFound());
  EXPECT_TRUE(t.UpdateAttribute({Value::Int(9)}, "name", Value::Null())
                  .IsNotFound());
  EXPECT_TRUE(t.UpdateAttribute({Value::Int(5)}, "id", Value::Int(9))
                  .IsInvalidArgument());  // key attr
  EXPECT_TRUE(t.UpdateAttribute({Value::Int(5)}, "name", Value::Int(1))
                  .IsInvalidArgument());  // type
}

TEST(TableTest, GetAttribute) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.Insert(R(5, "val")).ok());
  EXPECT_EQ(t.GetAttribute({Value::Int(5)}, "name")->AsString(), "val");
  EXPECT_FALSE(t.GetAttribute({Value::Int(5)}, "ghost").ok());
  EXPECT_FALSE(t.GetAttribute({Value::Int(6)}, "name").ok());
}

TEST(TableTest, RowsIterateInKeyOrder) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.Insert(R(30, "c")).ok());
  ASSERT_TRUE(t.Insert(R(10, "a")).ok());
  ASSERT_TRUE(t.Insert(R(20, "b")).ok());
  std::vector<Row> rows = t.RowsInKeyOrder();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt(), 10);
  EXPECT_EQ(rows[1][0].AsInt(), 20);
  EXPECT_EQ(rows[2][0].AsInt(), 30);
}

TEST(TableTest, EqualityIsContentBased) {
  Table a(TwoColSchema()), b(TwoColSchema());
  ASSERT_TRUE(a.Insert(R(1, "x")).ok());
  ASSERT_TRUE(a.Insert(R(2, "y")).ok());
  // Insert in the opposite order.
  ASSERT_TRUE(b.Insert(R(2, "y")).ok());
  ASSERT_TRUE(b.Insert(R(1, "x")).ok());
  EXPECT_EQ(a, b);
  ASSERT_TRUE(b.Delete({Value::Int(1)}).ok());
  EXPECT_NE(a, b);
}

TEST(TableTest, JsonRoundTrip) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.Insert(R(1, "one")).ok());
  ASSERT_TRUE(t.Insert(R(2, "two")).ok());
  Result<Table> back = Table::FromJson(t.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, t);
}

TEST(TableTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(Table::FromJson(Json(1)).ok());
  Json no_rows = Json::MakeObject();
  no_rows.Set("schema", TwoColSchema().ToJson());
  EXPECT_FALSE(Table::FromJson(no_rows).ok());
}

TEST(TableTest, ContentDigestTracksContent) {
  Table a(TwoColSchema()), b(TwoColSchema());
  ASSERT_TRUE(a.Insert(R(1, "x")).ok());
  ASSERT_TRUE(b.Insert(R(1, "x")).ok());
  EXPECT_EQ(a.ContentDigest(), b.ContentDigest());
  ASSERT_TRUE(b.UpdateAttribute({Value::Int(1)}, "name", Value::String("y"))
                  .ok());
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
  EXPECT_EQ(a.ContentDigest().size(), 64u);
}

TEST(TableTest, AsciiRenderingContainsHeaderAndValues) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.Insert(R(188, "Ibuprofen")).ok());
  std::string ascii = t.ToAsciiTable();
  EXPECT_NE(ascii.find("id"), std::string::npos);
  EXPECT_NE(ascii.find("name"), std::string::npos);
  EXPECT_NE(ascii.find("188"), std::string::npos);
  EXPECT_NE(ascii.find("Ibuprofen"), std::string::npos);
}

TEST(TableTest, CompositeKey) {
  Schema schema = *Schema::Create({{"a", DataType::kInt, false},
                                   {"b", DataType::kString, false},
                                   {"v", DataType::kString, true}},
                                  {"a", "b"});
  Table t(schema);
  ASSERT_TRUE(
      t.Insert({Value::Int(1), Value::String("x"), Value::String("v1")}).ok());
  ASSERT_TRUE(
      t.Insert({Value::Int(1), Value::String("y"), Value::String("v2")}).ok());
  EXPECT_TRUE(
      t.Insert({Value::Int(1), Value::String("x"), Value::String("v3")})
          .IsAlreadyExists());
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_TRUE(t.Contains({Value::Int(1), Value::String("y")}));
}

TEST(TableTest, ClearEmptiesTable) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.Insert(R(1, "a")).ok());
  t.Clear();
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace medsync::relational
