#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "relational/table.h"

namespace medsync::relational {
namespace {

// Chunked-vs-row-model equivalence: a Table with an aggressive seal
// threshold (so history lives almost entirely in sealed columnar chunks)
// must be observationally identical to a plain std::map reference model —
// and digest-identical to a head-only Table — under any CRUD interleaving.

Schema S() {
  return *Schema::Create({{"id", DataType::kInt, false},
                          {"v", DataType::kString, true},
                          {"n", DataType::kInt, true}},
                         {"id"});
}

Row R(int64_t id, const std::string& v, int64_t n) {
  return {Value::Int(id), Value::String(v), Value::Int(n)};
}

Key K(int64_t id) { return {Value::Int(id)}; }

void ExpectMatchesModel(const Table& table,
                        const std::map<Key, Row>& model) {
  ASSERT_EQ(table.row_count(), model.size());
  // Scan yields exactly the model, in key order.
  auto it = model.begin();
  for (const auto& [key, row] : table.scan()) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(row, it->second);
    ++it;
  }
  EXPECT_EQ(it, model.end());
}

TEST(StoragePropertyTest, ChunkedTableMatchesRowModelUnderRandomCrud) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    SCOPED_TRACE(seed);
    Rng rng(seed);
    Table chunked(S());
    chunked.set_seal_threshold(7);  // seal constantly, incl. compactions
    Table head_only(S());
    head_only.set_seal_threshold(1u << 30);
    std::map<Key, Row> model;

    for (int step = 0; step < 3000; ++step) {
      const int64_t id = rng.NextInRange(0, 199);  // small key space → churn
      const Key key = K(id);
      const uint64_t op = rng.NextBelow(5);
      Row row = R(id, rng.NextAlnumString(6), rng.NextInRange(0, 1000));
      switch (op) {
        case 0: {  // Insert
          const Status s = chunked.Insert(row);
          EXPECT_EQ(head_only.Insert(row).ok(), s.ok());
          if (model.count(key)) {
            EXPECT_TRUE(s.IsAlreadyExists());
          } else {
            ASSERT_TRUE(s.ok()) << s;
            model.emplace(key, row);
          }
          break;
        }
        case 1: {  // Upsert
          ASSERT_TRUE(chunked.Upsert(row).ok());
          ASSERT_TRUE(head_only.Upsert(row).ok());
          model.insert_or_assign(key, row);
          break;
        }
        case 2: {  // Update
          const Status s = chunked.Update(row);
          EXPECT_EQ(head_only.Update(row).ok(), s.ok());
          if (model.count(key)) {
            ASSERT_TRUE(s.ok()) << s;
            model.insert_or_assign(key, row);
          } else {
            EXPECT_TRUE(s.IsNotFound());
          }
          break;
        }
        case 3: {  // UpdateAttribute
          Value v = Value::Int(rng.NextInRange(0, 1000));
          const Status s = chunked.UpdateAttribute(key, "n", v);
          EXPECT_EQ(head_only.UpdateAttribute(key, "n", v).ok(), s.ok());
          if (auto it = model.find(key); it != model.end()) {
            ASSERT_TRUE(s.ok()) << s;
            it->second[2] = v;
          } else {
            EXPECT_TRUE(s.IsNotFound());
          }
          break;
        }
        case 4: {  // Delete
          const Status s = chunked.Delete(key);
          EXPECT_EQ(head_only.Delete(key).ok(), s.ok());
          if (model.erase(key)) {
            ASSERT_TRUE(s.ok()) << s;
          } else {
            EXPECT_TRUE(s.IsNotFound());
          }
          break;
        }
      }
      // Point reads agree at every step; full checks are sampled.
      EXPECT_EQ(chunked.Contains(key), model.count(key) > 0);
      if (auto hit = chunked.Get(key); model.count(key)) {
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, model.at(key));
      } else {
        EXPECT_FALSE(hit.has_value());
      }
      if (step % 101 == 0) {
        ExpectMatchesModel(chunked, model);
        // Layout independence: wildly different head/chunk splits, same
        // content ⇒ equal tables, identical digests.
        EXPECT_EQ(chunked, head_only);
        EXPECT_EQ(chunked.ContentDigest(), head_only.ContentDigest());
      }
    }
    ExpectMatchesModel(chunked, model);
    EXPECT_GE(chunked.chunks().size() + 1, 1u);  // sealing actually happened
    EXPECT_EQ(chunked.ContentDigest(), head_only.ContentDigest());
  }
}

TEST(StoragePropertyTest, DigestChangesIffContentChanges) {
  Rng rng(77);
  Table table(S());
  table.set_seal_threshold(5);
  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(table.Insert(R(i, "base", i)).ok());
  }
  std::string digest = table.ContentDigest();

  for (int step = 0; step < 500; ++step) {
    const Table before = table;  // O(head) copy, shares chunks
    const int64_t id = rng.NextInRange(0, 59);
    switch (rng.NextBelow(4)) {
      case 0:
        IgnoreStatusForTest(table.Upsert(R(id, rng.NextAlnumString(4), step)));
        break;
      case 1:
        IgnoreStatusForTest(table.Delete(K(id)));
        break;
      case 2:
        IgnoreStatusForTest(table.Insert(R(id, "ins", step)));
        break;
      case 3:
        // No-op content-wise when it overwrites with the identical value.
        if (auto row = table.Get(K(id))) IgnoreStatusForTest(table.Update(*row));
        break;
    }
    const bool content_changed = table != before;
    const std::string now = table.ContentDigest();
    EXPECT_EQ(now != digest, content_changed) << "step " << step;
    digest = now;
  }

  // Physical resealing alone never moves the digest.
  const std::string before_seal = table.ContentDigest();
  table.Seal();
  EXPECT_EQ(table.ContentDigest(), before_seal);
}

TEST(StoragePropertyTest, DigestIsLayoutIndependentAcrossSealSchedules) {
  // The same content reached via different seal thresholds (hence totally
  // different chunk boundaries) digests identically.
  std::vector<size_t> thresholds = {1, 3, 16, 1u << 30};
  std::vector<std::string> digests;
  for (size_t threshold : thresholds) {
    Table t(S());
    t.set_seal_threshold(threshold);
    for (int64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(t.Insert(R(i, "v", i)).ok());
    }
    for (int64_t i = 0; i < 300; i += 3) {
      ASSERT_TRUE(t.Delete(K(i)).ok());
    }
    for (int64_t i = 1; i < 300; i += 3) {
      ASSERT_TRUE(t.Upsert(R(i, "w", -i)).ok());
    }
    digests.push_back(t.ContentDigest());
  }
  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "threshold " << thresholds[i];
  }
}

TEST(StoragePropertyTest, SerializationInvariantUnderHashInsertionOrder) {
  // The static analyzer's MS102 contract (determinism-flow), checked
  // dynamically: no hash-container iteration order may leak into
  // serialized bytes or digests. The same logical content is assembled by
  // iterating a std::unordered_set whose *insertion* order — and hence
  // iteration order — is perturbed per round, with seal points landing in
  // different places; every round must produce byte-identical ToJson()
  // output and an identical ContentDigest.
  constexpr int64_t kIds = 257;  // crosses the seal threshold repeatedly
  std::vector<std::string> serialized;
  std::vector<std::string> digests;
  for (uint64_t salt : {0u, 1u, 7u, 1000u}) {
    SCOPED_TRACE(salt);
    // Perturb insertion order into the hash set: different permutations
    // land keys in different buckets orders.
    std::vector<int64_t> order;
    for (int64_t i = 0; i < kIds; ++i) order.push_back(i);
    Rng shuffle_rng(salt);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[shuffle_rng.NextBelow(i)]);
    }
    std::unordered_set<int64_t> keys;
    for (int64_t id : order) keys.insert(id);

    Table t(S());
    t.set_seal_threshold(13);
    for (int64_t id : keys) {  // hash-order writes
      ASSERT_TRUE(t.Upsert(R(id, "v" + std::to_string(id % 17), id)).ok());
    }
    for (int64_t id : keys) {  // hash-order deletes and rewrites
      if (id % 3 == 0) {
        ASSERT_TRUE(t.Delete(K(id)).ok());
      } else if (id % 3 == 1) {
        ASSERT_TRUE(t.Upsert(R(id, "w", -id)).ok());
      }
    }
    t.Seal();
    serialized.push_back(t.ToJson().Dump());
    digests.push_back(t.ContentDigest());
  }
  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]);
    EXPECT_EQ(serialized[i], serialized[0]);
  }
}

}  // namespace
}  // namespace medsync::relational
