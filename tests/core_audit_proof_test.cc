// Light-client transaction inclusion proofs for the audit story: an
// auditor holding only block headers can verify that a specific
// request_update really is committed on-chain.

#include "core/audit.h"

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "medical/records.h"

namespace medsync::core {
namespace {

using relational::Value;

constexpr char kPD[] = "D13&D31";

TEST(InclusionProofTest, ProvesAndVerifiesCommittedUpdate) {
  ScenarioOptions options;
  auto scenario = ClinicScenario::Create(options);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ClinicScenario& clinic = **scenario;

  ASSERT_TRUE(clinic.doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)},
                                         medical::kDosage,
                                         Value::String("provable"))
                  .ok());
  ASSERT_TRUE(clinic.SettleAll().ok());

  // Find the request_update transaction in the audit trail and prove it.
  std::vector<AuditRecord> trail = BuildAuditTrail(
      clinic.node(0).blockchain(), clinic.node(0).host(), kPD);
  const AuditRecord* update = nullptr;
  for (const AuditRecord& record : trail) {
    if (record.method == "request_update") update = &record;
  }
  ASSERT_NE(update, nullptr);

  Result<InclusionProof> proof = ProveTransactionInclusion(
      clinic.node(0).blockchain(), update->tx_id);
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_EQ(proof->header.height, update->block_height);
  EXPECT_TRUE(VerifyTransactionInclusion(*proof));

  // The proof is self-contained: verify against a DIFFERENT node's copy of
  // the header (header equality implies the same committed root).
  Result<const chain::Block*> same_block =
      clinic.node(1).blockchain().BlockByHeight(proof->header.height);
  ASSERT_TRUE(same_block.ok());
  EXPECT_EQ((*same_block)->header.Hash(), proof->header.Hash());
}

TEST(InclusionProofTest, TamperedProofFails) {
  ScenarioOptions options;
  auto scenario = ClinicScenario::Create(options);
  ASSERT_TRUE(scenario.ok());
  ClinicScenario& clinic = **scenario;
  ASSERT_TRUE(clinic.doctor()
                  .UpdateSharedAttribute(kPD, {Value::Int(188)},
                                         medical::kDosage,
                                         Value::String("x"))
                  .ok());
  ASSERT_TRUE(clinic.SettleAll().ok());
  std::vector<AuditRecord> trail = BuildAuditTrail(
      clinic.node(0).blockchain(), clinic.node(0).host(), kPD);
  ASSERT_FALSE(trail.empty());
  Result<InclusionProof> proof = ProveTransactionInclusion(
      clinic.node(0).blockchain(), trail.back().tx_id);
  ASSERT_TRUE(proof.ok());

  // Claiming a different transaction id under the same proof fails.
  InclusionProof forged = *proof;
  forged.tx_id = crypto::Sha256::Hash("some other tx").ToHex();
  EXPECT_FALSE(VerifyTransactionInclusion(forged));

  // A proof against a tampered header (different merkle root) fails.
  InclusionProof wrong_header = *proof;
  wrong_header.header.merkle_root = crypto::Sha256::Hash("evil root");
  EXPECT_FALSE(VerifyTransactionInclusion(wrong_header));

  // Malformed tx id fails closed.
  InclusionProof bad_id = *proof;
  bad_id.tx_id = "not-hex";
  EXPECT_FALSE(VerifyTransactionInclusion(bad_id));

  // Unknown transactions cannot be proved at all.
  EXPECT_TRUE(ProveTransactionInclusion(
                  clinic.node(0).blockchain(),
                  crypto::Sha256::Hash("ghost").ToHex())
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace medsync::core
