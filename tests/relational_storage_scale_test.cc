#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/strings.h"
#include "relational/database.h"
#include "relational/table.h"

namespace medsync::relational {
namespace {

namespace fs = std::filesystem;

// Million-row storage tier: sealing, scanning, streamed checkpointing, and
// WAL+snapshot recovery at a scale where the monolithic row-JSON snapshot
// used to be the bottleneck. Labeled `storage` in ctest; see
// tools/bench/bench_storage.cc for the timed variants.

constexpr int64_t kRows = 1'000'000;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("medsync_scale_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string path() const { return path_.string(); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

Schema S() {
  return *Schema::Create({{"id", DataType::kInt, false},
                          {"ward", DataType::kString, true},
                          {"score", DataType::kInt, true}},
                         {"id"});
}

Row R(int64_t i) {
  // 16 distinct ward strings: exercises the dictionary encoding at scale.
  return {Value::Int(i), Value::String(StrCat("ward-", i % 16)),
          Value::Int(i * 7)};
}

TEST(StorageScaleTest, MillionRowSealAndScan) {
  Table table(S());  // default threshold: seals every 4096 rows
  for (int64_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(table.Insert(R(i)).ok());
  }
  EXPECT_EQ(table.row_count(), static_cast<size_t>(kRows));
  // History must actually live in sealed chunks, not the head.
  EXPECT_GE(table.chunks().size(), kRows / Table::kDefaultSealThreshold / 2);
  EXPECT_LT(table.head().size(), Table::kDefaultSealThreshold);

  // One full merge scan: key order, no dups, no drops.
  int64_t expect = 0;
  for (const auto& [key, row] : table.scan()) {
    ASSERT_EQ(key[0].AsInt(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, kRows);

  // Random point reads against the chunked history.
  for (int64_t i = 0; i < kRows; i += 99'991) {
    auto row = table.Get({Value::Int(i)});
    ASSERT_TRUE(row.has_value()) << i;
    EXPECT_EQ((*row)[2].AsInt(), i * 7);
  }
  EXPECT_FALSE(table.Get({Value::Int(kRows)}).has_value());
}

TEST(StorageScaleTest, MillionRowCheckpointRecoverRoundTrip) {
  TempDir dir;
  std::string digest;
  size_t chunk_files = 0;
  {
    Database::OpenOptions bulk;
    bulk.sync_every_append = false;  // bulk-load mode (see database.h)
    Result<Database> db = Database::Open(dir.path(), bulk);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->CreateTable("records", S()).ok());
    for (int64_t i = 0; i < kRows; ++i) {
      ASSERT_TRUE(db->Insert("records", R(i)).ok());
    }
    ASSERT_TRUE(db->SealTable("records").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    digest = (*db->GetTable("records"))->ContentDigest();

    for (const auto& e : fs::directory_iterator(dir.file("chunks"))) {
      (void)e;
      ++chunk_files;
    }
    EXPECT_GE(chunk_files, 1u);
    // The manifest must stay head-sized, not content-sized: the million
    // rows stream out through the chunk files.
    EXPECT_LT(fs::file_size(dir.file("snapshot.json")),
              static_cast<uintmax_t>(kRows));
  }

  // Recover, mutate past the checkpoint, recover again.
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok()) << db.status();
    Result<const Table*> t = db->GetTable("records");
    ASSERT_TRUE(t.ok());
    ASSERT_EQ((*t)->row_count(), static_cast<size_t>(kRows));
    EXPECT_EQ((*t)->ContentDigest(), digest);
    for (int64_t i = 0; i < kRows; i += 249'989) {
      auto row = (*t)->Get({Value::Int(i)});
      ASSERT_TRUE(row.has_value()) << i;
      EXPECT_EQ((*row)[1].AsString(), StrCat("ward-", i % 16));
    }
    ASSERT_TRUE(db->Delete("records", {Value::Int(0)}).ok());
    ASSERT_TRUE(db->Upsert("records", R(kRows)).ok());
  }
  {
    Result<Database> db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok()) << db.status();
    Result<const Table*> t = db->GetTable("records");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*t)->row_count(), static_cast<size_t>(kRows));
    EXPECT_FALSE((*t)->Contains({Value::Int(0)}));
    EXPECT_TRUE((*t)->Contains({Value::Int(kRows)}));
  }
}

TEST(StorageScaleTest, RecheckpointAfterHeadGrowthRewritesNoChunks) {
  // Content-addressing at scale: a second checkpoint after head-only
  // growth re-writes zero of the existing chunk files.
  TempDir dir;
  Database::OpenOptions bulk;
  bulk.sync_every_append = false;
  Result<Database> db = Database::Open(dir.path(), bulk);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->CreateTable("t", S()).ok());
  for (int64_t i = 0; i < 200'000; ++i) {
    ASSERT_TRUE(db->Insert("t", R(i)).ok());
  }
  ASSERT_TRUE(db->SealTable("t").ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  std::map<std::string, fs::file_time_type> before;
  for (const auto& e : fs::directory_iterator(dir.file("chunks"))) {
    before[e.path().filename().string()] = fs::last_write_time(e.path());
  }
  ASSERT_GE(before.size(), 1u);

  for (int64_t i = 200'000; i < 201'000; ++i) {
    ASSERT_TRUE(db->Insert("t", R(i)).ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());

  for (const auto& [name, mtime] : before) {
    EXPECT_EQ(fs::last_write_time(dir.file("chunks") + "/" + name), mtime)
        << name << " was rewritten";
  }
}

}  // namespace
}  // namespace medsync::relational
