// Randomized round-trip ("fuzz-lite") tests for every serialization layer
// the protocol depends on: JSON documents, tables, deltas, lens specs,
// transactions, and blocks. A wire-format asymmetry anywhere here would
// silently break digests, signatures, or replica determinism, so these
// sweeps are cheap insurance.

#include <gtest/gtest.h>

#include "bx/compose_lens.h"
#include "bx/lens_factory.h"
#include "chain/block.h"
#include "common/random.h"
#include "common/strings.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/delta.h"

namespace medsync {
namespace {

Json RandomJson(Rng* rng, int depth) {
  switch (rng->NextBelow(depth <= 0 ? 5 : 7)) {
    case 0:
      return Json(nullptr);
    case 1:
      return Json(rng->NextBool());
    case 2:
      return Json(static_cast<int64_t>(rng->NextUint64()));
    case 3:
      // Round doubles survive text round trips exactly (%.17g).
      return Json(static_cast<double>(rng->NextInRange(-1000, 1000)) / 8.0);
    case 4: {
      // Strings with hostile characters.
      std::string s = rng->NextAlnumString(rng->NextBelow(12));
      if (rng->NextBool(0.4)) s += "\"\\\n\t\x01";
      if (rng->NextBool(0.2)) s += "\xc3\xa9";  // UTF-8 é
      return Json(std::move(s));
    }
    case 5: {
      Json arr = Json::MakeArray();
      size_t n = rng->NextBelow(5);
      for (size_t i = 0; i < n; ++i) {
        arr.Append(RandomJson(rng, depth - 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::MakeObject();
      size_t n = rng->NextBelow(5);
      for (size_t i = 0; i < n; ++i) {
        obj.Set(rng->NextAlnumString(1 + rng->NextBelow(8)),
                RandomJson(rng, depth - 1));
      }
      return obj;
    }
  }
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, JsonRoundTripsAndIsCanonical) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Json doc = RandomJson(&rng, 4);
    std::string compact = doc.Dump();
    Result<Json> reparsed = Json::Parse(compact);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << compact;
    EXPECT_EQ(*reparsed, doc);
    // Canonical: re-serializing the parse is byte-identical (the property
    // transaction digests rely on).
    EXPECT_EQ(reparsed->Dump(), compact);
    // Pretty output parses back too.
    Result<Json> pretty = Json::Parse(doc.DumpPretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(*pretty, doc);
  }
}

TEST_P(FuzzTest, JsonParserSurvivesMutilatedInput) {
  Rng rng(GetParam());
  Json doc = RandomJson(&rng, 4);
  std::string text = doc.Dump();
  for (int i = 0; i < 100; ++i) {
    std::string mutated = text;
    size_t pos = rng.NextBelow(mutated.size() + 1);
    switch (rng.NextBelow(3)) {
      case 0:
        if (!mutated.empty() && pos < mutated.size()) {
          mutated[pos] = static_cast<char>(rng.NextBelow(256));
        }
        break;
      case 1:
        mutated.insert(pos, 1, static_cast<char>(rng.NextBelow(256)));
        break;
      default:
        if (pos < mutated.size()) mutated.erase(pos, 1);
        break;
    }
    // Must never crash; may or may not parse.
    Result<Json> result = Json::Parse(mutated);
    if (result.ok()) {
      // If it parsed, it must re-serialize consistently.
      EXPECT_EQ(Json::Parse(result->Dump())->Dump(), result->Dump());
    }
  }
}

TEST_P(FuzzTest, TableRoundTripsThroughJson) {
  medical::GeneratorConfig config;
  config.seed = GetParam() * 7919 + 1;
  config.record_count = 1 + (GetParam() % 60);
  relational::Table table = medical::GenerateFullRecords(config);
  Result<relational::Table> back = relational::Table::FromJson(table.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, table);
  EXPECT_EQ(back->ContentDigest(), table.ContentDigest());
}

TEST_P(FuzzTest, DeltaRoundTripsThroughJson) {
  Rng rng(GetParam());
  medical::GeneratorConfig config;
  config.seed = GetParam() * 104729 + 3;
  config.record_count = 20;
  relational::Table before = medical::GenerateFullRecords(config);
  relational::Table after = before;
  // Random mutations.
  std::vector<relational::Row> rows = after.RowsInKeyOrder();
  for (int i = 0; i < 5; ++i) {
    const relational::Row& victim = rows[rng.NextIndex(rows.size())];
    relational::Key key = relational::KeyOf(after.schema(), victim);
    if (rng.NextBool(0.3)) {
      IgnoreStatusForTest(after.Delete(key));
    } else {
      IgnoreStatusForTest(
          after.UpdateAttribute(key, medical::kDosage,
                                relational::Value::String(
                                    rng.NextAlnumString(8))));
    }
  }
  Result<relational::TableDelta> delta = relational::ComputeDelta(before,
                                                                  after);
  ASSERT_TRUE(delta.ok());
  Result<relational::TableDelta> back =
      relational::TableDelta::FromJson(delta->ToJson());
  ASSERT_TRUE(back.ok());
  relational::Table patched = before;
  ASSERT_TRUE(relational::ApplyDelta(*back, &patched).ok());
  EXPECT_EQ(patched, after);
}

TEST_P(FuzzTest, TransactionDigestStableThroughJson) {
  Rng rng(GetParam());
  crypto::KeyPair key = crypto::KeyPair::FromSeed(
      StrCat("fuzz-", GetParam() % 5));
  chain::Transaction tx;
  tx.from = key.address();
  tx.to = rng.NextBool() ? crypto::Address::Zero()
                         : crypto::KeyPair::FromSeed("target").address();
  tx.nonce = rng.NextUint64();
  tx.method = rng.NextAlnumString(1 + rng.NextBelow(10));
  tx.params = RandomJson(&rng, 3);
  tx.timestamp = static_cast<Micros>(rng.NextBelow(1u << 30));
  tx.Sign(key);

  Result<chain::Transaction> back = chain::Transaction::FromJson(tx.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->Id(), tx.Id());
  EXPECT_TRUE(back->VerifySignature());
}

TEST_P(FuzzTest, BlockRoundTripPreservesHashAndMerkleRoot) {
  Rng rng(GetParam());
  crypto::KeyPair key = crypto::KeyPair::FromSeed("fuzz-block-signer");
  chain::Block block;
  block.header.height = rng.NextBelow(1000);
  block.header.parent = crypto::Sha256::Hash(rng.NextAlnumString(8));
  block.header.timestamp = static_cast<Micros>(rng.NextBelow(1u << 30));
  size_t tx_count = rng.NextBelow(6);
  for (size_t i = 0; i < tx_count; ++i) {
    chain::Transaction tx;
    tx.from = key.address();
    tx.to = crypto::KeyPair::FromSeed("t").address();
    tx.nonce = i;
    tx.method = "m";
    tx.params = RandomJson(&rng, 2);
    tx.timestamp = 1;
    tx.Sign(key);
    block.transactions.push_back(std::move(tx));
  }
  block.header.merkle_root = block.ComputeMerkleRoot();

  Result<chain::Block> back = chain::Block::FromJson(block.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->header.Hash(), block.header.Hash());
  EXPECT_EQ(back->ComputeMerkleRoot(), block.header.merkle_root);
}

TEST_P(FuzzTest, LensSpecsRoundTripAndBehaveIdentically) {
  Rng rng(GetParam());
  medical::GeneratorConfig config;
  config.seed = GetParam() + 17;
  config.record_count = 15;
  relational::Table source = medical::GenerateFullRecords(config);

  // Random project+select composition.
  std::vector<std::string> attrs{medical::kPatientId};
  for (const char* attr :
       {medical::kMedicationName, medical::kDosage, medical::kAddress}) {
    if (rng.NextBool(0.7)) attrs.push_back(attr);
  }
  bx::LensPtr lens = bx::Compose(
      bx::MakeSelectLens(relational::Predicate::Compare(
          medical::kPatientId, relational::CompareOp::kLt,
          relational::Value::Int(
              1000 + static_cast<int64_t>(rng.NextBelow(20))))),
      bx::MakeProjectLens(attrs, {medical::kPatientId}));

  Result<bx::LensPtr> back = bx::LensFromJson(lens->ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  Result<relational::Table> v1 = lens->Get(source);
  Result<relational::Table> v2 = (*back)->Get(source);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v1, *v2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace medsync
