// Unit and stress tests for the threading subsystem: ThreadPool queue
// semantics (including drain-on-destruction), Latch, TaskGroup fork-join
// with exception propagation, and ParallelFor chunk coverage /
// ordering-independence. These carry the `tsan` ctest label and are the
// core of the -DMEDSYNC_SANITIZE=thread harness.

#include "common/threading/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace medsync::threading {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 1000;
  std::atomic<int> executed{0};
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&executed, &latch] {
      executed.fetch_add(1, std::memory_order_relaxed);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_EQ(pool.tasks_executed(), static_cast<uint64_t>(kTasks));
}

TEST(ThreadPoolTest, ZeroWorkerRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  Latch latch(1);
  pool.Submit([&latch] { latch.CountDown(); });
  latch.Wait();
}

TEST(ThreadPoolTest, SingleWorkerExecutesInSubmissionOrder) {
  // One worker means the FIFO queue is a total order; the observed sequence
  // must match submission order exactly.
  ThreadPool pool(1);
  std::vector<int> order;
  Latch latch(100);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&order, &latch, i] {
      order.push_back(i);
      latch.CountDown();
    });
  }
  latch.Wait();
  std::vector<int> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  // Every task submitted before the destructor runs, even if it was still
  // queued when destruction began.
  std::atomic<int> executed{0};
  constexpr int kTasks = 500;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait: ~ThreadPool must finish the backlog itself.
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(LatchTest, WaitReturnsOnlyAfterFullCountdown) {
  Latch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  latch.CountDown();
  latch.CountDown();
  EXPECT_FALSE(released.load());
  latch.CountDown();
  waiter.join();
  EXPECT_TRUE(released.load());
  latch.Wait();  // Already open: returns immediately.
}

TEST(TaskGroupTest, WaitJoinsAllForkedTasks) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    group.Run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 64);
  // The group is reusable after a Wait.
  group.Run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  group.Wait();
  EXPECT_EQ(done.load(), 65);
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  int done = 0;
  group.Run([&done] { ++done; });  // No pool: executes on this thread.
  EXPECT_EQ(done, 1);
  group.Wait();
}

TEST(TaskGroupTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> survivors{0};
  group.Run([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 8; ++i) {
    group.Run([&survivors] { survivors.fetch_add(1); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(survivors.load(), 8);  // Sibling tasks still ran to completion.
  // The error was consumed; the group works again.
  group.Run([&survivors] { survivors.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(survivors.load(), 9);
}

TEST(TaskGroupTest, InlineExceptionAlsoSurfacesAtWait) {
  TaskGroup group(nullptr);
  group.Run([] { throw std::logic_error("inline failure"); });
  EXPECT_THROW(group.Wait(), std::logic_error);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<int> hits(kN, 0);
  ParallelFor(&pool, 0, kN, /*grain=*/64, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelForTest, ResultIndependentOfPoolAndGrain) {
  // An order-independent reduction (per-slot writes) gives the same result
  // serially, with one worker, and with many workers at several grains.
  constexpr size_t kN = 4097;
  auto run = [](ThreadPool* pool, size_t grain) {
    std::vector<uint64_t> out(kN);
    ParallelFor(pool, 0, kN, grain, [&out](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) out[i] = i * i + 1;
    });
    return out;
  };
  std::vector<uint64_t> serial = run(nullptr, 1);
  ThreadPool one(1);
  ThreadPool many(8);
  for (size_t grain : {1ul, 7ul, 64ul, 5000ul}) {
    EXPECT_EQ(run(&one, grain), serial) << "grain " << grain;
    EXPECT_EQ(run(&many, grain), serial) << "grain " << grain;
  }
}

TEST(ParallelForTest, EmptyAndSingleIndexRanges) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(&pool, 5, 5, 1, [&calls](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);  // Empty range: fn never invoked.
  ParallelFor(&pool, 7, 8, 16, [&calls](size_t begin, size_t end) {
    EXPECT_EQ(begin, 7u);
    EXPECT_EQ(end, 8u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);  // Sub-grain range: one serial invocation.
}

TEST(ParallelForTest, PropagatesChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 0, 1000, 10,
                  [](size_t begin, size_t) {
                    if (begin >= 500) throw std::runtime_error("chunk died");
                  }),
      std::runtime_error);
}

TEST(ThreadPoolStressTest, ConcurrentSubmittersAndHeavyChurn) {
  // Several producer threads hammer one pool while the pool's workers churn
  // through tiny tasks — the shape TSan needs to certify the queue.
  ThreadPool pool(4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<int> executed{0};
  Latch latch(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed, &latch] {
      for (int i = 0; i < kPerProducer; ++i) {
        pool.Submit([&executed, &latch] {
          executed.fetch_add(1, std::memory_order_relaxed);
          latch.CountDown();
        });
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  latch.Wait();
  EXPECT_EQ(executed.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace medsync::threading
