#include "crypto/sha256.h"

#include <gtest/gtest.h>

namespace medsync::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(Sha256::Hash("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Hash("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(hasher.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data =
      "the quick brown fox jumps over the lazy dog, repeatedly and with "
      "increasing enthusiasm until the block boundary is crossed";
  for (size_t split = 0; split <= data.size(); split += 7) {
    Sha256 hasher;
    hasher.Update(data.substr(0, split));
    hasher.Update(data.substr(split));
    EXPECT_EQ(hasher.Finish(), Sha256::Hash(data)) << "split=" << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaryInputs) {
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
    std::string data(len, 'x');
    Sha256 hasher;
    for (char c : data) hasher.Update(&c, 1);
    EXPECT_EQ(hasher.Finish(), Sha256::Hash(data)) << "len=" << len;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 hasher;
  hasher.Update("garbage");
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(hasher.Finish(), Sha256::Hash("abc"));
}

TEST(Hash256Test, HexRoundTrip) {
  Hash256 h = Sha256::Hash("seed");
  bool ok = false;
  Hash256 parsed = Hash256::FromHex(h.ToHex(), &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parsed, h);
}

TEST(Hash256Test, FromHexRejectsBadInput) {
  bool ok = true;
  Hash256::FromHex("abcd", &ok);
  EXPECT_FALSE(ok);
  ok = true;
  Hash256::FromHex(std::string(64, 'z'), &ok);
  EXPECT_FALSE(ok);
}

TEST(Hash256Test, ZeroAndOrdering) {
  EXPECT_TRUE(Hash256::Zero().IsZero());
  EXPECT_FALSE(Sha256::Hash("x").IsZero());
  Hash256 a = Sha256::Hash("a");
  Hash256 b = Sha256::Hash("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_EQ(a.ShortHex(), a.ToHex().substr(0, 8));
}

TEST(Sha256Test, HashPairOrderSensitive) {
  Hash256 a = Sha256::Hash("left");
  Hash256 b = Sha256::Hash("right");
  EXPECT_NE(Sha256::HashPair(a, b), Sha256::HashPair(b, a));
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  std::string key(20, '\x0b');
  EXPECT_EQ(HmacSha256(key, "Hi There").ToHex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HmacSha256("Jefe", "what do ya want for nothing?").ToHex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 0xaa x20 key, 0xdd x50 data.
TEST(HmacTest, Rfc4231Case3) {
  std::string key(20, '\xaa');
  std::string data(50, '\xdd');
  EXPECT_EQ(HmacSha256(key, data).ToHex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(HmacTest, LongKeyIsHashedFirst) {
  std::string key(131, '\xaa');
  EXPECT_EQ(HmacSha256(key,
                       "Test Using Larger Than Block-Size Key - Hash Key "
                       "First")
                .ToHex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  EXPECT_NE(HmacSha256("key1", "msg"), HmacSha256("key2", "msg"));
  EXPECT_NE(HmacSha256("key", "msg1"), HmacSha256("key", "msg2"));
}

}  // namespace
}  // namespace medsync::crypto
