#include "relational/delta.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace medsync::relational {
namespace {

Schema S() {
  return *Schema::Create(
      {{"id", DataType::kInt, false}, {"v", DataType::kString, true}},
      {"id"});
}

Row R(int64_t id, const char* v) { return {Value::Int(id), Value::String(v)}; }

TEST(DeltaTest, EmptyDeltaForIdenticalTables) {
  Table a(S());
  ASSERT_TRUE(a.Insert(R(1, "x")).ok());
  Result<TableDelta> d = ComputeDelta(a, a);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->empty());
  EXPECT_EQ(d->size(), 0u);
}

TEST(DeltaTest, ClassifiesInsertsUpdatesDeletes) {
  Table before(S()), after(S());
  ASSERT_TRUE(before.Insert(R(1, "keep")).ok());
  ASSERT_TRUE(before.Insert(R(2, "change")).ok());
  ASSERT_TRUE(before.Insert(R(3, "drop")).ok());
  ASSERT_TRUE(after.Insert(R(1, "keep")).ok());
  ASSERT_TRUE(after.Insert(R(2, "changed")).ok());
  ASSERT_TRUE(after.Insert(R(4, "new")).ok());

  Result<TableDelta> d = ComputeDelta(before, after);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->inserts.size(), 1u);
  EXPECT_EQ(d->updates.size(), 1u);
  EXPECT_EQ(d->deletes.size(), 1u);
  EXPECT_EQ(d->inserts[0][0].AsInt(), 4);
  EXPECT_EQ(d->updates[0][1].AsString(), "changed");
  EXPECT_EQ(d->deletes[0][0].AsInt(), 3);
}

TEST(DeltaTest, ApplyReconstructsAfter) {
  Table before(S()), after(S());
  ASSERT_TRUE(before.Insert(R(1, "a")).ok());
  ASSERT_TRUE(before.Insert(R(2, "b")).ok());
  ASSERT_TRUE(after.Insert(R(2, "B")).ok());
  ASSERT_TRUE(after.Insert(R(3, "c")).ok());

  Result<TableDelta> d = ComputeDelta(before, after);
  ASSERT_TRUE(d.ok());
  Table patched = before;
  ASSERT_TRUE(ApplyDelta(*d, &patched).ok());
  EXPECT_EQ(patched, after);
}

TEST(DeltaTest, ApplyValidatesBeforeMutating) {
  Table t(S());
  ASSERT_TRUE(t.Insert(R(1, "x")).ok());
  Table original = t;

  TableDelta colliding;
  colliding.inserts.push_back(R(1, "dup"));
  EXPECT_TRUE(ApplyDelta(colliding, &t).IsAlreadyExists());
  EXPECT_EQ(t, original);

  TableDelta missing_delete;
  missing_delete.deletes.push_back({Value::Int(9)});
  EXPECT_TRUE(ApplyDelta(missing_delete, &t).IsNotFound());
  EXPECT_EQ(t, original);

  TableDelta missing_update;
  missing_update.updates.push_back(R(9, "x"));
  EXPECT_TRUE(ApplyDelta(missing_update, &t).IsNotFound());
  EXPECT_EQ(t, original);

  TableDelta invalid_row;
  invalid_row.inserts.push_back({Value::Null(), Value::Null()});
  EXPECT_TRUE(ApplyDelta(invalid_row, &t).IsInvalidArgument());
  EXPECT_EQ(t, original);
}

TEST(DeltaTest, SchemaMismatchRejected) {
  Table a(S());
  Table b(*Schema::Create({{"x", DataType::kInt, false}}, {"x"}));
  EXPECT_FALSE(ComputeDelta(a, b).ok());
}

TEST(DeltaTest, JsonRoundTrip) {
  TableDelta d;
  d.inserts.push_back(R(1, "i"));
  d.updates.push_back(R(2, "u"));
  d.deletes.push_back({Value::Int(3)});
  Result<TableDelta> back = TableDelta::FromJson(d.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->inserts, d.inserts);
  EXPECT_EQ(back->updates, d.updates);
  EXPECT_EQ(back->deletes, d.deletes);
  EXPECT_FALSE(TableDelta::FromJson(Json(1)).ok());
}

/// Property sweep: compute+apply round-trips across random table pairs.
class DeltaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaPropertyTest, ApplyComputeRoundTrip) {
  Rng rng(GetParam());
  Table before(S()), after(S());
  for (int i = 0; i < 40; ++i) {
    std::string v1 = rng.NextAlnumString(4);
    std::string v2 = rng.NextAlnumString(4);
    bool in_before = rng.NextBool(0.7);
    bool in_after = rng.NextBool(0.7);
    if (in_before) {
      ASSERT_TRUE(before.Insert(R(i, v1.c_str())).ok());
    }
    if (in_after) {
      const std::string& v = rng.NextBool() ? v1 : v2;
      ASSERT_TRUE(after.Insert(R(i, v.c_str())).ok());
    }
  }
  Result<TableDelta> d = ComputeDelta(before, after);
  ASSERT_TRUE(d.ok());
  Table patched = before;
  ASSERT_TRUE(ApplyDelta(*d, &patched).ok());
  EXPECT_EQ(patched, after);

  // The reverse delta undoes the change.
  Result<TableDelta> rd = ComputeDelta(after, before);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(ApplyDelta(*rd, &patched).ok());
  EXPECT_EQ(patched, before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace medsync::relational
