#include "relational/delta.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace medsync::relational {
namespace {

Schema S() {
  return *Schema::Create(
      {{"id", DataType::kInt, false}, {"v", DataType::kString, true}},
      {"id"});
}

Row R(int64_t id, const char* v) { return {Value::Int(id), Value::String(v)}; }

TEST(DeltaTest, EmptyDeltaForIdenticalTables) {
  Table a(S());
  ASSERT_TRUE(a.Insert(R(1, "x")).ok());
  Result<TableDelta> d = ComputeDelta(a, a);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->empty());
  EXPECT_EQ(d->size(), 0u);
}

TEST(DeltaTest, ClassifiesInsertsUpdatesDeletes) {
  Table before(S()), after(S());
  ASSERT_TRUE(before.Insert(R(1, "keep")).ok());
  ASSERT_TRUE(before.Insert(R(2, "change")).ok());
  ASSERT_TRUE(before.Insert(R(3, "drop")).ok());
  ASSERT_TRUE(after.Insert(R(1, "keep")).ok());
  ASSERT_TRUE(after.Insert(R(2, "changed")).ok());
  ASSERT_TRUE(after.Insert(R(4, "new")).ok());

  Result<TableDelta> d = ComputeDelta(before, after);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->inserts.size(), 1u);
  EXPECT_EQ(d->updates.size(), 1u);
  EXPECT_EQ(d->deletes.size(), 1u);
  EXPECT_EQ(d->inserts[0][0].AsInt(), 4);
  EXPECT_EQ(d->updates[0][1].AsString(), "changed");
  EXPECT_EQ(d->deletes[0][0].AsInt(), 3);
}

TEST(DeltaTest, ApplyReconstructsAfter) {
  Table before(S()), after(S());
  ASSERT_TRUE(before.Insert(R(1, "a")).ok());
  ASSERT_TRUE(before.Insert(R(2, "b")).ok());
  ASSERT_TRUE(after.Insert(R(2, "B")).ok());
  ASSERT_TRUE(after.Insert(R(3, "c")).ok());

  Result<TableDelta> d = ComputeDelta(before, after);
  ASSERT_TRUE(d.ok());
  Table patched = before;
  ASSERT_TRUE(ApplyDelta(*d, &patched).ok());
  EXPECT_EQ(patched, after);
}

TEST(DeltaTest, ApplyValidatesBeforeMutating) {
  Table t(S());
  ASSERT_TRUE(t.Insert(R(1, "x")).ok());
  Table original = t;

  TableDelta colliding;
  colliding.inserts.push_back(R(1, "dup"));
  EXPECT_TRUE(ApplyDelta(colliding, &t).IsAlreadyExists());
  EXPECT_EQ(t, original);

  TableDelta missing_delete;
  missing_delete.deletes.push_back({Value::Int(9)});
  EXPECT_TRUE(ApplyDelta(missing_delete, &t).IsNotFound());
  EXPECT_EQ(t, original);

  TableDelta missing_update;
  missing_update.updates.push_back(R(9, "x"));
  EXPECT_TRUE(ApplyDelta(missing_update, &t).IsNotFound());
  EXPECT_EQ(t, original);

  TableDelta invalid_row;
  invalid_row.inserts.push_back({Value::Null(), Value::Null()});
  EXPECT_TRUE(ApplyDelta(invalid_row, &t).IsInvalidArgument());
  EXPECT_EQ(t, original);
}

TEST(DeltaTest, KeyReassignmentIsLegal) {
  // Deleting key K and inserting a fresh row at K models a key change
  // (e.g. a renamed medication in a name-keyed view). Inserts validate
  // against the POST-delete keyset, so this must apply cleanly.
  Table t(S());
  ASSERT_TRUE(t.Insert(R(1, "old")).ok());
  TableDelta reassign;
  reassign.deletes.push_back({Value::Int(1)});
  reassign.inserts.push_back(R(1, "new"));
  ASSERT_TRUE(ApplyDelta(reassign, &t).ok());
  EXPECT_EQ(t.Get({Value::Int(1)})->at(1).AsString(), "new");
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(DeltaTest, UpdateMayTargetFreshlyInsertedKey) {
  Table t(S());
  TableDelta d;
  d.inserts.push_back(R(7, "inserted"));
  d.updates.push_back(R(7, "then updated"));
  ASSERT_TRUE(ApplyDelta(d, &t).ok());
  EXPECT_EQ(t.Get({Value::Int(7)})->at(1).AsString(), "then updated");
}

TEST(DeltaTest, DuplicateKeysWithinASectionRejected) {
  // Duplicates inside one section would make application order-dependent.
  Table t(S());
  ASSERT_TRUE(t.Insert(R(1, "x")).ok());
  Table original = t;

  TableDelta dup_inserts;
  dup_inserts.inserts.push_back(R(2, "a"));
  dup_inserts.inserts.push_back(R(2, "b"));
  EXPECT_TRUE(ApplyDelta(dup_inserts, &t).IsAlreadyExists());
  EXPECT_EQ(t, original);

  TableDelta dup_deletes;
  dup_deletes.deletes.push_back({Value::Int(1)});
  dup_deletes.deletes.push_back({Value::Int(1)});
  EXPECT_FALSE(ApplyDelta(dup_deletes, &t).ok());
  EXPECT_EQ(t, original);

  TableDelta dup_updates;
  dup_updates.updates.push_back(R(1, "a"));
  dup_updates.updates.push_back(R(1, "b"));
  EXPECT_TRUE(ApplyDelta(dup_updates, &t).IsInvalidArgument());
  EXPECT_EQ(t, original);
}

TEST(DeltaTest, DeleteThenUpdateSameKeyRejected) {
  // An update may only target keys that survive the deletes (or are
  // freshly inserted); updating a deleted key is a contradiction.
  Table t(S());
  ASSERT_TRUE(t.Insert(R(1, "x")).ok());
  Table original = t;
  TableDelta d;
  d.deletes.push_back({Value::Int(1)});
  d.updates.push_back(R(1, "ghost"));
  EXPECT_FALSE(ApplyDelta(d, &t).ok());
  EXPECT_EQ(t, original);
}

TEST(DeltaTest, SchemaMismatchRejected) {
  Table a(S());
  Table b(*Schema::Create({{"x", DataType::kInt, false}}, {"x"}));
  EXPECT_FALSE(ComputeDelta(a, b).ok());
}

TEST(DeltaTest, JsonRoundTrip) {
  TableDelta d;
  d.inserts.push_back(R(1, "i"));
  d.updates.push_back(R(2, "u"));
  d.deletes.push_back({Value::Int(3)});
  Result<TableDelta> back = TableDelta::FromJson(d.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->inserts, d.inserts);
  EXPECT_EQ(back->updates, d.updates);
  EXPECT_EQ(back->deletes, d.deletes);
  EXPECT_FALSE(TableDelta::FromJson(Json(1)).ok());
}

TEST(DeltaTest, FromJsonTreatsMissingSectionsAsEmpty) {
  // Senders may omit empty sections; parsing must not demand them.
  Result<TableDelta> empty = TableDelta::FromJson(Json::MakeObject());
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->empty());

  Json only_deletes = Json::MakeObject();
  Json deletes = Json::MakeArray();
  Json key = Json::MakeArray();
  key.Append(Value::Int(3).ToJson());
  deletes.Append(std::move(key));
  only_deletes.Set("deletes", std::move(deletes));
  Result<TableDelta> partial = TableDelta::FromJson(only_deletes);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(partial->inserts.empty());
  EXPECT_TRUE(partial->updates.empty());
  ASSERT_EQ(partial->deletes.size(), 1u);

  // A PRESENT section of a non-array type is an error, not "empty".
  Json bad = Json::MakeObject();
  bad.Set("inserts", Json("nope"));
  EXPECT_FALSE(TableDelta::FromJson(bad).ok());
}

TEST(DeltaTest, JsonRoundTripOfEmptyDelta) {
  TableDelta d;
  Result<TableDelta> back = TableDelta::FromJson(d.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->empty());
}

/// Property sweep: compute+apply round-trips across random table pairs.
class DeltaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaPropertyTest, ApplyComputeRoundTrip) {
  Rng rng(GetParam());
  Table before(S()), after(S());
  for (int i = 0; i < 40; ++i) {
    std::string v1 = rng.NextAlnumString(4);
    std::string v2 = rng.NextAlnumString(4);
    bool in_before = rng.NextBool(0.7);
    bool in_after = rng.NextBool(0.7);
    if (in_before) {
      ASSERT_TRUE(before.Insert(R(i, v1.c_str())).ok());
    }
    if (in_after) {
      const std::string& v = rng.NextBool() ? v1 : v2;
      ASSERT_TRUE(after.Insert(R(i, v.c_str())).ok());
    }
  }
  Result<TableDelta> d = ComputeDelta(before, after);
  ASSERT_TRUE(d.ok());
  Table patched = before;
  ASSERT_TRUE(ApplyDelta(*d, &patched).ok());
  EXPECT_EQ(patched, after);

  // The reverse delta undoes the change.
  Result<TableDelta> rd = ComputeDelta(after, before);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(ApplyDelta(*rd, &patched).ok());
  EXPECT_EQ(patched, before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace medsync::relational
