// Reproduces the paper's Fig. 1 "Data distribution": the full medical
// records, the three stakeholders' local tables D1/D2/D3, and the shared
// views D13/D31 and D23/D32 — every one derived through the actual lens
// machinery rather than hand-written.
//
//   ./build/examples/clinic_network [record_count]
//
// With no argument it prints the paper's exact two-patient tables; with a
// count it generates synthetic records at that scale and prints summaries.

#include <cstdio>
#include <cstdlib>

#include "bx/lens_factory.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/query.h"

int main(int argc, char** argv) {
  using namespace medsync;
  using namespace medsync::medical;
  using relational::Table;

  size_t record_count = 0;
  if (argc > 1) record_count = static_cast<size_t>(std::atoll(argv[1]));

  Table full = record_count == 0
                   ? MakeFig1FullRecords()
                   : GenerateFullRecords({42, record_count, 1000});

  auto print = [&](const char* title, const Table& table) {
    std::printf("== %s (%zu rows) ==\n", title, table.row_count());
    if (table.row_count() <= 12) {
      std::printf("%s\n", table.ToAsciiTable().c_str());
    } else {
      std::printf("  digest %s\n\n", table.ContentDigest().c_str());
    }
  };

  print("Full medical records", full);

  // Stakeholder tables (what each peer keeps locally, Fig. 1).
  auto d1 = relational::Project(
      full, {kPatientId, kMedicationName, kClinicalData, kAddress, kDosage},
      {kPatientId});
  auto d2 = relational::Project(
      full, {kMedicationName, kMechanismOfAction, kModeOfAction},
      {kMedicationName});
  auto d3 = relational::Project(
      full,
      {kPatientId, kMedicationName, kClinicalData, kMechanismOfAction,
       kDosage},
      {kPatientId});
  if (!d1.ok() || !d2.ok() || !d3.ok()) {
    std::fprintf(stderr, "projection failed\n");
    return 1;
  }
  print("D1 (Patient)", *d1);
  print("D2 (Researcher)", *d2);
  print("D3 (Doctor)", *d3);

  // Shared views, derived by the BX lenses the peers actually register.
  auto lens_pd = bx::MakeProjectLens(
      {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId});
  auto lens_dr = bx::MakeProjectLens({kMedicationName, kMechanismOfAction},
                                     {kMedicationName});

  auto d13 = lens_pd->Get(*d1);
  auto d31 = lens_pd->Get(*d3);
  auto d23 = lens_dr->Get(*d2);
  auto d32 = lens_dr->Get(*d3);
  if (!d13.ok() || !d31.ok() || !d23.ok() || !d32.ok()) {
    std::fprintf(stderr, "lens derivation failed\n");
    return 1;
  }
  print("D13 (shared, patient's copy)", *d13);
  print("D23 (shared, researcher's copy)", *d23);

  // The paper's invariant: "Note that D13 and D31 are identical tables".
  std::printf("D13 == D31 : %s\n", (*d13 == *d31) ? "yes" : "NO (bug!)");
  std::printf("D23 == D32 : %s\n\n", (*d23 == *d32) ? "yes" : "NO (bug!)");

  // The lens specs are serializable — this is what sharing peers agree on
  // when registering the table on-chain.
  std::printf("lens(D1 -> D13) spec: %s\n",
              lens_pd->ToJson().Dump().c_str());
  std::printf("lens(D2 -> D23) spec: %s\n", lens_dr->ToJson().Dump().c_str());
  return 0;
}
