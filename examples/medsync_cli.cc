// A scripted command-line driver for the clinic network — the closest
// thing to "operating" the paper's system interactively. Reads commands
// from stdin (or runs a built-in demo script with --demo):
//
//   update <peer> <table_id> <patient_id> <attr> <value...>
//   insert <peer> <table_id> <patient_id> <medication> <note> <dosage>
//   delete <peer> <table_id> <patient_id>
//   read   <peer> <table_id>
//   source <peer> <table>          # print a local table
//   grant  <peer> <table_id> <attr> <grantee>   (revoke likewise)
//   entry  <table_id>              # on-chain metadata
//   audit  <table_id>
//   settle                         # run simulated time until quiescent
//   stats
//   help / quit
//
// Peers: doctor | patient | researcher. Tables: D13&D31 | D23&D32.
// Attributes: a0_patient_id a1_medication_name a2_clinical_data
//             a3_address a4_dosage a5_mechanism_of_action.
//
//   ./build/examples/medsync_cli --demo
//   echo "update doctor D13&D31 188 a4_dosage 300 mg" | the binary also
//   works as a filter reading commands from stdin.
//
// A second mode drives the seeded hospital-network generator instead of
// the clinic — the command-line replay handle the soak tests print when a
// seed fails:
//
//   ./build/examples/medsync_cli gen --seed 7 --peers 100 --depth 3 \
//       [--events 48] [--prefix N]

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "common/strings.h"
#include "core/audit.h"
#include "core/scenario.h"
#include "core/scenario_gen.h"
#include "core/workload.h"
#include "medical/records.h"

namespace {

using namespace medsync;
using relational::Value;

class Cli {
 public:
  bool Init() {
    core::ScenarioOptions options;
    auto scenario = core::ClinicScenario::Create(options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   scenario.status().ToString().c_str());
      return false;
    }
    clinic_ = std::move(*scenario);
    auto trace = [](const std::string& line) {
      std::printf("  | %s\n", line.c_str());
    };
    clinic_->doctor().SetTraceSink(trace);
    clinic_->patient().SetTraceSink(trace);
    clinic_->researcher().SetTraceSink(trace);
    std::printf("clinic network up: 3 peers, %zu chain nodes, contract %s\n",
                clinic_->node_count(), clinic_->contract().ToHex().c_str());
    return true;
  }

  core::Peer* PeerByName(const std::string& name) {
    if (name == "doctor") return &clinic_->doctor();
    if (name == "patient") return &clinic_->patient();
    if (name == "researcher") return &clinic_->researcher();
    std::printf("unknown peer '%s' (doctor|patient|researcher)\n",
                name.c_str());
    return nullptr;
  }

  /// Executes one command line; returns false on "quit".
  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf("%s", kHelp);
      return true;
    }
    if (cmd == "settle") {
      Status s = clinic_->SettleAll();
      std::printf("settle: %s (sim time %s)\n", s.ToString().c_str(),
                  FormatTimestamp(clinic_->simulator().Now()).c_str());
      return true;
    }
    if (cmd == "stats") {
      for (const char* name : {"doctor", "patient", "researcher"}) {
        core::Peer* peer = PeerByName(name);
        const core::Peer::Stats& s = peer->stats();
        std::printf(
            "%-11s proposed=%llu committed=%llu denied=%llu fetched=%llu "
            "acked=%llu cascades=%llu\n",
            name, (unsigned long long)s.updates_proposed,
            (unsigned long long)s.updates_committed,
            (unsigned long long)s.updates_denied,
            (unsigned long long)s.fetches_applied,
            (unsigned long long)s.acks_sent,
            (unsigned long long)s.cascades_proposed);
      }
      auto net = clinic_->network().stats();
      std::printf("network: %llu sent, %llu delivered, %llu dropped, "
                  "%llu bytes\n",
                  (unsigned long long)net.sent,
                  (unsigned long long)net.delivered,
                  (unsigned long long)net.dropped,
                  (unsigned long long)net.bytes);
      return true;
    }

    if (cmd == "update") {
      std::string peer_name, table, attr;
      int64_t id;
      in >> peer_name >> table >> id >> attr;
      std::string value;
      std::getline(in, value);
      core::Peer* peer = PeerByName(peer_name);
      if (!peer) return true;
      Status s = peer->UpdateSharedAttribute(
          table, {Value::Int(id)}, attr,
          Value::String(std::string(StripWhitespace(value))));
      std::printf("update: %s\n", s.ToString().c_str());
      return true;
    }
    if (cmd == "insert") {
      std::string peer_name, table, med, note, dosage;
      int64_t id;
      in >> peer_name >> table >> id >> med >> note;
      std::getline(in, dosage);
      core::Peer* peer = PeerByName(peer_name);
      if (!peer) return true;
      Status s = peer->InsertSharedRow(
          table, {Value::Int(id), Value::String(med), Value::String(note),
                  Value::String(std::string(StripWhitespace(dosage)))});
      std::printf("insert: %s\n", s.ToString().c_str());
      return true;
    }
    if (cmd == "delete") {
      std::string peer_name, table;
      int64_t id;
      in >> peer_name >> table >> id;
      core::Peer* peer = PeerByName(peer_name);
      if (!peer) return true;
      Status s = peer->DeleteSharedRow(table, {Value::Int(id)});
      std::printf("delete: %s\n", s.ToString().c_str());
      return true;
    }
    if (cmd == "read") {
      std::string peer_name, table;
      in >> peer_name >> table;
      core::Peer* peer = PeerByName(peer_name);
      if (!peer) return true;
      auto view = peer->ReadSharedTable(table);
      if (!view.ok()) {
        std::printf("read: %s\n", view.status().ToString().c_str());
      } else {
        std::printf("%s", view->ToAsciiTable().c_str());
      }
      return true;
    }
    if (cmd == "source") {
      std::string peer_name, table;
      in >> peer_name >> table;
      core::Peer* peer = PeerByName(peer_name);
      if (!peer) return true;
      auto snapshot = peer->database().Snapshot(table);
      if (!snapshot.ok()) {
        std::printf("source: %s\n", snapshot.status().ToString().c_str());
      } else {
        std::printf("%s", snapshot->ToAsciiTable().c_str());
      }
      return true;
    }
    if (cmd == "grant" || cmd == "revoke") {
      std::string peer_name, table, attr, grantee_name;
      in >> peer_name >> table >> attr >> grantee_name;
      core::Peer* peer = PeerByName(peer_name);
      core::Peer* grantee = PeerByName(grantee_name);
      if (!peer || !grantee) return true;
      auto s = peer->SubmitChangePermission(table, attr, grantee->address(),
                                            cmd == "grant");
      std::printf("%s: %s\n", cmd.c_str(),
                  s.ok() ? "submitted" : s.status().ToString().c_str());
      return true;
    }
    if (cmd == "entry") {
      std::string table;
      in >> table;
      auto entry = clinic_->Entry(table);
      std::printf("%s\n", entry.ok()
                              ? entry->DumpPretty().c_str()
                              : entry.status().ToString().c_str());
      return true;
    }
    if (cmd == "audit") {
      std::string table;
      in >> table;
      std::printf("%s",
                  core::RenderAuditTrail(
                      core::BuildAuditTrail(clinic_->node(0).blockchain(),
                                            clinic_->node(0).host(), table))
                      .c_str());
      return true;
    }
    std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
    return true;
  }

  static constexpr const char* kHelp =
      "commands:\n"
      "  update <peer> <table_id> <id> <attr> <value...>\n"
      "  insert <peer> <table_id> <id> <med> <note> <dosage...>\n"
      "  delete <peer> <table_id> <id>\n"
      "  read <peer> <table_id> | source <peer> <table>\n"
      "  grant|revoke <authority-peer> <table_id> <attr> <grantee>\n"
      "  entry <table_id> | audit <table_id>\n"
      "  settle | stats | help | quit\n";

 private:
  std::unique_ptr<core::ClinicScenario> clinic_;
};

constexpr const char* kDemoScript[] = {
    "read patient D13&D31",
    "update doctor D13&D31 188 a4_dosage two tablets every 6h",
    "settle",
    "read patient D13&D31",
    "source patient D1",
    "update patient D13&D31 189 a4_dosage patient tries dosage",
    "settle",
    "grant doctor D13&D31 a4_dosage patient",
    "settle",
    "update patient D13&D31 189 a4_dosage now permitted",
    "settle",
    "source doctor D3",
    "audit D13&D31",
    "stats",
};

}  // namespace

// `gen` subcommand: expand a seed into a hospital network, replay its
// generated workload (optionally only a prefix), and print the spec
// summary, the run report, and the deterministic state fingerprint — the
// exact run a failing soak seed tells you to reproduce.
int RunGenMode(int argc, char** argv) {
  core::GenOptions gen;
  core::WorkloadOptions workload;
  gen.peers = 16;
  size_t prefix = SIZE_MAX;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--seed") {
      gen.seed = std::stoull(value);
      workload.seed = gen.seed * 31 + 1;
    } else if (flag == "--peers") {
      gen.peers = std::stoull(value);
    } else if (flag == "--depth") {
      gen.lens_depth = std::stoull(value);
    } else if (flag == "--events") {
      workload.events = std::stoull(value);
    } else if (flag == "--prefix") {
      prefix = std::stoull(value);
    } else if (flag == "--durable") {
      // Durable consumers make crash/restart events possible; the replay
      // handles printed by the soak tests pass --durable 1.
      if (value != "0") {
        gen.durable_root = StrCat("/tmp/medsync_cli_gen_", gen.seed);
        std::filesystem::remove_all(gen.durable_root);
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
  }

  const core::NetworkSpec spec = core::DescribeNetwork(gen);
  size_t providers = 0;
  for (const auto& peer : spec.peers) {
    if (peer.role == core::PeerRole::kProvider) ++providers;
  }
  std::printf("network: seed=%llu peers=%zu (%zu providers) tables=%zu "
              "lens_depth=%zu epoch=%lld\n",
              static_cast<unsigned long long>(spec.options.seed),
              spec.peers.size(), providers, spec.tables.size(),
              spec.options.lens_depth,
              static_cast<long long>(spec.epoch));
  const core::Schedule schedule = core::GenerateSchedule(spec, workload);
  std::printf("schedule: workload_seed=%llu events=%zu\n",
              static_cast<unsigned long long>(workload.seed),
              schedule.events.size());

  core::SoakReport report;
  Status run = core::RunGeneratedSoak(gen, workload, prefix, &report);
  std::printf("executed=%zu skipped=%zu chain_height=%llu\n", report.executed,
              report.skipped,
              static_cast<unsigned long long>(report.chain_height));
  std::printf("fingerprint=%s\n", report.fingerprint.c_str());
  if (!run.ok()) {
    std::printf("FAIL: %s\n", run.ToString().c_str());
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "gen") {
    return RunGenMode(argc, argv);
  }

  Cli cli;
  if (!cli.Init()) return 1;

  if (argc > 1 && std::string(argv[1]) == "--demo") {
    for (const char* line : kDemoScript) {
      std::printf("\n>> %s\n", line);
      if (!cli.Execute(line)) break;
    }
    return 0;
  }

  std::printf("%s", Cli::kHelp);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!cli.Execute(line)) break;
  }
  return 0;
}
