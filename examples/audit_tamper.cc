// Auditability and tamper evidence (Section III-B: "immutability,
// auditability, and transparency enable nodes to check and review update
// history"):
//  1. run a few updates through the clinic network, including a denied one;
//  2. print the reconstructed per-table audit trail;
//  3. demonstrate tamper evidence: flip one attribute value inside a stored
//     block's transaction and show that integrity verification fails, and
//     that a fetched table whose digest does not match the on-chain record
//     is rejected by the peer.
//
//   ./build/examples/audit_tamper

#include <cstdio>

#include "core/audit.h"
#include "core/scenario.h"
#include "medical/records.h"

int main() {
  using namespace medsync;
  using relational::Value;
  constexpr const char* kPD = core::ClinicScenario::kPatientDoctorTable;

  core::ScenarioOptions options;
  auto scenario = core::ClinicScenario::Create(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  core::ClinicScenario& clinic = **scenario;

  // Activity: one permitted update, one permitted patient update, one
  // denied attempt.
  IgnoreStatusForTest(clinic.doctor().UpdateSharedAttribute(
      kPD, {Value::Int(188)}, medical::kDosage, Value::String("400 mg")));
  IgnoreStatusForTest(clinic.SettleAll());
  IgnoreStatusForTest(clinic.patient().UpdateSharedAttribute(
      kPD, {Value::Int(188)}, medical::kClinicalData,
      Value::String("patient-entered note")));
  IgnoreStatusForTest(clinic.SettleAll());
  IgnoreStatusForTest(clinic.patient().UpdateSharedAttribute(
      kPD, {Value::Int(189)}, medical::kDosage,
      Value::String("should be denied")));
  IgnoreStatusForTest(clinic.SettleAll());

  std::printf("=== Audit trail for %s ===\n", kPD);
  std::vector<core::AuditRecord> trail = core::BuildAuditTrail(
      clinic.node(0).blockchain(), clinic.node(0).host(), kPD);
  std::printf("%s\n", core::RenderAuditTrail(trail).c_str());

  // --- Tamper evidence. ------------------------------------------------------
  std::printf("=== Tamper check ===\n");
  const chain::Blockchain& chain = clinic.node(0).blockchain();
  std::printf("honest chain integrity: %s\n",
              chain.VerifyIntegrity().ToString().c_str());

  // Rebuild a copy of a block with one byte of a transaction changed, the
  // way a malicious storage layer might, and validate it.
  for (const chain::Block* block : chain.CanonicalChain()) {
    if (block->transactions.empty()) continue;
    chain::Block tampered = *block;
    tampered.transactions[0].params.Set("table_id", "FORGED");
    Status check = chain.ValidateStructure(tampered);
    std::printf("block %llu with a forged transaction field: %s\n",
                static_cast<unsigned long long>(block->header.height),
                check.ToString().c_str());
    break;
  }

  // A peer rejects fetched data whose digest mismatches the on-chain
  // record; show the digest pair an auditor would compare.
  Json entry = *clinic.Entry(kPD);
  std::string on_chain = *entry.GetString("content_digest");
  std::string local =
      clinic.patient().ReadSharedTable(kPD)->ContentDigest();
  std::printf("on-chain digest : %s\nlocal digest    : %s\nmatch: %s\n",
              on_chain.c_str(), local.c_str(),
              on_chain == local ? "yes" : "NO — stale or tampered data");
  return on_chain == local ? 0 : 1;
}
