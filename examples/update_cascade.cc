// Replays the paper's Fig. 5 workflow step by step:
//
//   Researcher updates MeA1 in D2  -> get regenerates D23      (step 1)
//   request_update tx to contract  -> consensus + permission    (step 2)
//   Doctor notified                                             (step 3)
//   Doctor fetches new D32, digest-checked                      (step 4)
//   BX put reflects D32 into D3                                 (step 5)
//   Dependency check D32 vs D31                                 (step 6)
//   -- the mechanism change does not overlap D31, so 7-11 skip --
//   Doctor then modifies the dosage on D31 (the paper's example)
//   which runs steps 7-11 toward the Patient.
//
//   ./build/examples/update_cascade

#include <cstdio>

#include "core/audit.h"
#include "core/scenario.h"
#include "medical/records.h"

int main() {
  using namespace medsync;
  using relational::Value;

  core::ScenarioOptions options;
  options.block_interval = 1 * kMicrosPerSecond;
  auto scenario = core::ClinicScenario::Create(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  core::ClinicScenario& clinic = **scenario;
  auto trace = [](const std::string& line) {
    std::printf("  %s\n", line.c_str());
  };
  clinic.doctor().SetTraceSink(trace);
  clinic.patient().SetTraceSink(trace);
  clinic.researcher().SetTraceSink(trace);

  std::printf("=== Steps 1-6: researcher updates the mechanism of action"
              " ===\n");
  Status s = clinic.researcher().UpdateSourceAndPropagate(
      "D2", [](relational::Database* db) {
        return db->UpdateAttribute("D2", {Value::String("Ibuprofen")},
                                   medical::kMechanismOfAction,
                                   Value::String("MeA1-new"));
      });
  if (!s.ok()) {
    std::fprintf(stderr, "update failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status settled = clinic.SettleAll(); !settled.ok()) {
    std::fprintf(stderr, "%s\n", settled.ToString().c_str());
    return 1;
  }

  std::printf("\nDoctor's D3 after the put (MeA1 -> MeA1-new, patient rows"
              " untouched otherwise):\n%s\n",
              clinic.doctor().database().Snapshot("D3")->ToAsciiTable()
                  .c_str());
  std::printf("Patient saw no D13&D31 traffic (version still %lld).\n\n",
              static_cast<long long>(
                  *clinic.Entry(core::ClinicScenario::kPatientDoctorTable)
                       ->GetInt("version")));

  std::printf("=== Steps 7-11: doctor modifies the dosage toward the"
              " patient ===\n");
  s = clinic.doctor().UpdateSharedAttribute(
      core::ClinicScenario::kPatientDoctorTable, {Value::Int(188)},
      medical::kDosage, Value::String("one tablet every 6h"));
  if (!s.ok()) {
    std::fprintf(stderr, "update failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status settled = clinic.SettleAll(); !settled.ok()) {
    std::fprintf(stderr, "%s\n", settled.ToString().c_str());
    return 1;
  }

  std::printf("\nPatient's D1 after the cascade:\n%s\n",
              clinic.patient().database().Snapshot("D1")->ToAsciiTable()
                  .c_str());

  std::printf("=== On-chain audit trail ===\n");
  for (const char* table :
       {core::ClinicScenario::kPatientDoctorTable,
        core::ClinicScenario::kDoctorResearcherTable}) {
    std::printf("%s:\n%s", table,
                core::RenderAuditTrail(
                    core::BuildAuditTrail(clinic.node(0).blockchain(),
                                          clinic.node(0).host(), table))
                    .c_str());
  }
  return 0;
}
