// A research-facing workflow on synthetic data at clinic scale:
//  1. generate a 500-patient hospital table;
//  2. build the researcher's fine-grained view (medication/mechanism/mode);
//  3. de-identify a patient-level extract (suppress ids are impossible —
//     suppress clinical text, generalize city to region) and check
//     k-anonymity before it would be shared;
//  4. show that the de-identified extract is what a selection+projection
//     lens would expose, so its updates still round-trip.
//
//   ./build/examples/research_cohort

#include <cstdio>
#include <map>

#include "bx/laws.h"
#include "relational/aggregate.h"
#include "bx/compose_lens.h"
#include "bx/lens_factory.h"
#include "medical/deident.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/query.h"

int main() {
  using namespace medsync;
  using namespace medsync::medical;
  using relational::CompareOp;
  using relational::Predicate;
  using relational::Table;
  using relational::Value;

  Table hospital = GenerateFullRecords({.seed = 2026, .record_count = 500});
  std::printf("hospital table: %zu records, digest %s\n\n",
              hospital.row_count(),
              hospital.ContentDigest().substr(0, 16).c_str());

  // --- The researcher's fine-grained medication view. -----------------------
  auto med_lens = bx::MakeProjectLens(
      {kMedicationName, kMechanismOfAction, kModeOfAction},
      {kMedicationName});
  auto med_view = med_lens->Get(hospital);
  if (!med_view.ok()) {
    std::fprintf(stderr, "%s\n", med_view.status().ToString().c_str());
    return 1;
  }
  std::printf("medication view: %zu distinct medications (from %zu patient"
              " rows)\n",
              med_view->row_count(), hospital.row_count());

  // Aggregate over the fine-grained view: patients per medication and the
  // dosage variety, straight from the relational engine.
  auto per_med = relational::GroupBy(
      hospital, {kMedicationName},
      {{relational::AggregateFn::kCount, "", "patients"},
       {relational::AggregateFn::kMin, kDosage, "dose_lo"},
       {relational::AggregateFn::kMax, kDosage, "dose_hi"}});
  if (!per_med.ok()) {
    std::fprintf(stderr, "%s\n", per_med.status().ToString().c_str());
    return 1;
  }
  auto top = relational::Aggregate(
      *per_med, {{relational::AggregateFn::kMax, "patients", "largest"},
                 {relational::AggregateFn::kAvg, "patients", "mean"}});
  std::printf("cohort sizes per medication: largest %lld, mean %.1f\n\n",
              (long long)top->RowsInKeyOrder()[0][1].AsInt(),
              top->RowsInKeyOrder()[0][2].AsDouble());

  // --- De-identified patient-level extract. ---------------------------------
  auto kansai_only = bx::MakeSelectLens(Predicate::Or(
      Predicate::Compare(kAddress, CompareOp::kEq, Value::String("Osaka")),
      Predicate::Compare(kAddress, CompareOp::kEq, Value::String("Kyoto"))));
  auto extract_lens = bx::Compose(
      kansai_only, bx::MakeProjectLens(
                       {kPatientId, kMedicationName, kAddress, kDosage},
                       {kPatientId}));
  auto extract = extract_lens->Get(hospital);
  if (!extract.ok()) {
    std::fprintf(stderr, "%s\n", extract.status().ToString().c_str());
    return 1;
  }
  std::printf("Kansai extract: %zu rows\n", extract->row_count());

  auto generalized =
      GeneralizeAttribute(*extract, kAddress, GeneralizeCityToRegion);
  if (!generalized.ok()) {
    std::fprintf(stderr, "%s\n", generalized.status().ToString().c_str());
    return 1;
  }

  for (size_t k : {2u, 5u, 10u, 25u}) {
    auto raw_ok = IsKAnonymous(*extract, {kAddress}, k);
    auto gen_ok = IsKAnonymous(*generalized, {kAddress}, k);
    std::printf("k=%-3zu  city-level: %-3s  region-level: %s\n", k,
                *raw_ok ? "yes" : "no", *gen_ok ? "yes" : "no");
  }
  auto smallest_raw = SmallestEquivalenceClass(*extract, {kAddress});
  auto smallest_gen = SmallestEquivalenceClass(*generalized, {kAddress});
  std::printf("smallest equivalence class: city-level %zu, region-level"
              " %zu\n\n",
              *smallest_raw, *smallest_gen);

  // --- The lens laws still hold on the sharing path. -------------------------
  Status laws = bx::CheckGetPut(*extract_lens, hospital);
  std::printf("extract lens GetPut law: %s\n", laws.ToString().c_str());
  std::printf("extract lens spec: %s\n",
              extract_lens->ToJson().Dump().substr(0, 120).c_str());
  return laws.ok() ? 0 : 1;
}
