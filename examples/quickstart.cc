// Quickstart: bring up the paper's three-stakeholder deployment, update a
// shared attribute, and watch the change propagate doctor -> patient
// through the smart contract and the BX put.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/scenario.h"
#include "medical/records.h"
#include "relational/table.h"

int main() {
  using namespace medsync;

  core::ScenarioOptions options;
  options.block_interval = 1 * kMicrosPerSecond;

  auto scenario = core::ClinicScenario::Create(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario setup failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  core::ClinicScenario& clinic = **scenario;

  auto trace = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
  };
  clinic.doctor().SetTraceSink(trace);
  clinic.patient().SetTraceSink(trace);
  clinic.researcher().SetTraceSink(trace);

  std::printf("== Patient's shared table D13 before the update ==\n");
  auto before = clinic.patient().ReadSharedTable(
      core::ClinicScenario::kPatientDoctorTable);
  std::printf("%s\n", before->ToAsciiTable().c_str());

  // The doctor changes patient 188's dosage on the shared table D31. The
  // contract checks the Fig. 3 permission matrix (dosage: doctor only),
  // commits, notifies the patient, who fetches, verifies the digest, and
  // reflects the change into D1 with the BX put.
  std::printf("== Doctor updates the dosage of patient 188 ==\n");
  Status updated = clinic.doctor().UpdateSharedAttribute(
      core::ClinicScenario::kPatientDoctorTable,
      {relational::Value::Int(188)}, medical::kDosage,
      relational::Value::String("two tablets every 6h"));
  if (!updated.ok()) {
    std::fprintf(stderr, "update failed: %s\n", updated.ToString().c_str());
    return 1;
  }
  Status settled = clinic.SettleAll();
  if (!settled.ok()) {
    std::fprintf(stderr, "did not settle: %s\n", settled.ToString().c_str());
    return 1;
  }

  std::printf("\n== Patient's shared table D13 after the update ==\n");
  auto after = clinic.patient().ReadSharedTable(
      core::ClinicScenario::kPatientDoctorTable);
  std::printf("%s\n", after->ToAsciiTable().c_str());

  std::printf("== Patient's full table D1 (BX put applied) ==\n");
  auto d1 = clinic.patient().database().Snapshot("D1");
  std::printf("%s\n", d1->ToAsciiTable().c_str());

  // A researcher trying the same update must be DENIED by the contract —
  // the dosage attribute is not even part of their shared table, and they
  // are not a peer of D13&D31.
  std::printf("== Researcher tries to update the same dosage (expect denial)"
              " ==\n");
  Status denied = clinic.researcher().UpdateSharedAttribute(
      core::ClinicScenario::kPatientDoctorTable,
      {relational::Value::Int(188)}, medical::kDosage,
      relational::Value::String("whatever"));
  std::printf("local result: %s (researcher holds no D13&D31 table)\n\n",
              denied.ToString().c_str());

  std::printf("chain height: %llu, contract: %s\n",
              static_cast<unsigned long long>(
                  clinic.node(0).blockchain().height()),
              clinic.contract().ToHex().c_str());
  return 0;
}
