// Scalability of the architecture with the number of sharing
// relationships: one provider (doctor) shares a per-patient fine-grained
// view with each of N patient peers (a select∘project lens per
// relationship). Updates to DISTINCT shared tables ride in the same blocks
// — the one-update-per-table-per-block rule only serializes per table — so
// aggregate committed updates per simulated second grow ~linearly in N at
// constant per-round latency, until the per-block transaction budget caps
// it.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bx/compose_lens.h"
#include "bx/lens_factory.h"
#include "common/strings.h"
#include "common/threading/thread_pool.h"
#include "contracts/metadata_contract.h"
#include "core/peer.h"
#include "core/sync_manager.h"
#include "medical/generator.h"
#include "medical/records.h"

namespace {

using namespace medsync;
using namespace medsync::medical;
using relational::CompareOp;
using relational::Predicate;
using relational::Table;
using relational::Value;

constexpr Micros kBlockInterval = 1 * kMicrosPerSecond;

struct HubWorld {
  std::unique_ptr<net::Simulator> simulator;
  std::unique_ptr<net::SimNetwork> network;
  std::unique_ptr<runtime::ChainNode> node;
  std::unique_ptr<core::Peer> doctor;
  std::vector<std::unique_ptr<core::Peer>> patients;
  crypto::Address contract;
  std::vector<std::string> table_ids;

  void Settle() {
    for (int i = 0; i < 600; ++i) {
      simulator->RunFor(kBlockInterval);
      bool idle = node->mempools_empty() && !doctor->HasPendingWork();
      for (auto& patient : patients) {
        idle = idle && !patient->HasPendingWork();
      }
      if (idle) return;
    }
    // Diagnose before dying: a bare abort here hides WHICH lane or peer is
    // wedged, which is the one thing needed to debug a stuck settle.
    std::fprintf(stderr,
                 "HubWorld::Settle: not idle after 600 block intervals "
                 "(sim now=%lld us)\n",
                 static_cast<long long>(simulator->Now()));
    for (size_t lane = 0; lane < node->lane_count(); ++lane) {
      std::fprintf(stderr, "  lane %zu: mempool=%zu txs, height=%llu\n", lane,
                   node->mempool(lane).size(),
                   static_cast<unsigned long long>(
                       node->blockchain(lane).height()));
    }
    std::fprintf(stderr, "  peer hub-doctor: pending_work=%d\n",
                 doctor->HasPendingWork() ? 1 : 0);
    for (size_t i = 0; i < patients.size(); ++i) {
      if (!patients[i]->HasPendingWork()) continue;
      std::fprintf(stderr, "  peer hub-patient-%zu: pending_work=1\n", i);
    }
    std::abort();
  }

  static std::unique_ptr<HubWorld> Create(size_t patient_count,
                                          size_t lane_count = 1,
                                          size_t max_block_txs = 256) {
    auto world = std::make_unique<HubWorld>();
    world->simulator = std::make_unique<net::Simulator>();
    world->network = std::make_unique<net::SimNetwork>(
        world->simulator.get(), net::LatencyModel{}, 11);

    auto key = std::make_shared<crypto::KeyPair>(
        crypto::KeyPair::FromSeed("hub-authority"));
    auto sealer = std::make_shared<chain::PoaSealer>(
        std::vector<crypto::Address>{key->address()}, key,
        /*slot_interval=*/kBlockInterval);
    auto host = std::make_unique<contracts::ContractHost>();
    host->RegisterType("metadata", contracts::MetadataContract::Create);
    runtime::NodeConfig node_config;
    node_config.id = "hub-node";
    node_config.block_interval = kBlockInterval;
    node_config.max_block_txs = max_block_txs;
    node_config.sealing_enabled = true;
    node_config.lane_count = lane_count;
    node_config.lane_key = contracts::SharedDataLaneKey;
    world->node = std::make_unique<runtime::ChainNode>(
        node_config, world->simulator.get(), world->network.get(),
        std::move(sealer), chain::Blockchain::MakeGenesis(0),
        contracts::SharedDataConflictKey, std::move(host));
    world->node->Start();

    core::PeerConfig doctor_config;
    doctor_config.name = "hub-doctor";
    world->doctor = std::make_unique<core::Peer>(
        doctor_config, world->simulator.get(), world->network.get(),
        world->node.get());
    world->doctor->Start();

    // Doctor's records: one per patient.
    Table full = GenerateFullRecords(
        {.seed = 21, .record_count = patient_count, .first_patient_id = 1});
    if (!world->doctor->database().CreateTable("FULL", full.schema()).ok())
      std::abort();
    if (!world->doctor->database().ReplaceTable("FULL", full).ok())
      std::abort();

    Result<crypto::Address> contract =
        world->doctor->DeployMetadataContract();
    if (!contract.ok()) std::abort();
    world->contract = *contract;

    for (size_t i = 0; i < patient_count; ++i) {
      int64_t patient_id = static_cast<int64_t>(1 + i);
      std::string name = StrCat("hub-patient-", i);
      core::PeerConfig config;
      config.name = name;
      auto patient = std::make_unique<core::Peer>(
          config, world->simulator.get(), world->network.get(),
          world->node.get());
      patient->Start();
      patient->AddKnownPeer("hub-doctor", world->doctor->address());
      world->doctor->AddKnownPeer(name, patient->address());

      // Per-patient fine-grained view: select own row, project a0/a1/a4.
      bx::LensPtr lens = bx::Compose(
          bx::MakeSelectLens(Predicate::Compare(kPatientId, CompareOp::kEq,
                                                Value::Int(patient_id))),
          bx::MakeProjectLens({kPatientId, kMedicationName, kDosage},
                              {kPatientId}));
      Table view = *lens->Get(full);
      std::string table_id = StrCat("SHARE-", i);
      std::string doctor_view = StrCat("V", i);
      if (!world->doctor->database().CreateTable(doctor_view, view.schema())
               .ok())
        std::abort();
      if (!world->doctor->database().ReplaceTable(doctor_view, view).ok())
        std::abort();
      if (!patient->database().CreateTable("MINE", view.schema()).ok())
        std::abort();
      if (!patient->database().ReplaceTable("MINE", view).ok()) std::abort();
      if (!patient->database().CreateTable("SHARED", view.schema()).ok())
        std::abort();
      if (!patient->database().ReplaceTable("SHARED", view).ok())
        std::abort();

      core::SharedTableConfig doctor_cfg{table_id, "FULL", doctor_view, lens,
                                         world->contract};
      core::SharedTableConfig patient_cfg{table_id, "MINE", "SHARED",
                                          bx::MakeIdentityLens(),
                                          world->contract};
      if (!world->doctor->AdoptSharedTable(doctor_cfg).ok()) std::abort();
      if (!patient->AdoptSharedTable(patient_cfg).ok()) std::abort();
      if (!world->doctor
               ->RegisterSharedTableOnChain(
                   doctor_cfg,
                   {world->doctor->address(), patient->address()},
                   {{kMedicationName, {world->doctor->address()}},
                    {kDosage, {world->doctor->address()}}},
                   {world->doctor->address()}, world->doctor->address())
               .ok()) {
        std::abort();
      }
      world->table_ids.push_back(table_id);
      world->patients.push_back(std::move(patient));
    }
    world->Settle();
    return world;
  }
};

void BM_SharingRelationshipsScale(benchmark::State& state) {
  size_t patients = static_cast<size_t>(state.range(0));
  auto world = HubWorld::Create(patients);
  uint64_t round = 0;
  for (auto _ : state) {
    Micros start = world->simulator->Now();
    // One dosage update per sharing relationship, all in the same window.
    for (size_t i = 0; i < patients; ++i) {
      Status s = world->doctor->UpdateSharedAttribute(
          world->table_ids[i], {Value::Int(static_cast<int64_t>(1 + i))},
          kDosage, Value::String(StrCat("dose-", round, "-", i)));
      if (!s.ok()) std::abort();
    }
    ++round;
    world->Settle();
    state.SetIterationTime(
        static_cast<double>(world->simulator->Now() - start) /
        kMicrosPerSecond);
  }
  // items/s = committed updates per simulated second (aggregate).
  state.SetItemsProcessed(state.iterations() * patients);
  state.counters["sharing_relationships"] = static_cast<double>(patients);
  state.counters["chain_height"] =
      static_cast<double>(world->node->blockchain().height());
}
BENCHMARK(BM_SharingRelationshipsScale)
    ->UseManualTime()
    ->Iterations(3)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(32);

void BM_LaneShardingScale(benchmark::State& state) {
  // Lane sweep: the same 32-relationship hub world with a DELIBERATELY
  // tight per-block budget (4 txs), so the single-lane chain serializes a
  // round over many block intervals. Sharding the chain into L lanes
  // (tables hash-spread via SharedDataLaneKey) seals up to L blocks per
  // interval, so aggregate committed updates per simulated second scale
  // with the lane count until the spread evens out.
  constexpr size_t kPatients = 32;
  const size_t lanes = static_cast<size_t>(state.range(0));
  auto world = HubWorld::Create(kPatients, lanes, /*max_block_txs=*/4);
  uint64_t round = 0;
  for (auto _ : state) {
    Micros start = world->simulator->Now();
    for (size_t i = 0; i < kPatients; ++i) {
      Status s = world->doctor->UpdateSharedAttribute(
          world->table_ids[i], {Value::Int(static_cast<int64_t>(1 + i))},
          kDosage, Value::String(StrCat("lane-dose-", round, "-", i)));
      if (!s.ok()) std::abort();
    }
    ++round;
    world->Settle();
    state.SetIterationTime(
        static_cast<double>(world->simulator->Now() - start) /
        kMicrosPerSecond);
  }
  // items/s = committed updates per simulated second (aggregate).
  state.SetItemsProcessed(state.iterations() * kPatients);
  state.counters["lanes"] = static_cast<double>(lanes);
  uint64_t total_height = 0;
  for (size_t lane = 0; lane < world->node->lane_count(); ++lane) {
    total_height += world->node->blockchain(lane).height();
  }
  state.counters["total_blocks"] = static_cast<double>(total_height);
}
BENCHMARK(BM_LaneShardingScale)
    ->UseManualTime()
    ->Iterations(3)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_DependencyCheckScale_Threaded(benchmark::State& state) {
  // How the provider-side dependency check scales with the NUMBER of
  // sharing relationships when sibling Gets run on a worker pool: one
  // source table, N select∘project sibling views, kAlwaysRederive so every
  // view re-derives per check. Arg 0 = sibling views, arg 1 = pool size;
  // `speedup_vs_serial` compares against the same check with no pool.
  const auto siblings = static_cast<size_t>(state.range(0));
  constexpr size_t kRecords = 512;
  threading::ThreadPool pool(static_cast<size_t>(state.range(1)));

  relational::Database db;
  Table source = GenerateFullRecords(
      {.seed = 99, .record_count = kRecords, .first_patient_id = 1});
  if (!db.CreateTable("FULL", source.schema()).ok()) std::abort();
  if (!db.ReplaceTable("FULL", source).ok()) std::abort();

  core::SyncManager sync(&db, core::DependencyStrategy::kAlwaysRederive);
  for (size_t i = 0; i < siblings; ++i) {
    bx::LensPtr lens = bx::Compose(
        bx::MakeSelectLens(Predicate::Compare(
            kPatientId, CompareOp::kLe,
            Value::Int(static_cast<int64_t>(kRecords / 2 + i)))),
        bx::MakeProjectLens({kPatientId, kMedicationName, kDosage},
                            {kPatientId}));
    std::string view_name = StrCat("V", i);
    Table derived = *lens->Get(source);
    if (!db.CreateTable(view_name, derived.schema()).ok()) std::abort();
    if (!db.ReplaceTable(view_name, derived).ok()) std::abort();
    if (!sync.RegisterView(StrCat("rel-", i), "FULL", view_name, lens).ok()) {
      std::abort();
    }
  }

  Table before = *db.Snapshot("FULL");
  relational::Key first_key = before.NthKey(0);
  if (!db.UpdateAttribute("FULL", first_key, kDosage,
                          Value::String("scale-dose"))
           .ok()) {
    std::abort();
  }

  auto time_once = [&] {
    auto start = std::chrono::steady_clock::now();
    auto refreshes = sync.FindAffectedViews("FULL", before, /*exclude=*/"");
    benchmark::DoNotOptimize(refreshes);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  constexpr int kBaselineReps = 10;
  double serial_seconds = 0;
  for (int rep = 0; rep < kBaselineReps; ++rep) serial_seconds += time_once();
  serial_seconds /= kBaselineReps;

  sync.set_thread_pool(&pool);
  double threaded_seconds = 0;
  for (auto _ : state) {
    threaded_seconds += time_once();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(siblings));
  state.counters["sibling_views"] = static_cast<double>(siblings);
  state.counters["pool_size"] = static_cast<double>(state.range(1));
  state.counters["speedup_vs_serial"] =
      serial_seconds /
      (threaded_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DependencyCheckScale_Threaded)
    ->ArgsProduct({{4, 8, 16, 32}, {1, 4}});

}  // namespace
