// Fig. 1 (data distribution): the cost of deriving each of the paper's
// fine-grained views from its owner's source, and the fine-grained vs
// full-record trade-off the introduction motivates — a researcher scanning
// the D23 view touches far less data than scanning full records, and the
// derived view shrinks as medications repeat across patients.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bx/lens_factory.h"
#include "common/strings.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/delta.h"
#include "relational/query.h"

namespace {

using namespace medsync;
using namespace medsync::medical;
using relational::Table;

Table Full(int64_t rows) {
  return GenerateFullRecords(
      {.seed = 7, .record_count = static_cast<size_t>(rows)});
}

struct NamedView {
  const char* name;
  std::vector<std::string> source_attrs;
  std::vector<std::string> source_key;
  std::vector<std::string> view_attrs;
  std::vector<std::string> view_key;
};

const NamedView kViews[] = {
    {"D1_to_D13",
     {kPatientId, kMedicationName, kClinicalData, kAddress, kDosage},
     {kPatientId},
     {kPatientId, kMedicationName, kClinicalData, kDosage},
     {kPatientId}},
    {"D3_to_D31",
     {kPatientId, kMedicationName, kClinicalData, kMechanismOfAction,
      kDosage},
     {kPatientId},
     {kPatientId, kMedicationName, kClinicalData, kDosage},
     {kPatientId}},
    {"D2_to_D23",
     {kMedicationName, kMechanismOfAction, kModeOfAction},
     {kMedicationName},
     {kMedicationName, kMechanismOfAction},
     {kMedicationName}},
    {"D3_to_D32",
     {kPatientId, kMedicationName, kClinicalData, kMechanismOfAction,
      kDosage},
     {kPatientId},
     {kMedicationName, kMechanismOfAction},
     {kMedicationName}},
};

void BM_DeriveView(benchmark::State& state) {
  const NamedView& spec = kViews[state.range(0)];
  Table full = Full(state.range(1));
  Table source =
      *relational::Project(full, spec.source_attrs, spec.source_key);
  auto lens = bx::MakeProjectLens(spec.view_attrs, spec.view_key);
  size_t view_rows = 0;
  for (auto _ : state) {
    auto view = lens->Get(source);
    view_rows = view->row_count();
    benchmark::DoNotOptimize(view);
  }
  state.SetLabel(spec.name);
  state.SetItemsProcessed(state.iterations() * state.range(1));
  state.counters["view_rows"] = static_cast<double>(view_rows);
  state.counters["source_rows"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_DeriveView)
    ->ArgsProduct({{0, 1, 2, 3}, {64, 512, 4096}});

void BM_SingleRowUpdateDeriveView(benchmark::State& state) {
  // The incremental counterpart of BM_DeriveView: one source row changes,
  // and the view is maintained by translating that one-row delta through
  // the lens (PushDelta + ApplyDelta) instead of a full re-derivation.
  // Grouped projections (D3_to_D32) have no exact translation and are
  // excluded here — bench_fig5_cascade measures their full-get fallback.
  const NamedView& spec = kViews[state.range(0)];
  Table full = Full(state.range(1));
  Table source =
      *relational::Project(full, spec.source_attrs, spec.source_key);
  auto lens = bx::MakeProjectLens(spec.view_attrs, spec.view_key);
  Table view = *lens->Get(source);

  std::vector<relational::Key> keys;
  for (const auto& [key, row] : source.scan()) keys.push_back(key);
  uint64_t round = 0;

  // Full-derivation baseline for the same single-row workload.
  auto mutate = [&]() {
    const relational::Key& key = keys[round % keys.size()];
    if (!source
             .UpdateAttribute(key, kMedicationName,
                              relational::Value::String(
                                  StrCat("Med-", round++)))
             .ok()) {
      std::abort();
    }
  };
  constexpr int kBaselineReps = 20;
  double full_seconds = 0;
  for (int rep = 0; rep < kBaselineReps; ++rep) {
    mutate();
    auto start = std::chrono::steady_clock::now();
    view = *lens->Get(source);
    full_seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  }
  full_seconds /= kBaselineReps;

  double incremental_seconds = 0;
  for (auto _ : state) {
    Table before = source;
    mutate();
    relational::TableDelta delta;
    {
      const relational::Key& key = keys[(round - 1) % keys.size()];
      delta.updates.push_back(*source.Get(key));
    }
    auto start = std::chrono::steady_clock::now();
    auto pushed = lens->PushDelta(before, delta);
    if (!pushed.ok()) std::abort();
    if (!relational::ApplyDelta(*pushed, &view).ok()) std::abort();
    incremental_seconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    benchmark::DoNotOptimize(view);
  }
  state.SetLabel(spec.name);
  state.counters["source_rows"] = static_cast<double>(state.range(1));
  state.counters["speedup_vs_full"] =
      full_seconds /
      (incremental_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SingleRowUpdateDeriveView)
    ->ArgsProduct({{0, 1, 2}, {512, 4096}});

void BM_ScanSharedViewVsFullRecords(benchmark::State& state) {
  // The introduction's motivation quantified: a researcher counting
  // mechanisms over the fine-grained D23 view vs over full records.
  bool fine_grained = state.range(0) == 1;
  Table full = Full(4096);
  Table target = fine_grained
                     ? *relational::Project(
                           full, {kMedicationName, kMechanismOfAction},
                           {kMedicationName})
                     : full;
  size_t mech_idx = *target.schema().IndexOf(kMechanismOfAction);
  for (auto _ : state) {
    size_t interesting = 0;
    for (const auto& [key, row] : target.scan()) {
      if (row[mech_idx].AsString().find("inhibition") != std::string::npos) {
        ++interesting;
      }
    }
    benchmark::DoNotOptimize(interesting);
  }
  state.SetLabel(fine_grained ? "fine_grained_view" : "full_records");
  state.counters["rows_scanned"] = static_cast<double>(target.row_count());
}
BENCHMARK(BM_ScanSharedViewVsFullRecords)->Arg(0)->Arg(1);

void BM_ViewContentDigest(benchmark::State& state) {
  // Digest computation is on the critical path of every update proposal.
  Table full = Full(state.range(0));
  auto lens = bx::MakeProjectLens(
      {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId});
  Table view = *lens->Get(full);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.ContentDigest());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ViewContentDigest)->Range(8, 4096);

}  // namespace
