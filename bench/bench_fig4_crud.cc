// Fig. 4 (CRUD operations on shared data), measured end-to-end through the
// full stack: peers, metadata contract, PoA consensus, and the simulated
// network. Create/Update/Delete go through the 7-step protocol; Read is a
// local query. Latencies are reported in SIMULATED time (UseManualTime),
// so the numbers reflect protocol round trips — dominated by the block
// interval — not host CPU speed. Shape to observe: C/U/D all cost ~2-3
// block intervals (request block + ack block); Read costs microseconds and
// never touches the chain.

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "core/scenario.h"
#include "medical/records.h"

namespace {

using namespace medsync;
using relational::Value;

constexpr const char* kPD = core::ClinicScenario::kPatientDoctorTable;
constexpr Micros kBlockInterval = 1 * kMicrosPerSecond;

std::unique_ptr<core::ClinicScenario> MakeClinic(size_t records = 0) {
  core::ScenarioOptions options;
  options.block_interval = kBlockInterval;
  options.record_count = records;
  auto scenario = core::ClinicScenario::Create(options);
  if (!scenario.ok()) std::abort();
  return std::move(*scenario);
}

double SimSeconds(net::Simulator& sim, Micros start) {
  return static_cast<double>(sim.Now() - start) / kMicrosPerSecond;
}

void BM_Fig4_Read(benchmark::State& state) {
  auto clinic = MakeClinic();
  for (auto _ : state) {
    benchmark::DoNotOptimize(clinic->patient().ReadSharedTable(kPD));
  }
  state.SetLabel("local query, no chain round trip");
}
BENCHMARK(BM_Fig4_Read);

void BM_Fig4_UpdateEntry(benchmark::State& state) {
  auto clinic = MakeClinic();
  uint64_t round = 0;
  for (auto _ : state) {
    Micros start = clinic->simulator().Now();
    Status s = clinic->doctor().UpdateSharedAttribute(
        kPD, {Value::Int(188)}, medical::kDosage,
        Value::String(StrCat("dose-", round++)));
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
  state.SetLabel("simulated seconds per committed+acked update");
  state.counters["block_interval_s"] =
      static_cast<double>(kBlockInterval) / kMicrosPerSecond;
}
BENCHMARK(BM_Fig4_UpdateEntry)->UseManualTime()->Iterations(20);

void BM_Fig4_CreateEntry(benchmark::State& state) {
  auto clinic = MakeClinic();
  int64_t next_id = 10000;
  for (auto _ : state) {
    Micros start = clinic->simulator().Now();
    Status s = clinic->doctor().InsertSharedRow(
        kPD, {Value::Int(next_id++), Value::String("Metformin"),
              Value::String("note"), Value::String("500 mg")});
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
}
BENCHMARK(BM_Fig4_CreateEntry)->UseManualTime()->Iterations(20);

void BM_Fig4_DeleteEntry(benchmark::State& state) {
  auto clinic = MakeClinic();
  int64_t next_id = 20000;
  for (auto _ : state) {
    // Untimed setup: create the row to delete.
    if (!clinic->doctor()
             .InsertSharedRow(kPD, {Value::Int(next_id), Value::String("X"),
                                    Value::String("n"), Value::String("d")})
             .ok()) {
      std::abort();
    }
    if (!clinic->SettleAll().ok()) std::abort();

    Micros start = clinic->simulator().Now();
    Status s = clinic->doctor().DeleteSharedRow(kPD, {Value::Int(next_id)});
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
    ++next_id;
  }
}
BENCHMARK(BM_Fig4_DeleteEntry)->UseManualTime()->Iterations(20);

void BM_Fig4_DeniedUpdate(benchmark::State& state) {
  // A permission-denied update also costs a full consensus round before
  // the requester learns the verdict — the price of on-chain auditability.
  auto clinic = MakeClinic();
  for (auto _ : state) {
    Micros start = clinic->simulator().Now();
    Status s = clinic->patient().UpdateSharedAttribute(
        kPD, {Value::Int(188)}, medical::kDosage,
        Value::String("never allowed"));
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
  state.SetLabel("denied by contract; staged edit discarded");
}
BENCHMARK(BM_Fig4_DeniedUpdate)->UseManualTime()->Iterations(20);

void BM_Fig4_UpdateByViewSize(benchmark::State& state) {
  // The protocol ships the whole view on fetch; larger shared tables cost
  // more network bytes but the latency stays block-interval-bound.
  auto clinic = MakeClinic(static_cast<size_t>(state.range(0)));
  uint64_t round = 0;
  for (auto _ : state) {
    Micros start = clinic->simulator().Now();
    Status s = clinic->doctor().UpdateSharedAttribute(
        kPD, {Value::Int(1000)}, medical::kDosage,
        Value::String(StrCat("dose-", round++)));
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  state.counters["net_bytes"] =
      static_cast<double>(clinic->network().stats().bytes);
}
BENCHMARK(BM_Fig4_UpdateByViewSize)
    ->UseManualTime()
    ->Iterations(10)
    ->Arg(2)
    ->Arg(64)
    ->Arg(512);

}  // namespace
