// Section IV-1 (Throughput): the paper argues that Ethereum's ~12 s block
// interval is acceptable because peers "may choose to collect a lot of
// updates and then send requests to contracts". This harness quantifies
// both halves of that claim in simulated time:
//  * confirmation latency of one update round as the block interval sweeps
//    from a 1 s private chain to the 12 s public-Ethereum setting — latency
//    is linear in the interval (the protocol itself adds ~2 blocks);
//  * batched updates: b attribute edits folded into ONE request_update
//    round amortize the interval, so effective edits/minute grows ~b-fold;
//  * sustained serial throughput on one shared table (the ack gate makes
//    rounds sequential, which is the paper's intended serialization).

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "core/scenario.h"
#include "medical/generator.h"
#include "medical/records.h"

namespace {

using namespace medsync;
using relational::Value;

constexpr const char* kPD = core::ClinicScenario::kPatientDoctorTable;

std::unique_ptr<core::ClinicScenario> MakeClinic(Micros block_interval,
                                                 size_t records = 64) {
  core::ScenarioOptions options;
  options.block_interval = block_interval;
  options.record_count = records;
  auto scenario = core::ClinicScenario::Create(options);
  if (!scenario.ok()) std::abort();
  return std::move(*scenario);
}

void BM_ConfirmationLatencyByBlockInterval(benchmark::State& state) {
  // One committed+acked update round; manual time = simulated seconds.
  Micros interval = state.range(0) * kMicrosPerSecond;
  auto clinic = MakeClinic(interval);
  uint64_t round = 0;
  for (auto _ : state) {
    Micros start = clinic->simulator().Now();
    Status s = clinic->doctor().UpdateSharedAttribute(
        kPD, {Value::Int(1000)}, medical::kDosage,
        Value::String(StrCat("dose-", round++)));
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll(600 * kMicrosPerSecond).ok()) std::abort();
    state.SetIterationTime(
        static_cast<double>(clinic->simulator().Now() - start) /
        kMicrosPerSecond);
  }
  state.SetLabel(StrCat("block interval ", state.range(0), "s",
                        state.range(0) == 12 ? " (Ethereum, Sec. IV-1)"
                                             : ""));
  state.counters["block_interval_s"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ConfirmationLatencyByBlockInterval)
    ->UseManualTime()
    ->Iterations(5)
    ->Arg(1)
    ->Arg(3)
    ->Arg(12)
    ->Arg(15);

void BM_BatchedUpdatesPerRound(benchmark::State& state) {
  // The paper's batching argument: b edits collected into one round. The
  // researcher edits b medications' mechanisms in one local transaction,
  // producing ONE request_update for the shared table.
  Micros interval = 12 * kMicrosPerSecond;  // the Ethereum setting
  int64_t batch = state.range(0);
  auto clinic = MakeClinic(interval, /*records=*/512);
  std::vector<Value> meds;
  relational::Table d2 = *clinic->researcher().database().Snapshot("D2");
  for (const auto& [key, row] : d2.scan()) {
    meds.push_back(key[0]);
  }
  if (static_cast<size_t>(batch) > meds.size()) {
    state.SkipWithError("batch larger than distinct medications");
    return;
  }
  uint64_t round = 0;
  for (auto _ : state) {
    Micros start = clinic->simulator().Now();
    Status s = clinic->researcher().UpdateSourceAndPropagate(
        "D2", [&](relational::Database* db) {
          for (int64_t i = 0; i < batch; ++i) {
            MEDSYNC_RETURN_IF_ERROR(db->UpdateAttribute(
                "D2", {meds[(round * batch + i) % meds.size()]},
                medical::kMechanismOfAction,
                Value::String(StrCat("m-", round, "-", i))));
          }
          return Status::OK();
        });
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll(600 * kMicrosPerSecond).ok()) std::abort();
    ++round;
    state.SetIterationTime(
        static_cast<double>(clinic->simulator().Now() - start) /
        kMicrosPerSecond);
  }
  state.counters["edits_per_round"] = static_cast<double>(batch);
  // items/s (manual time) = rounds per simulated second; multiply by batch
  // for edits/simulated-second.
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedUpdatesPerRound)
    ->UseManualTime()
    ->Iterations(5)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16);

void BM_SustainedSerialRounds(benchmark::State& state) {
  // Back-to-back rounds on one table: the ack gate (Section III-B)
  // serializes them, so sustained throughput = 1 / round latency.
  Micros interval = state.range(0) * kMicrosPerSecond;
  auto clinic = MakeClinic(interval);
  uint64_t round = 0;
  constexpr int kRounds = 5;
  for (auto _ : state) {
    Micros start = clinic->simulator().Now();
    for (int i = 0; i < kRounds; ++i) {
      Status s = clinic->doctor().UpdateSharedAttribute(
          kPD, {Value::Int(1000)}, medical::kDosage,
          Value::String(StrCat("dose-", round++)));
      if (!s.ok()) std::abort();
      if (!clinic->SettleAll(600 * kMicrosPerSecond).ok()) std::abort();
    }
    state.SetIterationTime(
        static_cast<double>(clinic->simulator().Now() - start) /
        kMicrosPerSecond);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
  state.counters["block_interval_s"] = static_cast<double>(state.range(0));
  state.SetLabel("items/s = committed rounds per simulated second");
}
BENCHMARK(BM_SustainedSerialRounds)
    ->UseManualTime()
    ->Iterations(3)
    ->Arg(1)
    ->Arg(12);

void BM_ParallelIndependentTables(benchmark::State& state) {
  // The one-update-per-shared-table-per-block rule serializes rounds ONLY
  // per table: updates to the two independent shared tables of Fig. 1
  // proceed in the same blocks, so aggregate throughput scales with the
  // number of sharing relationships. Compare items/s here (2 rounds per
  // iteration) with BM_SustainedSerialRounds at the same interval.
  Micros interval = state.range(0) * kMicrosPerSecond;
  auto clinic = MakeClinic(interval);
  constexpr const char* kDR = core::ClinicScenario::kDoctorResearcherTable;
  uint64_t round = 0;
  for (auto _ : state) {
    Micros start = clinic->simulator().Now();
    // Both rounds start in the same block window.
    Status s1 = clinic->doctor().UpdateSharedAttribute(
        kPD, {Value::Int(1000)}, medical::kDosage,
        Value::String(StrCat("dose-", round)));
    Status s2 = clinic->researcher().UpdateSharedAttribute(
        kDR, {Value::String(clinic->researcher()
                                .database()
                                .Snapshot("D2")
                                ->NthKey(0)[0]
                                .AsString())},
        medical::kMechanismOfAction,
        Value::String(StrCat("mech-", round)));
    ++round;
    if (!s1.ok() || !s2.ok()) std::abort();
    if (!clinic->SettleAll(600 * kMicrosPerSecond).ok()) std::abort();
    state.SetIterationTime(
        static_cast<double>(clinic->simulator().Now() - start) /
        kMicrosPerSecond);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["block_interval_s"] = static_cast<double>(state.range(0));
  state.SetLabel("two tables per round; conflict rule serializes per table"
                 " only");
}
BENCHMARK(BM_ParallelIndependentTables)
    ->UseManualTime()
    ->Iterations(5)
    ->Arg(1)
    ->Arg(12);

void BM_NetworkBytesPerRound(benchmark::State& state) {
  // Wire cost of one round by shared-view size (full-view fetch transfer).
  auto clinic = MakeClinic(1 * kMicrosPerSecond,
                           static_cast<size_t>(state.range(0)));
  uint64_t round = 0;
  uint64_t bytes_before = clinic->network().stats().bytes;
  uint64_t rounds = 0;
  for (auto _ : state) {
    Status s = clinic->doctor().UpdateSharedAttribute(
        kPD, {Value::Int(1000)}, medical::kDosage,
        Value::String(StrCat("dose-", round++)));
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    ++rounds;
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  state.counters["bytes_per_round"] =
      static_cast<double>(clinic->network().stats().bytes - bytes_before) /
      static_cast<double>(rounds == 0 ? 1 : rounds);
}
BENCHMARK(BM_NetworkBytesPerRound)
    ->Iterations(5)
    ->Arg(2)
    ->Arg(64)
    ->Arg(512);

}  // namespace
