// Peers-vs-latency / cascade-throughput curve over seeded generated
// hospital networks (seed 77 at 16/32/64/128 peers). Each iteration has
// every provider push one source update through the lens chain of each of
// its shared tables, then settles the whole network; manual time records
// the SIMULATED seconds the fan-out took, so items/s is committed
// cascades per simulated second. The BX-law oracle is off here — the
// curve measures the sharing protocol, not the checker. Numbers live in
// EXPERIMENTS.md ("Generated-network scaling").

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "core/scenario_gen.h"
#include "relational/database.h"

namespace {

using namespace medsync;
using relational::Value;

void BM_GeneratedNetworkScale(benchmark::State& state) {
  core::GenOptions options;
  options.seed = 77;
  options.peers = static_cast<size_t>(state.range(0));
  options.check_bx_laws = false;
  auto created = core::GeneratedScenario::Create(options);
  if (!created.ok()) std::abort();
  core::GeneratedScenario& world = **created;
  const core::NetworkSpec& spec = world.spec();

  uint64_t round = 0;
  for (auto _ : state) {
    const Micros start = world.simulator().Now();
    // One source update per shared table, all racing in the same window —
    // every lens chain in the network re-derives concurrently.
    for (size_t t = 0; t < spec.tables.size(); ++t) {
      const core::SharedTableSpec& table = spec.tables[t];
      const core::PeerSpec& provider = spec.peers[table.provider];
      const std::string token = StrCat("bench-", round, "-", t);
      Status s = world.peer(table.provider)
                     ->UpdateSourceAndPropagate(
                         provider.source_table,
                         [&](relational::Database* db) {
                           return db->UpdateAttribute(
                               provider.source_table,
                               {Value::Int(table.key_lo)},
                               table.raw_attributes[0],
                               Value::String(token));
                         });
      if (!s.ok()) std::abort();
    }
    ++round;
    if (!world.SettleAll().ok()) std::abort();
    state.SetIterationTime(
        static_cast<double>(world.simulator().Now() - start) /
        kMicrosPerSecond);
  }
  // items/s = committed cascades per simulated second (aggregate).
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(spec.tables.size()));
  state.counters["peers"] = static_cast<double>(spec.peers.size());
  state.counters["tables"] = static_cast<double>(spec.tables.size());
  state.counters["chain_height"] =
      static_cast<double>(world.node(0).blockchain().height());
}
BENCHMARK(BM_GeneratedNetworkScale)
    ->UseManualTime()
    ->Iterations(3)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128);

}  // namespace
