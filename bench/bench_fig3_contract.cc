// Fig. 3 (metadata collection in the smart contract): per-operation cost of
// the contract itself, executed directly on a host — registration,
// permission checking as a function of the checked attribute count (the
// per-attribute-granularity ablation from DESIGN.md), permission changes,
// acks, and reads.

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "contracts/host.h"
#include "contracts/metadata_contract.h"

namespace {

using namespace medsync;
using namespace medsync::contracts;

class ContractBench {
 public:
  ContractBench()
      : provider_(crypto::KeyPair::FromSeed("provider")),
        peer_(crypto::KeyPair::FromSeed("peer")) {
    host_.RegisterType("metadata", MetadataContract::Create);
    chain::Transaction deploy =
        Tx(provider_, crypto::Address::Zero(), "metadata", Json::MakeObject());
    contract_ = ContractHost::DeploymentAddress(deploy);
    Execute(deploy);
  }

  chain::Transaction Tx(const crypto::KeyPair& key, const crypto::Address& to,
                        const std::string& method, Json params) {
    chain::Transaction tx;
    tx.from = key.address();
    tx.to = to;
    tx.nonce = nonce_++;
    tx.method = method;
    tx.params = std::move(params);
    tx.timestamp = static_cast<Micros>(nonce_);
    tx.Sign(key);
    return tx;
  }

  Receipt Execute(chain::Transaction tx) {
    chain::Block block;
    block.header.height = height_++;
    block.header.timestamp = static_cast<Micros>(height_) * 1000;
    block.transactions = {std::move(tx)};
    block.header.merkle_root = block.ComputeMerkleRoot();
    return host_.ExecuteBlock(block)[0];
  }

  /// Registers a table with `attr_count` writable attributes, both peers
  /// permitted on each.
  std::string Register(int64_t attr_count) {
    std::string id = StrCat("T", next_table_++);
    Json perm = Json::MakeObject();
    for (int64_t i = 0; i < attr_count; ++i) {
      perm.Set(StrCat("attr", i),
               Json::Array{Json(provider_.address().ToHex()),
                           Json(peer_.address().ToHex())});
    }
    Json params = Json::MakeObject();
    params.Set("table_id", id);
    params.Set("peers", Json::Array{Json(provider_.address().ToHex()),
                                    Json(peer_.address().ToHex())});
    params.Set("view_schema", Json::MakeObject());
    params.Set("write_permission", std::move(perm));
    params.Set("membership_permission",
               Json::Array{Json(provider_.address().ToHex())});
    params.Set("digest", "d0");
    Receipt receipt = Execute(Tx(provider_, contract_, "register_table",
                                 std::move(params)));
    if (!receipt.ok) std::abort();
    return id;
  }

  /// One full update round: request_update touching `touched` attributes,
  /// then the peer's ack. Returns gas used by the request.
  uint64_t UpdateRound(const std::string& table, int64_t touched,
                       uint64_t* version) {
    Json attrs = Json::MakeArray();
    for (int64_t i = 0; i < touched; ++i) attrs.Append(StrCat("attr", i));
    Json params = Json::MakeObject();
    params.Set("table_id", table);
    params.Set("kind", "update");
    params.Set("attributes", std::move(attrs));
    params.Set("digest", StrCat("d", ++*version));
    Receipt request =
        Execute(Tx(provider_, contract_, "request_update", std::move(params)));
    if (!request.ok) std::abort();

    Json ack = Json::MakeObject();
    ack.Set("table_id", table);
    ack.Set("version", *version + 1);
    ack.Set("digest", StrCat("d", *version));
    Receipt acked = Execute(Tx(peer_, contract_, "ack_update", std::move(ack)));
    if (!acked.ok) std::abort();
    return request.gas_used;
  }

  ContractHost host_;
  crypto::KeyPair provider_, peer_;
  crypto::Address contract_;
  uint64_t nonce_ = 0;
  uint64_t height_ = 1;
  int next_table_ = 0;
};

void BM_RegisterTable(benchmark::State& state) {
  // Iterations are bounded because each one registers a NEW table and the
  // host snapshots the whole contract state around every transaction
  // (rollback support), so cost grows with accumulated registrations;
  // 100 iterations keeps the measurement near the small-state regime.
  ContractBench bench;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.Register(state.range(0)));
  }
  state.counters["attributes"] = static_cast<double>(state.range(0));
  state.counters["tables_registered"] =
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_RegisterTable)->Iterations(100)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_UpdateRoundByTouchedAttributes(benchmark::State& state) {
  // The permission-check cost scales with the number of attributes the
  // update declares — the price of fine-grained (per-attribute) control.
  // Arg 0 = touched attribute count; the table always has 64 writable.
  ContractBench bench;
  std::string table = bench.Register(64);
  uint64_t version = 0;
  uint64_t gas = 0;
  for (auto _ : state) {
    gas = bench.UpdateRound(table, state.range(0), &version);
  }
  state.counters["touched_attrs"] = static_cast<double>(state.range(0));
  state.counters["request_gas"] = static_cast<double>(gas);
}
BENCHMARK(BM_UpdateRoundByTouchedAttributes)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_TableLevelUpdateRound(benchmark::State& state) {
  // Ablation baseline: table-level control = one membership-style check,
  // independent of attribute count (compare request_gas with the
  // per-attribute rows above).
  ContractBench bench;
  std::string table = bench.Register(64);
  uint64_t version = 0;
  for (auto _ : state) {
    Json params = Json::MakeObject();
    params.Set("table_id", table);
    params.Set("kind", "insert");  // membership check only
    params.Set("digest", medsync::StrCat("d", ++version));
    Receipt request = bench.Execute(bench.Tx(
        bench.provider_, bench.contract_, "request_update", params));
    if (!request.ok) std::abort();
    Json ack = Json::MakeObject();
    ack.Set("table_id", table);
    ack.Set("version", version + 1);
    ack.Set("digest", medsync::StrCat("d", version));
    IgnoreStatusForTest(bench.Execute(
        bench.Tx(bench.peer_, bench.contract_, "ack_update", ack)));
    state.counters["request_gas"] = static_cast<double>(request.gas_used);
  }
}
BENCHMARK(BM_TableLevelUpdateRound);

void BM_ChangePermission(benchmark::State& state) {
  ContractBench bench;
  std::string table = bench.Register(4);
  bool grant = true;
  for (auto _ : state) {
    Json params = Json::MakeObject();
    params.Set("table_id", table);
    params.Set("attribute", "attr0");
    params.Set("peer", bench.peer_.address().ToHex());
    params.Set("grant", grant);
    grant = !grant;
    Receipt receipt = bench.Execute(bench.Tx(
        bench.provider_, bench.contract_, "change_permission", params));
    benchmark::DoNotOptimize(receipt);
  }
}
BENCHMARK(BM_ChangePermission);

void BM_GetEntryStaticCall(benchmark::State& state) {
  // Reads are free of consensus: a static call against local state.
  ContractBench bench;
  std::string table = bench.Register(16);
  Json params = Json::MakeObject();
  params.Set("table_id", table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.host_.StaticCall(
        bench.contract_, "get_entry", params, bench.provider_.address()));
  }
}
BENCHMARK(BM_GetEntryStaticCall);

void BM_DeniedUpdateRollback(benchmark::State& state) {
  // A denied request costs a snapshot + restore on top of the checks.
  ContractBench bench;
  std::string table = bench.Register(2);
  crypto::KeyPair outsider = crypto::KeyPair::FromSeed("outsider");
  Json params = Json::MakeObject();
  params.Set("table_id", table);
  params.Set("kind", "update");
  params.Set("attributes", Json::Array{Json("attr0")});
  params.Set("digest", "dx");
  for (auto _ : state) {
    Receipt receipt = bench.Execute(
        bench.Tx(outsider, bench.contract_, "request_update", params));
    if (receipt.ok) std::abort();
    benchmark::DoNotOptimize(receipt);
  }
}
BENCHMARK(BM_DeniedUpdateRollback);

}  // namespace
