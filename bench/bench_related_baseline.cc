// Related-work baseline (Section V): prior blockchain-EHR systems such as
// MedRec share the FULL record with each authorized party, while this
// paper's contribution is fine-grained per-peer views. Both policies are
// expressible in this library — full-record sharing is just the identity
// lens — so the comparison runs on identical substrates:
//
//  * exposure: how many attribute VALUES of the provider's table each
//    counterparty can see (the privacy argument of the introduction);
//  * wire cost per committed update round (full-view fetches);
//  * update-translation power: with fine-grained views, an update to a
//    hidden attribute never even reaches the counterparty.
//
// Shape to observe: fine-grained sharing exposes a constant fraction of
// the attributes and ships proportionally fewer bytes, at identical
// consensus latency (the protocol is block-bound either way).

#include <benchmark/benchmark.h>

#include "bx/lens_factory.h"
#include "common/strings.h"
#include "contracts/metadata_contract.h"
#include "core/peer.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/query.h"

namespace {

using namespace medsync;
using namespace medsync::medical;
using relational::Table;
using relational::Value;

constexpr Micros kBlockInterval = 1 * kMicrosPerSecond;

/// A two-peer world: provider (doctor-like, full 7-attribute records) and
/// consumer, sharing either fine-grained (a0,a1,a4) or the full record.
struct TwoPeerWorld {
  std::unique_ptr<net::Simulator> simulator;
  std::unique_ptr<net::SimNetwork> network;
  std::unique_ptr<runtime::ChainNode> node;
  std::unique_ptr<core::Peer> provider;
  std::unique_ptr<core::Peer> consumer;
  crypto::Address contract;

  static std::unique_ptr<TwoPeerWorld> Create(size_t records,
                                              bool fine_grained) {
    auto world = std::make_unique<TwoPeerWorld>();
    world->simulator = std::make_unique<net::Simulator>();
    world->network = std::make_unique<net::SimNetwork>(
        world->simulator.get(), net::LatencyModel{}, 7);

    auto key = std::make_shared<crypto::KeyPair>(
        crypto::KeyPair::FromSeed("baseline-authority"));
    auto sealer = std::make_shared<chain::PoaSealer>(
        std::vector<crypto::Address>{key->address()}, key);
    auto host = std::make_unique<contracts::ContractHost>();
    host->RegisterType("metadata", contracts::MetadataContract::Create);
    runtime::NodeConfig node_config;
    node_config.id = "baseline-node";
    node_config.block_interval = kBlockInterval;
    node_config.sealing_enabled = true;
    world->node = std::make_unique<runtime::ChainNode>(
        node_config, world->simulator.get(), world->network.get(),
        std::move(sealer), chain::Blockchain::MakeGenesis(0),
        contracts::SharedDataConflictKey, std::move(host));
    world->node->Start();

    auto make_peer = [&](const char* name) {
      core::PeerConfig config;
      config.name = name;
      auto peer = std::make_unique<core::Peer>(
          config, world->simulator.get(), world->network.get(),
          world->node.get());
      peer->Start();
      return peer;
    };
    world->provider = make_peer("provider");
    world->consumer = make_peer("consumer");
    world->provider->AddKnownPeer("consumer", world->consumer->address());
    world->consumer->AddKnownPeer("provider", world->provider->address());

    // Provider's full records; consumer's source mirrors the shared shape.
    Table full = GenerateFullRecords({.seed = 5, .record_count = records});
    if (!world->provider->database().CreateTable("FULL", full.schema()).ok())
      std::abort();
    if (!world->provider->database().ReplaceTable("FULL", full).ok())
      std::abort();

    bx::LensPtr lens =
        fine_grained
            ? bx::MakeProjectLens({kPatientId, kMedicationName, kDosage},
                                  {kPatientId})
            : bx::MakeIdentityLens();  // the MedRec-style baseline
    Table view = *lens->Get(full);
    if (!world->provider->database().CreateTable("SHARED_p", view.schema())
             .ok())
      std::abort();
    if (!world->provider->database().ReplaceTable("SHARED_p", view).ok())
      std::abort();
    if (!world->consumer->database().CreateTable("MIRROR", view.schema())
             .ok())
      std::abort();
    if (!world->consumer->database().ReplaceTable("MIRROR", view).ok())
      std::abort();
    if (!world->consumer->database().CreateTable("SHARED_c", view.schema())
             .ok())
      std::abort();
    if (!world->consumer->database().ReplaceTable("SHARED_c", view).ok())
      std::abort();

    Result<crypto::Address> contract =
        world->provider->DeployMetadataContract();
    if (!contract.ok()) std::abort();
    world->contract = *contract;

    core::SharedTableConfig provider_cfg{"SHARED", "FULL", "SHARED_p", lens,
                                         world->contract};
    // Consumer's source IS the view shape (identity binding).
    core::SharedTableConfig consumer_cfg{"SHARED", "MIRROR", "SHARED_c",
                                         bx::MakeIdentityLens(),
                                         world->contract};
    if (!world->provider->AdoptSharedTable(provider_cfg).ok()) std::abort();
    if (!world->consumer->AdoptSharedTable(consumer_cfg).ok()) std::abort();

    std::map<std::string, std::vector<crypto::Address>> perms;
    for (const relational::AttributeDef& attr : view.schema().attributes()) {
      perms[attr.name] = {world->provider->address()};
    }
    if (!world->provider
             ->RegisterSharedTableOnChain(
                 provider_cfg,
                 {world->provider->address(), world->consumer->address()},
                 perms, {world->provider->address()},
                 world->provider->address())
             .ok()) {
      std::abort();
    }
    world->Settle();
    return world;
  }

  void Settle() {
    for (int i = 0; i < 200; ++i) {
      simulator->RunFor(kBlockInterval);
      if (node->mempool().empty() && !provider->HasPendingWork() &&
          !consumer->HasPendingWork()) {
        return;
      }
    }
    std::abort();
  }
};

void BM_SharingPolicyUpdateRound(benchmark::State& state) {
  bool fine_grained = state.range(0) == 1;
  size_t records = static_cast<size_t>(state.range(1));
  auto world = TwoPeerWorld::Create(records, fine_grained);
  uint64_t round = 0;
  uint64_t bytes_before = world->network->stats().bytes;
  uint64_t rounds = 0;
  for (auto _ : state) {
    Micros start = world->simulator->Now();
    // The provider updates a dosage — visible under BOTH policies.
    Status s = world->provider->UpdateSharedAttribute(
        "SHARED", {Value::Int(1000)}, kDosage,
        Value::String(StrCat("dose-", round++)));
    if (!s.ok()) std::abort();
    world->Settle();
    ++rounds;
    state.SetIterationTime(
        static_cast<double>(world->simulator->Now() - start) /
        kMicrosPerSecond);
  }
  state.SetLabel(fine_grained ? "fine_grained(3 of 7 attrs)"
                              : "full_record(MedRec-style)");
  state.counters["records"] = static_cast<double>(records);
  state.counters["bytes_per_round"] =
      static_cast<double>(world->network->stats().bytes - bytes_before) /
      static_cast<double>(rounds ? rounds : 1);
  // Exposure: attribute values of the provider's table the consumer holds.
  Table mirror = *world->consumer->database().Snapshot("MIRROR");
  state.counters["exposed_values"] = static_cast<double>(
      mirror.row_count() * mirror.schema().attribute_count());
}
BENCHMARK(BM_SharingPolicyUpdateRound)
    ->UseManualTime()
    ->Iterations(5)
    ->ArgsProduct({{0, 1}, {64, 512}});

void BM_ChainStorageGrowth(benchmark::State& state) {
  // The other related-work contrast (Section V vs HDG/Yue et al.): storing
  // the DATA on-chain makes every node's ledger grow with record size,
  // while this architecture stores only metadata (permissions, version,
  // digest) on-chain and keeps data in local databases. Measure serialized
  // canonical-chain bytes after 5 committed update rounds, with the HDG
  // policy simulated by embedding the full shared table in each
  // request_update's note field.
  bool metadata_only = state.range(0) == 1;
  size_t records = static_cast<size_t>(state.range(1));
  auto world = TwoPeerWorld::Create(records, /*fine_grained=*/true);

  uint64_t round = 0;
  for (auto _ : state) {
    for (int i = 0; i < 5; ++i) {
      if (metadata_only) {
        Status s = world->provider->UpdateSharedAttribute(
            "SHARED", {Value::Int(1000)}, kDosage,
            Value::String(StrCat("dose-", round++)));
        if (!s.ok()) std::abort();
      } else {
        // HDG-style: the whole shared table rides inside the transaction.
        Table shared = *world->provider->database().Snapshot("SHARED_p");
        IgnoreStatusForTest(shared.UpdateAttribute({Value::Int(1000)}, kDosage,
                                     Value::String(StrCat("dose-", round))));
        chain::Transaction tx;
        tx.from = world->provider->address();
        tx.to = world->contract;
        tx.nonce = 100000 + round++;
        tx.method = "request_update";
        Json params = Json::MakeObject();
        params.Set("table_id", "SHARED");
        params.Set("kind", "update");
        params.Set("attributes", Json::Array{Json(std::string(kDosage))});
        params.Set("digest", shared.ContentDigest());
        params.Set("note", shared.ToJson());  // <- the on-chain data burden
        tx.params = std::move(params);
        tx.timestamp = world->simulator->Now();
        tx.Sign(world->provider->key());
        if (!world->node->SubmitTransaction(std::move(tx)).ok()) std::abort();
        world->Settle();
        // Close the round so the ack gate reopens.
        Json entry_params = Json::MakeObject();
        entry_params.Set("table_id", "SHARED");
        Result<Json> entry =
            world->node->Query(world->contract, "get_entry", entry_params,
                               world->provider->address());
        if (entry.ok() && entry->At("pending_acks").size() > 0) {
          chain::Transaction ack;
          ack.from = world->consumer->address();
          ack.to = world->contract;
          ack.nonce = 200000 + round;
          ack.method = "ack_update";
          Json ap = Json::MakeObject();
          ap.Set("table_id", "SHARED");
          ap.Set("version", *entry->GetInt("version"));
          ap.Set("digest", *entry->GetString("content_digest"));
          ack.params = std::move(ap);
          ack.timestamp = world->simulator->Now();
          ack.Sign(world->consumer->key());
          if (!world->node->SubmitTransaction(std::move(ack)).ok()) {
            std::abort();
          }
        }
      }
      world->Settle();
    }
  }

  uint64_t chain_bytes = 0;
  for (const chain::Block* block :
       world->node->blockchain().CanonicalChain()) {
    chain_bytes += block->ToJson().Dump().size();
  }
  state.SetLabel(metadata_only ? "metadata on-chain (this paper)"
                               : "data on-chain (HDG-style)");
  state.counters["records"] = static_cast<double>(records);
  state.counters["chain_bytes"] = static_cast<double>(chain_bytes);
  state.counters["bytes_per_ledger_replica_per_round"] =
      static_cast<double>(chain_bytes) /
      static_cast<double>(5 * state.iterations());
}
BENCHMARK(BM_ChainStorageGrowth)
    ->Iterations(1)
    ->ArgsProduct({{0, 1}, {64, 512}});

void BM_HiddenAttributeUpdate(benchmark::State& state) {
  // The provider updates the ADDRESS (a3) — hidden under the fine-grained
  // policy. Fine-grained: the dependency check finds the shared view
  // untouched and NOTHING goes on-chain or on the wire. Full-record: a
  // complete consensus round plus a full-table fetch.
  bool fine_grained = state.range(0) == 1;
  auto world = TwoPeerWorld::Create(256, fine_grained);
  uint64_t round = 0;
  uint64_t bytes_before = world->network->stats().bytes;
  uint64_t rounds = 0;
  for (auto _ : state) {
    Micros start = world->simulator->Now();
    Status s = world->provider->UpdateSourceAndPropagate(
        "FULL", [&](relational::Database* db) {
          return db->UpdateAttribute("FULL", {Value::Int(1001)}, kAddress,
                                     Value::String(StrCat("addr-", round++)));
        });
    if (!s.ok()) std::abort();
    world->Settle();
    ++rounds;
    state.SetIterationTime(
        static_cast<double>(world->simulator->Now() - start) /
        kMicrosPerSecond);
  }
  state.SetLabel(fine_grained
                     ? "fine_grained: hidden attr, zero protocol traffic"
                     : "full_record: every edit is everyone's business");
  state.counters["bytes_per_round"] =
      static_cast<double>(world->network->stats().bytes - bytes_before) /
      static_cast<double>(rounds ? rounds : 1);
}
BENCHMARK(BM_HiddenAttributeUpdate)
    ->UseManualTime()
    ->Iterations(5)
    ->Arg(0)
    ->Arg(1);

}  // namespace
