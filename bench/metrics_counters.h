#ifndef MEDSYNC_BENCH_METRICS_COUNTERS_H_
#define MEDSYNC_BENCH_METRICS_COUNTERS_H_

#include <benchmark/benchmark.h>

#include <string>

#include "common/json.h"
#include "common/metrics/metrics.h"
#include "common/strings.h"

namespace medsync::bench {

/// Flattens a registry snapshot into benchmark counters, so the JSON
/// emitted with --benchmark_format=json (BENCH_*.json) carries a
/// "metrics.<name>" entry per counter/gauge and count/sum/p50/p99
/// summaries per histogram.
inline void ExportMetrics(benchmark::State& state,
                          const metrics::MetricsRegistry& registry) {
  const Json snapshot = registry.Snapshot();
  for (const auto& [name, value] : snapshot.At("counters").AsObject()) {
    state.counters[StrCat("metrics.", name)] =
        static_cast<double>(value.AsInt());
  }
  for (const auto& [name, value] : snapshot.At("gauges").AsObject()) {
    state.counters[StrCat("metrics.", name)] =
        static_cast<double>(value.AsInt());
  }
  for (const auto& [name, histogram] :
       snapshot.At("histograms").AsObject()) {
    for (const char* field : {"count", "sum", "p50", "p99"}) {
      state.counters[StrCat("metrics.", name, ".", field)] =
          static_cast<double>(histogram.At(field).AsInt());
    }
  }
}

}  // namespace medsync::bench

#endif  // MEDSYNC_BENCH_METRICS_COUNTERS_H_
