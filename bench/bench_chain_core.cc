// Chain substrate costs: hashing, Merkle commitment/proofs, PoW sealing by
// difficulty, PoA sealing, and full block validation. The PoW sweep shows
// the expected 2^bits growth; PoA sealing is constant — the quantitative
// backing for the paper's private-chain recommendation (Section IV-3).
//
// The *_Threaded variants run the same work on a worker pool (the pool size
// is the benchmark argument) and report `speedup_vs_serial`, measured
// against an in-process serial baseline on identical inputs. The parallel
// paths are deterministic, so the outputs being compared are identical.

#include <benchmark/benchmark.h>

#include <chrono>

#include "chain/blockchain.h"
#include "chain/sealer.h"
#include "common/strings.h"
#include "common/threading/thread_pool.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "metrics_counters.h"

namespace {

using namespace medsync;
using namespace medsync::chain;

/// Wall-clock seconds of `fn()`, for in-benchmark serial baselines.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Transaction MakeTx(uint64_t nonce) {
  static const crypto::KeyPair* key =
      new crypto::KeyPair(crypto::KeyPair::FromSeed("bench-sender"));
  Transaction tx;
  tx.from = key->address();
  tx.to = crypto::KeyPair::FromSeed("bench-target").address();
  tx.nonce = nonce;
  tx.method = "request_update";
  Json params = Json::MakeObject();
  params.Set("table_id", StrCat("T", nonce));
  params.Set("digest", std::string(64, 'a'));
  tx.params = std::move(params);
  tx.Sign(*key);
  return tx;
}

void BM_Sha256(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Range(64, 1 << 20);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<crypto::Hash256> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(crypto::Sha256::Hash(StrCat("leaf", i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::ComputeRoot(leaves));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleRoot)->Range(1, 4096);

void BM_MerkleProofVerify(benchmark::State& state) {
  std::vector<crypto::Hash256> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(crypto::Sha256::Hash(StrCat("leaf", i)));
  }
  crypto::MerkleTree tree(leaves);
  crypto::MerkleProof proof = tree.BuildProof(leaves.size() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::VerifyProof(
        leaves[leaves.size() / 2], proof, tree.root()));
  }
}
BENCHMARK(BM_MerkleProofVerify)->Range(2, 4096);

void BM_TransactionSignVerify(benchmark::State& state) {
  Transaction tx = MakeTx(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx.VerifySignature());
  }
}
BENCHMARK(BM_TransactionSignVerify);

void BM_PowSeal(benchmark::State& state) {
  // Expected cost doubles per difficulty bit; this is why a 12 s public-
  // chain block interval exists at all.
  metrics::MetricsRegistry registry;
  PowSealer sealer(static_cast<uint32_t>(state.range(0)));
  sealer.set_metrics(&registry);
  uint64_t salt = 0;
  for (auto _ : state) {
    Block block;
    block.header.height = 1;
    block.header.timestamp = static_cast<Micros>(++salt);
    block.header.merkle_root = crypto::Sha256::Hash(StrCat("salt", salt));
    benchmark::DoNotOptimize(sealer.Seal(&block));
  }
  state.counters["difficulty_bits"] = static_cast<double>(state.range(0));
  bench::ExportMetrics(state, registry);
}
BENCHMARK(BM_PowSeal)->DenseRange(4, 16, 4);

void BM_PoaSeal(benchmark::State& state) {
  auto key = std::make_shared<crypto::KeyPair>(
      crypto::KeyPair::FromSeed("authority"));
  PoaSealer sealer({key->address()}, key);
  uint64_t salt = 0;
  for (auto _ : state) {
    Block block;
    block.header.height = 1;
    block.header.timestamp = static_cast<Micros>(++salt);
    block.header.merkle_root = crypto::Sha256::Hash(StrCat("salt", salt));
    benchmark::DoNotOptimize(sealer.Seal(&block));
  }
}
BENCHMARK(BM_PoaSeal);

void BM_BlockValidate(benchmark::State& state) {
  auto key = std::make_shared<crypto::KeyPair>(
      crypto::KeyPair::FromSeed("authority"));
  auto sealer = PoaSealer({key->address()}, key);
  Block genesis = Blockchain::MakeGenesis(0);
  metrics::MetricsRegistry registry;
  Blockchain chain(genesis, &sealer);
  chain.set_metrics(&registry);

  Block block;
  block.header.height = 1;
  block.header.parent = genesis.header.Hash();
  block.header.timestamp = 1;
  for (int64_t i = 0; i < state.range(0); ++i) {
    block.transactions.push_back(MakeTx(static_cast<uint64_t>(i)));
  }
  block.header.merkle_root = block.ComputeMerkleRoot();
  IgnoreStatusForTest(sealer.Seal(&block));

  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.ValidateStructure(block));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  bench::ExportMetrics(state, registry);
}
BENCHMARK(BM_BlockValidate)->Range(1, 256);

void BM_ChainAppendAndIntegrity(benchmark::State& state) {
  auto key = std::make_shared<crypto::KeyPair>(
      crypto::KeyPair::FromSeed("authority"));
  for (auto _ : state) {
    state.PauseTiming();
    auto sealer = PoaSealer({key->address()}, key);
    Block genesis = Blockchain::MakeGenesis(0);
    Blockchain chain(genesis, &sealer);
    state.ResumeTiming();
    const Block* parent = &chain.genesis();
    for (int64_t h = 1; h <= state.range(0); ++h) {
      Block block;
      block.header.height = static_cast<uint64_t>(h);
      block.header.parent = parent->header.Hash();
      block.header.timestamp = h;
      block.transactions.push_back(MakeTx(static_cast<uint64_t>(h)));
      block.header.merkle_root = block.ComputeMerkleRoot();
      IgnoreStatusForTest(sealer.Seal(&block));
      benchmark::DoNotOptimize(chain.AddBlock(std::move(block)));
      parent = &chain.head();
    }
    benchmark::DoNotOptimize(chain.VerifyIntegrity());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChainAppendAndIntegrity)->Range(8, 128);

// ---------------------------------------------------------------------------
// Threaded variants. Argument = worker-pool size; `speedup_vs_serial` is the
// serial wall time divided by the threaded wall time on identical inputs.

void BM_MerkleRoot_Threaded(benchmark::State& state) {
  const auto leaf_count = static_cast<size_t>(state.range(0));
  threading::ThreadPool pool(static_cast<size_t>(state.range(1)));
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(leaf_count);
  for (size_t i = 0; i < leaf_count; ++i) {
    leaves.push_back(crypto::Sha256::Hash(StrCat("leaf", i)));
  }
  constexpr int kBaselineReps = 50;
  double serial_seconds = TimeSeconds([&] {
    for (int rep = 0; rep < kBaselineReps; ++rep) {
      benchmark::DoNotOptimize(crypto::MerkleTree::ComputeRoot(leaves));
    }
  }) / kBaselineReps;
  double threaded_seconds = 0;
  for (auto _ : state) {
    threaded_seconds += TimeSeconds([&] {
      benchmark::DoNotOptimize(crypto::MerkleTree::ComputeRoot(leaves, &pool));
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["pool_size"] = static_cast<double>(state.range(1));
  state.counters["speedup_vs_serial"] =
      serial_seconds / (threaded_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MerkleRoot_Threaded)
    ->ArgsProduct({{1024, 16384}, {1, 2, 4, 8}});

void BM_PowSeal_Threaded(benchmark::State& state) {
  // Fixed difficulty; the parallel search claims nonce chunks in order and
  // returns the same (lowest) nonce the serial scan finds, so both runs do
  // comparable work. A batch of salts averages over nonce-search luck.
  constexpr uint32_t kBits = 12;
  constexpr int kSalts = 8;
  threading::ThreadPool pool(static_cast<size_t>(state.range(0)));
  PowSealer serial(kBits);
  PowSealer threaded(kBits, &pool);
  auto make_block = [](int salt) {
    Block block;
    block.header.height = 1;
    block.header.timestamp = static_cast<Micros>(salt + 1);
    block.header.merkle_root = crypto::Sha256::Hash(StrCat("tsalt", salt));
    return block;
  };
  double serial_seconds = TimeSeconds([&] {
    for (int s = 0; s < kSalts; ++s) {
      Block block = make_block(s);
      benchmark::DoNotOptimize(serial.Seal(&block));
    }
  });
  double threaded_seconds = 0;
  for (auto _ : state) {
    threaded_seconds += TimeSeconds([&] {
      for (int s = 0; s < kSalts; ++s) {
        Block block = make_block(s);
        benchmark::DoNotOptimize(threaded.Seal(&block));
      }
    });
  }
  state.counters["pool_size"] = static_cast<double>(state.range(0));
  state.counters["speedup_vs_serial"] =
      serial_seconds / (threaded_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PowSeal_Threaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_BlockValidate_Threaded(benchmark::State& state) {
  const auto tx_count = state.range(0);
  threading::ThreadPool pool(static_cast<size_t>(state.range(1)));
  auto key = std::make_shared<crypto::KeyPair>(
      crypto::KeyPair::FromSeed("authority"));
  auto sealer = PoaSealer({key->address()}, key);
  Block genesis = Blockchain::MakeGenesis(0);
  Blockchain serial_chain(genesis, &sealer);
  Blockchain threaded_chain(genesis, &sealer, nullptr, &pool);

  Block block;
  block.header.height = 1;
  block.header.parent = genesis.header.Hash();
  block.header.timestamp = 1;
  for (int64_t i = 0; i < tx_count; ++i) {
    block.transactions.push_back(MakeTx(static_cast<uint64_t>(i)));
  }
  block.header.merkle_root = block.ComputeMerkleRoot();
  IgnoreStatusForTest(sealer.Seal(&block));

  constexpr int kBaselineReps = 20;
  double serial_seconds = TimeSeconds([&] {
    for (int rep = 0; rep < kBaselineReps; ++rep) {
      benchmark::DoNotOptimize(serial_chain.ValidateStructure(block));
    }
  }) / kBaselineReps;
  double threaded_seconds = 0;
  for (auto _ : state) {
    threaded_seconds += TimeSeconds([&] {
      benchmark::DoNotOptimize(threaded_chain.ValidateStructure(block));
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["pool_size"] = static_cast<double>(state.range(1));
  state.counters["speedup_vs_serial"] =
      serial_seconds / (threaded_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_BlockValidate_Threaded)
    ->ArgsProduct({{16, 64, 256}, {1, 2, 4, 8}});

}  // namespace
