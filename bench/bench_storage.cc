// Local-database substrate costs (the per-peer storage of Fig. 2): WAL
// append latency, logged mutations, table replacement (what a view refresh
// costs), checkpointing, and crash recovery as a function of WAL length.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "common/strings.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/aggregate.h"
#include "relational/database.h"
#include "relational/index.h"
#include "relational/query.h"

namespace {

using namespace medsync;
using namespace medsync::relational;

namespace fs = std::filesystem;

std::string FreshDir() {
  static int counter = 0;
  fs::path dir = fs::temp_directory_path() /
                 StrCat("medsync_bench_", ::getpid(), "_", counter++);
  fs::create_directories(dir);
  return dir.string();
}

Row MakeRow(int64_t id) {
  return Row{Value::Int(id), Value::String(StrCat("value-", id))};
}

Schema SmallSchema() {
  return *Schema::Create(
      {{"id", DataType::kInt, false}, {"v", DataType::kString, true}},
      {"id"});
}

void BM_WalAppend(benchmark::State& state) {
  std::string dir = FreshDir();
  std::vector<WalRecord> recovered;
  Wal wal = *Wal::Open(dir + "/wal.log", &recovered);
  Json payload = Json::MakeObject();
  payload.Set("op", "insert");
  payload.Set("row", std::string(static_cast<size_t>(state.range(0)), 'x'));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.Append(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Range(64, 8192);

void BM_DurableInsert(benchmark::State& state) {
  std::string dir = FreshDir();
  Database db = *Database::Open(dir);
  IgnoreStatusForTest(db.CreateTable("t", SmallSchema()));
  int64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Insert("t", MakeRow(id++)));
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_DurableInsert);

void BM_InMemoryInsert(benchmark::State& state) {
  Database db;
  IgnoreStatusForTest(db.CreateTable("t", SmallSchema()));
  int64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Insert("t", MakeRow(id++)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InMemoryInsert);

void BM_ReplaceTable(benchmark::State& state) {
  // What applying a fetched shared view costs, by view size.
  Database db;
  Table records = medical::GenerateFullRecords(
      {.seed = 1, .record_count = static_cast<size_t>(state.range(0))});
  IgnoreStatusForTest(db.CreateTable("view", records.schema()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.ReplaceTable("view", records));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReplaceTable)->Range(8, 4096);

void BM_TransactionCommit(benchmark::State& state) {
  Database db;
  IgnoreStatusForTest(db.CreateTable("t", SmallSchema()));
  int64_t id = 0;
  for (auto _ : state) {
    Database::Transaction txn = db.Begin();
    for (int64_t i = 0; i < state.range(0); ++i) {
      txn.Insert("t", MakeRow(id++));
    }
    benchmark::DoNotOptimize(db.Commit(std::move(txn)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TransactionCommit)->Range(1, 256);

void BM_Recovery(benchmark::State& state) {
  // Reopen cost after `range` logged mutations with no checkpoint.
  std::string dir = FreshDir();
  {
    Database db = *Database::Open(dir);
    IgnoreStatusForTest(db.CreateTable("t", SmallSchema()));
    for (int64_t i = 0; i < state.range(0); ++i) {
      IgnoreStatusForTest(db.Insert("t", MakeRow(i)));
    }
  }
  for (auto _ : state) {
    Result<Database> db = Database::Open(dir);
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_Recovery)->Range(16, 4096);

void BM_CheckpointThenRecover(benchmark::State& state) {
  // Same data volume, but checkpointed: recovery reads the snapshot and an
  // empty WAL. Compare with BM_Recovery to see the WAL-replay tax.
  std::string dir = FreshDir();
  {
    Database db = *Database::Open(dir);
    IgnoreStatusForTest(db.CreateTable("t", SmallSchema()));
    for (int64_t i = 0; i < state.range(0); ++i) {
      IgnoreStatusForTest(db.Insert("t", MakeRow(i)));
    }
    IgnoreStatusForTest(db.Checkpoint());
  }
  for (auto _ : state) {
    Result<Database> db = Database::Open(dir);
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_CheckpointThenRecover)->Range(16, 4096);

void BM_SelectFullScan(benchmark::State& state) {
  Table records = medical::GenerateFullRecords(
      {.seed = 4, .record_count = static_cast<size_t>(state.range(0))});
  auto predicate = Predicate::Compare(medical::kAddress, CompareOp::kEq,
                                      Value::String("Osaka"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Select(records, predicate));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectFullScan)->Range(64, 16384);

void BM_SelectSecondaryIndex(benchmark::State& state) {
  // Same query via a prebuilt secondary index: O(log n + hits) per probe.
  Table records = medical::GenerateFullRecords(
      {.seed = 4, .record_count = static_cast<size_t>(state.range(0))});
  SecondaryIndex index =
      *SecondaryIndex::Build(records, medical::kAddress);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IndexedSelectEquals(records, index, Value::String("Osaka")));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectSecondaryIndex)->Range(64, 16384);

void BM_SecondaryIndexBuild(benchmark::State& state) {
  Table records = medical::GenerateFullRecords(
      {.seed = 4, .record_count = static_cast<size_t>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SecondaryIndex::Build(records, medical::kAddress));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SecondaryIndexBuild)->Range(64, 16384);

void BM_SecondaryIndexDeltaVsRebuild(benchmark::State& state) {
  // Keeping an index current across a single-row change: ApplyDelta is
  // O(|delta| log n) where a rebuild pays O(n log n) again. range(1)
  // selects the strategy so the JSON carries both series per size.
  const bool rebuild = state.range(1) == 1;
  Table table = medical::GenerateFullRecords(
      {.seed = 4, .record_count = static_cast<size_t>(state.range(0))});
  SecondaryIndex index = *SecondaryIndex::Build(table, medical::kAddress);
  std::vector<Key> keys;
  for (const auto& [key, row] : table.scan()) keys.push_back(key);
  uint64_t round = 0;
  double maintain_seconds = 0;
  for (auto _ : state) {
    TableDelta delta;
    Row updated = *table.Get(keys[round % keys.size()]);
    updated[3] = Value::String(StrCat("City-", round++));
    delta.updates.push_back(updated);
    // Only the index maintenance is timed; the table mutation itself is
    // common to both strategies.
    if (rebuild) {
      if (!ApplyDelta(delta, &table).ok()) std::abort();
      auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(
          SecondaryIndex::Build(table, medical::kAddress));
      maintain_seconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    } else {
      auto start = std::chrono::steady_clock::now();
      if (!index.ApplyDelta(table, delta).ok()) std::abort();
      maintain_seconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      benchmark::DoNotOptimize(index);
      if (!ApplyDelta(delta, &table).ok()) std::abort();
    }
  }
  state.counters["maintain_us_per_op"] =
      1e6 * maintain_seconds / static_cast<double>(state.iterations());
  state.SetLabel(rebuild ? "rebuild" : "apply_delta");
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SecondaryIndexDeltaVsRebuild)
    ->ArgsProduct({{64, 1024, 16384}, {0, 1}});

// ---------------------------------------------------------------------------
// Columnar chunk engine at million-row scale (DESIGN.md section 15). These
// are the EXPERIMENTS.md "storage engine" rows: bulk load + streamed
// checkpoint, recovery, the merge scan, and the vectorized select speedup.
// ---------------------------------------------------------------------------

long ProcStatusKb(const char* field) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(field, 0) == 0) {
      return std::strtol(line.c_str() + std::strlen(field) + 1, nullptr, 10);
    }
  }
  return -1;
}

Row WideRow(int64_t i) {
  // 16 distinct ward strings: exercises the chunk dictionary encoding.
  return Row{Value::Int(i), Value::String(StrCat("ward-", i % 16)),
             Value::Int(i * 7)};
}

Schema WideSchema() {
  return *Schema::Create({{"id", DataType::kInt, false},
                          {"ward", DataType::kString, true},
                          {"score", DataType::kInt, true}},
                         {"id"});
}

void BM_ChunkedBulkLoadAndCheckpoint(benchmark::State& state) {
  // End-to-end bulk load: logged inserts with sync_every_append off, one
  // SealTable, one streamed (format-3) checkpoint. Items/s is rows loaded.
  const int64_t rows = state.range(0);
  for (auto _ : state) {
    std::string dir = FreshDir();
    {
      Database::OpenOptions bulk;
      bulk.sync_every_append = false;
      Database db = *Database::Open(dir, bulk);
      IgnoreStatusForTest(db.CreateTable("t", WideSchema()));
      for (int64_t i = 0; i < rows; ++i) {
        IgnoreStatusForTest(db.Insert("t", WideRow(i)));
      }
      IgnoreStatusForTest(db.SealTable("t"));
      IgnoreStatusForTest(db.Checkpoint());
    }
    fs::remove_all(dir);
  }
  state.counters["VmHWM_mb"] =
      static_cast<double>(ProcStatusKb("VmHWM")) / 1024.0;
  state.counters["VmRSS_mb"] =
      static_cast<double>(ProcStatusKb("VmRSS")) / 1024.0;
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ChunkedBulkLoadAndCheckpoint)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ChunkedRecover(benchmark::State& state) {
  // Open() against a streamed checkpoint: manifest + per-chunk files.
  const int64_t rows = state.range(0);
  std::string dir = FreshDir();
  {
    Database::OpenOptions bulk;
    bulk.sync_every_append = false;
    Database db = *Database::Open(dir, bulk);
    IgnoreStatusForTest(db.CreateTable("t", WideSchema()));
    for (int64_t i = 0; i < rows; ++i) {
      IgnoreStatusForTest(db.Insert("t", WideRow(i)));
    }
    IgnoreStatusForTest(db.SealTable("t"));
    IgnoreStatusForTest(db.Checkpoint());
  }
  for (auto _ : state) {
    Result<Database> db = Database::Open(dir);
    benchmark::DoNotOptimize(db);
  }
  state.counters["VmHWM_mb"] =
      static_cast<double>(ProcStatusKb("VmHWM")) / 1024.0;
  state.SetItemsProcessed(state.iterations() * rows);
  fs::remove_all(dir);
}
BENCHMARK(BM_ChunkedRecover)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_ChunkedMergeScan(benchmark::State& state) {
  // Full table.scan() over sealed history + a live head: the merge
  // iterator everyone outside src/relational/ must use (MS008).
  const int64_t rows = state.range(0);
  Table table(WideSchema());
  for (int64_t i = 0; i < rows; ++i) {
    IgnoreStatusForTest(table.Insert(WideRow(i)));
  }
  for (auto _ : state) {
    int64_t sum = 0;
    for (const auto& [key, row] : table.scan()) sum += row[2].AsInt();
    benchmark::DoNotOptimize(sum);
  }
  state.counters["VmRSS_mb"] =
      static_cast<double>(ProcStatusKb("VmRSS")) / 1024.0;
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ChunkedMergeScan)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_SelectChunkedVsHeadOnly(benchmark::State& state) {
  // The vectorized-select payoff: the same predicate over the same rows,
  // either sealed into columnar chunks (dictionary-coded string column,
  // per-column bitmap path in query.cc) or held row-wise in the head.
  // range(1) selects the layout so the JSON carries both series.
  const int64_t rows = state.range(0);
  const bool sealed = state.range(1) == 1;
  Table table(WideSchema());
  if (!sealed) table.set_seal_threshold(1u << 30);
  for (int64_t i = 0; i < rows; ++i) {
    IgnoreStatusForTest(table.Insert(WideRow(i)));
  }
  if (sealed) table.Seal();
  auto predicate =
      Predicate::Compare("ward", CompareOp::kEq, Value::String("ward-3"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Select(table, predicate));
  }
  state.SetLabel(sealed ? "chunked" : "head_only");
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SelectChunkedVsHeadOnly)
    ->ArgsProduct({{1'000'000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_GroupByCount(benchmark::State& state) {
  Table records = medical::GenerateFullRecords(
      {.seed = 4, .record_count = static_cast<size_t>(state.range(0))});
  std::vector<AggregateSpec> specs{
      {AggregateFn::kCount, "", "patients"},
      {AggregateFn::kMin, medical::kPatientId, "first"},
      {AggregateFn::kMax, medical::kPatientId, "last"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GroupBy(records, {medical::kAddress}, specs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByCount)->Range(64, 16384);

}  // namespace
