// BX experiment (Section II-B): lens get/put cost as a function of source
// size and composition depth. The shape to observe: both directions are
// linear in rows; composition adds a constant factor per stage; put is a
// small multiple of get (it re-derives intermediates).

#include <benchmark/benchmark.h>

#include "bx/compose_lens.h"
#include "bx/join_lens.h"
#include "bx/lens_factory.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/query.h"

namespace {

using namespace medsync;
using namespace medsync::medical;
using relational::Table;
using relational::Value;

Table SourceOf(int64_t rows) {
  return GenerateFullRecords(
      {.seed = 42, .record_count = static_cast<size_t>(rows)});
}

bx::LensPtr PatientDoctorLens() {
  return bx::MakeProjectLens(
      {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId});
}

void BM_ProjectLensGet(benchmark::State& state) {
  Table source = SourceOf(state.range(0));
  bx::LensPtr lens = PatientDoctorLens();
  for (auto _ : state) {
    auto view = lens->Get(source);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProjectLensGet)->Range(8, 8192);

void BM_ProjectLensPut(benchmark::State& state) {
  Table source = SourceOf(state.range(0));
  bx::LensPtr lens = PatientDoctorLens();
  Table view = *lens->Get(source);
  IgnoreStatusForTest(view.UpdateAttribute({Value::Int(1000)}, kDosage,
                             Value::String("edited")));
  for (auto _ : state) {
    auto updated = lens->Put(source, view);
    benchmark::DoNotOptimize(updated);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProjectLensPut)->Range(8, 8192);

void BM_GroupedLensPut(benchmark::State& state) {
  // Researcher-style grouped lens (view keyed by medication name).
  Table source = SourceOf(state.range(0));
  auto lens = bx::MakeProjectLens({kMedicationName, kMechanismOfAction},
                                  {kMedicationName});
  Table view = *lens->Get(source);
  if (!view.empty()) {
    IgnoreStatusForTest(view.UpdateAttribute(view.NthKey(0), kMechanismOfAction,
                               Value::String("edited mechanism")));
  }
  for (auto _ : state) {
    auto updated = lens->Put(source, view);
    benchmark::DoNotOptimize(updated);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupedLensPut)->Range(8, 8192);

void BM_SelectLensGet(benchmark::State& state) {
  Table source = SourceOf(state.range(0));
  auto lens = bx::MakeSelectLens(relational::Predicate::Compare(
      kAddress, relational::CompareOp::kEq, Value::String("Osaka")));
  for (auto _ : state) {
    auto view = lens->Get(source);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectLensGet)->Range(8, 8192);

void BM_ComposedLensRoundTrip(benchmark::State& state) {
  // Depth sweep: select ; project ; rename repeated `depth` times
  // (renames alternate so each stage is non-trivial).
  int64_t depth = state.range(0);
  Table source = SourceOf(512);
  bx::LensPtr lens = bx::MakeSelectLens(relational::Predicate::True());
  for (int64_t d = 0; d < depth; ++d) {
    std::string from = d % 2 == 0 ? kDosage : "dose";
    std::string to = d % 2 == 0 ? "dose" : kDosage;
    lens = bx::Compose(lens, bx::MakeRenameLens({{from, to}}));
  }
  for (auto _ : state) {
    auto view = lens->Get(source);
    auto updated = lens->Put(source, *view);
    benchmark::DoNotOptimize(updated);
  }
  state.counters["stages"] = static_cast<double>(depth + 1);
}
BENCHMARK(BM_ComposedLensRoundTrip)->DenseRange(0, 8, 2);

void BM_LookupJoinRoundTrip(benchmark::State& state) {
  // Enrichment lens: join the source against the medication catalog and
  // put an edit back. Linear in rows with an O(log catalog) probe per row.
  Table full = SourceOf(state.range(0));
  Table source = *relational::Project(
      full, {kPatientId, kMedicationName, kDosage}, {kPatientId});
  Table reference = *relational::Project(
      full, {kMedicationName, kMechanismOfAction}, {kMedicationName});
  auto lens = *bx::MakeLookupJoinLens(reference);
  Table view = *lens->Get(source);
  IgnoreStatusForTest(view.UpdateAttribute({Value::Int(1000)}, kDosage,
                             Value::String("edited")));
  for (auto _ : state) {
    auto derived = lens->Get(source);
    auto updated = lens->Put(source, view);
    benchmark::DoNotOptimize(derived);
    benchmark::DoNotOptimize(updated);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["catalog_rows"] =
      static_cast<double>(reference.row_count());
}
BENCHMARK(BM_LookupJoinRoundTrip)->Range(8, 8192);

void BM_LensSpecSerializeParse(benchmark::State& state) {
  auto lens = bx::Compose(
      bx::MakeSelectLens(relational::Predicate::Compare(
          kAddress, relational::CompareOp::kEq, Value::String("Osaka"))),
      PatientDoctorLens());
  for (auto _ : state) {
    Json spec = lens->ToJson();
    auto parsed = bx::LensFromJson(spec);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_LensSpecSerializeParse);

}  // namespace
