// Fig. 5 (the 11-step cross-peer update workflow), end to end in simulated
// time:
//  * the researcher->doctor half with NO dependency on the patient view
//    (steps 6-11 skipped) — the paper's literal storyline;
//  * a doctor-initiated medication rename whose change overlaps BOTH
//    views, triggering the full two-hop cascade;
//  * the dependency-check strategy ablation (kAlwaysRederive vs
//    kAnalyzeChange) — both settle in the same simulated time (latency is
//    block-bound), but the analyze strategy skips sibling lens
//    re-derivations entirely (gets_skipped counter).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bx/compose_lens.h"
#include "bx/lens_factory.h"
#include "common/strings.h"
#include "common/threading/thread_pool.h"
#include "core/scenario.h"
#include "core/sync_manager.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "metrics_counters.h"

namespace {

using namespace medsync;
using relational::Value;

constexpr const char* kPD = core::ClinicScenario::kPatientDoctorTable;
constexpr const char* kDR = core::ClinicScenario::kDoctorResearcherTable;
constexpr Micros kBlockInterval = 1 * kMicrosPerSecond;

std::unique_ptr<core::ClinicScenario> MakeClinic(
    size_t records, core::DependencyStrategy strategy) {
  core::ScenarioOptions options;
  options.block_interval = kBlockInterval;
  options.record_count = records;
  options.strategy = strategy;
  auto scenario = core::ClinicScenario::Create(options);
  if (!scenario.ok()) std::abort();
  return std::move(*scenario);
}

double SimSeconds(net::Simulator& sim, Micros start) {
  return static_cast<double>(sim.Now() - start) / kMicrosPerSecond;
}

void BM_Fig5_NoDependencyHalf(benchmark::State& state) {
  // Researcher updates a mechanism; doctor merges; D31 unaffected, so the
  // patient is never bothered (steps 6-11 skipped).
  auto strategy = state.range(1) == 0 ? core::DependencyStrategy::kAnalyzeChange
                                      : core::DependencyStrategy::kAlwaysRederive;
  auto clinic = MakeClinic(static_cast<size_t>(state.range(0)), strategy);
  // Pick medications present in the generated data.
  std::vector<Value> meds;
  relational::Table d2 = *clinic->researcher().database().Snapshot("D2");
  for (const auto& [key, row] : d2.scan()) {
    meds.push_back(key[0]);
  }
  uint64_t round = 0;
  for (auto _ : state) {
    const Value& med = meds[round % meds.size()];
    std::string new_value = StrCat("mechanism-", round++);
    Micros start = clinic->simulator().Now();
    Status s = clinic->researcher().UpdateSourceAndPropagate(
        "D2", [&](relational::Database* db) {
          return db->UpdateAttribute("D2", {med},
                                     medical::kMechanismOfAction,
                                     Value::String(new_value));
        });
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
  state.SetLabel(state.range(1) == 0 ? "strategy=analyze"
                                     : "strategy=always");
  state.counters["records"] = static_cast<double>(state.range(0));
  // The ablation's measured quantity: sibling gets avoided on the doctor.
  state.counters["doctor_gets_skipped"] =
      static_cast<double>(clinic->doctor().sync().gets_skipped());
  state.counters["doctor_gets_executed"] =
      static_cast<double>(clinic->doctor().sync().gets_executed());
  bench::ExportMetrics(state, clinic->metrics());
}
BENCHMARK(BM_Fig5_NoDependencyHalf)
    ->UseManualTime()
    ->Iterations(10)
    ->ArgsProduct({{2, 64, 512}, {0, 1}});

void BM_Fig5_FullTwoHopCascade(benchmark::State& state) {
  // Doctor renames a medication on D31: the patient fetches D13 AND the
  // dependency check re-derives D32 and propagates to the researcher —
  // steps 1-11 with both neighbours involved.
  auto clinic = MakeClinic(static_cast<size_t>(state.range(0)),
                           core::DependencyStrategy::kAnalyzeChange);
  // Rotate over patient ids present in the data.
  std::vector<Value> ids;
  relational::Table d3 = *clinic->doctor().database().Snapshot("D3");
  for (const auto& [key, row] : d3.scan()) {
    ids.push_back(key[0]);
  }
  uint64_t round = 0;
  for (auto _ : state) {
    const Value& id = ids[round % ids.size()];
    std::string new_name = StrCat("Renamed-", round++);
    Micros start = clinic->simulator().Now();
    Status s = clinic->doctor().UpdateSharedAttribute(
        kPD, {id}, medical::kMedicationName, Value::String(new_name));
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  state.counters["doctor_cascades"] =
      static_cast<double>(clinic->doctor().stats().cascades_proposed);
  state.counters["researcher_fetches"] =
      static_cast<double>(clinic->researcher().stats().fetches_applied);
  state.counters["patient_fetches"] =
      static_cast<double>(clinic->patient().stats().fetches_applied);
  bench::ExportMetrics(state, clinic->metrics());
}
BENCHMARK(BM_Fig5_FullTwoHopCascade)
    ->UseManualTime()
    ->Iterations(10)
    ->Arg(2)
    ->Arg(64)
    ->Arg(512);

void BM_Fig5_SingleHopBaseline(benchmark::State& state) {
  // Baseline for the cascade comparison: a dosage update that only the
  // patient cares about (one hop, no dependency work at all).
  auto clinic = MakeClinic(static_cast<size_t>(state.range(0)),
                           core::DependencyStrategy::kAnalyzeChange);
  std::vector<Value> ids;
  relational::Table d3 = *clinic->doctor().database().Snapshot("D3");
  for (const auto& [key, row] : d3.scan()) {
    ids.push_back(key[0]);
  }
  uint64_t round = 0;
  for (auto _ : state) {
    const Value& id = ids[round % ids.size()];
    Micros start = clinic->simulator().Now();
    Status s = clinic->doctor().UpdateSharedAttribute(
        kPD, {id}, medical::kDosage,
        Value::String(StrCat("dose-", round++)));
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
  state.counters["records"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Fig5_SingleHopBaseline)
    ->UseManualTime()
    ->Iterations(10)
    ->Arg(2)
    ->Arg(64)
    ->Arg(512);

void BM_Fig5_DependencyCheckOnly(benchmark::State& state) {
  // The isolated cost of step 6 (no chain, no network): the doctor's
  // dependency check after a put, by strategy and record count.
  auto strategy = state.range(1) == 0 ? core::DependencyStrategy::kAnalyzeChange
                                      : core::DependencyStrategy::kAlwaysRederive;
  auto clinic = MakeClinic(static_cast<size_t>(state.range(0)), strategy);
  core::Peer& doctor = clinic->doctor();
  relational::Table before = *doctor.database().Snapshot("D3");
  // Disjoint change: a mechanism edit that D31 cannot see.
  relational::Key first_key = before.NthKey(0);
  if (!doctor.database()
           .UpdateAttribute("D3", first_key, medical::kMechanismOfAction,
                            Value::String("bench-mechanism"))
           .ok()) {
    std::abort();
  }
  for (auto _ : state) {
    auto refreshes = doctor.sync().FindAffectedViews("D3", before, kDR);
    benchmark::DoNotOptimize(refreshes);
  }
  state.SetLabel(state.range(1) == 0 ? "strategy=analyze"
                                     : "strategy=always");
  state.counters["records"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Fig5_DependencyCheckOnly)
    ->ArgsProduct({{2, 64, 512, 4096}, {0, 1}});

void BM_Fig5_DependencyCheckThreaded(benchmark::State& state) {
  // Step 6 with MANY sibling views: one source table shared through eight
  // select∘project lenses, kAlwaysRederive so every sibling Get runs. The
  // pool size is the second argument; `speedup_vs_serial` compares against
  // the same SyncManager with its pool detached.
  using namespace medsync::medical;
  using relational::CompareOp;
  using relational::Predicate;
  using relational::Table;

  const auto records = static_cast<size_t>(state.range(0));
  constexpr size_t kSiblings = 8;
  threading::ThreadPool pool(static_cast<size_t>(state.range(1)));

  relational::Database db;
  Table source = GenerateFullRecords(
      {.seed = 4242, .record_count = records, .first_patient_id = 1});
  if (!db.CreateTable("SRC", source.schema()).ok()) std::abort();
  if (!db.ReplaceTable("SRC", source).ok()) std::abort();

  core::SyncManager sync(&db, core::DependencyStrategy::kAlwaysRederive);
  // This bench measures the parallelism of sibling GETS; pin full-get
  // maintenance so the incremental delta path doesn't skip them.
  sync.set_maintenance(core::ViewMaintenance::kFullGet);
  const std::vector<std::string> projections[] = {
      {kPatientId, kMedicationName, kDosage},
      {kPatientId, kClinicalData},
      {kPatientId, kMedicationName, kMechanismOfAction},
      {kPatientId, kAddress},
  };
  for (size_t i = 0; i < kSiblings; ++i) {
    bx::LensPtr lens = bx::MakeProjectLens(
        projections[i % std::size(projections)], {kPatientId});
    if (i % 2 == 1) {
      lens = bx::Compose(
          bx::MakeSelectLens(Predicate::Compare(
              kPatientId, CompareOp::kLe,
              Value::Int(static_cast<int64_t>(records / 2 + 4 * i)))),
          lens);
    }
    std::string view_name = StrCat("VIEW", i);
    Table derived = *lens->Get(source);
    if (!db.CreateTable(view_name, derived.schema()).ok()) std::abort();
    if (!db.ReplaceTable(view_name, derived).ok()) std::abort();
    if (!sync.RegisterView(StrCat("table-", i), "SRC", view_name, lens)
             .ok()) {
      std::abort();
    }
  }

  Table before = *db.Snapshot("SRC");
  relational::Key first_key = before.NthKey(0);
  if (!db.UpdateAttribute("SRC", first_key, kMedicationName,
                          Value::String("Threaded-Rename"))
           .ok()) {
    std::abort();
  }

  auto time_once = [&] {
    auto start = std::chrono::steady_clock::now();
    auto refreshes = sync.FindAffectedViews("SRC", before, /*exclude=*/"");
    benchmark::DoNotOptimize(refreshes);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  constexpr int kBaselineReps = 10;
  double serial_seconds = 0;
  for (int rep = 0; rep < kBaselineReps; ++rep) serial_seconds += time_once();
  serial_seconds /= kBaselineReps;

  sync.set_thread_pool(&pool);
  double threaded_seconds = 0;
  for (auto _ : state) {
    threaded_seconds += time_once();
  }
  state.counters["records"] = static_cast<double>(records);
  state.counters["sibling_views"] = static_cast<double>(kSiblings);
  state.counters["pool_size"] = static_cast<double>(state.range(1));
  state.counters["speedup_vs_serial"] =
      serial_seconds /
      (threaded_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_Fig5_DependencyCheckThreaded)
    ->ArgsProduct({{512, 4096}, {1, 2, 4, 8}});

void BM_Fig5_SingleRowDeltaCascade(benchmark::State& state) {
  // The incremental-maintenance measurement: ONE row changes in a large
  // source shared through the four exact lens shapes
  // (project/select/rename/compose). The delta path translates one source
  // delta per sibling (O(|delta| log n) each) instead of re-deriving every
  // view in full (O(n log n) each); `speedup_vs_full` compares the two
  // maintenance modes over the same single-row workload, and the exported
  // metrics.sync.full_fallbacks must stay 0 — every lens here translates
  // exactly.
  using namespace medsync::medical;
  using relational::CompareOp;
  using relational::Predicate;
  using relational::Table;

  const auto records = static_cast<size_t>(state.range(0));
  relational::Database db;
  metrics::MetricsRegistry registry;
  Table source = GenerateFullRecords(
      {.seed = 777, .record_count = records, .first_patient_id = 1});
  if (!db.CreateTable("SRC", source.schema()).ok()) std::abort();
  if (!db.ReplaceTable("SRC", source).ok()) std::abort();

  core::SyncManager sync(&db, core::DependencyStrategy::kAlwaysRederive);
  sync.set_metrics(&registry);

  std::vector<bx::LensPtr> lenses;
  lenses.push_back(bx::MakeProjectLens(
      {kPatientId, kMedicationName, kDosage}, {kPatientId}));
  lenses.push_back(bx::MakeSelectLens(Predicate::Compare(
      kPatientId, CompareOp::kLe,
      Value::Int(static_cast<int64_t>(records / 2)))));
  lenses.push_back(bx::MakeRenameLens({{kDosage, "dose"}}));
  lenses.push_back(bx::Compose(
      bx::MakeSelectLens(Predicate::Compare(
          kPatientId, CompareOp::kGt,
          Value::Int(static_cast<int64_t>(records / 4)))),
      bx::MakeProjectLens({kPatientId, kClinicalData, kDosage},
                          {kPatientId})));
  for (size_t i = 0; i < lenses.size(); ++i) {
    std::string view_name = StrCat("VIEW", i);
    Table derived = *lenses[i]->Get(source);
    if (!db.CreateTable(view_name, derived.schema()).ok()) std::abort();
    if (!db.ReplaceTable(view_name, derived).ok()) std::abort();
    if (!sync.RegisterView(StrCat("table-", i), "SRC", view_name, lenses[i])
             .ok()) {
      std::abort();
    }
  }

  std::vector<relational::Key> keys;
  for (const auto& [key, row] : source.scan()) keys.push_back(key);

  uint64_t round = 0;
  Table before = *db.Snapshot("SRC");
  // One single-row update + dependency check + view refresh; only the
  // check-and-refresh is timed (the mutation and the `before` bookkeeping
  // are identical in both modes).
  auto run_once = [&]() -> double {
    const relational::Key& key = keys[round % keys.size()];
    std::string dose = StrCat("dose-", round++);
    if (!db.UpdateAttribute("SRC", key, kDosage, Value::String(dose)).ok()) {
      std::abort();
    }
    auto start = std::chrono::steady_clock::now();
    auto refreshes = sync.FindAffectedViews("SRC", before, /*exclude=*/"");
    if (!refreshes.ok()) std::abort();
    for (const auto& refresh : *refreshes) {
      if (!sync.ApplyRefresh(refresh).ok()) std::abort();
    }
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    before = *db.Snapshot("SRC");
    return seconds;
  };

  sync.set_maintenance(core::ViewMaintenance::kFullGet);
  constexpr int kBaselineReps = 10;
  double full_seconds = 0;
  for (int rep = 0; rep < kBaselineReps; ++rep) full_seconds += run_once();
  full_seconds /= kBaselineReps;

  sync.set_maintenance(core::ViewMaintenance::kIncremental);
  double incremental_seconds = 0;
  for (auto _ : state) {
    incremental_seconds += run_once();
  }
  state.counters["records"] = static_cast<double>(records);
  state.counters["sibling_views"] = static_cast<double>(lenses.size());
  state.counters["speedup_vs_full"] =
      full_seconds /
      (incremental_seconds / static_cast<double>(state.iterations()));
  state.counters["delta_pushes"] =
      static_cast<double>(sync.delta_pushes());
  state.counters["full_fallbacks"] =
      static_cast<double>(sync.full_fallbacks());
  bench::ExportMetrics(state, registry);
}
BENCHMARK(BM_Fig5_SingleRowDeltaCascade)->Arg(1000)->Arg(10000);

void BM_Fig5_CascadeUnderLoss(benchmark::State& state) {
  // The Fig. 5 two-hop cascade on a lossy network: the drop-probability
  // sweep (0%, 25%, 50% of all steady-state messages) measures how much
  // simulated convergence time the reliability layer — ack/retransmit
  // with exponential backoff plus the periodic catch-up — pays to keep
  // the protocol converging. The exported net.retries / net.acks /
  // net.duplicates counters quantify the recovery work.
  core::ScenarioOptions options;
  options.block_interval = kBlockInterval;
  options.record_count = static_cast<size_t>(state.range(0));
  options.drop_probability = static_cast<double>(state.range(1)) / 100.0;
  auto scenario = core::ClinicScenario::Create(options);
  if (!scenario.ok()) std::abort();
  auto clinic = std::move(*scenario);

  std::vector<Value> ids;
  relational::Table d3 = *clinic->doctor().database().Snapshot("D3");
  for (const auto& [key, row] : d3.scan()) {
    ids.push_back(key[0]);
  }
  uint64_t round = 0;
  for (auto _ : state) {
    const Value& id = ids[round % ids.size()];
    std::string new_name = StrCat("Lossy-", round++);
    Micros start = clinic->simulator().Now();
    Status s = clinic->doctor().UpdateSharedAttribute(
        kPD, {id}, medical::kMedicationName, Value::String(new_name));
    if (!s.ok()) std::abort();
    // Bounded sim time: a cascade that cannot converge under the
    // configured loss shows up as an aborted benchmark, not a hang.
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
  state.SetLabel(StrCat("drop=", state.range(1), "%"));
  state.counters["records"] = static_cast<double>(state.range(0));
  state.counters["dropped"] =
      static_cast<double>(clinic->network().stats().dropped);
  state.counters["researcher_fetches"] =
      static_cast<double>(clinic->researcher().stats().fetches_applied);
  bench::ExportMetrics(state, clinic->metrics());
}
BENCHMARK(BM_Fig5_CascadeUnderLoss)
    ->UseManualTime()
    ->Iterations(10)
    ->ArgsProduct({{2, 64}, {0, 25, 50}});

}  // namespace
