// Fig. 5 (the 11-step cross-peer update workflow), end to end in simulated
// time:
//  * the researcher->doctor half with NO dependency on the patient view
//    (steps 6-11 skipped) — the paper's literal storyline;
//  * a doctor-initiated medication rename whose change overlaps BOTH
//    views, triggering the full two-hop cascade;
//  * the dependency-check strategy ablation (kAlwaysRederive vs
//    kAnalyzeChange) — both settle in the same simulated time (latency is
//    block-bound), but the analyze strategy skips sibling lens
//    re-derivations entirely (gets_skipped counter).

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "core/scenario.h"
#include "medical/generator.h"
#include "medical/records.h"

namespace {

using namespace medsync;
using relational::Value;

constexpr const char* kPD = core::ClinicScenario::kPatientDoctorTable;
constexpr const char* kDR = core::ClinicScenario::kDoctorResearcherTable;
constexpr Micros kBlockInterval = 1 * kMicrosPerSecond;

std::unique_ptr<core::ClinicScenario> MakeClinic(
    size_t records, core::DependencyStrategy strategy) {
  core::ScenarioOptions options;
  options.block_interval = kBlockInterval;
  options.record_count = records;
  options.strategy = strategy;
  auto scenario = core::ClinicScenario::Create(options);
  if (!scenario.ok()) std::abort();
  return std::move(*scenario);
}

double SimSeconds(net::Simulator& sim, Micros start) {
  return static_cast<double>(sim.Now() - start) / kMicrosPerSecond;
}

void BM_Fig5_NoDependencyHalf(benchmark::State& state) {
  // Researcher updates a mechanism; doctor merges; D31 unaffected, so the
  // patient is never bothered (steps 6-11 skipped).
  auto strategy = state.range(1) == 0 ? core::DependencyStrategy::kAnalyzeChange
                                      : core::DependencyStrategy::kAlwaysRederive;
  auto clinic = MakeClinic(static_cast<size_t>(state.range(0)), strategy);
  // Pick medications present in the generated data.
  std::vector<Value> meds;
  relational::Table d2 = *clinic->researcher().database().Snapshot("D2");
  for (const auto& [key, row] : d2.rows()) {
    meds.push_back(key[0]);
  }
  uint64_t round = 0;
  for (auto _ : state) {
    const Value& med = meds[round % meds.size()];
    std::string new_value = StrCat("mechanism-", round++);
    Micros start = clinic->simulator().Now();
    Status s = clinic->researcher().UpdateSourceAndPropagate(
        "D2", [&](relational::Database* db) {
          return db->UpdateAttribute("D2", {med},
                                     medical::kMechanismOfAction,
                                     Value::String(new_value));
        });
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
  state.SetLabel(state.range(1) == 0 ? "strategy=analyze"
                                     : "strategy=always");
  state.counters["records"] = static_cast<double>(state.range(0));
  // The ablation's measured quantity: sibling gets avoided on the doctor.
  state.counters["doctor_gets_skipped"] =
      static_cast<double>(clinic->doctor().sync().gets_skipped());
  state.counters["doctor_gets_executed"] =
      static_cast<double>(clinic->doctor().sync().gets_executed());
}
BENCHMARK(BM_Fig5_NoDependencyHalf)
    ->UseManualTime()
    ->Iterations(10)
    ->ArgsProduct({{2, 64, 512}, {0, 1}});

void BM_Fig5_FullTwoHopCascade(benchmark::State& state) {
  // Doctor renames a medication on D31: the patient fetches D13 AND the
  // dependency check re-derives D32 and propagates to the researcher —
  // steps 1-11 with both neighbours involved.
  auto clinic = MakeClinic(static_cast<size_t>(state.range(0)),
                           core::DependencyStrategy::kAnalyzeChange);
  // Rotate over patient ids present in the data.
  std::vector<Value> ids;
  relational::Table d3 = *clinic->doctor().database().Snapshot("D3");
  for (const auto& [key, row] : d3.rows()) {
    ids.push_back(key[0]);
  }
  uint64_t round = 0;
  for (auto _ : state) {
    const Value& id = ids[round % ids.size()];
    std::string new_name = StrCat("Renamed-", round++);
    Micros start = clinic->simulator().Now();
    Status s = clinic->doctor().UpdateSharedAttribute(
        kPD, {id}, medical::kMedicationName, Value::String(new_name));
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  state.counters["doctor_cascades"] =
      static_cast<double>(clinic->doctor().stats().cascades_proposed);
  state.counters["researcher_fetches"] =
      static_cast<double>(clinic->researcher().stats().fetches_applied);
  state.counters["patient_fetches"] =
      static_cast<double>(clinic->patient().stats().fetches_applied);
}
BENCHMARK(BM_Fig5_FullTwoHopCascade)
    ->UseManualTime()
    ->Iterations(10)
    ->Arg(2)
    ->Arg(64)
    ->Arg(512);

void BM_Fig5_SingleHopBaseline(benchmark::State& state) {
  // Baseline for the cascade comparison: a dosage update that only the
  // patient cares about (one hop, no dependency work at all).
  auto clinic = MakeClinic(static_cast<size_t>(state.range(0)),
                           core::DependencyStrategy::kAnalyzeChange);
  std::vector<Value> ids;
  relational::Table d3 = *clinic->doctor().database().Snapshot("D3");
  for (const auto& [key, row] : d3.rows()) {
    ids.push_back(key[0]);
  }
  uint64_t round = 0;
  for (auto _ : state) {
    const Value& id = ids[round % ids.size()];
    Micros start = clinic->simulator().Now();
    Status s = clinic->doctor().UpdateSharedAttribute(
        kPD, {id}, medical::kDosage,
        Value::String(StrCat("dose-", round++)));
    if (!s.ok()) std::abort();
    if (!clinic->SettleAll().ok()) std::abort();
    state.SetIterationTime(SimSeconds(clinic->simulator(), start));
  }
  state.counters["records"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Fig5_SingleHopBaseline)
    ->UseManualTime()
    ->Iterations(10)
    ->Arg(2)
    ->Arg(64)
    ->Arg(512);

void BM_Fig5_DependencyCheckOnly(benchmark::State& state) {
  // The isolated cost of step 6 (no chain, no network): the doctor's
  // dependency check after a put, by strategy and record count.
  auto strategy = state.range(1) == 0 ? core::DependencyStrategy::kAnalyzeChange
                                      : core::DependencyStrategy::kAlwaysRederive;
  auto clinic = MakeClinic(static_cast<size_t>(state.range(0)), strategy);
  core::Peer& doctor = clinic->doctor();
  relational::Table before = *doctor.database().Snapshot("D3");
  // Disjoint change: a mechanism edit that D31 cannot see.
  relational::Key first_key = before.rows().begin()->first;
  if (!doctor.database()
           .UpdateAttribute("D3", first_key, medical::kMechanismOfAction,
                            Value::String("bench-mechanism"))
           .ok()) {
    std::abort();
  }
  for (auto _ : state) {
    auto refreshes = doctor.sync().FindAffectedViews("D3", before, kDR);
    benchmark::DoNotOptimize(refreshes);
  }
  state.SetLabel(state.range(1) == 0 ? "strategy=analyze"
                                     : "strategy=always");
  state.counters["records"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Fig5_DependencyCheckOnly)
    ->ArgsProduct({{2, 64, 512, 4096}, {0, 1}});

}  // namespace
