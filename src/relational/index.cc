#include "relational/index.h"

#include "common/strings.h"

namespace medsync::relational {

Result<SecondaryIndex> SecondaryIndex::Build(const Table& table,
                                             const std::string& attribute) {
  std::optional<size_t> idx = table.schema().IndexOf(attribute);
  if (!idx.has_value()) {
    return Status::NotFound(StrCat("no attribute '", attribute, "'"));
  }
  SecondaryIndex index;
  index.attribute_ = attribute;
  for (const auto& [key, row] : table.rows()) {
    index.entries_[row[*idx]].push_back(key);
  }
  return index;
}

std::vector<Key> SecondaryIndex::Lookup(const Value& value) const {
  auto it = entries_.find(value);
  if (it == entries_.end()) return {};
  return it->second;
}

std::vector<Key> SecondaryIndex::LookupRange(const Value& lo,
                                             const Value& hi) const {
  std::vector<Key> out;
  for (auto it = entries_.lower_bound(lo);
       it != entries_.end() && !(hi < it->first); ++it) {
    if (it->first.is_null()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

Table SecondaryIndex::MaterializeEquals(const Table& table,
                                        const Value& value) const {
  Table out(table.schema());
  for (const Key& key : Lookup(value)) {
    std::optional<Row> row = table.Get(key);
    if (row.has_value()) {
      (void)out.Insert(std::move(*row));
    }
  }
  return out;
}

Result<Table> IndexedSelectEquals(const Table& table,
                                  const SecondaryIndex& index,
                                  const Value& value) {
  if (!table.schema().HasAttribute(index.attribute())) {
    return Status::InvalidArgument(
        StrCat("table has no indexed attribute '", index.attribute(), "'"));
  }
  return index.MaterializeEquals(table, value);
}

}  // namespace medsync::relational
