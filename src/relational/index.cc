#include "relational/index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace medsync::relational {

Result<SecondaryIndex> SecondaryIndex::Build(const Table& table,
                                             const std::string& attribute) {
  std::optional<size_t> idx = table.schema().IndexOf(attribute);
  if (!idx.has_value()) {
    return Status::NotFound(StrCat("no attribute '", attribute, "'"));
  }
  SecondaryIndex index;
  index.attribute_ = attribute;
  // Sealed chunks feed the index column-at-a-time: the indexed column is
  // read directly from columnar storage (dictionary buckets are resolved
  // once per distinct string, not once per row), skipping dead rows.
  for (const auto& chunk : table.chunks()) {
    const Chunk::Column& col = chunk->column(*idx);
    if (col.type == DataType::kString) {
      std::vector<std::vector<Key>*> buckets(col.dict.size(), nullptr);
      std::vector<Key>* null_bucket = nullptr;
      for (size_t i = 0; i < chunk->row_count(); ++i) {
        if (!table.ChunkRowIsLive(*chunk, i)) continue;
        std::vector<Key>*& bucket =
            col.IsNull(i) ? null_bucket : buckets[col.codes[i]];
        if (bucket == nullptr) {
          bucket = &index.entries_[col.IsNull(i)
                                       ? Value::Null()
                                       : Value::String(col.dict[col.codes[i]])];
        }
        bucket->push_back(chunk->KeyAt(i));
      }
    } else {
      for (size_t i = 0; i < chunk->row_count(); ++i) {
        if (!table.ChunkRowIsLive(*chunk, i)) continue;
        index.entries_[chunk->ValueAt(i, *idx)].push_back(chunk->KeyAt(i));
      }
    }
  }
  for (const auto& [key, row] : table.head()) {
    index.entries_[row[*idx]].push_back(key);
  }
  // Chunk-then-head insertion is not globally key-ordered, but the delta
  // maintenance path (RemoveEntry's binary search) requires sorted buckets.
  for (auto& [value, bucket] : index.entries_) {
    std::sort(bucket.begin(), bucket.end());
  }
  return index;
}

const std::vector<Key>& SecondaryIndex::Lookup(const Value& value) const {
  static const std::vector<Key> kEmpty;
  auto it = entries_.find(value);
  if (it == entries_.end()) return kEmpty;
  return it->second;
}

std::vector<Key> SecondaryIndex::LookupRange(const Value& lo,
                                             const Value& hi) const {
  // NULL never matches a range scan (see header); a NULL bound makes the
  // range undefined rather than open-ended.
  if (lo.is_null() || hi.is_null()) return {};
  std::vector<Key> out;
  for (auto it = entries_.lower_bound(lo);
       it != entries_.end() && !(hi < it->first); ++it) {
    if (it->first.is_null()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

namespace {
Status RemoveEntry(std::map<Value, std::vector<Key>>* entries,
                   const Value& value, const Key& key) {
  auto it = entries->find(value);
  if (it != entries->end()) {
    auto pos = std::lower_bound(it->second.begin(), it->second.end(), key);
    if (pos != it->second.end() && *pos == key) {
      it->second.erase(pos);
      // Drop empty buckets so distinct_values() matches a fresh Build.
      if (it->second.empty()) entries->erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound(
      StrCat("index out of sync: no entry for key ", RowToString(key)));
}

void AddEntry(std::map<Value, std::vector<Key>>* entries, const Value& value,
              Key key) {
  std::vector<Key>& bucket = (*entries)[value];
  auto pos = std::lower_bound(bucket.begin(), bucket.end(), key);
  bucket.insert(pos, std::move(key));
}
}  // namespace

Status SecondaryIndex::ApplyDelta(const Table& before,
                                  const TableDelta& delta) {
  std::optional<size_t> idx = before.schema().IndexOf(attribute_);
  if (!idx.has_value()) {
    return Status::InvalidArgument(
        StrCat("table has no indexed attribute '", attribute_, "'"));
  }
  // Resolve every old value first so a failure leaves the index untouched.
  std::vector<std::pair<Value, Key>> removals;
  std::map<Key, Value> additions;  // final indexed value per added key
  for (const Key& key : delta.deletes) {
    std::optional<Row> old = before.Get(key);
    if (!old.has_value()) {
      return Status::NotFound(StrCat("index out of sync: deleted key ",
                                     RowToString(key), " not in snapshot"));
    }
    removals.emplace_back((*old)[*idx], key);
  }
  for (const Row& row : delta.inserts) {
    additions[KeyOf(before.schema(), row)] = row[*idx];
  }
  for (const Row& row : delta.updates) {
    Key key = KeyOf(before.schema(), row);
    auto pending = additions.find(key);
    if (pending != additions.end()) {
      // The update targets a row this delta inserts (apply order is
      // deletes, inserts, updates) — the update's value wins.
      pending->second = row[*idx];
      continue;
    }
    std::optional<Row> old = before.Get(key);
    if (!old.has_value()) {
      return Status::NotFound(StrCat("index out of sync: updated key ",
                                     RowToString(key), " not in snapshot"));
    }
    if ((*old)[*idx] == row[*idx]) continue;  // indexed value unchanged
    removals.emplace_back((*old)[*idx], key);
    additions[std::move(key)] = row[*idx];
  }

  for (const auto& [value, key] : removals) {
    MEDSYNC_RETURN_IF_ERROR(RemoveEntry(&entries_, value, key));
  }
  for (const auto& [key, value] : additions) {
    AddEntry(&entries_, value, key);
  }
  return Status::OK();
}

Table SecondaryIndex::MaterializeEquals(const Table& table,
                                        const Value& value) const {
  Table out(table.schema());
  for (const Key& key : Lookup(value)) {
    std::optional<Row> row = table.Get(key);
    if (row.has_value()) {
      // Keys come from the indexed table itself, so the insert can only
      // fail if the index lost sync with it — worth a log, never silent.
      LogIfError(out.Insert(std::move(*row)), "relational",
                 "index materialization insert");
    }
  }
  return out;
}

Result<Table> IndexedSelectEquals(const Table& table,
                                  const SecondaryIndex& index,
                                  const Value& value) {
  if (!table.schema().HasAttribute(index.attribute())) {
    return Status::InvalidArgument(
        StrCat("table has no indexed attribute '", index.attribute(), "'"));
  }
  return index.MaterializeEquals(table, value);
}

}  // namespace medsync::relational
