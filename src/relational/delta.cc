#include "relational/delta.h"

#include <set>

#include "common/strings.h"

namespace medsync::relational {

Json TableDelta::ToJson() const {
  Json ins = Json::MakeArray();
  for (const Row& row : inserts) ins.Append(RowToJson(row));
  Json del = Json::MakeArray();
  for (const Key& key : deletes) del.Append(RowToJson(key));
  Json upd = Json::MakeArray();
  for (const Row& row : updates) upd.Append(RowToJson(row));
  Json out = Json::MakeObject();
  out.Set("inserts", std::move(ins));
  out.Set("deletes", std::move(del));
  out.Set("updates", std::move(upd));
  return out;
}

Result<TableDelta> TableDelta::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("delta JSON must be an object");
  }
  TableDelta delta;
  for (const char* field : {"inserts", "deletes", "updates"}) {
    // A missing array means "no entries of this kind" — senders may omit
    // empty sections.
    if (!json.Has(field)) continue;
    const Json& arr = json.At(field);
    if (!arr.is_array()) {
      return Status::InvalidArgument(
          StrCat("delta JSON field '", field, "' must be an array"));
    }
    for (const Json& r : arr.AsArray()) {
      MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(r));
      if (std::string_view(field) == "inserts") {
        delta.inserts.push_back(std::move(row));
      } else if (std::string_view(field) == "deletes") {
        delta.deletes.push_back(std::move(row));
      } else {
        delta.updates.push_back(std::move(row));
      }
    }
  }
  return delta;
}

Result<TableDelta> ComputeDelta(const Table& before, const Table& after) {
  if (before.schema() != after.schema()) {
    return Status::InvalidArgument("delta requires identical schemas");
  }
  TableDelta delta;
  for (const auto& [key, row] : after.scan()) {
    std::optional<Row> old = before.Get(key);
    if (!old.has_value()) {
      delta.inserts.push_back(row);
    } else if (*old != row) {
      delta.updates.push_back(row);
    }
  }
  for (const auto& [key, row] : before.scan()) {
    if (!after.Contains(key)) delta.deletes.push_back(key);
  }
  return delta;
}

Status ValidateDelta(const TableDelta& delta, const Table& table) {
  const Schema& schema = table.schema();

  // Deletes are applied first, so inserts and updates are checked against
  // the post-delete keyset: a delta may delete key K and re-insert a row
  // at K (key reassignment, e.g. a renamed view-key value).
  std::set<Key> deleted;
  for (const Key& key : delta.deletes) {
    if (!table.Contains(key)) {
      return Status::NotFound(
          StrCat("delta delete misses at ", RowToString(key)));
    }
    if (!deleted.insert(key).second) {
      return Status::InvalidArgument(
          StrCat("duplicate key within delta deletes: ", RowToString(key)));
    }
  }

  std::set<Key> inserted;
  for (const Row& row : delta.inserts) {
    MEDSYNC_RETURN_IF_ERROR(ValidateRow(schema, row));
    Key key = KeyOf(schema, row);
    if (table.Contains(key) && deleted.count(key) == 0) {
      return Status::AlreadyExists(
          StrCat("delta insert collides at ", RowToString(row)));
    }
    if (!inserted.insert(std::move(key)).second) {
      return Status::AlreadyExists(
          StrCat("duplicate key within delta inserts: ", RowToString(row)));
    }
  }

  std::set<Key> updated;
  for (const Row& row : delta.updates) {
    MEDSYNC_RETURN_IF_ERROR(ValidateRow(schema, row));
    Key key = KeyOf(schema, row);
    bool exists = (table.Contains(key) && deleted.count(key) == 0) ||
                  inserted.count(key) > 0;
    if (!exists) {
      return Status::NotFound(
          StrCat("delta update misses at ", RowToString(row)));
    }
    if (!updated.insert(std::move(key)).second) {
      return Status::InvalidArgument(
          StrCat("duplicate key within delta updates: ", RowToString(row)));
    }
  }
  return Status::OK();
}

Status ApplyDelta(const TableDelta& delta, Table* table) {
  // Validate everything up front so application is all-or-nothing.
  MEDSYNC_RETURN_IF_ERROR(ValidateDelta(delta, *table));

  // Deletes first (see ValidateDelta: inserts may legally reuse a deleted
  // key), then inserts, then updates.
  for (const Key& key : delta.deletes) {
    MEDSYNC_RETURN_IF_ERROR(table->Delete(key));
  }
  for (const Row& row : delta.inserts) {
    MEDSYNC_RETURN_IF_ERROR(table->Insert(row));
  }
  for (const Row& row : delta.updates) {
    MEDSYNC_RETURN_IF_ERROR(table->Update(row));
  }
  return Status::OK();
}

}  // namespace medsync::relational
