#include "relational/delta.h"

#include "common/strings.h"

namespace medsync::relational {

Json TableDelta::ToJson() const {
  Json ins = Json::MakeArray();
  for (const Row& row : inserts) ins.Append(RowToJson(row));
  Json del = Json::MakeArray();
  for (const Key& key : deletes) del.Append(RowToJson(key));
  Json upd = Json::MakeArray();
  for (const Row& row : updates) upd.Append(RowToJson(row));
  Json out = Json::MakeObject();
  out.Set("inserts", std::move(ins));
  out.Set("deletes", std::move(del));
  out.Set("updates", std::move(upd));
  return out;
}

Result<TableDelta> TableDelta::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("delta JSON must be an object");
  }
  TableDelta delta;
  for (const char* field : {"inserts", "deletes", "updates"}) {
    const Json& arr = json.At(field);
    if (!arr.is_array()) {
      return Status::InvalidArgument(
          StrCat("delta JSON needs '", field, "' array"));
    }
    for (const Json& r : arr.AsArray()) {
      MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(r));
      if (std::string_view(field) == "inserts") {
        delta.inserts.push_back(std::move(row));
      } else if (std::string_view(field) == "deletes") {
        delta.deletes.push_back(std::move(row));
      } else {
        delta.updates.push_back(std::move(row));
      }
    }
  }
  return delta;
}

Result<TableDelta> ComputeDelta(const Table& before, const Table& after) {
  if (before.schema() != after.schema()) {
    return Status::InvalidArgument("delta requires identical schemas");
  }
  TableDelta delta;
  for (const auto& [key, row] : after.rows()) {
    std::optional<Row> old = before.Get(key);
    if (!old.has_value()) {
      delta.inserts.push_back(row);
    } else if (*old != row) {
      delta.updates.push_back(row);
    }
  }
  for (const auto& [key, row] : before.rows()) {
    if (!after.Contains(key)) delta.deletes.push_back(key);
  }
  return delta;
}

Status ApplyDelta(const TableDelta& delta, Table* table) {
  // Validate first so application is all-or-nothing for the common cases.
  for (const Row& row : delta.inserts) {
    MEDSYNC_RETURN_IF_ERROR(ValidateRow(table->schema(), row));
    if (table->Contains(KeyOf(table->schema(), row))) {
      return Status::AlreadyExists(
          StrCat("delta insert collides at ", RowToString(row)));
    }
  }
  for (const Key& key : delta.deletes) {
    if (!table->Contains(key)) {
      return Status::NotFound(
          StrCat("delta delete misses at ", RowToString(key)));
    }
  }
  for (const Row& row : delta.updates) {
    MEDSYNC_RETURN_IF_ERROR(ValidateRow(table->schema(), row));
    if (!table->Contains(KeyOf(table->schema(), row))) {
      return Status::NotFound(
          StrCat("delta update misses at ", RowToString(row)));
    }
  }

  for (const Row& row : delta.inserts) {
    MEDSYNC_RETURN_IF_ERROR(table->Insert(row));
  }
  for (const Key& key : delta.deletes) {
    MEDSYNC_RETURN_IF_ERROR(table->Delete(key));
  }
  for (const Row& row : delta.updates) {
    MEDSYNC_RETURN_IF_ERROR(table->Update(row));
  }
  return Status::OK();
}

}  // namespace medsync::relational
