#ifndef MEDSYNC_RELATIONAL_TABLE_H_
#define MEDSYNC_RELATIONAL_TABLE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "relational/row.h"
#include "relational/schema.h"

namespace medsync::relational {

/// An in-memory relation with a primary-key index. Rows are stored keyed and
/// iterated in key order, so two tables with equal content compare equal and
/// serialize identically — a property both the BX law checkers and the
/// content digests in audit records depend on.
class Table {
 public:
  /// An empty table; usable only after assignment from a real one.
  Table() = default;

  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t row_count() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts a validated row; fails with AlreadyExists on key collision.
  Status Insert(Row row);

  /// Inserts or overwrites by key.
  Status Upsert(Row row);

  /// Replaces the row with `row`'s key; fails with NotFound if absent.
  Status Update(Row row);

  /// Updates one attribute of the row with key `key`.
  Status UpdateAttribute(const Key& key, std::string_view attribute,
                         Value value);

  /// Deletes by key; fails with NotFound if absent.
  Status Delete(const Key& key);

  /// Returns the row with `key`, or nullopt.
  std::optional<Row> Get(const Key& key) const;
  bool Contains(const Key& key) const;

  /// Reads one attribute of the row with key `key`.
  Result<Value> GetAttribute(const Key& key, std::string_view attribute) const;

  /// All rows in key order.
  std::vector<Row> RowsInKeyOrder() const;

  /// Key-ordered iteration without copying.
  const std::map<Key, Row>& rows() const { return rows_; }

  /// Removes all rows.
  void Clear() { rows_.clear(); }

  /// JSON round trip: {"schema": ..., "rows": [...]}.
  Json ToJson() const;
  static Result<Table> FromJson(const Json& json);

  /// Hex SHA-256 of the canonical serialization; used as the shared-data
  /// content digest recorded on-chain so peers can prove what they fetched.
  std::string ContentDigest() const;

  /// ASCII rendering with a header row, used by examples to print the
  /// paper's Fig. 1 tables.
  std::string ToAsciiTable() const;

  friend bool operator==(const Table& a, const Table& b) {
    return a.schema_ == b.schema_ && a.rows_ == b.rows_;
  }
  friend bool operator!=(const Table& a, const Table& b) { return !(a == b); }

 private:
  Schema schema_;
  std::map<Key, Row> rows_;
};

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_TABLE_H_
