#ifndef MEDSYNC_RELATIONAL_TABLE_H_
#define MEDSYNC_RELATIONAL_TABLE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "relational/chunk.h"
#include "relational/row.h"
#include "relational/schema.h"

namespace medsync::relational {

/// An in-memory relation with a primary-key index, stored in two tiers:
///
///  * a mutable row-oriented **head** (`std::map<Key, Row>`) absorbing all
///    writes, and
///  * immutable **sealed columnar chunks** (see chunk.h) holding history.
///
/// When the head reaches `seal_threshold()` rows it is sealed into a chunk;
/// if any chunk rows have died (been deleted or overwritten) the seal is a
/// full compaction instead, merging chunks + head − tombstones into a single
/// fresh chunk. Either way two invariants hold afterwards:
///
///  * **keys are unique across chunks** (a key lives in at most one chunk),
///  * a chunk row is dead iff its key is in the head (shadowed) or in the
///    tombstone set — `dead_count()` tracks exactly how many.
///
/// Lookups check head → tombstones → chunks; scans merge the head with the
/// chunk cursors in key order, skipping dead chunk rows. Observable behaviour
/// (Get/scan/digest/equality/JSON) is independent of the head/chunk split, so
/// two tables with equal content compare equal and digest identically no
/// matter how their histories differed — a property both the BX law checkers
/// and the on-chain content digests depend on.
///
/// Copies share sealed chunks by shared_ptr, so copying a table is O(head),
/// not O(history) — Database::Transaction exploits this.
class Table {
 public:
  /// Default head-size / dead-row threshold that triggers Seal().
  static constexpr size_t kDefaultSealThreshold = 4096;

  /// An empty table; usable only after assignment from a real one.
  Table() = default;

  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t row_count() const {
    return head_.size() + chunk_rows_total_ - dead_count_;
  }
  bool empty() const { return row_count() == 0; }

  /// Inserts a validated row; fails with AlreadyExists on key collision.
  Status Insert(Row row);

  /// Inserts or overwrites by key.
  Status Upsert(Row row);

  /// Replaces the row with `row`'s key; fails with NotFound if absent.
  Status Update(Row row);

  /// Updates one attribute of the row with key `key`.
  Status UpdateAttribute(const Key& key, std::string_view attribute,
                         Value value);

  /// Deletes by key; fails with NotFound if absent.
  Status Delete(const Key& key);

  // Read-only validation twins of the mutations above: each returns exactly
  // the status its mutating counterpart would, without touching the table.
  // Database::LogAndApply validates logged ops against the live table with
  // these (then applies, infallibly) instead of copying the table per op —
  // the difference between O(1) and O(head) per bulk-load insert.
  Status CheckInsert(const Row& row) const;
  Status CheckUpsert(const Row& row) const;
  Status CheckUpdate(const Row& row) const;
  Status CheckUpdateAttribute(const Key& key, std::string_view attribute,
                              const Value& value) const;
  Status CheckDelete(const Key& key) const;

  /// Returns the row with `key`, or nullopt.
  std::optional<Row> Get(const Key& key) const;
  bool Contains(const Key& key) const;

  /// Reads one attribute of the row with key `key`.
  Result<Value> GetAttribute(const Key& key, std::string_view attribute) const;

  /// All rows in key order.
  std::vector<Row> RowsInKeyOrder() const;

  /// Key of the n-th row in key order (n < row_count(), asserted). O(n)
  /// scan advance; meant for tests and benches picking sample keys, not for
  /// hot paths.
  Key NthKey(size_t n) const;

  // -------------------------------------------------------------------------
  // Scan API — THE way to iterate a table. Merges the mutable head with the
  // sealed chunks in key order, skipping dead chunk rows:
  //
  //   for (const auto& [key, row] : table.scan()) { ... }
  //
  // Entry references are valid until the iterator advances (chunk rows are
  // materialized into iterator-owned buffers) — copy `row` if it must
  // outlive the loop step. medsync-lint MS008 forbids bypassing this API
  // outside src/relational/.
  // -------------------------------------------------------------------------

  struct ScanEntry {
    const Key& key;
    const Row& row;
  };

  struct ScanSentinel {};

  class ScanIterator {
   public:
    ScanEntry operator*() const;
    ScanIterator& operator++();
    bool operator==(ScanSentinel) const { return at_end_; }
    bool operator!=(ScanSentinel s) const { return !(*this == s); }

   private:
    friend class Table;
    explicit ScanIterator(const Table* table);

    /// Refreshes current_ to the smallest live key across sources.
    void PickNext();
    /// Advances chunk cursor `c` past dead rows.
    void SkipDead(size_t c);

    struct ChunkCursor {
      const Chunk* chunk = nullptr;
      size_t pos = 0;
      Key key;   // materialized for pos (valid while pos < row_count)
      Row row;   // materialized lazily when this cursor is current
      bool row_valid = false;
    };

    const Table* table_ = nullptr;
    std::map<Key, Row>::const_iterator head_it_;
    std::vector<ChunkCursor> cursors_;
    // Index into cursors_ of the current source, or SIZE_MAX for the head.
    size_t current_ = SIZE_MAX;
    bool at_end_ = true;
  };

  class Scan {
   public:
    ScanIterator begin() const { return ScanIterator(table_); }
    ScanSentinel end() const { return ScanSentinel{}; }

   private:
    friend class Table;
    explicit Scan(const Table* table) : table_(table) {}
    const Table* table_;
  };

  Scan scan() const { return Scan(this); }

  /// Removes all rows (head, chunks, and tombstones).
  void Clear();

  /// Seals the head into a columnar chunk now (compacting if any chunk rows
  /// are dead), regardless of the threshold. No-op on an empty table.
  /// Automatic sealing uses the same routine when the head or the dead-row
  /// count reaches seal_threshold().
  void Seal();

  size_t seal_threshold() const { return seal_threshold_; }
  /// Thresholds below 1 are clamped to 1. Takes effect on the next mutation.
  void set_seal_threshold(size_t threshold) {
    seal_threshold_ = threshold == 0 ? 1 : threshold;
  }

  // Storage-tier introspection for the vectorized paths inside
  // src/relational/ (query.cc, index.cc) and the streamed checkpoint
  // (database.cc). Outside callers use scan().
  const std::vector<std::shared_ptr<const Chunk>>& chunks() const {
    return chunks_;
  }
  const std::map<Key, Row>& head() const { return head_; }
  const std::set<Key>& tombstones() const { return tombstones_; }
  size_t dead_count() const { return dead_count_; }
  /// True if chunk row (`chunk`, `i`) is the live version of its key.
  bool ChunkRowIsLive(const Chunk& chunk, size_t i) const;

  /// Rebuilds a table from checkpointed parts: sealed chunks plus head rows
  /// and tombstones. Validates the two-tier invariants (chunk keys unique,
  /// tombstones resolve to chunk rows, head rows valid under `schema`);
  /// returns Corruption when they don't hold.
  static Result<Table> FromParts(Schema schema,
                                 std::vector<std::shared_ptr<const Chunk>> chunks,
                                 std::vector<Row> head_rows,
                                 std::vector<Key> tombstones);

  /// JSON round trip: {"schema": ..., "rows": [...]}.
  Json ToJson() const;
  static Result<Table> FromJson(const Json& json);

  /// Hex SHA-256 digest of the table's content; used as the shared-data
  /// content digest recorded on-chain so peers can prove what they fetched.
  /// Layout-independent (depends only on schema + the multiset of live
  /// rows) and cached: sealed chunks carry their digest accumulator, so
  /// recomputation after a mutation folds chunk accumulators with the head
  /// instead of re-serializing the whole table.
  std::string ContentDigest() const;

  /// ASCII rendering with a header row, used by examples to print the
  /// paper's Fig. 1 tables.
  std::string ToAsciiTable() const;

  /// Content equality: same schema and same live rows, regardless of how
  /// rows are split between head and chunks.
  friend bool operator==(const Table& a, const Table& b);
  friend bool operator!=(const Table& a, const Table& b) { return !(a == b); }

 private:
  /// Index of the chunk containing `key`, or nullopt. At most one matches.
  /// Consults the key-hash filter first, so misses are O(1) regardless of
  /// chunk count.
  std::optional<size_t> FindChunk(const Key& key) const;

  /// (chunk index, row index) of `key`'s chunk-resident version, or nullopt.
  std::optional<std::pair<size_t, size_t>> FindChunkRow(const Key& key) const;

  /// True if the live version of `key` resides in a chunk.
  bool ChunkLive(const Key& key) const;

  /// Moves `row` into the head under `key`, maintaining dead-row accounting
  /// for a chunk version of the same key, then triggers sealing if due.
  void PutHead(Key key, Row row);

  /// Seals or compacts when head size or dead rows reach the threshold.
  void MaybeSeal();

  void InvalidateDigest() { digest_cache_.reset(); }

  Schema schema_;
  std::map<Key, Row> head_;
  std::vector<std::shared_ptr<const Chunk>> chunks_;
  std::set<Key> tombstones_;
  /// 64-bit hashes of every chunk-resident key. A miss here proves the key
  /// is in no chunk (O(1) membership for the mutation hot path); a hit
  /// falls through to the real per-chunk binary search, so the rare hash
  /// collision costs a lookup, never correctness. Held immutably behind a
  /// shared_ptr so copying a table stays O(head) even with millions of
  /// chunk rows: only the rebuild points (Seal, Clear, FromParts) swap in
  /// a freshly built set; nothing mutates a shared one. May be null (no
  /// chunk keys).
  std::shared_ptr<const std::unordered_set<uint64_t>> chunk_key_filter_;
  size_t chunk_rows_total_ = 0;
  size_t dead_count_ = 0;
  size_t seal_threshold_ = kDefaultSealThreshold;
  mutable std::optional<std::string> digest_cache_;
};

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_TABLE_H_
