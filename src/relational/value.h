#ifndef MEDSYNC_RELATIONAL_VALUE_H_
#define MEDSYNC_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/json.h"
#include "common/result.h"

namespace medsync::relational {

/// Column data types supported by the engine. The medical-record schema of
/// the paper's Fig. 1 uses kInt (patient id) and kString (everything else);
/// kDouble/kBool round out the engine for general use.
enum class DataType : int {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
};

std::string_view DataTypeName(DataType type);
Result<DataType> DataTypeFromName(std::string_view name);

/// A single typed cell. Values are ordered first by type, then by content,
/// which gives tables a deterministic total row order.
class Value {
 public:
  /// NULL by default.
  Value() = default;
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(std::in_place_index<1>, v)); }
  static Value Int(int64_t v) {
    return Value(Payload(std::in_place_index<2>, v));
  }
  static Value Double(double v) {
    return Value(Payload(std::in_place_index<3>, v));
  }
  static Value String(std::string v) {
    return Value(Payload(std::in_place_index<4>, std::move(v)));
  }
  static Value String(std::string_view v) { return String(std::string(v)); }
  static Value String(const char* v) { return String(std::string(v)); }

  DataType type() const { return static_cast<DataType>(payload_.index()); }
  bool is_null() const { return type() == DataType::kNull; }

  /// Typed accessors; the caller must check type() first (asserted).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Human-readable rendering ("NULL", "42", quoted strings unquoted).
  std::string ToString() const;

  /// JSON round trip. Encoded as {"t":"int","v":42} so NULL and type
  /// information survive; used for WAL records and network payloads.
  Json ToJson() const;
  static Result<Value> FromJson(const Json& json);

  /// Whether this value can be stored in a column of `type` (NULL always
  /// can; otherwise types must match exactly — no implicit coercion).
  bool MatchesType(DataType type) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.payload_ == b.payload_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.payload_ < b.payload_;
  }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_VALUE_H_
