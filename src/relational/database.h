#ifndef MEDSYNC_RELATIONAL_DATABASE_H_
#define MEDSYNC_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "relational/delta.h"
#include "relational/table.h"
#include "relational/wal.h"

namespace medsync::relational {

/// A peer's local database: a catalog of named tables with optional
/// durability (streamed snapshot + write-ahead log). This is the "Database"
/// box of the paper's Fig. 2 — it holds both the full record table (the BX
/// source) and every shared view.
///
/// All mutations flow through logged operations, so a durable database
/// recovers to its pre-crash state by reloading the snapshot and replaying
/// the WAL. `Checkpoint()` rewrites the snapshot and truncates the log.
///
/// On-disk layout (snapshot format 3):
///   <dir>/snapshot.json   manifest: {"format":3, "wal_through":K,
///                         "tables":{name: {schema, chunks:[ids], head:[rows],
///                         tombstones:[keys]}}}
///   <dir>/chunks/<id>.chunk   one file per sealed columnar chunk,
///                         content-addressed by Chunk::id() — an unchanged
///                         chunk is never rewritten by later checkpoints.
///   <dir>/wal.log         the write-ahead log (format unchanged).
/// Format-2 snapshots (monolithic row JSON) are still read; Checkpoint()
/// always writes format 3. Unknown format numbers fail Open with
/// Corruption rather than being misread as some known layout.
class Database {
 public:
  struct OpenOptions {
    /// fdatasync the WAL after every logged mutation, so an acknowledged
    /// commit survives a machine crash (the default, and the durability
    /// contract every peer relies on). Bulk loads may turn this OFF to
    /// trade that window for load speed — records still reach the OS per
    /// append — and should Checkpoint() when done.
    bool sync_every_append = true;
  };

  /// In-memory database (no durability).
  Database() = default;

  /// Opens a durable database rooted at directory `dir` (created if
  /// missing). Loads `dir`/snapshot.json if present (plus any chunk files
  /// it references), then replays `dir`/wal.log.
  static Result<Database> Open(const std::string& dir);
  static Result<Database> Open(const std::string& dir, OpenOptions options);

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // -- Catalog ------------------------------------------------------------

  Status CreateTable(const std::string& name, const Schema& schema);
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Borrowed pointer, invalidated by mutations of this database.
  Result<const Table*> GetTable(const std::string& name) const;

  /// Deep copy of the table.
  Result<Table> Snapshot(const std::string& name) const;

  // -- Mutations (logged) ---------------------------------------------------

  Status Insert(const std::string& table, Row row);
  Status Update(const std::string& table, Row row);
  Status Upsert(const std::string& table, Row row);
  Status UpdateAttribute(const std::string& table, const Key& key,
                         const std::string& attribute, Value value);
  Status Delete(const std::string& table, const Key& key);

  /// Applies a row-level delta atomically (validate-then-apply).
  Status ApplyTableDelta(const std::string& table, const TableDelta& delta);

  /// Replaces a table's full contents (schema must match); used when a
  /// shared view is re-derived from the source by a lens get.
  Status ReplaceTable(const std::string& table, const Table& contents);

  /// Seals `table`'s mutable head into an immutable columnar chunk now
  /// (compacting dead chunk rows), e.g. after a bulk load and before
  /// Checkpoint() so the loaded rows stream out as content-addressed chunk
  /// files. Physical-layout-only: content, digest, and the WAL are
  /// untouched, so it needs no log record — a post-crash replay recovers
  /// an unsealed layout holding identical content.
  Status SealTable(const std::string& table);

  // -- Transactions ---------------------------------------------------------

  /// A buffered multi-operation transaction. Operations accumulate in the
  /// transaction and touch the database only at Commit(), which validates
  /// all of them against a scratch copy first — so a failing commit leaves
  /// the database untouched. Dropping the object without Commit() discards
  /// the buffered work.
  class Transaction {
   public:
    void Insert(const std::string& table, Row row);
    void Update(const std::string& table, Row row);
    void UpdateAttribute(const std::string& table, Key key,
                         std::string attribute, Value value);
    void Delete(const std::string& table, Key key);

    size_t op_count() const { return ops_.size(); }

   private:
    friend class Database;
    std::vector<Json> ops_;
  };

  Transaction Begin() const { return Transaction(); }
  Status Commit(Transaction&& txn);

  // -- Durability -----------------------------------------------------------

  /// Writes a fresh snapshot and truncates the WAL. No-op for in-memory
  /// databases.
  ///
  /// Streamed (format 3): every sealed chunk is written to its
  /// content-addressed file only if absent, the manifest (schema + chunk
  /// ids + head rows + tombstones per table) is atomically renamed into
  /// place, and chunk files no longer referenced are deleted afterwards.
  /// A crash in any window leaves either the old or the new snapshot fully
  /// readable — orphaned chunk files are garbage, not corruption, and are
  /// collected by the next successful checkpoint.
  Status Checkpoint();

  bool durable() const { return wal_.has_value(); }

  /// Forwards to the WAL's metrics attachment (wal.appends / wal.syncs /
  /// ...); no-op for in-memory databases. The registry must outlive the
  /// database.
  void set_metrics(metrics::MetricsRegistry* registry) {
    if (wal_.has_value()) wal_->set_metrics(registry);
  }

  /// Durability accounting of the underlying WAL (empty for in-memory
  /// databases).
  Wal::Stats wal_stats() const {
    return wal_.has_value() ? wal_->stats() : Wal::Stats{};
  }

 private:
  /// Validates + applies one logged operation to `tables` (shared by live
  /// execution, transaction validation, and WAL replay).
  static Status ApplyOp(const Json& op, std::map<std::string, Table>* tables);

  /// Read-only validation of one logged operation against `tables`:
  /// returns exactly the status ApplyOp would, without mutating anything.
  /// LogAndApply uses it to validate against the live catalog (no scratch
  /// copy) before the op reaches the WAL; Commit still uses the scratch
  /// path because ops within a transaction interact.
  static Status CheckOp(const Json& op,
                        const std::map<std::string, Table>& tables);

  /// Logs `op` (if durable) then applies it to the live catalog.
  Status LogAndApply(const Json& op);

  std::string dir_;
  std::map<std::string, Table> tables_;
  std::optional<Wal> wal_;
};

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_DATABASE_H_
