#ifndef MEDSYNC_RELATIONAL_PREDICATE_H_
#define MEDSYNC_RELATIONAL_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "relational/row.h"
#include "relational/schema.h"

namespace medsync::relational {

/// Comparison operators for leaf predicates.
enum class CompareOp : int {
  kEq = 0,
  kNe = 1,
  kLt = 2,
  kLe = 3,
  kGt = 4,
  kGe = 5,
};

std::string_view CompareOpName(CompareOp op);
Result<CompareOp> CompareOpFromName(std::string_view name);

/// A serializable boolean expression tree over one row. Used for selection
/// queries and for selection lenses — since selection lenses are shared
/// between peers as part of the agreed view definition, predicates must
/// round-trip through JSON.
///
/// Immutable; share freely via shared_ptr.
class Predicate {
 public:
  enum class Kind { kTrue, kCompare, kIsNull, kAnd, kOr, kNot };

  using Ptr = std::shared_ptr<const Predicate>;

  /// Matches every row.
  static Ptr True();

  /// attribute <op> literal.
  static Ptr Compare(std::string attribute, CompareOp op, Value literal);

  /// attribute IS NULL.
  static Ptr IsNull(std::string attribute);

  static Ptr And(Ptr left, Ptr right);
  static Ptr Or(Ptr left, Ptr right);
  static Ptr Not(Ptr operand);

  Kind kind() const { return kind_; }
  const std::string& attribute() const { return attribute_; }
  CompareOp op() const { return op_; }
  const Value& literal() const { return literal_; }
  const Ptr& left() const { return left_; }
  const Ptr& right() const { return right_; }

  /// Evaluates against `row` under `schema`. A comparison involving NULL is
  /// false (SQL-ish three-valued logic collapsed to two values), and an
  /// unknown attribute is an error.
  Result<bool> Evaluate(const Schema& schema, const Row& row) const;

  /// Checks that every referenced attribute exists in `schema`.
  Status Validate(const Schema& schema) const;

  /// Names of all attributes this predicate references.
  std::vector<std::string> ReferencedAttributes() const;

  /// Human-readable form, e.g. "(a4 = 'x' AND NOT (a0 < 5))".
  std::string ToString() const;

  Json ToJson() const;
  static Result<Ptr> FromJson(const Json& json);

  /// Structural equality.
  static bool Equal(const Ptr& a, const Ptr& b);

 private:
  Predicate() = default;

  Kind kind_ = Kind::kTrue;
  std::string attribute_;
  CompareOp op_ = CompareOp::kEq;
  Value literal_;
  Ptr left_;
  Ptr right_;
};

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_PREDICATE_H_
