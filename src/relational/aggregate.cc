#include "relational/aggregate.h"

#include <map>

#include "common/strings.h"

namespace medsync::relational {

std::string_view AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kAvg:
      return "avg";
  }
  return "?";
}

namespace {

/// Running state for one aggregate over one group.
struct Accumulator {
  size_t count = 0;        // non-null inputs (rows for kCount)
  Value min_value;
  Value max_value;
  double sum = 0.0;
  bool numeric_ok = true;  // sum/avg saw only numeric values

  void Add(const Value& v, AggregateFn fn) {
    if (fn == AggregateFn::kCount) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    ++count;
    if (count == 1 || v < min_value) min_value = v;
    if (count == 1 || max_value < v) max_value = v;
    if (v.type() == DataType::kInt) {
      sum += static_cast<double>(v.AsInt());
    } else if (v.type() == DataType::kDouble) {
      sum += v.AsDouble();
    } else {
      numeric_ok = false;
    }
  }

  Result<Value> Finish(AggregateFn fn, std::string_view attr) const {
    switch (fn) {
      case AggregateFn::kCount:
        return Value::Int(static_cast<int64_t>(count));
      case AggregateFn::kMin:
        return count == 0 ? Value::Null() : min_value;
      case AggregateFn::kMax:
        return count == 0 ? Value::Null() : max_value;
      case AggregateFn::kSum:
      case AggregateFn::kAvg:
        if (!numeric_ok) {
          return Status::InvalidArgument(
              StrCat(AggregateFnName(fn), " over non-numeric attribute '",
                     attr, "'"));
        }
        if (count == 0) return Value::Null();
        return fn == AggregateFn::kSum
                   ? Value::Double(sum)
                   : Value::Double(sum / static_cast<double>(count));
    }
    return Status::Internal("unhandled aggregate fn");
  }
};

std::string OutputName(const AggregateSpec& spec) {
  if (!spec.as.empty()) return spec.as;
  if (spec.attribute.empty()) return std::string(AggregateFnName(spec.fn));
  return StrCat(AggregateFnName(spec.fn), "_", spec.attribute);
}

DataType OutputType(const AggregateSpec& spec, const Schema& input) {
  switch (spec.fn) {
    case AggregateFn::kCount:
      return DataType::kInt;
    case AggregateFn::kSum:
    case AggregateFn::kAvg:
      return DataType::kDouble;
    case AggregateFn::kMin:
    case AggregateFn::kMax: {
      std::optional<size_t> idx = input.IndexOf(spec.attribute);
      return idx.has_value() ? input.attributes()[*idx].type
                             : DataType::kNull;
    }
  }
  return DataType::kNull;
}

}  // namespace

Result<Table> GroupBy(const Table& input,
                      const std::vector<std::string>& group_by,
                      const std::vector<AggregateSpec>& aggregates) {
  if (group_by.empty()) {
    return Status::InvalidArgument(
        "GroupBy needs grouping attributes; use Aggregate() for a whole-"
        "table rollup");
  }
  if (aggregates.empty()) {
    return Status::InvalidArgument("GroupBy needs at least one aggregate");
  }
  const Schema& in = input.schema();

  std::vector<size_t> group_idx;
  std::vector<AttributeDef> out_attrs;
  for (const std::string& name : group_by) {
    std::optional<size_t> idx = in.IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound(StrCat("no attribute '", name, "'"));
    }
    AttributeDef def = in.attributes()[*idx];
    def.nullable = false;  // group keys become the result key
    out_attrs.push_back(std::move(def));
    group_idx.push_back(*idx);
  }

  std::vector<std::optional<size_t>> agg_idx;
  for (const AggregateSpec& spec : aggregates) {
    if (spec.fn == AggregateFn::kCount && spec.attribute.empty()) {
      agg_idx.push_back(std::nullopt);
    } else {
      std::optional<size_t> idx = in.IndexOf(spec.attribute);
      if (!idx.has_value()) {
        return Status::NotFound(
            StrCat("no attribute '", spec.attribute, "'"));
      }
      agg_idx.push_back(idx);
    }
    out_attrs.push_back(
        AttributeDef{OutputName(spec), OutputType(spec, in), true});
  }
  MEDSYNC_ASSIGN_OR_RETURN(Schema out_schema,
                           Schema::Create(out_attrs, group_by));

  // Accumulate per group.
  std::map<std::vector<Value>, std::vector<Accumulator>> groups;
  for (const auto& [key, row] : input.scan()) {
    std::vector<Value> group_key;
    group_key.reserve(group_idx.size());
    for (size_t idx : group_idx) {
      if (row[idx].is_null()) {
        return Status::InvalidArgument(
            StrCat("NULL group key in attribute '",
                   in.attributes()[idx].name, "'"));
      }
      group_key.push_back(row[idx]);
    }
    auto [it, inserted] = groups.try_emplace(
        std::move(group_key), std::vector<Accumulator>(aggregates.size()));
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const Value& v =
          agg_idx[a].has_value() ? row[*agg_idx[a]] : Value::Null();
      it->second[a].Add(v, aggregates[a].fn);
    }
  }

  Table out(out_schema);
  for (const auto& [group_key, accumulators] : groups) {
    Row row = group_key;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      MEDSYNC_ASSIGN_OR_RETURN(
          Value v,
          accumulators[a].Finish(aggregates[a].fn, aggregates[a].attribute));
      row.push_back(std::move(v));
    }
    MEDSYNC_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

Result<Table> Aggregate(const Table& input,
                        const std::vector<AggregateSpec>& aggregates) {
  // Reuse GroupBy over a synthetic constant column.
  Schema widened_schema = [&] {
    std::vector<AttributeDef> attrs = input.schema().attributes();
    attrs.push_back(AttributeDef{"_all", DataType::kInt, false});
    return *Schema::Create(std::move(attrs),
                           input.schema().key_attributes());
  }();
  Table widened(widened_schema);
  for (const auto& [key, row] : input.scan()) {
    Row extended = row;
    extended.push_back(Value::Int(0));
    MEDSYNC_RETURN_IF_ERROR(widened.Insert(std::move(extended)));
  }
  if (input.empty()) {
    // One all-zero/NULL row result for consistency.
    std::vector<AttributeDef> out_attrs{
        AttributeDef{"_all", DataType::kInt, false}};
    for (const AggregateSpec& spec : aggregates) {
      out_attrs.push_back(
          AttributeDef{spec.as.empty()
                           ? StrCat(AggregateFnName(spec.fn),
                                    spec.attribute.empty() ? "" : "_",
                                    spec.attribute)
                           : spec.as,
                       spec.fn == AggregateFn::kCount ? DataType::kInt
                                                      : DataType::kNull,
                       true});
    }
    MEDSYNC_ASSIGN_OR_RETURN(
        Schema out_schema,
        Schema::Create(out_attrs, std::vector<std::string>{"_all"}));
    Table out(out_schema);
    Row row{Value::Int(0)};
    for (size_t i = 0; i < aggregates.size(); ++i) {
      row.push_back(aggregates[i].fn == AggregateFn::kCount ? Value::Int(0)
                                                            : Value::Null());
    }
    MEDSYNC_RETURN_IF_ERROR(out.Insert(std::move(row)));
    return out;
  }
  return GroupBy(widened, {"_all"}, aggregates);
}

}  // namespace medsync::relational
