#ifndef MEDSYNC_RELATIONAL_CHUNK_H_
#define MEDSYNC_RELATIONAL_CHUNK_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/row.h"
#include "relational/schema.h"

namespace medsync::relational {

/// A 256-bit multiset accumulator over row hashes: four independent 64-bit
/// lanes combined by wrapping addition, so adding and removing rows commute.
/// The composed table digest (Table::ContentDigest) folds the cached
/// accumulator of every sealed chunk with the mutable head's rows instead of
/// re-serializing the whole table — O(head + dead rows) per digest instead
/// of O(n). Layout-independent by construction: the accumulator depends only
/// on the multiset of live rows, never on how they are split across chunks.
using RowDigestAcc = std::array<uint64_t, 4>;

/// SHA-256 of the row's canonical JSON, folded into four 64-bit lanes.
RowDigestAcc HashRowForDigest(const Row& row);

void AccAdd(RowDigestAcc* acc, const RowDigestAcc& delta);
void AccSub(RowDigestAcc* acc, const RowDigestAcc& delta);

/// An immutable, sealed run of rows in columnar layout: one value vector per
/// attribute (dictionary-encoded for strings), plus a null flag per cell.
/// Rows are stored in key order, so point lookups are a binary search over
/// the key columns and full scans stream each column's contiguous storage.
///
/// Chunks are created by Table::Seal() from the mutable head and shared by
/// value-copies of the table via shared_ptr — copying a table with sealed
/// history is O(head), not O(history). A chunk also carries:
///  * a cached RowDigestAcc over its rows (computed once at seal), and
///  * a content-address `id()` — hex SHA-256 of the canonical serialization —
///    which the streamed checkpoint (Database::Checkpoint, snapshot format 3)
///    uses as the chunk's file name so each chunk is written exactly once.
class Chunk {
 public:
  /// Seals `rows` (must be in key order — e.g. a Table head map) under
  /// `schema` into an immutable chunk. `rows` must be non-empty.
  static std::shared_ptr<const Chunk> Seal(const Schema& schema,
                                           const std::map<Key, Row>& rows);
  /// Same, from an already key-ordered vector (used by compaction).
  static std::shared_ptr<const Chunk> Seal(const Schema& schema,
                                           const std::vector<Row>& rows);

  size_t row_count() const { return row_count_; }
  const Key& min_key() const { return min_key_; }
  const Key& max_key() const { return max_key_; }

  /// The cell at (row, attribute position) as a boxed Value.
  Value ValueAt(size_t row, size_t col) const;
  bool IsNullAt(size_t row, size_t col) const;

  /// Materializes row `i` (all attributes, schema order).
  Row RowAt(size_t i) const;
  /// Materializes the primary key of row `i`.
  Key KeyAt(size_t i) const;
  /// Gathers only the attributes at `cols` from row `i` into `out`.
  void GatherRow(size_t i, const std::vector<size_t>& cols, Row* out) const;

  /// Index of the row with `key`, or nullopt. O(log n) binary search with a
  /// min/max pre-check so non-overlapping probes are O(1).
  std::optional<size_t> Find(const Key& key) const;

  /// Cached multiset digest accumulator over all rows (seal-time).
  const RowDigestAcc& digest_acc() const { return digest_acc_; }

  /// Content address: hex SHA-256 of SerializeCanonical(), cached at seal.
  const std::string& id() const { return id_; }

  /// Per-column storage, exposed for the vectorized scan paths inside
  /// src/relational/ (query.cc select bitmaps, index.cc rebuilds).
  struct Column {
    DataType type = DataType::kNull;
    /// Empty when no cell is NULL; otherwise one flag per row.
    std::vector<uint8_t> nulls;
    /// Exactly one of these is populated, matching `type` (all empty for a
    /// kNull-typed column). NULL cells hold a zero placeholder.
    std::vector<uint8_t> bools;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    /// Dictionary encoding: sorted unique strings + one code per row.
    std::vector<std::string> dict;
    std::vector<uint32_t> codes;

    bool IsNull(size_t row) const {
      return !nulls.empty() && nulls[row] != 0;
    }
  };
  const std::vector<Column>& columns() const { return columns_; }
  const Column& column(size_t col) const { return columns_[col]; }

  /// Canonical (uncompressed) byte serialization; the content address
  /// hashes exactly these bytes, independent of file-level compression.
  std::string SerializeCanonical() const;

  /// File encoding: magic + header + (optionally LZ-compressed) canonical
  /// payload with a CRC-32. `compress` trades checkpoint bytes for CPU.
  std::string SerializeFile(bool compress) const;

  /// Parses a file encoding produced by SerializeFile and validates it
  /// against `schema` (arity, column types). Returns Corruption on any
  /// malformed framing, CRC mismatch, or schema disagreement.
  static Result<std::shared_ptr<const Chunk>> Deserialize(
      const Schema& schema, std::string_view file_bytes);

 private:
  Chunk() = default;

  static std::shared_ptr<const Chunk> SealImpl(
      const Schema& schema, const std::vector<const Row*>& rows);

  /// Compares the key of row `i` with `key`; <0, 0, >0.
  int CompareKeyAt(size_t i, const Key& key) const;

  size_t row_count_ = 0;
  std::vector<size_t> key_cols_;  // schema key_indices snapshot
  std::vector<Column> columns_;
  Key min_key_;
  Key max_key_;
  RowDigestAcc digest_acc_{};
  std::string id_;
};

/// LZSS-family byte compressor used for chunk files (12-bit window, 4-bit
/// match length). Self-contained so the toolchain needs no external LZ
/// library; deterministic output for identical input.
std::string LzCompress(std::string_view data);

/// Inverse of LzCompress. `expected_size` bounds the output (the chunk file
/// header records the raw size); returns Corruption on malformed streams or
/// size mismatch.
Result<std::string> LzDecompress(std::string_view data, size_t expected_size);

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_CHUNK_H_
