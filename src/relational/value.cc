#include "relational/value.h"

#include <cassert>
#include <cstdio>

#include "common/strings.h"

namespace medsync::relational {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "?";
}

Result<DataType> DataTypeFromName(std::string_view name) {
  if (name == "null") return DataType::kNull;
  if (name == "bool") return DataType::kBool;
  if (name == "int") return DataType::kInt;
  if (name == "double") return DataType::kDouble;
  if (name == "string") return DataType::kString;
  return Status::InvalidArgument(StrCat("unknown data type '", name, "'"));
}

bool Value::AsBool() const {
  assert(type() == DataType::kBool);
  return std::get<bool>(payload_);
}

int64_t Value::AsInt() const {
  assert(type() == DataType::kInt);
  return std::get<int64_t>(payload_);
}

double Value::AsDouble() const {
  assert(type() == DataType::kDouble);
  return std::get<double>(payload_);
}

const std::string& Value::AsString() const {
  assert(type() == DataType::kString);
  return std::get<std::string>(payload_);
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return AsBool() ? "true" : "false";
    case DataType::kInt:
      return StrCat(AsInt());
    case DataType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", AsDouble());
      return buf;
    }
    case DataType::kString:
      return AsString();
  }
  return "?";
}

Json Value::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("t", std::string(DataTypeName(type())));
  switch (type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      out.Set("v", AsBool());
      break;
    case DataType::kInt:
      out.Set("v", AsInt());
      break;
    case DataType::kDouble:
      out.Set("v", AsDouble());
      break;
    case DataType::kString:
      out.Set("v", AsString());
      break;
  }
  return out;
}

Result<Value> Value::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("value JSON must be an object");
  }
  MEDSYNC_ASSIGN_OR_RETURN(std::string type_name, json.GetString("t"));
  MEDSYNC_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(type_name));
  const Json& v = json.At("v");
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      if (!v.is_bool()) return Status::InvalidArgument("expected bool 'v'");
      return Value::Bool(v.AsBool());
    case DataType::kInt:
      if (!v.is_int()) return Status::InvalidArgument("expected int 'v'");
      return Value::Int(v.AsInt());
    case DataType::kDouble:
      if (!v.is_number()) {
        return Status::InvalidArgument("expected number 'v'");
      }
      return Value::Double(v.AsDouble());
    case DataType::kString:
      if (!v.is_string()) return Status::InvalidArgument("expected string 'v'");
      return Value::String(v.AsString());
  }
  return Status::InvalidArgument("unhandled value type");
}

bool Value::MatchesType(DataType type) const {
  return is_null() || this->type() == type;
}

}  // namespace medsync::relational
