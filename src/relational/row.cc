#include "relational/row.h"

#include "common/strings.h"

namespace medsync::relational {

Key KeyOf(const Schema& schema, const Row& row) {
  Key key;
  key.reserve(schema.key_indices().size());
  for (size_t idx : schema.key_indices()) {
    key.push_back(row[idx]);
  }
  return key;
}

Status ValidateRow(const Schema& schema, const Row& row) {
  if (row.size() != schema.attribute_count()) {
    return Status::InvalidArgument(
        StrCat("row arity ", row.size(), " does not match schema arity ",
               schema.attribute_count()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const AttributeDef& attr = schema.attributes()[i];
    if (row[i].is_null()) {
      if (!attr.nullable) {
        return Status::InvalidArgument(
            StrCat("NULL in non-nullable attribute '", attr.name, "'"));
      }
      continue;
    }
    if (!row[i].MatchesType(attr.type)) {
      return Status::InvalidArgument(
          StrCat("type mismatch in attribute '", attr.name, "': expected ",
                 DataTypeName(attr.type), ", got ",
                 DataTypeName(row[i].type())));
    }
  }
  return Status::OK();
}

Json RowToJson(const Row& row) {
  Json out = Json::MakeArray();
  for (const Value& v : row) out.Append(v.ToJson());
  return out;
}

Result<Row> RowFromJson(const Json& json) {
  if (!json.is_array()) {
    return Status::InvalidArgument("row JSON must be an array");
  }
  Row row;
  row.reserve(json.size());
  for (const Json& v : json.AsArray()) {
    MEDSYNC_ASSIGN_OR_RETURN(Value value, Value::FromJson(v));
    row.push_back(std::move(value));
  }
  return row;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace medsync::relational
