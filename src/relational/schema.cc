#include "relational/schema.h"

#include <set>

#include "common/strings.h"

namespace medsync::relational {

Result<Schema> Schema::Create(std::vector<AttributeDef> attributes,
                              std::vector<std::string> key_attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  if (key_attributes.empty()) {
    return Status::InvalidArgument("schema needs a non-empty primary key");
  }
  std::set<std::string> seen;
  for (const AttributeDef& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument(
          StrCat("duplicate attribute '", attr.name, "'"));
    }
  }

  Schema schema;
  schema.attributes_ = std::move(attributes);
  schema.key_attributes_ = std::move(key_attributes);

  std::set<std::string> key_seen;
  for (const std::string& key : schema.key_attributes_) {
    if (!key_seen.insert(key).second) {
      return Status::InvalidArgument(StrCat("duplicate key attribute '", key,
                                            "'"));
    }
    std::optional<size_t> idx = schema.IndexOf(key);
    if (!idx.has_value()) {
      return Status::InvalidArgument(
          StrCat("key attribute '", key, "' not in schema"));
    }
    if (schema.attributes_[*idx].nullable) {
      return Status::InvalidArgument(
          StrCat("key attribute '", key, "' must not be nullable"));
    }
    schema.key_indices_.push_back(*idx);
  }
  return schema;
}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

bool Schema::IsKeyAttribute(std::string_view name) const {
  for (const std::string& key : key_attributes_) {
    if (key == name) return true;
  }
  return false;
}

bool Schema::KeyContainedIn(const Schema& other) const {
  for (size_t idx : key_indices_) {
    const AttributeDef& key_attr = attributes_[idx];
    std::optional<size_t> other_idx = other.IndexOf(key_attr.name);
    if (!other_idx.has_value()) return false;
    if (other.attributes()[*other_idx].type != key_attr.type) return false;
  }
  return true;
}

Json Schema::ToJson() const {
  Json attrs = Json::MakeArray();
  for (const AttributeDef& attr : attributes_) {
    Json a = Json::MakeObject();
    a.Set("name", attr.name);
    a.Set("type", std::string(DataTypeName(attr.type)));
    a.Set("nullable", attr.nullable);
    attrs.Append(std::move(a));
  }
  Json keys = Json::MakeArray();
  for (const std::string& key : key_attributes_) keys.Append(key);

  Json out = Json::MakeObject();
  out.Set("attributes", std::move(attrs));
  out.Set("key", std::move(keys));
  return out;
}

Result<Schema> Schema::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("schema JSON must be an object");
  }
  const Json& attrs = json.At("attributes");
  if (!attrs.is_array()) {
    return Status::InvalidArgument("schema JSON needs 'attributes' array");
  }
  std::vector<AttributeDef> attributes;
  for (const Json& a : attrs.AsArray()) {
    AttributeDef def;
    MEDSYNC_ASSIGN_OR_RETURN(def.name, a.GetString("name"));
    MEDSYNC_ASSIGN_OR_RETURN(std::string type_name, a.GetString("type"));
    MEDSYNC_ASSIGN_OR_RETURN(def.type, DataTypeFromName(type_name));
    MEDSYNC_ASSIGN_OR_RETURN(def.nullable, a.GetBool("nullable"));
    attributes.push_back(std::move(def));
  }
  const Json& keys = json.At("key");
  if (!keys.is_array()) {
    return Status::InvalidArgument("schema JSON needs 'key' array");
  }
  std::vector<std::string> key_attributes;
  for (const Json& k : keys.AsArray()) {
    if (!k.is_string()) {
      return Status::InvalidArgument("schema key entries must be strings");
    }
    key_attributes.push_back(k.AsString());
  }
  return Schema::Create(std::move(attributes), std::move(key_attributes));
}

}  // namespace medsync::relational
