#ifndef MEDSYNC_RELATIONAL_ROW_H_
#define MEDSYNC_RELATIONAL_ROW_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace medsync::relational {

/// A row is an ordered tuple of values matching some schema's attribute
/// order. Rows are plain data; schema-aware operations live on Table.
using Row = std::vector<Value>;

/// A primary-key value: the row's key attributes in key order.
using Key = std::vector<Value>;

/// Extracts the primary key of `row` under `schema`.
Key KeyOf(const Schema& schema, const Row& row);

/// Checks that `row` has the right arity, each value matches its column
/// type, and no non-nullable column is NULL.
Status ValidateRow(const Schema& schema, const Row& row);

/// JSON round trip for rows (an array of value objects).
Json RowToJson(const Row& row);
Result<Row> RowFromJson(const Json& json);

/// Renders "(v1, v2, ...)" for traces and error messages.
std::string RowToString(const Row& row);

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_ROW_H_
