#include "relational/database.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/fault_injector.h"
#include "common/strings.h"
#include "relational/chunk.h"

namespace medsync::relational {

namespace {

constexpr char kSnapshotFile[] = "snapshot.json";
constexpr char kWalFile[] = "wal.log";
constexpr char kChunksDir[] = "chunks";
constexpr char kChunkSuffix[] = ".chunk";

/// Snapshot formats this build can read. Checkpoint always writes the
/// newest; anything else in the "format" field is a different (future or
/// corrupted) layout and must not be guessed at.
constexpr int64_t kSnapshotFormatLegacyRows = 2;
constexpr int64_t kSnapshotFormatChunked = 3;

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Chunk ids are hex SHA-256 strings; anything else in a manifest is
/// corruption (and must never be spliced into a filesystem path).
bool IsValidChunkId(const std::string& id) {
  if (id.size() != 64) return false;
  for (char c : id) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

Status SyncDirectory(const std::string& dir) {
  int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd < 0) {
    return Status::Unavailable(
        StrCat("cannot open directory '", dir, "': ", std::strerror(errno)));
  }
  bool synced = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  if (!synced) {
    return Status::Unavailable(
        StrCat("cannot sync directory '", dir, "': ", std::strerror(errno)));
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path, bool* exists) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *exists = false;
    return std::string();
  }
  *exists = true;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::Unavailable(StrCat("cannot read '", path, "'"));
  }
  return out;
}

/// Atomically replaces `path` with `data`: write to a temp file, fsync the
/// FILE before the rename (otherwise the rename can land while the bytes
/// are still page-cache-only and a machine crash leaves a zero-length
/// snapshot behind a truncated WAL), rename, then fsync the DIRECTORY so
/// the new directory entry itself is durable.
Status WriteStringToFile(const std::string& path, const std::string& data) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable(
        StrCat("cannot write '", tmp, "': ", std::strerror(errno)));
  }
  size_t to_write = data.size();
  size_t keep = 0;
  const bool torn = CheckTornWrite("db.snapshot.write", &keep);
  if (torn && keep < to_write) to_write = keep;
  const char* p = data.data();
  size_t remaining = to_write;
  while (remaining > 0) {
    ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Unavailable(
          StrCat("short write to '", tmp, "': ", std::strerror(errno)));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (torn) {
    ::close(fd);
    return Status::Unavailable(StrCat(
        "fault injected: snapshot write torn after ", to_write, " bytes"));
  }
  Status point = CheckFaultPoint("db.snapshot.file_sync");
  if (!point.ok()) {
    ::close(fd);
    return point;
  }
  bool synced = ::fsync(fd) == 0;
  synced = (::close(fd) == 0) && synced;
  if (!synced) {
    return Status::Unavailable(
        StrCat("cannot sync '", tmp, "': ", std::strerror(errno)));
  }
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("db.snapshot.rename"));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Unavailable(
        StrCat("cannot rename '", tmp, "': ", std::strerror(errno)));
  }
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("db.snapshot.dir_sync"));
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd < 0) {
    return Status::Unavailable(
        StrCat("cannot open directory '", dir, "': ", std::strerror(errno)));
  }
  synced = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  if (!synced) {
    return Status::Unavailable(
        StrCat("cannot sync directory '", dir, "': ", std::strerror(errno)));
  }
  return Status::OK();
}

/// Writes one content-addressed chunk file: temp + fsync + rename, like the
/// manifest, but WITHOUT a per-file directory sync — the checkpoint syncs
/// the chunks directory once after the whole batch. A crash mid-write
/// leaves at worst a stale `.tmp` and an unreferenced chunk, both invisible
/// to recovery and collected by the next checkpoint's GC.
Status WriteChunkFile(const std::string& path, const std::string& data) {
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("db.checkpoint.chunk_write"));
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable(
        StrCat("cannot write '", tmp, "': ", std::strerror(errno)));
  }
  const char* p = data.data();
  size_t remaining = data.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Unavailable(
          StrCat("short write to '", tmp, "': ", std::strerror(errno)));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  bool synced = ::fsync(fd) == 0;
  synced = (::close(fd) == 0) && synced;
  if (!synced) {
    return Status::Unavailable(
        StrCat("cannot sync '", tmp, "': ", std::strerror(errno)));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Unavailable(
        StrCat("cannot rename '", tmp, "': ", std::strerror(errno)));
  }
  return Status::OK();
}

/// Loads one table of a format-3 manifest: schema + content-addressed
/// chunk files + head rows + tombstones, revalidating the two-tier
/// invariants via Table::FromParts.
Result<Table> LoadChunkedTable(const std::string& dir,
                               const std::string& table_name,
                               const Json& table_json) {
  MEDSYNC_ASSIGN_OR_RETURN(Schema schema,
                           Schema::FromJson(table_json.At("schema")));
  const Json& chunks_json = table_json.At("chunks");
  const Json& head_json = table_json.At("head");
  const Json& tombstones_json = table_json.At("tombstones");
  if (!chunks_json.is_array() || !head_json.is_array() ||
      !tombstones_json.is_array()) {
    return Status::Corruption(StrCat("snapshot table '", table_name,
                                     "' is missing chunks/head/tombstones"));
  }

  std::vector<std::shared_ptr<const Chunk>> chunks;
  for (const Json& id_json : chunks_json.AsArray()) {
    if (!id_json.is_string()) {
      return Status::Corruption(
          StrCat("snapshot table '", table_name, "' has a non-string chunk id"));
    }
    const std::string& id = id_json.AsString();
    if (!IsValidChunkId(id)) {
      return Status::Corruption(StrCat("snapshot table '", table_name,
                                       "' references malformed chunk id '", id,
                                       "'"));
    }
    std::string path = StrCat(dir, "/", kChunksDir, "/", id, kChunkSuffix);
    bool exists = false;
    MEDSYNC_ASSIGN_OR_RETURN(std::string bytes,
                             ReadFileToString(path, &exists));
    if (!exists) {
      return Status::Corruption(StrCat("snapshot table '", table_name,
                                       "' references missing chunk file '",
                                       path, "'"));
    }
    MEDSYNC_ASSIGN_OR_RETURN(std::shared_ptr<const Chunk> chunk,
                             Chunk::Deserialize(schema, bytes));
    if (chunk->id() != id) {
      return Status::Corruption(
          StrCat("chunk file '", path, "' content hashes to ", chunk->id(),
                 ", not its file name — the file was tampered with or "
                 "mis-addressed"));
    }
    chunks.push_back(std::move(chunk));
  }

  std::vector<Row> head_rows;
  head_rows.reserve(head_json.AsArray().size());
  for (const Json& row_json : head_json.AsArray()) {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(row_json));
    head_rows.push_back(std::move(row));
  }
  std::vector<Key> tombstones;
  tombstones.reserve(tombstones_json.AsArray().size());
  for (const Json& key_json : tombstones_json.AsArray()) {
    MEDSYNC_ASSIGN_OR_RETURN(Key key, RowFromJson(key_json));
    tombstones.push_back(std::move(key));
  }
  return Table::FromParts(std::move(schema), std::move(chunks),
                          std::move(head_rows), std::move(tombstones));
}

}  // namespace

Result<Database> Database::Open(const std::string& dir) {
  return Open(dir, OpenOptions());
}

Result<Database> Database::Open(const std::string& dir, OpenOptions options) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Unavailable(
        StrCat("cannot create directory '", dir, "': ", std::strerror(errno)));
  }

  Database db;
  db.dir_ = dir;

  // Load snapshot if present. Formats 2 and 3 record which WAL prefix the
  // snapshot already covers ({"format":N,"wal_through":K,"tables":{...}});
  // a legacy snapshot is the bare tables object and covers nothing. Any
  // OTHER format number is some future (or corrupted) layout: parsing it
  // as a known one would silently misread data, so Open refuses.
  uint64_t wal_through = 0;
  bool exists = false;
  MEDSYNC_ASSIGN_OR_RETURN(
      std::string snapshot_text,
      ReadFileToString(dir + "/" + kSnapshotFile, &exists));
  if (exists && !snapshot_text.empty()) {
    MEDSYNC_ASSIGN_OR_RETURN(Json snapshot, Json::Parse(snapshot_text));
    if (!snapshot.is_object()) {
      return Status::Corruption("snapshot is not a JSON object");
    }
    const Json* tables_json = &snapshot;
    int64_t format = 0;
    if (snapshot.GetInt("format").ok()) {
      format = *snapshot.GetInt("format");
      if (format != kSnapshotFormatLegacyRows &&
          format != kSnapshotFormatChunked) {
        return Status::Corruption(
            StrCat("snapshot format ", format, " is not supported (this "
                   "build reads formats ", kSnapshotFormatLegacyRows, " and ",
                   kSnapshotFormatChunked, ")"));
      }
      MEDSYNC_ASSIGN_OR_RETURN(int64_t through,
                               snapshot.GetInt("wal_through"));
      wal_through = static_cast<uint64_t>(through);
      if (!snapshot.At("tables").is_object()) {
        return Status::Corruption("snapshot has no tables object");
      }
      tables_json = &snapshot.At("tables");
    }
    for (const auto& [name, table_json] : tables_json->AsObject()) {
      if (format == kSnapshotFormatChunked) {
        MEDSYNC_ASSIGN_OR_RETURN(Table table,
                                 LoadChunkedTable(dir, name, table_json));
        db.tables_.emplace(name, std::move(table));
      } else {
        MEDSYNC_ASSIGN_OR_RETURN(Table table, Table::FromJson(table_json));
        db.tables_.emplace(name, std::move(table));
      }
    }
  }

  // Replay WAL. Records at or below wal_through are already folded into
  // the snapshot — a crash between the snapshot rename and the WAL reset
  // leaves them in the log, and replaying them (insert, create_table, ...)
  // would fail or double-apply, so they are skipped.
  std::vector<WalRecord> records;
  // The commit path's acknowledgement implies durability, so every logged
  // operation is fdatasync'd before the mutation is applied.
  MEDSYNC_ASSIGN_OR_RETURN(
      Wal wal,
      Wal::Open(dir + "/" + kWalFile, &records,
                Wal::Options{.sync_every_append = options.sync_every_append}));
  for (const WalRecord& record : records) {
    if (record.lsn <= wal_through) continue;
    Status s = ApplyOp(record.payload, &db.tables_);
    if (!s.ok()) {
      return s.WithPrefix(StrCat("WAL replay failed at LSN ", record.lsn));
    }
  }
  // Even if the log is empty, fresh appends must be numbered above what
  // the snapshot covers, or the next recovery would skip them.
  wal.EnsureNextLsnAtLeast(wal_through + 1);
  db.wal_ = std::move(wal);
  return db;
}

Status Database::ApplyOp(const Json& op, std::map<std::string, Table>* tables) {
  MEDSYNC_ASSIGN_OR_RETURN(std::string kind, op.GetString("op"));

  if (kind == "create_table") {
    MEDSYNC_ASSIGN_OR_RETURN(std::string name, op.GetString("table"));
    if (tables->count(name) > 0) {
      return Status::AlreadyExists(StrCat("table '", name, "' exists"));
    }
    MEDSYNC_ASSIGN_OR_RETURN(Schema schema, Schema::FromJson(op.At("schema")));
    tables->emplace(name, Table(std::move(schema)));
    return Status::OK();
  }
  if (kind == "drop_table") {
    MEDSYNC_ASSIGN_OR_RETURN(std::string name, op.GetString("table"));
    if (tables->erase(name) == 0) {
      return Status::NotFound(StrCat("no table '", name, "'"));
    }
    return Status::OK();
  }

  MEDSYNC_ASSIGN_OR_RETURN(std::string name, op.GetString("table"));
  auto it = tables->find(name);
  if (it == tables->end()) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  Table& table = it->second;

  if (kind == "insert") {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(op.At("row")));
    return table.Insert(std::move(row));
  }
  if (kind == "update") {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(op.At("row")));
    return table.Update(std::move(row));
  }
  if (kind == "upsert") {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(op.At("row")));
    return table.Upsert(std::move(row));
  }
  if (kind == "update_attr") {
    MEDSYNC_ASSIGN_OR_RETURN(Key key, RowFromJson(op.At("key")));
    MEDSYNC_ASSIGN_OR_RETURN(std::string attr, op.GetString("attr"));
    MEDSYNC_ASSIGN_OR_RETURN(Value value, Value::FromJson(op.At("value")));
    return table.UpdateAttribute(key, attr, std::move(value));
  }
  if (kind == "delete") {
    MEDSYNC_ASSIGN_OR_RETURN(Key key, RowFromJson(op.At("key")));
    return table.Delete(key);
  }
  if (kind == "apply_delta") {
    MEDSYNC_ASSIGN_OR_RETURN(TableDelta delta,
                             TableDelta::FromJson(op.At("delta")));
    return ApplyDelta(delta, &table);
  }
  if (kind == "replace_table") {
    MEDSYNC_ASSIGN_OR_RETURN(Table contents,
                             Table::FromJson(op.At("contents")));
    if (contents.schema() != table.schema()) {
      return Status::InvalidArgument(
          StrCat("replace_table schema mismatch for '", name, "'"));
    }
    table = std::move(contents);
    return Status::OK();
  }
  return Status::InvalidArgument(StrCat("unknown database op '", kind, "'"));
}

Status Database::CheckOp(const Json& op,
                         const std::map<std::string, Table>& tables) {
  MEDSYNC_ASSIGN_OR_RETURN(std::string kind, op.GetString("op"));

  if (kind == "create_table") {
    MEDSYNC_ASSIGN_OR_RETURN(std::string name, op.GetString("table"));
    if (tables.count(name) > 0) {
      return Status::AlreadyExists(StrCat("table '", name, "' exists"));
    }
    return Schema::FromJson(op.At("schema")).status();
  }

  MEDSYNC_ASSIGN_OR_RETURN(std::string name, op.GetString("table"));
  auto it = tables.find(name);
  if (it == tables.end()) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  const Table& table = it->second;

  if (kind == "drop_table") return Status::OK();
  if (kind == "insert") {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(op.At("row")));
    return table.CheckInsert(row);
  }
  if (kind == "update") {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(op.At("row")));
    return table.CheckUpdate(row);
  }
  if (kind == "upsert") {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(op.At("row")));
    return table.CheckUpsert(row);
  }
  if (kind == "update_attr") {
    MEDSYNC_ASSIGN_OR_RETURN(Key key, RowFromJson(op.At("key")));
    MEDSYNC_ASSIGN_OR_RETURN(std::string attr, op.GetString("attr"));
    MEDSYNC_ASSIGN_OR_RETURN(Value value, Value::FromJson(op.At("value")));
    return table.CheckUpdateAttribute(key, attr, value);
  }
  if (kind == "delete") {
    MEDSYNC_ASSIGN_OR_RETURN(Key key, RowFromJson(op.At("key")));
    return table.CheckDelete(key);
  }
  if (kind == "apply_delta") {
    MEDSYNC_ASSIGN_OR_RETURN(TableDelta delta,
                             TableDelta::FromJson(op.At("delta")));
    return ValidateDelta(delta, table);
  }
  if (kind == "replace_table") {
    MEDSYNC_ASSIGN_OR_RETURN(Table contents,
                             Table::FromJson(op.At("contents")));
    if (contents.schema() != table.schema()) {
      return Status::InvalidArgument(
          StrCat("replace_table schema mismatch for '", name, "'"));
    }
    return Status::OK();
  }
  return Status::InvalidArgument(StrCat("unknown database op '", kind, "'"));
}

Status Database::LogAndApply(const Json& op) {
  // Validate read-only against the live catalog, so the WAL never records
  // a failing operation. CheckOp mirrors every failure mode of ApplyOp and
  // every table op is all-or-nothing, so the post-append apply cannot fail
  // — and no scratch copy of the table is made. (The old per-op copy cost
  // O(head) per mutation, which made million-row bulk loads quadratic.)
  MEDSYNC_RETURN_IF_ERROR(CheckOp(op, tables_));

  if (wal_.has_value()) {
    MEDSYNC_RETURN_IF_ERROR(wal_->Append(op).status());
  }
  Status applied = ApplyOp(op, &tables_);
  assert(applied.ok());
  return applied;
}

Status Database::CreateTable(const std::string& name, const Schema& schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("table '", name, "' exists"));
  }
  Json op = Json::MakeObject();
  op.Set("op", "create_table");
  op.Set("table", name);
  op.Set("schema", schema.ToJson());
  if (wal_.has_value()) {
    MEDSYNC_RETURN_IF_ERROR(wal_->Append(op).status());
  }
  tables_.emplace(name, Table(schema));
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.count(name) == 0) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  Json op = Json::MakeObject();
  op.Set("op", "drop_table");
  op.Set("table", name);
  if (wal_.has_value()) {
    MEDSYNC_RETURN_IF_ERROR(wal_->Append(op).status());
  }
  tables_.erase(name);
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  return &it->second;
}

Result<Table> Database::Snapshot(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  return it->second;
}

Status Database::Insert(const std::string& table, Row row) {
  Json op = Json::MakeObject();
  op.Set("op", "insert");
  op.Set("table", table);
  op.Set("row", RowToJson(row));
  return LogAndApply(op);
}

Status Database::Update(const std::string& table, Row row) {
  Json op = Json::MakeObject();
  op.Set("op", "update");
  op.Set("table", table);
  op.Set("row", RowToJson(row));
  return LogAndApply(op);
}

Status Database::Upsert(const std::string& table, Row row) {
  Json op = Json::MakeObject();
  op.Set("op", "upsert");
  op.Set("table", table);
  op.Set("row", RowToJson(row));
  return LogAndApply(op);
}

Status Database::UpdateAttribute(const std::string& table, const Key& key,
                                 const std::string& attribute, Value value) {
  Json op = Json::MakeObject();
  op.Set("op", "update_attr");
  op.Set("table", table);
  op.Set("key", RowToJson(key));
  op.Set("attr", attribute);
  op.Set("value", value.ToJson());
  return LogAndApply(op);
}

Status Database::Delete(const std::string& table, const Key& key) {
  Json op = Json::MakeObject();
  op.Set("op", "delete");
  op.Set("table", table);
  op.Set("key", RowToJson(key));
  return LogAndApply(op);
}

Status Database::ApplyTableDelta(const std::string& table,
                                 const TableDelta& delta) {
  // The cascade hot loop: bypass LogAndApply's scratch copy of the whole
  // table and validate read-only against the live one — the op itself is
  // O(|delta| log n) and ApplyDelta is all-or-nothing anyway.
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table '", table, "'"));
  }
  if (delta.empty()) return Status::OK();  // no WAL record for a no-op
  MEDSYNC_RETURN_IF_ERROR(ValidateDelta(delta, it->second));
  Json op = Json::MakeObject();
  op.Set("op", "apply_delta");
  op.Set("table", table);
  op.Set("delta", delta.ToJson());
  if (wal_.has_value()) {
    MEDSYNC_RETURN_IF_ERROR(wal_->Append(op).status());
  }
  return ApplyDelta(delta, &it->second);
}

Status Database::ReplaceTable(const std::string& table,
                              const Table& contents) {
  Json op = Json::MakeObject();
  op.Set("op", "replace_table");
  op.Set("table", table);
  op.Set("contents", contents.ToJson());
  return LogAndApply(op);
}

Status Database::SealTable(const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table '", table, "'"));
  }
  it->second.Seal();
  return Status::OK();
}

void Database::Transaction::Insert(const std::string& table, Row row) {
  Json op = Json::MakeObject();
  op.Set("op", "insert");
  op.Set("table", table);
  op.Set("row", RowToJson(row));
  ops_.push_back(std::move(op));
}

void Database::Transaction::Update(const std::string& table, Row row) {
  Json op = Json::MakeObject();
  op.Set("op", "update");
  op.Set("table", table);
  op.Set("row", RowToJson(row));
  ops_.push_back(std::move(op));
}

void Database::Transaction::UpdateAttribute(const std::string& table, Key key,
                                            std::string attribute,
                                            Value value) {
  Json op = Json::MakeObject();
  op.Set("op", "update_attr");
  op.Set("table", table);
  op.Set("key", RowToJson(key));
  op.Set("attr", attribute);
  op.Set("value", value.ToJson());
  ops_.push_back(std::move(op));
}

void Database::Transaction::Delete(const std::string& table, Key key) {
  Json op = Json::MakeObject();
  op.Set("op", "delete");
  op.Set("table", table);
  op.Set("key", RowToJson(key));
  ops_.push_back(std::move(op));
}

Status Database::Commit(Transaction&& txn) {
  // Validate the whole batch against a scratch copy of the catalog; only a
  // fully valid transaction reaches the WAL and the live tables.
  std::map<std::string, Table> scratch = tables_;
  for (size_t i = 0; i < txn.ops_.size(); ++i) {
    Status s = ApplyOp(txn.ops_[i], &scratch);
    if (!s.ok()) {
      return s.WithPrefix(StrCat("transaction op ", i, " failed; aborted"));
    }
  }
  if (wal_.has_value()) {
    for (const Json& op : txn.ops_) {
      MEDSYNC_RETURN_IF_ERROR(wal_->Append(op).status());
    }
  }
  tables_ = std::move(scratch);
  return Status::OK();
}

Status Database::Checkpoint() {
  if (!wal_.has_value()) return Status::OK();
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("db.checkpoint.before_snapshot"));

  // Phase 1 — stream sealed chunks to their content-addressed files. Only
  // chunks not already on disk are written (an id names its bytes, so an
  // existing file IS the chunk); a steady-state checkpoint therefore writes
  // O(head) bytes, not O(history). Written before the manifest: a crash
  // here leaves unreferenced files, never a manifest pointing at nothing.
  std::string chunks_dir = StrCat(dir_, "/", kChunksDir);
  std::set<std::string> referenced;
  bool wrote_chunk = false;
  for (const auto& [name, table] : tables_) {
    for (const std::shared_ptr<const Chunk>& chunk : table.chunks()) {
      std::string file_name = StrCat(chunk->id(), kChunkSuffix);
      if (!referenced.insert(file_name).second) continue;  // shared content
      std::string path = StrCat(chunks_dir, "/", file_name);
      if (FileExists(path)) continue;
      if (!wrote_chunk) {
        if (::mkdir(chunks_dir.c_str(), 0755) != 0 && errno != EEXIST) {
          return Status::Unavailable(StrCat("cannot create directory '",
                                            chunks_dir,
                                            "': ", std::strerror(errno)));
        }
      }
      MEDSYNC_RETURN_IF_ERROR(
          WriteChunkFile(path, chunk->SerializeFile(/*compress=*/true)));
      wrote_chunk = true;
    }
  }
  if (wrote_chunk) {
    // One directory sync covers every rename of this batch.
    MEDSYNC_RETURN_IF_ERROR(SyncDirectory(chunks_dir));
  }

  // Phase 2 — the manifest: per table, schema + chunk ids + the (small,
  // threshold-bounded) head rows and tombstones as JSON.
  Json tables = Json::MakeObject();
  for (const auto& [name, table] : tables_) {
    Json chunk_ids = Json::MakeArray();
    for (const std::shared_ptr<const Chunk>& chunk : table.chunks()) {
      chunk_ids.Append(chunk->id());
    }
    Json head = Json::MakeArray();
    for (const auto& [key, row] : table.head()) {
      head.Append(RowToJson(row));
    }
    Json tombstones = Json::MakeArray();
    for (const Key& key : table.tombstones()) {
      tombstones.Append(RowToJson(key));
    }
    Json t = Json::MakeObject();
    t.Set("schema", table.schema().ToJson());
    t.Set("chunks", std::move(chunk_ids));
    t.Set("head", std::move(head));
    t.Set("tombstones", std::move(tombstones));
    tables.Set(name, std::move(t));
  }
  Json snapshot = Json::MakeObject();
  snapshot.Set("format", kSnapshotFormatChunked);
  // Everything the WAL has logged so far is applied to tables_, so the
  // snapshot covers the full assigned-LSN prefix. LSNs survive Reset(),
  // which is what keeps this claim true in every crash window: whether the
  // reset below happens or not, replay skips exactly the covered records.
  snapshot.Set("wal_through", static_cast<int64_t>(wal_->next_lsn() - 1));
  snapshot.Set("tables", std::move(tables));
  MEDSYNC_RETURN_IF_ERROR(
      WriteStringToFile(dir_ + "/" + kSnapshotFile, snapshot.Dump()));

  // Phase 3 — GC, only after the manifest rename is durable: delete chunk
  // files the new manifest does not reference (left by compactions, drops,
  // or earlier crashes). Failure here is ignored — stale files cost disk,
  // not correctness, and the next checkpoint retries.
  DIR* d = ::opendir(chunks_dir.c_str());
  if (d != nullptr) {
    std::vector<std::string> doomed;
    while (struct dirent* entry = ::readdir(d)) {
      std::string file_name = entry->d_name;
      if (file_name.size() < sizeof(kChunkSuffix)) continue;  // ".", ".."
      if (referenced.count(file_name) > 0) continue;
      doomed.push_back(std::move(file_name));
    }
    ::closedir(d);
    for (const std::string& file_name : doomed) {
      std::string path = StrCat(chunks_dir, "/", file_name);
      (void)::unlink(path.c_str());
    }
  }

  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("db.checkpoint.before_wal_reset"));
  return wal_->Reset();
}

}  // namespace medsync::relational
