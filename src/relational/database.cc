#include "relational/database.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault_injector.h"
#include "common/strings.h"

namespace medsync::relational {

namespace {

constexpr char kSnapshotFile[] = "snapshot.json";
constexpr char kWalFile[] = "wal.log";

Result<std::string> ReadFileToString(const std::string& path, bool* exists) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *exists = false;
    return std::string();
  }
  *exists = true;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::Unavailable(StrCat("cannot read '", path, "'"));
  }
  return out;
}

/// Atomically replaces `path` with `data`: write to a temp file, fsync the
/// FILE before the rename (otherwise the rename can land while the bytes
/// are still page-cache-only and a machine crash leaves a zero-length
/// snapshot behind a truncated WAL), rename, then fsync the DIRECTORY so
/// the new directory entry itself is durable.
Status WriteStringToFile(const std::string& path, const std::string& data) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable(
        StrCat("cannot write '", tmp, "': ", std::strerror(errno)));
  }
  size_t to_write = data.size();
  size_t keep = 0;
  const bool torn = CheckTornWrite("db.snapshot.write", &keep);
  if (torn && keep < to_write) to_write = keep;
  const char* p = data.data();
  size_t remaining = to_write;
  while (remaining > 0) {
    ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Unavailable(
          StrCat("short write to '", tmp, "': ", std::strerror(errno)));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (torn) {
    ::close(fd);
    return Status::Unavailable(StrCat(
        "fault injected: snapshot write torn after ", to_write, " bytes"));
  }
  Status point = CheckFaultPoint("db.snapshot.file_sync");
  if (!point.ok()) {
    ::close(fd);
    return point;
  }
  bool synced = ::fsync(fd) == 0;
  synced = (::close(fd) == 0) && synced;
  if (!synced) {
    return Status::Unavailable(
        StrCat("cannot sync '", tmp, "': ", std::strerror(errno)));
  }
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("db.snapshot.rename"));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Unavailable(
        StrCat("cannot rename '", tmp, "': ", std::strerror(errno)));
  }
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("db.snapshot.dir_sync"));
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd < 0) {
    return Status::Unavailable(
        StrCat("cannot open directory '", dir, "': ", std::strerror(errno)));
  }
  synced = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  if (!synced) {
    return Status::Unavailable(
        StrCat("cannot sync directory '", dir, "': ", std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

Result<Database> Database::Open(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Unavailable(
        StrCat("cannot create directory '", dir, "': ", std::strerror(errno)));
  }

  Database db;
  db.dir_ = dir;

  // Load snapshot if present. Format 2 records which WAL prefix the
  // snapshot already covers ({"format":2,"wal_through":K,"tables":{...}});
  // a legacy snapshot is the bare tables object and covers nothing.
  uint64_t wal_through = 0;
  bool exists = false;
  MEDSYNC_ASSIGN_OR_RETURN(
      std::string snapshot_text,
      ReadFileToString(dir + "/" + kSnapshotFile, &exists));
  if (exists && !snapshot_text.empty()) {
    MEDSYNC_ASSIGN_OR_RETURN(Json snapshot, Json::Parse(snapshot_text));
    if (!snapshot.is_object()) {
      return Status::Corruption("snapshot is not a JSON object");
    }
    const Json* tables_json = &snapshot;
    if (snapshot.GetInt("format").ok()) {
      MEDSYNC_ASSIGN_OR_RETURN(int64_t through,
                               snapshot.GetInt("wal_through"));
      wal_through = static_cast<uint64_t>(through);
      if (!snapshot.At("tables").is_object()) {
        return Status::Corruption("snapshot has no tables object");
      }
      tables_json = &snapshot.At("tables");
    }
    for (const auto& [name, table_json] : tables_json->AsObject()) {
      MEDSYNC_ASSIGN_OR_RETURN(Table table, Table::FromJson(table_json));
      db.tables_.emplace(name, std::move(table));
    }
  }

  // Replay WAL. Records at or below wal_through are already folded into
  // the snapshot — a crash between the snapshot rename and the WAL reset
  // leaves them in the log, and replaying them (insert, create_table, ...)
  // would fail or double-apply, so they are skipped.
  std::vector<WalRecord> records;
  // The commit path's acknowledgement implies durability, so every logged
  // operation is fdatasync'd before the mutation is applied.
  MEDSYNC_ASSIGN_OR_RETURN(
      Wal wal, Wal::Open(dir + "/" + kWalFile, &records,
                         Wal::Options{.sync_every_append = true}));
  for (const WalRecord& record : records) {
    if (record.lsn <= wal_through) continue;
    Status s = ApplyOp(record.payload, &db.tables_);
    if (!s.ok()) {
      return s.WithPrefix(StrCat("WAL replay failed at LSN ", record.lsn));
    }
  }
  // Even if the log is empty, fresh appends must be numbered above what
  // the snapshot covers, or the next recovery would skip them.
  wal.EnsureNextLsnAtLeast(wal_through + 1);
  db.wal_ = std::move(wal);
  return db;
}

Status Database::ApplyOp(const Json& op, std::map<std::string, Table>* tables) {
  MEDSYNC_ASSIGN_OR_RETURN(std::string kind, op.GetString("op"));

  if (kind == "create_table") {
    MEDSYNC_ASSIGN_OR_RETURN(std::string name, op.GetString("table"));
    if (tables->count(name) > 0) {
      return Status::AlreadyExists(StrCat("table '", name, "' exists"));
    }
    MEDSYNC_ASSIGN_OR_RETURN(Schema schema, Schema::FromJson(op.At("schema")));
    tables->emplace(name, Table(std::move(schema)));
    return Status::OK();
  }
  if (kind == "drop_table") {
    MEDSYNC_ASSIGN_OR_RETURN(std::string name, op.GetString("table"));
    if (tables->erase(name) == 0) {
      return Status::NotFound(StrCat("no table '", name, "'"));
    }
    return Status::OK();
  }

  MEDSYNC_ASSIGN_OR_RETURN(std::string name, op.GetString("table"));
  auto it = tables->find(name);
  if (it == tables->end()) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  Table& table = it->second;

  if (kind == "insert") {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(op.At("row")));
    return table.Insert(std::move(row));
  }
  if (kind == "update") {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(op.At("row")));
    return table.Update(std::move(row));
  }
  if (kind == "upsert") {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(op.At("row")));
    return table.Upsert(std::move(row));
  }
  if (kind == "update_attr") {
    MEDSYNC_ASSIGN_OR_RETURN(Key key, RowFromJson(op.At("key")));
    MEDSYNC_ASSIGN_OR_RETURN(std::string attr, op.GetString("attr"));
    MEDSYNC_ASSIGN_OR_RETURN(Value value, Value::FromJson(op.At("value")));
    return table.UpdateAttribute(key, attr, std::move(value));
  }
  if (kind == "delete") {
    MEDSYNC_ASSIGN_OR_RETURN(Key key, RowFromJson(op.At("key")));
    return table.Delete(key);
  }
  if (kind == "apply_delta") {
    MEDSYNC_ASSIGN_OR_RETURN(TableDelta delta,
                             TableDelta::FromJson(op.At("delta")));
    return ApplyDelta(delta, &table);
  }
  if (kind == "replace_table") {
    MEDSYNC_ASSIGN_OR_RETURN(Table contents,
                             Table::FromJson(op.At("contents")));
    if (contents.schema() != table.schema()) {
      return Status::InvalidArgument(
          StrCat("replace_table schema mismatch for '", name, "'"));
    }
    table = std::move(contents);
    return Status::OK();
  }
  return Status::InvalidArgument(StrCat("unknown database op '", kind, "'"));
}

Status Database::LogAndApply(const Json& op) {
  // Validate against a scratch application first when the op could fail,
  // so the WAL never records a failing operation. Cheap ops are validated
  // by running them on a copy of just the affected table.
  std::map<std::string, Table> scratch;
  auto name_result = op.GetString("table");
  if (name_result.ok()) {
    auto it = tables_.find(*name_result);
    if (it != tables_.end()) scratch.emplace(it->first, it->second);
  }
  MEDSYNC_RETURN_IF_ERROR(ApplyOp(op, &scratch));

  if (wal_.has_value()) {
    MEDSYNC_RETURN_IF_ERROR(wal_->Append(op).status());
  }
  // Commit the validated result.
  for (auto& [name, table] : scratch) {
    tables_[name] = std::move(table);
  }
  // Handle drops (scratch application erased the entry).
  auto kind = op.GetString("op");
  if (kind.ok() && *kind == "drop_table" && name_result.ok()) {
    tables_.erase(*name_result);
  }
  return Status::OK();
}

Status Database::CreateTable(const std::string& name, const Schema& schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("table '", name, "' exists"));
  }
  Json op = Json::MakeObject();
  op.Set("op", "create_table");
  op.Set("table", name);
  op.Set("schema", schema.ToJson());
  if (wal_.has_value()) {
    MEDSYNC_RETURN_IF_ERROR(wal_->Append(op).status());
  }
  tables_.emplace(name, Table(schema));
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.count(name) == 0) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  Json op = Json::MakeObject();
  op.Set("op", "drop_table");
  op.Set("table", name);
  if (wal_.has_value()) {
    MEDSYNC_RETURN_IF_ERROR(wal_->Append(op).status());
  }
  tables_.erase(name);
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  return &it->second;
}

Result<Table> Database::Snapshot(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  return it->second;
}

Status Database::Insert(const std::string& table, Row row) {
  Json op = Json::MakeObject();
  op.Set("op", "insert");
  op.Set("table", table);
  op.Set("row", RowToJson(row));
  return LogAndApply(op);
}

Status Database::Update(const std::string& table, Row row) {
  Json op = Json::MakeObject();
  op.Set("op", "update");
  op.Set("table", table);
  op.Set("row", RowToJson(row));
  return LogAndApply(op);
}

Status Database::Upsert(const std::string& table, Row row) {
  Json op = Json::MakeObject();
  op.Set("op", "upsert");
  op.Set("table", table);
  op.Set("row", RowToJson(row));
  return LogAndApply(op);
}

Status Database::UpdateAttribute(const std::string& table, const Key& key,
                                 const std::string& attribute, Value value) {
  Json op = Json::MakeObject();
  op.Set("op", "update_attr");
  op.Set("table", table);
  op.Set("key", RowToJson(key));
  op.Set("attr", attribute);
  op.Set("value", value.ToJson());
  return LogAndApply(op);
}

Status Database::Delete(const std::string& table, const Key& key) {
  Json op = Json::MakeObject();
  op.Set("op", "delete");
  op.Set("table", table);
  op.Set("key", RowToJson(key));
  return LogAndApply(op);
}

Status Database::ApplyTableDelta(const std::string& table,
                                 const TableDelta& delta) {
  // The cascade hot loop: bypass LogAndApply's scratch copy of the whole
  // table and validate read-only against the live one — the op itself is
  // O(|delta| log n) and ApplyDelta is all-or-nothing anyway.
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table '", table, "'"));
  }
  if (delta.empty()) return Status::OK();  // no WAL record for a no-op
  MEDSYNC_RETURN_IF_ERROR(ValidateDelta(delta, it->second));
  Json op = Json::MakeObject();
  op.Set("op", "apply_delta");
  op.Set("table", table);
  op.Set("delta", delta.ToJson());
  if (wal_.has_value()) {
    MEDSYNC_RETURN_IF_ERROR(wal_->Append(op).status());
  }
  return ApplyDelta(delta, &it->second);
}

Status Database::ReplaceTable(const std::string& table,
                              const Table& contents) {
  Json op = Json::MakeObject();
  op.Set("op", "replace_table");
  op.Set("table", table);
  op.Set("contents", contents.ToJson());
  return LogAndApply(op);
}

void Database::Transaction::Insert(const std::string& table, Row row) {
  Json op = Json::MakeObject();
  op.Set("op", "insert");
  op.Set("table", table);
  op.Set("row", RowToJson(row));
  ops_.push_back(std::move(op));
}

void Database::Transaction::Update(const std::string& table, Row row) {
  Json op = Json::MakeObject();
  op.Set("op", "update");
  op.Set("table", table);
  op.Set("row", RowToJson(row));
  ops_.push_back(std::move(op));
}

void Database::Transaction::UpdateAttribute(const std::string& table, Key key,
                                            std::string attribute,
                                            Value value) {
  Json op = Json::MakeObject();
  op.Set("op", "update_attr");
  op.Set("table", table);
  op.Set("key", RowToJson(key));
  op.Set("attr", attribute);
  op.Set("value", value.ToJson());
  ops_.push_back(std::move(op));
}

void Database::Transaction::Delete(const std::string& table, Key key) {
  Json op = Json::MakeObject();
  op.Set("op", "delete");
  op.Set("table", table);
  op.Set("key", RowToJson(key));
  ops_.push_back(std::move(op));
}

Status Database::Commit(Transaction&& txn) {
  // Validate the whole batch against a scratch copy of the catalog; only a
  // fully valid transaction reaches the WAL and the live tables.
  std::map<std::string, Table> scratch = tables_;
  for (size_t i = 0; i < txn.ops_.size(); ++i) {
    Status s = ApplyOp(txn.ops_[i], &scratch);
    if (!s.ok()) {
      return s.WithPrefix(StrCat("transaction op ", i, " failed; aborted"));
    }
  }
  if (wal_.has_value()) {
    for (const Json& op : txn.ops_) {
      MEDSYNC_RETURN_IF_ERROR(wal_->Append(op).status());
    }
  }
  tables_ = std::move(scratch);
  return Status::OK();
}

Status Database::Checkpoint() {
  if (!wal_.has_value()) return Status::OK();
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("db.checkpoint.before_snapshot"));
  Json tables = Json::MakeObject();
  for (const auto& [name, table] : tables_) {
    tables.Set(name, table.ToJson());
  }
  Json snapshot = Json::MakeObject();
  snapshot.Set("format", static_cast<int64_t>(2));
  // Everything the WAL has logged so far is applied to tables_, so the
  // snapshot covers the full assigned-LSN prefix. LSNs survive Reset(),
  // which is what keeps this claim true in every crash window: whether the
  // reset below happens or not, replay skips exactly the covered records.
  snapshot.Set("wal_through", static_cast<int64_t>(wal_->next_lsn() - 1));
  snapshot.Set("tables", std::move(tables));
  MEDSYNC_RETURN_IF_ERROR(
      WriteStringToFile(dir_ + "/" + kSnapshotFile, snapshot.Dump()));
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("db.checkpoint.before_wal_reset"));
  return wal_->Reset();
}

}  // namespace medsync::relational
