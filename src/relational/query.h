#ifndef MEDSYNC_RELATIONAL_QUERY_H_
#define MEDSYNC_RELATIONAL_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/predicate.h"
#include "relational/table.h"

namespace medsync::relational {

/// Relational-algebra operators producing new tables. These are the query
/// primitives the paper's "view tables derived by querying a few but not all
/// attributes on the base table" relies on; the BX module builds its lenses
/// on top of them.

/// π: keeps `attributes` (in the given order). The projected table is keyed
/// by `key_attributes` (which must be among `attributes`). Duplicate result
/// rows collapse only if they agree on the key; two distinct rows mapping to
/// the same key is an error (the projection would not be well-defined as a
/// keyed relation).
Result<Table> Project(const Table& input,
                      const std::vector<std::string>& attributes,
                      const std::vector<std::string>& key_attributes);

/// σ: rows of `input` satisfying `predicate`. Keeps schema and key.
Result<Table> Select(const Table& input, const Predicate::Ptr& predicate);

/// ρ: renames attributes. `renames` maps old name -> new name; attributes
/// not mentioned keep their names. Key attribute names are renamed too.
Result<Table> Rename(
    const Table& input,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// ⋈: natural join on the shared attribute names. The result schema is
/// left's attributes followed by right's non-shared attributes; the key is
/// the union of both keys (deduplicated). Shared attributes must have equal
/// types.
Result<Table> NaturalJoin(const Table& left, const Table& right);

/// Union of two tables with identical schemas; key collisions with unequal
/// rows are an error.
Result<Table> Union(const Table& left, const Table& right);

/// Rows of `left` whose keys are absent from `right` (schemas must match).
Result<Table> Difference(const Table& left, const Table& right);

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_QUERY_H_
