#include "relational/query.h"

#include <map>
#include <set>

#include "common/strings.h"
#include "relational/chunk.h"

namespace medsync::relational {

namespace {

bool CompareWith(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

/// Column-at-a-time predicate evaluation over one sealed chunk, writing one
/// match byte per row into `out` (resized by the caller). Semantics match
/// Predicate::Evaluate row-for-row: comparisons involving NULL are false,
/// and cross-type comparisons order by type index first — which for a typed
/// column means every non-NULL cell compares the same way, a per-chunk
/// constant. String comparisons run once per dictionary entry and are then
/// mapped through the codes.
Status EvaluateOnChunk(const Predicate& pred, const Schema& schema,
                       const Chunk& chunk, std::vector<uint8_t>* out) {
  const size_t n = chunk.row_count();
  switch (pred.kind()) {
    case Predicate::Kind::kTrue:
      std::fill(out->begin(), out->end(), 1);
      return Status::OK();
    case Predicate::Kind::kIsNull: {
      std::optional<size_t> idx = schema.IndexOf(pred.attribute());
      if (!idx.has_value()) {
        return Status::NotFound(StrCat(
            "predicate references unknown attribute '", pred.attribute(),
            "'"));
      }
      const Chunk::Column& col = chunk.column(*idx);
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = (col.type == DataType::kNull || col.IsNull(i)) ? 1 : 0;
      }
      return Status::OK();
    }
    case Predicate::Kind::kCompare: {
      std::optional<size_t> idx = schema.IndexOf(pred.attribute());
      if (!idx.has_value()) {
        return Status::NotFound(StrCat(
            "predicate references unknown attribute '", pred.attribute(),
            "'"));
      }
      const Chunk::Column& col = chunk.column(*idx);
      const Value& lit = pred.literal();
      if (lit.is_null() || col.type == DataType::kNull) {
        std::fill(out->begin(), out->end(), 0);
        return Status::OK();
      }
      const CompareOp op = pred.op();
      if (col.type != lit.type()) {
        // Cross-type: every non-NULL cell of this column compares to the
        // literal by type index alone.
        const uint8_t pass = CompareWith(
            op, Cmp(static_cast<int>(col.type), static_cast<int>(lit.type())))
                ? 1
                : 0;
        for (size_t i = 0; i < n; ++i) {
          (*out)[i] = col.IsNull(i) ? 0 : pass;
        }
        return Status::OK();
      }
      switch (col.type) {
        case DataType::kBool: {
          const bool b = lit.AsBool();
          for (size_t i = 0; i < n; ++i) {
            (*out)[i] = !col.IsNull(i) &&
                        CompareWith(op, Cmp(col.bools[i] != 0, b));
          }
          return Status::OK();
        }
        case DataType::kInt: {
          const int64_t v = lit.AsInt();
          for (size_t i = 0; i < n; ++i) {
            (*out)[i] = !col.IsNull(i) && CompareWith(op, Cmp(col.ints[i], v));
          }
          return Status::OK();
        }
        case DataType::kDouble: {
          const double v = lit.AsDouble();
          for (size_t i = 0; i < n; ++i) {
            (*out)[i] =
                !col.IsNull(i) && CompareWith(op, Cmp(col.doubles[i], v));
          }
          return Status::OK();
        }
        case DataType::kString: {
          const std::string& v = lit.AsString();
          std::vector<uint8_t> dict_pass(col.dict.size());
          for (size_t d = 0; d < col.dict.size(); ++d) {
            dict_pass[d] = CompareWith(op, Cmp(col.dict[d], v)) ? 1 : 0;
          }
          for (size_t i = 0; i < n; ++i) {
            (*out)[i] = !col.IsNull(i) && dict_pass[col.codes[i]];
          }
          return Status::OK();
        }
        case DataType::kNull:
          break;
      }
      return Status::Internal("unhandled column type");
    }
    case Predicate::Kind::kAnd: {
      std::vector<uint8_t> rhs(n);
      MEDSYNC_RETURN_IF_ERROR(
          EvaluateOnChunk(*pred.left(), schema, chunk, out));
      MEDSYNC_RETURN_IF_ERROR(
          EvaluateOnChunk(*pred.right(), schema, chunk, &rhs));
      for (size_t i = 0; i < n; ++i) (*out)[i] &= rhs[i];
      return Status::OK();
    }
    case Predicate::Kind::kOr: {
      std::vector<uint8_t> rhs(n);
      MEDSYNC_RETURN_IF_ERROR(
          EvaluateOnChunk(*pred.left(), schema, chunk, out));
      MEDSYNC_RETURN_IF_ERROR(
          EvaluateOnChunk(*pred.right(), schema, chunk, &rhs));
      for (size_t i = 0; i < n; ++i) (*out)[i] |= rhs[i];
      return Status::OK();
    }
    case Predicate::Kind::kNot:
      MEDSYNC_RETURN_IF_ERROR(
          EvaluateOnChunk(*pred.left(), schema, chunk, out));
      for (size_t i = 0; i < n; ++i) (*out)[i] ^= 1;
      return Status::OK();
  }
  return Status::Internal("unhandled predicate kind");
}

}  // namespace

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& attributes,
                      const std::vector<std::string>& key_attributes) {
  const Schema& in_schema = input.schema();
  std::vector<AttributeDef> out_attrs;
  std::vector<size_t> indices;
  for (const std::string& name : attributes) {
    std::optional<size_t> idx = in_schema.IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound(
          StrCat("projection references unknown attribute '", name, "'"));
    }
    out_attrs.push_back(in_schema.attributes()[*idx]);
    indices.push_back(*idx);
  }
  // A projected view keyed by `key_attributes` requires those attributes to
  // be non-null in every row, so the view schema tightens them even when
  // the source column was nullable (a NULL there fails row validation,
  // which is the correct error).
  for (AttributeDef& attr : out_attrs) {
    for (const std::string& key : key_attributes) {
      if (attr.name == key) attr.nullable = false;
    }
  }
  MEDSYNC_ASSIGN_OR_RETURN(Schema out_schema,
                           Schema::Create(out_attrs, key_attributes));

  Table out(out_schema);
  for (const auto& [key, row] : input.scan()) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(row[idx]);

    Key out_key = KeyOf(out_schema, projected);
    std::optional<Row> existing = out.Get(out_key);
    if (existing.has_value()) {
      if (*existing != projected) {
        return Status::Conflict(
            StrCat("projection is not key-functional: key ",
                   RowToString(out_key), " maps to two distinct rows"));
      }
      continue;  // duplicate identical row collapses
    }
    MEDSYNC_RETURN_IF_ERROR(out.Insert(std::move(projected)));
  }
  return out;
}

Result<Table> Select(const Table& input, const Predicate::Ptr& predicate) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("selection predicate must not be null");
  }
  MEDSYNC_RETURN_IF_ERROR(predicate->Validate(input.schema()));
  Table out(input.schema());
  // Sealed chunks take the vectorized path: predicate → per-row match bytes
  // evaluated column-at-a-time, then only matching live rows materialize.
  std::vector<uint8_t> matches;
  for (const auto& chunk : input.chunks()) {
    matches.assign(chunk->row_count(), 0);
    MEDSYNC_RETURN_IF_ERROR(
        EvaluateOnChunk(*predicate, input.schema(), *chunk, &matches));
    for (size_t i = 0; i < chunk->row_count(); ++i) {
      if (matches[i] && input.ChunkRowIsLive(*chunk, i)) {
        MEDSYNC_RETURN_IF_ERROR(out.Insert(chunk->RowAt(i)));
      }
    }
  }
  for (const auto& [key, row] : input.head()) {
    MEDSYNC_ASSIGN_OR_RETURN(bool keep,
                             predicate->Evaluate(input.schema(), row));
    if (keep) MEDSYNC_RETURN_IF_ERROR(out.Insert(row));
  }
  return out;
}

Result<Table> Rename(
    const Table& input,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  const Schema& in_schema = input.schema();
  std::map<std::string, std::string> mapping;
  for (const auto& [from, to] : renames) {
    if (!in_schema.HasAttribute(from)) {
      return Status::NotFound(
          StrCat("rename references unknown attribute '", from, "'"));
    }
    if (!mapping.emplace(from, to).second) {
      return Status::InvalidArgument(
          StrCat("attribute '", from, "' renamed twice"));
    }
  }

  std::vector<AttributeDef> out_attrs;
  for (const AttributeDef& attr : in_schema.attributes()) {
    AttributeDef def = attr;
    auto it = mapping.find(attr.name);
    if (it != mapping.end()) def.name = it->second;
    out_attrs.push_back(std::move(def));
  }
  std::vector<std::string> out_keys;
  for (const std::string& key : in_schema.key_attributes()) {
    auto it = mapping.find(key);
    out_keys.push_back(it != mapping.end() ? it->second : key);
  }
  MEDSYNC_ASSIGN_OR_RETURN(Schema out_schema,
                           Schema::Create(out_attrs, out_keys));
  Table out(out_schema);
  for (const auto& [key, row] : input.scan()) {
    MEDSYNC_RETURN_IF_ERROR(out.Insert(row));
  }
  return out;
}

Result<Table> NaturalJoin(const Table& left, const Table& right) {
  const Schema& ls = left.schema();
  const Schema& rs = right.schema();

  // Shared attributes, in left order.
  std::vector<std::pair<size_t, size_t>> shared;  // (left idx, right idx)
  for (size_t i = 0; i < ls.attribute_count(); ++i) {
    std::optional<size_t> j = rs.IndexOf(ls.attributes()[i].name);
    if (!j.has_value()) continue;
    if (ls.attributes()[i].type != rs.attributes()[*j].type) {
      return Status::InvalidArgument(
          StrCat("join attribute '", ls.attributes()[i].name,
                 "' has mismatched types"));
    }
    shared.emplace_back(i, *j);
  }
  if (shared.empty()) {
    return Status::InvalidArgument("natural join with no shared attributes");
  }

  std::vector<AttributeDef> out_attrs = ls.attributes();
  std::vector<size_t> right_extra;
  for (size_t j = 0; j < rs.attribute_count(); ++j) {
    if (!ls.HasAttribute(rs.attributes()[j].name)) {
      out_attrs.push_back(rs.attributes()[j]);
      right_extra.push_back(j);
    }
  }

  std::vector<std::string> out_keys = ls.key_attributes();
  for (const std::string& key : rs.key_attributes()) {
    bool present = false;
    for (const std::string& existing : out_keys) {
      if (existing == key) {
        present = true;
        break;
      }
    }
    if (!present) out_keys.push_back(key);
  }
  // Key attributes of the joined relation must be non-nullable even if the
  // corresponding column was nullable on one side (same tightening rule as
  // projection).
  for (AttributeDef& attr : out_attrs) {
    for (const std::string& key : out_keys) {
      if (attr.name == key) attr.nullable = false;
    }
  }
  MEDSYNC_ASSIGN_OR_RETURN(Schema out_schema,
                           Schema::Create(out_attrs, out_keys));

  Table out(out_schema);
  for (const auto& [lkey, lrow] : left.scan()) {
    for (const auto& [rkey, rrow] : right.scan()) {
      bool match = true;
      for (const auto& [li, ri] : shared) {
        if (lrow[li] != rrow[ri]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      Row joined = lrow;
      for (size_t j : right_extra) joined.push_back(rrow[j]);
      MEDSYNC_RETURN_IF_ERROR(out.Upsert(std::move(joined)));
    }
  }
  return out;
}

Result<Table> Union(const Table& left, const Table& right) {
  if (left.schema() != right.schema()) {
    return Status::InvalidArgument("union requires identical schemas");
  }
  Table out = left;
  for (const auto& [key, row] : right.scan()) {
    std::optional<Row> existing = out.Get(key);
    if (existing.has_value()) {
      if (*existing != row) {
        return Status::Conflict(
            StrCat("union key collision with unequal rows at ",
                   RowToString(key)));
      }
      continue;
    }
    MEDSYNC_RETURN_IF_ERROR(out.Insert(row));
  }
  return out;
}

Result<Table> Difference(const Table& left, const Table& right) {
  if (left.schema() != right.schema()) {
    return Status::InvalidArgument("difference requires identical schemas");
  }
  Table out(left.schema());
  for (const auto& [key, row] : left.scan()) {
    if (!right.Contains(key)) {
      MEDSYNC_RETURN_IF_ERROR(out.Insert(row));
    }
  }
  return out;
}

}  // namespace medsync::relational
