#include "relational/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault_injector.h"
#include "common/strings.h"

namespace medsync::relational {

namespace {

}  // namespace

Result<Wal> Wal::Open(std::string path, std::vector<WalRecord>* recovered,
                      Options options) {
  if (recovered) recovered->clear();

  uint64_t next_lsn = 1;
  uint64_t recovered_count = 0;
  long valid_end = 0;
  bool needs_truncate = false;
  Status corruption;  // non-OK when a complete record fails validation

  // Recover: scan existing content line by line. Only a torn tail — a final
  // record with no '\n' terminator, which is exactly what an interrupted
  // append leaves behind (the newline is the last byte written) — may be
  // truncated away. A COMPLETE line that fails any validity check is bit rot
  // or tampering, not a crash artifact; silently cutting the log there would
  // also drop every valid record after it, so it is a hard Corruption error
  // no matter where in the file it sits.
  FILE* in = std::fopen(path.c_str(), "rb");
  if (in != nullptr) {
    std::string line;
    int c;
    uint64_t line_no = 0;
    auto corrupt = [&](std::string_view what) {
      corruption = Status::Corruption(
          StrCat("WAL '", path, "' record ", line_no, ": ", what));
    };
    while (true) {
      line.clear();
      ++line_no;
      while ((c = std::fgetc(in)) != EOF && c != '\n') {
        line.push_back(static_cast<char>(c));
      }
      bool has_newline = (c == '\n');
      if (line.empty() && !has_newline) break;  // clean EOF
      if (!has_newline) {
        // Torn tail: record without terminator.
        needs_truncate = true;
        break;
      }
      // Parse "<crc-hex> <len> <body>" where body is "<lsn> <payload>"
      // (current format) or bare "<payload>" (legacy, pre-LSN files).
      size_t sp1 = line.find(' ');
      size_t sp2 = (sp1 == std::string::npos) ? std::string::npos
                                              : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) {
        corrupt("malformed header");
        break;
      }
      std::string crc_hex = line.substr(0, sp1);
      std::string len_str = line.substr(sp1 + 1, sp2 - sp1 - 1);
      std::string body = line.substr(sp2 + 1);
      char* end = nullptr;
      unsigned long long expect_len = std::strtoull(len_str.c_str(), &end, 10);
      if (end != len_str.c_str() + len_str.size() ||
          expect_len != body.size()) {
        corrupt("length mismatch");
        break;
      }
      char crc_buf[16];
      std::snprintf(crc_buf, sizeof(crc_buf), "%08x", Crc32(body));
      if (crc_hex != crc_buf) {
        corrupt("checksum mismatch");
        break;
      }
      // A JSON payload never starts with a digit, so an LSN prefix is
      // unambiguous.
      uint64_t lsn = 0;
      std::string payload;
      size_t body_sp = line.npos;
      if (!body.empty() && body[0] >= '0' && body[0] <= '9' &&
          (body_sp = body.find(' ')) != std::string::npos) {
        std::string lsn_str = body.substr(0, body_sp);
        end = nullptr;
        lsn = std::strtoull(lsn_str.c_str(), &end, 10);
        if (end != lsn_str.c_str() + lsn_str.size()) {
          corrupt("unparseable LSN");
          break;
        }
        payload = body.substr(body_sp + 1);
      } else {
        lsn = next_lsn;  // legacy record: assign sequentially
        payload = std::move(body);
      }
      if (lsn < next_lsn) {
        // LSNs must be strictly increasing; a regression means corruption.
        corrupt("LSN regression");
        break;
      }
      auto parsed = Json::Parse(payload);
      if (!parsed.ok()) {
        corrupt("unparseable payload");
        break;
      }
      if (recovered) {
        recovered->push_back(WalRecord{lsn, std::move(parsed).value()});
      }
      next_lsn = lsn + 1;
      ++recovered_count;
      valid_end = std::ftell(in);
    }
    std::fclose(in);
  }
  if (!corruption.ok()) return corruption;

  int flags = O_WRONLY | O_CREAT | (needs_truncate ? 0 : O_APPEND);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::Unavailable(
        StrCat("cannot open WAL '", path, "': ", std::strerror(errno)));
  }
  if (needs_truncate) {
    if (::ftruncate(fd, valid_end) != 0) {
      ::close(fd);
      return Status::Unavailable(
          StrCat("cannot truncate WAL '", path, "': ", std::strerror(errno)));
    }
    if (::lseek(fd, 0, SEEK_END) < 0) {
      ::close(fd);
      return Status::Unavailable(StrCat("cannot seek WAL '", path, "'"));
    }
  }

  Wal wal;
  wal.path_ = std::move(path);
  wal.fd_ = fd;
  wal.next_lsn_ = next_lsn;
  wal.options_ = options;
  wal.stats_.recovered_records = recovered_count;
  wal.stats_.truncations = needs_truncate ? 1 : 0;
  return wal;
}

Wal::Wal(Wal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      next_lsn_(other.next_lsn_),
      options_(other.options_),
      stats_(other.stats_),
      appends_counter_(other.appends_counter_),
      append_bytes_counter_(other.append_bytes_counter_),
      syncs_counter_(other.syncs_counter_),
      resets_counter_(other.resets_counter_) {
  other.fd_ = -1;
}

Wal& Wal::operator=(Wal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    next_lsn_ = other.next_lsn_;
    options_ = other.options_;
    stats_ = other.stats_;
    appends_counter_ = other.appends_counter_;
    append_bytes_counter_ = other.append_bytes_counter_;
    syncs_counter_ = other.syncs_counter_;
    resets_counter_ = other.resets_counter_;
    other.fd_ = -1;
  }
  return *this;
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> Wal::Append(const Json& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL not open");
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("wal.append.before_write"));
  std::string body = StrCat(next_lsn_, " ", payload.Dump());
  char header[32];
  std::snprintf(header, sizeof(header), "%08x %zu ", Crc32(body), body.size());
  std::string record = StrCat(header, body, "\n");
  size_t to_write = record.size();
  size_t keep = 0;
  const bool torn = CheckTornWrite("wal.append.write", &keep);
  if (torn && keep < to_write) to_write = keep;
  const char* data = record.data();
  size_t remaining = to_write;
  while (remaining > 0) {
    ssize_t n = ::write(fd_, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(
          StrCat("WAL write failed: ", std::strerror(errno)));
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  if (torn) {
    return Status::Unavailable(
        StrCat("fault injected: WAL append torn after ", to_write, " bytes"));
  }
  ++stats_.appends;
  stats_.append_bytes += record.size();
  metrics::Inc(appends_counter_);
  metrics::Inc(append_bytes_counter_, record.size());
  if (options_.sync_every_append) {
    MEDSYNC_RETURN_IF_ERROR(Sync());
  }
  // The record is durable here; a kill at this point models a process that
  // died between logging a mutation and applying it.
  uint64_t lsn = next_lsn_++;
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("wal.append.after_write"));
  return lsn;
}

Status Wal::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL not open");
  if (::fdatasync(fd_) != 0) {
    return Status::Unavailable(
        StrCat("WAL sync failed: ", std::strerror(errno)));
  }
  ++stats_.syncs;
  metrics::Inc(syncs_counter_);
  return Status::OK();
}

Status Wal::Reset() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL not open");
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("wal.reset.before"));
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::Unavailable(
        StrCat("WAL reset failed: ", std::strerror(errno)));
  }
  // next_lsn_ deliberately survives the truncation: LSNs are a monotonic
  // history position, not a file offset, so a checkpoint's "covers through
  // LSN K" claim stays true for every record appended afterwards.
  ++stats_.resets;
  metrics::Inc(resets_counter_);
  if (options_.sync_every_append) {
    // The truncation itself must be durable, or a crash could resurrect
    // pre-checkpoint records on top of the fresh snapshot.
    MEDSYNC_RETURN_IF_ERROR(Sync());
  }
  return Status::OK();
}

void Wal::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    appends_counter_ = append_bytes_counter_ = syncs_counter_ =
        resets_counter_ = nullptr;
    return;
  }
  appends_counter_ = registry->GetCounter("wal.appends");
  append_bytes_counter_ = registry->GetCounter("wal.append_bytes");
  syncs_counter_ = registry->GetCounter("wal.syncs");
  resets_counter_ = registry->GetCounter("wal.resets");
  // Recovery happened inside Open, before a registry could be attached;
  // flush those one-time counts now.
  registry->GetCounter("wal.recoveries")->Increment();
  registry->GetCounter("wal.recovered_records")
      ->Increment(stats_.recovered_records);
  registry->GetCounter("wal.truncations")->Increment(stats_.truncations);
}

}  // namespace medsync::relational
