#ifndef MEDSYNC_RELATIONAL_DELTA_H_
#define MEDSYNC_RELATIONAL_DELTA_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "relational/table.h"

namespace medsync::relational {

/// A keyed row-level difference between two versions of a table with the
/// same schema. Deltas are what sharing peers actually transfer after an
/// update is approved on-chain (step 4/10 of the paper's Fig. 5 "fetch this
/// update on shared data"): instead of re-sending the whole view, the
/// provider ships the delta and the receiver applies it.
struct TableDelta {
  /// Rows present in `after` but not `before`.
  std::vector<Row> inserts;
  /// Keys present in `before` but not `after`.
  std::vector<Key> deletes;
  /// Rows whose key exists in both but whose content changed (the `after`
  /// version is stored).
  std::vector<Row> updates;

  bool empty() const {
    return inserts.empty() && deletes.empty() && updates.empty();
  }
  size_t size() const {
    return inserts.size() + deletes.size() + updates.size();
  }

  Json ToJson() const;
  /// Parses a delta. A missing "inserts"/"deletes"/"updates" field is
  /// treated as an empty array (senders may omit empty sections); a
  /// present field of any non-array type is an error.
  static Result<TableDelta> FromJson(const Json& json);
};

/// Computes the delta taking `before` to `after`. Schemas must be equal.
Result<TableDelta> ComputeDelta(const Table& before, const Table& after);

/// Checks that `delta` would apply cleanly to `table` without mutating it.
/// The check models the apply ORDER (deletes, then inserts, then updates):
/// inserts are validated against the post-delete keyset, so a delta that
/// deletes key K and re-inserts a row at K (key reassignment) is legal;
/// updates may target surviving or freshly inserted keys. Duplicate keys
/// within any one of the three sections are rejected — they would make
/// application order-dependent.
Status ValidateDelta(const TableDelta& delta, const Table& table);

/// Applies `delta` to `table` in place, deletes first, then inserts, then
/// updates. Runs ValidateDelta up front, so application is all-or-nothing:
/// a rejected delta leaves `table` untouched.
Status ApplyDelta(const TableDelta& delta, Table* table);

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_DELTA_H_
