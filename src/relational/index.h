#ifndef MEDSYNC_RELATIONAL_INDEX_H_
#define MEDSYNC_RELATIONAL_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/predicate.h"
#include "relational/table.h"

namespace medsync::relational {

/// An immutable secondary index over one attribute of a table snapshot:
/// value -> primary keys of the rows holding it, in sorted order. Built
/// once (O(n log n)), then equality and range probes are O(log n + hits)
/// instead of a full scan.
///
/// Tables are value types that peers copy and replace wholesale, so the
/// index is a companion object over a specific snapshot rather than a
/// maintained structure inside Table; rebuild it after replacing the
/// table (the usual pattern: index the stable source, not the fast-moving
/// shared views). `bench_storage` quantifies scan-vs-probe.
class SecondaryIndex {
 public:
  /// Builds the index on `attribute` of `table`. NULL cells are indexed
  /// under the NULL value (retrievable via LookupNull).
  static Result<SecondaryIndex> Build(const Table& table,
                                      const std::string& attribute);

  const std::string& attribute() const { return attribute_; }
  size_t distinct_values() const { return entries_.size(); }

  /// Primary keys of rows whose indexed attribute equals `value`.
  std::vector<Key> Lookup(const Value& value) const;
  std::vector<Key> LookupNull() const { return Lookup(Value::Null()); }

  /// Primary keys of rows with `lo` <= value <= `hi` (non-null values
  /// only), in value order.
  std::vector<Key> LookupRange(const Value& lo, const Value& hi) const;

  /// Convenience: materializes the matching rows from `table` (which must
  /// be the snapshot the index was built on, or at least contain the
  /// keys). Rows whose key vanished are skipped.
  Table MaterializeEquals(const Table& table, const Value& value) const;

 private:
  SecondaryIndex() = default;

  std::string attribute_;
  std::map<Value, std::vector<Key>> entries_;
};

/// Equality selection accelerated by `index`; equivalent to
/// Select(table, attribute == value) on the snapshot the index covers.
Result<Table> IndexedSelectEquals(const Table& table,
                                  const SecondaryIndex& index,
                                  const Value& value);

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_INDEX_H_
