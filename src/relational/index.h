#ifndef MEDSYNC_RELATIONAL_INDEX_H_
#define MEDSYNC_RELATIONAL_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/delta.h"
#include "relational/predicate.h"
#include "relational/table.h"

namespace medsync::relational {

/// A secondary index over one attribute of a table snapshot: value ->
/// primary keys of the rows holding it, in sorted order. Built once
/// (O(n log n)), then equality and range probes are O(log n + hits)
/// instead of a full scan.
///
/// Tables are value types, so the index is a companion object over a
/// specific snapshot rather than a maintained structure inside Table.
/// After the table changes, either rebuild, or — when the change is
/// available as a TableDelta — keep the index current with ApplyDelta,
/// O(|delta| log n) instead of O(n log n). `bench_storage` quantifies
/// scan-vs-probe and rebuild-vs-delta.
///
/// NULL semantics: NULL cells are indexed under the NULL value and are
/// reachable ONLY through Lookup/LookupNull. Range scans never match
/// NULL: a NULL-valued entry is not "between" any two values, and a NULL
/// bound makes the range itself undefined, so LookupRange returns no
/// rows when either bound is NULL.
class SecondaryIndex {
 public:
  /// Builds the index on `attribute` of `table`.
  static Result<SecondaryIndex> Build(const Table& table,
                                      const std::string& attribute);

  const std::string& attribute() const { return attribute_; }
  size_t distinct_values() const { return entries_.size(); }

  /// Primary keys of rows whose indexed attribute equals `value`, in key
  /// order. The reference stays valid until the index is next mutated.
  const std::vector<Key>& Lookup(const Value& value) const;
  const std::vector<Key>& LookupNull() const { return Lookup(Value::Null()); }

  /// Primary keys of rows with `lo` <= value <= `hi`, in value order.
  /// NULL never matches a range scan: NULL-valued entries are skipped,
  /// and a NULL `lo` or `hi` yields an empty result (see class comment).
  std::vector<Key> LookupRange(const Value& lo, const Value& hi) const;

  /// Incrementally maintains the index across `delta`. `before` must be
  /// the snapshot the index currently covers (old values of deleted and
  /// updated rows are looked up in it); afterwards the index matches the
  /// post-delta table exactly, as if freshly built. Fails without
  /// modification if `before` is missing a row the delta touches — the
  /// index would be out of sync with its snapshot.
  Status ApplyDelta(const Table& before, const TableDelta& delta);

  /// Convenience: materializes the matching rows from `table` (which must
  /// be the snapshot the index covers, or at least contain the keys).
  /// Rows whose key vanished are skipped.
  Table MaterializeEquals(const Table& table, const Value& value) const;

 private:
  SecondaryIndex() = default;

  std::string attribute_;
  std::map<Value, std::vector<Key>> entries_;
};

/// Equality selection accelerated by `index`; equivalent to
/// Select(table, attribute == value) on the snapshot the index covers.
Result<Table> IndexedSelectEquals(const Table& table,
                                  const SecondaryIndex& index,
                                  const Value& value);

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_INDEX_H_
