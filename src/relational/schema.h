#ifndef MEDSYNC_RELATIONAL_SCHEMA_H_
#define MEDSYNC_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "relational/value.h"

namespace medsync::relational {

/// One column definition.
struct AttributeDef {
  std::string name;
  DataType type = DataType::kString;
  bool nullable = true;

  friend bool operator==(const AttributeDef& a, const AttributeDef& b) {
    return a.name == b.name && a.type == b.type && a.nullable == b.nullable;
  }
};

/// A relation schema: an ordered list of attributes plus the names of the
/// primary-key attributes. The key is what BX lenses align rows on when
/// putting view updates back into a source (the paper's D13 and D1 share the
/// key a0 "Patient ID"), so every table in this system is keyed.
class Schema {
 public:
  Schema() = default;

  /// Builds and validates a schema. Fails if attribute names repeat, the key
  /// is empty, a key attribute is missing, or a key attribute is nullable.
  static Result<Schema> Create(std::vector<AttributeDef> attributes,
                               std::vector<std::string> key_attributes);

  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  const std::vector<std::string>& key_attributes() const {
    return key_attributes_;
  }
  size_t attribute_count() const { return attributes_.size(); }

  /// Index of `name` in attributes(), or nullopt.
  std::optional<size_t> IndexOf(std::string_view name) const;
  bool HasAttribute(std::string_view name) const {
    return IndexOf(name).has_value();
  }
  bool IsKeyAttribute(std::string_view name) const;

  /// Positions of the key attributes within attributes(), in key order.
  const std::vector<size_t>& key_indices() const { return key_indices_; }

  /// True if every key attribute of this schema also appears (same name and
  /// type) in `other` — the condition for a projection of `other` keyed the
  /// same way to be key-preserving.
  bool KeyContainedIn(const Schema& other) const;

  Json ToJson() const;
  static Result<Schema> FromJson(const Json& json);

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attributes_ == b.attributes_ &&
           a.key_attributes_ == b.key_attributes_;
  }
  friend bool operator!=(const Schema& a, const Schema& b) {
    return !(a == b);
  }

 private:
  std::vector<AttributeDef> attributes_;
  std::vector<std::string> key_attributes_;
  std::vector<size_t> key_indices_;
};

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_SCHEMA_H_
