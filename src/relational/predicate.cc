#include "relational/predicate.h"

#include <set>

#include "common/strings.h"

namespace medsync::relational {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<CompareOp> CompareOpFromName(std::string_view name) {
  if (name == "=") return CompareOp::kEq;
  if (name == "!=") return CompareOp::kNe;
  if (name == "<") return CompareOp::kLt;
  if (name == "<=") return CompareOp::kLe;
  if (name == ">") return CompareOp::kGt;
  if (name == ">=") return CompareOp::kGe;
  return Status::InvalidArgument(StrCat("unknown compare op '", name, "'"));
}

Predicate::Ptr Predicate::True() {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kTrue;
  return p;
}

Predicate::Ptr Predicate::Compare(std::string attribute, CompareOp op,
                                  Value literal) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kCompare;
  p->attribute_ = std::move(attribute);
  p->op_ = op;
  p->literal_ = std::move(literal);
  return p;
}

Predicate::Ptr Predicate::IsNull(std::string attribute) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kIsNull;
  p->attribute_ = std::move(attribute);
  return p;
}

Predicate::Ptr Predicate::And(Ptr left, Ptr right) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  p->left_ = std::move(left);
  p->right_ = std::move(right);
  return p;
}

Predicate::Ptr Predicate::Or(Ptr left, Ptr right) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  p->left_ = std::move(left);
  p->right_ = std::move(right);
  return p;
}

Predicate::Ptr Predicate::Not(Ptr operand) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->left_ = std::move(operand);
  return p;
}

Result<bool> Predicate::Evaluate(const Schema& schema, const Row& row) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCompare: {
      std::optional<size_t> idx = schema.IndexOf(attribute_);
      if (!idx.has_value()) {
        return Status::NotFound(
            StrCat("predicate references unknown attribute '", attribute_,
                   "'"));
      }
      const Value& cell = row[*idx];
      if (cell.is_null() || literal_.is_null()) return false;
      switch (op_) {
        case CompareOp::kEq:
          return cell == literal_;
        case CompareOp::kNe:
          return cell != literal_;
        case CompareOp::kLt:
          return cell < literal_;
        case CompareOp::kLe:
          return cell <= literal_;
        case CompareOp::kGt:
          return cell > literal_;
        case CompareOp::kGe:
          return cell >= literal_;
      }
      return Status::Internal("unhandled compare op");
    }
    case Kind::kIsNull: {
      std::optional<size_t> idx = schema.IndexOf(attribute_);
      if (!idx.has_value()) {
        return Status::NotFound(
            StrCat("predicate references unknown attribute '", attribute_,
                   "'"));
      }
      return row[*idx].is_null();
    }
    case Kind::kAnd: {
      MEDSYNC_ASSIGN_OR_RETURN(bool lv, left_->Evaluate(schema, row));
      if (!lv) return false;
      return right_->Evaluate(schema, row);
    }
    case Kind::kOr: {
      MEDSYNC_ASSIGN_OR_RETURN(bool lv, left_->Evaluate(schema, row));
      if (lv) return true;
      return right_->Evaluate(schema, row);
    }
    case Kind::kNot: {
      MEDSYNC_ASSIGN_OR_RETURN(bool v, left_->Evaluate(schema, row));
      return !v;
    }
  }
  return Status::Internal("unhandled predicate kind");
}

Status Predicate::Validate(const Schema& schema) const {
  switch (kind_) {
    case Kind::kTrue:
      return Status::OK();
    case Kind::kCompare:
    case Kind::kIsNull:
      if (!schema.HasAttribute(attribute_)) {
        return Status::NotFound(
            StrCat("predicate references unknown attribute '", attribute_,
                   "'"));
      }
      return Status::OK();
    case Kind::kAnd:
    case Kind::kOr:
      MEDSYNC_RETURN_IF_ERROR(left_->Validate(schema));
      return right_->Validate(schema);
    case Kind::kNot:
      return left_->Validate(schema);
  }
  return Status::Internal("unhandled predicate kind");
}

namespace {
void CollectAttributes(const Predicate& p, std::set<std::string>* out) {
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      return;
    case Predicate::Kind::kCompare:
    case Predicate::Kind::kIsNull:
      out->insert(p.attribute());
      return;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      CollectAttributes(*p.left(), out);
      CollectAttributes(*p.right(), out);
      return;
    case Predicate::Kind::kNot:
      CollectAttributes(*p.left(), out);
      return;
  }
}
}  // namespace

std::vector<std::string> Predicate::ReferencedAttributes() const {
  std::set<std::string> set;
  CollectAttributes(*this, &set);
  return std::vector<std::string>(set.begin(), set.end());
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCompare:
      return StrCat(attribute_, " ", CompareOpName(op_), " '",
                    literal_.ToString(), "'");
    case Kind::kIsNull:
      return StrCat(attribute_, " IS NULL");
    case Kind::kAnd:
      return StrCat("(", left_->ToString(), " AND ", right_->ToString(), ")");
    case Kind::kOr:
      return StrCat("(", left_->ToString(), " OR ", right_->ToString(), ")");
    case Kind::kNot:
      return StrCat("NOT (", left_->ToString(), ")");
  }
  return "?";
}

Json Predicate::ToJson() const {
  Json out = Json::MakeObject();
  switch (kind_) {
    case Kind::kTrue:
      out.Set("kind", "true");
      return out;
    case Kind::kCompare:
      out.Set("kind", "compare");
      out.Set("attr", attribute_);
      out.Set("op", std::string(CompareOpName(op_)));
      out.Set("literal", literal_.ToJson());
      return out;
    case Kind::kIsNull:
      out.Set("kind", "is_null");
      out.Set("attr", attribute_);
      return out;
    case Kind::kAnd:
      out.Set("kind", "and");
      out.Set("left", left_->ToJson());
      out.Set("right", right_->ToJson());
      return out;
    case Kind::kOr:
      out.Set("kind", "or");
      out.Set("left", left_->ToJson());
      out.Set("right", right_->ToJson());
      return out;
    case Kind::kNot:
      out.Set("kind", "not");
      out.Set("operand", left_->ToJson());
      return out;
  }
  return out;
}

Result<Predicate::Ptr> Predicate::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("predicate JSON must be an object");
  }
  MEDSYNC_ASSIGN_OR_RETURN(std::string kind, json.GetString("kind"));
  if (kind == "true") return True();
  if (kind == "compare") {
    MEDSYNC_ASSIGN_OR_RETURN(std::string attr, json.GetString("attr"));
    MEDSYNC_ASSIGN_OR_RETURN(std::string op_name, json.GetString("op"));
    MEDSYNC_ASSIGN_OR_RETURN(CompareOp op, CompareOpFromName(op_name));
    MEDSYNC_ASSIGN_OR_RETURN(Value literal,
                             Value::FromJson(json.At("literal")));
    return Compare(std::move(attr), op, std::move(literal));
  }
  if (kind == "is_null") {
    MEDSYNC_ASSIGN_OR_RETURN(std::string attr, json.GetString("attr"));
    return IsNull(std::move(attr));
  }
  if (kind == "and" || kind == "or") {
    MEDSYNC_ASSIGN_OR_RETURN(Ptr left, FromJson(json.At("left")));
    MEDSYNC_ASSIGN_OR_RETURN(Ptr right, FromJson(json.At("right")));
    return kind == "and" ? And(std::move(left), std::move(right))
                         : Or(std::move(left), std::move(right));
  }
  if (kind == "not") {
    MEDSYNC_ASSIGN_OR_RETURN(Ptr operand, FromJson(json.At("operand")));
    return Not(std::move(operand));
  }
  return Status::InvalidArgument(StrCat("unknown predicate kind '", kind,
                                        "'"));
}

bool Predicate::Equal(const Ptr& a, const Ptr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->ToJson() == b->ToJson();
}

}  // namespace medsync::relational
