#include "relational/table.h"

#include <algorithm>

#include "common/strings.h"
#include "crypto/sha256.h"

namespace medsync::relational {

Status Table::Insert(Row row) {
  MEDSYNC_RETURN_IF_ERROR(ValidateRow(schema_, row));
  Key key = KeyOf(schema_, row);
  auto [it, inserted] = rows_.emplace(std::move(key), std::move(row));
  if (!inserted) {
    return Status::AlreadyExists(
        StrCat("row with key ", RowToString(it->first), " already exists"));
  }
  return Status::OK();
}

Status Table::Upsert(Row row) {
  MEDSYNC_RETURN_IF_ERROR(ValidateRow(schema_, row));
  Key key = KeyOf(schema_, row);
  rows_[std::move(key)] = std::move(row);
  return Status::OK();
}

Status Table::Update(Row row) {
  MEDSYNC_RETURN_IF_ERROR(ValidateRow(schema_, row));
  Key key = KeyOf(schema_, row);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound(
        StrCat("no row with key ", RowToString(key)));
  }
  it->second = std::move(row);
  return Status::OK();
}

Status Table::UpdateAttribute(const Key& key, std::string_view attribute,
                              Value value) {
  std::optional<size_t> idx = schema_.IndexOf(attribute);
  if (!idx.has_value()) {
    return Status::NotFound(StrCat("no attribute '", attribute, "'"));
  }
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound(StrCat("no row with key ", RowToString(key)));
  }
  if (schema_.IsKeyAttribute(attribute)) {
    return Status::InvalidArgument(
        StrCat("cannot update key attribute '", attribute,
               "' in place; delete and re-insert"));
  }
  const AttributeDef& attr = schema_.attributes()[*idx];
  if (value.is_null() && !attr.nullable) {
    return Status::InvalidArgument(
        StrCat("NULL in non-nullable attribute '", attribute, "'"));
  }
  if (!value.MatchesType(attr.type)) {
    return Status::InvalidArgument(
        StrCat("type mismatch in attribute '", attribute, "'"));
  }
  it->second[*idx] = std::move(value);
  return Status::OK();
}

Status Table::Delete(const Key& key) {
  if (rows_.erase(key) == 0) {
    return Status::NotFound(StrCat("no row with key ", RowToString(key)));
  }
  return Status::OK();
}

std::optional<Row> Table::Get(const Key& key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

bool Table::Contains(const Key& key) const {
  return rows_.find(key) != rows_.end();
}

Result<Value> Table::GetAttribute(const Key& key,
                                  std::string_view attribute) const {
  std::optional<size_t> idx = schema_.IndexOf(attribute);
  if (!idx.has_value()) {
    return Status::NotFound(StrCat("no attribute '", attribute, "'"));
  }
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound(StrCat("no row with key ", RowToString(key)));
  }
  return it->second[*idx];
}

std::vector<Row> Table::RowsInKeyOrder() const {
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (const auto& [key, row] : rows_) out.push_back(row);
  return out;
}

Json Table::ToJson() const {
  Json rows = Json::MakeArray();
  for (const auto& [key, row] : rows_) rows.Append(RowToJson(row));
  Json out = Json::MakeObject();
  out.Set("schema", schema_.ToJson());
  out.Set("rows", std::move(rows));
  return out;
}

Result<Table> Table::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("table JSON must be an object");
  }
  MEDSYNC_ASSIGN_OR_RETURN(Schema schema, Schema::FromJson(json.At("schema")));
  Table table(std::move(schema));
  const Json& rows = json.At("rows");
  if (!rows.is_array()) {
    return Status::InvalidArgument("table JSON needs 'rows' array");
  }
  for (const Json& r : rows.AsArray()) {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(r));
    MEDSYNC_RETURN_IF_ERROR(table.Insert(std::move(row)));
  }
  return table;
}

std::string Table::ContentDigest() const {
  return crypto::Sha256::Hash(ToJson().Dump()).ToHex();
}

std::string Table::ToAsciiTable() const {
  std::vector<size_t> widths;
  std::vector<std::string> headers;
  for (const AttributeDef& attr : schema_.attributes()) {
    headers.push_back(attr.name);
    widths.push_back(attr.name.size());
  }
  std::vector<std::vector<std::string>> cells;
  for (const auto& [key, row] : rows_) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      widths[i] = std::max(widths[i], line.back().size());
    }
    cells.push_back(std::move(line));
  }

  auto render_line = [&](const std::vector<std::string>& line) {
    std::string out = "|";
    for (size_t i = 0; i < line.size(); ++i) {
      out += " " + line[i] + std::string(widths[i] - line[i].size(), ' ') +
             " |";
    }
    return out + "\n";
  };
  auto rule = [&]() {
    std::string out = "+";
    for (size_t w : widths) out += std::string(w + 2, '-') + "+";
    return out + "\n";
  };

  std::string out = rule() + render_line(headers) + rule();
  for (const auto& line : cells) out += render_line(line);
  out += rule();
  return out;
}

}  // namespace medsync::relational
