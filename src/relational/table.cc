#include "relational/table.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"
#include "crypto/sha256.h"

namespace medsync::relational {

namespace {
/// First digest lane of the key's row hash — reused as the 64-bit filter
/// hash so the filter needs no hashing scheme of its own.
uint64_t KeyFilterHash(const Key& key) { return HashRowForDigest(key)[0]; }
}  // namespace

// ---------------------------------------------------------------------------
// Lookup plumbing
// ---------------------------------------------------------------------------

std::optional<size_t> Table::FindChunk(const Key& key) const {
  if (auto hit = FindChunkRow(key)) return hit->first;
  return std::nullopt;
}

std::optional<std::pair<size_t, size_t>> Table::FindChunkRow(
    const Key& key) const {
  if (chunks_.empty()) return std::nullopt;
  if (!chunk_key_filter_ || chunk_key_filter_->count(KeyFilterHash(key)) == 0) {
    return std::nullopt;
  }
  for (size_t c = 0; c < chunks_.size(); ++c) {
    if (std::optional<size_t> pos = chunks_[c]->Find(key)) {
      return std::make_pair(c, *pos);
    }
  }
  return std::nullopt;
}

bool Table::ChunkLive(const Key& key) const {
  if (head_.count(key) || tombstones_.count(key)) return false;
  return FindChunk(key).has_value();
}

bool Table::ChunkRowIsLive(const Chunk& chunk, size_t i) const {
  const Key key = chunk.KeyAt(i);
  return head_.find(key) == head_.end() &&
         tombstones_.find(key) == tombstones_.end();
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

void Table::PutHead(Key key, Row row) {
  auto it = head_.find(key);
  if (it != head_.end()) {
    it->second = std::move(row);
  } else {
    if (FindChunk(key).has_value()) {
      // The chunk version of this key is dead either way: if it was
      // tombstoned the tombstone is subsumed by the head shadow.
      if (tombstones_.erase(key) == 0) ++dead_count_;
    }
    head_.emplace(std::move(key), std::move(row));
  }
  InvalidateDigest();
  MaybeSeal();
}

Status Table::CheckInsert(const Row& row) const {
  MEDSYNC_RETURN_IF_ERROR(ValidateRow(schema_, row));
  Key key = KeyOf(schema_, row);
  if (head_.count(key) || ChunkLive(key)) {
    return Status::AlreadyExists(
        StrCat("row with key ", RowToString(key), " already exists"));
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  MEDSYNC_RETURN_IF_ERROR(CheckInsert(row));
  Key key = KeyOf(schema_, row);  // before the move — arg order is unspecified
  PutHead(std::move(key), std::move(row));
  return Status::OK();
}

Status Table::CheckUpsert(const Row& row) const {
  return ValidateRow(schema_, row);
}

Status Table::Upsert(Row row) {
  MEDSYNC_RETURN_IF_ERROR(CheckUpsert(row));
  Key key = KeyOf(schema_, row);
  PutHead(std::move(key), std::move(row));
  return Status::OK();
}

Status Table::CheckUpdate(const Row& row) const {
  MEDSYNC_RETURN_IF_ERROR(ValidateRow(schema_, row));
  Key key = KeyOf(schema_, row);
  if (!head_.count(key) && !ChunkLive(key)) {
    return Status::NotFound(StrCat("no row with key ", RowToString(key)));
  }
  return Status::OK();
}

Status Table::Update(Row row) {
  MEDSYNC_RETURN_IF_ERROR(CheckUpdate(row));
  Key key = KeyOf(schema_, row);
  PutHead(std::move(key), std::move(row));
  return Status::OK();
}

Status Table::CheckUpdateAttribute(const Key& key, std::string_view attribute,
                                   const Value& value) const {
  std::optional<size_t> idx = schema_.IndexOf(attribute);
  if (!idx.has_value()) {
    return Status::NotFound(StrCat("no attribute '", attribute, "'"));
  }
  if (!Contains(key)) {
    return Status::NotFound(StrCat("no row with key ", RowToString(key)));
  }
  if (schema_.IsKeyAttribute(attribute)) {
    return Status::InvalidArgument(
        StrCat("cannot update key attribute '", attribute,
               "' in place; delete and re-insert"));
  }
  const AttributeDef& attr = schema_.attributes()[*idx];
  if (value.is_null() && !attr.nullable) {
    return Status::InvalidArgument(
        StrCat("NULL in non-nullable attribute '", attribute, "'"));
  }
  if (!value.MatchesType(attr.type)) {
    return Status::InvalidArgument(
        StrCat("type mismatch in attribute '", attribute, "'"));
  }
  return Status::OK();
}

Status Table::UpdateAttribute(const Key& key, std::string_view attribute,
                              Value value) {
  MEDSYNC_RETURN_IF_ERROR(CheckUpdateAttribute(key, attribute, value));
  Row row = *Get(key);
  row[*schema_.IndexOf(attribute)] = std::move(value);
  PutHead(key, std::move(row));
  return Status::OK();
}

Status Table::CheckDelete(const Key& key) const {
  // Mirrors Delete()'s reject condition: a key is deletable iff it is
  // live in the head or in a chunk — exactly Contains().
  if (!Contains(key)) {
    return Status::NotFound(StrCat("no row with key ", RowToString(key)));
  }
  return Status::OK();
}

Status Table::Delete(const Key& key) {
  auto it = head_.find(key);
  if (it != head_.end()) {
    head_.erase(it);
    if (FindChunk(key).has_value()) {
      // Shadow becomes tombstone; the chunk row stays dead.
      tombstones_.insert(key);
    }
  } else if (ChunkLive(key)) {
    tombstones_.insert(key);
    ++dead_count_;
  } else {
    return Status::NotFound(StrCat("no row with key ", RowToString(key)));
  }
  InvalidateDigest();
  MaybeSeal();
  return Status::OK();
}

void Table::Clear() {
  head_.clear();
  chunks_.clear();
  tombstones_.clear();
  chunk_key_filter_.reset();
  chunk_rows_total_ = 0;
  dead_count_ = 0;
  InvalidateDigest();
}

// ---------------------------------------------------------------------------
// Sealing and compaction
// ---------------------------------------------------------------------------

void Table::MaybeSeal() {
  if (head_.size() >= seal_threshold_ || dead_count_ >= seal_threshold_) {
    Seal();
  }
}

void Table::Seal() {
  if (dead_count_ == 0) {
    // Plain seal: no chunk key appears in the head, so appending the head
    // as a new chunk preserves cross-chunk key uniqueness.
    assert(tombstones_.empty());
    if (head_.empty()) return;
    // The filter is shared immutably with table copies, so extend a fresh
    // set rather than mutating in place.
    auto filter =
        chunk_key_filter_
            ? std::make_shared<std::unordered_set<uint64_t>>(*chunk_key_filter_)
            : std::make_shared<std::unordered_set<uint64_t>>();
    filter->reserve(filter->size() + head_.size());
    for (const auto& [key, row] : head_) {
      filter->insert(KeyFilterHash(key));
    }
    chunk_key_filter_ = std::move(filter);
    chunks_.push_back(Chunk::Seal(schema_, head_));
    chunk_rows_total_ += head_.size();
    head_.clear();
    return;
  }
  // Compaction: merge chunks + head − tombstones into one fresh chunk.
  std::vector<Row> live;
  live.reserve(row_count());
  for (const auto& [key, row] : scan()) live.push_back(row);
  head_.clear();
  chunks_.clear();
  tombstones_.clear();
  chunk_key_filter_.reset();
  dead_count_ = 0;
  chunk_rows_total_ = live.size();
  if (!live.empty()) {
    chunks_.push_back(Chunk::Seal(schema_, live));
    auto filter = std::make_shared<std::unordered_set<uint64_t>>();
    filter->reserve(live.size());
    for (const Row& row : live) {
      filter->insert(KeyFilterHash(KeyOf(schema_, row)));
    }
    chunk_key_filter_ = std::move(filter);
  }
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

std::optional<Row> Table::Get(const Key& key) const {
  auto it = head_.find(key);
  if (it != head_.end()) return it->second;
  if (tombstones_.count(key)) return std::nullopt;
  if (auto hit = FindChunkRow(key)) {
    return chunks_[hit->first]->RowAt(hit->second);
  }
  return std::nullopt;
}

bool Table::Contains(const Key& key) const {
  if (head_.count(key)) return true;
  if (tombstones_.count(key)) return false;
  return FindChunk(key).has_value();
}

Result<Value> Table::GetAttribute(const Key& key,
                                  std::string_view attribute) const {
  std::optional<size_t> idx = schema_.IndexOf(attribute);
  if (!idx.has_value()) {
    return Status::NotFound(StrCat("no attribute '", attribute, "'"));
  }
  auto it = head_.find(key);
  if (it != head_.end()) return it->second[*idx];
  if (!tombstones_.count(key)) {
    if (auto hit = FindChunkRow(key)) {
      return chunks_[hit->first]->ValueAt(hit->second, *idx);
    }
  }
  return Status::NotFound(StrCat("no row with key ", RowToString(key)));
}

Key Table::NthKey(size_t n) const {
  assert(n < row_count());
  auto it = scan().begin();
  for (size_t i = 0; i < n; ++i) ++it;
  return (*it).key;
}

std::vector<Row> Table::RowsInKeyOrder() const {
  std::vector<Row> out;
  out.reserve(row_count());
  for (const auto& [key, row] : scan()) out.push_back(row);
  return out;
}

// ---------------------------------------------------------------------------
// Scan iterator
// ---------------------------------------------------------------------------

Table::ScanIterator::ScanIterator(const Table* table) : table_(table) {
  head_it_ = table_->head_.begin();
  cursors_.resize(table_->chunks_.size());
  for (size_t c = 0; c < cursors_.size(); ++c) {
    cursors_[c].chunk = table_->chunks_[c].get();
    cursors_[c].pos = 0;
    SkipDead(c);
  }
  PickNext();
}

void Table::ScanIterator::SkipDead(size_t c) {
  ChunkCursor& cur = cursors_[c];
  while (cur.pos < cur.chunk->row_count()) {
    cur.key = cur.chunk->KeyAt(cur.pos);
    if (table_->head_.find(cur.key) == table_->head_.end() &&
        table_->tombstones_.find(cur.key) == table_->tombstones_.end()) {
      cur.row_valid = false;
      return;
    }
    ++cur.pos;
  }
}

void Table::ScanIterator::PickNext() {
  const Key* best = nullptr;
  size_t best_idx = SIZE_MAX;
  if (head_it_ != table_->head_.end()) best = &head_it_->first;
  for (size_t c = 0; c < cursors_.size(); ++c) {
    ChunkCursor& cur = cursors_[c];
    if (cur.pos >= cur.chunk->row_count()) continue;
    // Live chunk keys never equal a head key (shadowed rows were skipped)
    // or another chunk's key (cross-chunk uniqueness), so < is total here.
    if (best == nullptr || cur.key < *best) {
      best = &cur.key;
      best_idx = c;
    }
  }
  if (best == nullptr) {
    at_end_ = true;
    return;
  }
  at_end_ = false;
  current_ = best_idx;
  if (current_ != SIZE_MAX) {
    ChunkCursor& cur = cursors_[current_];
    if (!cur.row_valid) {
      cur.row = cur.chunk->RowAt(cur.pos);
      cur.row_valid = true;
    }
  }
}

Table::ScanEntry Table::ScanIterator::operator*() const {
  assert(!at_end_);
  if (current_ == SIZE_MAX) {
    return ScanEntry{head_it_->first, head_it_->second};
  }
  const ChunkCursor& cur = cursors_[current_];
  return ScanEntry{cur.key, cur.row};
}

Table::ScanIterator& Table::ScanIterator::operator++() {
  assert(!at_end_);
  if (current_ == SIZE_MAX) {
    ++head_it_;
  } else {
    ++cursors_[current_].pos;
    SkipDead(current_);
  }
  PickNext();
  return *this;
}

// ---------------------------------------------------------------------------
// Equality and serialization
// ---------------------------------------------------------------------------

bool operator==(const Table& a, const Table& b) {
  if (a.schema_ != b.schema_) return false;
  if (a.row_count() != b.row_count()) return false;
  auto ita = a.scan().begin();
  auto itb = b.scan().begin();
  const Table::ScanSentinel end{};
  while (ita != end && itb != end) {
    const Table::ScanEntry ea = *ita;
    const Table::ScanEntry eb = *itb;
    if (ea.key != eb.key || ea.row != eb.row) return false;
    ++ita;
    ++itb;
  }
  return ita == end && itb == end;
}

Json Table::ToJson() const {
  Json rows = Json::MakeArray();
  for (const auto& [key, row] : scan()) rows.Append(RowToJson(row));
  Json out = Json::MakeObject();
  out.Set("schema", schema_.ToJson());
  out.Set("rows", std::move(rows));
  return out;
}

Result<Table> Table::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("table JSON must be an object");
  }
  MEDSYNC_ASSIGN_OR_RETURN(Schema schema, Schema::FromJson(json.At("schema")));
  Table table(std::move(schema));
  const Json& rows = json.At("rows");
  if (!rows.is_array()) {
    return Status::InvalidArgument("table JSON needs 'rows' array");
  }
  for (const Json& r : rows.AsArray()) {
    MEDSYNC_ASSIGN_OR_RETURN(Row row, RowFromJson(r));
    MEDSYNC_RETURN_IF_ERROR(table.Insert(std::move(row)));
  }
  return table;
}

Result<Table> Table::FromParts(
    Schema schema, std::vector<std::shared_ptr<const Chunk>> chunks,
    std::vector<Row> head_rows, std::vector<Key> tombstones) {
  Table table(std::move(schema));
  table.chunks_ = std::move(chunks);
  auto filter = std::make_shared<std::unordered_set<uint64_t>>();
  for (const auto& chunk : table.chunks_) {
    table.chunk_rows_total_ += chunk->row_count();
    for (size_t i = 0; i < chunk->row_count(); ++i) {
      filter->insert(KeyFilterHash(chunk->KeyAt(i)));
    }
  }
  table.chunk_key_filter_ = std::move(filter);

  // Cross-chunk key uniqueness via a k-way merge over the (individually
  // sorted) chunks: any duplicate shows up as equal consecutive keys.
  if (table.chunks_.size() > 1) {
    struct Cursor {
      const Chunk* chunk;
      size_t pos;
      Key key;
    };
    std::vector<Cursor> cursors;
    for (const auto& chunk : table.chunks_) {
      cursors.push_back({chunk.get(), 0, chunk->KeyAt(0)});
    }
    const Key* prev = nullptr;
    Key prev_storage;
    size_t remaining = table.chunk_rows_total_;
    while (remaining-- > 0) {
      size_t best = SIZE_MAX;
      for (size_t c = 0; c < cursors.size(); ++c) {
        if (cursors[c].pos >= cursors[c].chunk->row_count()) continue;
        if (best == SIZE_MAX || cursors[c].key < cursors[best].key) best = c;
      }
      Cursor& cur = cursors[best];
      if (prev != nullptr && !(*prev < cur.key)) {
        return Status::Corruption(
            StrCat("duplicate key ", RowToString(cur.key), " across chunks"));
      }
      prev_storage = cur.key;
      prev = &prev_storage;
      if (++cur.pos < cur.chunk->row_count()) {
        cur.key = cur.chunk->KeyAt(cur.pos);
      }
    }
  }

  for (Key& key : tombstones) {
    if (!table.FindChunk(key).has_value()) {
      return Status::Corruption(
          StrCat("tombstone ", RowToString(key), " resolves to no chunk row"));
    }
    if (!table.tombstones_.insert(std::move(key)).second) {
      return Status::Corruption("duplicate tombstone");
    }
    ++table.dead_count_;
  }

  for (Row& row : head_rows) {
    MEDSYNC_RETURN_IF_ERROR(
        ValidateRow(table.schema_, row).WithPrefix("head row"));
    Key key = KeyOf(table.schema_, row);
    if (table.tombstones_.count(key)) {
      return Status::Corruption(
          StrCat("head row ", RowToString(key), " is also tombstoned"));
    }
    if (table.FindChunk(key).has_value()) ++table.dead_count_;
    if (!table.head_.emplace(std::move(key), std::move(row)).second) {
      return Status::Corruption("duplicate head row");
    }
  }
  return table;
}

std::string Table::ContentDigest() const {
  if (digest_cache_.has_value()) return *digest_cache_;

  RowDigestAcc acc{};
  for (const auto& chunk : chunks_) AccAdd(&acc, chunk->digest_acc());
  // Subtract the dead chunk versions: tombstoned keys and head-shadowed keys.
  auto subtract_chunk_version = [&](const Key& key) {
    if (auto hit = FindChunkRow(key)) {
      AccSub(&acc, HashRowForDigest(chunks_[hit->first]->RowAt(hit->second)));
    }
  };
  for (const Key& key : tombstones_) subtract_chunk_version(key);
  for (const auto& [key, row] : head_) {
    subtract_chunk_version(key);
    AccAdd(&acc, HashRowForDigest(row));
  }

  crypto::Sha256 hasher;
  hasher.Update("medsync.table.digest.v2\n");
  hasher.Update(schema_.ToJson().Dump());
  hasher.Update("\n");
  uint8_t buf[8 * 5];
  for (size_t lane = 0; lane < 4; ++lane) {
    for (size_t i = 0; i < 8; ++i) {
      buf[lane * 8 + i] = static_cast<uint8_t>((acc[lane] >> (8 * i)) & 0xff);
    }
  }
  const uint64_t count = row_count();
  for (size_t i = 0; i < 8; ++i) {
    buf[32 + i] = static_cast<uint8_t>((count >> (8 * i)) & 0xff);
  }
  hasher.Update(buf, sizeof(buf));
  digest_cache_ = hasher.Finish().ToHex();
  return *digest_cache_;
}

std::string Table::ToAsciiTable() const {
  std::vector<size_t> widths;
  std::vector<std::string> headers;
  for (const AttributeDef& attr : schema_.attributes()) {
    headers.push_back(attr.name);
    widths.push_back(attr.name.size());
  }
  std::vector<std::vector<std::string>> cells;
  for (const auto& [key, row] : scan()) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      widths[i] = std::max(widths[i], line.back().size());
    }
    cells.push_back(std::move(line));
  }

  auto render_line = [&](const std::vector<std::string>& line) {
    std::string out = "|";
    for (size_t i = 0; i < line.size(); ++i) {
      out += " " + line[i] + std::string(widths[i] - line[i].size(), ' ') +
             " |";
    }
    return out + "\n";
  };
  auto rule = [&]() {
    std::string out = "+";
    for (size_t w : widths) out += std::string(w + 2, '-') + "+";
    return out + "\n";
  };

  std::string out = rule() + render_line(headers) + rule();
  for (const auto& line : cells) out += render_line(line);
  out += rule();
  return out;
}

}  // namespace medsync::relational
