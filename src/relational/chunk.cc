#include "relational/chunk.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "crypto/sha256.h"
#include "common/crc32.h"

namespace medsync::relational {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives for the canonical chunk encoding.
// ---------------------------------------------------------------------------

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Bounds-checked reader over a serialized chunk payload.
struct Reader {
  std::string_view data;
  size_t pos = 0;
  bool failed = false;

  bool Need(size_t n) {
    if (failed || data.size() - pos < n) {
      failed = true;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data[pos++]);
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
    }
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::string_view Bytes(size_t n) {
    if (!Need(n)) return {};
    std::string_view out = data.substr(pos, n);
    pos += n;
    return out;
  }
};

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

constexpr std::string_view kChunkMagic = "MEDSYNCCHUNK1\n";

}  // namespace

// ---------------------------------------------------------------------------
// Multiset row digest
// ---------------------------------------------------------------------------

RowDigestAcc HashRowForDigest(const Row& row) {
  const crypto::Hash256 h = crypto::Sha256::Hash(RowToJson(row).Dump());
  RowDigestAcc acc{};
  for (size_t lane = 0; lane < 4; ++lane) {
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(h.bytes[lane * 8 + i]) << (8 * i);
    }
    acc[lane] = v;
  }
  return acc;
}

void AccAdd(RowDigestAcc* acc, const RowDigestAcc& delta) {
  for (size_t i = 0; i < 4; ++i) (*acc)[i] += delta[i];
}

void AccSub(RowDigestAcc* acc, const RowDigestAcc& delta) {
  for (size_t i = 0; i < 4; ++i) (*acc)[i] -= delta[i];
}

// ---------------------------------------------------------------------------
// Seal
// ---------------------------------------------------------------------------

std::shared_ptr<const Chunk> Chunk::Seal(const Schema& schema,
                                         const std::map<Key, Row>& rows) {
  std::vector<const Row*> ptrs;
  ptrs.reserve(rows.size());
  for (const auto& [key, row] : rows) ptrs.push_back(&row);
  return SealImpl(schema, ptrs);
}

std::shared_ptr<const Chunk> Chunk::Seal(const Schema& schema,
                                         const std::vector<Row>& rows) {
  std::vector<const Row*> ptrs;
  ptrs.reserve(rows.size());
  for (const Row& row : rows) ptrs.push_back(&row);
  return SealImpl(schema, ptrs);
}

std::shared_ptr<const Chunk> Chunk::SealImpl(
    const Schema& schema, const std::vector<const Row*>& rows) {
  assert(!rows.empty() && "sealing an empty chunk");
  auto chunk = std::shared_ptr<Chunk>(new Chunk());
  const size_t n = rows.size();
  const size_t num_cols = schema.attribute_count();
  chunk->row_count_ = n;
  chunk->key_cols_ = schema.key_indices();
  chunk->columns_.resize(num_cols);

  for (size_t c = 0; c < num_cols; ++c) {
    Column& col = chunk->columns_[c];
    col.type = schema.attributes()[c].type;
    bool any_null = false;
    for (size_t r = 0; r < n; ++r) {
      if ((*rows[r])[c].is_null()) {
        any_null = true;
        break;
      }
    }
    if (any_null) {
      col.nulls.resize(n, 0);
      for (size_t r = 0; r < n; ++r) {
        if ((*rows[r])[c].is_null()) col.nulls[r] = 1;
      }
    }
    switch (col.type) {
      case DataType::kNull:
        break;
      case DataType::kBool:
        col.bools.resize(n, 0);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = (*rows[r])[c];
          if (!v.is_null()) col.bools[r] = v.AsBool() ? 1 : 0;
        }
        break;
      case DataType::kInt:
        col.ints.resize(n, 0);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = (*rows[r])[c];
          if (!v.is_null()) col.ints[r] = v.AsInt();
        }
        break;
      case DataType::kDouble:
        col.doubles.resize(n, 0.0);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = (*rows[r])[c];
          if (!v.is_null()) col.doubles[r] = v.AsDouble();
        }
        break;
      case DataType::kString: {
        // Dictionary: sorted unique strings so equal content always encodes
        // to identical bytes regardless of insertion history.
        std::vector<std::string_view> values;
        values.reserve(n);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = (*rows[r])[c];
          if (!v.is_null()) values.push_back(v.AsString());
        }
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()), values.end());
        col.dict.reserve(values.size());
        for (std::string_view s : values) col.dict.emplace_back(s);
        col.codes.resize(n, 0);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = (*rows[r])[c];
          if (v.is_null()) continue;
          const auto it =
              std::lower_bound(col.dict.begin(), col.dict.end(), v.AsString());
          col.codes[r] = static_cast<uint32_t>(it - col.dict.begin());
        }
        break;
      }
    }
  }

  chunk->min_key_ = chunk->KeyAt(0);
  chunk->max_key_ = chunk->KeyAt(n - 1);

  RowDigestAcc acc{};
  for (const Row* row : rows) AccAdd(&acc, HashRowForDigest(*row));
  chunk->digest_acc_ = acc;

  chunk->id_ = crypto::Sha256::Hash(chunk->SerializeCanonical()).ToHex();
  return chunk;
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

bool Chunk::IsNullAt(size_t row, size_t col) const {
  const Column& c = columns_[col];
  return c.type == DataType::kNull || c.IsNull(row);
}

Value Chunk::ValueAt(size_t row, size_t col) const {
  const Column& c = columns_[col];
  if (c.type == DataType::kNull || c.IsNull(row)) return Value::Null();
  switch (c.type) {
    case DataType::kBool:
      return Value::Bool(c.bools[row] != 0);
    case DataType::kInt:
      return Value::Int(c.ints[row]);
    case DataType::kDouble:
      return Value::Double(c.doubles[row]);
    case DataType::kString:
      return Value::String(c.dict[c.codes[row]]);
    case DataType::kNull:
      break;
  }
  return Value::Null();
}

Row Chunk::RowAt(size_t i) const {
  Row row;
  row.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) row.push_back(ValueAt(i, c));
  return row;
}

Key Chunk::KeyAt(size_t i) const {
  Key key;
  key.reserve(key_cols_.size());
  for (size_t c : key_cols_) key.push_back(ValueAt(i, c));
  return key;
}

void Chunk::GatherRow(size_t i, const std::vector<size_t>& cols,
                      Row* out) const {
  out->clear();
  out->reserve(cols.size());
  for (size_t c : cols) out->push_back(ValueAt(i, c));
}

int Chunk::CompareKeyAt(size_t i, const Key& key) const {
  for (size_t k = 0; k < key_cols_.size(); ++k) {
    const Value v = ValueAt(i, key_cols_[k]);
    if (v < key[k]) return -1;
    if (key[k] < v) return 1;
  }
  return 0;
}

std::optional<size_t> Chunk::Find(const Key& key) const {
  if (key.size() != key_cols_.size()) return std::nullopt;
  if (key < min_key_ || max_key_ < key) return std::nullopt;
  size_t lo = 0, hi = row_count_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const int cmp = CompareKeyAt(mid, key);
    if (cmp == 0) return mid;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string Chunk::SerializeCanonical() const {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(row_count_));
  AppendU32(&out, static_cast<uint32_t>(columns_.size()));
  for (const Column& col : columns_) {
    AppendU8(&out, static_cast<uint8_t>(col.type));
    AppendU8(&out, col.nulls.empty() ? 0 : 1);
    if (!col.nulls.empty()) {
      out.append(reinterpret_cast<const char*>(col.nulls.data()),
                 col.nulls.size());
    }
    switch (col.type) {
      case DataType::kNull:
        break;
      case DataType::kBool:
        out.append(reinterpret_cast<const char*>(col.bools.data()),
                   col.bools.size());
        break;
      case DataType::kInt:
        for (int64_t v : col.ints) AppendU64(&out, static_cast<uint64_t>(v));
        break;
      case DataType::kDouble:
        for (double v : col.doubles) AppendU64(&out, DoubleBits(v));
        break;
      case DataType::kString:
        AppendU32(&out, static_cast<uint32_t>(col.dict.size()));
        for (const std::string& s : col.dict) {
          AppendU32(&out, static_cast<uint32_t>(s.size()));
          out.append(s);
        }
        for (uint32_t code : col.codes) AppendU32(&out, code);
        break;
    }
  }
  return out;
}

std::string Chunk::SerializeFile(bool compress) const {
  const std::string raw = SerializeCanonical();
  std::string payload;
  bool compressed = false;
  if (compress) {
    payload = LzCompress(raw);
    // Incompressible payloads are stored raw so decompression never inflates.
    if (payload.size() < raw.size()) {
      compressed = true;
    } else {
      payload = raw;
    }
  } else {
    payload = raw;
  }
  std::string out;
  out.reserve(kChunkMagic.size() + 9 + payload.size());
  out.append(kChunkMagic);
  AppendU8(&out, compressed ? 1 : 0);
  AppendU32(&out, static_cast<uint32_t>(raw.size()));
  AppendU32(&out, Crc32(raw));
  out.append(payload);
  return out;
}

Result<std::shared_ptr<const Chunk>> Chunk::Deserialize(
    const Schema& schema, std::string_view file_bytes) {
  if (file_bytes.size() < kChunkMagic.size() + 9 ||
      file_bytes.substr(0, kChunkMagic.size()) != kChunkMagic) {
    return Status::Corruption("chunk file: bad magic");
  }
  Reader header{file_bytes.substr(kChunkMagic.size())};
  const uint8_t compressed = header.U8();
  const uint32_t raw_size = header.U32();
  const uint32_t crc = header.U32();
  if (header.failed || compressed > 1) {
    return Status::Corruption("chunk file: bad header");
  }
  std::string_view payload = header.data.substr(header.pos);
  std::string raw_storage;
  std::string_view raw;
  if (compressed) {
    auto decompressed = LzDecompress(payload, raw_size);
    if (!decompressed.ok()) {
      return decompressed.status().WithPrefix("chunk file");
    }
    raw_storage = std::move(decompressed).value();
    raw = raw_storage;
  } else {
    raw = payload;
  }
  if (raw.size() != raw_size) {
    return Status::Corruption("chunk file: size mismatch");
  }
  if (Crc32(raw) != crc) {
    return Status::Corruption("chunk file: checksum mismatch");
  }

  Reader r{raw};
  const uint32_t row_count = r.U32();
  const uint32_t num_cols = r.U32();
  if (r.failed || row_count == 0) {
    return Status::Corruption("chunk payload: bad row count");
  }
  if (num_cols != schema.attribute_count()) {
    return Status::Corruption("chunk payload: column count mismatch");
  }

  auto chunk = std::shared_ptr<Chunk>(new Chunk());
  chunk->row_count_ = row_count;
  chunk->key_cols_ = schema.key_indices();
  chunk->columns_.resize(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    Column& col = chunk->columns_[c];
    col.type = static_cast<DataType>(r.U8());
    if (col.type != schema.attributes()[c].type) {
      return Status::Corruption("chunk payload: column type mismatch");
    }
    const uint8_t has_nulls = r.U8();
    if (r.failed || has_nulls > 1) {
      return Status::Corruption("chunk payload: bad null flags");
    }
    if (has_nulls) {
      std::string_view bytes = r.Bytes(row_count);
      if (r.failed) return Status::Corruption("chunk payload: truncated nulls");
      col.nulls.assign(bytes.begin(), bytes.end());
      for (uint8_t b : col.nulls) {
        if (b > 1) return Status::Corruption("chunk payload: bad null byte");
      }
    }
    switch (col.type) {
      case DataType::kNull:
        break;
      case DataType::kBool: {
        std::string_view bytes = r.Bytes(row_count);
        if (r.failed) return Status::Corruption("chunk payload: truncated col");
        col.bools.assign(bytes.begin(), bytes.end());
        for (uint8_t b : col.bools) {
          if (b > 1) return Status::Corruption("chunk payload: bad bool byte");
        }
        break;
      }
      case DataType::kInt:
        col.ints.resize(row_count);
        for (uint32_t i = 0; i < row_count; ++i) {
          col.ints[i] = static_cast<int64_t>(r.U64());
        }
        break;
      case DataType::kDouble:
        col.doubles.resize(row_count);
        for (uint32_t i = 0; i < row_count; ++i) {
          col.doubles[i] = DoubleFromBits(r.U64());
        }
        break;
      case DataType::kString: {
        const uint32_t dict_size = r.U32();
        if (r.failed || dict_size > raw.size()) {
          return Status::Corruption("chunk payload: bad dict size");
        }
        col.dict.reserve(dict_size);
        for (uint32_t i = 0; i < dict_size; ++i) {
          const uint32_t len = r.U32();
          std::string_view bytes = r.Bytes(len);
          if (r.failed) {
            return Status::Corruption("chunk payload: truncated dict");
          }
          col.dict.emplace_back(bytes);
          if (i > 0 && !(col.dict[i - 1] < col.dict[i])) {
            return Status::Corruption("chunk payload: dict not sorted unique");
          }
        }
        col.codes.resize(row_count);
        for (uint32_t i = 0; i < row_count; ++i) {
          col.codes[i] = r.U32();
          if (!col.IsNull(i) && col.codes[i] >= dict_size) {
            return Status::Corruption("chunk payload: code out of range");
          }
        }
        break;
      }
      default:
        return Status::Corruption("chunk payload: unknown column type");
    }
    if (r.failed) return Status::Corruption("chunk payload: truncated");
  }
  if (r.pos != raw.size()) {
    return Status::Corruption("chunk payload: trailing bytes");
  }

  // Cells must satisfy the schema's nullability/typing; key order is implied
  // by the seal invariant but a corrupted file could violate it, which would
  // silently break Find(), so verify.
  for (uint32_t c = 0; c < num_cols; ++c) {
    if (!schema.attributes()[c].nullable) {
      const Column& col = chunk->columns_[c];
      for (uint32_t i = 0; i < row_count; ++i) {
        if (col.type == DataType::kNull || col.IsNull(i)) {
          return Status::Corruption("chunk payload: NULL in non-nullable col");
        }
      }
    }
  }
  Key prev = chunk->KeyAt(0);
  for (uint32_t i = 1; i < row_count; ++i) {
    Key cur = chunk->KeyAt(i);
    if (!(prev < cur)) {
      return Status::Corruption("chunk payload: keys not strictly ascending");
    }
    prev = std::move(cur);
  }
  chunk->min_key_ = chunk->KeyAt(0);
  chunk->max_key_ = chunk->KeyAt(row_count - 1);

  RowDigestAcc acc{};
  for (uint32_t i = 0; i < row_count; ++i) {
    AccAdd(&acc, HashRowForDigest(chunk->RowAt(i)));
  }
  chunk->digest_acc_ = acc;
  chunk->id_ = crypto::Sha256::Hash(raw).ToHex();
  return std::shared_ptr<const Chunk>(std::move(chunk));
}

// ---------------------------------------------------------------------------
// LZSS codec (12-bit distance, 4-bit length)
// ---------------------------------------------------------------------------

namespace {
constexpr size_t kLzWindow = 4096;  // distances 1..4096, stored as d-1
constexpr size_t kLzMinMatch = 3;
constexpr size_t kLzMaxMatch = 18;  // kLzMinMatch + 15
constexpr size_t kLzHashSize = 1 << 15;

size_t LzHash(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - 15);
}
}  // namespace

std::string LzCompress(std::string_view data) {
  const uint8_t* in = reinterpret_cast<const uint8_t*>(data.data());
  const size_t n = data.size();
  std::string out;
  if (n == 0) return out;  // no flag group; the inverse of zero tokens
  out.reserve(n / 2 + 16);

  // Single-slot hash table of 3-byte prefixes -> most recent position
  // (LZRW-style): one probe per input byte keeps sealing 1M-row tables fast
  // while still folding the long repeated runs typical of columnar payloads.
  std::vector<size_t> table(kLzHashSize, SIZE_MAX);

  size_t flag_pos = 0;
  uint8_t flag_bits = 0;
  int flag_count = 0;
  auto open_group = [&] {
    flag_pos = out.size();
    out.push_back('\0');
    flag_bits = 0;
    flag_count = 0;
  };
  auto close_group = [&] { out[flag_pos] = static_cast<char>(flag_bits); };
  auto emit_token = [&](bool literal) {
    if (flag_count == 8) {
      close_group();
      open_group();
    }
    if (literal) flag_bits |= static_cast<uint8_t>(1u << flag_count);
    ++flag_count;
  };

  open_group();
  size_t pos = 0;
  while (pos < n) {
    size_t match_len = 0;
    size_t match_dist = 0;
    if (pos + kLzMinMatch <= n) {
      const size_t h = LzHash(in + pos);
      const size_t cand = table[h];
      table[h] = pos;
      if (cand != SIZE_MAX && pos - cand <= kLzWindow) {
        const size_t limit = std::min(kLzMaxMatch, n - pos);
        size_t len = 0;
        while (len < limit && in[cand + len] == in[pos + len]) ++len;
        if (len >= kLzMinMatch) {
          match_len = len;
          match_dist = pos - cand;
        }
      }
    }
    if (match_len) {
      emit_token(false);
      const uint16_t pair = static_cast<uint16_t>(
          ((match_dist - 1) << 4) | (match_len - kLzMinMatch));
      out.push_back(static_cast<char>(pair & 0xff));
      out.push_back(static_cast<char>(pair >> 8));
      // Index the skipped positions too so later matches can reach them.
      const size_t end = std::min(pos + match_len, n - kLzMinMatch);
      for (size_t p = pos + 1; p < end; ++p) table[LzHash(in + p)] = p;
      pos += match_len;
    } else {
      emit_token(true);
      out.push_back(static_cast<char>(in[pos]));
      ++pos;
    }
  }
  close_group();
  return out;
}

Result<std::string> LzDecompress(std::string_view data, size_t expected_size) {
  std::string out;
  out.reserve(expected_size);
  size_t pos = 0;
  const size_t n = data.size();
  while (pos < n && out.size() < expected_size) {
    const uint8_t flags = static_cast<uint8_t>(data[pos++]);
    for (int bit = 0; bit < 8 && out.size() < expected_size; ++bit) {
      if (flags & (1u << bit)) {
        if (pos >= n) return Status::Corruption("lz: truncated literal");
        out.push_back(data[pos++]);
      } else {
        if (pos + 2 > n) return Status::Corruption("lz: truncated match");
        const uint16_t pair =
            static_cast<uint16_t>(static_cast<uint8_t>(data[pos])) |
            (static_cast<uint16_t>(static_cast<uint8_t>(data[pos + 1])) << 8);
        pos += 2;
        const size_t dist = (pair >> 4) + 1;
        const size_t len = (pair & 0x0f) + kLzMinMatch;
        if (dist > out.size()) return Status::Corruption("lz: bad distance");
        if (out.size() + len > expected_size) {
          return Status::Corruption("lz: output overrun");
        }
        // Byte-at-a-time copy: overlapping matches (dist < len) replicate.
        const size_t start = out.size() - dist;
        for (size_t i = 0; i < len; ++i) out.push_back(out[start + i]);
      }
    }
  }
  if (out.size() != expected_size || pos != n) {
    return Status::Corruption("lz: size mismatch");
  }
  return out;
}

}  // namespace medsync::relational
