#ifndef MEDSYNC_RELATIONAL_AGGREGATE_H_
#define MEDSYNC_RELATIONAL_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace medsync::relational {

/// Aggregate functions for grouped queries.
enum class AggregateFn : int {
  kCount = 0,  // row count per group (input attribute ignored)
  kMin = 1,
  kMax = 2,
  kSum = 3,    // int or double attribute
  kAvg = 4,    // int or double attribute; result is double
};

std::string_view AggregateFnName(AggregateFn fn);

/// One output column of a GroupBy: `fn` applied to `attribute`, named
/// `as` in the result (defaults to "<fn>_<attribute>").
struct AggregateSpec {
  AggregateFn fn = AggregateFn::kCount;
  std::string attribute;  // may be empty for kCount
  std::string as;
};

/// γ: groups `input` by `group_by` attributes and computes `aggregates`
/// per group. The result is keyed by the grouping attributes (which must
/// therefore be non-null in every row; NULL group keys are an error).
/// NULL cells are skipped by min/max/sum/avg; a group whose values are all
/// NULL yields NULL for that aggregate. This powers the research-facing
/// analytics over fine-grained views (e.g. prescriptions per medication,
/// dosage variety per city).
Result<Table> GroupBy(const Table& input,
                      const std::vector<std::string>& group_by,
                      const std::vector<AggregateSpec>& aggregates);

/// Aggregates over the whole table (one output row, keyed by a synthetic
/// constant group column named "_all").
Result<Table> Aggregate(const Table& input,
                        const std::vector<AggregateSpec>& aggregates);

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_AGGREGATE_H_
