#ifndef MEDSYNC_RELATIONAL_WAL_H_
#define MEDSYNC_RELATIONAL_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/json.h"
#include "common/metrics/metrics.h"
#include "common/result.h"
#include "common/status.h"

namespace medsync::relational {

/// One durable log record. `lsn` is assigned on append, starting at 1.
struct WalRecord {
  uint64_t lsn = 0;
  Json payload;
};

/// A file-backed write-ahead log with per-record checksums.
///
/// Record wire format (one record per line):
///   <crc32-hex-8> <length-decimal> <lsn-decimal> <json-payload>\n
/// The checksum and length cover `<lsn-decimal> <json-payload>`, so a
/// corrupted LSN is caught like any other corruption. Legacy records
/// without the LSN field (`<crc> <len> <json>`) are still recovered, with
/// LSNs assigned sequentially. Recovery reads records until EOF; only a
/// torn tail — a final record missing its '\n' terminator, the signature of
/// an interrupted append — is truncated away. A complete line that fails
/// the checksum, length, or LSN monotonicity check is bit rot, and Open
/// fails with Corruption rather than silently dropping it along with every
/// valid record after it. The local database
/// of every sharing peer logs mutations through this before applying them,
/// so a crashed peer replays to its pre-crash state and can rejoin the
/// sharing protocol where it left off.
///
/// LSNs are durable and survive Reset(): truncating the log after a
/// checkpoint does NOT renumber from 1, so a snapshot that records "covers
/// everything through LSN K" stays meaningful in every crash window around
/// the checkpoint (see Database::Checkpoint).
class Wal {
 public:
  struct Options {
    /// fdatasync after every Append (and after Reset), so an acknowledged
    /// record survives a machine crash, not just a process crash. The
    /// database's commit path opens its WAL with this ON; raw Wal users
    /// default to the fast no-sync behaviour and call Sync() at their own
    /// durability points.
    bool sync_every_append = false;
  };

  /// Opens (creating if needed) the log at `path` and recovers existing
  /// records. `recovered` receives the surviving records; may be nullptr.
  static Result<Wal> Open(std::string path, std::vector<WalRecord>* recovered,
                          Options options);
  static Result<Wal> Open(std::string path,
                          std::vector<WalRecord>* recovered) {
    return Open(std::move(path), recovered, Options());
  }

  Wal(Wal&& other) noexcept;
  Wal& operator=(Wal&& other) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Appends a record and flushes it to the OS (plus fdatasync when
  /// sync_every_append is on). Returns the assigned LSN.
  Result<uint64_t> Append(const Json& payload);

  /// Forces appended records to stable storage (fdatasync).
  Status Sync();

  /// Truncates the log to empty (after a snapshot/checkpoint); synced when
  /// sync_every_append is on. LSN assignment continues from where it was —
  /// records appended after a Reset are numbered strictly above everything
  /// the checkpoint covered.
  Status Reset();

  /// Raises the next LSN to at least `lsn` (no-op if already past it). A
  /// database whose snapshot covers LSNs through K calls this with K+1 on
  /// open, so fresh appends never reuse covered numbers even when the log
  /// file itself is empty.
  void EnsureNextLsnAtLeast(uint64_t lsn) {
    if (next_lsn_ < lsn) next_lsn_ = lsn;
  }

  uint64_t next_lsn() const { return next_lsn_; }
  const std::string& path() const { return path_; }
  const Options& options() const { return options_; }

  /// Durability accounting, mirrored into an attached registry as
  /// wal.appends / wal.append_bytes / wal.syncs / wal.resets /
  /// wal.recovered_records / wal.truncations.
  struct Stats {
    uint64_t appends = 0;
    uint64_t append_bytes = 0;
    uint64_t syncs = 0;
    uint64_t resets = 0;
    uint64_t recovered_records = 0;  // surviving records seen by Open
    uint64_t truncations = 0;        // torn tails cut during recovery
  };
  const Stats& stats() const { return stats_; }

  /// Attaches counters; recovery counts accumulated by Open are flushed to
  /// the registry at attach time. `registry` must outlive the Wal; nullptr
  /// detaches.
  void set_metrics(metrics::MetricsRegistry* registry);

 private:
  Wal() = default;

  std::string path_;
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
  Options options_;
  Stats stats_;

  metrics::Counter* appends_counter_ = nullptr;
  metrics::Counter* append_bytes_counter_ = nullptr;
  metrics::Counter* syncs_counter_ = nullptr;
  metrics::Counter* resets_counter_ = nullptr;
};

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_WAL_H_
