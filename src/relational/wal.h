#ifndef MEDSYNC_RELATIONAL_WAL_H_
#define MEDSYNC_RELATIONAL_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"

namespace medsync::relational {

/// One durable log record. `lsn` is assigned on append, starting at 1.
struct WalRecord {
  uint64_t lsn = 0;
  Json payload;
};

/// A file-backed write-ahead log with per-record checksums.
///
/// Record wire format (one record per line):
///   <crc32-hex-8> <length-decimal> <json-payload>\n
/// Recovery reads records until EOF or the first record whose checksum or
/// length fails, truncating a torn tail — the standard WAL discipline. The
/// local database of every sharing peer logs mutations through this before
/// applying them, so a crashed peer replays to its pre-crash state and can
/// rejoin the sharing protocol where it left off.
class Wal {
 public:
  /// Opens (creating if needed) the log at `path` and recovers existing
  /// records. `recovered` receives the surviving records; may be nullptr.
  static Result<Wal> Open(std::string path,
                          std::vector<WalRecord>* recovered);

  Wal(Wal&& other) noexcept;
  Wal& operator=(Wal&& other) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Appends a record and flushes it to the OS. Returns the assigned LSN.
  Result<uint64_t> Append(const Json& payload);

  /// Truncates the log to empty (after a snapshot/checkpoint).
  Status Reset();

  uint64_t next_lsn() const { return next_lsn_; }
  const std::string& path() const { return path_; }

 private:
  Wal() = default;

  std::string path_;
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
};

/// CRC-32 (IEEE 802.3, reflected) over `data`; exposed for tests.
uint32_t Crc32(std::string_view data);

}  // namespace medsync::relational

#endif  // MEDSYNC_RELATIONAL_WAL_H_
