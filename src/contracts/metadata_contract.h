#ifndef MEDSYNC_CONTRACTS_METADATA_CONTRACT_H_
#define MEDSYNC_CONTRACTS_METADATA_CONTRACT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chain/transaction.h"
#include "contracts/contract.h"

namespace medsync::contracts {

/// The metadata-collection smart contract of the paper's Fig. 3, extended
/// with the request/ack protocol of Fig. 4.
///
/// One entry per shared table ("D13 & D31", "D23 & D32", ...) holding:
///  * the sharing peers;
///  * per-attribute WRITE permission (Fig. 3: Doctor may update every
///    attribute of D13/D31 but Patient only "Clinical Data");
///  * membership permission (who may create/delete whole rows — the
///    entry-level Create/Delete of Fig. 4);
///  * the authority allowed to change permissions (Fig. 3 rightmost
///    column);
///  * last update time, a monotonically increasing version, and the
///    content digest of the current shared data;
///  * the set of peers that still owe an ack for the latest version —
///    while non-empty, further updates are refused, enforcing "only when
///    all sharing peers have had the newest shared data can they execute
///    further operations" (Section III-B).
///
/// Methods (params/results are JSON):
///   register_table   {table_id, peers[], view_schema, write_permission
///                     {attr:[addr]}, membership_permission[], authority?}
///   request_update   {table_id, kind:"update"|"insert"|"delete",
///                     attributes[], digest, note?}
///   ack_update       {table_id, version, digest}
///   change_permission{table_id, attribute|"__rows__", peer, grant:bool}
///   set_authority    {table_id, new_authority}
///   get_entry        {table_id}               (read-only)
///   list_tables      {}                       (read-only)
///
/// Events: TableRegistered, UpdateCommitted, PeerSynced, AllPeersSynced,
/// PermissionChanged, AuthorityChanged.
class MetadataContract : public Contract {
 public:
  MetadataContract() = default;

  /// Factory for ContractHost::RegisterType("metadata", ...). Deployment
  /// takes no constructor parameters.
  static Result<std::unique_ptr<Contract>> Create(const Json& params);

  std::string_view TypeName() const override { return "metadata"; }
  Result<Json> Call(CallContext& ctx, const std::string& method,
                    const Json& params) override;
  Json StateSnapshot() const override;
  Status RestoreState(const Json& snapshot) override;

  /// The permission key controlling row creation/deletion.
  static constexpr char kRowsPermission[] = "__rows__";

 private:
  struct Entry {
    std::string table_id;
    std::vector<std::string> peers;  // hex addresses, registration order
    std::string provider;            // registering peer
    std::string authority;           // may change permissions
    Json view_schema;                // agreed structure (opaque here)
    std::map<std::string, std::set<std::string>> write_permission;
    std::set<std::string> membership_permission;
    Micros last_update_time = 0;
    uint64_t version = 0;
    std::string content_digest;
    /// Address (hex) of the peer whose update produced `version`; empty
    /// until the first committed update. Lets a restarted/lagging peer
    /// know whom to fetch the current content from.
    std::string last_updater;
    std::set<std::string> pending_acks;
    uint64_t updates_committed = 0;

    bool HasPeer(const std::string& addr_hex) const;
    Json ToJson() const;
    static Result<Entry> FromJson(const Json& json);
  };

  Result<Json> RegisterTable(CallContext& ctx, const Json& params);
  Result<Json> RequestUpdate(CallContext& ctx, const Json& params);
  Result<Json> AckUpdate(CallContext& ctx, const Json& params);
  Result<Json> ChangePermission(CallContext& ctx, const Json& params);
  Result<Json> SetAuthority(CallContext& ctx, const Json& params);
  Result<Json> GetEntry(CallContext& ctx, const Json& params) const;
  Result<Json> ListTables(CallContext& ctx) const;

  Result<Entry*> FindEntry(const std::string& table_id);

  std::map<std::string, Entry> entries_;
};

/// The Blockchain/Mempool ConflictKeyFn for the paper's one-update-per-
/// shared-table-per-block rule: returns the table id for request_update
/// transactions to a metadata contract, nullopt otherwise.
std::optional<std::string> SharedDataConflictKey(const chain::Transaction& tx);

/// The chain::LaneKeyFn for sharded deployments: returns
/// "<contract-hex>/<table_id>" for ANY transaction whose params carry a
/// table_id (request_update, ack_update, register_table, change_permission,
/// set_authority...), nullopt otherwise (deploys ride lane 0).
///
/// Broader than SharedDataConflictKey on purpose: the contract denies a new
/// RequestUpdate while a table has pending acks, so the RELATIVE order of a
/// table's acks and update requests is decision-relevant — every
/// table-scoped method must seal on the table's lane to preserve it.
std::optional<std::string> SharedDataLaneKey(const chain::Transaction& tx);

}  // namespace medsync::contracts

#endif  // MEDSYNC_CONTRACTS_METADATA_CONTRACT_H_
