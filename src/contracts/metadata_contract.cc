#include "contracts/metadata_contract.h"

#include "common/strings.h"

namespace medsync::contracts {

constexpr char MetadataContract::kRowsPermission[];

namespace {

Json StringSetToJson(const std::set<std::string>& set) {
  Json out = Json::MakeArray();
  for (const std::string& s : set) out.Append(s);
  return out;
}

Result<std::set<std::string>> StringSetFromJson(const Json& json,
                                                std::string_view what) {
  if (!json.is_array()) {
    return Status::InvalidArgument(StrCat("'", what, "' must be an array"));
  }
  std::set<std::string> out;
  for (const Json& s : json.AsArray()) {
    if (!s.is_string()) {
      return Status::InvalidArgument(
          StrCat("'", what, "' entries must be strings"));
    }
    out.insert(s.AsString());
  }
  return out;
}

}  // namespace

bool MetadataContract::Entry::HasPeer(const std::string& addr_hex) const {
  for (const std::string& peer : peers) {
    if (peer == addr_hex) return true;
  }
  return false;
}

Json MetadataContract::Entry::ToJson() const {
  Json peers_json = Json::MakeArray();
  for (const std::string& p : peers) peers_json.Append(p);
  Json perm_json = Json::MakeObject();
  for (const auto& [attr, allowed] : write_permission) {
    perm_json.Set(attr, StringSetToJson(allowed));
  }
  Json out = Json::MakeObject();
  out.Set("table_id", table_id);
  out.Set("peers", std::move(peers_json));
  out.Set("provider", provider);
  out.Set("authority", authority);
  out.Set("view_schema", view_schema);
  out.Set("write_permission", std::move(perm_json));
  out.Set("membership_permission", StringSetToJson(membership_permission));
  out.Set("last_update_time", last_update_time);
  out.Set("version", version);
  out.Set("content_digest", content_digest);
  out.Set("last_updater", last_updater);
  out.Set("pending_acks", StringSetToJson(pending_acks));
  out.Set("updates_committed", updates_committed);
  return out;
}

Result<MetadataContract::Entry> MetadataContract::Entry::FromJson(
    const Json& json) {
  Entry entry;
  MEDSYNC_ASSIGN_OR_RETURN(entry.table_id, json.GetString("table_id"));
  const Json& peers = json.At("peers");
  if (!peers.is_array()) {
    return Status::InvalidArgument("'peers' must be an array");
  }
  for (const Json& p : peers.AsArray()) entry.peers.push_back(p.AsString());
  MEDSYNC_ASSIGN_OR_RETURN(entry.provider, json.GetString("provider"));
  MEDSYNC_ASSIGN_OR_RETURN(entry.authority, json.GetString("authority"));
  entry.view_schema = json.At("view_schema");
  const Json& perms = json.At("write_permission");
  if (!perms.is_object()) {
    return Status::InvalidArgument("'write_permission' must be an object");
  }
  for (const auto& [attr, allowed] : perms.AsObject()) {
    MEDSYNC_ASSIGN_OR_RETURN(entry.write_permission[attr],
                             StringSetFromJson(allowed, attr));
  }
  MEDSYNC_ASSIGN_OR_RETURN(
      entry.membership_permission,
      StringSetFromJson(json.At("membership_permission"),
                        "membership_permission"));
  MEDSYNC_ASSIGN_OR_RETURN(entry.last_update_time,
                           json.GetInt("last_update_time"));
  MEDSYNC_ASSIGN_OR_RETURN(int64_t version, json.GetInt("version"));
  entry.version = static_cast<uint64_t>(version);
  MEDSYNC_ASSIGN_OR_RETURN(entry.content_digest,
                           json.GetString("content_digest"));
  if (json.At("last_updater").is_string()) {
    entry.last_updater = json.At("last_updater").AsString();
  }
  MEDSYNC_ASSIGN_OR_RETURN(
      entry.pending_acks,
      StringSetFromJson(json.At("pending_acks"), "pending_acks"));
  MEDSYNC_ASSIGN_OR_RETURN(int64_t committed,
                           json.GetInt("updates_committed"));
  entry.updates_committed = static_cast<uint64_t>(committed);
  return entry;
}

Result<std::unique_ptr<Contract>> MetadataContract::Create(const Json&) {
  return std::unique_ptr<Contract>(new MetadataContract());
}

Result<Json> MetadataContract::Call(CallContext& ctx,
                                    const std::string& method,
                                    const Json& params) {
  if (method == "get_entry") return GetEntry(ctx, params);
  if (method == "list_tables") return ListTables(ctx);

  if (ctx.read_only) {
    return Status::PermissionDenied(
        StrCat("method '", method, "' mutates state (read-only call)"));
  }
  if (method == "register_table") return RegisterTable(ctx, params);
  if (method == "request_update") return RequestUpdate(ctx, params);
  if (method == "ack_update") return AckUpdate(ctx, params);
  if (method == "change_permission") return ChangePermission(ctx, params);
  if (method == "set_authority") return SetAuthority(ctx, params);
  return Status::NotFound(StrCat("no contract method '", method, "'"));
}

Result<MetadataContract::Entry*> MetadataContract::FindEntry(
    const std::string& table_id) {
  auto it = entries_.find(table_id);
  if (it == entries_.end()) {
    return Status::NotFound(
        StrCat("no shared table '", table_id, "' registered"));
  }
  return &it->second;
}

Result<Json> MetadataContract::RegisterTable(CallContext& ctx,
                                             const Json& params) {
  MEDSYNC_RETURN_IF_ERROR(ctx.Charge(500 + params.Dump().size()));
  MEDSYNC_ASSIGN_OR_RETURN(std::string table_id, params.GetString("table_id"));
  if (entries_.count(table_id) > 0) {
    return Status::AlreadyExists(
        StrCat("shared table '", table_id, "' already registered"));
  }

  Entry entry;
  entry.table_id = table_id;
  MEDSYNC_ASSIGN_OR_RETURN(
      std::set<std::string> peer_set,
      StringSetFromJson(params.At("peers"), "peers"));
  // Keep registration order from the array, not set order.
  for (const Json& p : params.At("peers").AsArray()) {
    entry.peers.push_back(p.AsString());
  }
  if (entry.peers.size() < 2) {
    return Status::InvalidArgument("a shared table needs at least two peers");
  }
  if (entry.peers.size() != peer_set.size()) {
    return Status::InvalidArgument("duplicate peer in 'peers'");
  }
  std::string caller_hex = ctx.caller.ToHex();
  if (!entry.HasPeer(caller_hex)) {
    return Status::PermissionDenied(
        "the registering caller must be one of the sharing peers");
  }
  entry.provider = caller_hex;
  entry.view_schema = params.At("view_schema");

  const Json& perms = params.At("write_permission");
  if (!perms.is_object()) {
    return Status::InvalidArgument("'write_permission' must be an object");
  }
  for (const auto& [attr, allowed] : perms.AsObject()) {
    MEDSYNC_ASSIGN_OR_RETURN(std::set<std::string> allowed_set,
                             StringSetFromJson(allowed, attr));
    for (const std::string& addr : allowed_set) {
      if (!entry.HasPeer(addr)) {
        return Status::InvalidArgument(
            StrCat("write permission on '", attr,
                   "' granted to a non-peer ", addr));
      }
    }
    entry.write_permission[attr] = std::move(allowed_set);
  }

  if (params.Has("membership_permission")) {
    MEDSYNC_ASSIGN_OR_RETURN(
        entry.membership_permission,
        StringSetFromJson(params.At("membership_permission"),
                          "membership_permission"));
    for (const std::string& addr : entry.membership_permission) {
      if (!entry.HasPeer(addr)) {
        return Status::InvalidArgument(
            StrCat("membership permission granted to a non-peer ", addr));
      }
    }
  } else {
    entry.membership_permission.insert(caller_hex);
  }

  entry.authority =
      params.Has("authority") ? params.At("authority").AsString() : caller_hex;
  if (!entry.HasPeer(entry.authority)) {
    return Status::InvalidArgument("authority must be one of the peers");
  }
  if (params.Has("digest")) {
    MEDSYNC_ASSIGN_OR_RETURN(entry.content_digest, params.GetString("digest"));
  }
  entry.last_update_time = ctx.block_timestamp;
  entry.version = 1;

  Json event = Json::MakeObject();
  event.Set("table_id", table_id);
  event.Set("provider", caller_hex);
  event.Set("peers", params.At("peers"));
  event.Set("version", entry.version);
  ctx.Emit("TableRegistered", std::move(event));

  entries_.emplace(table_id, std::move(entry));
  Json out = Json::MakeObject();
  out.Set("table_id", table_id);
  out.Set("version", 1);
  return out;
}

Result<Json> MetadataContract::RequestUpdate(CallContext& ctx,
                                             const Json& params) {
  MEDSYNC_RETURN_IF_ERROR(ctx.Charge(200 + params.Dump().size()));
  MEDSYNC_ASSIGN_OR_RETURN(std::string table_id, params.GetString("table_id"));
  MEDSYNC_ASSIGN_OR_RETURN(Entry * entry, FindEntry(table_id));

  std::string caller_hex = ctx.caller.ToHex();
  // A denied request fails the transaction: no metadata changes survive and
  // no event fires, but the failed receipt remains on-chain as an audit
  // trace of who asked for what and why it was refused.
  auto deny = [](std::string why) -> Status {
    return Status::PermissionDenied(std::move(why));
  };

  if (!entry->HasPeer(caller_hex)) {
    return deny(StrCat(caller_hex, " is not a sharing peer of '", table_id,
                       "'"));
  }
  if (!entry->pending_acks.empty()) {
    return Status::FailedPrecondition(
        StrCat("shared table '", table_id, "' version ", entry->version,
               " not yet fetched by all peers (",
               entry->pending_acks.size(), " acks outstanding)"));
  }

  MEDSYNC_ASSIGN_OR_RETURN(std::string kind, params.GetString("kind"));
  Json attributes = params.At("attributes");
  if (kind == "update") {
    if (!attributes.is_array() || attributes.size() == 0) {
      return Status::InvalidArgument(
          "'attributes' must be a non-empty array for kind=update");
    }
    for (const Json& attr : attributes.AsArray()) {
      if (!attr.is_string()) {
        return Status::InvalidArgument("'attributes' must hold strings");
      }
      MEDSYNC_RETURN_IF_ERROR(ctx.Charge(20));
      auto perm_it = entry->write_permission.find(attr.AsString());
      if (perm_it == entry->write_permission.end()) {
        return deny(StrCat("attribute '", attr.AsString(),
                           "' of '", table_id, "' is not writable"));
      }
      if (perm_it->second.count(caller_hex) == 0) {
        return deny(StrCat(caller_hex, " may not write attribute '",
                           attr.AsString(), "' of '", table_id, "'"));
      }
    }
  } else if (kind == "insert" || kind == "delete") {
    if (entry->membership_permission.count(caller_hex) == 0) {
      return deny(StrCat(caller_hex, " may not ", kind, " rows of '",
                         table_id, "'"));
    }
  } else if (kind == "replace") {
    // Table-level replacement (Fig. 4 "Table Level"): may mix row
    // membership changes with attribute updates, so it needs membership
    // permission plus write permission on every changed attribute listed.
    if (entry->membership_permission.count(caller_hex) == 0) {
      return deny(StrCat(caller_hex, " may not replace rows of '", table_id,
                         "'"));
    }
    if (attributes.is_array()) {
      for (const Json& attr : attributes.AsArray()) {
        if (!attr.is_string()) {
          return Status::InvalidArgument("'attributes' must hold strings");
        }
        MEDSYNC_RETURN_IF_ERROR(ctx.Charge(20));
        auto perm_it = entry->write_permission.find(attr.AsString());
        if (perm_it == entry->write_permission.end() ||
            perm_it->second.count(caller_hex) == 0) {
          return deny(StrCat(caller_hex, " may not write attribute '",
                             attr.AsString(), "' of '", table_id, "'"));
        }
      }
    }
  } else {
    return Status::InvalidArgument(
        StrCat("unknown update kind '", kind, "'"));
  }

  MEDSYNC_ASSIGN_OR_RETURN(std::string digest, params.GetString("digest"));

  entry->version += 1;
  entry->updates_committed += 1;
  entry->last_update_time = ctx.block_timestamp;
  entry->content_digest = digest;
  entry->last_updater = caller_hex;
  entry->pending_acks.clear();
  for (const std::string& peer : entry->peers) {
    if (peer != caller_hex) entry->pending_acks.insert(peer);
  }

  Json event = Json::MakeObject();
  event.Set("table_id", table_id);
  event.Set("version", entry->version);
  event.Set("updater", caller_hex);
  event.Set("kind", kind);
  event.Set("attributes", attributes);
  event.Set("digest", digest);
  if (params.Has("note")) event.Set("note", params.At("note"));
  ctx.Emit("UpdateCommitted", std::move(event));

  Json out = Json::MakeObject();
  out.Set("table_id", table_id);
  out.Set("version", entry->version);
  return out;
}

Result<Json> MetadataContract::AckUpdate(CallContext& ctx,
                                         const Json& params) {
  MEDSYNC_RETURN_IF_ERROR(ctx.Charge(100));
  MEDSYNC_ASSIGN_OR_RETURN(std::string table_id, params.GetString("table_id"));
  MEDSYNC_ASSIGN_OR_RETURN(Entry * entry, FindEntry(table_id));
  MEDSYNC_ASSIGN_OR_RETURN(int64_t version, params.GetInt("version"));
  MEDSYNC_ASSIGN_OR_RETURN(std::string digest, params.GetString("digest"));

  std::string caller_hex = ctx.caller.ToHex();
  if (static_cast<uint64_t>(version) != entry->version) {
    return Status::FailedPrecondition(
        StrCat("ack for version ", version, " but current version is ",
               entry->version));
  }
  if (digest != entry->content_digest) {
    return Status::FailedPrecondition(
        StrCat("ack digest mismatch for '", table_id,
               "': peer fetched stale or tampered data"));
  }
  if (entry->pending_acks.erase(caller_hex) == 0) {
    return Status::FailedPrecondition(
        StrCat(caller_hex, " has no outstanding ack for '", table_id, "'"));
  }

  Json event = Json::MakeObject();
  event.Set("table_id", table_id);
  event.Set("version", entry->version);
  event.Set("peer", caller_hex);
  ctx.Emit("PeerSynced", std::move(event));

  if (entry->pending_acks.empty()) {
    Json all = Json::MakeObject();
    all.Set("table_id", table_id);
    all.Set("version", entry->version);
    ctx.Emit("AllPeersSynced", std::move(all));
  }

  Json out = Json::MakeObject();
  out.Set("remaining_acks",
          static_cast<int64_t>(entry->pending_acks.size()));
  return out;
}

Result<Json> MetadataContract::ChangePermission(CallContext& ctx,
                                                const Json& params) {
  MEDSYNC_RETURN_IF_ERROR(ctx.Charge(150));
  MEDSYNC_ASSIGN_OR_RETURN(std::string table_id, params.GetString("table_id"));
  MEDSYNC_ASSIGN_OR_RETURN(Entry * entry, FindEntry(table_id));
  MEDSYNC_ASSIGN_OR_RETURN(std::string attribute,
                           params.GetString("attribute"));
  MEDSYNC_ASSIGN_OR_RETURN(std::string peer, params.GetString("peer"));
  MEDSYNC_ASSIGN_OR_RETURN(bool grant, params.GetBool("grant"));

  std::string caller_hex = ctx.caller.ToHex();
  if (caller_hex != entry->authority) {
    return Status::PermissionDenied(
        StrCat(caller_hex, " is not the permission authority of '", table_id,
               "'"));
  }
  if (!entry->HasPeer(peer)) {
    return Status::InvalidArgument(
        StrCat(peer, " is not a sharing peer of '", table_id, "'"));
  }

  if (attribute == kRowsPermission) {
    if (grant) {
      entry->membership_permission.insert(peer);
    } else {
      entry->membership_permission.erase(peer);
    }
  } else {
    auto& allowed = entry->write_permission[attribute];
    if (grant) {
      allowed.insert(peer);
    } else {
      allowed.erase(peer);
      if (allowed.empty()) entry->write_permission.erase(attribute);
    }
  }
  entry->last_update_time = ctx.block_timestamp;

  Json event = Json::MakeObject();
  event.Set("table_id", table_id);
  event.Set("attribute", attribute);
  event.Set("peer", peer);
  event.Set("grant", grant);
  event.Set("authority", caller_hex);
  ctx.Emit("PermissionChanged", std::move(event));

  return Json(Json::MakeObject());
}

Result<Json> MetadataContract::SetAuthority(CallContext& ctx,
                                            const Json& params) {
  MEDSYNC_RETURN_IF_ERROR(ctx.Charge(100));
  MEDSYNC_ASSIGN_OR_RETURN(std::string table_id, params.GetString("table_id"));
  MEDSYNC_ASSIGN_OR_RETURN(Entry * entry, FindEntry(table_id));
  MEDSYNC_ASSIGN_OR_RETURN(std::string new_authority,
                           params.GetString("new_authority"));

  std::string caller_hex = ctx.caller.ToHex();
  if (caller_hex != entry->authority) {
    return Status::PermissionDenied(
        StrCat(caller_hex, " is not the permission authority of '", table_id,
               "'"));
  }
  if (!entry->HasPeer(new_authority)) {
    return Status::InvalidArgument("new authority must be a sharing peer");
  }
  entry->authority = new_authority;
  entry->last_update_time = ctx.block_timestamp;

  Json event = Json::MakeObject();
  event.Set("table_id", table_id);
  event.Set("old_authority", caller_hex);
  event.Set("new_authority", new_authority);
  ctx.Emit("AuthorityChanged", std::move(event));
  return Json(Json::MakeObject());
}

Result<Json> MetadataContract::GetEntry(CallContext& ctx,
                                        const Json& params) const {
  MEDSYNC_RETURN_IF_ERROR(ctx.Charge(50));
  MEDSYNC_ASSIGN_OR_RETURN(std::string table_id, params.GetString("table_id"));
  auto it = entries_.find(table_id);
  if (it == entries_.end()) {
    return Status::NotFound(
        StrCat("no shared table '", table_id, "' registered"));
  }
  return it->second.ToJson();
}

Result<Json> MetadataContract::ListTables(CallContext& ctx) const {
  MEDSYNC_RETURN_IF_ERROR(ctx.Charge(10 + entries_.size()));
  Json out = Json::MakeArray();
  for (const auto& [id, entry] : entries_) out.Append(id);
  return out;
}

Json MetadataContract::StateSnapshot() const {
  Json out = Json::MakeObject();
  for (const auto& [id, entry] : entries_) {
    out.Set(id, entry.ToJson());
  }
  return out;
}

Status MetadataContract::RestoreState(const Json& snapshot) {
  if (!snapshot.is_object()) {
    return Status::InvalidArgument("snapshot must be an object");
  }
  std::map<std::string, Entry> restored;
  for (const auto& [id, entry_json] : snapshot.AsObject()) {
    MEDSYNC_ASSIGN_OR_RETURN(Entry entry, Entry::FromJson(entry_json));
    restored.emplace(id, std::move(entry));
  }
  entries_ = std::move(restored);
  return Status::OK();
}

std::optional<std::string> SharedDataConflictKey(
    const chain::Transaction& tx) {
  if (tx.method != "request_update") return std::nullopt;
  auto table_id = tx.params.GetString("table_id");
  if (!table_id.ok()) return std::nullopt;
  return StrCat(tx.to.ToHex(), "/", *table_id);
}

std::optional<std::string> SharedDataLaneKey(const chain::Transaction& tx) {
  // Any table-scoped call shares its table's lane; the key intentionally
  // matches SharedDataConflictKey's format so LaneForKey(conflict key)
  // locates the same lane.
  auto table_id = tx.params.GetString("table_id");
  if (!table_id.ok()) return std::nullopt;
  return StrCat(tx.to.ToHex(), "/", *table_id);
}

}  // namespace medsync::contracts
