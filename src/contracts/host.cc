#include "contracts/host.h"

#include "common/strings.h"
#include "crypto/sha256.h"

namespace medsync::contracts {

Json Receipt::ToJson() const {
  Json events_json = Json::MakeArray();
  for (const Event& event : events) events_json.Append(event.ToJson());
  Json out = Json::MakeObject();
  out.Set("tx_id", tx_id);
  out.Set("block_height", block_height);
  out.Set("tx_index", static_cast<int64_t>(tx_index));
  out.Set("ok", ok);
  out.Set("error", error);
  out.Set("return_value", return_value);
  out.Set("gas_used", gas_used);
  out.Set("events", std::move(events_json));
  return out;
}

ContractHost::ContractHost(uint64_t gas_limit_per_tx)
    : gas_limit_per_tx_(gas_limit_per_tx) {}

void ContractHost::RegisterType(const std::string& type_name,
                                Factory factory) {
  factories_[type_name] = std::move(factory);
}

crypto::Address ContractHost::DeploymentAddress(const chain::Transaction& tx) {
  crypto::Hash256 digest = crypto::Sha256::Hash(
      StrCat("deploy|", tx.from.ToHex(), "|", tx.nonce));
  return crypto::Address::FromPublicKey(digest);
}

Receipt ContractHost::ExecuteTransaction(const chain::Transaction& tx,
                                         uint64_t block_height,
                                         size_t tx_index,
                                         Micros block_timestamp) {
  Receipt receipt;
  receipt.tx_id = tx.Id().ToHex();
  receipt.block_height = block_height;
  receipt.tx_index = tx_index;

  GasMeter gas(gas_limit_per_tx_);
  std::vector<Event> events;
  CallContext ctx;
  ctx.caller = tx.from;
  ctx.block_height = block_height;
  ctx.block_timestamp = block_timestamp;
  ctx.gas = &gas;
  ctx.events = &events;

  auto fail = [&](const Status& status) {
    receipt.ok = false;
    receipt.error = status.ToString();
    receipt.gas_used = gas.used();
    return receipt;
  };

  if (tx.to.IsZero()) {
    // Deployment: tx.method names the contract type.
    auto factory_it = factories_.find(tx.method);
    if (factory_it == factories_.end()) {
      return fail(Status::NotFound(
          StrCat("unknown contract type '", tx.method, "'")));
    }
    crypto::Address address = DeploymentAddress(tx);
    std::string addr_hex = address.ToHex();
    if (contracts_.count(addr_hex) > 0) {
      return fail(Status::AlreadyExists(
          StrCat("contract already deployed at ", addr_hex)));
    }
    if (Status s = gas.Charge(21000 + tx.params.Dump().size()); !s.ok()) {
      return fail(s);
    }
    Result<std::unique_ptr<Contract>> contract = factory_it->second(tx.params);
    if (!contract.ok()) return fail(contract.status());
    contracts_.emplace(addr_hex, std::move(*contract));

    ctx.contract = address;
    ctx.Emit("ContractDeployed", [&] {
      Json payload = Json::MakeObject();
      payload.Set("address", addr_hex);
      payload.Set("type", tx.method);
      payload.Set("deployer", tx.from.ToHex());
      return payload;
    }());
    receipt.ok = true;
    Json ret = Json::MakeObject();
    ret.Set("address", addr_hex);
    receipt.return_value = std::move(ret);
    receipt.gas_used = gas.used();
    receipt.events = std::move(events);
    return receipt;
  }

  // Regular call.
  auto contract_it = contracts_.find(tx.to.ToHex());
  if (contract_it == contracts_.end()) {
    return fail(Status::NotFound(
        StrCat("no contract at ", tx.to.ToHex())));
  }
  Contract& contract = *contract_it->second;
  ctx.contract = tx.to;

  if (Status s = gas.Charge(21000); !s.ok()) return fail(s);

  // Snapshot-and-restore gives failed calls transactional semantics.
  Json before = contract.StateSnapshot();
  Result<Json> result = contract.Call(ctx, tx.method, tx.params);
  if (!result.ok()) {
    Status restore = contract.RestoreState(before);
    if (!restore.ok()) {
      return fail(Status::Internal(
          StrCat("state rollback failed after error: ", restore.ToString(),
                 " (original: ", result.status().ToString(), ")")));
    }
    return fail(result.status());
  }

  receipt.ok = true;
  receipt.return_value = std::move(*result);
  receipt.gas_used = gas.used();
  receipt.events = std::move(events);
  return receipt;
}

std::vector<Receipt> ContractHost::ExecuteBlock(const chain::Block& block) {
  std::vector<Receipt> receipts;
  receipts.reserve(block.transactions.size());
  for (size_t i = 0; i < block.transactions.size(); ++i) {
    Receipt receipt =
        ExecuteTransaction(block.transactions[i], block.header.height, i,
                           block.header.timestamp);
    if (receipt.ok) {
      for (const Event& event : receipt.events) {
        event_log_.push_back(LoggedEvent{block.header.height, event});
      }
    }
    receipts_.emplace(receipt.tx_id, receipt);
    receipts.push_back(std::move(receipt));
  }
  ++executed_blocks_;
  return receipts;
}

Result<Json> ContractHost::StaticCall(const crypto::Address& contract,
                                      const std::string& method,
                                      const Json& params,
                                      const crypto::Address& caller) {
  auto it = contracts_.find(contract.ToHex());
  if (it == contracts_.end()) {
    return Status::NotFound(StrCat("no contract at ", contract.ToHex()));
  }
  GasMeter gas(gas_limit_per_tx_);
  CallContext ctx;
  ctx.caller = caller;
  ctx.contract = contract;
  ctx.read_only = true;
  ctx.gas = &gas;
  ctx.events = nullptr;
  return it->second->Call(ctx, method, params);
}

bool ContractHost::HasContract(const crypto::Address& address) const {
  return contracts_.count(address.ToHex()) > 0;
}

std::vector<crypto::Address> ContractHost::DeployedContracts() const {
  std::vector<crypto::Address> out;
  for (const auto& [hex, contract] : contracts_) {
    bool ok = false;
    out.push_back(crypto::Address::FromHex(hex, &ok));
  }
  return out;
}

const Receipt* ContractHost::FindReceipt(const std::string& tx_id_hex) const {
  auto it = receipts_.find(tx_id_hex);
  return it == receipts_.end() ? nullptr : &it->second;
}

std::string ContractHost::StateFingerprint() const {
  crypto::Sha256 hasher;
  for (const auto& [addr, contract] : contracts_) {
    hasher.Update(addr);
    hasher.Update(contract->StateSnapshot().Dump());
  }
  return hasher.Finish().ToHex();
}

void ContractHost::Reset() {
  contracts_.clear();
  receipts_.clear();
  event_log_.clear();
  executed_blocks_ = 0;
}

}  // namespace medsync::contracts
