#include "contracts/contract.h"

#include "common/strings.h"

namespace medsync::contracts {

Json Event::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("contract", contract.ToHex());
  out.Set("name", name);
  out.Set("payload", payload);
  return out;
}

Status GasMeter::Charge(uint64_t units) {
  if (used_ + units > limit_) {
    used_ = limit_;
    return Status::ResourceExhausted(
        StrCat("out of gas: needed ", units, " more with ", used_, "/",
               limit_, " used"));
  }
  used_ += units;
  return Status::OK();
}

void CallContext::Emit(std::string name, Json payload) {
  if (events == nullptr) return;
  events->push_back(Event{contract, std::move(name), std::move(payload)});
}

}  // namespace medsync::contracts
