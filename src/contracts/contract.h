#ifndef MEDSYNC_CONTRACTS_CONTRACT_H_
#define MEDSYNC_CONTRACTS_CONTRACT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/result.h"
#include "crypto/keys.h"

namespace medsync::contracts {

/// An event emitted during contract execution. Events are the notification
/// channel of the architecture (Fig. 4 step 4, "smart contracts notify
/// sharing peers of modification"): chain nodes surface them to their local
/// clients after the containing block is executed.
struct Event {
  crypto::Address contract;
  std::string name;
  Json payload;

  Json ToJson() const;
};

/// Deterministic execution-cost meter, the EVM-gas analogue. Each contract
/// charges units proportional to the work it does; exceeding the per-
/// transaction limit aborts the call with ResourceExhausted. This bounds
/// the cost any single transaction can impose on every validating node.
class GasMeter {
 public:
  explicit GasMeter(uint64_t limit) : limit_(limit) {}

  Status Charge(uint64_t units);
  uint64_t used() const { return used_; }
  uint64_t limit() const { return limit_; }

 private:
  uint64_t limit_;
  uint64_t used_ = 0;
};

/// Per-call context handed to a contract method.
struct CallContext {
  crypto::Address caller;
  crypto::Address contract;
  uint64_t block_height = 0;
  Micros block_timestamp = 0;
  bool read_only = false;
  GasMeter* gas = nullptr;
  std::vector<Event>* events = nullptr;

  Status Charge(uint64_t units) { return gas->Charge(units); }
  void Emit(std::string name, Json payload);
};

/// Base interface for native deterministic contracts.
///
/// Substitution note (see DESIGN.md): the paper deploys Solidity/EVM
/// bytecode; here a contract is a C++ object whose state evolves ONLY
/// through Call() with deterministic inputs (caller, block height/time,
/// params). Every validating node constructs its own instance and replays
/// the same transaction sequence, so replicas stay bit-identical — the same
/// replication discipline the EVM provides.
class Contract {
 public:
  virtual ~Contract() = default;

  virtual std::string_view TypeName() const = 0;

  /// Executes `method` with `params`. Mutations are forbidden when
  /// `ctx.read_only` is set. Errors roll the transaction back (the host
  /// discards any emitted events and records a failed receipt).
  virtual Result<Json> Call(CallContext& ctx, const std::string& method,
                            const Json& params) = 0;

  /// Canonical state snapshot, used (a) by tests to assert replica
  /// convergence and (b) by the host to roll a contract back when a call
  /// fails mid-mutation (failed transactions must leave no trace beyond
  /// their receipt).
  virtual Json StateSnapshot() const = 0;

  /// Restores state captured by StateSnapshot().
  virtual Status RestoreState(const Json& snapshot) = 0;
};

}  // namespace medsync::contracts

#endif  // MEDSYNC_CONTRACTS_CONTRACT_H_
