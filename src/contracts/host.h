#ifndef MEDSYNC_CONTRACTS_HOST_H_
#define MEDSYNC_CONTRACTS_HOST_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/block.h"
#include "contracts/contract.h"

namespace medsync::contracts {

/// Outcome of executing one transaction. Like Ethereum, a failed contract
/// call is still INCLUDED in the block — the receipt records the failure
/// and no state changes or events survive — so a denied permission request
/// leaves an auditable on-chain trace (who asked for what, and that it was
/// refused).
struct Receipt {
  std::string tx_id;  // hex
  uint64_t block_height = 0;
  size_t tx_index = 0;
  bool ok = false;
  std::string error;          // empty when ok
  Json return_value;          // contract return on success
  uint64_t gas_used = 0;
  std::vector<Event> events;  // only on success

  Json ToJson() const;
};

/// The contract execution engine each chain node runs — the EVM analogue.
///
/// Determinism contract: given the same genesis (registered types) and the
/// same block sequence, two hosts produce identical receipts, events, and
/// contract state (asserted by replica-convergence tests via
/// StateFingerprint()).
class ContractHost {
 public:
  /// Builds a contract instance from deployment parameters.
  using Factory =
      std::function<Result<std::unique_ptr<Contract>>(const Json& params)>;

  explicit ContractHost(uint64_t gas_limit_per_tx = 1'000'000);

  /// Registers a deployable contract type. Must be called identically on
  /// every node before execution starts (the "genesis configuration").
  void RegisterType(const std::string& type_name, Factory factory);

  /// Deterministic deployment address for a creation transaction.
  static crypto::Address DeploymentAddress(const chain::Transaction& tx);

  /// Executes every transaction of `block` in order, returning one receipt
  /// per transaction. A transaction with tx.to == zero deploys a contract
  /// of type tx.method with tx.params as constructor arguments.
  std::vector<Receipt> ExecuteBlock(const chain::Block& block);

  /// Read-only call against current state (a local query, not a
  /// transaction — the paper's "Read: query local database directly"
  /// analogue for contract metadata).
  Result<Json> StaticCall(const crypto::Address& contract,
                          const std::string& method, const Json& params,
                          const crypto::Address& caller);

  bool HasContract(const crypto::Address& address) const;
  std::vector<crypto::Address> DeployedContracts() const;

  /// Receipt lookup by transaction id (hex). Receipts accumulate across
  /// executed blocks.
  const Receipt* FindReceipt(const std::string& tx_id_hex) const;

  /// All events from successfully executed transactions, oldest first,
  /// annotated with the block height that produced them.
  struct LoggedEvent {
    uint64_t block_height;
    Event event;
  };
  const std::vector<LoggedEvent>& event_log() const { return event_log_; }

  /// SHA-256 over all contract state snapshots — replica convergence probe.
  std::string StateFingerprint() const;

  /// Drops all state (for canonical-chain re-execution after a reorg).
  void Reset();

  uint64_t executed_blocks() const { return executed_blocks_; }

 private:
  Receipt ExecuteTransaction(const chain::Transaction& tx,
                             uint64_t block_height, size_t tx_index,
                             Micros block_timestamp);

  uint64_t gas_limit_per_tx_;
  std::map<std::string, Factory> factories_;
  std::map<std::string, std::unique_ptr<Contract>> contracts_;  // hex addr
  std::map<std::string, Receipt> receipts_;                     // tx id hex
  std::vector<LoggedEvent> event_log_;
  uint64_t executed_blocks_ = 0;
};

}  // namespace medsync::contracts

#endif  // MEDSYNC_CONTRACTS_HOST_H_
