#ifndef MEDSYNC_CRYPTO_SHA256_H_
#define MEDSYNC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace medsync::crypto {

/// A 32-byte digest. Hash256 is the identity type for blocks, transactions,
/// and Merkle nodes throughout the chain substrate.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  /// All-zero digest (used as the genesis parent hash).
  static Hash256 Zero() { return Hash256{}; }

  /// Parses a 64-character hex string; returns Zero() and sets ok=false on
  /// malformed input.
  static Hash256 FromHex(std::string_view hex, bool* ok);

  bool IsZero() const;

  /// Lowercase hex, 64 characters.
  std::string ToHex() const;

  /// First 8 hex characters — convenient for traces.
  std::string ShortHex() const;

  friend bool operator==(const Hash256& a, const Hash256& b) {
    return a.bytes == b.bytes;
  }
  friend bool operator!=(const Hash256& a, const Hash256& b) {
    return !(a == b);
  }
  friend bool operator<(const Hash256& a, const Hash256& b) {
    return a.bytes < b.bytes;
  }
};

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch — the
/// reproduction has no crypto library dependency.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `size` bytes.
  void Update(const void* data, size_t size);
  void Update(std::string_view data);
  void Update(const std::vector<uint8_t>& data);

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without Reset().
  Hash256 Finish();

  void Reset();

  /// One-shot helpers.
  static Hash256 Hash(std::string_view data);
  static Hash256 Hash(const std::vector<uint8_t>& data);

  /// Hash of the concatenation of two digests — the Merkle-tree node rule.
  static Hash256 HashPair(const Hash256& left, const Hash256& right);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_size_;
};

/// HMAC-SHA256 per RFC 2104; used by the simulated signature scheme.
Hash256 HmacSha256(std::string_view key, std::string_view message);

}  // namespace medsync::crypto

#endif  // MEDSYNC_CRYPTO_SHA256_H_
