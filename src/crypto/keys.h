#ifndef MEDSYNC_CRYPTO_KEYS_H_
#define MEDSYNC_CRYPTO_KEYS_H_

#include <string>
#include <string_view>

#include "crypto/sha256.h"

namespace medsync::crypto {

/// A 20-byte account address derived from the public key (Ethereum-style:
/// the tail of the key hash), rendered as 40 hex chars with an "0x" prefix.
struct Address {
  std::array<uint8_t, 20> bytes{};

  static Address Zero() { return Address{}; }
  static Address FromPublicKey(const Hash256& public_key);

  /// Parses "0x"-prefixed 40-hex-char text; sets *ok=false on bad input.
  static Address FromHex(std::string_view hex, bool* ok);

  bool IsZero() const;
  std::string ToHex() const;  // "0x" + 40 hex chars

  friend bool operator==(const Address& a, const Address& b) {
    return a.bytes == b.bytes;
  }
  friend bool operator!=(const Address& a, const Address& b) {
    return !(a == b);
  }
  friend bool operator<(const Address& a, const Address& b) {
    return a.bytes < b.bytes;
  }
};

/// A detached signature over a message digest.
struct Signature {
  Hash256 mac;       // HMAC(secret, message)
  Hash256 pub_hint;  // public key of the signer, so verifiers can recompute

  std::string ToHex() const { return mac.ToHex() + pub_hint.ToHex(); }
};

/// SIMULATED signature scheme (documented substitution, see DESIGN.md).
///
/// The paper's Ethereum substrate uses ECDSA over secp256k1. Reimplementing
/// big-number EC math adds nothing to the behaviour under test, so keypairs
/// here are hash-derived: secret = SHA256(seed), public = SHA256(secret),
/// sign = HMAC(secret, message). Verification in this model requires the
/// verifier to derive the public key from the signature's claimed key hint
/// and check the MAC against a registry; since every simulated node derives
/// identical keys from identical seeds, forgery is "impossible" within the
/// simulation in exactly the way it is economically impossible on-chain.
/// NOT SECURE for real use.
class KeyPair {
 public:
  /// Deterministically derives a keypair from a human-readable identity
  /// string (e.g. "doctor", "patient-7").
  static KeyPair FromSeed(std::string_view seed);

  const Hash256& public_key() const { return public_key_; }
  const Address& address() const { return address_; }

  /// Signs an arbitrary message (usually a transaction digest's hex form).
  Signature Sign(std::string_view message) const;

  /// Verifies a signature allegedly produced by the key with public key
  /// `signer_public`. In the simulated scheme this recomputes the HMAC with
  /// the secret derivable only by the holder; the verifier-side check uses
  /// the invariant public == SHA256(secret) by re-deriving from the hint.
  static bool Verify(const Hash256& signer_public, std::string_view message,
                     const Signature& sig);

 private:
  KeyPair() = default;

  Hash256 secret_;
  Hash256 public_key_;
  Address address_;
};

}  // namespace medsync::crypto

#endif  // MEDSYNC_CRYPTO_KEYS_H_
