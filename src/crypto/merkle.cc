#include "crypto/merkle.h"

#include <cassert>

namespace medsync::crypto {

MerkleTree::MerkleTree(std::vector<Hash256> leaves) {
  if (leaves.empty()) {
    root_ = Hash256::Zero();
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const std::vector<Hash256>& prev = levels_.back();
    std::vector<Hash256> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      const Hash256& left = prev[i];
      const Hash256& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(Sha256::HashPair(left, right));
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::BuildProof(uint64_t index) const {
  assert(!levels_.empty() && index < levels_[0].size());
  MerkleProof proof;
  proof.leaf_index = index;
  uint64_t pos = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Hash256>& nodes = levels_[level];
    MerkleProofStep step;
    if (pos % 2 == 0) {
      // Sibling to the right (or self-pair at the end).
      uint64_t sib = (pos + 1 < nodes.size()) ? pos + 1 : pos;
      step.sibling = nodes[sib];
      step.sibling_is_left = false;
    } else {
      step.sibling = nodes[pos - 1];
      step.sibling_is_left = true;
    }
    proof.steps.push_back(step);
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyProof(const Hash256& leaf, const MerkleProof& proof,
                             const Hash256& root) {
  Hash256 running = leaf;
  for (const MerkleProofStep& step : proof.steps) {
    running = step.sibling_is_left ? Sha256::HashPair(step.sibling, running)
                                   : Sha256::HashPair(running, step.sibling);
  }
  return running == root;
}

Hash256 MerkleTree::ComputeRoot(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return Hash256::Zero();
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i < level.size(); i += 2) {
      const Hash256& left = level[i];
      const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(Sha256::HashPair(left, right));
    }
    level = std::move(next);
  }
  return level[0];
}

}  // namespace medsync::crypto
