#include "crypto/merkle.h"

#include <cassert>

#include "common/threading/thread_pool.h"

namespace medsync::crypto {

namespace {

/// Builds the parent level of `prev`: parent i hashes children (2i, 2i+1),
/// the odd tail node pairing with itself. Parent slots are independent, so
/// big levels are chunked across the pool; every slot is written exactly
/// once, making the result identical to the serial loop.
std::vector<Hash256> NextLevel(const std::vector<Hash256>& prev,
                               threading::ThreadPool* pool) {
  const size_t parent_count = (prev.size() + 1) / 2;
  std::vector<Hash256> next(parent_count);
  auto fill = [&prev, &next](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Hash256& left = prev[2 * i];
      const Hash256& right =
          (2 * i + 1 < prev.size()) ? prev[2 * i + 1] : prev[2 * i];
      next[i] = Sha256::HashPair(left, right);
    }
  };
  if (pool != nullptr && parent_count >= MerkleTree::kParallelLeafThreshold) {
    threading::ParallelFor(pool, 0, parent_count,
                           MerkleTree::kParallelLeafThreshold / 4, fill);
  } else {
    fill(0, parent_count);
  }
  return next;
}

}  // namespace

MerkleTree::MerkleTree(std::vector<Hash256> leaves,
                       threading::ThreadPool* pool) {
  if (leaves.empty()) {
    root_ = Hash256::Zero();
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    levels_.push_back(NextLevel(levels_.back(), pool));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::BuildProof(uint64_t index) const {
  assert(!levels_.empty() && index < levels_[0].size());
  MerkleProof proof;
  proof.leaf_index = index;
  uint64_t pos = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Hash256>& nodes = levels_[level];
    MerkleProofStep step;
    if (pos % 2 == 0) {
      // Sibling to the right (or self-pair at the end).
      uint64_t sib = (pos + 1 < nodes.size()) ? pos + 1 : pos;
      step.sibling = nodes[sib];
      step.sibling_is_left = false;
    } else {
      step.sibling = nodes[pos - 1];
      step.sibling_is_left = true;
    }
    proof.steps.push_back(step);
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyProof(const Hash256& leaf, const MerkleProof& proof,
                             const Hash256& root) {
  Hash256 running = leaf;
  for (const MerkleProofStep& step : proof.steps) {
    running = step.sibling_is_left ? Sha256::HashPair(step.sibling, running)
                                   : Sha256::HashPair(running, step.sibling);
  }
  return running == root;
}

Hash256 MerkleTree::ComputeRoot(const std::vector<Hash256>& leaves,
                                threading::ThreadPool* pool) {
  if (leaves.empty()) return Hash256::Zero();
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    level = NextLevel(level, pool);
  }
  return level[0];
}

}  // namespace medsync::crypto
