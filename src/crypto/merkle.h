#ifndef MEDSYNC_CRYPTO_MERKLE_H_
#define MEDSYNC_CRYPTO_MERKLE_H_

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace medsync::threading {
class ThreadPool;
}  // namespace medsync::threading

namespace medsync::crypto {

/// One step of a Merkle inclusion proof: the sibling digest and whether the
/// sibling sits to the left of the running hash.
struct MerkleProofStep {
  Hash256 sibling;
  bool sibling_is_left = false;
};

/// An inclusion proof for one leaf of a Merkle tree.
struct MerkleProof {
  uint64_t leaf_index = 0;
  std::vector<MerkleProofStep> steps;
};

/// Binary Merkle tree over transaction digests (Bitcoin-style: odd nodes are
/// paired with themselves). Blocks commit to their transaction set through
/// the root; light-client-style audit checks use inclusion proofs.
class MerkleTree {
 public:
  /// Pair hashes are independent within a level, so levels with at least
  /// this many parent nodes are built with ParallelFor when a pool is
  /// given; smaller levels stay serial (dispatch would dominate).
  static constexpr size_t kParallelLeafThreshold = 256;

  /// Builds the tree over `leaves`. An empty leaf set has the Zero() root.
  /// `pool` (optional) parallelizes level construction; the resulting tree
  /// is identical to the serial build.
  explicit MerkleTree(std::vector<Hash256> leaves,
                      threading::ThreadPool* pool = nullptr);

  const Hash256& root() const { return root_; }
  size_t leaf_count() const { return levels_.empty() ? 0 : levels_[0].size(); }

  /// Builds an inclusion proof for leaf `index` (must be < leaf_count()).
  MerkleProof BuildProof(uint64_t index) const;

  /// Verifies that `leaf` is included under `root` via `proof`.
  static bool VerifyProof(const Hash256& leaf, const MerkleProof& proof,
                          const Hash256& root);

  /// Computes just the root without materializing the tree. `pool`
  /// (optional) parallelizes each level above kParallelLeafThreshold; the
  /// root is identical to the serial computation.
  static Hash256 ComputeRoot(const std::vector<Hash256>& leaves,
                             threading::ThreadPool* pool = nullptr);

 private:
  std::vector<std::vector<Hash256>> levels_;  // levels_[0] == leaves
  Hash256 root_;
};

}  // namespace medsync::crypto

#endif  // MEDSYNC_CRYPTO_MERKLE_H_
