#include "crypto/keys.h"

#include <cstring>
#include <map>

#include "common/strings.h"
#include "common/thread_annotations.h"
#include "common/threading/mutex.h"

namespace medsync::crypto {

namespace {

/// Process-global registry mapping public key -> secret. Verification in the
/// simulated scheme needs the secret; within the single-process simulation
/// this registry plays the role the EC math plays in reality: the ONLY way a
/// valid MAC can exist is if it was produced via the secret registered for
/// that public key, so a signature made with any other secret fails to
/// verify. See the class comment in keys.h.
class KeyRegistry {
 public:
  static KeyRegistry& Instance() {
    static KeyRegistry* instance = new KeyRegistry();
    return *instance;
  }

  void Register(const Hash256& public_key, const Hash256& secret)
      MEDSYNC_EXCLUDES(mutex_) {
    threading::MutexLock lock(mutex_);
    secrets_[public_key] = secret;
  }

  bool Lookup(const Hash256& public_key, Hash256* secret) const
      MEDSYNC_EXCLUDES(mutex_) {
    threading::MutexLock lock(mutex_);
    auto it = secrets_.find(public_key);
    if (it == secrets_.end()) return false;
    *secret = it->second;
    return true;
  }

 private:
  mutable threading::Mutex mutex_;
  std::map<Hash256, Hash256> secrets_ MEDSYNC_GUARDED_BY(mutex_);
};

}  // namespace

Address Address::FromPublicKey(const Hash256& public_key) {
  Hash256 digest = Sha256::Hash(public_key.ToHex());
  Address out;
  std::memcpy(out.bytes.data(), digest.bytes.data() + 12, 20);
  return out;
}

Address Address::FromHex(std::string_view hex, bool* ok) {
  Address out;
  if (StartsWith(hex, "0x")) hex.remove_prefix(2);
  std::vector<uint8_t> bytes;
  if (hex.size() != 40 || !HexDecode(hex, &bytes)) {
    if (ok) *ok = false;
    return out;
  }
  std::memcpy(out.bytes.data(), bytes.data(), 20);
  if (ok) *ok = true;
  return out;
}

bool Address::IsZero() const {
  for (uint8_t b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

std::string Address::ToHex() const {
  return "0x" + HexEncode(bytes.data(), bytes.size());
}

KeyPair KeyPair::FromSeed(std::string_view seed) {
  KeyPair kp;
  kp.secret_ = Sha256::Hash(StrCat("medsync-secret|", seed));
  kp.public_key_ = Sha256::Hash(StrCat("medsync-public|", kp.secret_.ToHex()));
  kp.address_ = Address::FromPublicKey(kp.public_key_);
  KeyRegistry::Instance().Register(kp.public_key_, kp.secret_);
  return kp;
}

Signature KeyPair::Sign(std::string_view message) const {
  Signature sig;
  sig.mac = HmacSha256(secret_.ToHex(), message);
  sig.pub_hint = public_key_;
  return sig;
}

bool KeyPair::Verify(const Hash256& signer_public, std::string_view message,
                     const Signature& sig) {
  if (sig.pub_hint != signer_public) return false;
  Hash256 secret;
  if (!KeyRegistry::Instance().Lookup(signer_public, &secret)) return false;
  return HmacSha256(secret.ToHex(), message) == sig.mac;
}

}  // namespace medsync::crypto
