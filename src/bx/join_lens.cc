#include "bx/join_lens.h"

#include "common/strings.h"

namespace medsync::bx {

using relational::AttributeDef;
using relational::Key;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

LookupJoinLens::LookupJoinLens(Table reference)
    : reference_(std::move(reference)) {}

std::vector<size_t> LookupJoinLens::ExtraIndices() const {
  std::vector<size_t> extras;
  const Schema& rs = reference_.schema();
  for (size_t i = 0; i < rs.attribute_count(); ++i) {
    if (!rs.IsKeyAttribute(rs.attributes()[i].name)) extras.push_back(i);
  }
  return extras;
}

Result<Schema> LookupJoinLens::ViewSchema(const Schema& source_schema) const {
  const Schema& rs = reference_.schema();
  // Every reference key attribute must exist in the source, same type.
  for (size_t idx : rs.key_indices()) {
    const AttributeDef& key_attr = rs.attributes()[idx];
    std::optional<size_t> source_idx = source_schema.IndexOf(key_attr.name);
    if (!source_idx.has_value()) {
      return Status::InvalidArgument(
          StrCat("lookup join key '", key_attr.name, "' not in source"));
    }
    if (source_schema.attributes()[*source_idx].type != key_attr.type) {
      return Status::InvalidArgument(
          StrCat("lookup join key '", key_attr.name, "' type mismatch"));
    }
  }
  // Enrichment columns must not collide with source attributes.
  std::vector<AttributeDef> attrs = source_schema.attributes();
  for (size_t idx : ExtraIndices()) {
    const AttributeDef& extra = reference_.schema().attributes()[idx];
    if (source_schema.HasAttribute(extra.name)) {
      return Status::InvalidArgument(
          StrCat("enrichment attribute '", extra.name,
                 "' collides with a source attribute"));
    }
    attrs.push_back(extra);
  }
  return Schema::Create(std::move(attrs), source_schema.key_attributes());
}

Result<Table> LookupJoinLens::Get(const Table& source) const {
  MEDSYNC_ASSIGN_OR_RETURN(Schema view_schema, ViewSchema(source.schema()));
  const Schema& rs = reference_.schema();
  std::vector<size_t> source_key_idx;
  for (const std::string& key : rs.key_attributes()) {
    source_key_idx.push_back(*source.schema().IndexOf(key));
  }
  std::vector<size_t> extras = ExtraIndices();

  Table view(view_schema);
  for (const auto& [key, row] : source.scan()) {
    Key lookup;
    lookup.reserve(source_key_idx.size());
    for (size_t idx : source_key_idx) lookup.push_back(row[idx]);
    std::optional<Row> match = reference_.Get(lookup);
    if (!match.has_value()) {
      return Status::FailedPrecondition(
          StrCat("lookup join is not total: no reference entry for ",
                 relational::RowToString(lookup)));
    }
    Row joined = row;
    for (size_t idx : extras) joined.push_back((*match)[idx]);
    MEDSYNC_RETURN_IF_ERROR(view.Insert(std::move(joined)));
  }
  return view;
}

Result<Table> LookupJoinLens::Put(const Table& source,
                                  const Table& view) const {
  MEDSYNC_ASSIGN_OR_RETURN(Schema expected_vs, ViewSchema(source.schema()));
  if (view.schema() != expected_vs) {
    return Status::InvalidArgument(
        "lookup join put: view schema does not match lens definition");
  }
  const Schema& rs = reference_.schema();
  std::vector<size_t> view_key_idx;  // join key positions in the view
  for (const std::string& key : rs.key_attributes()) {
    view_key_idx.push_back(*expected_vs.IndexOf(key));
  }
  std::vector<size_t> extras = ExtraIndices();
  const size_t source_arity = source.schema().attribute_count();

  Table updated(source.schema());
  for (const auto& [key, vrow] : view.scan()) {
    Key lookup;
    lookup.reserve(view_key_idx.size());
    for (size_t idx : view_key_idx) lookup.push_back(vrow[idx]);
    std::optional<Row> match = reference_.Get(lookup);
    if (!match.has_value()) {
      return Status::FailedPrecondition(
          StrCat("untranslatable view update: no reference entry for ",
                 relational::RowToString(lookup)));
    }
    // The enrichment columns must agree with the reference — they are
    // read-only through this lens.
    for (size_t e = 0; e < extras.size(); ++e) {
      if (vrow[source_arity + e] != (*match)[extras[e]]) {
        return Status::FailedPrecondition(StrCat(
            "untranslatable view update: enrichment attribute '",
            rs.attributes()[extras[e]].name,
            "' disagrees with the reference for ",
            relational::RowToString(lookup)));
      }
    }
    Row srow(vrow.begin(), vrow.begin() + static_cast<long>(source_arity));
    MEDSYNC_RETURN_IF_ERROR(updated.Insert(std::move(srow)));
  }
  return updated;
}

Result<SourceFootprint> LookupJoinLens::Footprint(
    const Schema& source_schema) const {
  MEDSYNC_RETURN_IF_ERROR(ViewSchema(source_schema).status());
  SourceFootprint fp;
  for (const AttributeDef& attr : source_schema.attributes()) {
    fp.read.insert(attr.name);
    fp.written.insert(attr.name);
  }
  fp.affects_membership = true;
  return fp;
}

Json LookupJoinLens::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("lens", "lookup_join");
  out.Set("reference", reference_.ToJson());
  return out;
}

std::string LookupJoinLens::ToString() const {
  return StrCat("lookup_join[", Join(reference_.schema().key_attributes(),
                                     ","),
                " -> ", reference_.row_count(), " reference rows]");
}

Result<LensPtr> MakeLookupJoinLens(Table reference) {
  return LensPtr(std::make_shared<LookupJoinLens>(std::move(reference)));
}

}  // namespace medsync::bx
