#ifndef MEDSYNC_BX_JOIN_LENS_H_
#define MEDSYNC_BX_JOIN_LENS_H_

#include <string>
#include <vector>

#include "bx/lens.h"

namespace medsync::bx {

/// The lookup-join (enrichment) lens: the view is the source joined
/// against a FIXED reference table on the reference's key attributes —
/// the constant-complement instance of the classical view-update join.
///
/// Example from the medical domain: the shared view enriches each
/// prescription row with the catalog's mechanism-of-action columns,
///
///   source (a0 -> a1)  ⋈  reference (a1 -> a5, a6)   =   view (a0 -> a1,a5,a6)
///
/// Get requires the lookup to be TOTAL: every source row must match
/// exactly one reference row (a dangling medication name is an error, not
/// a silently dropped row — dropping would break GetPut).
///
/// Put accepts a view edit iff the enriched attributes of every view row
/// agree with the reference entry for that row's (possibly edited) join
/// key; the updated source is the view projected back onto the source
/// attributes. Editing an enriched attribute directly is untranslatable
/// (the reference is not writable through this lens) and rejected.
/// Changing a row's join key is fine — as long as the row's enriched
/// attributes are updated to the NEW key's reference values.
///
/// Well-behaved by construction: Get(Put(S,V)) rebuilds each view row from
/// its own projection plus the reference row its join key names — which is
/// the row itself; Put(S, Get(S)) projects the join back to S.
class LookupJoinLens : public Lens {
 public:
  /// `reference` must be keyed by exactly the attributes it is joined on;
  /// its key attributes must exist in the source with matching types.
  explicit LookupJoinLens(relational::Table reference);

  const relational::Table& reference() const { return reference_; }

  Result<relational::Schema> ViewSchema(
      const relational::Schema& source_schema) const override;
  Result<relational::Table> Get(
      const relational::Table& source) const override;
  Result<relational::Table> Put(
      const relational::Table& source,
      const relational::Table& view) const override;
  Result<SourceFootprint> Footprint(
      const relational::Schema& source_schema) const override;
  Json ToJson() const override;
  std::string ToString() const override;

 private:
  /// Indices of the reference's NON-key attributes (the enrichment
  /// columns appended to the view).
  std::vector<size_t> ExtraIndices() const;

  relational::Table reference_;
};

/// Factory registered with LensFromJson under kind "lookup_join".
Result<LensPtr> MakeLookupJoinLens(relational::Table reference);

}  // namespace medsync::bx

#endif  // MEDSYNC_BX_JOIN_LENS_H_
