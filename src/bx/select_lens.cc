#include "bx/select_lens.h"

#include "common/strings.h"
#include "relational/query.h"

namespace medsync::bx {

using relational::Predicate;
using relational::Row;
using relational::Schema;
using relational::Table;

SelectLens::SelectLens(Predicate::Ptr predicate)
    : predicate_(std::move(predicate)) {}

Result<Schema> SelectLens::ViewSchema(const Schema& source_schema) const {
  if (predicate_ == nullptr) {
    return Status::InvalidArgument("selection lens has null predicate");
  }
  MEDSYNC_RETURN_IF_ERROR(predicate_->Validate(source_schema));
  return source_schema;
}

Result<Table> SelectLens::Get(const Table& source) const {
  return relational::Select(source, predicate_);
}

Result<Table> SelectLens::Put(const Table& source, const Table& view) const {
  MEDSYNC_RETURN_IF_ERROR(ViewSchema(source.schema()).status());
  if (view.schema() != source.schema()) {
    return Status::InvalidArgument(
        "selection lens put: view schema differs from source schema");
  }

  // Every view row must satisfy the predicate, or PutGet would break.
  for (const auto& [key, row] : view.scan()) {
    MEDSYNC_ASSIGN_OR_RETURN(bool matches,
                             predicate_->Evaluate(view.schema(), row));
    if (!matches) {
      return Status::FailedPrecondition(
          StrCat("untranslatable view update: row ",
                 relational::RowToString(row),
                 " violates the view predicate ", predicate_->ToString()));
    }
  }

  // Keep the hidden complement.
  Table result(source.schema());
  for (const auto& [key, row] : source.scan()) {
    MEDSYNC_ASSIGN_OR_RETURN(bool matches,
                             predicate_->Evaluate(source.schema(), row));
    if (!matches) {
      MEDSYNC_RETURN_IF_ERROR(result.Insert(row));
    }
  }
  // Overlay the view.
  for (const auto& [key, row] : view.scan()) {
    Status s = result.Insert(row);
    if (s.IsAlreadyExists()) {
      return Status::Conflict(
          StrCat("untranslatable view update: key ",
                 relational::RowToString(key),
                 " collides with a hidden source row"));
    }
    MEDSYNC_RETURN_IF_ERROR(s);
  }
  return result;
}

Result<AnnotatedDelta> SelectLens::PushDeltaAnnotated(
    const Schema& source_schema, const AnnotatedDelta& delta) const {
  MEDSYNC_RETURN_IF_ERROR(ViewSchema(source_schema).status());

  AnnotatedDelta out;
  for (const Row& row : delta.inserts) {
    MEDSYNC_ASSIGN_OR_RETURN(bool visible,
                             predicate_->Evaluate(source_schema, row));
    if (visible) out.inserts.push_back(row);
  }
  for (const AnnotatedDelta::OldNew& change : delta.updates) {
    // The kind of view change depends on which side of the predicate the
    // old and new rows fall — this is why the delta carries old rows.
    MEDSYNC_ASSIGN_OR_RETURN(bool was_visible,
                             predicate_->Evaluate(source_schema, change.before));
    MEDSYNC_ASSIGN_OR_RETURN(bool is_visible,
                             predicate_->Evaluate(source_schema, change.after));
    if (was_visible && is_visible) {
      out.updates.push_back(change);
    } else if (was_visible) {
      out.deletes.push_back(change.before);
    } else if (is_visible) {
      out.inserts.push_back(change.after);
    }
  }
  for (const Row& row : delta.deletes) {
    MEDSYNC_ASSIGN_OR_RETURN(bool was_visible,
                             predicate_->Evaluate(source_schema, row));
    if (was_visible) out.deletes.push_back(row);
  }
  return out;
}

Result<SourceFootprint> SelectLens::Footprint(
    const Schema& source_schema) const {
  MEDSYNC_RETURN_IF_ERROR(ViewSchema(source_schema).status());
  SourceFootprint fp;
  for (const relational::AttributeDef& attr : source_schema.attributes()) {
    fp.read.insert(attr.name);
    fp.written.insert(attr.name);
  }
  fp.affects_membership = true;
  return fp;
}

Json SelectLens::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("lens", "select");
  out.Set("predicate", predicate_->ToJson());
  return out;
}

std::string SelectLens::ToString() const {
  return StrCat("select[", predicate_->ToString(), "]");
}

}  // namespace medsync::bx
