#ifndef MEDSYNC_BX_COMPOSE_LENS_H_
#define MEDSYNC_BX_COMPOSE_LENS_H_

#include <string>
#include <vector>

#include "bx/lens.h"

namespace medsync::bx {

/// Sequential lens composition (l1 ; l2 ; ... ; ln). Composition of
/// well-behaved lenses is well-behaved, so complex view definitions —
/// "records of patient 188, projected to a1/a4, with a4 renamed to
/// 'dosage'" — inherit the round-tripping laws from their parts (the
/// property tests verify this across random compositions).
///
///   Get(S)    = ln.Get(...l2.Get(l1.Get(S)))
///   Put(S, V) = l1.Put(S, l2.Put(l1.Get(S), ... ln.Put(..., V)))
class ComposeLens : public Lens {
 public:
  /// `stages` applied left-to-right in the Get direction; must be
  /// non-empty with no null entries.
  explicit ComposeLens(std::vector<LensPtr> stages);

  const std::vector<LensPtr>& stages() const { return stages_; }

  Result<relational::Schema> ViewSchema(
      const relational::Schema& source_schema) const override;
  Result<relational::Table> Get(
      const relational::Table& source) const override;
  Result<relational::Table> Put(
      const relational::Table& source,
      const relational::Table& view) const override;
  /// Exact iff every stage is: the delta is pushed through the stages
  /// left-to-right; the first stage without a translation makes the whole
  /// composition Unimplemented.
  Result<AnnotatedDelta> PushDeltaAnnotated(
      const relational::Schema& source_schema,
      const AnnotatedDelta& delta) const override;
  Result<SourceFootprint> Footprint(
      const relational::Schema& source_schema) const override;
  Json ToJson() const override;
  std::string ToString() const override;

 private:
  std::vector<LensPtr> stages_;
};

/// Convenience: composes two lenses (flattening nested compositions).
LensPtr Compose(LensPtr first, LensPtr second);

}  // namespace medsync::bx

#endif  // MEDSYNC_BX_COMPOSE_LENS_H_
