#include "bx/project_lens.h"

#include <map>

#include "common/strings.h"
#include "relational/query.h"

namespace medsync::bx {

using relational::AttributeDef;
using relational::Key;
using relational::KeyOf;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

ProjectLens::ProjectLens(std::vector<std::string> attributes,
                         std::vector<std::string> view_key)
    : attributes_(std::move(attributes)), view_key_(std::move(view_key)) {}

bool ProjectLens::RowAligned(const Schema& source_schema) const {
  return view_key_ == source_schema.key_attributes();
}

Result<Schema> ProjectLens::ViewSchema(const Schema& source_schema) const {
  std::vector<AttributeDef> defs;
  for (const std::string& name : attributes_) {
    std::optional<size_t> idx = source_schema.IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound(
          StrCat("projection lens references unknown attribute '", name,
                 "'"));
    }
    defs.push_back(source_schema.attributes()[*idx]);
  }
  // Match relational::Project: view-key attributes become non-nullable.
  for (AttributeDef& def : defs) {
    for (const std::string& key : view_key_) {
      if (def.name == key) def.nullable = false;
    }
  }
  return Schema::Create(std::move(defs), view_key_);
}

Result<Table> ProjectLens::Get(const Table& source) const {
  return relational::Project(source, attributes_, view_key_);
}

namespace {
/// Values of `names` attributes of `row` under `schema`, in `names` order.
Result<std::vector<Value>> ValuesOf(const Schema& schema, const Row& row,
                                    const std::vector<std::string>& names) {
  std::vector<Value> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    std::optional<size_t> idx = schema.IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound(StrCat("unknown attribute '", name, "'"));
    }
    out.push_back(row[*idx]);
  }
  return out;
}
}  // namespace

Result<Table> ProjectLens::Put(const Table& source, const Table& view) const {
  const Schema& ss = source.schema();
  MEDSYNC_ASSIGN_OR_RETURN(Schema expected_vs, ViewSchema(ss));
  if (view.schema() != expected_vs) {
    return Status::InvalidArgument(
        "projection lens put: view schema does not match lens definition");
  }

  // Positions of the view attributes within the source schema.
  std::vector<size_t> src_idx;
  for (const std::string& name : attributes_) {
    src_idx.push_back(*ss.IndexOf(name));
  }
  // Hidden complement attributes.
  std::vector<size_t> hidden_idx;
  for (size_t i = 0; i < ss.attribute_count(); ++i) {
    bool visible = false;
    for (size_t v : src_idx) {
      if (v == i) {
        visible = true;
        break;
      }
    }
    if (!visible) hidden_idx.push_back(i);
  }

  // Whether the view carries every source-key attribute (needed to
  // translate view inserts).
  bool view_has_source_key = true;
  for (const std::string& key : ss.key_attributes()) {
    bool found = false;
    for (const std::string& attr : attributes_) {
      if (attr == key) {
        found = true;
        break;
      }
    }
    if (!found) {
      view_has_source_key = false;
      break;
    }
  }

  auto synthesize_row = [&](const Row& view_row) -> Result<Row> {
    Row out(ss.attribute_count());
    for (size_t i = 0; i < attributes_.size(); ++i) {
      out[src_idx[i]] = view_row[i];
    }
    for (size_t i : hidden_idx) {
      const AttributeDef& attr = ss.attributes()[i];
      if (!attr.nullable) {
        return Status::FailedPrecondition(StrCat(
            "untranslatable view insertion: hidden source attribute '",
            attr.name, "' is non-nullable and has no default"));
      }
      out[i] = Value::Null();
    }
    return out;
  };

  Table result(ss);

  if (RowAligned(ss)) {
    // 1:1 alignment on the shared key.
    for (const auto& [vkey, vrow] : view.scan()) {
      std::optional<Row> existing = source.Get(vkey);
      if (existing.has_value()) {
        Row merged = *existing;
        for (size_t i = 0; i < attributes_.size(); ++i) {
          merged[src_idx[i]] = vrow[i];
        }
        MEDSYNC_RETURN_IF_ERROR(result.Insert(std::move(merged)));
      } else {
        if (!view_has_source_key) {
          return Status::Internal(
              "row-aligned projection without source key attributes");
        }
        MEDSYNC_ASSIGN_OR_RETURN(Row fresh, synthesize_row(vrow));
        MEDSYNC_RETURN_IF_ERROR(result.Insert(std::move(fresh)));
      }
    }
    // Source rows whose key is absent from the view are deleted (view
    // deletion translates to source deletion).
    return result;
  }

  // Grouped alignment: group source rows by their view-key value. Rows are
  // copied out of the scan — its entry references only live until the
  // iterator advances.
  std::map<Key, std::vector<Row>> groups;
  for (const auto& [skey, srow] : source.scan()) {
    MEDSYNC_ASSIGN_OR_RETURN(std::vector<Value> group_key,
                             ValuesOf(ss, srow, view_key_));
    groups[std::move(group_key)].push_back(srow);
  }

  for (const auto& [vkey, vrow] : view.scan()) {
    auto it = groups.find(vkey);
    if (it == groups.end()) {
      if (!view_has_source_key) {
        return Status::FailedPrecondition(StrCat(
            "untranslatable view insertion at ", relational::RowToString(vkey),
            ": the view does not determine the source key"));
      }
      MEDSYNC_ASSIGN_OR_RETURN(Row fresh, synthesize_row(vrow));
      MEDSYNC_RETURN_IF_ERROR(result.Insert(std::move(fresh)));
      continue;
    }
    // Write the view row's attributes into every source row of the group.
    for (const Row& srow : it->second) {
      Row merged = srow;
      for (size_t i = 0; i < attributes_.size(); ++i) {
        merged[src_idx[i]] = vrow[i];
      }
      MEDSYNC_RETURN_IF_ERROR(result.Insert(std::move(merged)));
    }
  }
  // Groups whose key is absent from the view are deleted wholesale.
  return result;
}

Result<AnnotatedDelta> ProjectLens::PushDeltaAnnotated(
    const Schema& source_schema, const AnnotatedDelta& delta) const {
  if (!RowAligned(source_schema)) {
    return Status::Unimplemented(StrCat(
        "lens ", ToString(),
        " is a grouped projection: a one-row source change can merge or "
        "split whole view groups, so there is no exact delta translation"));
  }
  MEDSYNC_RETURN_IF_ERROR(ViewSchema(source_schema).status());

  std::vector<size_t> src_idx;
  src_idx.reserve(attributes_.size());
  for (const std::string& name : attributes_) {
    src_idx.push_back(*source_schema.IndexOf(name));
  }
  auto project_row = [&src_idx](const Row& row) {
    Row out;
    out.reserve(src_idx.size());
    for (size_t i : src_idx) out.push_back(row[i]);
    return out;
  };

  // Row-aligned: the view key is the source key, so every source row
  // change maps to exactly one view row change of the same kind.
  AnnotatedDelta out;
  out.inserts.reserve(delta.inserts.size());
  for (const Row& row : delta.inserts) {
    out.inserts.push_back(project_row(row));
  }
  out.updates.reserve(delta.updates.size());
  for (const AnnotatedDelta::OldNew& change : delta.updates) {
    out.updates.push_back(
        {project_row(change.before), project_row(change.after)});
  }
  out.deletes.reserve(delta.deletes.size());
  for (const Row& row : delta.deletes) {
    out.deletes.push_back(project_row(row));
  }
  return out;
}

Result<SourceFootprint> ProjectLens::Footprint(
    const Schema& source_schema) const {
  MEDSYNC_RETURN_IF_ERROR(ViewSchema(source_schema).status());
  SourceFootprint fp;
  for (const std::string& name : attributes_) {
    fp.read.insert(name);
    fp.written.insert(name);
  }
  fp.affects_membership = true;  // Put can insert/delete source rows.
  return fp;
}

Json ProjectLens::ToJson() const {
  Json attrs = Json::MakeArray();
  for (const std::string& a : attributes_) attrs.Append(a);
  Json keys = Json::MakeArray();
  for (const std::string& k : view_key_) keys.Append(k);
  Json out = Json::MakeObject();
  out.Set("lens", "project");
  out.Set("attributes", std::move(attrs));
  out.Set("key", std::move(keys));
  return out;
}

std::string ProjectLens::ToString() const {
  return StrCat("project[", Join(attributes_, ","), " key ",
                Join(view_key_, ","), "]");
}

}  // namespace medsync::bx
