#include "bx/rename_lens.h"

#include "common/strings.h"
#include "relational/query.h"

namespace medsync::bx {

using relational::Schema;
using relational::Table;

RenameLens::RenameLens(
    std::vector<std::pair<std::string, std::string>> renames)
    : renames_(std::move(renames)) {
  inverse_.reserve(renames_.size());
  for (const auto& [from, to] : renames_) {
    inverse_.emplace_back(to, from);
  }
}

Result<Schema> RenameLens::ViewSchema(const Schema& source_schema) const {
  MEDSYNC_ASSIGN_OR_RETURN(Table tmp,
                           relational::Rename(Table(source_schema), renames_));
  return tmp.schema();
}

Result<Table> RenameLens::Get(const Table& source) const {
  return relational::Rename(source, renames_);
}

Result<Table> RenameLens::Put(const Table& source, const Table& view) const {
  MEDSYNC_ASSIGN_OR_RETURN(Schema expected_vs, ViewSchema(source.schema()));
  if (view.schema() != expected_vs) {
    return Status::InvalidArgument(
        "rename lens put: view schema does not match lens definition");
  }
  return relational::Rename(view, inverse_);
}

Result<AnnotatedDelta> RenameLens::PushDeltaAnnotated(
    const Schema& source_schema, const AnnotatedDelta& delta) const {
  // Renaming relabels attributes without moving positions or values, so
  // the rows of the delta are already the view's rows.
  MEDSYNC_RETURN_IF_ERROR(ViewSchema(source_schema).status());
  return delta;
}

Result<SourceFootprint> RenameLens::Footprint(
    const Schema& source_schema) const {
  MEDSYNC_RETURN_IF_ERROR(ViewSchema(source_schema).status());
  SourceFootprint fp;
  for (const relational::AttributeDef& attr : source_schema.attributes()) {
    fp.read.insert(attr.name);
    fp.written.insert(attr.name);
  }
  fp.affects_membership = true;
  return fp;
}

Json RenameLens::ToJson() const {
  Json pairs = Json::MakeArray();
  for (const auto& [from, to] : renames_) {
    Json p = Json::MakeObject();
    p.Set("from", from);
    p.Set("to", to);
    pairs.Append(std::move(p));
  }
  Json out = Json::MakeObject();
  out.Set("lens", "rename");
  out.Set("renames", std::move(pairs));
  return out;
}

std::string RenameLens::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [from, to] : renames_) {
    parts.push_back(StrCat(from, "->", to));
  }
  return StrCat("rename[", Join(parts, ","), "]");
}

}  // namespace medsync::bx
