#ifndef MEDSYNC_BX_OVERLAP_H_
#define MEDSYNC_BX_OVERLAP_H_

#include <set>
#include <string>

#include "bx/lens.h"
#include "relational/table.h"

namespace medsync::bx {

/// What actually changed in a source table between two versions — the
/// dynamic counterpart of the static SourceFootprint. Step 6 of the
/// paper's Fig. 5 asks: after writing view A back into the source, does
/// view B need to be re-derived and propagated? Comparing the concrete
/// change against B's footprint answers that without recomputing B.
struct SourceChange {
  /// Attribute names whose value differs in at least one surviving row.
  std::set<std::string> changed_attributes;
  /// Whether rows were inserted or deleted.
  bool membership_changed = false;

  bool empty() const {
    return changed_attributes.empty() && !membership_changed;
  }
};

/// Computes the change between two versions of the same-schema table.
/// Inserted and deleted rows contribute their non-null attributes to
/// `changed_attributes` (and set `membership_changed`), so an insert-only
/// change never reports an empty attribute set.
Result<SourceChange> AnalyzeSourceChange(const relational::Table& before,
                                         const relational::Table& after);

/// Same analysis computed from a delta against the pre-change table,
/// without materializing `after`. Produces identical results to
/// AnalyzeSourceChange(before, ApplyDelta(delta, before)).
Result<SourceChange> SourceChangeFromDelta(const relational::Table& before,
                                           const relational::TableDelta& delta);

/// The attributes a writer actually wrote VALUES into: updates contribute
/// the attributes whose value changed. Inserted and deleted rows contribute
/// nothing — row addition/removal is governed by the membership permission
/// (contract kinds "insert"/"delete"), not per-attribute write permissions.
/// This is what ViewRefresh reports to the permission contract.
Result<std::set<std::string>> WrittenAttributes(
    const relational::Table& before, const relational::TableDelta& delta);

/// Static test: may the views of `a` and `b` over `source_schema` share
/// source data at all? (If not, no update to one ever requires refreshing
/// the other.) Conservative — false positives allowed, false negatives not.
Result<bool> LensesMayInteract(const Lens& a, const Lens& b,
                               const relational::Schema& source_schema);

/// Dynamic test: given a concrete source change, may `lens`'s view have
/// changed? Conservative. Used by SyncManager's "analyze" dependency-check
/// strategy; the "always" strategy skips this and re-derives every view
/// (the ablation benchmarked in bench_fig5_cascade).
Result<bool> ChangeMayAffectView(const Lens& lens,
                                 const relational::Schema& source_schema,
                                 const SourceChange& change);

}  // namespace medsync::bx

#endif  // MEDSYNC_BX_OVERLAP_H_
