#include "bx/overlap.h"

#include "relational/delta.h"

namespace medsync::bx {

using relational::Schema;
using relational::Table;
using relational::TableDelta;

namespace {
/// Adds every attribute of `row` holding a non-null value to `out`.
void AddNonNullAttributes(const Schema& schema, const relational::Row& row,
                          std::set<std::string>* out) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null()) out->insert(schema.attributes()[i].name);
  }
}
}  // namespace

Result<SourceChange> AnalyzeSourceChange(const Table& before,
                                         const Table& after) {
  if (before.schema() != after.schema()) {
    return Status::InvalidArgument(
        "source change analysis requires identical schemas");
  }
  const Schema& schema = before.schema();
  SourceChange change;
  for (const auto& [key, row] : after.scan()) {
    std::optional<relational::Row> old = before.Get(key);
    if (!old.has_value()) {
      // An inserted row writes every non-null attribute it carries; an
      // insert-only change must not report an empty attribute set, or
      // per-attribute permission checks downstream under-report what was
      // written.
      change.membership_changed = true;
      AddNonNullAttributes(schema, row, &change.changed_attributes);
      continue;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i] != (*old)[i]) {
        change.changed_attributes.insert(schema.attributes()[i].name);
      }
    }
  }
  for (const auto& [key, row] : before.scan()) {
    if (!after.Contains(key)) {
      change.membership_changed = true;
      AddNonNullAttributes(schema, row, &change.changed_attributes);
    }
  }
  return change;
}

Result<SourceChange> SourceChangeFromDelta(const Table& before,
                                           const TableDelta& delta) {
  const Schema& schema = before.schema();
  SourceChange change;
  for (const relational::Row& row : delta.inserts) {
    change.membership_changed = true;
    AddNonNullAttributes(schema, row, &change.changed_attributes);
  }
  for (const relational::Key& key : delta.deletes) {
    std::optional<relational::Row> old = before.Get(key);
    if (!old.has_value()) {
      return Status::InvalidArgument(
          "SourceChangeFromDelta: delete targets missing key");
    }
    change.membership_changed = true;
    AddNonNullAttributes(schema, *old, &change.changed_attributes);
  }
  for (const relational::Row& row : delta.updates) {
    std::optional<relational::Row> old =
        before.Get(relational::KeyOf(schema, row));
    if (!old.has_value()) {
      return Status::InvalidArgument(
          "SourceChangeFromDelta: update targets missing row");
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i] != (*old)[i]) {
        change.changed_attributes.insert(schema.attributes()[i].name);
      }
    }
  }
  return change;
}

Result<std::set<std::string>> WrittenAttributes(const Table& before,
                                                const TableDelta& delta) {
  const Schema& schema = before.schema();
  std::set<std::string> written;
  // Updates write exactly the attributes whose value changed.
  for (const relational::Row& row : delta.updates) {
    std::optional<relational::Row> old =
        before.Get(relational::KeyOf(schema, row));
    if (!old.has_value()) {
      return Status::InvalidArgument(
          "WrittenAttributes: update targets missing row");
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i] != (*old)[i]) written.insert(schema.attributes()[i].name);
    }
  }
  // Inserts and deletes are intentionally excluded: row addition/removal is
  // governed by the membership permission (contract kinds "insert"/"delete"
  // check membership only), not per-attribute write permission. Charging an
  // inserted row's attributes to the writer would demand per-attribute
  // permission just to add a row — e.g. a key-change cascade that arrives as
  // delete+insert would be denied on attributes whose values never changed.
  // Use SourceChangeFromDelta for the full analysis-facing attribute set.
  return written;
}

Result<bool> LensesMayInteract(const Lens& a, const Lens& b,
                               const Schema& source_schema) {
  MEDSYNC_ASSIGN_OR_RETURN(SourceFootprint fa, a.Footprint(source_schema));
  MEDSYNC_ASSIGN_OR_RETURN(SourceFootprint fb, b.Footprint(source_schema));
  return FootprintsMayOverlap(fa, fb);
}

Result<bool> ChangeMayAffectView(const Lens& lens,
                                 const Schema& source_schema,
                                 const SourceChange& change) {
  if (change.empty()) return false;
  MEDSYNC_ASSIGN_OR_RETURN(SourceFootprint fp, lens.Footprint(source_schema));
  // Inserted/deleted source rows can enter or leave any view.
  if (change.membership_changed) return true;
  for (const std::string& attr : change.changed_attributes) {
    if (fp.read.count(attr) > 0) return true;
  }
  return false;
}

}  // namespace medsync::bx
