#include "bx/overlap.h"

namespace medsync::bx {

using relational::Schema;
using relational::Table;

Result<SourceChange> AnalyzeSourceChange(const Table& before,
                                         const Table& after) {
  if (before.schema() != after.schema()) {
    return Status::InvalidArgument(
        "source change analysis requires identical schemas");
  }
  const Schema& schema = before.schema();
  SourceChange change;
  for (const auto& [key, row] : after.rows()) {
    std::optional<relational::Row> old = before.Get(key);
    if (!old.has_value()) {
      change.membership_changed = true;
      continue;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i] != (*old)[i]) {
        change.changed_attributes.insert(schema.attributes()[i].name);
      }
    }
  }
  if (!change.membership_changed) {
    for (const auto& [key, row] : before.rows()) {
      if (!after.Contains(key)) {
        change.membership_changed = true;
        break;
      }
    }
  }
  return change;
}

Result<bool> LensesMayInteract(const Lens& a, const Lens& b,
                               const Schema& source_schema) {
  MEDSYNC_ASSIGN_OR_RETURN(SourceFootprint fa, a.Footprint(source_schema));
  MEDSYNC_ASSIGN_OR_RETURN(SourceFootprint fb, b.Footprint(source_schema));
  return FootprintsMayOverlap(fa, fb);
}

Result<bool> ChangeMayAffectView(const Lens& lens,
                                 const Schema& source_schema,
                                 const SourceChange& change) {
  if (change.empty()) return false;
  MEDSYNC_ASSIGN_OR_RETURN(SourceFootprint fp, lens.Footprint(source_schema));
  // Inserted/deleted source rows can enter or leave any view.
  if (change.membership_changed) return true;
  for (const std::string& attr : change.changed_attributes) {
    if (fp.read.count(attr) > 0) return true;
  }
  return false;
}

}  // namespace medsync::bx
