#include "bx/laws.h"

#include "common/strings.h"

namespace medsync::bx {

using relational::Table;

namespace {

/// Counts the keyed differences between two same-schema tables for law
/// violation diagnostics.
std::string DiffSummary(const Table& expected, const Table& actual) {
  if (expected.schema() != actual.schema()) {
    return "schemas differ";
  }
  size_t missing = 0, extra = 0, changed = 0;
  for (const auto& [key, row] : expected.scan()) {
    std::optional<relational::Row> other = actual.Get(key);
    if (!other.has_value()) {
      ++missing;
    } else if (*other != row) {
      ++changed;
    }
  }
  for (const auto& [key, row] : actual.scan()) {
    if (!expected.Contains(key)) ++extra;
  }
  return StrCat(missing, " rows missing, ", extra, " rows extra, ", changed,
                " rows changed");
}

}  // namespace

Status CheckGetPut(const Lens& lens, const Table& source) {
  MEDSYNC_ASSIGN_OR_RETURN(Table view, lens.Get(source));
  MEDSYNC_ASSIGN_OR_RETURN(Table round_trip, lens.Put(source, view));
  if (round_trip != source) {
    return Status::FailedPrecondition(
        StrCat("GetPut violated for ", lens.ToString(), ": ",
               DiffSummary(source, round_trip)));
  }
  return Status::OK();
}

Status CheckPutGet(const Lens& lens, const Table& source, const Table& view,
                   bool* rejected) {
  if (rejected) *rejected = false;
  Result<Table> updated = lens.Put(source, view);
  if (!updated.ok()) {
    if (rejected && (updated.status().IsFailedPrecondition() ||
                     updated.status().IsConflict() ||
                     updated.status().IsInvalidArgument())) {
      // The lens declined to translate the update — a legal outcome that
      // preserves the laws by changing nothing.
      *rejected = true;
      return Status::OK();
    }
    return updated.status();
  }
  MEDSYNC_ASSIGN_OR_RETURN(Table round_trip, lens.Get(*updated));
  if (round_trip != view) {
    return Status::FailedPrecondition(
        StrCat("PutGet violated for ", lens.ToString(), ": ",
               DiffSummary(view, round_trip)));
  }
  return Status::OK();
}

Status CheckWellBehaved(const Lens& lens, const Table& source,
                        const Table& view, bool* rejected) {
  MEDSYNC_RETURN_IF_ERROR(CheckGetPut(lens, source));
  return CheckPutGet(lens, source, view, rejected);
}

}  // namespace medsync::bx
