#ifndef MEDSYNC_BX_LENS_FACTORY_H_
#define MEDSYNC_BX_LENS_FACTORY_H_

#include <string>
#include <vector>

#include "bx/lens.h"
#include "relational/predicate.h"

namespace medsync::bx {

/// Deserializes a lens specification produced by Lens::ToJson(). This is
/// how a sharing peer reconstructs the exact agreed view definition from
/// the metadata registered on-chain.
Result<LensPtr> LensFromJson(const Json& json);

/// Round-trip helper for text specs.
Result<LensPtr> LensFromSpec(std::string_view spec_text);

/// Convenience constructors mirroring a small combinator DSL.
LensPtr MakeIdentityLens();
LensPtr MakeProjectLens(std::vector<std::string> attributes,
                        std::vector<std::string> view_key);
LensPtr MakeSelectLens(relational::Predicate::Ptr predicate);
LensPtr MakeRenameLens(
    std::vector<std::pair<std::string, std::string>> renames);

/// Structural lens equality via canonical serialization.
bool LensEqual(const LensPtr& a, const LensPtr& b);

}  // namespace medsync::bx

#endif  // MEDSYNC_BX_LENS_FACTORY_H_
