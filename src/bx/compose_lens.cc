#include "bx/compose_lens.h"

#include <cassert>

#include "common/strings.h"

namespace medsync::bx {

using relational::Schema;
using relational::Table;

ComposeLens::ComposeLens(std::vector<LensPtr> stages)
    : stages_(std::move(stages)) {
  assert(!stages_.empty());
  for (const LensPtr& stage : stages_) {
    assert(stage != nullptr);
    (void)stage;
  }
}

Result<Schema> ComposeLens::ViewSchema(const Schema& source_schema) const {
  Schema schema = source_schema;
  for (const LensPtr& stage : stages_) {
    MEDSYNC_ASSIGN_OR_RETURN(schema, stage->ViewSchema(schema));
  }
  return schema;
}

Result<Table> ComposeLens::Get(const Table& source) const {
  Table current = source;
  for (const LensPtr& stage : stages_) {
    MEDSYNC_ASSIGN_OR_RETURN(current, stage->Get(current));
  }
  return current;
}

Result<Table> ComposeLens::Put(const Table& source, const Table& view) const {
  // Forward pass: materialize the intermediate views.
  std::vector<Table> intermediates;  // intermediates[i] = get of stages[0..i)
  intermediates.push_back(source);
  for (size_t i = 0; i + 1 < stages_.size(); ++i) {
    MEDSYNC_ASSIGN_OR_RETURN(Table next, stages_[i]->Get(intermediates.back()));
    intermediates.push_back(std::move(next));
  }
  // Backward pass: put through each stage from the innermost out.
  Table current = view;
  for (size_t i = stages_.size(); i-- > 0;) {
    MEDSYNC_ASSIGN_OR_RETURN(current,
                             stages_[i]->Put(intermediates[i], current));
  }
  return current;
}

Result<AnnotatedDelta> ComposeLens::PushDeltaAnnotated(
    const Schema& source_schema, const AnnotatedDelta& delta) const {
  Schema schema = source_schema;
  AnnotatedDelta current = delta;
  for (const LensPtr& stage : stages_) {
    MEDSYNC_ASSIGN_OR_RETURN(current,
                             stage->PushDeltaAnnotated(schema, current));
    MEDSYNC_ASSIGN_OR_RETURN(schema, stage->ViewSchema(schema));
  }
  return current;
}

Result<SourceFootprint> ComposeLens::Footprint(
    const Schema& source_schema) const {
  // Conservative: the composition's footprint on the ORIGINAL source is
  // approximated by the first stage's footprint (later stages only narrow
  // the view; attribute names may change downstream, so mapping back
  // precisely would require per-lens name translation).
  MEDSYNC_RETURN_IF_ERROR(ViewSchema(source_schema).status());
  return stages_.front()->Footprint(source_schema);
}

Json ComposeLens::ToJson() const {
  Json stages = Json::MakeArray();
  for (const LensPtr& stage : stages_) stages.Append(stage->ToJson());
  Json out = Json::MakeObject();
  out.Set("lens", "compose");
  out.Set("stages", std::move(stages));
  return out;
}

std::string ComposeLens::ToString() const {
  std::vector<std::string> parts;
  for (const LensPtr& stage : stages_) parts.push_back(stage->ToString());
  return StrCat("(", Join(parts, " ; "), ")");
}

LensPtr Compose(LensPtr first, LensPtr second) {
  std::vector<LensPtr> stages;
  auto flatten = [&stages](const LensPtr& lens) {
    if (const auto* composed = dynamic_cast<const ComposeLens*>(lens.get())) {
      for (const LensPtr& stage : composed->stages()) {
        stages.push_back(stage);
      }
    } else {
      stages.push_back(lens);
    }
  };
  flatten(first);
  flatten(second);
  return std::make_shared<ComposeLens>(std::move(stages));
}

}  // namespace medsync::bx
