#ifndef MEDSYNC_BX_LENS_H_
#define MEDSYNC_BX_LENS_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "relational/delta.h"
#include "relational/table.h"

namespace medsync::bx {

/// A table delta annotated with the PRE-change content of every deleted and
/// updated row. Row-local lenses (project/select/rename and compositions
/// thereof) translate an annotated source delta into an annotated view
/// delta without touching the rest of the source — the engine behind
/// incremental view maintenance on the Fig. 5 cascade hot path. The
/// annotations exist because classifying a change on the VIEW side needs
/// the old row: a source update whose old row was outside a selection but
/// whose new row is inside it becomes a view INSERT, not a view update.
struct AnnotatedDelta {
  struct OldNew {
    relational::Row before;
    relational::Row after;
  };
  /// Newly inserted rows (no before-state by definition).
  std::vector<relational::Row> inserts;
  /// Updated rows: old and new content, same key.
  std::vector<OldNew> updates;
  /// Deleted rows, FULL old content (not just the key).
  std::vector<relational::Row> deletes;

  bool empty() const {
    return inserts.empty() && updates.empty() && deletes.empty();
  }
  size_t size() const {
    return inserts.size() + updates.size() + deletes.size();
  }
};

/// The set of source attributes a lens's view content depends on. Used by
/// the overlap analysis behind step 6 of the paper's Fig. 5 workflow: two
/// views of the same source are independent if their footprints are
/// disjoint, in which case writing one back can never change the other.
struct SourceFootprint {
  /// Attributes whose values flow into the view (projection columns plus
  /// predicate columns).
  std::set<std::string> read;
  /// Attributes a Put can modify in the source (excludes predicate-only
  /// columns).
  std::set<std::string> written;
  /// Whether a Put can insert or delete whole source rows (then it can
  /// affect any other view regardless of attribute footprints).
  bool affects_membership = false;
};

/// An asymmetric lens between a keyed source table and a keyed view table
/// (Foster et al., TOPLAS 2007 — the BX model the paper builds on).
///
///   Get : Source -> View            derives the shared fine-grained piece
///   Put : Source x View -> Source   writes a modified view back
///
/// A well-behaved lens satisfies, for all valid sources S and views V:
///   PutGet:  Get(Put(S, V)) == V
///   GetPut:  Put(S, Get(S)) == S
/// The checkers in bx/laws.h verify these laws mechanically; the property
/// tests run them across randomized tables and lens compositions.
///
/// Lenses are immutable and serializable (ToJson / lens_factory.h
/// LensFromJson) because sharing peers must agree on the exact view
/// definition when they register a shared table on-chain.
class Lens {
 public:
  virtual ~Lens() = default;

  /// The view schema induced for a given source schema, or an error if the
  /// lens does not apply (unknown attributes, key not preserved, ...).
  virtual Result<relational::Schema> ViewSchema(
      const relational::Schema& source_schema) const = 0;

  /// Forward direction: derives the view from the source.
  virtual Result<relational::Table> Get(
      const relational::Table& source) const = 0;

  /// Backward direction: produces an updated source that is consistent with
  /// `view`. Not every view edit is translatable (e.g. inserting a view row
  /// whose hidden source attributes cannot be defaulted); untranslatable
  /// updates fail with FailedPrecondition/InvalidArgument rather than
  /// guessing — rejecting is the only law-preserving choice.
  virtual Result<relational::Table> Put(
      const relational::Table& source,
      const relational::Table& view) const = 0;

  /// Incremental get: translates a delta on the source into the delta on
  /// the view, so a materialized view can be maintained with
  /// relational::ApplyDelta instead of a full Get + replace. Exact for
  /// every lens that implements it:
  ///
  ///   ApplyDelta(PushDelta(S, d), Get(S)) == Get(ApplyDelta(d, S))
  ///
  /// `source_before` is the source BEFORE `delta` was applied (annotations
  /// for deleted/updated rows are looked up in it; O(|delta| log |S|)).
  /// The returned delta is minimal: source changes invisible to the view
  /// are dropped, so an empty result means the view content is unchanged.
  /// Lenses with no exact translation (the lookup join, grouped
  /// projections) return Unimplemented — callers fall back to a full Get.
  Result<relational::TableDelta> PushDelta(
      const relational::Table& source_before,
      const relational::TableDelta& delta) const;

  /// The overridable core of PushDelta: translates an annotated delta
  /// under `source_schema`. Default: Unimplemented. Implementations must
  /// be exact or refuse — guessing would desynchronize materialized views.
  virtual Result<AnnotatedDelta> PushDeltaAnnotated(
      const relational::Schema& source_schema,
      const AnnotatedDelta& delta) const;

  /// Conservative footprint on `source_schema` for the overlap analysis.
  virtual Result<SourceFootprint> Footprint(
      const relational::Schema& source_schema) const = 0;

  /// Serializable lens specification (round-trips via LensFromJson).
  virtual Json ToJson() const = 0;

  /// Human-readable rendering, e.g. "project[a0,a1,a4 key a0]".
  virtual std::string ToString() const = 0;
};

using LensPtr = std::shared_ptr<const Lens>;

/// The identity lens: view == source. Mostly useful in compositions and as
/// the degenerate case of full-table sharing (what prior systems like
/// MedRec share — see the related-work benches).
class IdentityLens : public Lens {
 public:
  IdentityLens() = default;

  Result<relational::Schema> ViewSchema(
      const relational::Schema& source_schema) const override {
    return source_schema;
  }
  Result<relational::Table> Get(
      const relational::Table& source) const override {
    return source;
  }
  Result<relational::Table> Put(
      const relational::Table& source,
      const relational::Table& view) const override;
  Result<AnnotatedDelta> PushDeltaAnnotated(
      const relational::Schema& source_schema,
      const AnnotatedDelta& delta) const override;
  Result<SourceFootprint> Footprint(
      const relational::Schema& source_schema) const override;
  Json ToJson() const override;
  std::string ToString() const override { return "identity"; }
};

/// True if two views with the given footprints may share source data, i.e.
/// writing one back may require re-deriving the other (Fig. 5 step 6). The
/// test is conservative: membership-affecting lenses always overlap; two
/// lenses overlap if one's written set intersects the other's read set.
bool FootprintsMayOverlap(const SourceFootprint& a, const SourceFootprint& b);

}  // namespace medsync::bx

#endif  // MEDSYNC_BX_LENS_H_
