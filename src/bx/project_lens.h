#ifndef MEDSYNC_BX_PROJECT_LENS_H_
#define MEDSYNC_BX_PROJECT_LENS_H_

#include <string>
#include <vector>

#include "bx/lens.h"

namespace medsync::bx {

/// The projection lens π — the lens behind every fine-grained view in the
/// paper's Fig. 1 (D13 projects a0,a1,a2,a4 out of D1; D23 projects a1,a5
/// out of D2; ...).
///
/// Get keeps `attributes` of the source, keyed by `view_key`. Put aligns
/// view rows with source rows and merges the visible attributes back while
/// preserving the hidden complement, in one of two modes:
///
/// * Row-aligned: the view key equals the source key. Each view row maps to
///   exactly one source row. View inserts synthesize a source row with NULL
///   in every hidden attribute (and fail if a hidden attribute is
///   non-nullable — an untranslatable update); view deletes delete the
///   source row.
///
/// * Grouped: the view is keyed by a different attribute set (the paper's
///   D3 → D32, where the doctor's table is keyed by patient id but the
///   researcher view is keyed by medication name). Each view row maps to
///   the GROUP of source rows sharing its key value; Put writes the view
///   row's attributes into every row of the group, deletes groups missing
///   from the view, and accepts inserts only when the view carries all
///   source-key attributes (otherwise the source key cannot be
///   synthesized and the update is rejected).
///
/// Get requires the projection to be key-functional (two source rows that
/// agree on the view key must agree on all projected attributes); the
/// relational::Project operator enforces this.
class ProjectLens : public Lens {
 public:
  /// `attributes`: view columns in order; `view_key`: the view's key
  /// attribute names (must be among `attributes`).
  ProjectLens(std::vector<std::string> attributes,
              std::vector<std::string> view_key);

  const std::vector<std::string>& attributes() const { return attributes_; }
  const std::vector<std::string>& view_key() const { return view_key_; }

  Result<relational::Schema> ViewSchema(
      const relational::Schema& source_schema) const override;
  Result<relational::Table> Get(
      const relational::Table& source) const override;
  Result<relational::Table> Put(
      const relational::Table& source,
      const relational::Table& view) const override;
  /// Exact only in row-aligned mode (a projection keyed by the source key
  /// is per-row); grouped projections return Unimplemented — a one-row
  /// source change can merge or split whole view groups, which cannot be
  /// decided from the delta alone.
  Result<AnnotatedDelta> PushDeltaAnnotated(
      const relational::Schema& source_schema,
      const AnnotatedDelta& delta) const override;
  Result<SourceFootprint> Footprint(
      const relational::Schema& source_schema) const override;
  Json ToJson() const override;
  std::string ToString() const override;

 private:
  bool RowAligned(const relational::Schema& source_schema) const;

  std::vector<std::string> attributes_;
  std::vector<std::string> view_key_;
};

}  // namespace medsync::bx

#endif  // MEDSYNC_BX_PROJECT_LENS_H_
