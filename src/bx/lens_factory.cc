#include "bx/lens_factory.h"

#include "bx/compose_lens.h"
#include "bx/join_lens.h"
#include "bx/project_lens.h"
#include "bx/rename_lens.h"
#include "bx/select_lens.h"
#include "common/strings.h"

namespace medsync::bx {

Result<LensPtr> LensFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("lens JSON must be an object");
  }
  MEDSYNC_ASSIGN_OR_RETURN(std::string kind, json.GetString("lens"));

  if (kind == "identity") {
    return MakeIdentityLens();
  }
  if (kind == "project") {
    const Json& attrs = json.At("attributes");
    const Json& keys = json.At("key");
    if (!attrs.is_array() || !keys.is_array()) {
      return Status::InvalidArgument(
          "project lens JSON needs 'attributes' and 'key' arrays");
    }
    std::vector<std::string> attributes;
    for (const Json& a : attrs.AsArray()) {
      if (!a.is_string()) {
        return Status::InvalidArgument("project attributes must be strings");
      }
      attributes.push_back(a.AsString());
    }
    std::vector<std::string> view_key;
    for (const Json& k : keys.AsArray()) {
      if (!k.is_string()) {
        return Status::InvalidArgument("project key entries must be strings");
      }
      view_key.push_back(k.AsString());
    }
    return MakeProjectLens(std::move(attributes), std::move(view_key));
  }
  if (kind == "select") {
    MEDSYNC_ASSIGN_OR_RETURN(relational::Predicate::Ptr predicate,
                             relational::Predicate::FromJson(
                                 json.At("predicate")));
    return MakeSelectLens(std::move(predicate));
  }
  if (kind == "rename") {
    const Json& pairs = json.At("renames");
    if (!pairs.is_array()) {
      return Status::InvalidArgument("rename lens JSON needs 'renames' array");
    }
    std::vector<std::pair<std::string, std::string>> renames;
    for (const Json& p : pairs.AsArray()) {
      MEDSYNC_ASSIGN_OR_RETURN(std::string from, p.GetString("from"));
      MEDSYNC_ASSIGN_OR_RETURN(std::string to, p.GetString("to"));
      renames.emplace_back(std::move(from), std::move(to));
    }
    return MakeRenameLens(std::move(renames));
  }
  if (kind == "lookup_join") {
    MEDSYNC_ASSIGN_OR_RETURN(relational::Table reference,
                             relational::Table::FromJson(json.At("reference")));
    return MakeLookupJoinLens(std::move(reference));
  }
  if (kind == "compose") {
    const Json& stages_json = json.At("stages");
    if (!stages_json.is_array() || stages_json.size() == 0) {
      return Status::InvalidArgument(
          "compose lens JSON needs a non-empty 'stages' array");
    }
    std::vector<LensPtr> stages;
    for (const Json& s : stages_json.AsArray()) {
      MEDSYNC_ASSIGN_OR_RETURN(LensPtr stage, LensFromJson(s));
      stages.push_back(std::move(stage));
    }
    return LensPtr(std::make_shared<ComposeLens>(std::move(stages)));
  }
  return Status::InvalidArgument(StrCat("unknown lens kind '", kind, "'"));
}

Result<LensPtr> LensFromSpec(std::string_view spec_text) {
  MEDSYNC_ASSIGN_OR_RETURN(Json json, Json::Parse(spec_text));
  return LensFromJson(json);
}

LensPtr MakeIdentityLens() { return std::make_shared<IdentityLens>(); }

LensPtr MakeProjectLens(std::vector<std::string> attributes,
                        std::vector<std::string> view_key) {
  return std::make_shared<ProjectLens>(std::move(attributes),
                                       std::move(view_key));
}

LensPtr MakeSelectLens(relational::Predicate::Ptr predicate) {
  return std::make_shared<SelectLens>(std::move(predicate));
}

LensPtr MakeRenameLens(
    std::vector<std::pair<std::string, std::string>> renames) {
  return std::make_shared<RenameLens>(std::move(renames));
}

bool LensEqual(const LensPtr& a, const LensPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->ToJson() == b->ToJson();
}

}  // namespace medsync::bx
