#ifndef MEDSYNC_BX_LAWS_H_
#define MEDSYNC_BX_LAWS_H_

#include "bx/lens.h"

namespace medsync::bx {

/// Mechanical checkers for the round-tripping laws of Section II-B of the
/// paper. The property tests sweep these across random sources, views, and
/// lens compositions; SyncManager can also run them online (paranoid mode)
/// before committing a put result.

/// GetPut: Put(S, Get(S)) == S. Returns FailedPrecondition with a diff
/// summary if violated, the underlying error if get/put themselves fail.
Status CheckGetPut(const Lens& lens, const relational::Table& source);

/// PutGet: Get(Put(S, V)) == V. `view` must be a valid (possibly edited)
/// view for the lens. If Put rejects the update as untranslatable, that is
/// reported as OK-but-rejected via the `rejected` out-parameter (rejecting
/// is law-preserving); pass nullptr to treat rejection as failure.
Status CheckPutGet(const Lens& lens, const relational::Table& source,
                   const relational::Table& view, bool* rejected);

/// Runs both laws: GetPut on `source`, and PutGet on (source, view).
Status CheckWellBehaved(const Lens& lens, const relational::Table& source,
                        const relational::Table& view, bool* rejected);

}  // namespace medsync::bx

#endif  // MEDSYNC_BX_LAWS_H_
