#ifndef MEDSYNC_BX_RENAME_LENS_H_
#define MEDSYNC_BX_RENAME_LENS_H_

#include <string>
#include <utility>
#include <vector>

#include "bx/lens.h"

namespace medsync::bx {

/// The renaming lens ρ: a bijective relabeling of attributes, used when two
/// sharing peers agreed on view column names that differ from the
/// provider's local schema (e.g. the provider's "a4" is the shared table's
/// "dosage"). Both directions are total, so every update translates.
class RenameLens : public Lens {
 public:
  /// `renames` maps source attribute name -> view attribute name.
  explicit RenameLens(std::vector<std::pair<std::string, std::string>> renames);

  const std::vector<std::pair<std::string, std::string>>& renames() const {
    return renames_;
  }

  Result<relational::Schema> ViewSchema(
      const relational::Schema& source_schema) const override;
  Result<relational::Table> Get(
      const relational::Table& source) const override;
  Result<relational::Table> Put(
      const relational::Table& source,
      const relational::Table& view) const override;
  /// Exact: renaming changes attribute names only, never positions or
  /// values, so the delta passes through untouched.
  Result<AnnotatedDelta> PushDeltaAnnotated(
      const relational::Schema& source_schema,
      const AnnotatedDelta& delta) const override;
  Result<SourceFootprint> Footprint(
      const relational::Schema& source_schema) const override;
  Json ToJson() const override;
  std::string ToString() const override;

 private:
  std::vector<std::pair<std::string, std::string>> renames_;
  std::vector<std::pair<std::string, std::string>> inverse_;
};

}  // namespace medsync::bx

#endif  // MEDSYNC_BX_RENAME_LENS_H_
