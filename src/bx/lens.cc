#include "bx/lens.h"

namespace medsync::bx {

Result<relational::Table> IdentityLens::Put(
    const relational::Table& source, const relational::Table& view) const {
  if (view.schema() != source.schema()) {
    return Status::InvalidArgument(
        "identity lens: view schema differs from source schema");
  }
  return view;
}

Result<SourceFootprint> IdentityLens::Footprint(
    const relational::Schema& source_schema) const {
  SourceFootprint fp;
  for (const relational::AttributeDef& attr : source_schema.attributes()) {
    fp.read.insert(attr.name);
    fp.written.insert(attr.name);
  }
  fp.affects_membership = true;
  return fp;
}

Json IdentityLens::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("lens", "identity");
  return out;
}

bool FootprintsMayOverlap(const SourceFootprint& a, const SourceFootprint& b) {
  if (a.affects_membership || b.affects_membership) return true;
  for (const std::string& attr : a.written) {
    if (b.read.count(attr) > 0) return true;
  }
  for (const std::string& attr : b.written) {
    if (a.read.count(attr) > 0) return true;
  }
  return false;
}

}  // namespace medsync::bx
