#include "bx/lens.h"

#include <utility>

#include "common/strings.h"

namespace medsync::bx {

Result<AnnotatedDelta> Lens::PushDeltaAnnotated(
    const relational::Schema& /*source_schema*/,
    const AnnotatedDelta& /*delta*/) const {
  return Status::Unimplemented(
      StrCat("lens ", ToString(), " has no incremental delta translation"));
}

Result<relational::TableDelta> Lens::PushDelta(
    const relational::Table& source_before,
    const relational::TableDelta& delta) const {
  const relational::Schema& ss = source_before.schema();

  // Annotate the delta with the pre-change rows it deletes or updates; the
  // row-local translation needs them to classify the effect on the view.
  AnnotatedDelta annotated;
  annotated.inserts = delta.inserts;
  annotated.updates.reserve(delta.updates.size());
  for (const relational::Row& row : delta.updates) {
    std::optional<relational::Row> before =
        source_before.Get(relational::KeyOf(ss, row));
    if (!before.has_value()) {
      return Status::InvalidArgument(
          StrCat("PushDelta: update targets missing row ",
                 relational::RowToString(row)));
    }
    annotated.updates.push_back({std::move(*before), row});
  }
  annotated.deletes.reserve(delta.deletes.size());
  for (const relational::Key& key : delta.deletes) {
    std::optional<relational::Row> before = source_before.Get(key);
    if (!before.has_value()) {
      return Status::InvalidArgument(
          StrCat("PushDelta: delete targets missing key ",
                 relational::RowToString(key)));
    }
    annotated.deletes.push_back(std::move(*before));
  }

  MEDSYNC_ASSIGN_OR_RETURN(AnnotatedDelta pushed,
                           PushDeltaAnnotated(ss, annotated));
  MEDSYNC_ASSIGN_OR_RETURN(relational::Schema vs, ViewSchema(ss));

  // Strip the annotations back down to a wire-shaped TableDelta, dropping
  // updates that left the view row unchanged (invisible to the view).
  relational::TableDelta out;
  out.inserts = std::move(pushed.inserts);
  for (AnnotatedDelta::OldNew& change : pushed.updates) {
    if (change.before == change.after) continue;
    out.updates.push_back(std::move(change.after));
  }
  for (const relational::Row& old_view_row : pushed.deletes) {
    out.deletes.push_back(relational::KeyOf(vs, old_view_row));
  }
  return out;
}

Result<relational::Table> IdentityLens::Put(
    const relational::Table& source, const relational::Table& view) const {
  if (view.schema() != source.schema()) {
    return Status::InvalidArgument(
        "identity lens: view schema differs from source schema");
  }
  return view;
}

Result<AnnotatedDelta> IdentityLens::PushDeltaAnnotated(
    const relational::Schema& /*source_schema*/,
    const AnnotatedDelta& delta) const {
  return delta;
}

Result<SourceFootprint> IdentityLens::Footprint(
    const relational::Schema& source_schema) const {
  SourceFootprint fp;
  for (const relational::AttributeDef& attr : source_schema.attributes()) {
    fp.read.insert(attr.name);
    fp.written.insert(attr.name);
  }
  fp.affects_membership = true;
  return fp;
}

Json IdentityLens::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("lens", "identity");
  return out;
}

bool FootprintsMayOverlap(const SourceFootprint& a, const SourceFootprint& b) {
  if (a.affects_membership || b.affects_membership) return true;
  for (const std::string& attr : a.written) {
    if (b.read.count(attr) > 0) return true;
  }
  for (const std::string& attr : b.written) {
    if (a.read.count(attr) > 0) return true;
  }
  return false;
}

}  // namespace medsync::bx
