#ifndef MEDSYNC_BX_SELECT_LENS_H_
#define MEDSYNC_BX_SELECT_LENS_H_

#include <string>

#include "bx/lens.h"
#include "relational/predicate.h"

namespace medsync::bx {

/// The selection lens σ: the view contains the source rows satisfying a
/// predicate (e.g. a doctor sharing only the records of one patient, or
/// only records for a given medication).
///
/// Get filters; the schema and key pass through unchanged. Put keeps the
/// invisible complement (source rows that do NOT satisfy the predicate)
/// and replaces the visible region with the view's rows. Two updates are
/// untranslatable and rejected:
///  * a view row that violates the predicate (it would silently vanish
///    from the view on the next Get, breaking PutGet);
///  * a view row whose key collides with a hidden complement row (the
///    merged source would have a duplicate key).
class SelectLens : public Lens {
 public:
  explicit SelectLens(relational::Predicate::Ptr predicate);

  const relational::Predicate::Ptr& predicate() const { return predicate_; }

  Result<relational::Schema> ViewSchema(
      const relational::Schema& source_schema) const override;
  Result<relational::Table> Get(
      const relational::Table& source) const override;
  Result<relational::Table> Put(
      const relational::Table& source,
      const relational::Table& view) const override;
  /// Exact: each source change is reclassified against the predicate (an
  /// update whose old row was hidden but whose new row is visible becomes
  /// a view insert, and so on).
  Result<AnnotatedDelta> PushDeltaAnnotated(
      const relational::Schema& source_schema,
      const AnnotatedDelta& delta) const override;
  Result<SourceFootprint> Footprint(
      const relational::Schema& source_schema) const override;
  Json ToJson() const override;
  std::string ToString() const override;

 private:
  relational::Predicate::Ptr predicate_;
};

}  // namespace medsync::bx

#endif  // MEDSYNC_BX_SELECT_LENS_H_
